package netdiversity_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"netdiversity"
)

func TestExtensionMetricsAndAdversary(t *testing.T) {
	net := buildAPITestNetwork(t)
	sim := netdiversity.PaperSimilarity()
	opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mono, err := netdiversity.MonoAssignment(net, nil)
	if err != nil {
		t.Fatal(err)
	}

	cfg := netdiversity.EffortConfig{Entry: "a", Target: "c", MaxExtraHops: 1}
	optMetrics, err := netdiversity.DiversityMetrics(net, res.Assignment, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	monoMetrics, err := netdiversity.DiversityMetrics(net, mono, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if optMetrics.Richness.Overall <= monoMetrics.Richness.Overall {
		t.Errorf("optimal richness %v should exceed mono %v",
			optMetrics.Richness.Overall, monoMetrics.Richness.Overall)
	}
	if _, err := netdiversity.Richness(net, res.Assignment); err != nil {
		t.Errorf("Richness: %v", err)
	}
	if _, err := netdiversity.AttackEffort(net, res.Assignment, sim, cfg); err != nil {
		t.Errorf("AttackEffort: %v", err)
	}

	ev, err := netdiversity.NewAdversaryEvaluator(net, res.Assignment, sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(netdiversity.AttackerKnowledgeLevels()) != 3 {
		t.Error("expected 3 knowledge levels")
	}
	r, err := ev.Run(netdiversity.AdversaryConfig{
		Entry: "a", Target: "c", Runs: 50, Seed: 1,
		Knowledge: netdiversity.KnowledgeFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.MTTC <= 0 {
		t.Errorf("MTTC = %v, want > 0", r.MTTC)
	}
}

func TestExtensionWeightedSimilarity(t *testing.T) {
	table := netdiversity.PaperOSTable()
	db, err := netdiversity.SyntheticNVD(table, 1999)
	if err != nil {
		t.Fatal(err)
	}
	weight := netdiversity.CombineWeights(netdiversity.CVSSWeight, netdiversity.RecencyWeight(2016, 5))
	sim, err := netdiversity.WeightedJaccard(db, "win7", "winxp", netdiversity.VulnFilter{}, weight)
	if err != nil {
		t.Fatal(err)
	}
	if sim <= 0 || sim > 1 {
		t.Errorf("weighted similarity %v outside (0,1]", sim)
	}
	weighted, err := netdiversity.BuildWeightedSimilarityTable(db, table.Products(), netdiversity.VulnFilter{}, weight)
	if err != nil {
		t.Fatal(err)
	}
	if err := weighted.Validate(); err != nil {
		t.Errorf("weighted table should validate: %v", err)
	}
}

func TestExtensionTopologiesEstimatorAndNVDLoader(t *testing.T) {
	cfg := netdiversity.RandomNetworkConfig{Hosts: 60, Degree: 4, Services: 2, Seed: 2}
	for _, topo := range []netdiversity.Topology{
		netdiversity.TopologyUniform, netdiversity.TopologyScaleFree, netdiversity.TopologySmallWorld,
	} {
		net, err := netdiversity.GenerateNetwork(cfg, topo)
		if err != nil {
			t.Fatalf("GenerateNetwork(%v): %v", topo, err)
		}
		if net.NumHosts() != 60 {
			t.Errorf("%v: hosts = %d", topo, net.NumHosts())
		}
	}

	// Analytic MTTC estimate through the public API.
	net, err := netdiversity.CaseStudyNetwork()
	if err != nil {
		t.Fatal(err)
	}
	sim := netdiversity.PaperSimilarity()
	mono, err := netdiversity.MonoAssignment(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	simulator, err := netdiversity.NewSimulator(net, mono, sim)
	if err != nil {
		t.Fatal(err)
	}
	var est netdiversity.MTTCEstimate
	est, err = simulator.EstimateMTTC(netdiversity.SimulationConfig{Entry: "c4", Target: "t5"})
	if err != nil {
		t.Fatal(err)
	}
	if est.MTTC <= 0 || est.PCompromise <= 0 {
		t.Errorf("estimate = %+v, want positive MTTC and compromise probability", est)
	}

	// NVD JSON loader through the public API.
	feed := `{"CVE_Items":[{"cve":{"CVE_data_meta":{"ID":"CVE-2016-0001"}},
		"configurations":{"nodes":[{"cpe_match":[
			{"vulnerable":true,"cpe23Uri":"cpe:2.3:o:microsoft:windows_7:-:*:*:*:*:*:*:*"}]}]},
		"impact":{"baseMetricV3":{"cvssV3":{"baseScore":7.0}}}}]}`
	db := netdiversity.NewCVEDatabase()
	added, err := netdiversity.LoadNVDJSON(db, strings.NewReader(feed),
		netdiversity.NVDCatalogMapper(netdiversity.PaperProductCatalog()))
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || db.Len() != 1 {
		t.Errorf("added = %d, db len = %d, want 1/1", added, db.Len())
	}
}

func TestExtensionCostModel(t *testing.T) {
	net := buildAPITestNetwork(t)
	sim := netdiversity.PaperSimilarity()
	opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	model := netdiversity.CostModel{
		DefaultCost: 1,
		Costs:       map[netdiversity.ProductID]float64{"ubt1404": 5, "deb80": 5},
	}
	if err := opt.SetCostModel(model, 2); err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cost, err := model.TotalCost(net, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	// With a heavy penalty on the Linux options, the cost-aware optimum
	// should avoid them entirely on the non-legacy hosts.
	if cost > float64(res.Assignment.Len())+4.5 {
		t.Errorf("cost-aware optimisation still deployed expensive products (total cost %v)", cost)
	}
}

func TestExtensionDotAndPartition(t *testing.T) {
	net, err := netdiversity.CaseStudyNetwork()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netdiversity.WriteDot(&buf, net, netdiversity.DotOptions{Name: "ics"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "ics"`) {
		t.Error("dot output missing graph name")
	}
	blocks, err := netdiversity.PartitionNetwork(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	if total != net.NumHosts() {
		t.Errorf("partition covers %d hosts, want %d", total, net.NumHosts())
	}

	sim := netdiversity.PaperSimilarity()
	opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := opt.OptimizeParallel(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Assignment.ValidateFor(net); err != nil {
		t.Errorf("parallel assignment invalid: %v", err)
	}
	if par.Blocks < 2 {
		t.Errorf("expected at least 2 blocks, got %d", par.Blocks)
	}
}

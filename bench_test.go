package netdiversity_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"netdiversity"
	"netdiversity/internal/experiments"
)

// benchConfig is the quick experiment profile used by every per-table
// benchmark; run cmd/divtables -full for the paper-sized sweeps.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 42, Workers: 1}
}

// benchmarkExperiment runs one experiment once per benchmark iteration.
func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, benchConfig()); err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
}

// BenchmarkFigure1 regenerates the motivational-example probabilities
// (Fig. 1: 0 / ≈0.125 / ≈0.5).
func BenchmarkFigure1(b *testing.B) { benchmarkExperiment(b, "fig1") }

// BenchmarkFigure2 optimises the 6-host example network of Section IV
// (Fig. 2).
func BenchmarkFigure2(b *testing.B) { benchmarkExperiment(b, "fig2") }

// BenchmarkTableII regenerates the OS similarity table from a synthetic NVD
// corpus (Table II).
func BenchmarkTableII(b *testing.B) { benchmarkExperiment(b, "table2") }

// BenchmarkTableIII regenerates the browser similarity table (Table III).
func BenchmarkTableIII(b *testing.B) { benchmarkExperiment(b, "table3") }

// BenchmarkFigure4 computes the three case-study optimal assignments
// (Fig. 4(a)-(c)).
func BenchmarkFigure4(b *testing.B) { benchmarkExperiment(b, "fig4") }

// BenchmarkTableV evaluates the BN diversity metric of the five case-study
// assignments (Table V).
func BenchmarkTableV(b *testing.B) { benchmarkExperiment(b, "table5") }

// BenchmarkTableVI runs the MTTC propagation simulation for five entry points
// and four assignments (Table VI).
func BenchmarkTableVI(b *testing.B) { benchmarkExperiment(b, "table6") }

// BenchmarkTableVII measures optimisation time over increasing host counts
// (Table VII, quick profile).
func BenchmarkTableVII(b *testing.B) { benchmarkExperiment(b, "table7") }

// BenchmarkTableVIII measures optimisation time over increasing degree
// (Table VIII, quick profile).
func BenchmarkTableVIII(b *testing.B) { benchmarkExperiment(b, "table8") }

// BenchmarkTableIX measures optimisation time over increasing services per
// host (Table IX, quick profile).
func BenchmarkTableIX(b *testing.B) { benchmarkExperiment(b, "table9") }

// BenchmarkSolverAblation compares TRW-S, BP, ICM, annealing and the
// non-optimising baselines on one instance (experiment A1).
func BenchmarkSolverAblation(b *testing.B) { benchmarkExperiment(b, "ablation") }

// BenchmarkMetricsTable evaluates the Zhang-style d1/d2/d3 diversity metrics
// on the five case-study assignments (library extension).
func BenchmarkMetricsTable(b *testing.B) { benchmarkExperiment(b, "metrics") }

// BenchmarkAdversaryTable runs the attacker-knowledge-level evaluation
// (library extension implementing the paper's stated future work).
func BenchmarkAdversaryTable(b *testing.B) { benchmarkExperiment(b, "adversary") }

// BenchmarkTopologyTable optimises uniform, scale-free and small-world
// networks of the same size (library extension).
func BenchmarkTopologyTable(b *testing.B) { benchmarkExperiment(b, "topology") }

// BenchmarkConvergenceTable traces TRW-S and BP best energies per iteration
// on the case-study MRF (library extension).
func BenchmarkConvergenceTable(b *testing.B) { benchmarkExperiment(b, "convergence") }

// BenchmarkCostTable sweeps the diversity-versus-deployment-cost trade-off on
// the case study (library extension).
func BenchmarkCostTable(b *testing.B) { benchmarkExperiment(b, "cost") }

// BenchmarkOptimizeCaseStudy measures a single TRW-S optimisation of the
// Stuxnet case-study network (the core operation behind Fig. 4).
func BenchmarkOptimizeCaseStudy(b *testing.B) {
	net, err := netdiversity.CaseStudyNetwork()
	if err != nil {
		b.Fatal(err)
	}
	sim := netdiversity.PaperSimilarity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.Optimize(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeRandom1000 measures one optimisation of a 1000-host
// random network (one cell of the Table VII sweep at paper scale for the
// mid-density profile with reduced services).
func BenchmarkOptimizeRandom1000(b *testing.B) {
	cfg := netdiversity.RandomNetworkConfig{Hosts: 1000, Degree: 10, Services: 5, ProductsPerService: 4, Seed: 9}
	net, err := netdiversity.RandomNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sim := netdiversity.SyntheticSimilarity(cfg, 0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{MaxIterations: 20})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.Optimize(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeParallel measures the partitioned (4-block) optimisation
// of a 1000-host random network — the multi-level parallel mode of
// Section V-C.
func BenchmarkOptimizeParallel(b *testing.B) {
	cfg := netdiversity.RandomNetworkConfig{Hosts: 1000, Degree: 10, Services: 5, ProductsPerService: 4, Seed: 9}
	net, err := netdiversity.RandomNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sim := netdiversity.SyntheticSimilarity(cfg, 0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{MaxIterations: 20, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.OptimizeParallel(context.Background(), 4); err != nil {
			b.Fatal(err)
		}
	}
}

// solverBenchCase builds the random network and similarity table used by the
// per-solver benchmarks (netgen workloads at increasing scale).
func solverBenchCase(b *testing.B, hosts int) (*netdiversity.Network, *netdiversity.SimilarityTable) {
	b.Helper()
	cfg := netdiversity.RandomNetworkConfig{
		Hosts:              hosts,
		Degree:             8,
		Services:           3,
		ProductsPerService: 4,
		Seed:               9,
	}
	net, err := netdiversity.RandomNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return net, netdiversity.SyntheticSimilarity(cfg, 0.6)
}

// benchmarkSolver runs one registered solver over netgen networks at ~50,
// 200 and 1000 hosts so the unified-driver refactor and the flat MRF
// representation stay measurable per algorithm.
func benchmarkSolver(b *testing.B, solver netdiversity.Solver) {
	for _, hosts := range []int{50, 200, 1000} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			net, sim := solverBenchCase(b, hosts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{
					Solver:        solver,
					MaxIterations: 10,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := opt.Optimize(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverTRWS measures the TRW-S solver through the unified registry.
func BenchmarkSolverTRWS(b *testing.B) { benchmarkSolver(b, netdiversity.SolverTRWS) }

// BenchmarkSolverBP measures loopy belief propagation.
func BenchmarkSolverBP(b *testing.B) { benchmarkSolver(b, netdiversity.SolverBP) }

// BenchmarkSolverICM measures ICM local search.
func BenchmarkSolverICM(b *testing.B) { benchmarkSolver(b, netdiversity.SolverICM) }

// BenchmarkSolverAnneal measures the simulated-annealing variant.
func BenchmarkSolverAnneal(b *testing.B) { benchmarkSolver(b, netdiversity.SolverAnneal) }

// BenchmarkSequentialVsPartitioned compares a full sequential TRW-S run with
// the partition-solve-merge-refine pipeline on the same 1000-host network —
// the multi-level parallel mode of Section V-C.
func BenchmarkSequentialVsPartitioned(b *testing.B) {
	net, sim := solverBenchCase(b, 1000)
	newOpt := func(b *testing.B, workers int) *netdiversity.Optimizer {
		opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{
			MaxIterations: 10,
			Seed:          1,
			Workers:       workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		return opt
	}
	b.Run("sequential", func(b *testing.B) {
		opt := newOpt(b, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := opt.Optimize(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("partitioned-8", func(b *testing.B) {
		opt := newOpt(b, runtime.NumCPU())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := opt.OptimizeParallel(context.Background(), 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDiversityMetric measures one d_bn evaluation on the case study.
func BenchmarkDiversityMetric(b *testing.B) {
	net, err := netdiversity.CaseStudyNetwork()
	if err != nil {
		b.Fatal(err)
	}
	sim := netdiversity.PaperSimilarity()
	mono, err := netdiversity.MonoAssignment(net, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := netdiversity.Diversity(net, mono, sim, netdiversity.DiversityConfig{
			Entry:  "c4",
			Target: netdiversity.CaseStudyTarget(),
		}, netdiversity.InferenceOptions{Samples: 50000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttackSimulation measures one 200-run MTTC campaign on the case
// study (one cell of Table VI).
func BenchmarkAttackSimulation(b *testing.B) {
	net, err := netdiversity.CaseStudyNetwork()
	if err != nil {
		b.Fatal(err)
	}
	sim := netdiversity.PaperSimilarity()
	mono, err := netdiversity.MonoAssignment(net, nil)
	if err != nil {
		b.Fatal(err)
	}
	simulator, err := netdiversity.NewSimulator(net, mono, sim)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := simulator.Run(netdiversity.SimulationConfig{
			Entry: "c4", Target: "t5", Runs: 200, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyntheticNVD measures regenerating the synthetic CVE corpus for
// the OS similarity table (the substrate behind Tables II/III).
func BenchmarkSyntheticNVD(b *testing.B) {
	table := netdiversity.PaperOSTable()
	for i := 0; i < b.N; i++ {
		db, err := netdiversity.SyntheticNVD(table, 1999)
		if err != nil {
			b.Fatal(err)
		}
		netdiversity.BuildSimilarityTable(db, table.Products(), netdiversity.VulnFilter{})
	}
}

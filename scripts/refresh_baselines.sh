#!/usr/bin/env bash
# Regenerate every checked-in benchmark baseline in one pass.  Run this on the
# machine class CI uses (divbench gates only when the recorded environment
# matches the runner's), commit the refreshed BENCH_*.json files, and the PR
# perf gates re-arm against the new numbers.
#
# The scale suite is the slow one (a 100k-host flat TRW-S solve per refresh);
# pass -skip-scale to refresh only the fast suites.
set -euo pipefail
cd "$(dirname "$0")/.."

skip_scale=0
for arg in "$@"; do
  case "$arg" in
    -skip-scale) skip_scale=1 ;;
    *) echo "usage: $0 [-skip-scale]" >&2; exit 2 ;;
  esac
done

echo "==> quick suite -> BENCH_quick.json"
go run ./cmd/divbench -suite quick -out BENCH_quick.json

echo "==> churn suite -> BENCH_churn.json"
go run ./cmd/divbench -suite churn -out BENCH_churn.json

echo "==> serve suite -> BENCH_serve.json"
go run ./cmd/divbench -suite serve -out BENCH_serve.json

echo "==> slam suite -> BENCH_slam.json"
go run ./cmd/divbench -suite slam -out BENCH_slam.json

if [ "$skip_scale" = 0 ]; then
  echo "==> scale suite -> BENCH_scale.json"
  go run ./cmd/divbench -suite scale -out BENCH_scale.json
fi

echo "==> done; review and commit the refreshed BENCH_*.json"

#!/usr/bin/env bash
# Smoke-test the divd daemon at the binary level: boot it, create a 50-host
# network twice, assert deterministic assignment hashes, apply a delta and
# assert the version moved.  CI's docs job runs this; it needs only curl and
# python3.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'kill "$divd_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/divd" ./cmd/divd

"$workdir/divd" -addr 127.0.0.1:0 >"$workdir/divd.log" 2>&1 &
divd_pid=$!

# Scrape the bound address from the startup line.
base=""
for _ in $(seq 1 100); do
  base="$(sed -n 's/^divd listening on //p' "$workdir/divd.log" | head -1)"
  [ -n "$base" ] && break
  kill -0 "$divd_pid" 2>/dev/null || { echo "divd exited early:"; cat "$workdir/divd.log"; exit 1; }
  sleep 0.1
done
[ -n "$base" ] || { echo "divd never reported its address"; cat "$workdir/divd.log"; exit 1; }
base="http://$base"
echo "divd up at $base"

json_field() { # json_field <field> < file-with-json
  python3 -c "import json,sys; print(json.load(sys.stdin)[sys.argv[1]])" "$1"
}

create_payload() { # create_payload <id>
  python3 - "$1" <<'PY'
import json, sys
spec = json.load(open("testdata/smoke_net50.json"))
print(json.dumps({"id": sys.argv[1], "spec": spec, "seed": 1}))
PY
}

request() { # request <expected-status> <method> <path> [data-file] -> body on stdout
  local want="$1" method="$2" path="$3" data="${4:-}"
  local args=(-sS -o "$workdir/body" -w '%{http_code}' -X "$method" "$base$path")
  [ -n "$data" ] && args+=(-H 'Content-Type: application/json' --data-binary "@$data")
  local got
  got="$(curl "${args[@]}")"
  if [ "$got" != "$want" ]; then
    echo "FAIL: $method $path returned $got, want $want" >&2
    cat "$workdir/body" >&2
    exit 1
  fi
  cat "$workdir/body"
}

# Create the same 50-host network under two IDs: the solve must be
# deterministic, so the assignment hashes must match.
create_payload smoke-a >"$workdir/create-a.json"
create_payload smoke-b >"$workdir/create-b.json"
hash_a="$(request 201 POST /v1/networks "$workdir/create-a.json" | json_field assignment_hash)"
hash_b="$(request 201 POST /v1/networks "$workdir/create-b.json" | json_field assignment_hash)"
[ -n "$hash_a" ] || { echo "FAIL: empty assignment hash"; exit 1; }
if [ "$hash_a" != "$hash_b" ]; then
  echo "FAIL: non-deterministic solve: $hash_a vs $hash_b" >&2
  exit 1
fi
echo "deterministic create OK ($hash_a)"

# Apply a delta and assert the session advanced.
echo '{"ops":[{"op":"remove_edge","a":"h0","b":"h1"},{"op":"add_edge","a":"h0","b":"h5"}]}' >"$workdir/delta.json"
version="$(request 200 POST /v1/networks/smoke-a/deltas "$workdir/delta.json" | json_field version)"
if [ "$version" != "2" ]; then
  echo "FAIL: delta left version at $version, want 2" >&2
  exit 1
fi
echo "delta OK (version $version)"

# The assignment read serves the post-delta snapshot.
read_version="$(request 200 GET /v1/networks/smoke-a/assignment | json_field version)"
[ "$read_version" = "2" ] || { echo "FAIL: read version $read_version"; exit 1; }

# Clean shutdown on SIGTERM.
kill "$divd_pid"
wait "$divd_pid" || { echo "FAIL: divd exited nonzero on SIGTERM"; exit 1; }
echo "divd smoke test PASSED"

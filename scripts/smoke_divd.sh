#!/usr/bin/env bash
# Smoke-test the divd daemon at the binary level: boot it, create a 50-host
# network twice, assert deterministic assignment hashes, apply a delta and
# assert the version moved.  Then the crash-recovery phase: boot with a data
# directory under -fsync always, SIGKILL the daemon mid-load, restart it on
# the same directory and assert every session recovers to a durably-acked
# version with the identical assignment hash (docs/DURABILITY.md).  Then the
# two-node failover phase: a primary/follower pair under write load, the
# primary SIGKILLed mid-run, the follower promoted and the client's ack log
# reconciled against the survivor (docs/REPLICATION.md).  CI's docs job runs
# this; it needs only curl and python3.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'kill "$divd_pid" 2>/dev/null || true; kill "$follower_pid" 2>/dev/null || true; kill "$load_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
load_pid=""
follower_pid=""

go build -o "$workdir/divd" ./cmd/divd

"$workdir/divd" -addr 127.0.0.1:0 >"$workdir/divd.log" 2>&1 &
divd_pid=$!

# Scrape the bound address from the startup line.
base=""
for _ in $(seq 1 100); do
  base="$(sed -n 's/^divd listening on //p' "$workdir/divd.log" | head -1)"
  [ -n "$base" ] && break
  kill -0 "$divd_pid" 2>/dev/null || { echo "divd exited early:"; cat "$workdir/divd.log"; exit 1; }
  sleep 0.1
done
[ -n "$base" ] || { echo "divd never reported its address"; cat "$workdir/divd.log"; exit 1; }
base="http://$base"
echo "divd up at $base"

json_field() { # json_field <field> < file-with-json
  python3 -c "import json,sys; print(json.load(sys.stdin)[sys.argv[1]])" "$1"
}

create_payload() { # create_payload <id>
  python3 - "$1" <<'PY'
import json, sys
spec = json.load(open("testdata/smoke_net50.json"))
print(json.dumps({"id": sys.argv[1], "spec": spec, "seed": 1}))
PY
}

request() { # request <expected-status> <method> <path> [data-file] -> body on stdout
  local want="$1" method="$2" path="$3" data="${4:-}"
  local args=(-sS -o "$workdir/body" -w '%{http_code}' -X "$method" "$base$path")
  [ -n "$data" ] && args+=(-H 'Content-Type: application/json' --data-binary "@$data")
  local got
  got="$(curl "${args[@]}")"
  if [ "$got" != "$want" ]; then
    echo "FAIL: $method $path returned $got, want $want" >&2
    cat "$workdir/body" >&2
    exit 1
  fi
  cat "$workdir/body"
}

# Create the same 50-host network under two IDs: the solve must be
# deterministic, so the assignment hashes must match.
create_payload smoke-a >"$workdir/create-a.json"
create_payload smoke-b >"$workdir/create-b.json"
hash_a="$(request 201 POST /v1/networks "$workdir/create-a.json" | json_field assignment_hash)"
hash_b="$(request 201 POST /v1/networks "$workdir/create-b.json" | json_field assignment_hash)"
[ -n "$hash_a" ] || { echo "FAIL: empty assignment hash"; exit 1; }
if [ "$hash_a" != "$hash_b" ]; then
  echo "FAIL: non-deterministic solve: $hash_a vs $hash_b" >&2
  exit 1
fi
echo "deterministic create OK ($hash_a)"

# Apply a delta and assert the session advanced.
echo '{"ops":[{"op":"remove_edge","a":"h0","b":"h1"},{"op":"add_edge","a":"h0","b":"h5"}]}' >"$workdir/delta.json"
version="$(request 200 POST /v1/networks/smoke-a/deltas "$workdir/delta.json" | json_field version)"
if [ "$version" != "2" ]; then
  echo "FAIL: delta left version at $version, want 2" >&2
  exit 1
fi
echo "delta OK (version $version)"

# The assignment read serves the post-delta snapshot.
read_version="$(request 200 GET /v1/networks/smoke-a/assignment | json_field version)"
[ "$read_version" = "2" ] || { echo "FAIL: read version $read_version"; exit 1; }

# Clean shutdown on SIGTERM.
kill "$divd_pid"
wait "$divd_pid" || { echo "FAIL: divd exited nonzero on SIGTERM"; exit 1; }
echo "serving smoke PASSED"

# ---------------------------------------------------------------------------
# Crash-recovery phase: kill -9 the daemon mid-load, restart on the same data
# directory, and hold it to the fsync=always contract — every acked write
# survives, and recovered sessions serve the exact journaled hashes.

data_dir="$workdir/data"

boot_divd() { # boot_divd <logfile> -> sets divd_pid and base
  "$workdir/divd" -addr 127.0.0.1:0 -data-dir "$data_dir" -fsync always >"$1" 2>&1 &
  divd_pid=$!
  base=""
  for _ in $(seq 1 100); do
    base="$(sed -n 's/^divd listening on //p' "$1" | head -1)"
    [ -n "$base" ] && break
    kill -0 "$divd_pid" 2>/dev/null || { echo "divd exited early:"; cat "$1"; exit 1; }
    sleep 0.1
  done
  [ -n "$base" ] || { echo "divd never reported its address"; cat "$1"; exit 1; }
  base="http://$base"
}

boot_divd "$workdir/divd-crash.log"
echo "durable divd up at $base (data dir $data_dir)"

create_payload smoke-c >"$workdir/create-c.json"
create_payload smoke-d >"$workdir/create-d.json"
request 201 POST /v1/networks "$workdir/create-c.json" >/dev/null
request 201 POST /v1/networks "$workdir/create-d.json" >/dev/null

# smoke-d goes quiescent after one delta: its recovered state must match
# exactly.  The ack is the durability point, so version and hash recorded
# here are promises the restart has to keep.
request 200 POST /v1/networks/smoke-d/deltas "$workdir/delta.json" >"$workdir/d-ack.json"
d_version="$(json_field version <"$workdir/d-ack.json")"
d_hash="$(json_field assignment_hash <"$workdir/d-ack.json")"

# smoke-c takes a sustained write load; every acked (version, hash) pair is
# logged so the post-crash state can be checked against the ack history.
: >"$workdir/acked.log"
(
  i=0
  while :; do
    i=$(( (i % 9) + 1 ))
    printf '{"ops":[{"op":"update_services","id":"h0","services":["s1","s2"],"choices":{"s1":["s1_p1","s1_p2","s1_p3","s1_p4"],"s2":["s2_p1","s2_p2","s2_p3","s2_p4"]},"preference":{"s1":{"s1_p1":0.%d}}}]}' "$i" >"$workdir/load-delta.json"
    curl -sS -X POST -H 'Content-Type: application/json' \
      --data-binary "@$workdir/load-delta.json" \
      "$base/v1/networks/smoke-c/deltas" 2>/dev/null \
      | python3 -c 'import json,sys
try:
    r = json.load(sys.stdin)
    print(r["version"], r["assignment_hash"], flush=True)
except Exception:
    pass' >>"$workdir/acked.log" || break
  done
) &
load_pid=$!

# Let the load run, then kill the daemon dead mid-flight.
sleep 2
kill -9 "$divd_pid"
kill "$load_pid" 2>/dev/null || true
wait "$load_pid" 2>/dev/null || true
load_pid=""
wait "$divd_pid" 2>/dev/null || true

acked_count="$(wc -l <"$workdir/acked.log")"
[ "$acked_count" -ge 1 ] || { echo "FAIL: no deltas acked before the kill"; exit 1; }
echo "killed divd -9 after $acked_count acked deltas"

boot_divd "$workdir/divd-recover.log"
grep -q "recovered smoke-c" "$workdir/divd-recover.log" || {
  echo "FAIL: restart did not report recovering smoke-c" >&2
  cat "$workdir/divd-recover.log" >&2
  exit 1
}

# smoke-d (quiescent at the kill): exact version and hash.
request 200 GET /v1/networks/smoke-d/assignment >"$workdir/d-after.json"
d_after_version="$(json_field version <"$workdir/d-after.json")"
d_after_hash="$(json_field assignment_hash <"$workdir/d-after.json")"
if [ "$d_after_version" != "$d_version" ] || [ "$d_after_hash" != "$d_hash" ]; then
  echo "FAIL: smoke-d recovered v$d_after_version/$d_after_hash, acked v$d_version/$d_hash" >&2
  exit 1
fi

# smoke-c (under load at the kill): fsync=always means no acked write may be
# lost — the recovered version is at least the last acked one, and wherever
# the recovered version appears in the ack history the hashes must agree.
request 200 GET /v1/networks/smoke-c/assignment >"$workdir/c-after.json"
python3 - "$workdir/acked.log" "$workdir/c-after.json" <<'PY'
import json, sys
acked = {}
for line in open(sys.argv[1]):
    parts = line.split()
    if len(parts) == 2:
        acked[int(parts[0])] = parts[1]
after = json.load(open(sys.argv[2]))
got_v, got_h = after["version"], after["assignment_hash"]
last = max(acked)
if got_v < last:
    sys.exit(f"FAIL: recovered version {got_v} lost acked version {last}")
if got_v in acked and acked[got_v] != got_h:
    sys.exit(f"FAIL: version {got_v} recovered hash {got_h}, acked {acked[got_v]}")
print(f"smoke-c recovered at v{got_v} (last acked v{last}), hashes consistent")
PY

kill "$divd_pid"
wait "$divd_pid" || { echo "FAIL: divd exited nonzero on SIGTERM after recovery"; exit 1; }
echo "crash recovery PASSED"

# ---------------------------------------------------------------------------
# Two-node failover phase: a primary pushes committed records to a follower
# (-replicate-to / -follow); the follower serves reads locally and rejects
# writes with a 307 not_primary redirect.  Under sustained write load we wait
# for the follower to catch up to an acked watermark while the load keeps
# running, SIGKILL the primary mid-run, promote the follower and reconcile
# the client's ack log against the survivor: nothing acked at or below the
# watermark may be lost, and wherever the survivor's version appears in the
# ack history the assignment hashes must agree.

# The primary needs the follower's URL at boot, so reserve the follower's
# port up front.
follower_port="$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')"
follower_base="http://127.0.0.1:$follower_port"

wait_addr() { # wait_addr <logfile> <pid> -> prints the node's base URL
  local addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^divd listening on //p' "$1" | head -1)"
    [ -n "$addr" ] && break
    kill -0 "$2" 2>/dev/null || { echo "divd exited early:" >&2; cat "$1" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "divd never reported its address" >&2; cat "$1" >&2; exit 1; }
  echo "http://$addr"
}

request_at() { # request_at <base> <expected-status> <method> <path> [data-file]
  local at="$1" want="$2" method="$3" path="$4" data="${5:-}"
  local args=(-sS -o "$workdir/body" -w '%{http_code}' -X "$method" "$at$path")
  [ -n "$data" ] && args+=(-H 'Content-Type: application/json' --data-binary "@$data")
  local got
  got="$(curl "${args[@]}")"
  if [ "$got" != "$want" ]; then
    echo "FAIL: $method $at$path returned $got, want $want" >&2
    cat "$workdir/body" >&2
    exit 1
  fi
  cat "$workdir/body"
}

"$workdir/divd" -addr 127.0.0.1:0 -replicate-to "$follower_base" >"$workdir/divd-primary.log" 2>&1 &
divd_pid=$!
primary_base="$(wait_addr "$workdir/divd-primary.log" "$divd_pid")"

"$workdir/divd" -addr "127.0.0.1:$follower_port" -follow "$primary_base" \
  -anti-entropy-interval 200ms >"$workdir/divd-follower.log" 2>&1 &
follower_pid=$!
wait_addr "$workdir/divd-follower.log" "$follower_pid" >/dev/null
grep -q "divd following $primary_base" "$workdir/divd-follower.log" \
  || { echo "FAIL: follower did not report following the primary"; cat "$workdir/divd-follower.log"; exit 1; }
echo "primary at $primary_base replicating to follower at $follower_base"

# Both nodes expose their role and replication state on healthz.
request_at "$primary_base" 200 GET /healthz | python3 -c 'import json,sys
r = json.load(sys.stdin).get("replication") or sys.exit("FAIL: primary healthz has no replication block")
if r["role"] != "primary" or not r.get("followers"):
    sys.exit(f"FAIL: primary healthz replication block: {r}")'
request_at "$follower_base" 200 GET /healthz | python3 -c 'import json,sys
r = json.load(sys.stdin).get("replication") or sys.exit("FAIL: follower healthz has no replication block")
if r["role"] != "follower":
    sys.exit(f"FAIL: follower healthz replication block: {r}")'

create_payload smoke-e >"$workdir/create-e.json"
request_at "$primary_base" 201 POST /v1/networks "$workdir/create-e.json" >/dev/null

# The session replicates to the follower, which then serves the read locally.
replicated=""
for _ in $(seq 1 100); do
  code="$(curl -sS -o "$workdir/body" -w '%{http_code}' "$follower_base/v1/networks/smoke-e/assignment")" || code=000
  [ "$code" = "200" ] && { replicated=1; break; }
  sleep 0.1
done
[ -n "$replicated" ] || { echo "FAIL: smoke-e never replicated to the follower"; cat "$workdir/divd-follower.log"; exit 1; }
echo "smoke-e replicated; follower serves reads"

# Writes at the follower bounce to the primary with a 307 and the stable
# error code, and the Location header carries the primary-side URL.
code="$(curl -sS -o "$workdir/body" -D "$workdir/headers" -w '%{http_code}' -X POST \
  -H 'Content-Type: application/json' --data-binary "@$workdir/delta.json" \
  "$follower_base/v1/networks/smoke-e/deltas")"
[ "$code" = "307" ] || { echo "FAIL: follower write returned $code, want 307"; cat "$workdir/body"; exit 1; }
grep -qi "^location: $primary_base/v1/networks/smoke-e/deltas" "$workdir/headers" \
  || { echo "FAIL: 307 Location does not point at the primary"; cat "$workdir/headers"; exit 1; }
grep -q "not_primary" "$workdir/body" || { echo "FAIL: follower rejection lacks not_primary"; cat "$workdir/body"; exit 1; }
echo "follower write redirect OK"

# Sustained write load against the primary, acked (version, hash) pairs
# logged exactly like the crash phase.
: >"$workdir/failover-acked.log"
(
  i=0
  while :; do
    i=$(( (i % 9) + 1 ))
    printf '{"ops":[{"op":"update_services","id":"h0","services":["s1","s2"],"choices":{"s1":["s1_p1","s1_p2","s1_p3","s1_p4"],"s2":["s2_p1","s2_p2","s2_p3","s2_p4"]},"preference":{"s1":{"s1_p1":0.%d}}}]}' "$i" >"$workdir/failover-delta.json"
    curl -sS -X POST -H 'Content-Type: application/json' \
      --data-binary "@$workdir/failover-delta.json" \
      "$primary_base/v1/networks/smoke-e/deltas" 2>/dev/null \
      | python3 -c 'import json,sys
try:
    r = json.load(sys.stdin)
    print(r["version"], r["assignment_hash"], flush=True)
except Exception:
    pass' >>"$workdir/failover-acked.log" || break
  done
) &
load_pid=$!

sleep 2
acked_count="$(wc -l <"$workdir/failover-acked.log")"
[ "$acked_count" -ge 1 ] || { echo "FAIL: no deltas acked under the failover load"; exit 1; }

# Take an acked watermark and wait (load still running) for the follower to
# replicate past it.  Acks are primary-durable, replication is asynchronous:
# the promotion contract is that a follower caught up to a watermark keeps
# everything at or below it.
mark_version="$(tail -n 1 "$workdir/failover-acked.log" | cut -d' ' -f1)"
caught_up=""
for _ in $(seq 1 150); do
  v="$(curl -sS "$follower_base/v1/networks/smoke-e/assignment" 2>/dev/null \
    | python3 -c 'import json,sys
try:
    print(json.load(sys.stdin).get("version", 0))
except Exception:
    print(0)')" || v=0
  [ "$v" -ge "$mark_version" ] && { caught_up=1; break; }
  sleep 0.1
done
[ -n "$caught_up" ] || { echo "FAIL: follower never caught up to acked v$mark_version"; cat "$workdir/divd-follower.log"; exit 1; }

# Kill the primary dead mid-run, then stop the load.
kill -9 "$divd_pid"
kill "$load_pid" 2>/dev/null || true
wait "$load_pid" 2>/dev/null || true
load_pid=""
wait "$divd_pid" 2>/dev/null || true
echo "killed primary -9 mid-run ($(wc -l <"$workdir/failover-acked.log") acked deltas, follower caught up to v$mark_version)"

# Promote the follower; a second promote is a no-op conflict.
request_at "$follower_base" 200 POST /v1/promote >"$workdir/promote.json"
promote_role="$(json_field role <"$workdir/promote.json")"
promote_sessions="$(json_field sessions <"$workdir/promote.json")"
if [ "$promote_role" != "primary" ] || [ "$promote_sessions" -lt 1 ]; then
  echo "FAIL: promote answered role=$promote_role sessions=$promote_sessions" >&2
  exit 1
fi
request_at "$follower_base" 409 POST /v1/promote >/dev/null

# Reconcile the ack log against the survivor: the watermark the follower
# caught up to must survive, and any surviving version that appears in the
# ack history must carry the acked hash (deterministic patch replay).
request_at "$follower_base" 200 GET /v1/networks/smoke-e/assignment >"$workdir/e-after.json"
python3 - "$workdir/failover-acked.log" "$workdir/e-after.json" "$mark_version" <<'PY'
import json, sys
acked = {}
for line in open(sys.argv[1]):
    parts = line.split()
    if len(parts) == 2:
        acked[int(parts[0])] = parts[1]
after = json.load(open(sys.argv[2]))
mark = int(sys.argv[3])
got_v, got_h = after["version"], after["assignment_hash"]
if got_v < mark:
    sys.exit(f"FAIL: survivor at v{got_v} lost caught-up acked version {mark}")
if got_v in acked and acked[got_v] != got_h:
    sys.exit(f"FAIL: survivor v{got_v} serves hash {got_h}, acked {acked[got_v]}")
print(f"survivor serves v{got_v} (watermark v{mark}, last ack v{max(acked)}), hashes consistent")
PY

# The promoted node takes writes: the next delta advances the version chain
# from exactly where the survivor stands.
survivor_version="$(json_field version <"$workdir/e-after.json")"
new_version="$(request_at "$follower_base" 200 POST /v1/networks/smoke-e/deltas "$workdir/delta.json" | json_field version)"
if [ "$new_version" != "$(( survivor_version + 1 ))" ]; then
  echo "FAIL: post-promotion delta moved v$survivor_version to v$new_version" >&2
  exit 1
fi
echo "post-promotion write OK (v$new_version)"

kill "$follower_pid"
wait "$follower_pid" || { echo "FAIL: promoted node exited nonzero on SIGTERM"; exit 1; }
follower_pid=""
echo "divd smoke test PASSED (serving + crash recovery + failover)"

package netdiversity

import (
	"io"

	"netdiversity/internal/adversary"
	"netdiversity/internal/attacksim"
	"netdiversity/internal/core"
	"netdiversity/internal/metrics"
	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// This file exposes the library extensions that go beyond the paper's own
// evaluation: the Zhang-style diversity metrics (d1/d2/d3), the
// attacker-knowledge adversarial evaluation (the paper's stated future work),
// severity/recency-weighted similarity, partitioned parallel optimisation and
// Graphviz export.

// Diversity-metric types (Zhang et al., the family the paper's d_bn extends).
type (
	// MetricsSummary bundles d1 (richness), d2 (least effort) and d3
	// (average effort) for one assignment.
	MetricsSummary = metrics.Summary
	// EffortConfig parameterises the d2/d3 attack-effort metrics.
	EffortConfig = metrics.EffortConfig
	// EffortResult reports d2/d3 with the enumerated attack paths.
	EffortResult = metrics.EffortResult
	// EffectiveRichness reports the d1 metric.
	EffectiveRichness = metrics.EffectiveRichness
)

// Adversarial-evaluation types.
type (
	// AdversaryEvaluator runs campaigns under different attacker knowledge
	// levels.
	AdversaryEvaluator = adversary.Evaluator
	// AdversaryConfig parameterises an adversarial campaign.
	AdversaryConfig = adversary.Config
	// AdversaryResult reports MTTC and success rate for one knowledge level.
	AdversaryResult = adversary.Result
	// AttackerKnowledge is the attacker's knowledge level.
	AttackerKnowledge = adversary.Knowledge
)

// Attacker knowledge levels.
const (
	KnowledgeNone    = adversary.KnowledgeNone
	KnowledgePartial = adversary.KnowledgePartial
	KnowledgeFull    = adversary.KnowledgeFull
)

// Weighted-similarity types.
type (
	// CVEWeightFunc assigns a weight to a vulnerability for weighted
	// similarity computation.
	CVEWeightFunc = vulnsim.WeightFunc
)

// Graphviz export types.
type (
	// DotOptions controls Graphviz rendering of a network.
	DotOptions = netmodel.DotOptions
)

// Partitioned optimisation result.
type (
	// ParallelResult is the outcome of OptimizeParallel.
	ParallelResult = core.ParallelResult
)

// CostModel maps products to deployment costs for cost-aware diversification
// (install it on an Optimizer with SetCostModel).
type CostModel = core.CostModel

// DiversityMetrics computes the Zhang-style d1/d2/d3 metrics for an
// assignment.
func DiversityMetrics(net *Network, a *Assignment, sim *SimilarityTable, cfg EffortConfig) (MetricsSummary, error) {
	return metrics.Evaluate(net, a, sim, cfg)
}

// Richness computes only the d1 effective-richness metric.
func Richness(net *Network, a *Assignment) (EffectiveRichness, error) {
	return metrics.Richness(net, a)
}

// AttackEffort computes only the d2/d3 attack-effort metrics.
func AttackEffort(net *Network, a *Assignment, sim *SimilarityTable, cfg EffortConfig) (EffortResult, error) {
	return metrics.Effort(net, a, sim, cfg)
}

// NewAdversaryEvaluator prepares an adversarial evaluator for a network and
// assignment.
func NewAdversaryEvaluator(net *Network, a *Assignment, sim *SimilarityTable) (*AdversaryEvaluator, error) {
	return adversary.New(net, a, sim)
}

// AttackerKnowledgeLevels lists the supported knowledge levels from weakest
// to strongest.
func AttackerKnowledgeLevels() []AttackerKnowledge { return adversary.Levels() }

// CVSSWeight weights vulnerabilities by severity for weighted similarity.
func CVSSWeight(c CVE) float64 { return vulnsim.CVSSWeight(c) }

// RecencyWeight discounts old vulnerabilities with the given half-life.
func RecencyWeight(referenceYear int, halfLifeYears float64) CVEWeightFunc {
	return vulnsim.RecencyWeight(referenceYear, halfLifeYears)
}

// CombineWeights multiplies weight functions.
func CombineWeights(fns ...CVEWeightFunc) CVEWeightFunc { return vulnsim.CombineWeights(fns...) }

// WeightedJaccard computes severity/recency-weighted vulnerability similarity
// between two products.
func WeightedJaccard(db *CVEDatabase, a, b string, filter VulnFilter, weight CVEWeightFunc) (float64, error) {
	return vulnsim.WeightedJaccard(db, a, b, filter, weight)
}

// BuildWeightedSimilarityTable computes a weighted similarity table from a
// CVE corpus.
func BuildWeightedSimilarityTable(db *CVEDatabase, products []string, filter VulnFilter, weight CVEWeightFunc) (*SimilarityTable, error) {
	return vulnsim.BuildWeightedSimilarityTable(db, products, filter, weight)
}

// WriteDot renders a network (optionally with an assignment) as Graphviz dot.
func WriteDot(w io.Writer, net *Network, opts DotOptions) error {
	return netmodel.WriteDot(w, net, opts)
}

// PartitionNetwork splits a network into connected, roughly balanced blocks
// for partitioned optimisation.
func PartitionNetwork(net *Network, parts int) ([][]HostID, error) {
	return core.PartitionNetwork(net, parts)
}

// Topology selects the random-graph family of GenerateNetwork.
type Topology = netgen.Topology

// Random-graph topologies.
const (
	TopologyUniform    = netgen.TopologyUniform
	TopologyScaleFree  = netgen.TopologyScaleFree
	TopologySmallWorld = netgen.TopologySmallWorld
)

// GenerateNetwork builds a random network with the requested topology
// (uniform, scale-free or small-world).
func GenerateNetwork(cfg RandomNetworkConfig, topology Topology) (*Network, error) {
	return netgen.Generate(cfg, topology)
}

// MTTCEstimate is the analytic (mean-field) MTTC approximation returned by
// Simulator.EstimateMTTC.
type MTTCEstimate = attacksim.Estimate

// LoadNVDJSON parses an NVD JSON 1.1 data feed into a CVE database so that
// similarity tables can be computed from real NVD dumps offline.  A nil
// mapper keeps every product; use NVDCatalogMapper to restrict loading to a
// known catalogue.
func LoadNVDJSON(db *CVEDatabase, r io.Reader, mapper NVDProductMapper) (int, error) {
	return vulnsim.LoadNVDJSON(db, r, mapper)
}

// NVDProductMapper converts CPE URIs from NVD feeds to product identifiers.
type NVDProductMapper = vulnsim.ProductMapper

// NVDCatalogMapper keeps only CPEs matching the catalogue's vendor/product
// pairs.
func NVDCatalogMapper(catalog *Catalog) NVDProductMapper {
	return vulnsim.CatalogProductMapper(catalog)
}

// PaperProductCatalog returns the catalogue of every product appearing in the
// paper's tables, usable with NVDCatalogMapper.
func PaperProductCatalog() *Catalog { return vulnsim.PaperCatalog() }

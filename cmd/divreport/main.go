// Command divreport produces a Markdown security-assessment report for a
// network: it computes the optimal diversification, compares it against the
// current/homogeneous and random deployments, and evaluates every assignment
// with the BN diversity metric, the Zhang-style d1/d2/d3 metrics, the MTTC
// simulation and its analytic estimate, and the attacker-knowledge
// evaluation.  Optionally it also writes Graphviz renderings of the network.
//
// Usage:
//
//	divreport -case-study -entry c4 -target t5 -out report.md
//	divreport -in network.json -entry web1 -target plc3 -out report.md -dot-dir out/
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"netdiversity"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/netmodel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "divreport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("divreport", flag.ContinueOnError)
	var (
		inPath  = fs.String("in", "", "path to a network spec JSON")
		useCase = fs.Bool("case-study", false, "use the built-in ICS case study")
		entry   = fs.String("entry", "c4", "attacker entry host")
		target  = fs.String("target", "t5", "attack target host")
		outPath = fs.String("out", "", "write the Markdown report to this file (default: stdout)")
		dotDir  = fs.String("dot-dir", "", "write Graphviz renderings into this directory")
		runs    = fs.Int("runs", 300, "simulation runs per MTTC cell")
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 1, "solver worker goroutines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, sim, cs, err := loadNetwork(*inPath, *useCase)
	if err != nil {
		return err
	}
	entryHost := netdiversity.HostID(*entry)
	targetHost := netdiversity.HostID(*target)
	if _, ok := net.Host(entryHost); !ok {
		return fmt.Errorf("entry host %q not in the network", entryHost)
	}
	if _, ok := net.Host(targetHost); !ok {
		return fmt.Errorf("target host %q not in the network", targetHost)
	}

	report, assignments, err := buildReport(net, sim, cs, entryHost, targetHost, *runs, *seed, *workers)
	if err != nil {
		return err
	}

	if *dotDir != "" {
		if err := os.MkdirAll(*dotDir, 0o755); err != nil {
			return err
		}
		for name, a := range assignments {
			path := filepath.Join(*dotDir, name+".dot")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = netdiversity.WriteDot(f, net, netdiversity.DotOptions{
				Assignment:     a,
				HighlightHosts: []netdiversity.HostID{entryHost, targetHost},
				Name:           name,
			})
			cerr := f.Close()
			if err != nil {
				return err
			}
			if cerr != nil {
				return cerr
			}
			report += fmt.Sprintf("* Graphviz rendering of the %s assignment: `%s`\n", name, path)
		}
	}

	if *outPath == "" {
		_, err := io.WriteString(stdout, report)
		return err
	}
	if err := os.WriteFile(*outPath, []byte(report), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "report written to %s\n", *outPath)
	return nil
}

func loadNetwork(inPath string, useCase bool) (*netdiversity.Network, *netdiversity.SimilarityTable, *netdiversity.ConstraintSet, error) {
	if useCase || inPath == "" {
		net, err := casestudy.Build()
		if err != nil {
			return nil, nil, nil, err
		}
		return net, casestudy.Similarity(), casestudy.HostConstraints(), nil
	}
	f, err := os.Open(inPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	net, cs, err := netmodel.ReadSpec(f)
	if err != nil {
		return nil, nil, nil, err
	}
	return net, netdiversity.PaperSimilarity(), cs, nil
}

// buildReport computes the assignments and renders the Markdown report.
func buildReport(net *netdiversity.Network, sim *netdiversity.SimilarityTable, cs *netdiversity.ConstraintSet,
	entry, target netdiversity.HostID, runs int, seed int64, workers int) (string, map[string]*netdiversity.Assignment, error) {

	opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{Workers: workers, Seed: seed})
	if err != nil {
		return "", nil, err
	}
	optimalRes, err := opt.Optimize(context.Background())
	if err != nil {
		return "", nil, err
	}
	var constrained *netdiversity.Assignment
	if cs != nil && !cs.Empty() {
		copt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{Workers: workers, Seed: seed})
		if err != nil {
			return "", nil, err
		}
		if err := copt.SetConstraints(cs); err != nil {
			return "", nil, err
		}
		cres, err := copt.Optimize(context.Background())
		if err != nil {
			return "", nil, err
		}
		constrained = cres.Assignment
	}
	mono, err := netdiversity.MonoAssignment(net, nil)
	if err != nil {
		return "", nil, err
	}
	random, err := netdiversity.RandomAssignment(net, nil, seed)
	if err != nil {
		return "", nil, err
	}

	assignments := map[string]*netdiversity.Assignment{
		"optimal": optimalRes.Assignment,
		"mono":    mono,
		"random":  random,
	}
	order := []string{"optimal"}
	if constrained != nil {
		assignments["constrained"] = constrained
		order = append(order, "constrained")
	}
	order = append(order, "random", "mono")

	var body []byte
	buf := func(format string, args ...any) {
		body = append(body, []byte(fmt.Sprintf(format, args...))...)
	}

	buf("# Network diversification assessment\n\n")
	buf("Generated by divreport on %s.\n\n", time.Now().Format("2006-01-02"))
	buf("* Hosts: %d, links: %d\n", net.NumHosts(), net.NumLinks())
	buf("* Attack scenario: entry `%s`, target `%s`\n", entry, target)
	buf("* Optimiser: TRW-S, %d-node MRF with %d pairwise factors, solved in %s\n\n",
		optimalRes.Nodes, optimalRes.Edges, optimalRes.Runtime.Round(time.Millisecond))

	buf("## Assignment comparison\n\n")
	buf("| assignment | pairwise similarity cost | d_bn | d1 richness | d3 avg effort | MTTC (sim) | MTTC (analytic) |\n")
	buf("|---|---|---|---|---|---|---|\n")
	for _, name := range order {
		a := assignments[name]
		cost, err := netdiversity.PairwiseSimilarityCost(net, sim, a)
		if err != nil {
			return "", nil, err
		}
		div, err := netdiversity.Diversity(net, a, sim,
			netdiversity.DiversityConfig{Entry: entry, Target: target},
			netdiversity.InferenceOptions{Seed: seed, Samples: 100000})
		if err != nil {
			return "", nil, err
		}
		summary, err := netdiversity.DiversityMetrics(net, a, sim,
			netdiversity.EffortConfig{Entry: entry, Target: target, MaxExtraHops: 1})
		if err != nil {
			return "", nil, err
		}
		simulator, err := netdiversity.NewSimulator(net, a, sim)
		if err != nil {
			return "", nil, err
		}
		mttc, err := simulator.Run(netdiversity.SimulationConfig{
			Entry: entry, Target: target, Runs: runs, Seed: seed,
		})
		if err != nil {
			return "", nil, err
		}
		est, err := simulator.EstimateMTTC(netdiversity.SimulationConfig{Entry: entry, Target: target})
		if err != nil {
			return "", nil, err
		}
		buf("| %s | %.3f | %.4f | %.4f | %.3f | %.2f | %.2f |\n",
			name, cost, div.Diversity, summary.Richness.Overall, summary.AverageEffort, mttc.MTTC, est.MTTC)
	}

	buf("\n## Attacker knowledge sensitivity (MTTC in ticks)\n\n")
	buf("| assignment | blind | partial | full reconnaissance |\n|---|---|---|---|\n")
	for _, name := range order {
		ev, err := netdiversity.NewAdversaryEvaluator(net, assignments[name], sim)
		if err != nil {
			return "", nil, err
		}
		results, err := ev.Compare(netdiversity.AdversaryConfig{
			Entry: entry, Target: target, Runs: runs, Seed: seed,
		})
		if err != nil {
			return "", nil, err
		}
		buf("| %s | %.2f | %.2f | %.2f |\n", name, results[0].MTTC, results[1].MTTC, results[2].MTTC)
	}

	buf("\n## Recommended changes\n\n")
	buf("The optimal assignment changes the following host/service installations relative to the homogeneous deployment:\n\n")
	diffs := mono.Diff(optimalRes.Assignment)
	limit := len(diffs)
	if limit > 40 {
		limit = 40
	}
	for _, d := range diffs[:limit] {
		buf("* %s\n", d)
	}
	if len(diffs) > limit {
		buf("* … and %d more\n", len(diffs)-limit)
	}
	buf("\n")
	return string(body), assignments, nil
}

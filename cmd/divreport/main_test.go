package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCaseStudyReportToStdout(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-case-study", "-runs", "40", "-seed", "3"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	report := out.String()
	for _, want := range []string{
		"# Network diversification assessment",
		"## Assignment comparison",
		"| optimal |",
		"| constrained |",
		"| mono |",
		"## Attacker knowledge sensitivity",
		"## Recommended changes",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunReportToFileWithDot(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.md")
	dotDir := filepath.Join(dir, "dot")
	var out bytes.Buffer
	args := []string{"-case-study", "-runs", "30", "-out", outPath, "-dot-dir", dotDir}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if !strings.Contains(string(data), "Graphviz rendering") {
		t.Error("report should reference the Graphviz files")
	}
	entries, err := os.ReadDir(dotDir)
	if err != nil {
		t.Fatalf("dot dir not created: %v", err)
	}
	if len(entries) < 3 {
		t.Errorf("expected at least 3 dot files, got %d", len(entries))
	}
	if !strings.Contains(out.String(), "report written to") {
		t.Error("stdout should confirm the output path")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-case-study", "-entry", "nope"}, &out); err == nil {
		t.Error("unknown entry host should fail")
	}
	if err := run([]string{"-case-study", "-target", "nope"}, &out); err == nil {
		t.Error("unknown target host should fail")
	}
	if err := run([]string{"-in", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing spec file should fail")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag should fail")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netdiversity/internal/scenario"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"quick", "full", "pipeline", "churn", "serve"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("suite list missing %q:\n%s", want, out.String())
		}
	}
}

func TestUnknownSuite(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-suite", "bogus"}, &out); err == nil {
		t.Error("unknown suite should fail")
	}
}

// runQuick runs the quick suite once into a temp file and returns the report.
func runQuick(t *testing.T, extra ...string) (*scenario.Report, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	args := append([]string{"-quick", "-out", path}, extra...)
	if err := run(args, &out); err != nil {
		t.Fatalf("run %v: %v\n%s", args, err, out.String())
	}
	rep, err := scenario.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return rep, path
}

func TestQuickSuiteWritesSchemaValidReport(t *testing.T) {
	rep, path := runQuick(t)
	if rep.Suite != "quick" {
		t.Errorf("suite name %q, want quick", rep.Suite)
	}
	if len(rep.Failed()) != 0 {
		t.Errorf("quick suite has failed cells: %+v", rep.Failed())
	}
	// 2 topologies x 2 sizes x 4 solvers x 2 attacks (the analytic recon
	// estimate plus the Monte-Carlo full-knowledge attacker).
	if len(rep.Cells) != 32 {
		t.Errorf("quick suite has %d cells, want 32", len(rep.Cells))
	}
	mc := 0
	for _, c := range rep.Cells {
		if c.Attack == "adv-full" {
			if c.MCRunsPerSec <= 0 {
				t.Errorf("cell %s has no Monte-Carlo throughput measurement", c.ID)
			}
			mc++
		}
	}
	if mc != 16 {
		t.Errorf("quick suite has %d Monte-Carlo cells, want 16", mc)
	}
	if rep.Env.GoVersion == "" || rep.Env.NumCPU <= 0 {
		t.Errorf("environment info incomplete: %+v", rep.Env)
	}
	// The file must parse as generic JSON too (schema stability for external
	// consumers).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema_version", "suite", "matrix", "environment", "cells"} {
		if _, ok := generic[key]; !ok {
			t.Errorf("report JSON missing top-level key %q", key)
		}
	}
}

func TestBaselineComparePassesAgainstItself(t *testing.T) {
	_, path := runQuick(t)
	var out bytes.Buffer
	if err := run([]string{"-quick", "-out", filepath.Join(t.TempDir(), "new.json"), "-baseline", path}, &out); err != nil {
		t.Fatalf("self-comparison should pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("expected PASS in output:\n%s", out.String())
	}
}

func TestBaselineRegressionExitsNonzero(t *testing.T) {
	rep, _ := runQuick(t)
	// Doctor the baseline: claim every cell ran twice as fast as measured,
	// with a margin far above the floor, so the fresh run must regress.
	for i := range rep.Cells {
		rep.Cells[i].WallMS = rep.Cells[i].WallMS / 2
	}
	doctored := filepath.Join(t.TempDir(), "doctored.json")
	if err := rep.WriteFile(doctored); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-quick", "-out", filepath.Join(t.TempDir(), "new.json"),
		"-baseline", doctored, "-floor-ms", "0.001"}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("doctored 2x-faster baseline should trip the gate, got err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "regression") {
		t.Errorf("expected regression verdicts in diff output:\n%s", out.String())
	}
}

func TestBaselineFromDifferentEnvironmentIsInformational(t *testing.T) {
	rep, _ := runQuick(t)
	// Same doctored 2x-faster timings, but recorded on a different machine
	// class: the diff must print, the gate must not fire (and -strict must
	// restore the hard gate).
	for i := range rep.Cells {
		rep.Cells[i].WallMS = rep.Cells[i].WallMS / 2
	}
	rep.Env.NumCPU++
	doctored := filepath.Join(t.TempDir(), "doctored.json")
	if err := rep.WriteFile(doctored); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-quick", "-out", filepath.Join(t.TempDir(), "new.json"),
		"-baseline", doctored, "-floor-ms", "0.001"}, &out); err != nil {
		t.Fatalf("cross-environment baseline should not gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "informational") {
		t.Errorf("expected environment-mismatch notice:\n%s", out.String())
	}
	out.Reset()
	err := run([]string{"-quick", "-out", filepath.Join(t.TempDir(), "new.json"),
		"-baseline", doctored, "-floor-ms", "0.001", "-strict"}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("-strict should gate across environments, got err=%v", err)
	}
}

// TestBaselineReadBeforeOverwrite pins the fix for the self-diff footgun:
// when -baseline names the same file the fresh report is written to (the
// default layout, where both are BENCH_<suite>.json), the baseline must be
// loaded before the run overwrites it — otherwise the diff would compare
// the run against itself and always pass.
func TestBaselineReadBeforeOverwrite(t *testing.T) {
	rep, _ := runQuick(t)
	for i := range rep.Cells {
		rep.Cells[i].WallMS = rep.Cells[i].WallMS / 2
	}
	path := filepath.Join(t.TempDir(), "BENCH_quick.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-quick", "-out", path, "-baseline", path, "-floor-ms", "0.001"}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("baseline at the output path must be diffed pre-overwrite (and trip the doctored gate), got err=%v\n%s",
			err, out.String())
	}
}

func TestBaselineMissingFile(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-quick", "-out", filepath.Join(t.TempDir(), "new.json"),
		"-baseline", filepath.Join(t.TempDir(), "nope.json")}, &out)
	if err == nil || errors.Is(err, errRegression) {
		t.Errorf("missing baseline should be a hard error, got %v", err)
	}
}

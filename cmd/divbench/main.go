// Command divbench runs a named benchmark suite over the scenario matrix
// (topology × size × solver × attack model), writes the results as
// machine-readable JSON and optionally diffs them against a baseline report,
// exiting nonzero on a wall-clock regression.  It is the binary behind the
// CI perf gate.
//
// Usage:
//
//	divbench -quick                           # the CI suite, writes BENCH_quick.json
//	divbench -suite full -out bench.json      # the paper-scale matrix
//	divbench -quick -baseline BENCH_quick.json -tolerance 0.15
//	divbench -list                            # known suites
//
// The report schema is documented in the README ("Benchmark harness"); the
// diff tolerates relative wall-clock changes up to -tolerance and absolute
// changes below -floor-ms, and never fails on cells that are new or missing
// relative to the baseline (suite edits refresh the baseline on merge).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"netdiversity/internal/scenario"
)

// errRegression distinguishes a perf-gate failure (exit 1 with the diff
// already printed) from usage/runtime errors.
var errRegression = errors.New("wall-clock regression against baseline")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errRegression) {
			fmt.Fprintln(os.Stderr, "divbench:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("divbench", flag.ContinueOnError)
	var (
		suiteName = fs.String("suite", "quick", "benchmark suite to run (see -list)")
		quick     = fs.Bool("quick", false, "shorthand for -suite quick")
		outPath   = fs.String("out", "", "output JSON path (default BENCH_<suite>.json)")
		baseline  = fs.String("baseline", "", "baseline JSON report to diff against")
		tolerance = fs.Float64("tolerance", 0.15, "relative wall-clock regression tolerance")
		floorMS   = fs.Float64("floor-ms", 10, "absolute wall-clock change (ms) below which cells never regress")
		strict    = fs.Bool("strict", false, "gate on the baseline even when it was produced in a different environment")
		seed      = fs.Int64("seed", 0, "override the suite's base seed (0 keeps the suite default)")
		workers   = fs.Int("workers", 0, "override the cell worker pool size (0 keeps the suite default)")
		timeout   = fs.Duration("timeout", 0, "override the per-cell timeout (0 keeps the suite default)")
		list      = fs.Bool("list", false, "list available suites and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range scenario.SuiteNames() {
			fmt.Fprintln(out, name)
		}
		return nil
	}
	if *quick {
		*suiteName = "quick"
	}
	m, err := scenario.Suite(*suiteName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		m.Seed = *seed
	}
	if *workers > 0 {
		m.Workers = *workers
	}
	if *timeout > 0 {
		m.Timeout = *timeout
	}
	path := *outPath
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", m.Name)
	}
	// Load the baseline before the run writes anything: with the default
	// output path, -baseline often names the same file the fresh report is
	// about to replace, and reading it afterwards would diff the run against
	// itself (always a pass).
	var base *scenario.Report
	if *baseline != "" {
		base, err = scenario.ReadFile(*baseline)
		if err != nil {
			return fmt.Errorf("loading baseline: %w", err)
		}
	}

	start := time.Now()
	rep, err := scenario.Run(context.Background(), m)
	if err != nil {
		return err
	}
	if err := rep.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "suite %s: %d cells in %.1fs -> %s\n",
		rep.Suite, len(rep.Cells), time.Since(start).Seconds(), path)
	printSummary(out, rep)
	timedOut := 0
	for _, c := range rep.Cells {
		if c.TimedOut {
			timedOut++
		}
	}
	if timedOut > 0 {
		fmt.Fprintf(out, "%d of %d cells timed out (recorded as timed_out markers, not failures)\n",
			timedOut, len(rep.Cells))
	}
	if failed := rep.Failed(); len(failed) > 0 {
		for _, c := range failed {
			fmt.Fprintf(out, "FAILED %s: %s\n", c.ID, c.Error)
		}
		return fmt.Errorf("%d of %d cells failed", len(failed), len(rep.Cells))
	}

	if base == nil {
		return nil
	}
	diff := scenario.Compare(base, rep, scenario.DiffOptions{Tolerance: *tolerance, FloorMS: *floorMS})
	fmt.Fprint(out, diff.Render())
	if !base.Env.Comparable(rep.Env) && !*strict {
		// Relative tolerance absorbs noise on one machine, not the speed gap
		// between machines: gating a runner against a laptop baseline would
		// measure the environment, not the change.  The gate arms itself once
		// the committed baseline comes from the same environment class (e.g.
		// the CI bench job's own artifact).
		fmt.Fprintf(out, "NOTE: baseline environment (%s/%s, %d cpu) differs from this run (%s/%s, %d cpu); diff is informational, not gated (use -strict to gate anyway)\n",
			base.Env.GOOS, base.Env.GOARCH, base.Env.NumCPU,
			rep.Env.GOOS, rep.Env.GOARCH, rep.Env.NumCPU)
		return nil
	}
	if diff.HasRegressions() {
		fmt.Fprintln(out, "FAIL: wall-clock regression against baseline")
		return errRegression
	}
	fmt.Fprintln(out, "PASS: no regression against baseline")
	return nil
}

// printSummary renders a compact per-cell table of the fresh run, plus an
// incremental-vs-full table when the suite has churn cells.
func printSummary(out io.Writer, rep *scenario.Report) {
	idWidth := len("cell")
	churn, scale, slam := false, false, false
	for _, c := range rep.Cells {
		if len(c.ID) > idWidth {
			idWidth = len(c.ID)
		}
		if c.ChurnSteps > 0 {
			churn = true
		}
		if c.Levels > 0 {
			scale = true
		}
		if c.SlamOps > 0 {
			slam = true
		}
	}
	fmt.Fprintf(out, "%-*s  %10s  %12s  %8s  %8s  %8s\n",
		idWidth, "cell", "wall ms", "energy", "mttc", "d1", "allocs")
	for _, c := range rep.Cells {
		if c.Error != "" {
			fmt.Fprintf(out, "%-*s  error: %s\n", idWidth, c.ID, c.Error)
			continue
		}
		if c.TimedOut {
			fmt.Fprintf(out, "%-*s  %10.1f  TIMED OUT\n", idWidth, c.ID, c.WallMS)
			continue
		}
		fmt.Fprintf(out, "%-*s  %10.1f  %12.3f  %8.2f  %8.4f  %8d\n",
			idWidth, c.ID, c.WallMS, c.Energy, c.MTTC, c.Richness, c.AllocObjects)
	}
	if scale {
		fmt.Fprintf(out, "\nscale: multilevel hierarchy vs the flat twin cell\n")
		fmt.Fprintf(out, "%-*s  %10s  %6s  %12s\n",
			idWidth, "cell", "coarsen", "levels", "gap vs flat")
		for _, c := range rep.Cells {
			if c.Levels == 0 {
				continue
			}
			gap := "-"
			if c.EnergyGapVsFlatPct != 0 {
				gap = fmt.Sprintf("%+.2f%%", c.EnergyGapVsFlatPct)
			}
			fmt.Fprintf(out, "%-*s  %8.0fms  %6d  %12s\n",
				idWidth, c.ID, c.CoarsenMS, c.Levels, gap)
		}
	}
	if slam {
		fmt.Fprintf(out, "\nslam: closed-loop multi-tenant load (p99 under contention)\n")
		fmt.Fprintf(out, "%-*s  %5s  %6s  %8s  %9s  %10s  %9s  %9s\n",
			idWidth, "cell", "t/w", "errors", "rps", "read p99", "delta p99", "p999", "alloc/op")
		for _, c := range rep.Cells {
			if c.SlamOps == 0 {
				continue
			}
			fmt.Fprintf(out, "%-*s  %2d/%-2d  %6d  %8.1f  %7.2fms  %8.2fms  %7.2fms  %8.0fB\n",
				idWidth, c.ID, c.SlamTenants, c.SlamWorkers, c.SlamErrors, c.SlamRPS,
				c.SlamReadP99MS, c.SlamDeltaP99MS, c.SlamP999MS, c.SlamAllocPerOp)
		}
	}
	if !churn {
		return
	}
	fmt.Fprintf(out, "\nchurn: incremental Reoptimize vs full re-solve per delta step\n")
	fmt.Fprintf(out, "%-*s  %5s  %10s  %10s  %8s  %9s  %9s\n",
		idWidth, "cell", "steps", "inc ms", "full ms", "speedup", "gap %", "changed")
	for _, c := range rep.Cells {
		if c.ChurnSteps == 0 {
			continue
		}
		fmt.Fprintf(out, "%-*s  %5d  %10.1f  %10.1f  %7.1fx  %9.3f  %9.4f\n",
			idWidth, c.ID, c.ChurnSteps, c.ChurnIncrementalMS, c.ChurnFullMS,
			c.ChurnSpeedup, c.ChurnEnergyGapPct, c.ChurnChangedFrac)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"netdiversity/internal/netmodel"
)

// syncBuffer is a goroutine-safe output sink for the daemon under test.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs the daemon on a free port and returns its base URL plus a
// shutdown function that asserts a clean drain.
func startDaemon(t *testing.T, extraArgs ...string) (string, func()) {
	t.Helper()
	var out syncBuffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(args, &out, stop) }()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(out.String(), "\n") {
			if addr, ok := strings.CutPrefix(line, "divd listening on "); ok {
				base = "http://" + strings.TrimSpace(addr)
			}
		}
		if base != "" {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v (output: %s)", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if base == "" {
		t.Fatalf("daemon never reported its address (output: %s)", out.String())
	}
	return base, func() {
		close(stop)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain within 10s")
		}
	}
}

// specFile writes a spec for a small chain network over paper products.
func specFile(t *testing.T, hosts int) string {
	t.Helper()
	spec := netmodel.Spec{}
	for i := 0; i < hosts; i++ {
		spec.Hosts = append(spec.Hosts, netmodel.HostSpec{
			ID:       netmodel.HostID(fmt.Sprintf("h%d", i)),
			Services: []netmodel.ServiceID{"os"},
			Choices: map[netmodel.ServiceID][]netmodel.ProductID{
				"os": {"win7", "ubt1404", "osx109"},
			},
		})
		if i > 0 {
			spec.Links = append(spec.Links, netmodel.Link{
				A: netmodel.HostID(fmt.Sprintf("h%d", i-1)),
				B: netmodel.HostID(fmt.Sprintf("h%d", i)),
			})
		}
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDaemonRoundTrip boots the daemon, runs the create → delta → assess
// round trip over real HTTP and shuts it down cleanly.
func TestDaemonRoundTrip(t *testing.T) {
	base, shutdown := startDaemon(t)
	defer shutdown()

	spec, err := os.ReadFile(specFile(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"id":"rt","spec":%s,"seed":5}`, spec)
	resp, err := http.Post(base+"/v1/networks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		Hosts          int    `json:"hosts"`
		AssignmentHash string `json:"assignment_hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.Hosts != 10 || created.AssignmentHash == "" {
		t.Fatalf("create: status %d response %+v", resp.StatusCode, created)
	}

	resp, err = http.Post(base+"/v1/networks/rt/deltas", "application/json",
		strings.NewReader(`{"ops":[{"op":"remove_edge","a":"h4","b":"h5"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var dres struct {
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dres.Version != 2 {
		t.Fatalf("delta: status %d version %d", resp.StatusCode, dres.Version)
	}

	resp, err = http.Post(base+"/v1/networks/rt/assess", "application/json",
		strings.NewReader(`{"runs":50,"max_ticks":100}`))
	if err != nil {
		t.Fatal(err)
	}
	var assess struct {
		MTTC float64 `json:"mttc"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&assess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || assess.MTTC <= 0 {
		t.Fatalf("assess: status %d mttc %f", resp.StatusCode, assess.MTTC)
	}
}

// TestDaemonPreload boots the daemon with a -preload spec and checks the
// session is live before the first request.
func TestDaemonPreload(t *testing.T) {
	base, shutdown := startDaemon(t, "-preload", specFile(t, 5))
	defer shutdown()

	resp, err := http.Get(base + "/v1/networks/preload-0")
	if err != nil {
		t.Fatal(err)
	}
	var summary struct {
		Hosts   int    `json:"hosts"`
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || summary.Hosts != 5 || summary.Version != 1 {
		t.Fatalf("preload session: status %d %+v", resp.StatusCode, summary)
	}
}

// TestDaemonPprof boots the daemon with -pprof and checks the profiler is
// served on its own listener — and is absent from the public API mux.
func TestDaemonPprof(t *testing.T) {
	var out syncBuffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-pprof", "127.0.0.1:0"}, &out, stop)
	}()
	var base, pprofBase string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && (base == "" || pprofBase == "") {
		for _, line := range strings.Split(out.String(), "\n") {
			if addr, ok := strings.CutPrefix(line, "divd listening on "); ok {
				base = "http://" + strings.TrimSpace(addr)
			}
			if addr, ok := strings.CutPrefix(line, "divd pprof on "); ok {
				pprofBase = "http://" + strings.TrimSpace(addr)
			}
		}
		if base == "" || pprofBase == "" {
			select {
			case err := <-done:
				t.Fatalf("daemon exited early: %v (output: %s)", err, out.String())
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
	if base == "" || pprofBase == "" {
		t.Fatalf("daemon never reported both addresses (output: %s)", out.String())
	}
	defer func() {
		close(stop)
		if err := <-done; err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	}()

	resp, err := http.Get(pprofBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index on pprof listener: status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable on the API mux: status %d", resp.StatusCode)
	}
}

// TestDaemonBadFlags pins flag-parse failures to an error return.
func TestDaemonBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-addr"}, &out, nil); err == nil {
		t.Fatal("missing flag value should fail")
	}
	if err := run([]string{"-preload", "/does/not/exist.json"}, &out, nil); err == nil {
		t.Fatal("missing preload file should fail")
	}
}

// TestDaemonRestartRecovery boots the daemon with a data directory, builds
// session state over HTTP, restarts it on the same directory and checks the
// recovered session serves the identical version and assignment hash.
func TestDaemonRestartRecovery(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "wal")
	base, shutdown := startDaemon(t, "-data-dir", dataDir, "-fsync", "always", "-snapshot-every", "2")

	spec, err := os.ReadFile(specFile(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"id":"crashme","spec":%s,"seed":9}`, spec)
	resp, err := http.Post(base+"/v1/networks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	for i := 0; i < 3; i++ {
		resp, err = http.Post(base+"/v1/networks/crashme/deltas", "application/json",
			strings.NewReader(fmt.Sprintf(
				`{"ops":[{"op":"add_host","host":{"id":"n%d","services":["os"],"choices":{"os":["win7","ubt1404","osx109"]}}},{"op":"add_edge","a":"h0","b":"n%d"}]}`, i, i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta %d: status %d", i, resp.StatusCode)
		}
	}
	readState := func(base string) (uint64, string) {
		resp, err := http.Get(base + "/v1/networks/crashme/assignment")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var got struct {
			Version uint64 `json:"version"`
			Hash    string `json:"assignment_hash"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("assignment: status %d", resp.StatusCode)
		}
		return got.Version, got.Hash
	}
	wantVersion, wantHash := readState(base)
	shutdown()

	base2, shutdown2 := startDaemon(t, "-data-dir", dataDir, "-fsync", "always")
	defer shutdown2()
	gotVersion, gotHash := readState(base2)
	if gotVersion != wantVersion || gotHash != wantHash {
		t.Fatalf("restart changed state: v%d/%s -> v%d/%s", wantVersion, wantHash, gotVersion, gotHash)
	}
	// The recovered session accepts further deltas and chains the version.
	resp, err = http.Post(base2+"/v1/networks/crashme/deltas", "application/json",
		strings.NewReader(`{"ops":[{"op":"remove_edge","a":"h2","b":"h3"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var dres struct {
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dres.Version != wantVersion+1 {
		t.Fatalf("post-recovery delta: status %d version %d (want %d)", resp.StatusCode, dres.Version, wantVersion+1)
	}
}

// TestDaemonBadFsyncFlag pins -fsync validation to a startup error.
func TestDaemonBadFsyncFlag(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-data-dir", t.TempDir(), "-fsync", "sometimes"}, &out, nil); err == nil {
		t.Fatal("bad -fsync value should fail")
	}
}

// TestDaemonReplicationPair boots a primary/follower pair through the real
// flag wiring (-replicate-to / -follow), replicates a session, pins the
// follower's read/redirect split and healthz roles, then promotes the
// follower after the primary drains and writes against it — the daemon-level
// slice of what internal/replic's chaos tests cover in-process.
func TestDaemonReplicationPair(t *testing.T) {
	// The primary needs the follower's URL at boot; reserve its port first.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	followerAddr := ln.Addr().String()
	ln.Close()

	primaryBase, shutdownPrimary := startDaemon(t, "-replicate-to", "http://"+followerAddr)
	primaryDown := false
	defer func() {
		if !primaryDown {
			shutdownPrimary()
		}
	}()
	followerBase, shutdownFollower := startDaemon(t,
		"-addr", followerAddr, "-follow", primaryBase, "-anti-entropy-interval", "100ms")
	defer shutdownFollower()

	spec, err := os.ReadFile(specFile(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"id":"rep","spec":%s,"seed":3}`, spec)
	resp, err := http.Post(primaryBase+"/v1/networks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	resp, err = http.Post(primaryBase+"/v1/networks/rep/deltas", "application/json",
		strings.NewReader(`{"ops":[{"op":"remove_edge","a":"h4","b":"h5"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: status %d", resp.StatusCode)
	}

	// The session reaches the follower, which serves the primary's exact
	// state from its replica.
	readState := func(base string) (int, uint64, string) {
		resp, err := http.Get(base + "/v1/networks/rep/assignment")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var got struct {
			Version uint64 `json:"version"`
			Hash    string `json:"assignment_hash"`
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, got.Version, got.Hash
	}
	_, wantVersion, wantHash := readState(primaryBase)
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, v, h := readState(followerBase)
		if code == http.StatusOK && v == wantVersion && h == wantHash {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never replicated v%d/%s (last: %d v%d/%s)", wantVersion, wantHash, code, v, h)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Follower writes bounce to the primary with 307 not_primary.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err = noRedirect.Post(followerBase+"/v1/networks/rep/deltas", "application/json",
		strings.NewReader(`{"ops":[{"op":"add_edge","a":"h0","b":"h7"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower write: status %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != primaryBase+"/v1/networks/rep/deltas" {
		t.Fatalf("follower write Location = %q", loc)
	}

	// Both healthz replication blocks report their role.
	role := func(base string) string {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Replication struct {
				Role string `json:"role"`
			} `json:"replication"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Replication.Role
	}
	if got := role(primaryBase); got != "primary" {
		t.Fatalf("primary healthz role = %q", got)
	}
	if got := role(followerBase); got != "follower" {
		t.Fatalf("follower healthz role = %q", got)
	}

	// Promote after the primary drains; the survivor serves the replicated
	// state and takes the next write at the chained version.
	shutdownPrimary()
	primaryDown = true
	resp, err = http.Post(followerBase+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var prom struct {
		Role     string `json:"role"`
		Sessions int    `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&prom); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || prom.Role != "primary" || prom.Sessions != 1 {
		t.Fatalf("promote: status %d %+v", resp.StatusCode, prom)
	}
	resp, err = http.Post(followerBase+"/v1/networks/rep/deltas", "application/json",
		strings.NewReader(`{"ops":[{"op":"add_edge","a":"h0","b":"h7"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var dres struct {
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dres.Version != wantVersion+1 {
		t.Fatalf("post-promotion delta: status %d version %d (want %d)", resp.StatusCode, dres.Version, wantVersion+1)
	}
}

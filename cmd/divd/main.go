// Command divd is the long-running diversification daemon: an HTTP/JSON
// service that holds many tenant networks alive as sessions, re-optimises
// them incrementally as deltas arrive and assesses them with the compiled
// attack engine.  See docs/API.md for the endpoint reference.
//
// Usage:
//
//	divd [-addr :8080] [-shards 8] [-solve-workers N] [-request-timeout 30s]
//	     [-max-sessions 1024] [-preload spec.json,spec2.json] [-pprof addr]
//
// Endpoints (all under /v1):
//
//	POST   /v1/networks                  create a session from a netmodel spec
//	GET    /v1/networks                  list sessions
//	GET    /v1/networks/{id}             session summary
//	DELETE /v1/networks/{id}             drop a session
//	POST   /v1/networks/{id}/deltas      apply a delta batch + re-optimise
//	GET    /v1/networks/{id}/assignment  current assignment (lock-free read)
//	GET    /v1/networks/{id}/metrics     energy, pairwise cost, d1/d2/d3
//	POST   /v1/networks/{id}/assess      Monte-Carlo attack campaign (MTTC)
//	GET    /healthz                      liveness + session count
//
// -preload creates one session per comma-separated spec file at startup
// (IDs preload-0, preload-1, ... with the paper similarity table), so a
// fleet can come up already serving.  -pprof serves net/http/pprof on a
// second listener with its own mux — the profiling surface is never mounted
// on the public API mux, so exposing the API never exposes the profiler.
// On SIGINT/SIGTERM the daemon drains:
// new state-changing requests get 503 while in-flight solves finish, then
// the listener closes.
//
// -data-dir enables the persistence plane (see docs/DURABILITY.md): every
// accepted delta batch is journaled to a per-session write-ahead log before
// it is acknowledged, compacted snapshots truncate the log every
// -snapshot-every records, and on boot the daemon recovers every session
// from the data directory before the listener opens.  -fsync picks the
// durability point of an ack: "always" (fsync before every ack), "interval"
// (background fsync every -fsync-interval) or "never" (write to the OS
// before ack — survives a process crash, not an OS crash; the default).
//
// -replicate-to and -follow enable the replication plane (see
// docs/REPLICATION.md).  A primary pushes every committed record to the
// follower URLs listed in -replicate-to; a node started with -follow
// <primary-url> runs as a read-only follower: it mirrors the primary's
// sessions through deterministic patch replay, serves GET traffic from its
// local snapshots, answers writes with a 307 not_primary redirect at the
// primary, and repairs any divergence with a background anti-entropy loop
// (every -anti-entropy-interval) whose cost scales with the difference, not
// the log.  -advertise overrides the URL the follower registers with the
// primary for push delivery (default: the bound listen address).  POST
// /v1/promote turns a caught-up follower into a writable primary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netdiversity/internal/core"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/replic"
	"netdiversity/internal/serve"
	"netdiversity/internal/vulnsim"
	"netdiversity/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "divd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until the context backing stop ends or a
// termination signal arrives.  The bound address is printed on stdout
// ("divd listening on ..."), so tests and scripts can start with -addr
// 127.0.0.1:0 and scrape the port.  stop is optional (tests use it to shut
// the daemon down without a signal).
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("divd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		shards       = fs.Int("shards", 8, "session-store shard count")
		solveWorkers = fs.Int("solve-workers", 0, "bound on concurrently executing solves (0 = GOMAXPROCS)")
		maxSessions  = fs.Int("max-sessions", 1024, "maximum live sessions")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-request deadline (shortened per request via ?timeout_ms=)")
		maxBody      = fs.Int64("max-request-bytes", 8<<20, "maximum request body size in bytes")
		preload      = fs.String("preload", "", "comma-separated netmodel spec files to create sessions from at startup")
		drainWait    = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof on this address (separate listener and mux; empty = disabled)")
		dataDir      = fs.String("data-dir", "", "persist sessions to this directory and recover them on boot (empty = memory-only)")
		fsyncMode    = fs.String("fsync", "never", "WAL durability point per ack: always, interval or never")
		fsyncEvery   = fs.Duration("fsync-interval", 100*time.Millisecond, "background fsync period under -fsync interval")
		snapEvery    = fs.Int("snapshot-every", 64, "WAL records per session between compacted snapshots")
		follow       = fs.String("follow", "", "run as a replication follower of the primary at this base URL (e.g. http://10.0.0.1:8080)")
		replicateTo  = fs.String("replicate-to", "", "comma-separated follower base URLs to push committed records to")
		advertise    = fs.String("advertise", "", "base URL where the primary can reach this node (default http://<bound-addr>)")
		aeInterval   = fs.Duration("anti-entropy-interval", 2*time.Second, "period of the follower's anti-entropy reconciliation loop")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := serve.Config{
		Shards:          *shards,
		SolveWorkers:    *solveWorkers,
		MaxSessions:     *maxSessions,
		RequestTimeout:  *reqTimeout,
		MaxRequestBytes: *maxBody,
	}
	var manager *wal.Manager
	if *dataDir != "" {
		policy, err := wal.ParsePolicy(*fsyncMode)
		if err != nil {
			return err
		}
		manager, err = wal.Open(wal.Options{
			Dir:           *dataDir,
			Policy:        policy,
			Interval:      *fsyncEvery,
			SnapshotEvery: *snapEvery,
		})
		if err != nil {
			return err
		}
		defer manager.Close()
		cfg.Persist = manager
	}
	// The replication plane comes up whenever this node pushes to followers
	// or follows a primary.  A follower gets a Primary too: its hook-fed
	// record history is what lets a promoted follower serve further
	// followers without warm-up.
	var (
		prim *replic.Primary
		fol  *replic.Follower
	)
	if *follow != "" || *replicateTo != "" {
		prim = replic.NewPrimary(replic.PrimaryOptions{})
		defer prim.Close()
		cfg.Replicator = prim
		cfg.OnPromote = func() {
			if fol != nil {
				fol.Stop()
			}
		}
		cfg.Replication = func() *serve.ReplicationStats { return replicationStats(prim, fol) }
	}
	srv := serve.New(cfg)
	if prim != nil {
		prim.Bind(srv)
	}
	if *follow != "" {
		srv.SetFollower(*follow)
	}
	if manager != nil {
		if err := recoverSessions(srv, manager, out, *follow != ""); err != nil {
			return err
		}
	}
	if *preload != "" {
		if err := preloadSpecs(srv, *preload, out); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "divd listening on %s\n", ln.Addr())

	// The profiler gets its own listener and mux: pprof handlers are
	// deliberately kept off the API mux so they share none of its exposure.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		defer pln.Close()
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(out, "divd pprof on %s\n", pln.Addr())
		go func() { _ = (&http.Server{Handler: pmux}).Serve(pln) }()
	}

	handler := srv.Handler()
	if prim != nil {
		// The replication endpoints share the API listener under /v1/replic/;
		// the ingest sink exists only on followers.
		rmux := http.NewServeMux()
		if *follow != "" {
			fol = replic.NewFollower(srv, *follow, replic.FollowerOptions{
				Interval:  *aeInterval,
				Advertise: advertiseURL(*advertise, ln.Addr()),
			})
			fol.Run()
			defer fol.Stop()
			rmux.Handle(replic.PathIngest, fol.IngestHandler())
		}
		rmux.Handle("/v1/replic/", prim.Handler())
		rmux.Handle("/", handler)
		handler = rmux
		for _, u := range strings.Split(*replicateTo, ",") {
			if u = strings.TrimSpace(u); u != "" {
				prim.Attach(u)
				fmt.Fprintf(out, "divd replicating to %s\n", u)
			}
		}
		if *follow != "" {
			fmt.Fprintf(out, "divd following %s\n", *follow)
		}
	}

	httpSrv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(out, "divd: %s, draining\n", sig)
	case <-stop:
		fmt.Fprintln(out, "divd: stop requested, draining")
	}

	// Drain: reject new state-changing work immediately, then let
	// http.Server.Shutdown wait for the in-flight handlers (and therefore
	// the in-flight solves) to complete.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// advertiseURL resolves the URL a follower registers with its primary for
// push delivery: the explicit -advertise value, or the bound listen address
// with an unspecified host rewritten to loopback (":0" binds every
// interface; the primary needs one it can dial).
func advertiseURL(explicit string, bound net.Addr) string {
	if explicit != "" {
		return explicit
	}
	host, port, err := net.SplitHostPort(bound.String())
	if err != nil {
		return "http://" + bound.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// replicationStats maps the replication plane's state onto the healthz
// block: push-side follower lag from the Primary, pull-side anti-entropy
// state from the Follower (when this node follows).
func replicationStats(prim *replic.Primary, fol *replic.Follower) *serve.ReplicationStats {
	rs := &serve.ReplicationStats{}
	for _, f := range prim.Followers() {
		rs.Followers = append(rs.Followers, serve.FollowerLag{
			URL:            f.URL,
			QueuedRecords:  f.QueuedRecords,
			QueuedBytes:    f.QueuedBytes,
			SentRecords:    f.SentRecords,
			DroppedRecords: f.Dropped,
			Errors:         f.Errors,
			LastError:      f.LastError,
		})
	}
	if fol != nil {
		st := fol.Stats()
		rs.AntiEntropy = &serve.AntiEntropyStats{
			Rounds:           st.Rounds,
			LastRoundUnixMS:  st.LastRoundUnixMS,
			InSync:           st.InSync,
			RecordsApplied:   st.RecordsApplied,
			RecordsFetched:   st.RecordsFetched,
			SnapshotsFetched: st.SnapshotsFetched,
			BadRecords:       st.BadRecords,
			PendingRecords:   st.PendingRecords,
			Errors:           st.Errors,
			LastError:        st.LastError,
		}
	}
	return rs
}

// recoverSessions restores every session the data directory holds before
// the listener opens, so a restarted daemon comes back serving exactly the
// durably-acked state.  Unrecoverable sessions are reported and skipped —
// one corrupt tenant must not keep the rest of the fleet down.  A follower
// restores replica sessions (no optimiser — they stay advanceable by patch
// replay and the anti-entropy loop catches them up from the primary).
func recoverSessions(srv *serve.Server, manager *wal.Manager, out io.Writer, follower bool) error {
	recovered, skipped, err := manager.Recover()
	if err != nil {
		return err
	}
	restore := srv.Restore
	if follower {
		restore = srv.RestoreReplica
	}
	for _, rec := range recovered {
		if err := restore(rec); err != nil {
			fmt.Fprintf(out, "divd: recovery skipped %s: %v\n", rec.Snapshot.ID, err)
			continue
		}
		note := ""
		if rec.TornTail {
			note = " (torn log tail dropped)"
		}
		fmt.Fprintf(out, "divd: recovered %s at version %d (%d records replayed)%s\n",
			rec.Snapshot.ID, rec.Snapshot.Version, rec.Replayed, note)
	}
	for _, sk := range skipped {
		fmt.Fprintf(out, "divd: recovery skipped %s: %v\n", sk.ID, sk.Err)
	}
	return nil
}

// preloadSpecs creates one session per spec file before the listener opens,
// using the strict decoder (preload files often come from the same untrusted
// sources as API requests) and the paper similarity table.  A preload ID
// that already exists (recovered from the data directory) is left as is —
// the recovered state is newer than the spec file.
func preloadSpecs(srv *serve.Server, list string, out io.Writer) error {
	for i, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		net, cs, err := netmodel.DecodeSpecStrict(f, netmodel.SpecLimits{})
		f.Close()
		if err != nil {
			return fmt.Errorf("preload %s: %w", path, err)
		}
		id := fmt.Sprintf("preload-%d", i)
		if err := srv.Preload(id, net, cs, vulnsim.PaperSimilarity(), core.Options{}); err != nil {
			if errors.Is(err, serve.ErrSessionExists) {
				fmt.Fprintf(out, "divd: preload %s: %s already recovered, keeping recovered state\n", path, id)
				continue
			}
			return fmt.Errorf("preload %s: %w", path, err)
		}
		fmt.Fprintf(out, "divd: preloaded %s as %s\n", path, id)
	}
	return nil
}

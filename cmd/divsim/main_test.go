package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCaseStudyMono(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-case-study", "-assignment", "mono", "-runs", "50", "-entry", "c4", "-target", "t5", "-seed", "2"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "mttc=") || !strings.Contains(got, "d_bn=") {
		t.Errorf("output missing metrics:\n%s", got)
	}
}

func TestRunCaseStudyOptimalVsMono(t *testing.T) {
	extract := func(args []string) string {
		t.Helper()
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("run %v: %v", args, err)
		}
		return out.String()
	}
	mono := extract([]string{"-case-study", "-assignment", "mono", "-runs", "60", "-seed", "5"})
	optimal := extract([]string{"-case-study", "-assignment", "optimal", "-runs", "60", "-seed", "5"})
	if mono == optimal {
		t.Error("mono and optimal evaluations should differ")
	}
}

func TestRunRandomAndConstraints(t *testing.T) {
	for _, assignment := range []string{"random", "host-constraints"} {
		var out bytes.Buffer
		args := []string{"-case-study", "-assignment", assignment, "-runs", "30", "-seed", "1"}
		if err := run(args, &out); err != nil {
			t.Fatalf("assignment %s: %v", assignment, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-case-study", "-assignment", "bogus"}, &out); err == nil {
		t.Error("unknown assignment should fail")
	}
	if err := run([]string{"-case-study", "-entry", "nope", "-runs", "5"}, &out); err == nil {
		t.Error("unknown entry host should fail")
	}
	if err := run([]string{"-in", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing spec file should fail")
	}
	if err := run([]string{"-assignment-file", "/nonexistent.json", "-case-study"}, &out); err == nil {
		t.Error("missing assignment file should fail")
	}
	if err := run([]string{"-xyz"}, &out); err == nil {
		t.Error("unknown flag should fail")
	}
}

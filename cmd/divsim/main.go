// Command divsim evaluates a product assignment by running the
// malware-propagation simulator (MTTC) and the Bayesian-network diversity
// metric against the built-in case study or a user-supplied network spec.
//
// Usage:
//
//	divsim -case-study -assignment optimal -entry c4 -target t5
//	divsim -in network.json -assignment-file assignment.json -entry h0 -target h9
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"netdiversity"
	"netdiversity/internal/baseline"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/core"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/profiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "divsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("divsim", flag.ContinueOnError)
	var (
		inPath     = fs.String("in", "", "path to a network spec JSON")
		useCase    = fs.Bool("case-study", false, "use the built-in ICS case study")
		assign     = fs.String("assignment", "optimal", "assignment to evaluate: optimal, host-constraints, product-constraints, random, mono")
		assignIn   = fs.String("assignment-file", "", "path to an assignment JSON (overrides -assignment)")
		entry      = fs.String("entry", "c4", "entry host of the attacker")
		target     = fs.String("target", "t5", "target host")
		runs       = fs.Int("runs", 1000, "simulation runs")
		maxTicks   = fs.Int("max-ticks", 500, "maximum ticks per simulation run")
		pavg       = fs.Float64("pavg", 0.2, "average zero-day propagation rate")
		seed       = fs.Int64("seed", 1, "random seed")
		solverName = fs.String("solver", "trws", "optimiser solver for the optimal/constrained assignments: "+strings.Join(core.SolverNames(), ", "))
		workers    = fs.Int("workers", 1, "worker goroutines for parallel solver stages")
		cpuProfile = fs.String("cpuprofile", "", "write cpu profile to `file`")
		memProfile = fs.String("memprofile", "", "write memory profile to `file`")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiling(); perr != nil && err == nil {
			err = perr
		}
	}()

	net, sim, err := loadNetwork(*inPath, *useCase)
	if err != nil {
		return err
	}
	solver, err := core.ParseSolver(*solverName)
	if err != nil {
		return err
	}
	assignment, err := resolveAssignment(net, sim, *assign, *assignIn, optimizerOptions{
		solver:  solver,
		workers: *workers,
		seed:    *seed,
	})
	if err != nil {
		return err
	}

	simulator, err := netdiversity.NewSimulator(net, assignment, sim)
	if err != nil {
		return err
	}
	simRes, err := simulator.Run(netdiversity.SimulationConfig{
		Entry:    netmodel.HostID(*entry),
		Target:   netmodel.HostID(*target),
		Runs:     *runs,
		MaxTicks: *maxTicks,
		PAvg:     *pavg,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	divRes, err := netdiversity.Diversity(net, assignment, sim, netdiversity.DiversityConfig{
		Entry:  netmodel.HostID(*entry),
		Target: netmodel.HostID(*target),
		PAvg:   *pavg,
	}, netdiversity.InferenceOptions{Seed: *seed})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "assignment=%s entry=%s target=%s\n", *assign, *entry, *target)
	fmt.Fprintf(out, "mttc=%.3f median=%.1f p90=%.1f success_rate=%.3f mean_infected=%.2f (%d runs)\n",
		simRes.MTTC, simRes.MedianTTC, simRes.P90TTC, simRes.SuccessRate, simRes.MeanInfected, simRes.Runs)
	fmt.Fprintf(out, "diversity d_bn=%.5f logP'=%.3f logP=%.3f\n",
		divRes.Diversity, divRes.LogPTargetNoSim, divRes.LogPTarget)
	return nil
}

func loadNetwork(inPath string, useCase bool) (*netmodel.Network, *netdiversity.SimilarityTable, error) {
	if useCase || inPath == "" {
		net, err := casestudy.Build()
		if err != nil {
			return nil, nil, err
		}
		return net, casestudy.Similarity(), nil
	}
	f, err := os.Open(inPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	net, _, err := netmodel.ReadSpec(f)
	if err != nil {
		return nil, nil, err
	}
	return net, netdiversity.PaperSimilarity(), nil
}

// optimizerOptions carries the solver selection of the command line into
// resolveAssignment.
type optimizerOptions struct {
	solver  core.Solver
	workers int
	seed    int64
}

func resolveAssignment(net *netmodel.Network, sim *netdiversity.SimilarityTable, kind, file string, oo optimizerOptions) (*netmodel.Assignment, error) {
	seed := oo.seed
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		a := netmodel.NewAssignment()
		if err := json.Unmarshal(data, a); err != nil {
			return nil, err
		}
		return a, nil
	}
	optimize := func(cs *netmodel.ConstraintSet) (*netmodel.Assignment, error) {
		opt, err := netdiversity.NewOptimizer(net, sim, core.Options{
			Solver:  oo.solver,
			Workers: oo.workers,
			Seed:    seed,
		})
		if err != nil {
			return nil, err
		}
		if cs != nil {
			if err := opt.SetConstraints(cs); err != nil {
				return nil, err
			}
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			return nil, err
		}
		return res.Assignment, nil
	}
	switch kind {
	case "optimal":
		return optimize(nil)
	case "host-constraints":
		return optimize(casestudy.HostConstraints())
	case "product-constraints":
		return optimize(casestudy.ProductConstraints())
	case "random":
		return baseline.Random(net, nil, seed)
	case "mono":
		return baseline.Mono(net, nil)
	default:
		return nil, fmt.Errorf("unknown assignment %q", kind)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netdiversity/internal/netmodel"
)

func writeSpecFile(t *testing.T) string {
	t.Helper()
	spec := netmodel.Spec{
		Hosts: []netmodel.HostSpec{
			{
				ID:       "a",
				Services: []netmodel.ServiceID{"os"},
				Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"win7", "deb80"}},
			},
			{
				ID:       "b",
				Services: []netmodel.ServiceID{"os"},
				Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"win7", "deb80"}},
			},
		},
		Links: []netmodel.Link{{A: "a", B: "b"}},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithSpecFile(t *testing.T) {
	path := writeSpecFile(t)
	outPath := filepath.Join(t.TempDir(), "assignment.json")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-out", outPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "hosts=2") {
		t.Errorf("summary missing host count:\n%s", out.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("assignment file not written: %v", err)
	}
	a := netmodel.NewAssignment()
	if err := json.Unmarshal(data, a); err != nil {
		t.Fatalf("assignment file not valid JSON: %v", err)
	}
	if a.Len() != 2 {
		t.Errorf("assignment has %d entries, want 2", a.Len())
	}
	// The two connected hosts should receive different operating systems.
	if a.Product("a", "os") == a.Product("b", "os") {
		t.Error("connected hosts should be diversified")
	}
}

func TestRunDotExport(t *testing.T) {
	path := writeSpecFile(t)
	dotPath := filepath.Join(t.TempDir(), "net.dot")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-dot", dotPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatalf("dot file not written: %v", err)
	}
	if !strings.Contains(string(data), "graph \"diversified\"") {
		t.Errorf("dot output unexpected:\n%s", data)
	}
}

func TestRunCaseStudyScenarios(t *testing.T) {
	for _, scenario := range []string{"none", "host-constraints", "product-constraints"} {
		var out bytes.Buffer
		if err := run([]string{"-case-study", "-scenario", scenario, "-iterations", "30"}, &out); err != nil {
			t.Fatalf("scenario %s: %v", scenario, err)
		}
		if !strings.Contains(out.String(), "hosts=29") {
			t.Errorf("scenario %s output missing case-study size:\n%s", scenario, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -in should fail")
	}
	if err := run([]string{"-in", "/nonexistent/spec.json"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"-case-study", "-scenario", "bogus"}, &out); err == nil {
		t.Error("unknown scenario should fail")
	}
	if err := run([]string{"-case-study", "-solver", "bogus"}, &out); err == nil {
		t.Error("unknown solver should fail")
	}
	if err := run([]string{"-zzz"}, &out); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestRunWatchMode(t *testing.T) {
	specPath := writeSpecFile(t)
	dir := t.TempDir()
	deltaPath := filepath.Join(dir, "deltas.jsonl")
	outPath := filepath.Join(dir, "assignment.json")
	deltas := []netmodel.Delta{
		{Ops: []netmodel.DeltaOp{
			{Op: netmodel.OpAddHost, Host: &netmodel.HostSpec{
				ID:       "c",
				Services: []netmodel.ServiceID{"os"},
				Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"win7", "deb80"}},
			}},
			{Op: netmodel.OpAddEdge, A: "c", B: "a"},
			{Op: netmodel.OpAddEdge, A: "c", B: "b"},
		}},
		{Ops: []netmodel.DeltaOp{
			{Op: netmodel.OpRemoveEdge, A: "a", B: "b"},
		}},
	}
	var buf bytes.Buffer
	if err := netmodel.EncodeDeltas(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(deltaPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-in", specPath, "-watch", deltaPath, "-out", outPath}, &out)
	if err != nil {
		t.Fatalf("watch run: %v\n%s", err, out.String())
	}
	// One status line per delta, with growing sequence numbers.
	var statuses []watchStatus
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var st watchStatus
		if err := json.Unmarshal([]byte(line), &st); err != nil {
			t.Fatalf("bad status line %q: %v", line, err)
		}
		statuses = append(statuses, st)
	}
	if len(statuses) != len(deltas) {
		t.Fatalf("got %d status lines, want %d:\n%s", len(statuses), len(deltas), out.String())
	}
	if statuses[0].Seq != 1 || statuses[0].Hosts != 3 || statuses[0].Ops != 3 {
		t.Fatalf("first status: %+v", statuses[0])
	}
	if statuses[1].Seq != 2 {
		t.Fatalf("second status: %+v", statuses[1])
	}
	// The -out file holds the final assignment including the joined host.
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var a netmodel.Assignment
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get("c", "os"); !ok {
		t.Fatalf("final assignment misses the joined host: %s", data)
	}
	// The joined host ended diversified against its neighbours (a and b are
	// no longer linked after delta 2, c is linked to both).
	pa, _ := a.Get("a", "os")
	pc, _ := a.Get("c", "os")
	if pa == pc {
		t.Fatalf("watch mode did not re-diversify: a=%s c=%s", pa, pc)
	}
}

func TestRunWatchModeBadDelta(t *testing.T) {
	specPath := writeSpecFile(t)
	dir := t.TempDir()
	deltaPath := filepath.Join(dir, "deltas.jsonl")
	if err := os.WriteFile(deltaPath, []byte(`{"ops":[{"op":"remove_host","id":"nope"}]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", specPath, "-watch", deltaPath}, &out); err == nil {
		t.Fatal("watch run with bad delta succeeded")
	}
}

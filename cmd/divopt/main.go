// Command divopt computes an optimal diversification strategy for a network
// described by a JSON spec (see netmodel.Spec) and prints the resulting
// assignment.
//
// Usage:
//
//	divopt -in network.json [-solver trws] [-iterations 100] [-out assignment.json]
//	divopt -case-study            # run on the built-in Stuxnet case study
//	divopt -case-study -scenario host-constraints
//	divopt -in big.json -parallel 8 -workers 4    # partitioned parallel mode
//	divopt -in big.json -cpuprofile cpu.pprof -memprofile mem.pprof
//	divopt -in net.json -watch deltas.jsonl       # incremental serving mode
//
// With -out the assignment is written as JSON; the human-readable summary is
// always printed to stdout.  -solver accepts any name from the solver
// registry (trws, bp, icm, anneal); -parallel N > 1 runs the
// partition-solve-merge-refine pipeline with N blocks on a worker pool of
// -workers goroutines.
//
// Watch mode turns divopt into a long-lived serving loop: after the initial
// solve it reads a stream of network deltas (one netmodel.Delta JSON object
// per line; '-' reads stdin) and re-optimises incrementally after each one
// (core.ApplyDelta + Reoptimize), emitting one JSON status line per step.
// With -out the latest assignment is rewritten after every step, so the file
// always holds the currently served assignment.  A delta that fails to apply
// ends the run with an error while the previous assignment stays intact.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"netdiversity"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/core"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/profiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "divopt:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("divopt", flag.ContinueOnError)
	var (
		inPath     = fs.String("in", "", "path to a network spec JSON (use '-' for stdin)")
		outPath    = fs.String("out", "", "write the assignment as JSON to this file")
		dotPath    = fs.String("dot", "", "write a Graphviz rendering of the network with the assignment to this file")
		solverName = fs.String("solver", "trws", "solver from the registry: "+strings.Join(core.SolverNames(), ", "))
		iterations = fs.Int("iterations", 100, "maximum solver iterations")
		workers    = fs.Int("workers", 1, "worker goroutines for parallel solver stages and the partitioned block pool")
		parallel   = fs.Int("parallel", 1, "partition the network into this many blocks and optimise them concurrently (<=1 runs sequentially)")
		seed       = fs.Int64("seed", 1, "random seed for randomised solvers")
		useCase    = fs.Bool("case-study", false, "ignore -in and optimise the built-in ICS case study")
		scenario   = fs.String("scenario", "none", "case-study constraint scenario: none, host-constraints, product-constraints")
		cpuProfile = fs.String("cpuprofile", "", "write cpu profile to `file`")
		memProfile = fs.String("memprofile", "", "write memory profile to `file`")
		watchPath  = fs.String("watch", "", "after the initial solve, read a JSON-lines delta stream from this `file` ('-' for stdin) and re-optimise incrementally per delta")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiling(); perr != nil && err == nil {
			err = perr
		}
	}()

	net, cs, sim, err := loadProblem(*inPath, *useCase, *scenario)
	if err != nil {
		return err
	}
	solver, err := core.ParseSolver(*solverName)
	if err != nil {
		return err
	}
	opt, err := netdiversity.NewOptimizer(net, sim, core.Options{
		Solver:        solver,
		MaxIterations: *iterations,
		Workers:       *workers,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}
	if cs != nil && !cs.Empty() {
		if err := opt.SetConstraints(cs); err != nil {
			return err
		}
	}
	var res core.Result
	if *parallel > 1 {
		pres, perr := opt.OptimizeParallel(context.Background(), *parallel)
		if perr != nil {
			return perr
		}
		res = pres.Result
		fmt.Fprintf(out, "parallel blocks=%d cut_links=%d pool_workers=%d\n",
			pres.Blocks, pres.CutLinks, pres.Workers)
	} else {
		res, err = opt.Optimize(context.Background())
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "hosts=%d links=%d mrf_nodes=%d mrf_edges=%d\n",
		net.NumHosts(), net.NumLinks(), res.Nodes, res.Edges)
	fmt.Fprintf(out, "solver=%s energy=%.4f iterations=%d converged=%v runtime=%s\n",
		solver, res.Energy, res.Iterations, res.Converged, res.Runtime)
	pairCost, err := netdiversity.PairwiseSimilarityCost(net, sim, res.Assignment)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pairwise_similarity_cost=%.4f\n", pairCost)
	if len(res.ConstraintViolations) > 0 {
		fmt.Fprintf(out, "constraint_violations=%d\n", len(res.ConstraintViolations))
		for _, v := range res.ConstraintViolations {
			fmt.Fprintf(out, "  violation: %s\n", v)
		}
	}
	fmt.Fprint(out, res.Assignment.String())

	if *outPath != "" {
		if err := writeAssignment(*outPath, res.Assignment); err != nil {
			return err
		}
	}
	if *dotPath != "" {
		dot, err := netmodel.Dot(net, netmodel.DotOptions{Assignment: res.Assignment, Name: "diversified"})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dotPath, []byte(dot), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *dotPath, err)
		}
	}
	if *watchPath != "" {
		return watch(out, opt, *watchPath, *outPath)
	}
	return nil
}

func writeAssignment(path string, a *netmodel.Assignment) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("encode assignment: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

// watchStatus is the JSON status line emitted after every watch-mode step.
type watchStatus struct {
	Seq           int     `json:"seq"`
	Ops           int     `json:"ops"`
	Hosts         int     `json:"hosts"`
	Energy        float64 `json:"energy"`
	IncrementalMS float64 `json:"incremental_ms"`
	DirtyNodes    int     `json:"dirty_nodes"`
	LiveNodes     int     `json:"live_nodes"`
	Rebuilt       bool    `json:"rebuilt,omitempty"`
	ChangedHosts  int     `json:"changed_hosts"`
}

// watch consumes a JSON-lines delta stream and re-optimises incrementally
// after every delta, emitting one status line per step.  When outPath is
// set, the latest assignment is rewritten after each step.
func watch(out io.Writer, opt *netdiversity.Optimizer, watchPath, outPath string) error {
	var r io.Reader
	if watchPath == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(watchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dec := netmodel.NewDeltaDecoder(r)
	enc := json.NewEncoder(out)
	seq := 0
	for {
		delta, err := dec.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("watch: %w", err)
		}
		seq++
		prev := opt.LastAssignment()
		start := time.Now() // covers patch + warm re-solve, the full step cost
		if err := opt.ApplyDelta(delta); err != nil {
			return fmt.Errorf("watch: delta %d: %w", seq, err)
		}
		res, err := opt.Reoptimize(context.Background())
		if err != nil {
			return fmt.Errorf("watch: delta %d: %w", seq, err)
		}
		changed := 0
		for _, h := range res.Assignment.Hosts() {
			if prev == nil {
				break
			}
			was := prev.HostAssignment(h)
			if len(was) == 0 {
				changed++ // joined
				continue
			}
			now := res.Assignment.HostAssignment(h)
			for s, p := range now {
				if was[s] != p {
					changed++
					break
				}
			}
		}
		if err := enc.Encode(watchStatus{
			Seq:           seq,
			Ops:           len(delta.Ops),
			Hosts:         len(res.Assignment.Hosts()),
			Energy:        res.Energy,
			IncrementalMS: float64(time.Since(start)) / float64(time.Millisecond),
			DirtyNodes:    res.DirtyNodes,
			LiveNodes:     res.LiveNodes,
			Rebuilt:       res.Rebuilt,
			ChangedHosts:  changed,
		}); err != nil {
			return err
		}
		if outPath != "" {
			if err := writeAssignment(outPath, res.Assignment); err != nil {
				return err
			}
		}
	}
}

// loadProblem resolves the network, constraints and similarity table either
// from the built-in case study or from a spec file.
func loadProblem(inPath string, useCase bool, scenario string) (*netmodel.Network, *netmodel.ConstraintSet, *netdiversity.SimilarityTable, error) {
	if useCase {
		net, err := casestudy.Build()
		if err != nil {
			return nil, nil, nil, err
		}
		var cs *netmodel.ConstraintSet
		switch scenario {
		case "none", "":
		case "host-constraints":
			cs = casestudy.HostConstraints()
		case "product-constraints":
			cs = casestudy.ProductConstraints()
		default:
			return nil, nil, nil, fmt.Errorf("unknown scenario %q", scenario)
		}
		return net, cs, casestudy.Similarity(), nil
	}
	if inPath == "" {
		return nil, nil, nil, fmt.Errorf("either -in or -case-study is required")
	}
	var r io.Reader
	if inPath == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, nil, nil, err
		}
		defer f.Close()
		r = f
	}
	net, cs, err := netmodel.ReadSpec(r)
	if err != nil {
		return nil, nil, nil, err
	}
	// Spec-driven runs use the paper similarity table; unknown products fall
	// back to the table's default similarity (0).
	return net, cs, netdiversity.PaperSimilarity(), nil
}

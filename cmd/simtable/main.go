// Command simtable prints vulnerability-similarity tables: either the tables
// published in the paper (Tables II/III and the case-study database table) or
// a table recomputed from a synthetic NVD-style CVE corpus, exercising the
// full CVE -> CPE -> Jaccard pipeline offline.
//
// Usage:
//
//	simtable -table os                # Table II as published
//	simtable -table browser -json     # Table III as JSON
//	simtable -table os -recompute     # regenerate from a synthetic corpus
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"netdiversity/internal/nvdgen"
	"netdiversity/internal/vulnsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simtable:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simtable", flag.ContinueOnError)
	var (
		which     = fs.String("table", "os", "which table: os, browser, database, merged")
		recompute = fs.Bool("recompute", false, "regenerate the table from a synthetic NVD corpus instead of printing the published values")
		asJSON    = fs.Bool("json", false, "emit the table as JSON instead of text")
		fromYear  = fs.Int("from-year", 0, "only count vulnerabilities published in or after this year (recompute mode)")
		toYear    = fs.Int("to-year", 0, "only count vulnerabilities published in or before this year (recompute mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var table *vulnsim.SimilarityTable
	switch *which {
	case "os":
		table = vulnsim.PaperOSTable()
	case "browser":
		table = vulnsim.PaperBrowserTable()
	case "database":
		table = vulnsim.PaperDatabaseTable()
	case "merged":
		table = vulnsim.PaperSimilarity()
	default:
		return fmt.Errorf("unknown table %q (want os, browser, database or merged)", *which)
	}

	if *recompute {
		db, err := nvdgen.FromSimilarityTable(table, 1999)
		if err != nil {
			return err
		}
		filter := vulnsim.VulnFilter{FromYear: *fromYear, ToYear: *toYear}
		table = vulnsim.BuildSimilarityTable(db, table.Products(), filter)
		fmt.Fprintf(out, "# recomputed from a synthetic corpus of %d CVE records\n", db.Len())
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(table)
	}
	return table.Render(out)
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunPublishedTables(t *testing.T) {
	for _, table := range []string{"os", "browser", "database", "merged"} {
		var out bytes.Buffer
		if err := run([]string{"-table", table}, &out); err != nil {
			t.Fatalf("run -table %s: %v", table, err)
		}
		if out.Len() == 0 {
			t.Errorf("-table %s produced no output", table)
		}
	}
}

func TestRunRecompute(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "os", "-recompute"}, &out); err != nil {
		t.Fatalf("run -recompute: %v", err)
	}
	if !strings.Contains(out.String(), "recomputed from a synthetic corpus") {
		t.Errorf("recompute output missing corpus note:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "win7") {
		t.Error("recomputed table should list win7")
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "browser", "-json"}, &out); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if _, ok := decoded["products"]; !ok {
		t.Error("JSON output missing products field")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "unknown"}, &out); err == nil {
		t.Error("unknown table should fail")
	}
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Error("unknown flag should fail")
	}
}

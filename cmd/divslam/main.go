// Command divslam is the load generator for the serving plane: it drives a
// divd instance — in-process by default, or a remote base URL via -url —
// with a weighted mix of create/delta/assess/assignment-read/metrics
// requests across many tenant sessions, and reports per-operation latency
// histograms (p50/p99/p999, worker-count-invariant), error/429/503/504
// accounting and achieved-vs-offered throughput as schema-versioned JSON.
// See docs/LOADTEST.md for the full guide.
//
// Usage:
//
//	divslam [-mode closed|open] [-tenants N] [-workers N] [-rate R]
//	        [-worker-rate R] [-dur 10s] [-ops N] [-mix read=70,delta=15,...]
//	        [-hosts N] [-degree N] [-services N] [-solver trws] [-seed S]
//	        [-retries N] [-backoff 100ms] [-replica-reads]
//	        [-vary field -values v1,v2,...] [-url http://host:port]
//	        [-out report.json]
//
// Closed loop (default) runs -workers workers that each issue their next
// request as soon as the previous returns, paced by -rate (total) and
// -worker-rate (per worker).  Open loop fires requests on a seeded Poisson
// schedule at -rate regardless of completions, measuring latency from the
// scheduled arrival time so queueing collapse is visible.  -vary sweeps one
// field (tenants, workers, rate, hosts, mix) across -values as sub-runs of
// one report.
//
// -retries gives each logical operation a retry budget against 429/503
// backpressure: the client sleeps the response's Retry-After when present
// and an exponential -backoff otherwise, and only the final outcome counts
// as success or error — consumed retries are reported separately, and the
// recorded latency covers the whole logical operation including backoff.
//
// -replica-reads boots an in-process primary/follower replication pair
// (internal/replic) instead of a single server: writes target the primary,
// reads and metrics the follower, and setup waits for the follower to
// converge on the tenant population — the replica-read deployment shape
// under the same load machinery.  In-process mode only (no -url).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"netdiversity/internal/slam"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "divslam:", err)
		os.Exit(1)
	}
}

// run parses the flags, executes the (possibly swept) load run and writes
// the report; a summary table per sub-run goes to out as the sweep
// progresses.  SIGINT/SIGTERM cancels the run.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("divslam", flag.ContinueOnError)
	var (
		url        = fs.String("url", "", "remote divd base URL (empty boots an in-process server)")
		mode       = fs.String("mode", "closed", "load model: closed (worker pool) or open (Poisson arrivals)")
		tenants    = fs.Int("tenants", 4, "tenant sessions created before the measured phase")
		hosts      = fs.Int("hosts", 50, "hosts per tenant network")
		degree     = fs.Int("degree", 8, "average degree of tenant networks")
		services   = fs.Int("services", 3, "services per host")
		solver     = fs.String("solver", "trws", "per-session solver")
		maxIter    = fs.Int("max-iterations", 40, "solver iteration budget per session")
		assessRuns = fs.Int("assess-runs", 20, "Monte-Carlo runs per assess request")
		seed       = fs.Int64("seed", 42, "seed for tenant generation, op draws and arrivals")
		workers    = fs.Int("workers", 8, "closed-loop workers / open-loop dispatch pool")
		rate       = fs.Float64("rate", 0, "total request rate cap (required and = offered rate in open loop; 0 = unlimited in closed loop)")
		workerRate = fs.Float64("worker-rate", 0, "per-worker rate cap, closed loop (0 = unlimited)")
		dur        = fs.Duration("dur", 0, "measured-phase duration (default 10s unless -ops is set)")
		ops        = fs.Int("ops", 0, "measured-phase request budget, closed loop (0 = duration-bounded)")
		mix        = fs.String("mix", slam.DefaultMix, "weighted operation mix, op=weight pairs")
		reqTimeout = fs.Duration("request-timeout", 30*time.Second, "per-request client deadline")
		retries    = fs.Int("retries", 0, "retry budget per operation on 429/503 (0 = no retries)")
		backoff    = fs.Duration("backoff", 100*time.Millisecond, "base retry backoff when the response has no Retry-After (doubles per attempt)")
		replicaRds = fs.Bool("replica-reads", false, "boot an in-process primary/follower pair and serve reads/metrics from the follower (in-process mode only)")
		vary       = fs.String("vary", "", "field swept across -values: "+strings.Join(slam.VaryFields(), ", "))
		values     = fs.String("values", "", "comma-separated values of the -vary field")
		outPath    = fs.String("out", "", "write the JSON report to this file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := slam.Config{
		URL:            *url,
		Mode:           *mode,
		Tenants:        *tenants,
		Hosts:          *hosts,
		Degree:         *degree,
		Services:       *services,
		Solver:         *solver,
		MaxIterations:  *maxIter,
		AssessRuns:     *assessRuns,
		Seed:           *seed,
		Workers:        *workers,
		Rate:           *rate,
		WorkerRate:     *workerRate,
		Dur:            *dur,
		Ops:            *ops,
		Mix:            *mix,
		RequestTimeout: *reqTimeout,
		Retries:        *retries,
		Backoff:        *backoff,
		ReplicaReads:   *replicaRds,
		Vary:           *vary,
	}
	if *values != "" {
		for _, v := range strings.Split(*values, ",") {
			cfg.Values = append(cfg.Values, strings.TrimSpace(v))
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	rep, err := slam.Run(ctx, cfg, func(r slam.RunResult) { printRun(out, r) })
	if err != nil {
		return err
	}
	if *outPath == "" {
		data, err := reportJSON(rep)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, data)
		return nil
	}
	if err := rep.WriteFile(*outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "report written to %s\n", *outPath)
	return nil
}

// reportJSON renders the report the same way WriteFile does, for stdout.
func reportJSON(rep *slam.Report) (string, error) {
	if err := rep.Validate(); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// printRun renders one sub-run as an aligned summary table.
func printRun(out io.Writer, r slam.RunResult) {
	head := fmt.Sprintf("%s · %d tenants · %d workers", r.Config.Mode, r.Config.Tenants, r.Config.Workers)
	if r.VaryValue != "" {
		head += " · vary=" + r.VaryValue
	}
	fmt.Fprintf(out, "%s\n", head)
	if r.OfferedRPS > 0 {
		fmt.Fprintf(out, "  offered %.1f rps, achieved %.1f rps over %.1fs (setup %.0fms)\n",
			r.OfferedRPS, r.AchievedRPS, r.DurationS, r.SetupMS)
	} else {
		fmt.Fprintf(out, "  achieved %.1f rps over %.1fs (setup %.0fms)\n",
			r.AchievedRPS, r.DurationS, r.SetupMS)
	}
	fmt.Fprintf(out, "  %-8s %8s %7s %9s %9s %9s %9s\n", "op", "count", "errors", "p50 ms", "p99 ms", "p999 ms", "max ms")
	rows := make([]string, 0, len(r.Ops))
	for op := range r.Ops {
		rows = append(rows, op)
	}
	sort.Strings(rows)
	for _, op := range rows {
		st := r.Ops[op]
		fmt.Fprintf(out, "  %-8s %8d %7d %9.2f %9.2f %9.2f %9.2f\n",
			op, st.Count, st.Errors, st.P50MS, st.P99MS, st.P999MS, st.MaxMS)
	}
	st := r.Total
	fmt.Fprintf(out, "  %-8s %8d %7d %9.2f %9.2f %9.2f %9.2f\n",
		"total", st.Count, st.Errors, st.P50MS, st.P99MS, st.P999MS, st.MaxMS)
	if st.Errors > 0 {
		fmt.Fprintf(out, "  errors: %d×429 %d×503 %d×504 %d×other %d×transport\n",
			st.Status429, st.Status503, st.Status504, st.StatusOther, st.TransportErrors)
	}
	if st.Retries > 0 {
		fmt.Fprintf(out, "  retries: %d consumed on 429/503 backpressure\n", st.Retries)
	}
	if r.Mem != nil {
		fmt.Fprintf(out, "  mem: %s alloc (%s/op), %d GCs, max pause %.2f ms\n",
			formatBytes(r.Mem.AllocBytes), formatBytes(uint64(r.Mem.AllocBytesPerOp)), r.Mem.GCCount, r.Mem.MaxPauseMS)
	}
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

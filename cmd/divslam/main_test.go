package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netdiversity/internal/slam"
)

// TestRunTinyClosedLoop runs the CLI end-to-end with a tiny in-process
// closed-loop config and checks the report file and the printed summary.
func TestRunTinyClosedLoop(t *testing.T) {
	out := filepath.Join(t.TempDir(), "slam.json")
	var buf bytes.Buffer
	err := run([]string{
		"-tenants", "2", "-hosts", "10", "-degree", "4", "-services", "2",
		"-workers", "3", "-ops", "40", "-seed", "5", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := slam.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Total.Count != 40 {
		t.Fatalf("report: %d runs, total count %d", len(rep.Runs), rep.Runs[0].Total.Count)
	}
	for _, want := range []string{"closed · 2 tenants · 3 workers", "total", "p99 ms", "report written to"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRunStdoutReport checks the report lands on stdout when -out is absent.
func TestRunStdoutReport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-tenants", "1", "-hosts", "8", "-degree", "3", "-services", "2",
		"-workers", "2", "-ops", "10", "-mix", "read=100",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema_version": 3`) {
		t.Errorf("stdout missing the JSON report:\n%s", buf.String())
	}
	// In-process runs carry the MemStats sample in the summary and report.
	for _, want := range []string{"mem: ", `"alloc_bytes"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRunBadFlags checks flag/config errors surface as errors, not reports.
func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-mode", "sideways"},
		{"-mode", "open"},    // open loop without a rate
		{"-vary", "tenants"}, // vary without values
		{"-mix", "bogus=1"},  // unknown op
		{"-vary", "bogus", "-values", "1"},
	}
	for _, args := range cases {
		if err := run(args, os.Stderr); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestRunVarySweep checks a two-value sweep produces two sub-run summaries.
func TestRunVarySweep(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.json")
	var buf bytes.Buffer
	err := run([]string{
		"-tenants", "1", "-hosts", "8", "-degree", "3", "-services", "2",
		"-workers", "2", "-ops", "10", "-mix", "read=100",
		"-vary", "workers", "-values", "1,2", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := slam.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 || rep.Vary != "workers" {
		t.Fatalf("sweep report: %d runs, vary %q", len(rep.Runs), rep.Vary)
	}
	if !strings.Contains(buf.String(), "vary=1") || !strings.Contains(buf.String(), "vary=2") {
		t.Errorf("sweep summaries missing vary markers:\n%s", buf.String())
	}
}

// Command divtables regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	divtables -exp all                # every experiment, quick profile
//	divtables -exp table5,table6      # selected experiments
//	divtables -exp table7 -full       # paper-sized scalability sweep
//
// Experiments: fig1, fig2, fig4, table2, table3, table5, table6, table7,
// table8, table9, ablation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"netdiversity/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "divtables:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("divtables", flag.ContinueOnError)
	var (
		expList = fs.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		full    = fs.Bool("full", false, "use the paper-sized (slow) experiment profile")
		seed    = fs.Int64("seed", 42, "random seed")
		workers = fs.Int("workers", 1, "worker goroutines for parallel solver stages")
		list    = fs.Bool("list", false, "list available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	cfg := experiments.Config{Full: *full, Seed: *seed, Workers: *workers}

	var ids []string
	if *expList == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no experiments selected")
	}
	for _, id := range ids {
		table, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if _, err := fmt.Fprintln(out, table.Render()); err != nil {
			return err
		}
	}
	return nil
}

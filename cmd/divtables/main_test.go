package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, want := range []string{"table5", "fig1", "ablation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig1,fig2", "-seed", "7"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "fig1") || !strings.Contains(got, "fig2") {
		t.Errorf("output missing experiment headers:\n%s", got)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "unknown"}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-exp", " , "}, &out); err == nil {
		t.Error("empty experiment list should fail")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Error("unknown flag should fail")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFindsViolations(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `package a

type Exposed struct{}

func Undocumented() {}

const Answer = 42
`)
	findings, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		"exported type Exposed",
		"exported func Undocumented",
		"exported const Answer",
		"has no package comment",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings miss %q:\n%s", want, joined)
		}
	}
	if len(findings) != 4 {
		t.Errorf("want 4 findings, got %d:\n%s", len(findings), joined)
	}
}

func TestCheckAcceptsDocumentedCode(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `// Package a is documented.
package a

// Exposed is documented.
type Exposed struct{}

// Constants of the a package.
const (
	Answer = 42
	Other  = 7
)

// Method is documented.
func (Exposed) Method() {}

type hidden struct{}

// Exported methods on unexported types are internal API.
func (hidden) Exported() {}
`)
	findings, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("unexpected findings:\n%s", strings.Join(findings, "\n"))
	}
}

func TestCheckSkipsTestsAndTestdata(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", "// Package a is documented.\npackage a\n")
	write(t, dir, "a_test.go", "package a\n\nfunc Helper() {}\n")
	sub := filepath.Join(dir, "testdata")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, sub, "fixture.go", "package fixture\n\nfunc Broken() {}\n")
	findings, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("test/testdata files should be skipped:\n%s", strings.Join(findings, "\n"))
	}
}

// TestRepositoryIsClean is the repo's own documentation gate in unit-test
// form: the CI docs job runs the binary, this test keeps the same contract
// enforced by plain `go test ./...`.
func TestRepositoryIsClean(t *testing.T) {
	findings, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("undocumented exported symbols:\n%s", strings.Join(findings, "\n"))
	}
}

// Command doccheck is the repository's documentation linter: it fails when a
// package lacks a package comment or an exported top-level identifier lacks a
// doc comment.  It is the golint-style documentation subset only — a
// dependency-free check the CI docs job can run with the stock toolchain —
// and complements go vet, which does not enforce doc comments at all.
//
// Usage:
//
//	doccheck [root]
//
// root defaults to the current directory.  Every directory below it
// containing .go files is checked, except testdata and hidden directories;
// _test.go files are skipped (test helpers legitimately go undocumented).
//
// Rules, matching the style the codebase already follows:
//
//   - every package must carry a package comment on some file's package
//     clause;
//   - every exported func and method (on an exported receiver type) must
//     have a doc comment;
//   - every exported type, const and var spec must have a doc comment on the
//     spec itself or on its enclosing declaration group.
//
// Exit status 1 when any finding is reported, 0 otherwise.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbols\n", len(findings))
		os.Exit(1)
	}
}

// check walks the tree and returns one finding line per violation, sorted.
func check(root string) ([]string, error) {
	dirs := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var findings []string
	dirNames := make([]string, 0, len(dirs))
	for dir := range dirs {
		dirNames = append(dirNames, dir)
	}
	sort.Strings(dirNames)
	for _, dir := range dirNames {
		fs, err := checkPackage(dirs[dir])
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

// checkPackage lints the files of one directory.
func checkPackage(files []string) ([]string, error) {
	sort.Strings(files)
	fset := token.NewFileSet()
	var findings []string
	hasPackageDoc := false
	pkgName := ""
	var firstFile string

	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkgName = f.Name.Name
		if firstFile == "" {
			firstFile = path
		}
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			hasPackageDoc = true
		}
		findings = append(findings, checkFile(fset, f)...)
	}
	if !hasPackageDoc && pkgName != "" {
		findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", firstFile, pkgName))
	}
	return findings, nil
}

// checkFile lints the top-level declarations of one file.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				kind := "func"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), "exported %s %s should have a doc comment", kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "exported type %s should have a doc comment", sp.Name.Name)
					}
				case *ast.ValueSpec:
					if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, name := range sp.Names {
						if name.IsExported() {
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							report(sp.Pos(), "exported %s %s should have a doc comment", kind, name.Name)
						}
					}
				}
			}
		}
	}
	return findings
}

// exportedReceiver reports whether a function is free-standing or its
// receiver names an exported type (methods on unexported types are internal
// even when the method name is exported).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

package netdiversity_test

import (
	"context"
	"testing"

	"netdiversity"
)

// buildAPITestNetwork builds a small two-zone network through the public API.
func buildAPITestNetwork(t *testing.T) *netdiversity.Network {
	t.Helper()
	net := netdiversity.NewNetwork()
	for i, id := range []netdiversity.HostID{"a", "b", "c", "d"} {
		h := &netdiversity.Host{
			ID:       id,
			Zone:     "it",
			Services: []netdiversity.ServiceID{netdiversity.ServiceOS, netdiversity.ServiceBrowser},
			Choices: map[netdiversity.ServiceID][]netdiversity.ProductID{
				netdiversity.ServiceOS:      {"win7", "ubt1404", "deb80"},
				netdiversity.ServiceBrowser: {"ie10", "chrome50", "firefox"},
			},
		}
		if i == 3 {
			h.Legacy = true
		}
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	links := [][2]netdiversity.HostID{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}}
	for _, l := range links {
		if err := net.AddLink(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestPublicAPIEndToEnd(t *testing.T) {
	net := buildAPITestNetwork(t)
	sim := netdiversity.PaperSimilarity()

	cs := netdiversity.NewConstraintSet()
	cs.Fix("a", netdiversity.ServiceOS, "win7")
	cs.Add(netdiversity.Constraint{
		Host:     netdiversity.AllHosts,
		ServiceM: netdiversity.ServiceOS,
		ServiceN: netdiversity.ServiceBrowser,
		ProductJ: "ubt1404",
		ProductK: "ie10",
		Mode:     netdiversity.Forbid,
	})

	opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{Solver: netdiversity.SolverTRWS})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.SetConstraints(cs); err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.ValidateFor(net); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
	if got := res.Assignment.Product("a", netdiversity.ServiceOS); got != "win7" {
		t.Errorf("pinned product ignored: %v", got)
	}
	if len(res.ConstraintViolations) != 0 {
		t.Errorf("violations: %v", res.ConstraintViolations)
	}

	optCost, err := netdiversity.PairwiseSimilarityCost(net, sim, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := netdiversity.MonoAssignment(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	monoCost, err := netdiversity.PairwiseSimilarityCost(net, sim, mono)
	if err != nil {
		t.Fatal(err)
	}
	if optCost >= monoCost {
		t.Errorf("optimal cost %v should beat mono %v", optCost, monoCost)
	}

	div, err := netdiversity.Diversity(net, res.Assignment, sim, netdiversity.DiversityConfig{
		Entry:  "a",
		Target: "c",
	}, netdiversity.InferenceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	monoDiv, err := netdiversity.Diversity(net, mono, sim, netdiversity.DiversityConfig{
		Entry:  "a",
		Target: "c",
	}, netdiversity.InferenceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if div.Diversity <= monoDiv.Diversity {
		t.Errorf("optimal d_bn %v should exceed mono %v", div.Diversity, monoDiv.Diversity)
	}

	simr, err := netdiversity.NewSimulator(net, res.Assignment, sim)
	if err != nil {
		t.Fatal(err)
	}
	resSim, err := simr.Run(netdiversity.SimulationConfig{Entry: "a", Target: "c", Runs: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resSim.MTTC <= 0 {
		t.Errorf("MTTC = %v, want > 0", resSim.MTTC)
	}
}

func TestPublicAPISimilarityHelpers(t *testing.T) {
	if v := netdiversity.Jaccard(map[string]struct{}{"a": {}}, map[string]struct{}{"a": {}}); v != 1 {
		t.Errorf("Jaccard = %v, want 1", v)
	}
	osTable := netdiversity.PaperOSTable()
	if osTable.Sim("win7", "winxp") == 0 {
		t.Error("paper OS table should report win7/winxp similarity")
	}
	if netdiversity.PaperBrowserTable().Sim("firefox", "seamonkey") == 0 {
		t.Error("paper browser table should report firefox/seamonkey similarity")
	}
	db, err := netdiversity.SyntheticNVD(osTable, 1999)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := netdiversity.BuildSimilarityTable(db, osTable.Products(), netdiversity.VulnFilter{})
	if rebuilt.Total("win7") != osTable.Total("win7") {
		t.Error("synthetic corpus should reproduce the published totals")
	}
	fresh := netdiversity.NewCVEDatabase()
	if fresh.Len() != 0 {
		t.Error("new CVE database should be empty")
	}
	if netdiversity.NewSimilarityTable([]string{"x"}).Sim("x", "x") != 1 {
		t.Error("self similarity should be 1")
	}
}

func TestPublicAPICaseStudyAndGenerators(t *testing.T) {
	net, err := netdiversity.CaseStudyNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if net.NumHosts() != 29 {
		t.Errorf("case study hosts = %d, want 29", net.NumHosts())
	}
	if len(netdiversity.CaseStudyEntries()) != 5 {
		t.Error("case study should expose 5 entry points")
	}
	if netdiversity.CaseStudyTarget() != "t5" {
		t.Error("case study target should be t5")
	}
	if netdiversity.CaseStudyHostConstraints().Empty() || netdiversity.CaseStudyProductConstraints().Empty() {
		t.Error("case study constraint scenarios should not be empty")
	}
	if len(netdiversity.CaseStudyAttackServices()) != 3 {
		t.Error("case study attacker should hold 3 exploits")
	}

	cfg := netdiversity.RandomNetworkConfig{Hosts: 40, Degree: 4, Services: 2, Seed: 1}
	rnd, err := netdiversity.RandomNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.NumHosts() != 40 {
		t.Errorf("random network hosts = %d, want 40", rnd.NumHosts())
	}
	table := netdiversity.SyntheticSimilarity(cfg, 0.5)
	if err := table.Validate(); err != nil {
		t.Errorf("synthetic similarity should validate: %v", err)
	}

	random, err := netdiversity.RandomAssignment(rnd, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := netdiversity.GreedyColoringAssignment(rnd, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := netdiversity.PairwiseSimilarityCost(rnd, table, random)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := netdiversity.PairwiseSimilarityCost(rnd, table, greedy)
	if err != nil {
		t.Fatal(err)
	}
	if gc >= rc {
		t.Errorf("greedy colouring cost %v should beat random %v", gc, rc)
	}
	if _, err := netdiversity.ParseSolver("bp"); err != nil {
		t.Errorf("ParseSolver(bp): %v", err)
	}
}

// Quickstart: build a small IT network with the public API, compute the
// optimal diversification and compare it against the homogeneous deployment.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"netdiversity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Vulnerability similarity: use the tables published in the paper
	//    (operating systems, web browsers, database servers).
	sim := netdiversity.PaperSimilarity()

	// 2. Describe the network: five office hosts in a ring, each running an
	//    operating system and a web browser chosen from the paper's product
	//    catalogue.
	net := netdiversity.NewNetwork()
	osChoices := []netdiversity.ProductID{"win7", "win10", "ubt1404", "deb80"}
	wbChoices := []netdiversity.ProductID{"ie10", "chrome50", "firefox"}
	for i := 0; i < 5; i++ {
		host := &netdiversity.Host{
			ID:       netdiversity.HostID(fmt.Sprintf("ws%d", i+1)),
			Zone:     "office",
			Services: []netdiversity.ServiceID{netdiversity.ServiceOS, netdiversity.ServiceBrowser},
			Choices: map[netdiversity.ServiceID][]netdiversity.ProductID{
				netdiversity.ServiceOS:      osChoices,
				netdiversity.ServiceBrowser: wbChoices,
			},
		}
		if err := net.AddHost(host); err != nil {
			return err
		}
	}
	hosts := net.Hosts()
	for i := range hosts {
		if err := net.AddLink(hosts[i], hosts[(i+1)%len(hosts)]); err != nil {
			return err
		}
	}

	// 3. Optimise with TRW-S (the default solver).
	opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{})
	if err != nil {
		return err
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		return err
	}
	fmt.Println("optimal assignment:")
	fmt.Print(res.Assignment.String())
	fmt.Printf("objective energy: %.4f (solved %d-node MRF in %s)\n\n", res.Energy, res.Nodes, res.Runtime)

	// 4. Compare against the homogeneous (mono-culture) deployment using the
	//    pairwise similarity cost and the BN diversity metric.
	mono, err := netdiversity.MonoAssignment(net, nil)
	if err != nil {
		return err
	}
	for name, a := range map[string]*netdiversity.Assignment{"optimal": res.Assignment, "mono": mono} {
		cost, err := netdiversity.PairwiseSimilarityCost(net, sim, a)
		if err != nil {
			return err
		}
		div, err := netdiversity.Diversity(net, a, sim, netdiversity.DiversityConfig{
			Entry:  hosts[0],
			Target: hosts[len(hosts)-1],
		}, netdiversity.InferenceOptions{Seed: 1})
		if err != nil {
			return err
		}
		fmt.Printf("%-8s pairwise similarity cost=%.3f  d_bn=%.4f\n", name, cost, div.Diversity)
	}
	return nil
}

// Adversarial assessment: evaluate a diversified deployment the way a red
// team would.  The example optimises the paper's ICS case study, then
// measures how long attackers with increasing knowledge of the configuration
// (blind, market-statistics, full reconnaissance) need to reach the WinCC
// server, and reports the Zhang-style diversity metrics (d1/d2/d3) that
// explain the difference.  This implements the "adversarial perspective"
// future work sketched in Section IX of the paper.
//
// Run with:
//
//	go run ./examples/adversarial_assessment
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"netdiversity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := netdiversity.CaseStudyNetwork()
	if err != nil {
		return err
	}
	sim := netdiversity.PaperSimilarity()
	entry := netdiversity.HostID("c4")
	target := netdiversity.CaseStudyTarget()

	opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{})
	if err != nil {
		return err
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		return err
	}
	mono, err := netdiversity.MonoAssignment(net, nil)
	if err != nil {
		return err
	}

	assignments := []struct {
		name string
		a    *netdiversity.Assignment
	}{
		{"optimal diversification", res.Assignment},
		{"mono-culture", mono},
	}

	fmt.Println("MTTC (ticks) to reach", target, "from", entry, "by attacker knowledge level:")
	fmt.Printf("%-26s %-14s %-18s %-18s\n", "assignment", "blind", "partial knowledge", "full reconnaissance")
	for _, item := range assignments {
		ev, err := netdiversity.NewAdversaryEvaluator(net, item.a, sim)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%-26s", item.name)
		for _, k := range netdiversity.AttackerKnowledgeLevels() {
			r, err := ev.Run(netdiversity.AdversaryConfig{
				Entry:           entry,
				Target:          target,
				Knowledge:       k,
				Runs:            400,
				Seed:            13,
				ExploitServices: netdiversity.CaseStudyAttackServices(),
			})
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %-17.2f", r.MTTC)
		}
		fmt.Println(row)
	}

	fmt.Println("\nWhy: Zhang-style diversity metrics (higher is better):")
	fmt.Printf("%-26s %-14s %-16s %-16s\n", "assignment", "d1 richness", "d2 least effort", "d3 avg effort")
	for _, item := range assignments {
		summary, err := netdiversity.DiversityMetrics(net, item.a, sim, netdiversity.EffortConfig{
			Entry:           entry,
			Target:          target,
			ExploitServices: netdiversity.CaseStudyAttackServices(),
			MaxExtraHops:    2,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %-14.4f %-16.4f %-16.4f\n",
			item.name, summary.Richness.Overall, summary.LeastEffort, summary.AverageEffort)
	}

	// Write a Graphviz rendering of the diversified network for reporting.
	f, err := os.CreateTemp("", "diversified-*.dot")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := netdiversity.WriteDot(f, net, netdiversity.DotOptions{
		Assignment:     res.Assignment,
		HighlightHosts: []netdiversity.HostID{entry, target},
		Name:           "ics_case_study",
	}); err != nil {
		return err
	}
	fmt.Printf("\nGraphviz rendering of the diversified network written to %s\n", f.Name())
	return nil
}

// Scalability: generate increasingly large random networks (the workload of
// Tables VII-IX) and report how long the TRW-S optimisation takes, together
// with the quality of the produced assignment relative to random and mono
// baselines.
//
// Run with:
//
//	go run ./examples/scalability [-hosts 1000] [-degree 20] [-services 10]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"netdiversity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		maxHosts = flag.Int("hosts", 800, "largest network size to optimise")
		degree   = flag.Int("degree", 10, "average degree of the random networks")
		services = flag.Int("services", 5, "services per host")
		workers  = flag.Int("workers", 2, "worker goroutines for the solver")
	)
	flag.Parse()

	sizes := []int{100, 200, 400}
	for s := 800; s <= *maxHosts; s *= 2 {
		sizes = append(sizes, s)
	}

	fmt.Printf("%-8s %-8s %-10s %-12s %-14s %-14s %-14s\n",
		"hosts", "links", "mrf nodes", "seconds", "optimal cost", "random cost", "mono cost")
	for _, hosts := range sizes {
		cfg := netdiversity.RandomNetworkConfig{
			Hosts:              hosts,
			Degree:             *degree,
			Services:           *services,
			ProductsPerService: 4,
			Seed:               int64(hosts),
		}
		net, err := netdiversity.RandomNetwork(cfg)
		if err != nil {
			return err
		}
		sim := netdiversity.SyntheticSimilarity(cfg, 0.6)

		opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{
			Workers:       *workers,
			MaxIterations: 30,
		})
		if err != nil {
			return err
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			return err
		}
		optCost, err := netdiversity.PairwiseSimilarityCost(net, sim, res.Assignment)
		if err != nil {
			return err
		}
		random, err := netdiversity.RandomAssignment(net, nil, 1)
		if err != nil {
			return err
		}
		randomCost, err := netdiversity.PairwiseSimilarityCost(net, sim, random)
		if err != nil {
			return err
		}
		mono, err := netdiversity.MonoAssignment(net, nil)
		if err != nil {
			return err
		}
		monoCost, err := netdiversity.PairwiseSimilarityCost(net, sim, mono)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-8d %-10d %-12.3f %-14.1f %-14.1f %-14.1f\n",
			hosts, net.NumLinks(), res.Nodes, res.Runtime.Seconds(), optCost, randomCost, monoCost)
	}
	fmt.Println("\nThe optimisation time grows roughly linearly with hosts and edges, and the")
	fmt.Println("optimal assignment's pairwise similarity cost stays well below both baselines.")
	return nil
}

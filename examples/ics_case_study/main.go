// ICS case study: reproduce the paper's Stuxnet-inspired scenario end to end
// (Section VII).  The example optimises the integrated IT/OT network without
// constraints, with the host constraints C1 and with the product constraints
// C2, then evaluates every assignment with the BN diversity metric and the
// MTTC simulation.
//
// Run with:
//
//	go run ./examples/ics_case_study
package main

import (
	"context"
	"fmt"
	"log"

	"netdiversity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := netdiversity.CaseStudyNetwork()
	if err != nil {
		return err
	}
	sim := netdiversity.PaperSimilarity()
	fmt.Printf("case study: %d hosts, %d links (Fig. 3 topology)\n\n", net.NumHosts(), net.NumLinks())

	optimize := func(cs *netdiversity.ConstraintSet) (*netdiversity.Assignment, error) {
		opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{})
		if err != nil {
			return nil, err
		}
		if cs != nil {
			if err := opt.SetConstraints(cs); err != nil {
				return nil, err
			}
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			return nil, err
		}
		return res.Assignment, nil
	}

	optimal, err := optimize(nil)
	if err != nil {
		return err
	}
	hostConstrained, err := optimize(netdiversity.CaseStudyHostConstraints())
	if err != nil {
		return err
	}
	productConstrained, err := optimize(netdiversity.CaseStudyProductConstraints())
	if err != nil {
		return err
	}
	mono, err := netdiversity.MonoAssignment(net, nil)
	if err != nil {
		return err
	}

	assignments := []struct {
		name string
		a    *netdiversity.Assignment
	}{
		{"optimal (α̂)", optimal},
		{"host constraints (α̂_C1)", hostConstrained},
		{"product constraints (α̂_C2)", productConstrained},
		{"mono (α_m)", mono},
	}

	entry := netdiversity.HostID("c4")
	target := netdiversity.CaseStudyTarget()
	fmt.Printf("%-28s %-12s %-12s %-10s %s\n", "assignment", "pair cost", "d_bn", "MTTC(c4)", "MTTC(v1)")
	for _, item := range assignments {
		cost, err := netdiversity.PairwiseSimilarityCost(net, sim, item.a)
		if err != nil {
			return err
		}
		div, err := netdiversity.Diversity(net, item.a, sim, netdiversity.DiversityConfig{
			Entry:           entry,
			Target:          target,
			ExploitServices: netdiversity.CaseStudyAttackServices(),
		}, netdiversity.InferenceOptions{Seed: 7, Samples: 100000})
		if err != nil {
			return err
		}
		simulator, err := netdiversity.NewSimulator(net, item.a, sim)
		if err != nil {
			return err
		}
		mttcC4, err := simulator.Run(netdiversity.SimulationConfig{
			Entry: entry, Target: target, Runs: 300, Seed: 7,
			ExploitServices: netdiversity.CaseStudyAttackServices(),
		})
		if err != nil {
			return err
		}
		mttcV1, err := simulator.Run(netdiversity.SimulationConfig{
			Entry: "v1", Target: target, Runs: 300, Seed: 7,
			ExploitServices: netdiversity.CaseStudyAttackServices(),
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %-12.3f %-12.5f %-10.2f %.2f\n",
			item.name, cost, div.Diversity, mttcC4.MTTC, mttcV1.MTTC)
	}

	fmt.Println("\nconstrained solutions change these host/service assignments relative to α̂:")
	for _, diff := range optimal.Diff(hostConstrained) {
		fmt.Println("  C1:", diff)
	}
	for _, diff := range hostConstrained.Diff(productConstrained) {
		fmt.Println("  C2:", diff)
	}
	return nil
}

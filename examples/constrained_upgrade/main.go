// Constrained upgrade: a plant operator wants to modernise an office/DMZ
// segment attached to a legacy control zone.  The example shows how the
// optimal diversification degrades as real-world constraints are layered on:
//
//  1. no constraints (green-field upgrade),
//  2. legacy zone pinned to its installed software,
//  3. plus a company policy pinning the DMZ servers,
//  4. plus global product-compatibility rules (no Internet Explorer on
//     Linux hosts).
//
// Run with:
//
//	go run ./examples/constrained_upgrade
package main

import (
	"context"
	"fmt"
	"log"

	"netdiversity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	osSvc = netdiversity.ServiceOS
	wbSvc = netdiversity.ServiceBrowser
	dbSvc = netdiversity.ServiceDatabase
)

func buildNetwork(legacyPinned bool) (*netdiversity.Network, error) {
	net := netdiversity.NewNetwork()
	osAll := []netdiversity.ProductID{"winxp", "win7", "ubt1404", "deb80"}
	wbAll := []netdiversity.ProductID{"ie8", "ie10", "chrome50", "firefox"}
	dbAll := []netdiversity.ProductID{"mssql08", "mssql14", "mysql55", "mariadb10"}

	addHost := func(id string, zone string, legacy bool, services map[netdiversity.ServiceID][]netdiversity.ProductID) error {
		h := &netdiversity.Host{
			ID:      netdiversity.HostID(id),
			Zone:    zone,
			Legacy:  legacy && legacyPinned,
			Choices: map[netdiversity.ServiceID][]netdiversity.ProductID{},
		}
		for svc, products := range services {
			h.Services = append(h.Services, svc)
			h.Choices[svc] = products
		}
		return net.AddHost(h)
	}

	// Office segment (fully flexible).
	for i := 1; i <= 4; i++ {
		if err := addHost(fmt.Sprintf("office%d", i), "office", false,
			map[netdiversity.ServiceID][]netdiversity.ProductID{osSvc: osAll, wbSvc: wbAll}); err != nil {
			return nil, err
		}
	}
	// DMZ servers.
	for i := 1; i <= 2; i++ {
		if err := addHost(fmt.Sprintf("dmz%d", i), "dmz", false,
			map[netdiversity.ServiceID][]netdiversity.ProductID{osSvc: osAll, dbSvc: dbAll}); err != nil {
			return nil, err
		}
	}
	// Legacy control zone: outdated Windows + SQL Server 2008.
	for i := 1; i <= 3; i++ {
		if err := addHost(fmt.Sprintf("ctrl%d", i), "control", true,
			map[netdiversity.ServiceID][]netdiversity.ProductID{
				osSvc: {"winxp", "win7"},
				dbSvc: {"mssql08"},
			}); err != nil {
			return nil, err
		}
	}

	links := [][2]string{
		{"office1", "office2"}, {"office2", "office3"}, {"office3", "office4"}, {"office4", "office1"},
		{"office1", "dmz1"}, {"office3", "dmz2"}, {"dmz1", "dmz2"},
		{"dmz1", "ctrl1"}, {"dmz2", "ctrl2"},
		{"ctrl1", "ctrl2"}, {"ctrl2", "ctrl3"}, {"ctrl1", "ctrl3"},
	}
	for _, l := range links {
		if err := net.AddLink(netdiversity.HostID(l[0]), netdiversity.HostID(l[1])); err != nil {
			return nil, err
		}
	}
	return net, nil
}

func run() error {
	sim := netdiversity.PaperSimilarity()

	policy := netdiversity.NewConstraintSet()
	policy.Fix("dmz1", osSvc, "win7")
	policy.Fix("dmz1", dbSvc, "mssql14")
	policy.Fix("dmz2", osSvc, "win7")

	compatibility := netdiversity.NewConstraintSet()
	compatibility.Fix("dmz1", osSvc, "win7")
	compatibility.Fix("dmz1", dbSvc, "mssql14")
	compatibility.Fix("dmz2", osSvc, "win7")
	for _, linuxOS := range []netdiversity.ProductID{"ubt1404", "deb80"} {
		for _, ie := range []netdiversity.ProductID{"ie8", "ie10"} {
			compatibility.Add(netdiversity.Constraint{
				Host:     netdiversity.AllHosts,
				ServiceM: osSvc,
				ServiceN: wbSvc,
				ProductJ: linuxOS,
				ProductK: ie,
				Mode:     netdiversity.Forbid,
			})
		}
	}

	scenarios := []struct {
		name         string
		legacyPinned bool
		constraints  *netdiversity.ConstraintSet
	}{
		{"green-field (no constraints)", false, nil},
		{"legacy control zone pinned", true, nil},
		{"+ DMZ company policy", true, policy},
		{"+ product compatibility rules", true, compatibility},
	}

	fmt.Printf("%-34s %-14s %-10s\n", "scenario", "pairwise cost", "d_bn")
	for _, sc := range scenarios {
		net, err := buildNetwork(sc.legacyPinned)
		if err != nil {
			return err
		}
		opt, err := netdiversity.NewOptimizer(net, sim, netdiversity.OptimizerOptions{})
		if err != nil {
			return err
		}
		if sc.constraints != nil {
			if err := opt.SetConstraints(sc.constraints); err != nil {
				return err
			}
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			return err
		}
		cost, err := netdiversity.PairwiseSimilarityCost(net, sim, res.Assignment)
		if err != nil {
			return err
		}
		div, err := netdiversity.Diversity(net, res.Assignment, sim, netdiversity.DiversityConfig{
			Entry:  "office1",
			Target: "ctrl3",
		}, netdiversity.InferenceOptions{Seed: 3})
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %-14.3f %-10.5f\n", sc.name, cost, div.Diversity)
	}
	fmt.Println("\nEach additional constraint reduces the achievable diversity, quantifying")
	fmt.Println("the security cost of legacy systems and configuration policies.")
	return nil
}

// Package netdiversity is the public API of the library.  It reproduces the
// system of "Scalable Approach to Enhancing ICS Resilience by Network
// Diversity" (Li, Feng, Hankin — DSN 2020): optimal assignment of software
// products across a networked (industrial control) system so that the spread
// of zero-day malware between hosts running similar products is minimised.
//
// The workflow mirrors the paper:
//
//  1. Obtain a vulnerability SimilarityTable — either the tables published in
//     the paper (PaperSimilarity) or one computed from a CVE corpus with
//     BuildSimilarityTable.
//  2. Describe the Network: hosts, links, the services every host provides
//     and the candidate products for each service; optionally a
//     ConstraintSet with pinned products and require/forbid rules.
//  3. Run the Optimizer (TRW-S by default) to obtain the optimal assignment.
//  4. Evaluate assignments with the Bayesian-network diversity metric
//     (Diversity) and the malware-propagation simulator (NewSimulator).
//
// The sub-packages under internal/ hold the implementations; this package
// re-exports the types needed by library users, the examples and the command
// line tools.
package netdiversity

import (
	"netdiversity/internal/attacksim"
	"netdiversity/internal/baseline"
	"netdiversity/internal/bayes"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/core"
	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/nvdgen"
	"netdiversity/internal/vulnsim"

	// Blank import registers the multilevel coarsening solver with the solve
	// registry, so library users and the cmd tools can select it by name.
	_ "netdiversity/internal/multilevel"
)

// Network model types (Definitions 2-5 of the paper).
type (
	// Network is a set of hosts, links, services and candidate products.
	Network = netmodel.Network
	// Host is one host with its services and candidate products.
	Host = netmodel.Host
	// Link is an undirected connection between two hosts.
	Link = netmodel.Link
	// Assignment maps every (host, service) pair to the installed product.
	Assignment = netmodel.Assignment
	// Constraint is a local or global configuration constraint.
	Constraint = netmodel.Constraint
	// ConstraintSet bundles constraints and pinned products.
	ConstraintSet = netmodel.ConstraintSet
	// HostID, ServiceID and ProductID identify hosts, services and products.
	HostID    = netmodel.HostID
	ServiceID = netmodel.ServiceID
	ProductID = netmodel.ProductID
	// Spec is the JSON representation of a network plus constraints.
	Spec = netmodel.Spec
)

// Vulnerability-similarity types (Section III of the paper).
type (
	// SimilarityTable stores pairwise vulnerability similarities.
	SimilarityTable = vulnsim.SimilarityTable
	// Product identifies an off-the-shelf product (CPE-style).
	Product = vulnsim.Product
	// CVE is a single vulnerability record.
	CVE = vulnsim.CVE
	// CVEDatabase is an in-memory CVE corpus (the offline NVD stand-in).
	CVEDatabase = vulnsim.Database
	// VulnFilter restricts which vulnerabilities count toward similarity.
	VulnFilter = vulnsim.VulnFilter
	// Catalog is a set of products indexed by ID.
	Catalog = vulnsim.Catalog
)

// Optimisation types (Section V of the paper).
type (
	// Optimizer computes optimal diversification strategies.
	Optimizer = core.Optimizer
	// OptimizerOptions configures the optimiser.
	OptimizerOptions = core.Options
	// OptimizeResult is the outcome of an optimisation run.
	OptimizeResult = core.Result
	// Solver selects the minimisation algorithm.
	Solver = core.Solver
)

// Evaluation types (Sections VI and VII of the paper).
type (
	// DiversityConfig parameterises the Bayesian attack network.
	DiversityConfig = bayes.Config
	// DiversityResult reports the d_bn metric.
	DiversityResult = bayes.MetricResult
	// InferenceOptions configures probability computation.
	InferenceOptions = bayes.InferenceOptions
	// Simulator runs malware-propagation campaigns.
	Simulator = attacksim.Simulator
	// SimulationConfig parameterises a simulation campaign.
	SimulationConfig = attacksim.Config
	// SimulationResult reports MTTC and related statistics.
	SimulationResult = attacksim.Result
	// AttackCampaign is a campaign compiled to the flat CSR attack engine;
	// obtain one with Simulator.Compile to run many batches over it.
	AttackCampaign = attacksim.Campaign
	// SimulationMode selects the campaign execution engine.
	SimulationMode = attacksim.Mode
	// RandomNetworkConfig parameterises the random network generator used
	// by the scalability experiments.
	RandomNetworkConfig = netgen.RandomConfig
)

// Solver selectors.
const (
	SolverTRWS   = core.SolverTRWS
	SolverBP     = core.SolverBP
	SolverICM    = core.SolverICM
	SolverAnneal = core.SolverAnneal
)

// Simulation execution modes: the synchronous tick loop (bit-exact with the
// historical simulator) and the event-driven geometric/Dijkstra engine
// (statistically equivalent, faster on high-MTTC campaigns).
const (
	SimulationTick  = attacksim.ModeTick
	SimulationEvent = attacksim.ModeEvent
)

// Constraint modes and the global-constraint host sentinel.
const (
	Require  = netmodel.Require
	Forbid   = netmodel.Forbid
	AllHosts = netmodel.AllHosts
)

// Common service identifiers used by the case study.
const (
	ServiceOS       = netmodel.ServiceOS
	ServiceBrowser  = netmodel.ServiceBrowser
	ServiceDatabase = netmodel.ServiceDatabase
)

// NewNetwork creates an empty network.
func NewNetwork() *Network { return netmodel.New() }

// NewAssignment creates an empty assignment.
func NewAssignment() *Assignment { return netmodel.NewAssignment() }

// NewConstraintSet creates an empty constraint set.
func NewConstraintSet() *ConstraintSet { return netmodel.NewConstraintSet() }

// NewOptimizer creates an optimiser for the network and similarity table.
func NewOptimizer(net *Network, sim *SimilarityTable, opts OptimizerOptions) (*Optimizer, error) {
	return core.NewOptimizer(net, sim, opts)
}

// ParseSolver converts a solver name ("trws", "bp", "icm", "anneal"),
// validated against the unified solver registry.
func ParseSolver(name string) (Solver, error) { return core.ParseSolver(name) }

// SolverNames lists the names registered with the unified solver registry;
// each is usable with ParseSolver and the cmd tools' -solver flags.
func SolverNames() []string { return core.SolverNames() }

// PairwiseSimilarityCost returns the summed similarity over all links and
// shared services for an assignment (the pairwise part of Eq. 1).
func PairwiseSimilarityCost(net *Network, sim *SimilarityTable, a *Assignment) (float64, error) {
	return core.PairwiseSimilarityCost(net, sim, a)
}

// Jaccard computes the Jaccard similarity of two vulnerability sets.
func Jaccard(a, b map[string]struct{}) float64 { return vulnsim.Jaccard(a, b) }

// NewSimilarityTable creates an empty similarity table over the products.
func NewSimilarityTable(products []string) *SimilarityTable {
	return vulnsim.NewSimilarityTable(products)
}

// BuildSimilarityTable computes a similarity table from a CVE corpus.
func BuildSimilarityTable(db *CVEDatabase, products []string, filter VulnFilter) *SimilarityTable {
	return vulnsim.BuildSimilarityTable(db, products, filter)
}

// NewCVEDatabase creates an empty CVE corpus.
func NewCVEDatabase() *CVEDatabase { return vulnsim.NewDatabase() }

// PaperSimilarity returns the merged similarity table of the paper's
// Tables II/III plus the case-study database products.
func PaperSimilarity() *SimilarityTable { return vulnsim.PaperSimilarity() }

// PaperOSTable returns Table II of the paper.
func PaperOSTable() *SimilarityTable { return vulnsim.PaperOSTable() }

// PaperBrowserTable returns Table III of the paper.
func PaperBrowserTable() *SimilarityTable { return vulnsim.PaperBrowserTable() }

// SyntheticNVD generates a synthetic CVE corpus that reproduces a similarity
// table exactly (the offline substitute for querying NVD).
func SyntheticNVD(table *SimilarityTable, startYear int) (*CVEDatabase, error) {
	return nvdgen.FromSimilarityTable(table, startYear)
}

// MonoAssignment returns the homogeneous (worst-case) assignment α_m.
func MonoAssignment(net *Network, cs *ConstraintSet) (*Assignment, error) {
	return baseline.Mono(net, cs)
}

// RandomAssignment returns a uniformly random assignment α_r.
func RandomAssignment(net *Network, cs *ConstraintSet, seed int64) (*Assignment, error) {
	return baseline.Random(net, cs, seed)
}

// GreedyColoringAssignment returns the greedy graph-colouring style baseline.
func GreedyColoringAssignment(net *Network, sim *SimilarityTable, cs *ConstraintSet) (*Assignment, error) {
	return baseline.GreedyColoring(net, sim, cs)
}

// Diversity computes the BN-based diversity metric d_bn (Definition 6).
func Diversity(net *Network, a *Assignment, sim *SimilarityTable, cfg DiversityConfig, opts InferenceOptions) (DiversityResult, error) {
	return bayes.Diversity(net, a, sim, cfg, opts)
}

// NewSimulator prepares a malware-propagation simulator for a network and
// assignment.
func NewSimulator(net *Network, a *Assignment, sim *SimilarityTable) (*Simulator, error) {
	return attacksim.New(net, a, sim)
}

// RandomNetwork generates a connected random network (scalability workloads).
func RandomNetwork(cfg RandomNetworkConfig) (*Network, error) { return netgen.Random(cfg) }

// SyntheticSimilarity builds a similarity table for the synthetic products of
// a random network.
func SyntheticSimilarity(cfg RandomNetworkConfig, maxSim float64) *SimilarityTable {
	return netgen.SyntheticSimilarity(cfg, maxSim)
}

// CaseStudyNetwork builds the Stuxnet-inspired ICS network of the paper's
// case study (Fig. 3 / Table IV).
func CaseStudyNetwork() (*Network, error) { return casestudy.Build() }

// CaseStudyHostConstraints returns the host-constraint scenario C1.
func CaseStudyHostConstraints() *ConstraintSet { return casestudy.HostConstraints() }

// CaseStudyProductConstraints returns the product-constraint scenario C2.
func CaseStudyProductConstraints() *ConstraintSet { return casestudy.ProductConstraints() }

// CaseStudyAttackServices returns the services the case-study attacker holds
// zero-day exploits for.
func CaseStudyAttackServices() []ServiceID { return casestudy.AttackServices() }

// CaseStudyEntries returns the five malware entry points of Table VI.
func CaseStudyEntries() []HostID { return casestudy.Entries() }

// CaseStudyTarget returns the attack target (the WinCC server t5).
func CaseStudyTarget() HostID { return casestudy.TargetWinCC }

package adversary

import (
	"math"
	"testing"

	"netdiversity/internal/attacksim"
	"netdiversity/internal/baseline"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

func diverseSetup(t *testing.T) (*netmodel.Network, *netmodel.Assignment, *vulnsim.SimilarityTable) {
	t.Helper()
	net := netmodel.New()
	ids := []netmodel.HostID{"entry", "m1", "m2", "target"}
	for _, id := range ids {
		h := &netmodel.Host{
			ID:       id,
			Services: []netmodel.ServiceID{"os", "db"},
			Choices: map[netmodel.ServiceID][]netmodel.ProductID{
				"os": {"A", "B"},
				"db": {"X", "Y"},
			},
		}
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := net.AddLink(ids[i], ids[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	// OS alternates (low similarity); the database is identical everywhere
	// (the weak spot a knowledgeable attacker should exploit).
	a := netmodel.NewAssignment()
	osProducts := []netmodel.ProductID{"A", "B", "A", "B"}
	for i, id := range ids {
		a.Set(id, "os", osProducts[i])
		a.Set(id, "db", "X")
	}
	sim := vulnsim.NewSimilarityTable([]string{"A", "B", "X", "Y"})
	_ = sim.Set("A", "B", 0.05, 1)
	_ = sim.Set("X", "Y", 0.3, 3)
	return net, a, sim
}

func TestNewValidation(t *testing.T) {
	net, a, sim := diverseSetup(t)
	if _, err := New(nil, a, sim); err == nil {
		t.Error("nil network should be rejected")
	}
	if _, err := New(net, nil, sim); err == nil {
		t.Error("nil assignment should be rejected")
	}
	if _, err := New(net, a, nil); err == nil {
		t.Error("nil similarity table should be rejected")
	}
	if _, err := New(net, netmodel.NewAssignment(), sim); err == nil {
		t.Error("incomplete assignment should be rejected")
	}
}

func TestRunValidation(t *testing.T) {
	net, a, sim := diverseSetup(t)
	e, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Config{Entry: "missing", Target: "target"}); err == nil {
		t.Error("unknown entry should be rejected")
	}
	if _, err := e.Run(Config{Entry: "entry", Target: "missing"}); err == nil {
		t.Error("unknown target should be rejected")
	}
	r, err := e.Run(Config{Entry: "entry", Target: "entry", Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.MTTC != 0 || r.SuccessRate != 1 {
		t.Errorf("entry == target should be instant: %+v", r)
	}
}

func TestKnowledgeOrdering(t *testing.T) {
	net, a, sim := diverseSetup(t)
	e, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.Compare(Config{
		Entry:  "entry",
		Target: "target",
		Runs:   600,
		Seed:   3,
		PAvg:   0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("Compare returned %d results, want 3", len(results))
	}
	none, partial, full := results[0], results[1], results[2]
	if none.Knowledge != KnowledgeNone || full.Knowledge != KnowledgeFull {
		t.Fatal("results not ordered by knowledge level")
	}
	// The identical database product is the weak spot: attackers that know
	// (or can estimate) the configuration compromise the target faster than
	// the blind attacker.
	if full.MTTC > none.MTTC {
		t.Errorf("full-knowledge MTTC %v should not exceed blind MTTC %v", full.MTTC, none.MTTC)
	}
	if partial.MTTC > none.MTTC+1e-9 {
		t.Errorf("partial-knowledge MTTC %v should not exceed blind MTTC %v", partial.MTTC, none.MTTC)
	}
	// The fully homogeneous database makes the full-knowledge attacker
	// succeed every time.
	if full.SuccessRate < 0.99 {
		t.Errorf("full-knowledge attacker should always succeed, got %v", full.SuccessRate)
	}
}

func TestKnowledgeString(t *testing.T) {
	if KnowledgeNone.String() != "none" || KnowledgePartial.String() != "partial" || KnowledgeFull.String() != "full" {
		t.Error("knowledge names wrong")
	}
	if Knowledge(42).String() == "" {
		t.Error("unknown knowledge should render")
	}
	if len(Levels()) != 3 {
		t.Error("Levels should list 3 knowledge levels")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	net, a, sim := diverseSetup(t)
	e, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Entry: "entry", Target: "target", Runs: 200, Seed: 9, Knowledge: KnowledgePartial}
	r1, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MTTC != r2.MTTC || r1.SuccessRate != r2.SuccessRate {
		t.Errorf("same seed should reproduce results: %+v vs %+v", r1, r2)
	}
}

// TestWorkersDoNotChangeResults pins the batched pool's determinism at the
// adversary level: the per-run seed derivation makes the worker count a pure
// throughput knob (and gives the race detector a concurrent pool to watch).
func TestWorkersDoNotChangeResults(t *testing.T) {
	net, a, sim := diverseSetup(t)
	e, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Levels() {
		cfg := Config{Entry: "entry", Target: "target", Runs: 300, Seed: 17, Knowledge: k}
		serial, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 6
		pooled, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if serial != pooled {
			t.Errorf("knowledge %s: pooled result %+v differs from serial %+v", k, pooled, serial)
		}
	}
}

// TestEventModeAgreesStatistically checks the event engine against tick mode
// on the adversary campaigns (aggregate statistics; the engines consume
// randomness differently).
func TestEventModeAgreesStatistically(t *testing.T) {
	net, a, sim := diverseSetup(t)
	e, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Levels() {
		cfg := Config{Entry: "entry", Target: "target", Runs: 1500, Seed: 23, Knowledge: k}
		tick, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Mode = attacksim.ModeEvent
		event, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(tick.MTTC-event.MTTC) / math.Max(tick.MTTC, 1); rel > 0.15 {
			t.Errorf("knowledge %s: event MTTC %v deviates from tick %v", k, event.MTTC, tick.MTTC)
		}
		if math.Abs(tick.SuccessRate-event.SuccessRate) > 0.05 {
			t.Errorf("knowledge %s: success rates diverged: %v vs %v", k, tick.SuccessRate, event.SuccessRate)
		}
	}
}

func TestCaseStudyDiversificationHelpsAgainstAllAttackers(t *testing.T) {
	net, err := casestudy.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := casestudy.Similarity()
	mono, err := baseline.Mono(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := baseline.GreedyColoring(net, sim, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Entry:           casestudy.EntryCorporate4,
		Target:          casestudy.TargetWinCC,
		Runs:            200,
		Seed:            11,
		ExploitServices: casestudy.AttackServices(),
	}
	for _, k := range Levels() {
		c := cfg
		c.Knowledge = k
		em, err := New(net, mono, sim)
		if err != nil {
			t.Fatal(err)
		}
		rMono, err := em.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		eg, err := New(net, greedy, sim)
		if err != nil {
			t.Fatal(err)
		}
		rGreedy, err := eg.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if rGreedy.MTTC < rMono.MTTC-1e-9 {
			t.Errorf("knowledge %s: diversified MTTC %v should be at least mono %v",
				k, rGreedy.MTTC, rMono.MTTC)
		}
	}
}

// Package adversary evaluates diversified networks from an adversarial
// perspective, the line of future work the paper sketches in Section IX:
// how resilient is an assignment against attackers with different levels of
// knowledge about the network configuration?
//
// Three knowledge levels are modelled:
//
//   - KnowledgeNone — the attacker knows nothing about the deployed products
//     and picks which service to exploit uniformly at random at every step.
//   - KnowledgePartial — the attacker knows the global popularity of products
//     (e.g. from vendor market data) but not the per-host deployment; at each
//     step it exploits the service whose expected similarity against the
//     population is highest.
//   - KnowledgeFull — the attacker has reconnoitred the exact assignment and
//     always picks the service with the highest actual success probability
//     (the reconnaissance attacker of Table VI).
//
// The success probability of an individual exploitation attempt is the same
// similarity-boosted model used everywhere else in the library:
// P_avg + (1-P_avg)·sim(p_src, p_dst).
//
// Campaigns execute on the compiled attack engine of internal/attacksim: the
// knowledge level is lowered to a per-arc collapse at compile time (each
// attacker's service choice is a deterministic function of the arc — or, for
// the blind attacker, a uniform mixture whose per-attempt success is exactly
// the mean probability), so every level reuses the same CSR campaign with a
// knowledge-specific probability mask and no per-tick service selection or
// sorting remains in the run loop.
package adversary

import (
	"context"
	"errors"
	"fmt"

	"netdiversity/internal/attacksim"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// Knowledge is the attacker's level of knowledge about the configuration.
type Knowledge int

const (
	// KnowledgeNone picks exploits blindly.
	KnowledgeNone Knowledge = iota + 1
	// KnowledgePartial knows product popularity but not placement.
	KnowledgePartial
	// KnowledgeFull knows the exact assignment (reconnaissance).
	KnowledgeFull
)

// String implements fmt.Stringer.
func (k Knowledge) String() string {
	switch k {
	case KnowledgeNone:
		return "none"
	case KnowledgePartial:
		return "partial"
	case KnowledgeFull:
		return "full"
	default:
		return fmt.Sprintf("knowledge(%d)", int(k))
	}
}

// Levels returns all knowledge levels from weakest to strongest.
func Levels() []Knowledge {
	return []Knowledge{KnowledgeNone, KnowledgePartial, KnowledgeFull}
}

// Config parameterises an adversarial evaluation campaign.
type Config struct {
	// Entry and Target bound the campaign.
	Entry  netmodel.HostID
	Target netmodel.HostID
	// Knowledge selects the attacker model.
	Knowledge Knowledge
	// PAvg is the base zero-day propagation rate (default 0.2).
	PAvg float64
	// ExploitServices restricts the attacker's zero-day exploits
	// (nil = all services).
	ExploitServices []netmodel.ServiceID
	// Runs is the number of simulation runs (default 500).
	Runs int
	// MaxTicks bounds each run (default 500).
	MaxTicks int
	// Seed makes the campaign deterministic.
	Seed int64
	// Mode selects the compiled engine (tick by default; event mode is
	// statistically equivalent and faster on hardened networks).
	Mode attacksim.Mode
	// Workers sizes the batched Monte-Carlo worker pool (default 1; results
	// are identical for every worker count).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Knowledge == 0 {
		c.Knowledge = KnowledgeFull
	}
	if c.PAvg <= 0 || c.PAvg >= 1 {
		c.PAvg = 0.2
	}
	if c.Runs <= 0 {
		c.Runs = 500
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 500
	}
	return c
}

// Result summarises a campaign under one knowledge level.
type Result struct {
	// Knowledge echoes the attacker model.
	Knowledge Knowledge
	// MTTC is the mean ticks to compromise the target (MaxTicks for runs
	// that never succeed).
	MTTC float64
	// SuccessRate is the fraction of runs that compromised the target.
	SuccessRate float64
	// MeanInfected is the mean number of compromised hosts per run.
	MeanInfected float64
	// Runs echoes the number of runs.
	Runs int
}

// Evaluator runs adversarial campaigns against one network and assignment.
type Evaluator struct {
	net *netmodel.Network
	a   *netmodel.Assignment
	sim *vulnsim.SimilarityTable
	// popularity[s][p] is the fraction of hosts providing service s that run
	// product p (the partial-knowledge attacker's prior).
	popularity map[netmodel.ServiceID]map[netmodel.ProductID]float64
}

// ErrNilInput is returned when the evaluator receives nil inputs.
var ErrNilInput = errors.New("adversary: network, assignment and similarity table must not be nil")

// New prepares an evaluator.
func New(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable) (*Evaluator, error) {
	if net == nil || a == nil || sim == nil {
		return nil, ErrNilInput
	}
	if err := a.ValidateFor(net); err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	e := &Evaluator{net: net, a: a, sim: sim}
	e.popularity = productPopularity(net, a)
	return e, nil
}

func productPopularity(net *netmodel.Network, a *netmodel.Assignment) map[netmodel.ServiceID]map[netmodel.ProductID]float64 {
	counts := make(map[netmodel.ServiceID]map[netmodel.ProductID]int)
	totals := make(map[netmodel.ServiceID]int)
	for _, hid := range net.Hosts() {
		h, _ := net.Host(hid)
		for _, s := range h.Services {
			p, ok := a.Get(hid, s)
			if !ok {
				continue
			}
			if counts[s] == nil {
				counts[s] = make(map[netmodel.ProductID]int)
			}
			counts[s][p]++
			totals[s]++
		}
	}
	out := make(map[netmodel.ServiceID]map[netmodel.ProductID]float64, len(counts))
	for s, byProduct := range counts {
		out[s] = make(map[netmodel.ProductID]float64, len(byProduct))
		for p, c := range byProduct {
			out[s][p] = float64(c) / float64(totals[s])
		}
	}
	return out
}

// expectedProb is the partial-knowledge attacker's estimate: the expected
// success probability of exploiting service s from a host running product pu
// against a host drawn from the population.  It is evaluated at compile
// time, once per (arc, service).
func (e *Evaluator) expectedProb(pavg float64, pu netmodel.ProductID, s netmodel.ServiceID) float64 {
	sum := 0.0
	for p, share := range e.popularity[s] {
		sum += share * (pavg + (1-pavg)*e.sim.Sim(string(pu), string(p)))
	}
	return sum
}

// collapse lowers the knowledge level to a compile-time per-arc reduction:
//
//   - KnowledgeFull picks the service with the highest actual success
//     probability (max).
//   - KnowledgeNone picks uniformly at random per attempt; a uniform mixture
//     of Bernoulli attempts is a Bernoulli attempt with the mean probability,
//     so the mean collapse is exact in distribution.
//   - KnowledgePartial ranks the arc's services by the attacker's
//     population-expected payoff — a function of the source host only, so it
//     is constant per arc — and uses the actual probability of the winner.
func (e *Evaluator) collapse(cfg Config) attacksim.CollapseFunc {
	switch cfg.Knowledge {
	case KnowledgeNone:
		return attacksim.CollapseMean
	case KnowledgePartial:
		// The expected payoff depends only on the (source product, service)
		// pair, not on the arc, so it is memoised across the whole lowering
		// (like the product-pair interning of the actual probabilities).
		expected := make(map[netmodel.ServiceID]map[netmodel.ProductID]float64, len(e.popularity))
		payoff := func(pu netmodel.ProductID, s netmodel.ServiceID) float64 {
			byProduct, ok := expected[s]
			if !ok {
				byProduct = make(map[netmodel.ProductID]float64)
				expected[s] = byProduct
			}
			v, ok := byProduct[pu]
			if !ok {
				v = e.expectedProb(cfg.PAvg, pu, s)
				byProduct[pu] = v
			}
			return v
		}
		return func(src, _ netmodel.HostID, services []netmodel.ServiceID, probs []float64) float64 {
			best, bestV := 0, -1.0
			for i, s := range services {
				pu, ok := e.a.Get(src, s)
				if !ok {
					continue
				}
				if v := payoff(pu, s); v > bestV {
					best, bestV = i, v
				}
			}
			return probs[best]
		}
	default:
		return attacksim.CollapseMax
	}
}

// Compile lowers the campaign for one knowledge level onto the shared attack
// engine.
func (e *Evaluator) Compile(cfg Config) (*attacksim.Campaign, error) {
	cfg = cfg.withDefaults()
	c, err := attacksim.CompileCampaign(e.net, e.a, e.sim, attacksim.CompileConfig{
		Entry:           cfg.Entry,
		Target:          cfg.Target,
		PAvg:            cfg.PAvg,
		ExploitServices: cfg.ExploitServices,
		Runs:            cfg.Runs,
		MaxTicks:        cfg.MaxTicks,
		Seed:            cfg.Seed,
		Collapse:        e.collapse(cfg),
	})
	if err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	return c, nil
}

// Run executes the adversarial campaign.
func (e *Evaluator) Run(cfg Config) (Result, error) {
	return e.RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation between simulation runs.
func (e *Evaluator) RunContext(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	c, err := e.Compile(cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := c.RunBatch(ctx, attacksim.BatchOptions{Mode: cfg.Mode, Workers: cfg.Workers})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Knowledge:    cfg.Knowledge,
		MTTC:         res.MTTC,
		SuccessRate:  res.SuccessRate,
		MeanInfected: res.MeanInfected,
		Runs:         res.Runs,
	}, nil
}

// Compare evaluates the assignment under every knowledge level and returns
// the results ordered from the weakest to the strongest attacker.
func (e *Evaluator) Compare(cfg Config) ([]Result, error) {
	var out []Result
	for _, k := range Levels() {
		c := cfg
		c.Knowledge = k
		r, err := e.Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

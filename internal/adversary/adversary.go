// Package adversary evaluates diversified networks from an adversarial
// perspective, the line of future work the paper sketches in Section IX:
// how resilient is an assignment against attackers with different levels of
// knowledge about the network configuration?
//
// Three knowledge levels are modelled:
//
//   - KnowledgeNone — the attacker knows nothing about the deployed products
//     and picks which service to exploit uniformly at random at every step.
//   - KnowledgePartial — the attacker knows the global popularity of products
//     (e.g. from vendor market data) but not the per-host deployment; at each
//     step it exploits the service whose expected similarity against the
//     population is highest.
//   - KnowledgeFull — the attacker has reconnoitred the exact assignment and
//     always picks the service with the highest actual success probability
//     (the reconnaissance attacker of Table VI).
//
// The success probability of an individual exploitation attempt is the same
// similarity-boosted model used everywhere else in the library:
// P_avg + (1-P_avg)·sim(p_src, p_dst).
package adversary

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// Knowledge is the attacker's level of knowledge about the configuration.
type Knowledge int

const (
	// KnowledgeNone picks exploits blindly.
	KnowledgeNone Knowledge = iota + 1
	// KnowledgePartial knows product popularity but not placement.
	KnowledgePartial
	// KnowledgeFull knows the exact assignment (reconnaissance).
	KnowledgeFull
)

// String implements fmt.Stringer.
func (k Knowledge) String() string {
	switch k {
	case KnowledgeNone:
		return "none"
	case KnowledgePartial:
		return "partial"
	case KnowledgeFull:
		return "full"
	default:
		return fmt.Sprintf("knowledge(%d)", int(k))
	}
}

// Levels returns all knowledge levels from weakest to strongest.
func Levels() []Knowledge {
	return []Knowledge{KnowledgeNone, KnowledgePartial, KnowledgeFull}
}

// Config parameterises an adversarial evaluation campaign.
type Config struct {
	// Entry and Target bound the campaign.
	Entry  netmodel.HostID
	Target netmodel.HostID
	// Knowledge selects the attacker model.
	Knowledge Knowledge
	// PAvg is the base zero-day propagation rate (default 0.2).
	PAvg float64
	// ExploitServices restricts the attacker's zero-day exploits
	// (nil = all services).
	ExploitServices []netmodel.ServiceID
	// Runs is the number of simulation runs (default 500).
	Runs int
	// MaxTicks bounds each run (default 500).
	MaxTicks int
	// Seed makes the campaign deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Knowledge == 0 {
		c.Knowledge = KnowledgeFull
	}
	if c.PAvg <= 0 || c.PAvg >= 1 {
		c.PAvg = 0.2
	}
	if c.Runs <= 0 {
		c.Runs = 500
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 500
	}
	return c
}

func (c Config) allowsService(s netmodel.ServiceID) bool {
	if len(c.ExploitServices) == 0 {
		return true
	}
	for _, e := range c.ExploitServices {
		if e == s {
			return true
		}
	}
	return false
}

// Result summarises a campaign under one knowledge level.
type Result struct {
	// Knowledge echoes the attacker model.
	Knowledge Knowledge
	// MTTC is the mean ticks to compromise the target (MaxTicks for runs
	// that never succeed).
	MTTC float64
	// SuccessRate is the fraction of runs that compromised the target.
	SuccessRate float64
	// MeanInfected is the mean number of compromised hosts per run.
	MeanInfected float64
	// Runs echoes the number of runs.
	Runs int
}

// Evaluator runs adversarial campaigns against one network and assignment.
type Evaluator struct {
	net *netmodel.Network
	a   *netmodel.Assignment
	sim *vulnsim.SimilarityTable
	// popularity[s][p] is the fraction of hosts providing service s that run
	// product p (the partial-knowledge attacker's prior).
	popularity map[netmodel.ServiceID]map[netmodel.ProductID]float64
}

// ErrNilInput is returned when the evaluator receives nil inputs.
var ErrNilInput = errors.New("adversary: network, assignment and similarity table must not be nil")

// New prepares an evaluator.
func New(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable) (*Evaluator, error) {
	if net == nil || a == nil || sim == nil {
		return nil, ErrNilInput
	}
	if err := a.ValidateFor(net); err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	e := &Evaluator{net: net, a: a, sim: sim}
	e.popularity = productPopularity(net, a)
	return e, nil
}

func productPopularity(net *netmodel.Network, a *netmodel.Assignment) map[netmodel.ServiceID]map[netmodel.ProductID]float64 {
	counts := make(map[netmodel.ServiceID]map[netmodel.ProductID]int)
	totals := make(map[netmodel.ServiceID]int)
	for _, hid := range net.Hosts() {
		h, _ := net.Host(hid)
		for _, s := range h.Services {
			p, ok := a.Get(hid, s)
			if !ok {
				continue
			}
			if counts[s] == nil {
				counts[s] = make(map[netmodel.ProductID]int)
			}
			counts[s][p]++
			totals[s]++
		}
	}
	out := make(map[netmodel.ServiceID]map[netmodel.ProductID]float64, len(counts))
	for s, byProduct := range counts {
		out[s] = make(map[netmodel.ProductID]float64, len(byProduct))
		for p, c := range byProduct {
			out[s][p] = float64(c) / float64(totals[s])
		}
	}
	return out
}

// successProb is the real probability that exploiting service s from src
// compromises dst.
func (e *Evaluator) successProb(cfg Config, src, dst netmodel.HostID, s netmodel.ServiceID) float64 {
	pu, oku := e.a.Get(src, s)
	pv, okv := e.a.Get(dst, s)
	if !oku || !okv {
		return 0
	}
	return cfg.PAvg + (1-cfg.PAvg)*e.sim.Sim(string(pu), string(pv))
}

// expectedProb is the partial-knowledge attacker's estimate: the expected
// success probability of exploiting service s from src against a host drawn
// from the population.
func (e *Evaluator) expectedProb(cfg Config, src netmodel.HostID, s netmodel.ServiceID) float64 {
	pu, ok := e.a.Get(src, s)
	if !ok {
		return 0
	}
	sum := 0.0
	for p, share := range e.popularity[s] {
		sum += share * (cfg.PAvg + (1-cfg.PAvg)*e.sim.Sim(string(pu), string(p)))
	}
	return sum
}

// chooseService returns the service the attacker exploits on the edge
// src -> dst under the configured knowledge level, or false when no feasible
// service exists.
func (e *Evaluator) chooseService(cfg Config, rng *rand.Rand, src, dst netmodel.HostID) (netmodel.ServiceID, bool) {
	var feasible []netmodel.ServiceID
	for _, s := range e.net.SharedServices(src, dst) {
		if !cfg.allowsService(s) {
			continue
		}
		if _, ok := e.a.Get(dst, s); !ok {
			continue
		}
		if _, ok := e.a.Get(src, s); !ok {
			continue
		}
		feasible = append(feasible, s)
	}
	if len(feasible) == 0 {
		return "", false
	}
	sort.Slice(feasible, func(i, j int) bool { return feasible[i] < feasible[j] })
	switch cfg.Knowledge {
	case KnowledgeNone:
		return feasible[rng.Intn(len(feasible))], true
	case KnowledgePartial:
		best, bestV := feasible[0], -1.0
		for _, s := range feasible {
			if v := e.expectedProb(cfg, src, s); v > bestV {
				best, bestV = s, v
			}
		}
		return best, true
	default:
		best, bestV := feasible[0], -1.0
		for _, s := range feasible {
			if v := e.successProb(cfg, src, dst, s); v > bestV {
				best, bestV = s, v
			}
		}
		return best, true
	}
}

// Run executes the adversarial campaign.
func (e *Evaluator) Run(cfg Config) (Result, error) {
	return e.RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation between simulation runs.
func (e *Evaluator) RunContext(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if _, ok := e.net.Host(cfg.Entry); !ok {
		return Result{}, fmt.Errorf("adversary: unknown entry host %q", cfg.Entry)
	}
	if _, ok := e.net.Host(cfg.Target); !ok {
		return Result{}, fmt.Errorf("adversary: unknown target host %q", cfg.Target)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Knowledge: cfg.Knowledge, Runs: cfg.Runs}
	totalTicks, totalInfected, successes := 0.0, 0, 0
	for run := 0; run < cfg.Runs; run++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		ticks, infected, ok := e.singleRun(cfg, rng)
		totalTicks += float64(ticks)
		totalInfected += infected
		if ok {
			successes++
		}
	}
	res.MTTC = totalTicks / float64(cfg.Runs)
	res.SuccessRate = float64(successes) / float64(cfg.Runs)
	res.MeanInfected = float64(totalInfected) / float64(cfg.Runs)
	return res, nil
}

func (e *Evaluator) singleRun(cfg Config, rng *rand.Rand) (tick, infectedCount int, reached bool) {
	infected := map[netmodel.HostID]bool{cfg.Entry: true}
	if cfg.Entry == cfg.Target {
		return 0, 1, true
	}
	for tick = 1; tick <= cfg.MaxTicks; tick++ {
		var newly []netmodel.HostID
		for host := range infected {
			for _, nb := range e.net.Neighbors(host) {
				if infected[nb] {
					continue
				}
				svc, ok := e.chooseService(cfg, rng, host, nb)
				if !ok {
					continue
				}
				if rng.Float64() < e.successProb(cfg, host, nb, svc) {
					newly = append(newly, nb)
				}
			}
		}
		for _, h := range newly {
			infected[h] = true
		}
		if infected[cfg.Target] {
			return tick, len(infected), true
		}
	}
	return cfg.MaxTicks, len(infected), false
}

// Compare evaluates the assignment under every knowledge level and returns
// the results ordered from the weakest to the strongest attacker.
func (e *Evaluator) Compare(cfg Config) ([]Result, error) {
	var out []Result
	for _, k := range Levels() {
		c := cfg
		c.Knowledge = k
		r, err := e.Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

package replic

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"netdiversity/internal/fastrand"
)

// FaultConfig parameterizes a FaultTransport.  Probabilities are in [0, 1]
// and drawn from a seeded generator, so a chaos schedule is reproducible
// from its seed — the wire-level sibling of wal.FaultFS.
type FaultConfig struct {
	// Seed for the fault generator; the same seed yields the same fault
	// sequence for the same request sequence.
	Seed uint64
	// DropP is the probability a request is consumed and never delivered
	// (the client sees a transport error, the server sees nothing).
	DropP float64
	// DupP is the probability a request is delivered twice back-to-back —
	// the duplicate-delivery case every idempotent apply path must survive.
	DupP float64
	// DelayP is the probability a request is held up to MaxDelay before
	// delivery.  Under concurrent senders delays reorder deliveries.
	DelayP float64
	// MaxDelay bounds an injected delay.  Default 20ms when DelayP > 0.
	MaxDelay time.Duration
}

// ErrInjectedDrop is the transport error surfaced for injected drops, so
// tests can tell injected faults from real ones.
var ErrInjectedDrop = errors.New("replic: injected network drop")

// ErrPartitioned is the transport error surfaced while a partition is up.
var ErrPartitioned = errors.New("replic: injected network partition")

// FaultTransport is an http.RoundTripper that injects faults — drops,
// duplicates, delays, and a toggleable full partition — between a
// replication client and its peer.  Deterministic for a given seed and
// request order; wrap it around httptest servers to build chaos schedules.
type FaultTransport struct {
	// Next performs real delivery; http.DefaultTransport when nil.
	Next http.RoundTripper

	cfg FaultConfig

	mu  sync.Mutex
	rng fastrand.RNG

	partitioned atomic.Bool

	// Fault counters, for asserting a schedule actually exercised faults.
	Drops      atomic.Int64
	Dups       atomic.Int64
	Delays     atomic.Int64
	Rejections atomic.Int64
}

// NewFaultTransport builds a FaultTransport for the config.
func NewFaultTransport(cfg FaultConfig) *FaultTransport {
	if cfg.DelayP > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	return &FaultTransport{cfg: cfg, rng: fastrand.New(cfg.Seed)}
}

// Partition raises (true) or heals (false) a full partition: every request
// fails until healed.
func (t *FaultTransport) Partition(up bool) { t.partitioned.Store(up) }

// roll draws the fault decisions for one request under the lock, keeping
// the sequence deterministic even with concurrent requests in flight (the
// decisions are then applied outside the lock).
func (t *FaultTransport) roll() (drop, dup bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.DropP > 0 && t.rng.Float64() < t.cfg.DropP {
		drop = true
	}
	if t.cfg.DupP > 0 && t.rng.Float64() < t.cfg.DupP {
		dup = true
	}
	if t.cfg.DelayP > 0 && t.rng.Float64() < t.cfg.DelayP {
		delay = time.Duration(t.rng.Float64() * float64(t.cfg.MaxDelay))
	}
	return drop, dup, delay
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.partitioned.Load() {
		t.Rejections.Add(1)
		if req.Body != nil {
			io.Copy(io.Discard, req.Body) //nolint:errcheck // fault path
			req.Body.Close()
		}
		return nil, ErrPartitioned
	}
	drop, dup, delay := t.roll()
	if drop {
		t.Drops.Add(1)
		if req.Body != nil {
			io.Copy(io.Discard, req.Body) //nolint:errcheck // fault path
			req.Body.Close()
		}
		return nil, ErrInjectedDrop
	}
	if delay > 0 {
		t.Delays.Add(1)
		time.Sleep(delay)
	}
	next := t.Next
	if next == nil {
		next = http.DefaultTransport
	}
	if !dup {
		return next.RoundTrip(req)
	}
	// Duplicate: buffer the body so the request can be replayed, deliver it
	// twice, return the second response (the first is fully consumed, as a
	// network duplicate would be).
	t.Dups.Add(1)
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	first := req.Clone(req.Context())
	if body != nil {
		first.Body = io.NopCloser(bytes.NewReader(body))
	}
	if resp, err := next.RoundTrip(first); err == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // duplicate delivery
		resp.Body.Close()
	}
	second := req.Clone(req.Context())
	if body != nil {
		second.Body = io.NopCloser(bytes.NewReader(body))
	}
	return next.RoundTrip(second)
}

package replic

import (
	"fmt"
	"testing"

	"netdiversity/internal/fastrand"
	"netdiversity/internal/netmodel"
)

// decodeCost runs the follower's adaptive loop against an in-memory remote
// set and reports how many symbols were fetched before the difference
// decoded.  It mirrors Follower.reconcileSession: chunk sizes double from
// chunkStart, and every attempt re-decodes the (rateless) prefix.
func decodeCost(t *testing.T, remote, local []uint64, cap int) (remoteOnly, localOnly []uint64, symbols int) {
	t.Helper()
	for n := defaultChunkStart; n <= cap; n *= 2 {
		syms := EncodeSymbols(remote, n)
		ro, lo, ok := Reconcile(syms, local)
		if ok {
			return ro, lo, n
		}
	}
	t.Fatalf("difference did not decode within %d symbols", cap)
	return nil, nil, 0
}

func contiguous(from, to uint64) []uint64 {
	out := make([]uint64, 0, to-from+1)
	for v := from; v <= to; v++ {
		out = append(out, v)
	}
	return out
}

func TestReconcileRoundTrip(t *testing.T) {
	remote := contiguous(1, 200)
	// Local set has a hole (deltas 50-52 lost) and a stray pending record the
	// remote never committed — both sides of the symmetric difference.
	var local []uint64
	for _, v := range remote {
		if v < 50 || v > 52 {
			local = append(local, v)
		}
	}
	local = append(local, 999)
	ro, lo, n := decodeCost(t, remote, local, 1024)
	if len(ro) != 3 || len(lo) != 1 {
		t.Fatalf("decoded %d remote-only, %d local-only (want 3, 1) in %d symbols", len(ro), len(lo), n)
	}
	got := map[uint64]bool{}
	for _, v := range ro {
		got[v] = true
	}
	if !got[50] || !got[51] || !got[52] || lo[0] != 999 {
		t.Fatalf("wrong difference: remote-only %v, local-only %v", ro, lo)
	}
}

func TestReconcileEqualSetsFirstChunk(t *testing.T) {
	set := contiguous(1, 10000)
	syms := EncodeSymbols(set, defaultChunkStart)
	ro, lo, ok := Reconcile(syms, set)
	if !ok || len(ro) != 0 || len(lo) != 0 {
		t.Fatalf("equal 10k sets must decode empty from the first %d symbols (ok=%v ro=%v lo=%v)",
			defaultChunkStart, ok, ro, lo)
	}
}

// TestReconcileCostScalesWithDiff pins the headline property: for 10k-record
// sessions the symbols exchanged scale with the difference, not the set — a
// zero-diff round decodes from the minimal chunk and a 100-record diff stays
// two orders of magnitude below full-log transfer.  The bound allows the
// riblt constant (~1.35 symbols/item) plus the doubling loop's 2x overshoot.
func TestReconcileCostScalesWithDiff(t *testing.T) {
	const setSize = 10000
	remote := contiguous(1, setSize)
	rng := fastrand.New(42)
	for _, d := range []int{0, 1, 10, 100} {
		t.Run(fmt.Sprintf("diff%d", d), func(t *testing.T) {
			missing := map[uint64]bool{}
			for len(missing) < d {
				missing[1+rng.Uint64()%setSize] = true
			}
			var local []uint64
			for _, v := range remote {
				if !missing[v] {
					local = append(local, v)
				}
			}
			ro, lo, symbols := decodeCost(t, remote, local, 8*setSize)
			if len(ro) != d || len(lo) != 0 {
				t.Fatalf("decoded %d/%d remote-only, %d local-only", len(ro), d, len(lo))
			}
			bound := defaultChunkStart
			if d > 0 {
				bound = 6 * d // ~1.35 symbols/item, next power of two, safety margin
				if bound < 16 {
					bound = 16
				}
			}
			if symbols > bound {
				t.Fatalf("diff %d needed %d symbols, want <= %d (O(diff), not O(set))", d, symbols, bound)
			}
			t.Logf("diff %d decoded from %d symbols", d, symbols)
		})
	}
}

func TestReconcileDigestCrossCheck(t *testing.T) {
	// The anti-entropy round verifies the decoded target set against the
	// primary's advertised digest; exercise the arithmetic the follower uses.
	remote := contiguous(11, 40)
	local := []uint64{12, 13, 99}
	ro, lo, n := decodeCost(t, remote, local, 1024)
	_ = n
	d := netmodel.DigestOf(local)
	for _, v := range ro {
		d.Add(v)
	}
	for _, v := range lo {
		d.Remove(v)
	}
	if want := netmodel.DigestOf(remote); d != want {
		t.Fatalf("reconstructed digest %x != remote digest %x", d, want)
	}
}

func BenchmarkEncodeSymbols10k(b *testing.B) {
	set := contiguous(1, 10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeSymbols(set, 128)
	}
}

func BenchmarkReconcileDiff10(b *testing.B) {
	remote := contiguous(1, 10000)
	local := remote[:9990]
	syms := EncodeSymbols(remote, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := Reconcile(syms, local); !ok {
			b.Fatal("did not decode")
		}
	}
}

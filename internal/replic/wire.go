package replic

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"netdiversity/internal/wal"
)

// Wire protocol.  Control messages (session listing, symbol and record
// requests, attach) are plain JSON bodies; everything that carries records or
// snapshots — the push stream and the record/snapshot fetch responses — is a
// sequence of length-prefixed, CRC32C-checked frames in the WAL's on-disk
// framing (wal.AppendFrame / wal.ReadFrame), so a truncated response or a
// flipped bit is detected exactly like a torn or corrupt log record, before
// any payload reaches an apply path.

// Endpoint paths.  The primary's pull surface plus the follower's push sink;
// cmd/divd mounts them next to the v1 API.
const (
	PathSessions = "/v1/replic/sessions"
	PathSymbols  = "/v1/replic/symbols"
	PathRecords  = "/v1/replic/records"
	PathSnapshot = "/v1/replic/snapshot"
	PathAttach   = "/v1/replic/attach"
	PathIngest   = "/v1/replic/ingest"
)

// maxStreamFrames bounds the number of frames one request or response stream
// may carry, so a malicious or corrupt stream cannot spin a reader.
const maxStreamFrames = 65536

// maxSymbolCount bounds one symbol request; the adaptive loop's doubling
// never reasonably exceeds it (a difference that large falls back to a full
// snapshot first).
const maxSymbolCount = 1 << 16

// SessionState is one row of the primary's session listing: the published
// tip every follower compares its replica against.  Matching version and
// hash is the zero-diff fast path — the whole anti-entropy round for an
// in-sync session is this one listing entry.
type SessionState struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	Hash    string `json:"hash"`
}

// sessionsResponse is the body of GET PathSessions.
type sessionsResponse struct {
	Sessions []SessionState `json:"sessions"`
}

// symbolsRequest asks the primary for the first Count coded symbols over its
// record-version set above Floor (the follower's contiguously applied
// version) for one session.
type symbolsRequest struct {
	ID    string `json:"id"`
	Floor uint64 `json:"floor"`
	Count int    `json:"count"`
}

// symbolsResponse carries the requested sketch prefix.  Digest is the
// primary's record-set digest above Floor; after decoding, the follower
// verifies its reconstructed target set against it, an end-to-end check that
// the rateless decode was complete.  SnapshotNeeded means the primary has
// compacted records the follower would need — fall back to a full snapshot.
type symbolsResponse struct {
	ID             string        `json:"id"`
	Floor          uint64        `json:"floor"`
	Tip            uint64        `json:"tip"`
	Digest         uint64        `json:"digest"`
	SnapshotNeeded bool          `json:"snapshot_needed,omitempty"`
	Symbols        []CodedSymbol `json:"symbols,omitempty"`
}

// recordsRequest asks the primary for specific record versions of a session;
// the response is a framed stream of record payloads.
type recordsRequest struct {
	ID       string   `json:"id"`
	Versions []uint64 `json:"versions"`
}

// attachRequest registers a follower's ingest URL with the primary for push
// replication.  Idempotent; followers re-attach every anti-entropy round so
// a restarted primary re-learns its followers.
type attachRequest struct {
	URL string `json:"url"`
}

// Push envelope kinds.
const (
	kindSnapshot = "snapshot"
	kindRecord   = "record"
	kindDelete   = "delete"
)

// pushEnvelope is one event of the push stream: a committed record, a full
// session snapshot (session created, or a follower attached late), or a
// session deletion.
type pushEnvelope struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Record   json.RawMessage `json:"record,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// errStreamTooLong reports a framed stream exceeding maxStreamFrames.
var errStreamTooLong = errors.New("replic: framed stream exceeds frame limit")

// readFrameStream consumes a framed stream, invoking fn per payload.  A torn
// or corrupt frame, an over-long stream, or an fn error stops the stream and
// is returned; a clean EOF at a frame boundary ends it with nil.
func readFrameStream(r io.Reader, fn func(payload []byte) error) error {
	br := bufio.NewReader(r)
	for n := 0; ; n++ {
		if n >= maxStreamFrames {
			return errStreamTooLong
		}
		payload, err := wal.ReadFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}

// appendEnvelopeFrame marshals one push envelope and appends it to dst as a
// frame.
func appendEnvelopeFrame(dst []byte, env *pushEnvelope) ([]byte, error) {
	payload, err := json.Marshal(env)
	if err != nil {
		return dst, fmt.Errorf("replic: encode push envelope: %w", err)
	}
	return wal.AppendFrame(dst, payload), nil
}

// writeWireError writes the protocol's JSON error body.
func writeWireError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// writeWireJSON writes a JSON control response.
func writeWireJSON(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

// decodeWireJSON decodes a bounded JSON control body.
func decodeWireJSON(r *http.Request, into any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("replic: decode request: %w", err)
	}
	return nil
}

// postJSON issues a JSON POST and decodes a JSON response into out (when out
// is non-nil).  Non-2xx statuses are returned as errors carrying the body's
// error message when present.
func postJSON(client *http.Client, url string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return wireStatusError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out)
}

// wireStatusError turns a non-2xx protocol response into an error.
func wireStatusError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := ""
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err == nil {
		msg = body.Error
	}
	if msg == "" {
		return fmt.Errorf("replic: %s returned %d", resp.Request.URL.Path, resp.StatusCode)
	}
	return fmt.Errorf("replic: %s returned %d: %s", resp.Request.URL.Path, resp.StatusCode, msg)
}

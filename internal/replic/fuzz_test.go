package replic

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/wal"
)

// FuzzReconcile feeds the peeling decoder adversarial symbol streams: bit
// flips, truncations, and symbol cells that were never produced by a real
// encoder.  Whatever arrives, Reconcile must terminate within its peel
// bound, never panic, and never report success for a stream whose cells do
// not cancel — a poisoned decode must come back ok=false, not as a
// fabricated difference.
func FuzzReconcile(f *testing.F) {
	// Seed with a genuine exchange so the fuzzer starts from decodable
	// structure: remote = {1..40}, local misses 3 of them.
	remoteSet := make([]uint64, 0, 40)
	for i := uint64(1); i <= 40; i++ {
		remoteSet = append(remoteSet, i)
	}
	genuine := EncodeSymbols(remoteSet, 32)
	f.Add(symbolBytes(genuine), uint16(37))
	f.Add(symbolBytes(EncodeSymbols(nil, 8)), uint16(0))
	f.Add(symbolBytes(genuine[:5]), uint16(40))
	flipped := symbolBytes(genuine)
	flipped[17] ^= 0x40
	f.Add(flipped, uint16(37))
	f.Add([]byte{}, uint16(3))

	f.Fuzz(func(t *testing.T, raw []byte, localN uint16) {
		// The follower rejects responses larger than its request, which the
		// adaptive loop caps at FollowerOptions.MaxSymbols (default 2048) —
		// so 4096 cells bounds anything a real pull can hand the decoder.
		symbols := symbolsFromBytes(raw)
		if len(symbols) > 4096 {
			symbols = symbols[:4096]
		}
		local := make([]uint64, 0, localN%4096)
		for i := uint64(0); i < uint64(localN%4096); i++ {
			local = append(local, i+1)
		}
		remoteOnly, localOnly, ok := Reconcile(symbols, local)
		if len(remoteOnly) > len(symbols)*2+len(local) || len(localOnly) > len(symbols)*2+len(local) {
			t.Fatalf("decoded diff larger than the input universe: %d/%d from %d symbols, %d local",
				len(remoteOnly), len(localOnly), len(symbols), len(local))
		}
		if !ok {
			return
		}
		// A successful decode must explain the sketch: rebuilding the
		// difference cells and unfolding the decoded items must cancel every
		// cell.  (For forged cells a decoded "localOnly" item need not exist
		// in the local set — production survives that because dropping an
		// unknown pending version is a no-op and the wire digest check guards
		// the set end-to-end — but the cells themselves must always balance.)
		residual := make([]CodedSymbol, len(symbols))
		copy(residual, symbols)
		for _, id := range local {
			foldForTest(residual, id, -1)
		}
		for _, id := range remoteOnly {
			foldForTest(residual, id, -1)
		}
		for _, id := range localOnly {
			foldForTest(residual, id, 1)
		}
		for i, c := range residual {
			if c.Count != 0 || c.IDSum != 0 || c.HashSum != 0 {
				t.Fatalf("cell %d not cancelled by the decoded diff: %+v", i, c)
			}
		}
	})
}

// foldForTest re-derives an item's cell membership independently of the
// decoder's fold, so the oracle does not share a bug with the code under
// test beyond the index mapping itself.
func foldForTest(cells []CodedSymbol, item uint64, sign int64) {
	h := netmodel.Mix64(item)
	m := newMapping(item)
	for idx := uint64(0); idx < uint64(len(cells)); idx = m.next() {
		cells[idx].Count += sign
		cells[idx].IDSum ^= item
		cells[idx].HashSum ^= h
	}
}

// symbolBytes packs symbols as little-endian (count, idsum, hashsum) triples
// so the fuzzer can mutate the raw cell contents.
func symbolBytes(symbols []CodedSymbol) []byte {
	out := make([]byte, 0, len(symbols)*24)
	for _, s := range symbols {
		out = binary.LittleEndian.AppendUint64(out, uint64(s.Count))
		out = binary.LittleEndian.AppendUint64(out, s.IDSum)
		out = binary.LittleEndian.AppendUint64(out, s.HashSum)
	}
	return out
}

func symbolsFromBytes(raw []byte) []CodedSymbol {
	symbols := make([]CodedSymbol, 0, len(raw)/24)
	for len(raw) >= 24 {
		symbols = append(symbols, CodedSymbol{
			Count:   int64(binary.LittleEndian.Uint64(raw[0:8])),
			IDSum:   binary.LittleEndian.Uint64(raw[8:16]),
			HashSum: binary.LittleEndian.Uint64(raw[16:24]),
		})
		raw = raw[24:]
	}
	return symbols
}

// fuzzStore is a ReplicaStore that records what the ingest path applied and
// fails the test on any contract violation: an apply for an unknown session,
// or a record whose PrevVersion does not extend the applied chain.  It never
// verifies payload semantics — that is serve's job — so any violation that
// reaches it came through the wire layer unchecked.
type fuzzStore struct {
	t  *testing.T
	mu sync.Mutex
	v  map[string]uint64
}

func (s *fuzzStore) ReplicaCreate(snap *wal.SessionSnapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap == nil || snap.ID == "" {
		s.t.Fatalf("ingest applied a snapshot with no session ID")
	}
	s.v[snap.ID] = snap.Version
	return nil
}

func (s *fuzzStore) ReplicaApply(id string, rec *wal.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, known := s.v[id]
	if !known {
		return fmt.Errorf("unknown session %q", id)
	}
	if rec.PrevVersion != v {
		// The follower buffers out-of-order records and drains contiguously;
		// a gap reaching the store means that invariant broke.
		s.t.Fatalf("non-contiguous apply for %q: at %d, record %d->%d", id, v, rec.PrevVersion, rec.Version)
	}
	s.v[id] = rec.Version
	return nil
}

func (s *fuzzStore) ReplicaDelete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.v, id)
	return nil
}

func (s *fuzzStore) ReplicaVersion(id string) (uint64, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.v[id]
	return v, "", ok
}

func (s *fuzzStore) SessionIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.v))
	for id := range s.v {
		ids = append(ids, id)
	}
	return ids
}

// FuzzIngest throws arbitrary bytes at the push-stream ingest endpoint:
// torn frames, bit-flipped records, truncated JSON, kind confusion.  The
// handler must never panic, never let a non-contiguous record reach the
// store, and always answer — a malicious or corrupted primary degrades a
// follower to resync, not to a crash.
func FuzzIngest(f *testing.F) {
	// Seed corpus: a valid snapshot envelope followed by two chained records,
	// then broken variants.
	snap := &wal.SessionSnapshot{ID: "s1", Version: 1, Hash: "aa"}
	snapJSON, err := json.Marshal(snap)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := appendEnvelopeFrame(nil, &pushEnvelope{ID: "s1", Kind: kindSnapshot, Snapshot: snapJSON})
	if err != nil {
		f.Fatal(err)
	}
	for v := uint64(2); v <= 3; v++ {
		rec := &wal.Record{PrevVersion: v - 1, Version: v, Hash: "aa"}
		payload, err := rec.Encode()
		if err != nil {
			f.Fatal(err)
		}
		valid, err = appendEnvelopeFrame(valid, &pushEnvelope{ID: "s1", Kind: kindRecord, Record: payload})
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-6]) // torn tail frame
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	del, err := appendEnvelopeFrame(nil, &pushEnvelope{ID: "s1", Kind: kindDelete})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(del)
	f.Add(wal.AppendFrame(nil, []byte(`{"kind":"wat"}`)))
	f.Add(wal.AppendFrame(nil, []byte(`not json`)))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		store := &fuzzStore{t: t, v: map[string]uint64{}}
		fol := NewFollower(store, "http://unused.invalid", FollowerOptions{
			Interval: time.Hour,
			Client:   &http.Client{Timeout: time.Second},
		})
		defer fol.Stop()
		req := httptest.NewRequest(http.MethodPost, PathIngest, bytes.NewReader(data))
		rw := httptest.NewRecorder()
		fol.IngestHandler().ServeHTTP(rw, req)
		if rw.Code != http.StatusNoContent && rw.Code != http.StatusBadRequest {
			t.Fatalf("ingest answered %d; want 204 or 400", rw.Code)
		}
	})
}

package replic

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/wal"
)

// SnapshotSource is the surface the primary needs from the serving plane to
// serve full-sync requests: the live session IDs and a consistent full
// snapshot of one session.  *serve.Server implements it.
type SnapshotSource interface {
	SessionIDs() []string
	CurrentSnapshot(id string) (*wal.SessionSnapshot, error)
}

// PrimaryOptions tunes a Primary.  The zero value uses the defaults.
type PrimaryOptions struct {
	// MaxHistory bounds the encoded records retained in memory per session;
	// older records are evicted and a follower that needs them falls back to
	// a full snapshot.  Default 4096.
	MaxHistory int
	// QueueLen bounds each follower's push queue; overflow is dropped (the
	// anti-entropy pull repairs the gap) and counted.  Default 1024.
	QueueLen int
	// Client issues push requests.  Default: an http.Client with a 10s
	// timeout.  Tests inject a fault transport here.
	Client *http.Client
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.MaxHistory <= 0 {
		o.MaxHistory = 4096
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return o
}

// history is one session's replication state on the primary: the published
// tip plus a bounded, chain-contiguous window of encoded records.
type history struct {
	version uint64
	hash    string
	// minHeld is the smallest record version retained (0 while no records
	// are held); records covers [minHeld, version] contiguously.
	minHeld uint64
	records map[uint64][]byte
	digest  netmodel.SetDigest
}

// Primary is the push/pull source side of the replication plane.  It is fed
// by the serving plane's Replicator hooks (each invoked under the session's
// writer slot, so per-session events arrive in commit order) and serves the
// pull protocol over HTTP.  A Primary is constructed on every node,
// whatever its role: on a follower its history tracks replica-applied
// records, which is exactly what lets a promoted follower serve other
// followers without a warm-up.
type Primary struct {
	opts PrimaryOptions

	mu       sync.Mutex
	src      SnapshotSource
	sessions map[string]*history
	push     map[string]*pusher

	recordsHeld atomic.Int64
	pushDropped atomic.Int64
}

// NewPrimary creates a Primary.  Call Bind before serving pull requests.
func NewPrimary(opts PrimaryOptions) *Primary {
	return &Primary{
		opts:     opts.withDefaults(),
		sessions: make(map[string]*history),
		push:     make(map[string]*pusher),
	}
}

// Bind attaches the snapshot source (the serving plane).  Separate from
// construction because the server's Config carries the Primary as its
// Replicator hook — the hook must exist before the server does.
func (p *Primary) Bind(src SnapshotSource) {
	p.mu.Lock()
	p.src = src
	p.mu.Unlock()
}

// Close stops every push worker.
func (p *Primary) Close() {
	p.mu.Lock()
	pushers := make([]*pusher, 0, len(p.push))
	for _, ps := range p.push {
		pushers = append(pushers, ps)
	}
	p.push = make(map[string]*pusher)
	p.mu.Unlock()
	for _, ps := range pushers {
		ps.stop()
	}
}

// SessionCreated implements the serve Replicator hook: a session exists (or
// was re-created) at the snapshot's version.  History restarts empty — the
// snapshot supersedes any records retained for an earlier incarnation.
func (p *Primary) SessionCreated(snap *wal.SessionSnapshot) {
	raw, err := json.Marshal(snap)
	if err != nil {
		return // a snapshot the serving plane built always marshals
	}
	p.mu.Lock()
	old := p.sessions[snap.ID]
	if old != nil {
		p.recordsHeld.Add(int64(-len(old.records)))
	}
	p.sessions[snap.ID] = &history{
		version: snap.Version,
		hash:    snap.Hash,
		records: make(map[uint64][]byte),
	}
	pushers := p.livePushers()
	p.mu.Unlock()
	env := &pushEnvelope{ID: snap.ID, Kind: kindSnapshot, Snapshot: raw}
	for _, ps := range pushers {
		p.enqueue(ps, env)
	}
}

// RecordCommitted implements the serve Replicator hook: one record became
// durable and visible.  The record joins the session's retained window and
// is pushed to every attached follower.
func (p *Primary) RecordCommitted(id string, rec *wal.Record) {
	payload, err := rec.Encode()
	if err != nil {
		return // committed records already passed this encoder
	}
	p.mu.Lock()
	h := p.sessions[id]
	if h == nil || rec.PrevVersion != h.version {
		// A hook raced a re-create, or the chain does not extend what we
		// hold: restart history at the record's tip.  Pull repairs followers.
		if h != nil {
			p.recordsHeld.Add(int64(-len(h.records)))
		}
		h = &history{version: rec.PrevVersion, hash: "", records: make(map[uint64][]byte)}
		p.sessions[id] = h
	}
	h.records[rec.Version] = payload
	h.digest.Add(rec.Version)
	if h.minHeld == 0 {
		h.minHeld = rec.Version
	}
	h.version = rec.Version
	h.hash = rec.Hash
	p.recordsHeld.Add(1)
	for len(h.records) > p.opts.MaxHistory {
		delete(h.records, h.minHeld)
		h.digest.Remove(h.minHeld)
		h.minHeld++
		p.recordsHeld.Add(-1)
	}
	pushers := p.livePushers()
	p.mu.Unlock()
	env := &pushEnvelope{ID: id, Kind: kindRecord, Record: payload}
	for _, ps := range pushers {
		p.enqueue(ps, env)
	}
}

// SessionDeleted implements the serve Replicator hook.
func (p *Primary) SessionDeleted(id string) {
	p.mu.Lock()
	if h := p.sessions[id]; h != nil {
		p.recordsHeld.Add(int64(-len(h.records)))
	}
	delete(p.sessions, id)
	pushers := p.livePushers()
	p.mu.Unlock()
	env := &pushEnvelope{ID: id, Kind: kindDelete}
	for _, ps := range pushers {
		p.enqueue(ps, env)
	}
}

// livePushers snapshots the pusher set.  Called with p.mu held.
func (p *Primary) livePushers() []*pusher {
	out := make([]*pusher, 0, len(p.push))
	for _, ps := range p.push {
		out = append(out, ps)
	}
	return out
}

// enqueue offers an envelope to one pusher, dropping on overflow — push is
// best-effort by design; the ack-vs-replication contract lives in
// docs/REPLICATION.md and the pull loop repairs every gap.
func (p *Primary) enqueue(ps *pusher, env *pushEnvelope) {
	select {
	case ps.q <- env:
		ps.queuedBytes.Add(int64(len(env.Record) + len(env.Snapshot)))
	default:
		ps.dropped.Add(1)
		p.pushDropped.Add(1)
	}
}

// Attach registers a follower ingest URL for push replication.  The first
// attach of a URL starts its push worker and enqueues a full snapshot of
// every live session, so a follower attached after boot starts from current
// state; re-attaching is a cheap no-op.
func (p *Primary) Attach(url string) {
	if url == "" {
		return
	}
	p.mu.Lock()
	if _, ok := p.push[url]; ok {
		p.mu.Unlock()
		return
	}
	ps := newPusher(url, p.opts.QueueLen, p.opts.Client)
	p.push[url] = ps
	src := p.src
	p.mu.Unlock()
	if src == nil {
		return
	}
	for _, id := range src.SessionIDs() {
		snap, err := src.CurrentSnapshot(id)
		if err != nil {
			continue // session raced deletion; the listing pull will agree
		}
		raw, err := json.Marshal(snap)
		if err != nil {
			continue
		}
		p.enqueue(ps, &pushEnvelope{ID: id, Kind: kindSnapshot, Snapshot: raw})
	}
}

// FollowerState reports one attached follower's push-side lag for healthz.
type FollowerState struct {
	URL           string
	QueuedRecords int
	QueuedBytes   int64
	SentRecords   int64
	Dropped       int64
	Errors        int64
	LastError     string
}

// Followers returns the push-side state of every attached follower, sorted
// by URL.
func (p *Primary) Followers() []FollowerState {
	p.mu.Lock()
	pushers := p.livePushers()
	p.mu.Unlock()
	out := make([]FollowerState, 0, len(pushers))
	for _, ps := range pushers {
		st := FollowerState{
			URL:           ps.url,
			QueuedRecords: len(ps.q),
			QueuedBytes:   ps.queuedBytes.Load(),
			SentRecords:   ps.sent.Load(),
			Dropped:       ps.dropped.Load(),
			Errors:        ps.errs.Load(),
		}
		if e := ps.lastErr.Load(); e != nil {
			st.LastError = *e
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// RecordsHeld returns the total encoded records retained across sessions.
func (p *Primary) RecordsHeld() int64 { return p.recordsHeld.Load() }

// Handler returns the primary's pull-protocol surface; cmd/divd mounts it
// under /v1/replic/.
func (p *Primary) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathSessions, p.handleSessions)
	mux.HandleFunc("POST "+PathSymbols, p.handleSymbols)
	mux.HandleFunc("POST "+PathRecords, p.handleRecords)
	mux.HandleFunc("GET "+PathSnapshot, p.handleSnapshot)
	mux.HandleFunc("POST "+PathAttach, p.handleAttach)
	return mux
}

// handleSessions implements GET PathSessions: every session's published tip.
func (p *Primary) handleSessions(w http.ResponseWriter, _ *http.Request) {
	p.mu.Lock()
	resp := sessionsResponse{Sessions: make([]SessionState, 0, len(p.sessions))}
	for id, h := range p.sessions {
		resp.Sessions = append(resp.Sessions, SessionState{ID: id, Version: h.version, Hash: h.hash})
	}
	p.mu.Unlock()
	sort.Slice(resp.Sessions, func(i, j int) bool { return resp.Sessions[i].ID < resp.Sessions[j].ID })
	writeWireJSON(w, resp)
}

// handleSymbols implements POST PathSymbols: the first Count coded symbols
// over the session's retained record versions above the follower's floor.
func (p *Primary) handleSymbols(w http.ResponseWriter, r *http.Request) {
	var req symbolsRequest
	if err := decodeWireJSON(r, &req); err != nil {
		writeWireError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Count <= 0 || req.Count > maxSymbolCount {
		writeWireError(w, http.StatusBadRequest, "symbol count out of range")
		return
	}
	p.mu.Lock()
	h := p.sessions[req.ID]
	if h == nil {
		p.mu.Unlock()
		writeWireError(w, http.StatusNotFound, "unknown session")
		return
	}
	resp := symbolsResponse{ID: req.ID, Floor: req.Floor, Tip: h.version}
	from := req.Floor + 1
	switch {
	case h.version <= req.Floor:
		// Follower at or past our tip above this floor: empty set.
		resp.Symbols = EncodeSymbols(nil, req.Count)
	case h.minHeld == 0 || h.minHeld > from:
		// Records below our retained window would be needed: full sync.
		resp.SnapshotNeeded = true
	default:
		set := make([]uint64, 0, h.version-req.Floor)
		for v := from; v <= h.version; v++ {
			set = append(set, v)
		}
		resp.Symbols = EncodeSymbols(set, req.Count)
		resp.Digest = uint64(netmodel.DigestOfRange(from, h.version))
	}
	p.mu.Unlock()
	writeWireJSON(w, resp)
}

// handleRecords implements POST PathRecords: a framed stream of the
// requested record payloads.  Versions no longer retained are silently
// omitted; the follower's digest check (and, ultimately, the snapshot
// fallback) handles the shortfall.
func (p *Primary) handleRecords(w http.ResponseWriter, r *http.Request) {
	var req recordsRequest
	if err := decodeWireJSON(r, &req); err != nil {
		writeWireError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Versions) > maxStreamFrames {
		writeWireError(w, http.StatusBadRequest, "too many versions")
		return
	}
	p.mu.Lock()
	h := p.sessions[req.ID]
	if h == nil {
		p.mu.Unlock()
		writeWireError(w, http.StatusNotFound, "unknown session")
		return
	}
	var buf bytes.Buffer
	var scratch []byte
	for _, v := range req.Versions {
		if payload, ok := h.records[v]; ok {
			scratch = wal.AppendFrame(scratch[:0], payload)
			buf.Write(scratch)
		}
	}
	p.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(buf.Bytes()) //nolint:errcheck // client-side read errors are the client's
}

// handleSnapshot implements GET PathSnapshot?id=: one framed full session
// snapshot, built consistently by the serving plane.
func (p *Primary) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	p.mu.Lock()
	src := p.src
	p.mu.Unlock()
	if src == nil {
		writeWireError(w, http.StatusServiceUnavailable, "primary not bound")
		return
	}
	snap, err := src.CurrentSnapshot(id)
	if err != nil {
		writeWireError(w, http.StatusNotFound, err.Error())
		return
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		writeWireError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(wal.AppendFrame(nil, payload)) //nolint:errcheck // client-side read errors are the client's
}

// handleAttach implements POST PathAttach.
func (p *Primary) handleAttach(w http.ResponseWriter, r *http.Request) {
	var req attachRequest
	if err := decodeWireJSON(r, &req); err != nil {
		writeWireError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.URL == "" {
		writeWireError(w, http.StatusBadRequest, "missing follower url")
		return
	}
	p.Attach(req.URL)
	w.WriteHeader(http.StatusNoContent)
}

// pusher is one follower's push worker: a bounded queue drained by a
// goroutine that batches envelopes into framed ingest POSTs.
type pusher struct {
	url    string
	q      chan *pushEnvelope
	client *http.Client

	queuedBytes atomic.Int64
	sent        atomic.Int64
	dropped     atomic.Int64
	errs        atomic.Int64
	lastErr     atomic.Pointer[string]

	stopc    chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

func newPusher(url string, queueLen int, client *http.Client) *pusher {
	ps := &pusher{
		url:    url,
		q:      make(chan *pushEnvelope, queueLen),
		client: client,
		stopc:  make(chan struct{}),
		done:   make(chan struct{}),
	}
	go ps.run()
	return ps
}

func (ps *pusher) stop() {
	ps.stopOnce.Do(func() { close(ps.stopc) })
	<-ps.done
}

// run drains the queue, batching up to pushBatch envelopes per POST.  Send
// failures are counted and the batch is dropped — the pull loop owns repair,
// so the pusher never blocks the hooks behind a dead follower.
func (ps *pusher) run() {
	defer close(ps.done)
	const pushBatch = 64
	for {
		var first *pushEnvelope
		select {
		case <-ps.stopc:
			return
		case first = <-ps.q:
		}
		batch := []*pushEnvelope{first}
		for len(batch) < pushBatch {
			select {
			case env := <-ps.q:
				batch = append(batch, env)
			default:
				goto send
			}
		}
	send:
		for _, env := range batch {
			ps.queuedBytes.Add(-int64(len(env.Record) + len(env.Snapshot)))
		}
		var frames []byte
		var err error
		for _, env := range batch {
			if frames, err = appendEnvelopeFrame(frames, env); err != nil {
				break
			}
		}
		if err == nil {
			err = ps.post(frames)
		}
		if err != nil {
			ps.errs.Add(1)
			msg := err.Error()
			ps.lastErr.Store(&msg)
			// Brief pause so a dead follower costs one failed POST per
			// backoff, not a hot loop; the queue keeps absorbing (and
			// overflow-dropping) meanwhile.
			select {
			case <-ps.stopc:
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		ps.sent.Add(int64(len(batch)))
	}
}

// post ships one framed batch to the follower's ingest endpoint.
func (ps *pusher) post(frames []byte) error {
	resp, err := ps.client.Post(ps.url+PathIngest, "application/octet-stream", bytes.NewReader(frames))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return wireStatusError(resp)
	}
	return nil
}

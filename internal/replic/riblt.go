// Package replic is the replication plane of the serving daemon: a primary
// divd streams committed WAL records per session to follower nodes, and a
// background anti-entropy loop reconciles divergence (missed pushes, follower
// restarts, healed partitions) with rateless set reconciliation, so a
// follower converges by fetching exactly the records it is missing — cost
// proportional to the difference, not the log.
//
// The plane has three moving parts:
//
//   - Primary: receives the serving plane's replication hooks (session
//     created / record committed / session deleted), retains a bounded
//     in-memory history of encoded records per session, pushes committed
//     records to attached followers, and serves the pull protocol (session
//     listing, coded symbols, record fetch, full snapshots).
//   - Follower: applies pushed and fetched records through the serving
//     plane's deterministic patch-replay path (never re-solving), buffers
//     out-of-order arrivals, and runs the anti-entropy loop.
//   - The riblt sketch in this file: rateless coded symbols over a session's
//     record-version set, the mechanism that finds the difference in O(diff)
//     communication.
//
// Everything record-sized crosses the wire as length-prefixed, CRC32C-checked
// frames (wal.AppendFrame / wal.ReadFrame) — the same framing, and the same
// torn/corrupt detection, the on-disk log already trusts.  See
// docs/REPLICATION.md for roles, the ack-vs-replication contract and the
// promotion runbook.
package replic

import (
	"math"

	"netdiversity/internal/netmodel"
)

// CodedSymbol is one cell of a rateless IBLT sketch over a set of uint64
// record versions.  Count carries the signed number of items folded into the
// cell, IDSum the XOR of the items and HashSum the XOR of their Mix64 hashes.
// A cell of a *difference* sketch (remote minus local) with Count = ±1 whose
// HashSum matches the hash of its IDSum holds exactly one item of the
// symmetric difference — the peeling decoder's handle.
type CodedSymbol struct {
	Count   int64  `json:"c"`
	IDSum   uint64 `json:"i"`
	HashSum uint64 `json:"h"`
}

// mapping enumerates the pseudo-random, increasingly sparse sequence of cell
// indices one item occupies: index 0 always (every item is folded into cell
// 0), then jumps whose expected spacing grows quadratically, so the first m
// cells receive roughly m·(1 + ln(n/m) · O(1)) item mappings in total and a
// prefix of the symbol stream behaves like an IBLT sized for the decoded
// difference.  The jump recurrence is the riblt construction: with r uniform
// in [0, 2^64), lastIdx advances by ceil((lastIdx + 1.5)·((2^32)/sqrt(r+1) −
// 1)), whose expectation multiplies the index by a constant factor per step.
type mapping struct {
	prng    uint64
	lastIdx uint64
}

// newMapping seeds an item's index sequence from its Mix64 hash.
func newMapping(item uint64) mapping {
	seed := netmodel.Mix64(item)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return mapping{prng: seed}
}

// next returns the item's next cell index after lastIdx.  The increment is
// clamped to at least 1, so the sequence is strictly increasing and every
// loop over it terminates.
func (m *mapping) next() uint64 {
	r := m.prng * 0xda942042e4dd58b5
	m.prng = r
	inc := uint64(math.Ceil((float64(m.lastIdx) + 1.5) * ((1<<32)/math.Sqrt(float64(r)+1) - 1)))
	if inc == 0 {
		inc = 1
	}
	m.lastIdx += inc
	return m.lastIdx
}

// fold adds (sign = +1) or removes (sign = -1) one item to every cell of the
// sketch prefix it maps into.
func fold(cells []CodedSymbol, item uint64, sign int64) {
	h := netmodel.Mix64(item)
	m := newMapping(item)
	for idx := uint64(0); idx < uint64(len(cells)); idx = m.next() {
		cells[idx].Count += sign
		cells[idx].IDSum ^= item
		cells[idx].HashSum ^= h
	}
}

// EncodeSymbols returns the first n coded symbols of the set.  The symbol
// stream is rateless: the first k symbols of EncodeSymbols(set, n) equal
// EncodeSymbols(set, k) for every k ≤ n, so a peer that failed to decode a
// prefix extends it instead of starting over.
func EncodeSymbols(set []uint64, n int) []CodedSymbol {
	cells := make([]CodedSymbol, n)
	for _, v := range set {
		fold(cells, v, 1)
	}
	return cells
}

// Reconcile peels the symmetric difference between a remote set, given as a
// prefix of its coded-symbol stream, and the local set, given explicitly.
// On success (ok = true) remoteOnly holds the items only the remote has and
// localOnly the items only we have.  ok = false means the prefix was too
// short for the difference — fetch more symbols and retry.  The peel loop is
// bounded, so adversarial symbol streams terminate like honest ones; they
// simply fail to reach the all-zero sketch and return ok = false.
func Reconcile(remote []CodedSymbol, local []uint64) (remoteOnly, localOnly []uint64, ok bool) {
	diff := make([]CodedSymbol, len(remote))
	copy(diff, remote)
	for _, v := range local {
		fold(diff, v, -1)
	}
	// Peel: a pure cell (count ±1, hash consistent) yields one difference
	// item; removing it from its other cells can make them pure in turn.
	// Each genuine peel removes one item, so honest streams finish within
	// |difference| peels; the cap only cuts adversarial garbage short.
	maxPeels := 2*len(diff) + 16
	peels := 0
	for progress := true; progress && peels < maxPeels; {
		progress = false
		for i := range diff {
			c := diff[i]
			if (c.Count != 1 && c.Count != -1) || c.HashSum != netmodel.Mix64(c.IDSum) || (c.IDSum == 0 && c.HashSum == 0) {
				continue
			}
			item := c.IDSum
			if c.Count == 1 {
				remoteOnly = append(remoteOnly, item)
			} else {
				localOnly = append(localOnly, item)
			}
			fold(diff, item, -c.Count)
			progress = true
			if peels++; peels >= maxPeels {
				break
			}
		}
	}
	for _, c := range diff {
		if c.Count != 0 || c.IDSum != 0 || c.HashSum != 0 {
			return nil, nil, false
		}
	}
	return remoteOnly, localOnly, true
}

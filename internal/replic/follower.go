package replic

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/wal"
)

// defaultChunkStart is the adaptive symbol loop's first request size.  A
// zero-diff session that was not already skipped by the listing fast path
// decodes from this single small chunk, so in-sync rounds cost O(1) symbols
// per session regardless of log length.
const defaultChunkStart = 8

// ReplicaStore is the surface the follower needs from the serving plane:
// create/replace a session from a full snapshot, apply one committed record
// through deterministic patch replay, delete, and read the applied tip.
// *serve.Server implements it.
type ReplicaStore interface {
	ReplicaCreate(snap *wal.SessionSnapshot) error
	ReplicaApply(id string, rec *wal.Record) error
	ReplicaDelete(id string) error
	ReplicaVersion(id string) (version uint64, hash string, ok bool)
	SessionIDs() []string
}

// FollowerOptions tunes a Follower.  The zero value uses the defaults.
type FollowerOptions struct {
	// Interval between anti-entropy rounds.  Default 2s.
	Interval time.Duration
	// Advertise is this node's base URL as the primary should reach it; when
	// non-empty the follower re-attaches every round, so a restarted primary
	// re-learns its followers without operator action.
	Advertise string
	// Client issues pull requests.  Default: an http.Client with a 10s
	// timeout.  Tests inject a fault transport here.
	Client *http.Client
	// MaxSymbols caps the adaptive loop's chunk doubling; a difference that
	// does not decode within it falls back to a full snapshot.  Default 2048.
	MaxSymbols int
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if o.MaxSymbols <= 0 {
		o.MaxSymbols = 2048
	}
	return o
}

// FollowerStats is the pull-side replication state reported in healthz.
type FollowerStats struct {
	Primary          string
	Rounds           int64
	LastRoundUnixMS  int64
	InSync           bool
	RecordsApplied   int64
	RecordsFetched   int64
	SnapshotsFetched int64
	BadRecords       int64
	PendingRecords   int
	Errors           int64
	LastError        string
}

// Follower drives a replica: it ingests the primary's push stream, buffers
// out-of-order records per session, applies contiguous runs through the
// store's patch-replay path, and runs the anti-entropy loop that repairs
// whatever push missed.
type Follower struct {
	store   ReplicaStore
	primary string
	opts    FollowerOptions

	mu sync.Mutex
	// pending buffers records that arrived above the contiguously applied
	// version, keyed session → version.  Drained (and chain-verified) by
	// offer as the gap below them fills.
	pending map[string]map[uint64]*wal.Record
	// resync marks sessions whose incremental state is untrustworthy (apply
	// failure, digest mismatch): the next round full-syncs them.
	resync map[string]bool

	stopped atomic.Bool
	stopc   chan struct{}
	wg      sync.WaitGroup

	rounds           atomic.Int64
	lastRound        atomic.Int64
	inSync           atomic.Bool
	recordsApplied   atomic.Int64
	recordsFetched   atomic.Int64
	snapshotsFetched atomic.Int64
	badRecords       atomic.Int64
	errors           atomic.Int64
	lastErr          atomic.Pointer[string]
}

// NewFollower creates a Follower replicating from the primary at the given
// base URL into store.  Call Run to start the anti-entropy loop.
func NewFollower(store ReplicaStore, primaryURL string, opts FollowerOptions) *Follower {
	return &Follower{
		store:   store,
		primary: primaryURL,
		opts:    opts.withDefaults(),
		pending: make(map[string]map[uint64]*wal.Record),
		resync:  make(map[string]bool),
		stopc:   make(chan struct{}),
	}
}

// Run starts the anti-entropy loop in a goroutine; Stop ends it.
func (f *Follower) Run() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(f.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-f.stopc:
				return
			case <-t.C:
				f.syncRound()
			}
		}
	}()
}

// Stop ends replication permanently: the loop exits and the ingest handler
// starts rejecting pushes.  Called by promotion — a primary must not keep
// applying another node's records.
func (f *Follower) Stop() {
	if f.stopped.CompareAndSwap(false, true) {
		close(f.stopc)
	}
	f.wg.Wait()
}

// syncRound wraps SyncOnce for the loop, folding errors into stats.
func (f *Follower) syncRound() {
	ctx, cancel := context.WithTimeout(context.Background(), f.opts.Interval*5+10*time.Second)
	defer cancel()
	if err := f.SyncOnce(ctx); err != nil {
		f.errors.Add(1)
		msg := err.Error()
		f.lastErr.Store(&msg)
	}
}

// SyncOnce runs one full anti-entropy round: attach, list the primary's
// sessions, drop local sessions the primary no longer has, and reconcile
// each listed session.  Per-session failures are accumulated, not fatal —
// one bad session must not starve the others.
func (f *Follower) SyncOnce(ctx context.Context) error {
	f.rounds.Add(1)
	defer f.lastRound.Store(time.Now().UnixMilli())
	if f.opts.Advertise != "" {
		// Best-effort: a primary mid-restart will pick us up next round.
		_ = postJSON(f.opts.Client, f.primary+PathAttach, attachRequest{URL: f.opts.Advertise}, nil)
	}
	var listing sessionsResponse
	if err := f.getJSON(ctx, f.primary+PathSessions, &listing); err != nil {
		f.inSync.Store(false)
		return fmt.Errorf("list sessions: %w", err)
	}
	primaryHas := make(map[string]SessionState, len(listing.Sessions))
	for _, st := range listing.Sessions {
		primaryHas[st.ID] = st
	}
	for _, id := range f.store.SessionIDs() {
		if _, ok := primaryHas[id]; !ok {
			if err := f.store.ReplicaDelete(id); err == nil {
				f.dropPending(id)
			}
		}
	}
	var firstErr error
	clean := true
	for _, st := range listing.Sessions {
		if err := f.reconcileSession(ctx, st); err != nil {
			clean = false
			if firstErr == nil {
				firstErr = fmt.Errorf("session %s: %w", st.ID, err)
			}
		}
		if ctx.Err() != nil {
			clean = false
			break
		}
	}
	if clean {
		// Re-check against the listing we acted on: in sync means every
		// listed session reached its listed tip (the primary may already be
		// ahead again; that is next round's business).
		for _, st := range listing.Sessions {
			v, h, ok := f.store.ReplicaVersion(st.ID)
			if !ok || v < st.Version || (v == st.Version && h != st.Hash) {
				clean = false
				break
			}
		}
	}
	f.inSync.Store(clean)
	return firstErr
}

// reconcileSession converges one session to the listed primary state.
func (f *Follower) reconcileSession(ctx context.Context, st SessionState) error {
	v, h, known := f.store.ReplicaVersion(st.ID)
	f.mu.Lock()
	needFull := !known || f.resync[st.ID]
	pend := len(f.pending[st.ID])
	f.mu.Unlock()
	if needFull {
		return f.fullSync(ctx, st.ID)
	}
	if v == st.Version && h == st.Hash && pend == 0 {
		return nil // zero-diff fast path: the listing row was the whole round
	}
	if v > st.Version {
		// Local ahead of the listing — a push beat the listing snapshot.
		return nil
	}
	if v == st.Version && h != st.Hash {
		// Same version, different hash: divergence, not lag.
		f.markResync(st.ID)
		return f.fullSync(ctx, st.ID)
	}
	return f.reconcileRecords(ctx, st, v)
}

// reconcileRecords runs the adaptive symbol loop above floor, fetches the
// decoded missing records and applies them.
func (f *Follower) reconcileRecords(ctx context.Context, st SessionState, floor uint64) error {
	local := f.pendingVersions(st.ID, floor)
	var resp symbolsResponse
	var remoteOnly, localOnly []uint64
	decoded := false
	for n := defaultChunkStart; n <= f.opts.MaxSymbols; n *= 2 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := postJSON(f.opts.Client, f.primary+PathSymbols, symbolsRequest{ID: st.ID, Floor: floor, Count: n}, &resp); err != nil {
			return fmt.Errorf("fetch symbols: %w", err)
		}
		if resp.SnapshotNeeded {
			return f.fullSync(ctx, st.ID)
		}
		if len(resp.Symbols) > n {
			return fmt.Errorf("primary returned %d symbols for count %d", len(resp.Symbols), n)
		}
		var ok bool
		if remoteOnly, localOnly, ok = Reconcile(resp.Symbols, local); ok {
			decoded = true
			break
		}
	}
	if !decoded {
		// Difference too large for the symbol budget: snapshot is cheaper.
		return f.fullSync(ctx, st.ID)
	}
	// End-to-end check: local + decoded difference must reproduce the
	// primary's advertised digest, or the decode silently went wrong.
	d := netmodel.DigestOf(local)
	for _, v := range remoteOnly {
		d.Add(v)
	}
	for _, v := range localOnly {
		d.Remove(v)
	}
	if uint64(d) != resp.Digest {
		f.markResync(st.ID)
		return f.fullSync(ctx, st.ID)
	}
	// localOnly are buffered records the primary does not have (e.g. from a
	// deposed primary's push): drop them, they will never become contiguous.
	if len(localOnly) > 0 {
		f.mu.Lock()
		for _, v := range localOnly {
			delete(f.pending[st.ID], v)
		}
		f.mu.Unlock()
	}
	if len(remoteOnly) == 0 {
		return f.drain(st.ID)
	}
	sort.Slice(remoteOnly, func(i, j int) bool { return remoteOnly[i] < remoteOnly[j] })
	if err := f.fetchRecords(ctx, st.ID, remoteOnly); err != nil {
		return err
	}
	return f.drain(st.ID)
}

// fetchRecords pulls the given record versions and offers each for apply.
func (f *Follower) fetchRecords(ctx context.Context, id string, versions []uint64) error {
	const batch = 4096
	for len(versions) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := len(versions)
		if n > batch {
			n = batch
		}
		body, err := json.Marshal(recordsRequest{ID: id, Versions: versions[:n]})
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.primary+PathRecords, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := f.opts.Client.Do(req)
		if err != nil {
			return fmt.Errorf("fetch records: %w", err)
		}
		if resp.StatusCode/100 != 2 {
			err := wireStatusError(resp)
			resp.Body.Close()
			return err
		}
		err = readFrameStream(resp.Body, func(payload []byte) error {
			rec, err := wal.DecodeRecord(payload)
			if err != nil {
				return err // corrupt frame payload: abort this fetch
			}
			f.recordsFetched.Add(1)
			f.offer(id, rec)
			return nil
		})
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("record stream: %w", err)
		}
		versions = versions[n:]
	}
	return nil
}

// fullSync replaces the session's replica with a full primary snapshot.
func (f *Follower) fullSync(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+PathSnapshot+"?id="+id, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return fmt.Errorf("fetch snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// Deleted between listing and fetch; next round's listing settles it.
		return nil
	}
	if resp.StatusCode/100 != 2 {
		return wireStatusError(resp)
	}
	var snap *wal.SessionSnapshot
	err = readFrameStream(resp.Body, func(payload []byte) error {
		if snap != nil {
			return fmt.Errorf("snapshot stream carried extra frames")
		}
		snap = new(wal.SessionSnapshot)
		return json.Unmarshal(payload, snap)
	})
	if err != nil {
		return fmt.Errorf("snapshot stream: %w", err)
	}
	if snap == nil {
		return fmt.Errorf("empty snapshot stream")
	}
	if snap.ID != id {
		return fmt.Errorf("snapshot for %q answered request for %q", snap.ID, id)
	}
	if err := f.store.ReplicaCreate(snap); err != nil {
		return fmt.Errorf("install snapshot: %w", err)
	}
	f.snapshotsFetched.Add(1)
	f.mu.Lock()
	delete(f.pending, id)
	delete(f.resync, id)
	f.mu.Unlock()
	return nil
}

// offer buffers one record and drains the contiguous run it may complete.
// Safe from both the ingest handler and the anti-entropy loop.
func (f *Follower) offer(id string, rec *wal.Record) {
	v, _, ok := f.store.ReplicaVersion(id)
	if ok && rec.Version <= v {
		return // duplicate push/fetch
	}
	f.mu.Lock()
	m := f.pending[id]
	if m == nil {
		m = make(map[uint64]*wal.Record)
		f.pending[id] = m
	}
	m[rec.Version] = rec
	f.mu.Unlock()
	_ = f.drain(id)
}

// drain applies buffered records that extend the contiguously applied chain.
// An apply failure marks the session for resync — incremental state is no
// longer trustworthy once the deterministic replay path rejects a record.
func (f *Follower) drain(id string) error {
	for {
		v, _, ok := f.store.ReplicaVersion(id)
		if !ok {
			f.dropPending(id)
			return nil
		}
		f.mu.Lock()
		var next *wal.Record
		for _, rec := range f.pending[id] {
			if rec.PrevVersion == v {
				next = rec
				break
			}
		}
		if next != nil {
			delete(f.pending[id], next.Version)
		}
		f.mu.Unlock()
		if next == nil {
			return nil
		}
		if err := f.store.ReplicaApply(id, next); err != nil {
			f.badRecords.Add(1)
			f.markResync(id)
			f.dropPending(id)
			return fmt.Errorf("apply record %d: %w", next.Version, err)
		}
		f.recordsApplied.Add(1)
	}
}

// IngestHandler returns the push sink mounted at PathIngest: a framed stream
// of push envelopes.  Envelope-level failures are counted and skipped (push
// is best-effort; pull repairs), but a torn or corrupt frame fails the
// request so the primary sees the transport problem.
func (f *Follower) IngestHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.stopped.Load() {
			writeWireError(w, http.StatusConflict, "replication stopped: node promoted")
			return
		}
		err := readFrameStream(r.Body, func(payload []byte) error {
			var env pushEnvelope
			if err := json.Unmarshal(payload, &env); err != nil {
				return fmt.Errorf("decode push envelope: %w", err)
			}
			f.applyEnvelope(&env)
			return nil
		})
		if err != nil {
			writeWireError(w, http.StatusBadRequest, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}

// applyEnvelope handles one push event; failures count, never propagate.
func (f *Follower) applyEnvelope(env *pushEnvelope) {
	switch env.Kind {
	case kindRecord:
		rec, err := wal.DecodeRecord(env.Record)
		if err != nil {
			f.badRecords.Add(1)
			return
		}
		f.offer(env.ID, rec)
	case kindSnapshot:
		var snap wal.SessionSnapshot
		if err := json.Unmarshal(env.Snapshot, &snap); err != nil || snap.ID != env.ID {
			f.badRecords.Add(1)
			return
		}
		if v, _, ok := f.store.ReplicaVersion(env.ID); ok && snap.Version <= v {
			return // stale snapshot (attach race); keep the newer replica
		}
		if err := f.store.ReplicaCreate(&snap); err != nil {
			f.badRecords.Add(1)
			return
		}
		f.snapshotsFetched.Add(1)
		f.mu.Lock()
		delete(f.pending, env.ID)
		delete(f.resync, env.ID)
		f.mu.Unlock()
	case kindDelete:
		if err := f.store.ReplicaDelete(env.ID); err == nil {
			f.dropPending(env.ID)
		}
	default:
		f.badRecords.Add(1)
	}
}

// Stats snapshots the follower's replication state for healthz.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	pend := 0
	for _, m := range f.pending {
		pend += len(m)
	}
	f.mu.Unlock()
	st := FollowerStats{
		Primary:          f.primary,
		Rounds:           f.rounds.Load(),
		LastRoundUnixMS:  f.lastRound.Load(),
		InSync:           f.inSync.Load(),
		RecordsApplied:   f.recordsApplied.Load(),
		RecordsFetched:   f.recordsFetched.Load(),
		SnapshotsFetched: f.snapshotsFetched.Load(),
		BadRecords:       f.badRecords.Load(),
		PendingRecords:   pend,
		Errors:           f.errors.Load(),
	}
	if e := f.lastErr.Load(); e != nil {
		st.LastError = *e
	}
	return st
}

// pendingVersions lists buffered record versions above floor for a session —
// the local side of the reconciliation set.
func (f *Follower) pendingVersions(id string, floor uint64) []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint64, 0, len(f.pending[id]))
	for v := range f.pending[id] {
		if v > floor {
			out = append(out, v)
		}
	}
	return out
}

func (f *Follower) markResync(id string) {
	f.mu.Lock()
	f.resync[id] = true
	f.mu.Unlock()
}

func (f *Follower) dropPending(id string) {
	f.mu.Lock()
	delete(f.pending, id)
	delete(f.resync, id)
	f.mu.Unlock()
}

// getJSON issues a context-bound GET and decodes the JSON response.
func (f *Follower) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return wireStatusError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

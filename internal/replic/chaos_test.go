package replic

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/serve"
	"netdiversity/internal/wal"
)

// The chaos harness boots in-process divd-shaped nodes — serve.Server,
// Primary hook, optional Follower, HTTP surface composed exactly like
// cmd/divd — and drives them through seeded fault schedules: dropped and
// duplicated pushes, delayed deliveries, partitions, follower restarts with
// WAL recovery, primary kill and promotion.  Every schedule must end with
// each follower at the primary's exact per-session version and assignment
// hash, byte-identical reads included.

// chaosSpec builds a small chain network over the paper OS products.
func chaosSpec(hosts int) netmodel.Spec {
	spec := netmodel.Spec{}
	for i := 0; i < hosts; i++ {
		spec.Hosts = append(spec.Hosts, netmodel.HostSpec{
			ID:       netmodel.HostID(fmt.Sprintf("h%d", i)),
			Services: []netmodel.ServiceID{"os"},
			Choices: map[netmodel.ServiceID][]netmodel.ProductID{
				"os": {"win7", "ubt1404", "osx109"},
			},
		})
		if i > 0 {
			spec.Links = append(spec.Links, netmodel.Link{
				A: netmodel.HostID(fmt.Sprintf("h%d", i-1)),
				B: netmodel.HostID(fmt.Sprintf("h%d", i)),
			})
		}
	}
	return spec
}

// addHostDelta builds a delta joining one chain host wired to an anchor.
func addHostDelta(id, anchor netmodel.HostID) netmodel.Delta {
	return netmodel.Delta{Ops: []netmodel.DeltaOp{
		{Op: netmodel.OpAddHost, Host: &netmodel.HostSpec{
			ID:       id,
			Services: []netmodel.ServiceID{"os"},
			Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"win7", "ubt1404", "osx109"}},
		}},
		{Op: netmodel.OpAddEdge, A: anchor, B: id},
	}}
}

// chaosNode is one in-process node of a replication pair.
type chaosNode struct {
	t    *testing.T
	srv  *serve.Server
	prim *Primary
	fol  atomic.Pointer[Follower]
	hs   *httptest.Server
	mgr  *wal.Manager
	dir  string
}

// startChaosNode boots a node.  followURL makes it a follower of that
// primary; client carries the (possibly fault-injecting) transport used for
// both push and pull.  The follower's anti-entropy loop is NOT started —
// tests drive SyncOnce explicitly so schedules are reproducible.
func startChaosNode(t *testing.T, dir, followURL string, client *http.Client) *chaosNode {
	t.Helper()
	mgr, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	n := &chaosNode{t: t, mgr: mgr, dir: dir}
	n.prim = NewPrimary(PrimaryOptions{Client: client})
	cfg := serve.Config{
		Persist:    mgr,
		Replicator: n.prim,
		OnPromote: func() {
			if f := n.fol.Load(); f != nil {
				f.Stop()
			}
		},
	}
	n.srv = serve.New(cfg)
	n.prim.Bind(n.srv)
	mux := http.NewServeMux()
	mux.HandleFunc(PathIngest, func(w http.ResponseWriter, r *http.Request) {
		f := n.fol.Load()
		if f == nil {
			http.NotFound(w, r)
			return
		}
		f.IngestHandler().ServeHTTP(w, r)
	})
	mux.Handle("/v1/replic/", n.prim.Handler())
	mux.Handle("/", n.srv.Handler())
	n.hs = httptest.NewServer(mux)
	if followURL != "" {
		n.srv.SetFollower(followURL)
		// No recovery here: fresh-boot followers start empty.  Interval is
		// irrelevant (Run is never called); Advertise points the primary's
		// push stream at this node.
		n.fol.Store(NewFollower(n.srv, followURL, FollowerOptions{
			Client:    client,
			Interval:  time.Hour,
			Advertise: n.hs.URL,
		}))
	}
	t.Cleanup(func() { n.close() })
	return n
}

func (n *chaosNode) close() {
	if n.hs != nil {
		n.hs.Close()
		n.hs = nil
	}
	if f := n.fol.Load(); f != nil {
		f.Stop()
	}
	n.prim.Close()
	if n.mgr != nil {
		n.mgr.Close()
		n.mgr = nil
	}
}

// restartFollower simulates a follower crash + reboot: the node is torn down
// without ceremony and a new one recovers the replica sessions from the same
// data directory, exactly as divd boot with -follow does.
func restartFollower(t *testing.T, old *chaosNode, followURL string, client *http.Client) *chaosNode {
	t.Helper()
	old.close()
	n := startChaosNode(t, old.dir, followURL, client)
	recovered, skipped, err := n.mgr.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	for _, sk := range skipped {
		t.Fatalf("recovery skipped %s: %v", sk.ID, sk.Err)
	}
	for _, rec := range recovered {
		if err := n.srv.RestoreReplica(rec); err != nil {
			t.Fatalf("restore replica %s: %v", rec.Snapshot.ID, err)
		}
	}
	return n
}

// httpJSON posts a JSON body and decodes the response, returning the status.
func httpJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := noRedirectClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// noRedirectClient never follows redirects — follower writes answer 307 at
// the (possibly dead) primary, which the tests assert rather than chase.
var noRedirectClient = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

// createSessions creates n sessions on the primary and returns their IDs.
func createSessions(t *testing.T, primary *chaosNode, n, hosts int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("chaos-%d", i)
		var created serve.CreateResponse
		status := httpJSON(t, http.MethodPost, primary.hs.URL+"/v1/networks", serve.CreateRequest{
			ID:            id,
			Spec:          chaosSpec(hosts),
			Seed:          int64(42 + i),
			MaxIterations: 20,
		}, &created)
		if status != http.StatusCreated {
			t.Fatalf("create %s: status %d", id, status)
		}
		ids = append(ids, id)
	}
	return ids
}

// writeDeltas posts k add-host deltas per session, returning the last acked
// (version, hash) per session — the writes the replication plane must never
// lose once a caught-up follower is promoted.
func writeDeltas(t *testing.T, primary *chaosNode, ids []string, k, offset int) map[string]serve.DeltaResponse {
	t.Helper()
	acked := make(map[string]serve.DeltaResponse, len(ids))
	for _, id := range ids {
		for j := 0; j < k; j++ {
			d := addHostDelta(
				netmodel.HostID(fmt.Sprintf("x%d-%d", offset, j)),
				"h0",
			)
			var resp serve.DeltaResponse
			status := httpJSON(t, http.MethodPost, primary.hs.URL+"/v1/networks/"+id+"/deltas", d, &resp)
			if status != http.StatusOK {
				t.Fatalf("delta %s/%d: status %d", id, j, status)
			}
			acked[id] = resp
		}
	}
	return acked
}

// converge runs anti-entropy rounds until every session on the follower
// matches the primary's published version and hash, failing after maxRounds.
func converge(t *testing.T, primary, follower *chaosNode, ids []string, maxRounds int) {
	t.Helper()
	f := follower.fol.Load()
	for round := 0; round < maxRounds; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := f.SyncOnce(ctx)
		cancel()
		if err == nil {
			matched := 0
			for _, id := range ids {
				pv, ph, ok := primary.srv.ReplicaVersion(id)
				if !ok {
					break
				}
				fv, fh, ok := follower.srv.ReplicaVersion(id)
				if ok && fv == pv && fh == ph {
					matched++
				}
			}
			if matched == len(ids) {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower did not converge within %d rounds: %+v", maxRounds, f.Stats())
}

// assertIdenticalReads pins the replica-read contract: the follower serves
// byte-identical assignment responses to the primary at the same version.
func assertIdenticalReads(t *testing.T, primary, follower *chaosNode, ids []string) {
	t.Helper()
	for _, id := range ids {
		path := "/v1/networks/" + id + "/assignment"
		pb := getBody(t, primary.hs.URL+path)
		fb := getBody(t, follower.hs.URL+path)
		if !bytes.Equal(pb, fb) {
			t.Fatalf("session %s: follower read differs from primary:\nprimary:  %s\nfollower: %s", id, pb, fb)
		}
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := noRedirectClient.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return data
}

// TestReplicationChaosMatrix runs the convergence contract under seeded
// fault schedules: however the transport misbehaves, anti-entropy must bring
// every follower session to the primary's exact version and assignment hash.
func TestReplicationChaosMatrix(t *testing.T) {
	schedules := []struct {
		name string
		cfg  FaultConfig
	}{
		{name: "clean", cfg: FaultConfig{Seed: 1}},
		{name: "drop-heavy", cfg: FaultConfig{Seed: 2, DropP: 0.4}},
		{name: "dup-delay", cfg: FaultConfig{Seed: 3, DupP: 0.3, DelayP: 0.3, MaxDelay: 5 * time.Millisecond}},
		{name: "everything", cfg: FaultConfig{Seed: 4, DropP: 0.25, DupP: 0.25, DelayP: 0.25, MaxDelay: 5 * time.Millisecond}},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			tr := NewFaultTransport(sched.cfg)
			client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
			primary := startChaosNode(t, t.TempDir(), "", client)
			follower := startChaosNode(t, t.TempDir(), primary.hs.URL, client)
			ids := createSessions(t, primary, 2, 5)
			// Attach the follower before the write burst so the records flow
			// through the faulty push and pull paths, not a one-shot snapshot.
			converge(t, primary, follower, ids, 200)
			writeDeltas(t, primary, ids, 8, 0)
			converge(t, primary, follower, ids, 200)
			assertIdenticalReads(t, primary, follower, ids)
			if sched.cfg.DropP > 0 && tr.Drops.Load() == 0 {
				t.Fatalf("drop schedule injected no drops — chaos not exercised")
			}
			if sched.cfg.DupP > 0 && tr.Dups.Load() == 0 {
				t.Fatalf("dup schedule injected no duplicates — chaos not exercised")
			}
		})
	}
}

// TestReplicationPartitionHeal pins anti-entropy repair: writes landed while
// the follower was partitioned arrive after the heal by record fetch (the
// O(diff) path), not by full-log or full-snapshot transfer.
func TestReplicationPartitionHeal(t *testing.T) {
	tr := NewFaultTransport(FaultConfig{Seed: 7})
	client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	primary := startChaosNode(t, t.TempDir(), "", client)
	follower := startChaosNode(t, t.TempDir(), primary.hs.URL, client)
	ids := createSessions(t, primary, 1, 5)
	writeDeltas(t, primary, ids, 4, 0)
	converge(t, primary, follower, ids, 100)
	f := follower.fol.Load()
	baseSnapshots := f.Stats().SnapshotsFetched

	tr.Partition(true)
	writeDeltas(t, primary, ids, 10, 1)
	// Partitioned rounds must fail without spinning or corrupting state.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := f.SyncOnce(ctx); err == nil {
		t.Fatalf("SyncOnce succeeded across a partition")
	}
	cancel()
	tr.Partition(false)

	converge(t, primary, follower, ids, 100)
	assertIdenticalReads(t, primary, follower, ids)
	st := f.Stats()
	if st.RecordsFetched == 0 {
		t.Fatalf("healed partition fetched no records — pushes were partitioned away, pull must repair: %+v", st)
	}
	if st.SnapshotsFetched != baseSnapshots {
		t.Fatalf("healed partition fell back to full snapshots (%d -> %d) for a 10-record diff", baseSnapshots, st.SnapshotsFetched)
	}
}

// TestReplicationFollowerRestart pins follower durability: a follower
// killed and rebooted recovers its replicas from its own WAL, then
// anti-entropy catches it up on whatever it missed while down.
func TestReplicationFollowerRestart(t *testing.T) {
	client := &http.Client{Timeout: 5 * time.Second}
	primary := startChaosNode(t, t.TempDir(), "", client)
	follower := startChaosNode(t, t.TempDir(), primary.hs.URL, client)
	ids := createSessions(t, primary, 2, 5)
	writeDeltas(t, primary, ids, 6, 0)
	converge(t, primary, follower, ids, 100)

	follower = restartFollower(t, follower, primary.hs.URL, client)
	for _, id := range ids {
		v, _, ok := follower.srv.ReplicaVersion(id)
		if !ok || v == 0 {
			t.Fatalf("session %s not recovered from the follower's own WAL (v=%d ok=%v)", id, v, ok)
		}
	}
	// Writes landed while the follower was down; the recovered replica must
	// catch up incrementally from its recovered floor.
	writeDeltas(t, primary, ids, 5, 1)
	converge(t, primary, follower, ids, 100)
	assertIdenticalReads(t, primary, follower, ids)
}

// TestPromotionPreservesAckedWrites is the failover pin: after the primary
// is killed and a caught-up follower promoted, every client-acked write is
// present on the survivor — same version, same assignment hash — and the
// survivor accepts new writes.
func TestPromotionPreservesAckedWrites(t *testing.T) {
	client := &http.Client{Timeout: 5 * time.Second}
	primary := startChaosNode(t, t.TempDir(), "", client)
	follower := startChaosNode(t, t.TempDir(), primary.hs.URL, client)
	ids := createSessions(t, primary, 2, 5)
	acked := writeDeltas(t, primary, ids, 8, 0)

	// The ack-vs-replication contract (docs/REPLICATION.md): promotion
	// preserves acked writes for a *caught-up* follower, so convergence is
	// awaited before the kill.
	converge(t, primary, follower, ids, 100)

	// Follower rejects writes with a redirect at the primary while it still
	// follows.
	status := httpJSON(t, http.MethodPost, follower.hs.URL+"/v1/networks/"+ids[0]+"/deltas",
		addHostDelta("reject-me", "h0"), nil)
	if status != http.StatusTemporaryRedirect {
		t.Fatalf("follower write: status %d, want 307", status)
	}

	primary.close() // kill -9: no drain, no goodbye

	var prom serve.PromoteResponse
	if status := httpJSON(t, http.MethodPost, follower.hs.URL+"/v1/promote", nil, &prom); status != http.StatusOK {
		t.Fatalf("promote: status %d", status)
	}
	if prom.Role != "primary" || prom.Sessions != len(ids) {
		t.Fatalf("promote response: %+v", prom)
	}
	// Promotion is not repeatable: the node is already primary.
	if status := httpJSON(t, http.MethodPost, follower.hs.URL+"/v1/promote", nil, nil); status != http.StatusConflict {
		t.Fatalf("second promote: status %d, want 409", status)
	}

	for _, id := range ids {
		want := acked[id]
		var got serve.NetworkSummary
		if status := httpJSON(t, http.MethodGet, follower.hs.URL+"/v1/networks/"+id, nil, &got); status != http.StatusOK {
			t.Fatalf("survivor read %s: status %d", id, status)
		}
		if got.Version != want.Version || got.AssignmentHash != want.AssignmentHash {
			t.Fatalf("session %s: acked write lost across promotion: acked (v%d %s), survivor (v%d %s)",
				id, want.Version, want.AssignmentHash, got.Version, got.AssignmentHash)
		}
	}

	// The survivor is writable: a post-promotion delta lands and advances
	// the version chain from the replicated tip.
	var resp serve.DeltaResponse
	if status := httpJSON(t, http.MethodPost, follower.hs.URL+"/v1/networks/"+ids[0]+"/deltas",
		addHostDelta("post-promote", "h0"), &resp); status != http.StatusOK {
		t.Fatalf("post-promotion delta: status %d", status)
	}
	if want := acked[ids[0]].Version + 1; resp.Version != want {
		t.Fatalf("post-promotion version %d, want %d", resp.Version, want)
	}
}

// TestFollowerServesReads pins the follower read surface: summaries,
// assignments and metrics are served locally while creates, deltas and
// deletes redirect.
func TestFollowerServesReads(t *testing.T) {
	client := &http.Client{Timeout: 5 * time.Second}
	primary := startChaosNode(t, t.TempDir(), "", client)
	follower := startChaosNode(t, t.TempDir(), primary.hs.URL, client)
	ids := createSessions(t, primary, 1, 5)
	writeDeltas(t, primary, ids, 2, 0)
	converge(t, primary, follower, ids, 100)

	for _, path := range []string{
		"/v1/networks/" + ids[0],
		"/v1/networks/" + ids[0] + "/assignment",
		"/v1/networks/" + ids[0] + "/metrics",
	} {
		if status := httpJSON(t, http.MethodGet, follower.hs.URL+path, nil, nil); status != http.StatusOK {
			t.Fatalf("follower GET %s: status %d", path, status)
		}
	}
	var assess serve.AssessResponse
	if status := httpJSON(t, http.MethodPost, follower.hs.URL+"/v1/networks/"+ids[0]+"/assess",
		serve.AssessRequest{Runs: 50}, &assess); status != http.StatusOK {
		t.Fatalf("follower assess: status %d", status)
	}
	if status := httpJSON(t, http.MethodPost, follower.hs.URL+"/v1/networks", serve.CreateRequest{
		ID: "nope", Spec: chaosSpec(3),
	}, nil); status != http.StatusTemporaryRedirect {
		t.Fatalf("follower create: status %d, want 307", status)
	}
	req, _ := http.NewRequest(http.MethodDelete, follower.hs.URL+"/v1/networks/"+ids[0], nil)
	resp, err := noRedirectClient.Do(req)
	if err != nil {
		t.Fatalf("follower delete: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower delete: status %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		t.Fatalf("follower redirect carries no Location header")
	}
}

// TestSessionDeletePropagates pins deletion: a session dropped on the
// primary disappears from the follower on the next round.
func TestSessionDeletePropagates(t *testing.T) {
	client := &http.Client{Timeout: 5 * time.Second}
	primary := startChaosNode(t, t.TempDir(), "", client)
	follower := startChaosNode(t, t.TempDir(), primary.hs.URL, client)
	ids := createSessions(t, primary, 2, 4)
	converge(t, primary, follower, ids, 100)

	req, _ := http.NewRequest(http.MethodDelete, primary.hs.URL+"/v1/networks/"+ids[0], nil)
	resp, err := noRedirectClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	converge(t, primary, follower, ids[1:], 100)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := follower.srv.ReplicaVersion(ids[0]); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deleted session %s still live on the follower", ids[0])
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = follower.fol.Load().SyncOnce(ctx)
		cancel()
	}
}

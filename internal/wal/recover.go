package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"netdiversity/internal/netmodel"
)

// Recovered is one session rebuilt by boot recovery: the snapshot advanced
// to the replayed tip, the rebuilt network and constraints, and a fresh Log
// handle ready for appends.
type Recovered struct {
	// Snapshot holds the session's configuration and published state at the
	// recovered tip: Version, Energy, Hash and Assignment reflect the state
	// after replay, not the on-disk snapshot file.
	Snapshot *SessionSnapshot
	// Net and Constraints are the network rebuilt from the snapshot spec
	// with all replayed deltas applied.
	Net         *netmodel.Network
	Constraints *netmodel.ConstraintSet
	// Log is the session's live log handle, already rotated to a fresh
	// segment so any torn tail is left behind.
	Log *Log
	// Replayed counts log records folded in on top of the snapshot.
	Replayed int
	// TornTail is true when replay encountered a torn or corrupt record —
	// the expected signature of a crash during append, possibly in an
	// abandoned tail left behind by an earlier recovery.
	TornTail bool
}

// SkippedSession reports a session directory recovery could not restore.
// Boot continues without it; the directory is left on disk for inspection.
type SkippedSession struct {
	ID  string
	Err error
}

// Recover scans the data directory and rebuilds every session from its
// newest valid snapshot plus the log tail.  Unrecoverable sessions are
// skipped, not fatal: one corrupt tenant must not keep the daemon (and every
// other tenant) down.  Results are sorted by session ID for deterministic
// boot order.
func (m *Manager) Recover() ([]*Recovered, []SkippedSession, error) {
	entries, err := m.fs.ReadDir(filepath.Join(m.opts.Dir, sessionsDir))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: scan data dir: %w", err)
	}
	var recovered []*Recovered
	var skipped []SkippedSession
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		if !validID(id) {
			skipped = append(skipped, SkippedSession{ID: id, Err: fmt.Errorf("wal: invalid session directory name %q", id)})
			continue
		}
		rec, err := m.recoverSession(id)
		if err != nil {
			skipped = append(skipped, SkippedSession{ID: id, Err: err})
			continue
		}
		recovered = append(recovered, rec)
	}
	sort.Slice(recovered, func(i, j int) bool {
		return recovered[i].Snapshot.ID < recovered[j].Snapshot.ID
	})
	sort.Slice(skipped, func(i, j int) bool { return skipped[i].ID < skipped[j].ID })
	m.recovered.Store(int64(len(recovered)))
	return recovered, skipped, nil
}

// segment is a log segment discovered on disk.
type segment struct {
	first uint64
	path  string
}

// recoverSession rebuilds one session directory.
func (m *Manager) recoverSession(id string) (*Recovered, error) {
	dir := m.sessionDir(id)
	entries, err := m.fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snapVersions []uint64
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Uncommitted snapshot attempt; a crash artifact.
			m.fs.Remove(filepath.Join(dir, name)) //nolint:errcheck // best effort
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64); err == nil {
				snapVersions = append(snapVersions, v)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64); err == nil {
				segs = append(segs, segment{first: v, path: filepath.Join(dir, name)})
			}
		}
	}
	if len(snapVersions) == 0 {
		return nil, fmt.Errorf("wal: session %s: no snapshot", id)
	}
	// Newest snapshot first; fall back to older ones if validation fails.
	sort.Slice(snapVersions, func(i, j int) bool { return snapVersions[i] > snapVersions[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	var lastErr error
	for _, v := range snapVersions {
		snap, err := readSnapshotFile(m.fs, filepath.Join(dir, snapName(v)))
		if err != nil {
			lastErr = err
			continue
		}
		if snap.ID != id {
			lastErr = fmt.Errorf("%w: snapshot claims id %q in directory %q", errBadSnapshot, snap.ID, id)
			continue
		}
		rec, err := m.replaySession(dir, snap, segs)
		if err != nil {
			lastErr = err
			continue
		}
		// Rotate to a fresh segment past the recovered tip: the torn tail
		// (if any) is abandoned in place — replay skips it next boot — and
		// deleted at the next compaction.
		l, err := m.openLog(id, dir, rec.Snapshot.Version, rec.Replayed)
		if err != nil {
			return nil, err
		}
		rec.Log = l
		return rec, nil
	}
	return nil, fmt.Errorf("wal: session %s: no usable snapshot: %w", id, lastErr)
}

// errHashMismatch is an internal replay signal: record k replayed cleanly at
// the framing level but its journaled assignment hash does not match the
// replayed state.  Replay restarts with a limit that excludes the record.
type errHashMismatch struct {
	index int
	got   string
	want  string
}

func (e *errHashMismatch) Error() string {
	return fmt.Sprintf("wal: replay hash mismatch at record %d: got %s want %s", e.index, e.got, e.want)
}

// replaySession folds the log tail into the snapshot.  On a hash mismatch
// at record k the replay restarts excluding records k and beyond — the
// journaled hash chain makes everything after a mismatch untrustworthy.
func (m *Manager) replaySession(dir string, snap *SessionSnapshot, segs []segment) (*Recovered, error) {
	limit := math.MaxInt
	for {
		rec, err := m.replayOnce(snap, segs, limit)
		var hm *errHashMismatch
		if errors.As(err, &hm) {
			limit = hm.index
			continue
		}
		return rec, err
	}
}

func (m *Manager) replayOnce(snap *SessionSnapshot, segs []segment, limit int) (*Recovered, error) {
	net, cs, err := netmodel.FromSpec(snap.Spec)
	if err != nil {
		return nil, fmt.Errorf("wal: session %s: rebuild network: %w", snap.ID, err)
	}
	assignment := snap.Assignment.Clone()
	version := snap.Version
	energy := snap.Energy
	replayed := 0
	torn := false

	for _, seg := range segs {
		stop, segTorn, err := m.replaySegment(seg.path, func(r *Record) (bool, error) {
			if r.Version <= version {
				// Already folded into the snapshot (pre-compaction segment
				// whose deletion failed); skip.
				return true, nil
			}
			if r.PrevVersion != version {
				// Chain gap: a segment from a previous incarnation or a
				// corrupt run. Nothing after it can apply.
				return false, nil
			}
			if replayed >= limit {
				return false, nil
			}
			for _, d := range r.Deltas {
				if err := d.Apply(net); err != nil {
					return false, fmt.Errorf("wal: replay delta: %w", err)
				}
			}
			assignment.ApplyPatch(r.Changed, r.Removed)
			if got := assignment.Hash(); got != r.Hash {
				return false, &errHashMismatch{index: replayed, got: got, want: r.Hash}
			}
			version = r.Version
			energy = r.Energy
			replayed++
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		if segTorn {
			// A torn or corrupt frame ends this segment, not the whole
			// replay.  The torn frame may be the stale abandoned tail of a
			// segment an earlier recovery already rotated past, with durably
			// acked records living in later segments; the PrevVersion chain
			// check decides whether anything later still applies.  Breaking
			// here instead would make a second crash lose those records.
			torn = true
			continue
		}
		if stop {
			// An explicit stop (chain gap, replay limit): versions only grow,
			// so nothing in a later segment can chain past the break.
			break
		}
	}

	if err := assignment.ValidateFor(net); err != nil {
		return nil, fmt.Errorf("wal: session %s: recovered assignment invalid: %w", snap.ID, err)
	}
	out := *snap
	out.Version = version
	out.Energy = energy
	out.Assignment = assignment
	out.Hash = assignment.Hash()
	out.Spec = netmodel.ToSpec(net, cs)
	return &Recovered{
		Snapshot:    &out,
		Net:         net,
		Constraints: cs,
		Replayed:    replayed,
		TornTail:    torn,
	}, nil
}

// replaySegment streams one segment's frames into apply.  apply returns
// (continue, error); a false continue stops the whole replay.  A torn or
// corrupt frame ends the segment (torn=true) without error — the caller
// decides that replay ends there.
func (m *Manager) replaySegment(path string, apply func(*Record) (bool, error)) (stop, torn bool, err error) {
	f, err := m.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return false, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		payload, err := readFrame(br)
		if err == io.EOF {
			return false, false, nil
		}
		if errors.Is(err, ErrTorn) || errors.Is(err, ErrCorrupt) {
			return false, true, nil
		}
		if err != nil {
			return false, false, err
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// Framing passed but JSON did not: corruption.
			return false, true, nil
		}
		cont, err := apply(rec)
		if err != nil {
			return false, false, err
		}
		if !cont {
			return true, false, nil
		}
	}
}

package wal

import (
	"errors"
	"os"
	"sync"
)

// ErrInjected is the error FaultFS returns for injected failures when the
// test does not supply its own.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps another FS and injects failures on demand: short writes (a
// byte budget that runs out mid-record, leaving a torn frame on disk), fsync
// errors, and rename failures.  Together with the crash-point hooks it lets
// tests walk the WAL through every failure mode a real disk exhibits while
// the underlying data stays inspectable on the real filesystem.
type FaultFS struct {
	inner FS

	mu          sync.Mutex
	writeErr    error
	syncErr     error
	renameErr   error
	writeBudget int64 // bytes still allowed through; <0 means unlimited
}

// NewFaultFS wraps inner with fault injection disabled.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, writeBudget: -1}
}

// FailWrites makes every subsequent Write fail with err (nil restores
// normal behaviour).
func (f *FaultFS) FailWrites(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr = err
}

// FailSync makes every subsequent Sync (and SyncDir) fail with err (nil
// restores normal behaviour).
func (f *FaultFS) FailSync(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// FailRename makes every subsequent Rename fail with err (nil restores
// normal behaviour).
func (f *FaultFS) FailRename(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renameErr = err
}

// SetWriteBudget allows the next n bytes through before writes start
// failing: the write that crosses the budget is truncated to the remaining
// bytes and returns ErrInjected — a short write that leaves a torn record.
// A negative n disables the budget.
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

// OpenFile opens through the inner FS, wrapping the file for injection.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Rename forwards to the inner FS unless a rename failure is armed.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	err := f.renameErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove forwards to the inner FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// RemoveAll forwards to the inner FS.
func (f *FaultFS) RemoveAll(path string) error { return f.inner.RemoveAll(path) }

// MkdirAll forwards to the inner FS.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// ReadDir forwards to the inner FS.
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

// Stat forwards to the inner FS.
func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

// SyncDir forwards to the inner FS unless a sync failure is armed.
func (f *FaultFS) SyncDir(name string) error {
	f.mu.Lock()
	err := f.syncErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.SyncDir(name)
}

type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if err := ff.fs.writeErr; err != nil {
		ff.fs.mu.Unlock()
		return 0, err
	}
	allow := len(p)
	budgeted := false
	if ff.fs.writeBudget >= 0 {
		budgeted = true
		if int64(allow) > ff.fs.writeBudget {
			allow = int(ff.fs.writeBudget)
		}
		ff.fs.writeBudget -= int64(allow)
	}
	ff.fs.mu.Unlock()

	n, err := ff.File.Write(p[:allow])
	if err != nil {
		return n, err
	}
	if budgeted && allow < len(p) {
		return n, ErrInjected
	}
	return n, nil
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	err := ff.fs.syncErr
	ff.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return ff.File.Sync()
}

package wal

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame guards the record framing against arbitrary on-disk bytes:
// whatever a damaged segment holds, the reader must never panic or
// over-allocate, and its three-way verdict (clean EOF / torn / corrupt) must
// be stable — in particular a frame that round-trips must come back intact,
// and any bit flip inside it must read as corruption, never as data.
func FuzzReadFrame(f *testing.F) {
	whole := appendFrame(nil, []byte(`{"prev_version":1,"version":2,"hash":"ab"}`))
	f.Add(whole)
	f.Add(whole[:len(whole)-4])            // torn payload
	f.Add(whole[:frameHeaderSize-2])       // torn header
	f.Add(appendFrame(whole, []byte(`x`))) // two frames
	flipped := append([]byte(nil), whole...)
	flipped[frameHeaderSize+3] ^= 0x08 // bit-flipped payload => CRC mismatch
	f.Add(flipped)
	badlen := append([]byte(nil), whole...)
	badlen[3] = 0xff // absurd declared length
	f.Add(badlen)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		frames := 0
		for {
			payload, err := readFrame(r)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unclassified frame error: %v", err)
				}
				break
			}
			frames++
			if len(payload) > MaxRecordBytes {
				t.Fatalf("frame payload of %d bytes exceeds the record bound", len(payload))
			}
			// A frame that read back must re-frame to the identical bytes.
			if rt := appendFrame(nil, payload); len(rt) != frameHeaderSize+len(payload) {
				t.Fatalf("re-framed length %d for %d payload bytes", len(rt), len(payload))
			}
			if frames > 1<<16 {
				t.Fatal("implausible frame count")
			}
		}
	})
}

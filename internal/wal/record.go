package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"netdiversity/internal/netmodel"
)

// Log records are length-prefixed, checksummed JSON frames:
//
//	[4B little-endian payload length][4B little-endian CRC32C][payload]
//
// The CRC covers the payload only; the length is implicitly validated by the
// CRC (a corrupted length either exceeds MaxRecordBytes or frames the wrong
// bytes, failing the checksum).  CRC32C (Castagnoli) is the conventional
// storage checksum — hardware-accelerated on amd64/arm64 via Go's crc32.
const frameHeaderSize = 8

// MaxRecordBytes bounds a single record's payload.  A frame whose declared
// length exceeds it is treated as corruption, so a flipped bit in the length
// field cannot make recovery attempt a multi-gigabyte allocation.
const MaxRecordBytes = 32 << 20

// ErrTorn marks a frame cut short by a crash: the tail of the file ends
// mid-header or mid-payload.  A torn final record is the expected signature
// of a crash during append and is silently dropped by recovery.
var ErrTorn = errors.New("wal: torn record")

// ErrCorrupt marks a frame whose bytes are present but wrong: checksum
// mismatch or an absurd declared length.  Recovery stops replay at the first
// corrupt frame and keeps the state accumulated so far.
var ErrCorrupt = errors.New("wal: corrupt record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends payload to dst as one length-prefixed, CRC32C-checked
// frame — the exact on-disk log framing, exported so the replication plane
// (internal/replic) ships records and snapshots over the wire with the same
// torn/corrupt detection the recovery path already trusts.
func AppendFrame(dst, payload []byte) []byte { return appendFrame(dst, payload) }

// ReadFrame reads one frame from r and returns its payload.  io.EOF means a
// clean end exactly at a frame boundary; ErrTorn and ErrCorrupt mean what
// they mean on disk.  The exported counterpart of the segment reader, used
// by the replication plane to consume framed streams off the wire.
func ReadFrame(r *bufio.Reader) ([]byte, error) { return readFrame(r) }

// appendFrame appends the framed payload to dst and returns the result.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame reads one frame, returning its payload.  io.EOF means a clean
// end exactly at a frame boundary; ErrTorn means the file ends inside a
// frame; ErrCorrupt means the frame is complete but fails validation.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated header", ErrTorn)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxRecordBytes {
		return nil, fmt.Errorf("%w: declared length %d exceeds limit", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload", ErrTorn)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Record is one durable unit of the per-session log: the accepted delta
// batch of a single ApplyDeltaBatch plus the resulting published state.  The
// assignment is journaled as a host-level diff against the previous record
// (netmodel.Assignment.DiffHosts), so replay folds records forward with
// ApplyPatch instead of re-running the solver — recovery is deterministic
// byte-replay, independent of solver seeds and iteration budgets.
type Record struct {
	// PrevVersion/Version chain records: a record applies to state at
	// PrevVersion and produces Version.  Replay requires PrevVersion to
	// match the accumulated version exactly; a gap ends replay.
	PrevVersion uint64 `json:"prev_version"`
	Version     uint64 `json:"version"`

	// Deltas is the accepted batch, replayed against the network topology.
	Deltas []netmodel.Delta `json:"deltas,omitempty"`

	// Changed/Removed is the assignment patch produced by the post-batch
	// solve, in DiffHosts form.
	Changed map[netmodel.HostID]map[netmodel.ServiceID]netmodel.ProductID `json:"changed,omitempty"`
	Removed []netmodel.HostID                                             `json:"removed,omitempty"`

	// Energy and Hash are the published energy and assignment fingerprint
	// after the patch.  Recovery recomputes the hash over replayed state and
	// rejects the record on mismatch — the end-to-end integrity check on top
	// of the per-frame CRC.
	Energy float64 `json:"energy"`
	Hash   string  `json:"hash"`
}

// validate rejects records that could never have been produced by the serve
// plane, before they reach the log.
func (r *Record) validate() error {
	if r.Version <= r.PrevVersion {
		return fmt.Errorf("wal: record version %d not after prev %d", r.Version, r.PrevVersion)
	}
	if r.Hash == "" {
		return errors.New("wal: record missing assignment hash")
	}
	return nil
}

// Encode validates the record and returns its canonical JSON payload — the
// bytes a frame carries, identical on disk and on the replication wire.
func (r *Record) Encode() ([]byte, error) { return encodeRecord(r) }

// DecodeRecord decodes a frame payload back into a Record.  Malformed JSON
// is reported as ErrCorrupt, mirroring the recovery path; the decoded record
// is additionally validated so a syntactically clean but impossible record
// (version not after prev, missing hash) never enters an apply path.
func DecodeRecord(payload []byte) (*Record, error) {
	rec, err := decodeRecord(payload)
	if err != nil {
		return nil, err
	}
	if err := rec.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return rec, nil
}

func encodeRecord(r *Record) ([]byte, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("wal: encode record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds limit", len(payload))
	}
	return payload, nil
}

func decodeRecord(payload []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &r, nil
}

package wal

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Crash-point names of the append and snapshot paths, in execution order.
// Each marks a stage boundary where a process can die; the recovery tests
// arm every one of them and assert the invariant the durability contract
// promises: recovered state equals either the pre-record or the post-record
// assignment, never anything in between.
const (
	// FPPreAppend fires before any bytes of a record reach the log.
	FPPreAppend = "append:pre"
	// FPMidAppend fires after the record bytes are written but before the
	// policy's durability point (fsync under always).
	FPMidAppend = "append:mid"
	// FPPostAppend fires after the record is durable per policy but before
	// the caller can ack the client.
	FPPostAppend = "append:post"
	// FPPreSnapshot fires before a compacted snapshot write begins.
	FPPreSnapshot = "snapshot:pre"
	// FPMidSnapshot fires after the temp snapshot file is fully written but
	// before the rename commits it.
	FPMidSnapshot = "snapshot:mid"
	// FPPostRename fires after the rename commits the snapshot but before
	// old segments and snapshots are cleaned up.
	FPPostRename = "snapshot:post-rename"
)

// ErrCrashPoint is the conventional error a fail-point hook returns to
// simulate a crash at that stage boundary.
var ErrCrashPoint = errors.New("wal: crash point reached")

var (
	// failArmed counts installed hooks so the production path pays a single
	// atomic load (and nothing else) when no test has armed anything.
	failArmed  atomic.Int32
	failMu     sync.Mutex
	failPoints = make(map[string]func() error)
)

// SetFailPoint installs a hook at a named crash point.  When the WAL reaches
// the point it calls the hook; a non-nil error aborts the operation there,
// exactly as a crash would from the caller's point of view.  Test-only.
func SetFailPoint(name string, fn func() error) {
	failMu.Lock()
	defer failMu.Unlock()
	if _, ok := failPoints[name]; !ok {
		failArmed.Add(1)
	}
	failPoints[name] = fn
}

// ClearFailPoint removes the hook at a named crash point.
func ClearFailPoint(name string) {
	failMu.Lock()
	defer failMu.Unlock()
	if _, ok := failPoints[name]; ok {
		failArmed.Add(-1)
		delete(failPoints, name)
	}
}

// ClearFailPoints removes every installed hook.
func ClearFailPoints() {
	failMu.Lock()
	defer failMu.Unlock()
	failArmed.Add(-int32(len(failPoints)))
	clear(failPoints)
}

// failpoint runs the hook installed at name, if any.
func failpoint(name string) error {
	if failArmed.Load() == 0 {
		return nil
	}
	failMu.Lock()
	fn := failPoints[name]
	failMu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

package wal

import (
	"io"
	"os"
)

// File is the subset of *os.File the WAL writes through.  Keeping the
// surface this small is what makes the error-injecting test filesystem
// (FaultFS) a complete double: every byte the WAL persists flows through
// Write, every durability point through Sync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's written data to stable storage.
	Sync() error
}

// FS abstracts the filesystem operations the WAL performs, so tests can
// inject short writes, fsync errors and rename failures at any point of the
// append and snapshot paths without touching a real disk's failure modes.
// Production code uses OS.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// RemoveAll deletes a path and everything below it.
	RemoveAll(path string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making previously renamed/created entries
	// durable (the rename barrier of the temp-then-rename snapshot commit).
	SyncDir(name string) error
}

// OS is the production filesystem: thin wrappers over the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

package wal

import (
	"errors"
	"testing"
	"time"

	"netdiversity/internal/netmodel"
)

// crashSetup creates a manager over dir with one session at version 1 and
// returns the log plus the assignment state after the snapshot.
func crashSetup(t *testing.T, dir string, opts Options) (*Manager, *Log, *netmodel.Assignment, *SessionSnapshot) {
	t.Helper()
	opts.Dir = dir
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	snap := testSnapshot("s1", 3)
	l, err := m.Create(snap)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return m, l, snap.Assignment.Clone(), snap
}

// recoverOne reopens dir with a fresh manager and recovers the single session.
func recoverOne(t *testing.T, dir string) *Recovered {
	t.Helper()
	m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	recovered, skipped, err := m.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped sessions: %+v", skipped)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recovered))
	}
	return recovered[0]
}

// TestCrashPointMatrix simulates a crash at every append/snapshot stage
// boundary and asserts recovery lands on either the pre-delta or the
// post-delta assignment hash — never anything else — matching the
// acceptance matrix in ISSUE.md.  With fsync=always, a crash after the
// durability point (append:post) must recover the post-delta state.
func TestCrashPointMatrix(t *testing.T) {
	cases := []struct {
		point     string
		policy    Policy
		allowPre  bool
		allowPost bool
	}{
		// Before the frame is written nothing can survive.
		{FPPreAppend, SyncAlways, true, false},
		// Mid-append the frame may be torn (pre) or complete (post); with a
		// single atomic write the OS keeps it, so both states are legal.
		{FPMidAppend, SyncAlways, true, true},
		// Past the fsync=always durability point the record MUST survive.
		{FPPostAppend, SyncAlways, false, true},
		// Under fsync=never the write usually survives a process crash, but
		// nothing is promised — both states are legal.
		{FPPostAppend, SyncNever, true, true},
		// Snapshot-path crashes never lose the already-appended record.
		{FPPreSnapshot, SyncAlways, false, true},
		{FPMidSnapshot, SyncAlways, false, true},
		{FPPostRename, SyncAlways, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.point+"/"+tc.policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			// SnapshotEvery=1 so the snapshot failpoints are reachable via
			// WriteSnapshot immediately after one append.
			m, l, cur, _ := crashSetup(t, dir, Options{Policy: tc.policy, SnapshotEvery: 1})
			preHash := cur.Hash()
			rec := patchRecord(cur, 1, "h0", "ubt1404")
			postHash := rec.Hash

			SetFailPoint(tc.point, func() error { return ErrCrashPoint })
			defer ClearFailPoints()

			err := l.Append(rec)
			snapshotPoint := tc.point == FPPreSnapshot || tc.point == FPMidSnapshot || tc.point == FPPostRename
			if snapshotPoint {
				if err != nil {
					t.Fatalf("append hit %v before the snapshot stage", err)
				}
				snap2 := testSnapshot("s1", 3)
				snap2.Version = 2
				snap2.Assignment = cur.Clone()
				snap2.Hash = postHash
				if err := l.WriteSnapshot(snap2); !errors.Is(err, ErrCrashPoint) {
					t.Fatalf("WriteSnapshot: %v, want ErrCrashPoint", err)
				}
			} else if !errors.Is(err, ErrCrashPoint) {
				t.Fatalf("Append: %v, want ErrCrashPoint", err)
			}
			// A crash-point error leaves the manager degraded (fail-stop).
			if !m.Degraded() {
				t.Fatal("manager not degraded after simulated crash")
			}
			ClearFailPoints()
			m.Close()

			got := recoverOne(t, dir)
			switch got.Snapshot.Hash {
			case preHash:
				if !tc.allowPre {
					t.Fatalf("%s: recovered PRE-delta state; acked record lost", tc.point)
				}
				if got.Snapshot.Version != 1 {
					t.Fatalf("pre-state at version %d", got.Snapshot.Version)
				}
			case postHash:
				if !tc.allowPost {
					t.Fatalf("%s: recovered POST-delta state before it could exist", tc.point)
				}
				if got.Snapshot.Version != 2 {
					t.Fatalf("post-state at version %d", got.Snapshot.Version)
				}
			default:
				t.Fatalf("%s: recovered hash %s is neither pre (%s) nor post (%s)",
					tc.point, got.Snapshot.Hash, preHash, postHash)
			}
		})
	}
}

// TestAckedSurvivesWithSyncAlways is the core durability promise: every
// Append that RETURNED NIL under fsync=always is recovered, whatever
// happens afterwards (here: the process "crashes" with no Close).
func TestAckedSurvivesWithSyncAlways(t *testing.T) {
	dir := t.TempDir()
	_, l, cur, _ := crashSetup(t, dir, Options{Policy: SyncAlways})
	var ackedHash string
	var ackedVersion uint64
	for v := uint64(1); v < 8; v++ {
		rec := patchRecord(cur, v, "h1", []netmodel.ProductID{"win7", "ubt1404", "osx109"}[v%3])
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append v%d: %v", v, err)
		}
		ackedHash, ackedVersion = rec.Hash, rec.Version
	}
	// No Close: the file handles stay open, mimicking kill -9.  The data was
	// fsynced per record, so a fresh manager over the same dir must see it.
	got := recoverOne(t, dir)
	if got.Snapshot.Version != ackedVersion || got.Snapshot.Hash != ackedHash {
		t.Fatalf("recovered v%d/%s, want acked v%d/%s",
			got.Snapshot.Version, got.Snapshot.Hash, ackedVersion, ackedHash)
	}
}

func TestShortWriteDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	m, l, cur, _ := crashSetup(t, dir, Options{FS: ffs, Policy: SyncAlways})
	rec1 := patchRecord(cur, 1, "h0", "ubt1404")
	if err := l.Append(rec1); err != nil {
		t.Fatalf("Append: %v", err)
	}

	// The disk dies 5 bytes into the next frame: a short write, then errors.
	ffs.SetWriteBudget(5)
	rec2 := patchRecord(cur, 2, "h1", "osx109")
	if err := l.Append(rec2); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append on dead disk: %v, want ErrInjected", err)
	}
	if !m.Degraded() {
		t.Fatal("manager not degraded after write failure")
	}
	// Degradation is sticky: later appends shed with ErrDegraded without
	// touching the disk again.
	ffs.SetWriteBudget(-1)
	if err := l.Append(rec2); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append while degraded: %v, want ErrDegraded", err)
	}
	st := m.Stats()
	if !st.Degraded || st.LastError == "" {
		t.Fatalf("stats: %+v", st)
	}
	m.Close()

	// Recovery over the torn tail lands on the last fully-acked record.
	got := recoverOne(t, dir)
	if got.Snapshot.Version != 2 || got.Snapshot.Hash != rec1.Hash {
		t.Fatalf("recovered v%d/%s, want v2/%s", got.Snapshot.Version, got.Snapshot.Hash, rec1.Hash)
	}
	if !got.TornTail && got.Replayed != 1 {
		t.Fatalf("replayed %d, torn %v", got.Replayed, got.TornTail)
	}
}

func TestSyncErrorDegrades(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	m, l, cur, _ := crashSetup(t, dir, Options{FS: ffs, Policy: SyncAlways})
	ffs.FailSync(errors.New("EIO"))
	if err := l.Append(patchRecord(cur, 1, "h0", "ubt1404")); err == nil {
		t.Fatal("Append acked despite fsync failure under fsync=always")
	}
	if !m.Degraded() {
		t.Fatal("manager not degraded after fsync failure")
	}
	if st := m.Stats(); st.SyncErrors == 0 {
		t.Fatalf("sync_errors not counted: %+v", st)
	}
}

func TestRenameErrorFailsSnapshot(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	m, l, cur, _ := crashSetup(t, dir, Options{FS: ffs, SnapshotEvery: 1})
	if err := l.Append(patchRecord(cur, 1, "h0", "ubt1404")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	ffs.FailRename(errors.New("EIO"))
	snap2 := testSnapshot("s1", 3)
	snap2.Version = 2
	snap2.Assignment = cur.Clone()
	snap2.Hash = cur.Hash()
	if err := l.WriteSnapshot(snap2); err == nil {
		t.Fatal("WriteSnapshot succeeded despite rename failure")
	}
	if !m.Degraded() {
		t.Fatal("manager not degraded after snapshot rename failure")
	}
	ffs.FailRename(nil)
	m.Close()

	// The failed snapshot must not shadow the good state: recovery falls
	// back to the old snapshot + log replay.
	got := recoverOne(t, dir)
	if got.Snapshot.Version != 2 || got.Replayed != 1 {
		t.Fatalf("recovered v%d replayed %d", got.Snapshot.Version, got.Replayed)
	}
}

// TestRotateSyncsOutgoingSegment pins that rotation fsyncs the rotated-out
// segment under a syncing policy: once rotated, the file is beyond the
// background syncer's reach, so a failed fsync must fail the append and
// degrade — not silently leave acked bytes unsynced forever.  Interval is
// cranked up so the background syncer cannot drain the segment first.
func TestRotateSyncsOutgoingSegment(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	m, l, cur, _ := crashSetup(t, dir, Options{FS: ffs, Policy: SyncInterval, SegmentBytes: 1, Interval: time.Hour})
	if err := l.Append(patchRecord(cur, 1, "h0", "ubt1404")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	ffs.FailSync(errors.New("EIO"))
	if err := l.Append(patchRecord(cur, 2, "h1", "osx109")); err == nil {
		t.Fatal("append acked although the rotated-out segment could not be fsynced")
	}
	if !m.Degraded() {
		t.Fatal("manager not degraded after rotation fsync failure")
	}
	if st := m.Stats(); st.SyncErrors == 0 || st.WalLagBytes == 0 {
		t.Fatalf("stats after failed rotation sync: %+v", st)
	}
}

// TestRotateAccountsSyncedBytes pins the lag accounting across rotation:
// rotated-out bytes are credited as synced only because rotation fsynced
// them, so wal_lag_bytes is exactly the unsynced tail.
func TestRotateAccountsSyncedBytes(t *testing.T) {
	dir := t.TempDir()
	m, l, cur, _ := crashSetup(t, dir, Options{Policy: SyncInterval, SegmentBytes: 1, Interval: time.Hour})
	var lastFrame int
	for v := uint64(1); v < 4; v++ {
		rec := patchRecord(cur, v, "h0", []netmodel.ProductID{"win7", "ubt1404", "osx109"}[v%3])
		payload, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		lastFrame = len(appendFrame(nil, payload))
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append v%d: %v", v, err)
		}
	}
	if st := m.Stats(); st.WalLagBytes != int64(lastFrame) {
		t.Fatalf("wal_lag_bytes = %d, want the tail frame's %d", st.WalLagBytes, lastFrame)
	}
	if err := l.sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if st := m.Stats(); st.WalLagBytes != 0 {
		t.Fatalf("wal_lag_bytes = %d after sync, want 0", st.WalLagBytes)
	}
}

func TestFailPointDisarmed(t *testing.T) {
	// A set-then-cleared failpoint costs nothing and fires nothing.
	SetFailPoint(FPPreAppend, func() error { return ErrCrashPoint })
	ClearFailPoint(FPPreAppend)
	dir := t.TempDir()
	_, l, cur, _ := crashSetup(t, dir, Options{})
	if err := l.Append(patchRecord(cur, 1, "h0", "ubt1404")); err != nil {
		t.Fatalf("Append with cleared failpoint: %v", err)
	}
}

func TestDegradedManagerRejectsCreate(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	m, l, cur, _ := crashSetup(t, dir, Options{FS: ffs})
	ffs.FailWrites(errors.New("EIO"))
	if err := l.Append(patchRecord(cur, 1, "h0", "ubt1404")); err == nil {
		t.Fatal("Append acked on failed write")
	}
	ffs.FailWrites(nil)
	if _, err := m.Create(testSnapshot("s2", 2)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Create while degraded: %v, want ErrDegraded", err)
	}
}

package wal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netdiversity/internal/netmodel"
)

// testSpec builds a small chain network spec.
func testSpec(hosts int) netmodel.Spec {
	spec := netmodel.Spec{}
	for i := 0; i < hosts; i++ {
		spec.Hosts = append(spec.Hosts, netmodel.HostSpec{
			ID:       netmodel.HostID(fmt.Sprintf("h%d", i)),
			Services: []netmodel.ServiceID{"os"},
			Choices: map[netmodel.ServiceID][]netmodel.ProductID{
				"os": {"win7", "ubt1404", "osx109"},
			},
		})
		if i > 0 {
			spec.Links = append(spec.Links, netmodel.Link{
				A: netmodel.HostID(fmt.Sprintf("h%d", i-1)),
				B: netmodel.HostID(fmt.Sprintf("h%d", i)),
			})
		}
	}
	return spec
}

// testAssignment assigns every host of the spec its idx-th candidate.
func testAssignment(spec netmodel.Spec, idx int) *netmodel.Assignment {
	a := netmodel.NewAssignment()
	for _, h := range spec.Hosts {
		for _, s := range h.Services {
			cands := h.Choices[s]
			a.Set(h.ID, s, cands[idx%len(cands)])
		}
	}
	return a
}

// testSnapshot builds a session snapshot at version 1.
func testSnapshot(id string, hosts int) *SessionSnapshot {
	spec := testSpec(hosts)
	a := testAssignment(spec, 0)
	return &SessionSnapshot{
		ID:         id,
		Solver:     "trws",
		Seed:       7,
		Version:    1,
		Energy:     1.5,
		Hash:       a.Hash(),
		Spec:       spec,
		Assignment: a,
	}
}

// patchRecord builds the record that flips host h's product, chaining
// prev -> prev+1 on top of the given assignment state (mutating it).
func patchRecord(cur *netmodel.Assignment, prev uint64, h netmodel.HostID, p netmodel.ProductID) *Record {
	cur.Set(h, "os", p)
	return &Record{
		PrevVersion: prev,
		Version:     prev + 1,
		Changed: map[netmodel.HostID]map[netmodel.ServiceID]netmodel.ProductID{
			h: {"os": p},
		},
		Energy: float64(prev),
		Hash:   cur.Hash(),
	}
}

// sessDir returns the on-disk directory of a session under a data dir.
func sessDir(dir, id string) string { return filepath.Join(dir, sessionsDir, id) }

func openManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("{}"), []byte(`{"a":1}`), bytes.Repeat([]byte("x"), 1000)}
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range payloads {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	if _, err := readFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("expected clean EOF at frame boundary, got %v", err)
	}
}

func TestFrameTornAndCorrupt(t *testing.T) {
	frame := appendFrame(nil, []byte(`{"v":1}`))

	// Every strict prefix of the frame is torn, never corrupt.
	for cut := 1; cut < len(frame); cut++ {
		_, err := readFrame(bufio.NewReader(bytes.NewReader(frame[:cut])))
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix %d/%d: got %v, want ErrTorn", cut, len(frame), err)
		}
	}
	// A flipped payload bit is corruption.
	for i := frameHeaderSize; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		_, err := readFrame(bufio.NewReader(bytes.NewReader(bad)))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", i, err)
		}
	}
	// An absurd declared length is corruption, not an allocation attempt.
	bad := append([]byte(nil), frame...)
	bad[3] = 0xff
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(bad))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd length: got %v, want ErrCorrupt", err)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := testSnapshot("s1", 3)
	path, err := writeSnapshotFile(OS, dir, snap, true)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := readSnapshotFile(OS, path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.ID != "s1" || got.Version != 1 || got.Hash != snap.Hash || len(got.Spec.Hosts) != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// Truncated and bit-flipped copies must be rejected.
	raw, _ := os.ReadFile(path)
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"truncated", raw[:len(raw)-5]},
		{"short", raw[:snapFooterSize-1]},
		{"bitflip", func() []byte {
			b := append([]byte(nil), raw...)
			b[len(b)/2] ^= 0x10
			return b
		}()},
	} {
		p := filepath.Join(dir, tc.name)
		os.WriteFile(p, tc.data, 0o644)
		if _, err := readSnapshotFile(OS, p); err == nil {
			t.Fatalf("%s: validation passed on damaged snapshot", tc.name)
		}
	}
}

func TestCreateAppendRecover(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir})
	snap := testSnapshot("s1", 3)
	l, err := m.Create(snap)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	cur := snap.Assignment.Clone()
	var wantHash string
	for v := uint64(1); v < 6; v++ {
		rec := patchRecord(cur, v, "h0", []netmodel.ProductID{"win7", "ubt1404", "osx109"}[v%3])
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append v%d: %v", v, err)
		}
		wantHash = rec.Hash
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2 := openManager(t, Options{Dir: dir})
	recovered, skipped, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped: %+v", skipped)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recovered))
	}
	rec := recovered[0]
	if rec.Snapshot.Version != 6 || rec.Replayed != 5 || rec.TornTail {
		t.Fatalf("recovered: version %d replayed %d torn %v", rec.Snapshot.Version, rec.Replayed, rec.TornTail)
	}
	if rec.Snapshot.Hash != wantHash {
		t.Fatalf("recovered hash %s want %s", rec.Snapshot.Hash, wantHash)
	}
	if !rec.Snapshot.Assignment.Equal(cur) {
		t.Fatalf("recovered assignment differs:\n%v\nwant\n%v", rec.Snapshot.Assignment, cur)
	}
	if rec.Log.Version() != 6 {
		t.Fatalf("recovered log at version %d", rec.Log.Version())
	}
	// The recovered log accepts the next record in the chain.
	if err := rec.Log.Append(patchRecord(cur, 6, "h1", "osx109")); err != nil {
		t.Fatalf("post-recovery append: %v", err)
	}
}

func TestRecoverDeltaReplay(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir})
	snap := testSnapshot("s1", 3)
	l, err := m.Create(snap)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Record with a topology delta: h3 joins with an assignment.
	cur := snap.Assignment.Clone()
	cur.Set("h3", "os", "win7")
	rec := &Record{
		PrevVersion: 1,
		Version:     2,
		Deltas: []netmodel.Delta{{Ops: []netmodel.DeltaOp{
			{Op: netmodel.OpAddHost, Host: &netmodel.HostSpec{
				ID:       "h3",
				Services: []netmodel.ServiceID{"os"},
				Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"win7", "ubt1404"}},
			}},
			{Op: netmodel.OpAddEdge, A: "h2", B: "h3"},
		}}},
		Changed: map[netmodel.HostID]map[netmodel.ServiceID]netmodel.ProductID{
			"h3": {"os": "win7"},
		},
		Energy: 2,
		Hash:   cur.Hash(),
	}
	if err := l.Append(rec); err != nil {
		t.Fatalf("Append: %v", err)
	}
	m.Close()

	m2 := openManager(t, Options{Dir: dir})
	recovered, _, err := m2.Recover()
	if err != nil || len(recovered) != 1 {
		t.Fatalf("Recover: %v (%d sessions)", err, len(recovered))
	}
	got := recovered[0]
	if got.Net.NumHosts() != 4 || !got.Net.Connected("h2", "h3") {
		t.Fatalf("delta not replayed into network: %d hosts", got.Net.NumHosts())
	}
	if p, _ := got.Snapshot.Assignment.Get("h3", "os"); p != "win7" {
		t.Fatalf("h3 assignment not recovered: %q", p)
	}
}

// appendGarbage appends raw bytes to the session's newest segment file.
func appendGarbage(t *testing.T, dir, id string, b []byte) {
	t.Helper()
	entries, err := os.ReadDir(sessDir(dir, id))
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			seg = e.Name() // sorted: the last wal- entry is the newest
		}
	}
	f, err := os.OpenFile(filepath.Join(sessDir(dir, id), seg), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir})
	snap := testSnapshot("s1", 3)
	l, _ := m.Create(snap)
	cur := snap.Assignment.Clone()
	rec := patchRecord(cur, 1, "h0", "ubt1404")
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// A crash mid-append leaves a partial frame at the tail.
	full := appendFrame(nil, []byte(`{"prev_version":2,"version":3,"hash":"x"}`))
	appendGarbage(t, dir, "s1", full[:len(full)-3])

	m2 := openManager(t, Options{Dir: dir})
	recovered, _, err := m2.Recover()
	if err != nil || len(recovered) != 1 {
		t.Fatalf("Recover: %v", err)
	}
	got := recovered[0]
	if !got.TornTail {
		t.Fatal("torn tail not reported")
	}
	if got.Snapshot.Version != 2 || got.Snapshot.Hash != rec.Hash {
		t.Fatalf("recovered version %d hash %s, want 2 / %s", got.Snapshot.Version, got.Snapshot.Hash, rec.Hash)
	}
}

func TestRecoverHashMismatch(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir})
	snap := testSnapshot("s1", 3)
	l, _ := m.Create(snap)
	cur := snap.Assignment.Clone()
	good := patchRecord(cur, 1, "h0", "ubt1404")
	if err := l.Append(good); err != nil {
		t.Fatal(err)
	}
	// A record whose journaled hash does not match its own patch: framing
	// validates, replay must reject it and keep the state before it.
	bad := patchRecord(cur, 2, "h1", "osx109")
	bad.Hash = "deadbeefdeadbeef"
	if err := l.Append(bad); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2 := openManager(t, Options{Dir: dir})
	recovered, _, err := m2.Recover()
	if err != nil || len(recovered) != 1 {
		t.Fatalf("Recover: %v", err)
	}
	got := recovered[0]
	if got.Snapshot.Version != 2 || got.Snapshot.Hash != good.Hash {
		t.Fatalf("recovered version %d hash %s, want 2 / %s", got.Snapshot.Version, got.Snapshot.Hash, good.Hash)
	}
}

func TestCompactionTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir, SnapshotEvery: 3})
	snap := testSnapshot("s1", 3)
	l, _ := m.Create(snap)
	cur := snap.Assignment.Clone()
	for v := uint64(1); v < 4; v++ {
		if err := l.Append(patchRecord(cur, v, "h0", []netmodel.ProductID{"win7", "ubt1404", "osx109"}[v%3])); err != nil {
			t.Fatal(err)
		}
	}
	if !l.ShouldSnapshot() {
		t.Fatal("ShouldSnapshot false after SnapshotEvery records")
	}
	snap2 := testSnapshot("s1", 3)
	snap2.Version = 4
	snap2.Assignment = cur.Clone()
	snap2.Hash = cur.Hash()
	if err := l.WriteSnapshot(snap2); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if l.ShouldSnapshot() {
		t.Fatal("ShouldSnapshot still true after compaction")
	}

	// Exactly one snapshot and one (fresh) segment remain.
	entries, _ := os.ReadDir(sessDir(dir, "s1"))
	var snaps, segs int
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), "snap-"):
			snaps++
		case strings.HasPrefix(e.Name(), "wal-"):
			segs++
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("after compaction: %d snapshots, %d segments", snaps, segs)
	}
	m.Close()

	m2 := openManager(t, Options{Dir: dir})
	recovered, _, err := m2.Recover()
	if err != nil || len(recovered) != 1 {
		t.Fatalf("Recover: %v", err)
	}
	got := recovered[0]
	if got.Snapshot.Version != 4 || got.Replayed != 0 || got.Snapshot.Hash != cur.Hash() {
		t.Fatalf("recovered from compacted snapshot: version %d replayed %d", got.Snapshot.Version, got.Replayed)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir, SegmentBytes: 1}) // rotate every append
	snap := testSnapshot("s1", 3)
	l, _ := m.Create(snap)
	cur := snap.Assignment.Clone()
	for v := uint64(1); v < 5; v++ {
		if err := l.Append(patchRecord(cur, v, "h0", []netmodel.ProductID{"win7", "ubt1404", "osx109"}[v%3])); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	entries, _ := os.ReadDir(sessDir(dir, "s1"))
	segs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", segs)
	}

	m2 := openManager(t, Options{Dir: dir})
	recovered, _, err := m2.Recover()
	if err != nil || len(recovered) != 1 {
		t.Fatalf("Recover: %v", err)
	}
	if got := recovered[0]; got.Snapshot.Version != 5 || got.Replayed != 4 {
		t.Fatalf("cross-segment replay: version %d replayed %d", got.Snapshot.Version, got.Replayed)
	}
}

func TestRemoveSession(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir})
	if _, err := m.Create(testSnapshot("s1", 3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("s1"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(sessDir(dir, "s1")); !os.IsNotExist(err) {
		t.Fatalf("session directory survived removal: %v", err)
	}
	m.Close()
	m2 := openManager(t, Options{Dir: dir})
	recovered, skipped, err := m2.Recover()
	if err != nil || len(recovered) != 0 || len(skipped) != 0 {
		t.Fatalf("Recover after remove: %v %d %d", err, len(recovered), len(skipped))
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"always": SyncAlways, "interval": SyncInterval, "never": SyncNever, "": SyncNever,
		"Always": SyncAlways,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"net-1", "a", "A_b.c-9", strings.Repeat("x", 64)} {
		if !validID(ok) {
			t.Errorf("validID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a\\b", strings.Repeat("x", 65), "a b"} {
		if validID(bad) {
			t.Errorf("validID(%q) = true", bad)
		}
	}
}

// TestRecoverSurvivesDoubleCrash pins the double-crash scenario: a torn
// frame left mid-chain in an abandoned segment by a first recovery must not
// mask records durably acked after that recovery.  Regression: the segment
// scan used to stop at the first torn frame and reopen — truncating — the
// very segment holding the post-recovery records.
func TestRecoverSurvivesDoubleCrash(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir, Policy: SyncAlways})
	snap := testSnapshot("s1", 3)
	l, err := m.Create(snap)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	cur := snap.Assignment.Clone()
	for v := uint64(1); v < 4; v++ {
		if err := l.Append(patchRecord(cur, v, "h0", []netmodel.ProductID{"win7", "ubt1404", "osx109"}[v%3])); err != nil {
			t.Fatalf("Append v%d: %v", v, err)
		}
	}
	m.Close()
	// Crash #1 leaves a torn frame at the tail of the only segment.
	full := appendFrame(nil, []byte(`{"prev_version":4,"version":5,"hash":"x"}`))
	appendGarbage(t, dir, "s1", full[:len(full)-3])

	// The first recovery abandons the torn tail in place and acks two more
	// records into a fresh segment past it.
	m2 := openManager(t, Options{Dir: dir, Policy: SyncAlways})
	recovered, skipped, err := m2.Recover()
	if err != nil || len(skipped) != 0 || len(recovered) != 1 {
		t.Fatalf("first recovery: %v (%d recovered, %d skipped)", err, len(recovered), len(skipped))
	}
	if got := recovered[0]; got.Snapshot.Version != 4 || !got.TornTail {
		t.Fatalf("first recovery: version %d torn %v, want 4/true", got.Snapshot.Version, got.TornTail)
	}
	var ackedHash string
	for v := uint64(4); v < 6; v++ {
		rec := patchRecord(cur, v, "h1", []netmodel.ProductID{"win7", "ubt1404", "osx109"}[v%3])
		if err := recovered[0].Log.Append(rec); err != nil {
			t.Fatalf("post-recovery Append v%d: %v", v, err)
		}
		ackedHash = rec.Hash
	}
	m2.Close()

	// Crash #2: the stale torn frame is still sitting mid-chain.  Recovery
	// must replay past it into the later segment and land on the last acked
	// record — with fsync=always, losing it would break the ack contract.
	m3 := openManager(t, Options{Dir: dir, Policy: SyncAlways})
	recovered3, skipped3, err := m3.Recover()
	if err != nil || len(skipped3) != 0 || len(recovered3) != 1 {
		t.Fatalf("second recovery: %v (%d recovered, %d skipped)", err, len(recovered3), len(skipped3))
	}
	got := recovered3[0]
	if got.Snapshot.Version != 6 || got.Snapshot.Hash != ackedHash {
		t.Fatalf("second recovery lost acked records: v%d/%s, want v6/%s",
			got.Snapshot.Version, got.Snapshot.Hash, ackedHash)
	}
	if !got.Snapshot.Assignment.Equal(cur) {
		t.Fatal("second recovery diverged from the acked assignment")
	}
	// The recovered log still accepts the next record in the chain.
	if err := got.Log.Append(patchRecord(cur, 6, "h2", "osx109")); err != nil {
		t.Fatalf("append after double recovery: %v", err)
	}
}

// TestOpenLogNeverTruncatesExisting pins the no-clobber rule of the
// post-recovery tail: a name collision with an existing non-empty segment (a
// stale tail holding only a torn frame) renames the stale file aside instead
// of truncating it, and the next compaction cleans it up.
func TestOpenLogNeverTruncatesExisting(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir, SnapshotEvery: 1})
	snap := testSnapshot("s1", 3)
	if _, err := m.Create(snap); err != nil {
		t.Fatalf("Create: %v", err)
	}
	m.Close()
	// Crash artifact: the fresh tail wal-2 holds only a torn frame, so
	// recovery replays nothing from it and reuses its name for the new tail.
	full := appendFrame(nil, []byte(`{"prev_version":1,"version":2,"hash":"x"}`))
	garbage := full[:len(full)-2]
	appendGarbage(t, dir, "s1", garbage)

	m2 := openManager(t, Options{Dir: dir, SnapshotEvery: 1})
	recovered, _, err := m2.Recover()
	if err != nil || len(recovered) != 1 {
		t.Fatalf("Recover: %v (%d recovered)", err, len(recovered))
	}
	stale := 0
	entries, _ := os.ReadDir(sessDir(dir, "s1"))
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), staleSuffix) {
			stale++
			if fi, err := e.Info(); err != nil || fi.Size() != int64(len(garbage)) {
				t.Fatalf("stale segment bytes were not preserved: %v %v", fi, err)
			}
		}
	}
	if stale != 1 {
		t.Fatalf("colliding segment was truncated, not renamed aside (%d stale files)", stale)
	}
	// The fresh tail accepts the next record, and the compaction it triggers
	// (SnapshotEvery=1) deletes the stale file.
	cur := snap.Assignment.Clone()
	if err := recovered[0].Log.Append(patchRecord(cur, 1, "h0", "ubt1404")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	snap2 := testSnapshot("s1", 3)
	snap2.Version = 2
	snap2.Assignment = cur.Clone()
	snap2.Hash = cur.Hash()
	if err := recovered[0].Log.WriteSnapshot(snap2); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	entries, _ = os.ReadDir(sessDir(dir, "s1"))
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), staleSuffix) {
			t.Fatalf("compaction left stale segment %s behind", e.Name())
		}
	}
	m2.Close()

	m3 := openManager(t, Options{Dir: dir})
	recovered3, _, err := m3.Recover()
	if err != nil || len(recovered3) != 1 || recovered3[0].Snapshot.Version != 2 {
		t.Fatalf("recovery after stale rename: %v (%+v)", err, recovered3)
	}
}

// TestReservedSessionID pins that a session named after a reserved top-level
// file (FORMAT) lives under sessions/ and cannot clobber the format marker —
// which previously made every subsequent Open refuse to boot.
func TestReservedSessionID(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir})
	if _, err := m.Create(testSnapshot("FORMAT", 3)); err != nil {
		t.Fatalf("Create(FORMAT): %v", err)
	}
	m.Close()
	m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open after FORMAT session: %v", err)
	}
	defer m2.Close()
	recovered, skipped, err := m2.Recover()
	if err != nil || len(skipped) != 0 || len(recovered) != 1 || recovered[0].Snapshot.ID != "FORMAT" {
		t.Fatalf("Recover: %v (%d recovered, %d skipped)", err, len(recovered), len(skipped))
	}
}

// TestPartialFormatMarkerRewritten pins that an empty or torn-mid-write
// format marker reads as absent and is rewritten, instead of bricking the
// data directory.
func TestPartialFormatMarkerRewritten(t *testing.T) {
	for _, partial := range []string{"", "divd-w"} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, formatFile), []byte(partial), 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open with marker %q: %v", partial, err)
		}
		m.Close()
		raw, err := os.ReadFile(filepath.Join(dir, formatFile))
		if err != nil || string(raw) != formatV1 {
			t.Fatalf("marker %q not repaired: %q, %v", partial, raw, err)
		}
	}
}

func TestFormatGuard(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, formatFile), []byte("divd-wal v999\n"), 0o644)
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted an unknown format marker")
	}
}

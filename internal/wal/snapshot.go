package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"netdiversity/internal/netmodel"
)

// SessionSnapshot is the compacted state of one session: everything recovery
// needs to rebuild the tenant without replaying its whole history.  Snapshots
// are written temp-then-rename with a checksummed footer, so a snapshot file
// either validates completely or is ignored and recovery falls back to the
// previous one plus a longer log tail.
type SessionSnapshot struct {
	// ID is the session identifier; recovery cross-checks it against the
	// directory name so a misplaced file cannot impersonate another tenant.
	ID string `json:"id"`

	// Solver, Seed and MaxIterations restore the session's solver
	// configuration so post-recovery writes solve with the same knobs.
	Solver        string `json:"solver"`
	Seed          int64  `json:"seed"`
	MaxIterations int    `json:"max_iterations,omitempty"`

	// Version/Energy/Hash are the published state the snapshot captures;
	// Hash is verified against the serialized assignment on load.
	Version uint64  `json:"version"`
	Energy  float64 `json:"energy"`
	Hash    string  `json:"hash"`

	// Spec is the full network + constraints serialization.
	Spec netmodel.Spec `json:"spec"`

	// Assignment is the published assignment at Version.
	Assignment *netmodel.Assignment `json:"assignment"`

	// Similarity carries the serve plane's similarity spec opaquely, so the
	// WAL does not depend on serve-side types.
	Similarity json.RawMessage `json:"similarity,omitempty"`
}

// Snapshot files end with a fixed 16-byte footer:
//
//	[4B LE payload length][4B LE CRC32C of payload][8B magic]
//
// Putting the footer last means a torn snapshot write (crash before the
// final block reached disk) fails magic or length validation, and a torn
// payload fails the CRC — the file is complete if and only if the footer
// validates.  The rename only happens after the footer is written (and, per
// policy, fsynced), so a visible "snap-*.snap" name is already a strong
// signal; the footer makes it a checked guarantee.
const snapFooterSize = 16

var snapMagic = [8]byte{'D', 'I', 'V', 'S', 'N', 'A', 'P', '1'}

// errBadSnapshot marks a snapshot file that fails validation; recovery
// treats it as absent and falls back to an older snapshot.
var errBadSnapshot = errors.New("wal: invalid snapshot file")

func snapName(version uint64) string     { return fmt.Sprintf("snap-%016x.snap", version) }
func segName(firstVersion uint64) string { return fmt.Sprintf("wal-%016x.log", firstVersion) }

// writeSnapshotFile writes snap into dir using the temp-then-rename commit
// protocol, fsyncing file and directory when sync is true.  It returns the
// final path.  Crash points: FPMidSnapshot between the completed temp write
// and the rename, FPPostRename between the rename and the caller's cleanup.
func writeSnapshotFile(fs FS, dir string, snap *SessionSnapshot, sync bool) (string, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return "", fmt.Errorf("wal: encode snapshot: %w", err)
	}
	var footer [snapFooterSize]byte
	binary.LittleEndian.PutUint32(footer[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(footer[4:8], crc32.Checksum(payload, castagnoli))
	copy(footer[8:16], snapMagic[:])

	tmp := filepath.Join(dir, snapName(snap.Version)+".tmp")
	final := filepath.Join(dir, snapName(snap.Version))
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return "", err
	}
	if _, err := f.Write(footer[:]); err != nil {
		f.Close()
		return "", err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return "", err
		}
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := failpoint(FPMidSnapshot); err != nil {
		return "", err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return "", err
	}
	if err := failpoint(FPPostRename); err != nil {
		return final, err
	}
	if sync {
		if err := fs.SyncDir(dir); err != nil {
			return final, err
		}
	}
	return final, nil
}

// readSnapshotFile loads and validates a snapshot file: footer magic,
// length, payload CRC, and the journaled hash against the deserialized
// assignment.
func readSnapshotFile(fs FS, path string) (*SessionSnapshot, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if len(raw) < snapFooterSize {
		return nil, fmt.Errorf("%w: %s: too short", errBadSnapshot, filepath.Base(path))
	}
	footer := raw[len(raw)-snapFooterSize:]
	if [8]byte(footer[8:16]) != snapMagic {
		return nil, fmt.Errorf("%w: %s: bad magic", errBadSnapshot, filepath.Base(path))
	}
	length := binary.LittleEndian.Uint32(footer[0:4])
	if int(length) != len(raw)-snapFooterSize {
		return nil, fmt.Errorf("%w: %s: length mismatch", errBadSnapshot, filepath.Base(path))
	}
	payload := raw[:length]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(footer[4:8]) {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", errBadSnapshot, filepath.Base(path))
	}
	var snap SessionSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", errBadSnapshot, filepath.Base(path), err)
	}
	if snap.Assignment == nil {
		snap.Assignment = netmodel.NewAssignment()
	}
	if got := snap.Assignment.Hash(); got != snap.Hash {
		return nil, fmt.Errorf("%w: %s: assignment hash %s != journaled %s",
			errBadSnapshot, filepath.Base(path), got, snap.Hash)
	}
	return &snap, nil
}

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Log is one session's write-ahead log handle: the open tail segment plus
// append bookkeeping.  The serve plane calls Append under the session's
// writer slot, so a Log sees one appender at a time; the mutex exists for
// the background interval syncer and Close.
type Log struct {
	m   *Manager
	id  string
	dir string

	mu        sync.Mutex
	f         File
	segPath   string
	segBytes  int64
	unsynced  int64
	version   uint64 // version of the last appended record
	sinceSnap int    // records appended since the last snapshot
	buf       []byte // frame scratch, reused across appends
	closed    bool
}

// Version returns the version of the last record made durable-per-policy.
func (l *Log) Version() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.version
}

// Append journals one record and blocks until the policy's durability point:
// under SyncAlways the record is fsynced before return, under SyncInterval
// and SyncNever it has been written to the OS.  A nil return is the caller's
// licence to ack the client.  Any error leaves the manager degraded — the
// record may be partially on disk (a torn tail recovery will drop), so no
// further appends are accepted until a restart re-establishes disk state.
func (l *Log) Append(rec *Record) error {
	payload, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.m.degraded.Load() {
		return ErrDegraded
	}
	if rec.PrevVersion != l.version {
		return fmt.Errorf("wal: record chains from %d but log is at %d", rec.PrevVersion, l.version)
	}
	if err := failpoint(FPPreAppend); err != nil {
		l.m.degrade(err)
		return err
	}
	if l.segBytes >= l.m.opts.SegmentBytes {
		if err := l.rotate(rec.Version); err != nil {
			l.m.degrade(err)
			return err
		}
	}
	l.buf = appendFrame(l.buf[:0], payload)
	n, werr := l.f.Write(l.buf)
	l.segBytes += int64(n)
	l.unsynced += int64(n)
	l.m.appended.Add(int64(n))
	if werr != nil {
		l.m.degrade(werr)
		return werr
	}
	if err := failpoint(FPMidAppend); err != nil {
		l.m.degrade(err)
		return err
	}
	if l.m.opts.Policy == SyncAlways {
		if serr := l.f.Sync(); serr != nil {
			l.m.syncErrors.Add(1)
			l.m.degrade(serr)
			return serr
		}
		l.m.synced.Add(l.unsynced)
		l.unsynced = 0
	}
	l.version = rec.Version
	l.sinceSnap++
	l.m.records.Add(1)
	if err := failpoint(FPPostAppend); err != nil {
		l.m.degrade(err)
		return err
	}
	return nil
}

// staleSuffix marks a segment openLog renamed aside because its name
// collided with the fresh post-recovery tail.  Its frames are unreplayable
// (torn, corrupt, or off-chain); the file is kept for inspection until the
// next compaction deletes it.
const staleSuffix = ".stale"

// rotate closes the tail segment and opens a fresh one whose name carries
// the version of its first record.  Under a syncing policy the outgoing
// segment is fsynced before it closes: once rotated out, the file is beyond
// the background syncer's reach, so skipping the fsync here would leave
// acked records unsynced forever while crediting their bytes as synced.
// Called with l.mu held.
func (l *Log) rotate(firstVersion uint64) error {
	if l.m.opts.Policy != SyncNever && l.unsynced > 0 {
		if err := l.f.Sync(); err != nil {
			l.m.syncErrors.Add(1)
			return err
		}
		l.m.synced.Add(l.unsynced)
		l.unsynced = 0
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	path := filepath.Join(l.dir, segName(firstVersion))
	f, err := l.m.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.segPath = path
	l.segBytes = 0
	return nil
}

// ShouldSnapshot reports whether enough records accumulated since the last
// compacted snapshot to warrant writing a new one.
func (l *Log) ShouldSnapshot() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceSnap >= l.m.opts.SnapshotEvery
}

// WriteSnapshot writes a compacted snapshot of the session at the log's
// current version and truncates the log: the tail segment is rotated and
// every older segment and snapshot deleted.  The snapshot must capture
// exactly the state at Version().  Failure degrades the manager, except
// during cleanup: once the rename committed the snapshot, leftover old files
// are harmless (recovery skips records at or below the snapshot version) and
// are retried by the next compaction.
func (l *Log) WriteSnapshot(snap *SessionSnapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.m.degraded.Load() {
		return ErrDegraded
	}
	if err := failpoint(FPPreSnapshot); err != nil {
		l.m.degrade(err)
		return err
	}
	if snap.Version != l.version {
		return fmt.Errorf("wal: snapshot at version %d but log is at %d", snap.Version, l.version)
	}
	final, err := writeSnapshotFile(l.m.fs, l.dir, snap, l.m.opts.Policy != SyncNever)
	if err != nil {
		l.m.degrade(err)
		return err
	}
	// The snapshot is committed; rotate so the old tail can be deleted.
	if err := l.rotate(l.version + 1); err != nil {
		l.m.degrade(err)
		return err
	}
	l.sinceSnap = 0
	l.m.snapshots.Add(1)
	l.m.lastSnap.Store(snap.Version)
	l.m.synced.Add(l.unsynced)
	l.unsynced = 0
	l.cleanup(filepath.Base(final))
	return nil
}

// cleanup deletes every segment and snapshot other than the live tail
// segment and the snapshot just written, plus stray temp files.  Best
// effort: failures leave garbage that recovery tolerates and the next
// compaction retries.  Called with l.mu held.
func (l *Log) cleanup(keepSnap string) {
	entries, err := l.m.fs.ReadDir(l.dir)
	if err != nil {
		return
	}
	keepSeg := filepath.Base(l.segPath)
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == keepSeg || name == keepSnap:
		case strings.HasSuffix(name, ".tmp"),
			strings.HasSuffix(name, staleSuffix),
			strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"),
			strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			l.m.fs.Remove(filepath.Join(l.dir, name)) //nolint:errcheck // best effort
		}
	}
}

// sync flushes unsynced bytes; used by the interval syncer and Close.
func (l *Log) sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.unsynced == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.m.syncErrors.Add(1)
		l.m.degrade(err)
		return err
	}
	l.m.synced.Add(l.unsynced)
	l.unsynced = 0
	return nil
}

// closeSync fsyncs pending bytes and closes the tail segment.
func (l *Log) closeSync() error {
	serr := l.sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return serr
	}
	l.closed = true
	if err := l.f.Close(); err != nil && serr == nil {
		serr = err
	}
	return serr
}

// closeFile closes the tail segment without syncing (session deletion).
func (l *Log) closeFile() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.f.Close() //nolint:errcheck // directory is being removed
}

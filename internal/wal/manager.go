// Package wal is the persistence plane of the serving daemon: a per-session
// write-ahead log of accepted delta batches plus periodic compacted
// snapshots, with configurable fsync policy and crash recovery.
//
// Layout under the data directory:
//
//	<data-dir>/FORMAT                              format marker, refused if unknown
//	<data-dir>/sessions/<session-id>/snap-<v>.snap compacted snapshot at version v
//	<data-dir>/sessions/<session-id>/wal-<v>.log   log segment starting at version v
//
// A delta batch is acknowledged to the client only after its record reached
// the policy's durability point (see Policy).  Snapshots are written
// temp-then-rename with a checksummed footer and truncate the log by
// rotating to a fresh segment and deleting everything older.  On boot,
// Recover scans the directory, loads each session's newest valid snapshot,
// replays the log tail — tolerating a torn final record — and verifies every
// replayed record's journaled assignment hash.
//
// Disk failure degrades, never corrupts: the first persistence error marks
// the manager degraded, the serve plane sheds writes with 503 + Retry-After,
// and lock-free reads keep serving the last durably-acked state.  Degraded
// mode is sticky until restart — after an fsync error the kernel may have
// dropped dirty pages, so only a clean recovery re-establishes what is on
// disk (the lesson of the 2018 PostgreSQL fsync saga).
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects the durability point of an append: the moment after which
// the record is considered safe enough to ack.
type Policy int

const (
	// SyncNever writes each record to the OS before ack but never fsyncs.
	// Acked deltas survive a process crash (kill -9); an OS crash or power
	// loss may lose the tail.  The default: durability against the common
	// failure at near-zero latency cost.
	SyncNever Policy = iota
	// SyncInterval writes before ack and fsyncs in the background every
	// interval, bounding OS-crash loss to one interval of records.
	SyncInterval
	// SyncAlways fsyncs before ack: every acked delta survives OS crash and
	// power loss.  The strict mode the fault-injection matrix pins.
	SyncAlways
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// ParsePolicy parses a -fsync flag value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never", "":
		return SyncNever, nil
	default:
		return SyncNever, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Options configures a Manager.
type Options struct {
	// Dir is the data directory; created if missing.
	Dir string
	// Policy is the fsync policy (default SyncNever).
	Policy Policy
	// Interval is the background fsync period under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// SnapshotEvery is the number of records appended to a session's log
	// before the next write triggers a compacted snapshot (default 64).
	SnapshotEvery int
	// SegmentBytes rotates a log segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// FS overrides the filesystem, for fault-injection tests (default OS).
	FS FS
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 64
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FS == nil {
		o.FS = OS
	}
	return o
}

// formatFile guards against pointing divd at a directory written by an
// incompatible future format.
const formatFile = "FORMAT"
const formatV1 = "divd-wal v1\n"

// sessionsDir is the subdirectory holding per-session state.  Sessions live
// one level below the data dir so a session ID — client-chosen, within the
// validID alphabet — can never collide with a top-level file like the FORMAT
// marker.
const sessionsDir = "sessions"

// sessionDir returns the directory holding one session's snapshots and
// segments.
func (m *Manager) sessionDir(id string) string {
	return filepath.Join(m.opts.Dir, sessionsDir, id)
}

// ErrDegraded is returned by write operations after a persistence failure
// marked the manager degraded.  The serve plane maps it to 503.
var ErrDegraded = errors.New("wal: persistence degraded")

// Manager owns the data directory: one Log per live session plus the shared
// fsync policy, background syncer and degradation state.
type Manager struct {
	opts Options
	fs   FS

	degraded atomic.Bool
	lastErr  atomic.Pointer[string]

	// appended/synced count log bytes written vs durably fsynced; their
	// difference is the WAL lag healthz reports.  Under SyncNever nothing
	// ever counts as synced, so lag honestly reports the whole unsynced
	// tail.
	appended   atomic.Int64
	synced     atomic.Int64
	syncErrors atomic.Int64
	records    atomic.Int64
	snapshots  atomic.Int64
	lastSnap   atomic.Uint64
	recovered  atomic.Int64

	mu     sync.Mutex
	logs   map[string]*Log
	closed bool

	stopc  chan struct{}
	doneWg sync.WaitGroup
}

// Open prepares the data directory (creating it and the format marker if
// missing, refusing an unknown format) and starts the background syncer when
// the policy is SyncInterval.  It does not load sessions; call Recover.
func Open(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: data directory not set")
	}
	fs := opts.FS
	if err := fs.MkdirAll(filepath.Join(opts.Dir, sessionsDir), 0o755); err != nil {
		return nil, fmt.Errorf("wal: create data dir: %w", err)
	}
	marker := filepath.Join(opts.Dir, formatFile)
	var existing []byte
	if f, err := fs.OpenFile(marker, os.O_RDONLY, 0); err == nil {
		existing, err = io.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("wal: read format marker: %w", err)
		}
	}
	switch {
	case string(existing) == formatV1:
	case len(existing) == 0 || strings.HasPrefix(formatV1, string(existing)):
		// Absent, empty, or a partial first-boot write torn by a crash: the
		// marker is (re)written with the same temp-then-rename protocol as
		// snapshots, so no crash can leave a marker that blocks every later
		// boot.
		if err := writeFormatMarker(fs, opts.Dir, marker); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wal: data dir %s has unknown format %q", opts.Dir, strings.TrimSpace(string(existing)))
	}
	m := &Manager{
		opts:  opts,
		fs:    fs,
		logs:  make(map[string]*Log),
		stopc: make(chan struct{}),
	}
	if opts.Policy == SyncInterval {
		m.doneWg.Add(1)
		go m.syncLoop()
	}
	return m, nil
}

// writeFormatMarker commits the format marker atomically: temp file, fsync,
// rename, directory sync.  Always fsynced regardless of policy — it is a
// one-time write whose loss would otherwise be repaired only on the next
// boot.
func writeFormatMarker(fs FS, dir, marker string) error {
	tmp := marker + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: write format marker: %w", err)
	}
	if _, err := io.WriteString(f, formatV1); err != nil {
		f.Close()
		return fmt.Errorf("wal: write format marker: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: write format marker: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: write format marker: %w", err)
	}
	if err := fs.Rename(tmp, marker); err != nil {
		return fmt.Errorf("wal: write format marker: %w", err)
	}
	fs.SyncDir(dir) //nolint:errcheck // best effort: an unsynced rename is repaired on the next boot
	return nil
}

// Policy returns the manager's fsync policy.
func (m *Manager) Policy() Policy { return m.opts.Policy }

// Degraded reports whether a persistence failure has put the manager into
// sticky read-only degradation.
func (m *Manager) Degraded() bool { return m.degraded.Load() }

// degrade records a persistence failure and flips the manager degraded.
func (m *Manager) degrade(err error) {
	if err == nil {
		return
	}
	s := err.Error()
	m.lastErr.Store(&s)
	m.degraded.Store(true)
}

// Stats is the persistence block healthz exposes.
type Stats struct {
	// Policy is the active fsync policy.
	Policy string `json:"policy"`
	// Degraded is true after a persistence failure; writes are shed.
	Degraded bool `json:"degraded"`
	// WalLagBytes is the number of appended log bytes not yet fsynced.
	WalLagBytes int64 `json:"wal_lag_bytes"`
	// Records is the total number of records appended since boot.
	Records int64 `json:"records"`
	// Snapshots is the number of compacted snapshots written since boot.
	Snapshots int64 `json:"snapshots"`
	// LastSnapshotVersion is the version of the newest snapshot written
	// since boot (0 when none).
	LastSnapshotVersion uint64 `json:"last_snapshot_version"`
	// SyncErrors counts fsync failures.
	SyncErrors int64 `json:"sync_errors"`
	// SessionsRecovered counts sessions restored by boot recovery.
	SessionsRecovered int64 `json:"sessions_recovered"`
	// LastError is the most recent persistence error, if any.
	LastError string `json:"last_error,omitempty"`
}

// Stats returns a snapshot of the persistence counters.
func (m *Manager) Stats() Stats {
	st := Stats{
		Policy:              m.opts.Policy.String(),
		Degraded:            m.degraded.Load(),
		WalLagBytes:         m.appended.Load() - m.synced.Load(),
		Records:             m.records.Load(),
		Snapshots:           m.snapshots.Load(),
		LastSnapshotVersion: m.lastSnap.Load(),
		SyncErrors:          m.syncErrors.Load(),
		SessionsRecovered:   m.recovered.Load(),
	}
	if p := m.lastErr.Load(); p != nil {
		st.LastError = *p
	}
	return st
}

// validID mirrors the serve plane's session-ID alphabet and additionally
// rejects "." and ".." so a session ID can never escape the data directory.
func validID(id string) bool {
	if id == "" || len(id) > 64 || id == "." || id == ".." {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Create initialises persistence for a new session: a fresh directory, an
// initial snapshot at the session's creation version, and an open log
// segment.  Any leftover on-disk state under the same ID (an earlier
// incarnation that was deleted or failed recovery) is wiped first — the
// serve plane guarantees the ID is not live.
func (m *Manager) Create(snap *SessionSnapshot) (*Log, error) {
	if m.degraded.Load() {
		return nil, ErrDegraded
	}
	if !validID(snap.ID) {
		return nil, fmt.Errorf("wal: invalid session id %q", snap.ID)
	}
	dir := m.sessionDir(snap.ID)
	if err := m.fs.RemoveAll(dir); err != nil {
		m.degrade(err)
		return nil, err
	}
	if err := m.fs.MkdirAll(dir, 0o755); err != nil {
		m.degrade(err)
		return nil, err
	}
	if _, err := writeSnapshotFile(m.fs, dir, snap, m.opts.Policy != SyncNever); err != nil {
		m.degrade(err)
		return nil, err
	}
	l, err := m.openLog(snap.ID, dir, snap.Version, 0)
	if err != nil {
		m.degrade(err)
		return nil, err
	}
	m.snapshots.Add(1)
	m.lastSnap.Store(snap.Version)
	return l, nil
}

// openLog opens a fresh segment at version+1 and registers the log.  The WAL
// never truncates an existing segment's bytes: if a non-empty file already
// holds the target name (a stale tail recovery could not replay — its frames
// are torn, corrupt, or off-chain), it is renamed aside and deleted at the
// next compaction, so no upstream logic error can silently destroy durable
// records.
func (m *Manager) openLog(id, dir string, version uint64, sinceSnap int) (*Log, error) {
	path := filepath.Join(dir, segName(version+1))
	if st, err := m.fs.Stat(path); err == nil && st.Size() > 0 {
		if err := m.fs.Rename(path, path+staleSuffix); err != nil {
			return nil, err
		}
	}
	f, err := m.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{
		m:         m,
		id:        id,
		dir:       dir,
		f:         f,
		segPath:   path,
		version:   version,
		sinceSnap: sinceSnap,
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		f.Close()
		return nil, errors.New("wal: manager closed")
	}
	m.logs[id] = l
	return l, nil
}

// Remove tears down persistence for a deleted session: the log is closed and
// the session directory removed.  Removal failures degrade the manager (the
// directory would resurrect a deleted session on the next boot).
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	l := m.logs[id]
	delete(m.logs, id)
	m.mu.Unlock()
	if l != nil {
		l.closeFile()
	}
	if !validID(id) {
		return fmt.Errorf("wal: invalid session id %q", id)
	}
	if err := m.fs.RemoveAll(m.sessionDir(id)); err != nil {
		m.degrade(err)
		return err
	}
	return nil
}

// Close stops the background syncer and closes every session log, fsyncing
// pending bytes (best effort) so a clean shutdown loses nothing even under
// SyncNever... at least as far as the OS is concerned.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	logs := make([]*Log, 0, len(m.logs))
	for _, l := range m.logs {
		logs = append(logs, l)
	}
	m.mu.Unlock()
	close(m.stopc)
	m.doneWg.Wait()
	var first error
	for _, l := range logs {
		if err := l.closeSync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// syncLoop is the SyncInterval background fsync goroutine.
func (m *Manager) syncLoop() {
	defer m.doneWg.Done()
	t := time.NewTicker(m.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopc:
			return
		case <-t.C:
			m.syncAll()
		}
	}
}

// syncAll fsyncs every log with unsynced bytes.
func (m *Manager) syncAll() {
	m.mu.Lock()
	logs := make([]*Log, 0, len(m.logs))
	for _, l := range m.logs {
		logs = append(logs, l)
	}
	m.mu.Unlock()
	for _, l := range logs {
		l.sync() //nolint:errcheck // degradation is recorded by sync itself
	}
}

package bayes

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// chainSetup builds a simple chain entry -> m -> target with a single
// service, two products with similarity crossSim, and the diversified
// assignment entry=A, m=B, target=A.
func chainSetup(t *testing.T, crossSim float64) (*netmodel.Network, *netmodel.Assignment, *vulnsim.SimilarityTable) {
	t.Helper()
	net := netmodel.New()
	for _, id := range []netmodel.HostID{"entry", "m", "target"} {
		h := &netmodel.Host{
			ID:       id,
			Services: []netmodel.ServiceID{"os"},
			Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"A", "B"}},
		}
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddLink("entry", "m"); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("m", "target"); err != nil {
		t.Fatal(err)
	}
	a := netmodel.NewAssignment()
	a.Set("entry", "os", "A")
	a.Set("m", "os", "B")
	a.Set("target", "os", "A")
	sim := vulnsim.NewSimilarityTable([]string{"A", "B"})
	_ = sim.SetTotal("A", 10)
	_ = sim.SetTotal("B", 10)
	_ = sim.Set("A", "B", crossSim, int(crossSim*10))
	return net, a, sim
}

func TestBuildValidation(t *testing.T) {
	net, a, sim := chainSetup(t, 0.5)
	if _, err := Build(nil, a, sim, Config{Entry: "entry", Target: "target"}); err == nil {
		t.Error("nil network should be rejected")
	}
	if _, err := Build(net, a, sim, Config{Entry: "missing", Target: "target"}); !errors.Is(err, ErrNoEntry) {
		t.Errorf("unknown entry should return ErrNoEntry, got %v", err)
	}
	if _, err := Build(net, a, sim, Config{Entry: "entry", Target: "missing"}); !errors.Is(err, ErrNoTarget) {
		t.Errorf("unknown target should return ErrNoTarget, got %v", err)
	}

	disconnected := netmodel.New()
	for _, id := range []netmodel.HostID{"a", "b"} {
		h := &netmodel.Host{
			ID:       id,
			Services: []netmodel.ServiceID{"os"},
			Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"A"}},
		}
		if err := disconnected.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	da := netmodel.NewAssignment()
	da.Set("a", "os", "A")
	da.Set("b", "os", "A")
	if _, err := Build(disconnected, da, sim, Config{Entry: "a", Target: "b"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("unreachable target should return ErrUnreachable, got %v", err)
	}
}

func TestChainProbabilityExact(t *testing.T) {
	// With a vanishing base rate, the chain A -B- A with similarity 0.5
	// gives P(target) = 0.5 * 0.5 = 0.25 exactly.
	net, a, sim := chainSetup(t, 0.5)
	g, err := Build(net, a, sim, Config{Entry: "entry", Target: "target", PAvg: 1e-12, Choice: ChooseBest})
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.TargetProbability(InferenceOptions{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.25) > 1e-6 {
		t.Errorf("P(target) = %v, want 0.25", p)
	}
	pNoSim, err := g.TargetProbabilityNoSim(InferenceOptions{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if pNoSim > 1e-9 {
		t.Errorf("P'(target) with vanishing base rate should be ~0, got %v", pNoSim)
	}
}

func TestChainProbabilityWithBaseRate(t *testing.T) {
	net, a, sim := chainSetup(t, 0.0)
	cfg := Config{Entry: "entry", Target: "target", PAvg: 0.3}
	g, err := Build(net, a, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.TargetProbability(InferenceOptions{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	// Zero similarity: every step succeeds with exactly PAvg.
	if math.Abs(p-0.09) > 1e-9 {
		t.Errorf("P(target) = %v, want 0.09", p)
	}
	pNoSim, err := g.TargetProbabilityNoSim(InferenceOptions{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-pNoSim) > 1e-9 {
		t.Error("with zero similarity P and P' must coincide")
	}
}

func TestMonteCarloMatchesExact(t *testing.T) {
	net, a, sim := chainSetup(t, 0.5)
	g, err := Build(net, a, sim, Config{Entry: "entry", Target: "target", PAvg: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.TargetProbability(InferenceOptions{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := g.TargetProbability(InferenceOptions{Method: MonteCarlo, Samples: 300000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-mc) > 0.01 {
		t.Errorf("Monte Carlo %v deviates from exact %v", mc, exact)
	}
}

func TestChooseBestVersusUniform(t *testing.T) {
	// Two services: one identical product pair (sim 1), one disjoint pair.
	net := netmodel.New()
	for _, id := range []netmodel.HostID{"u", "v"} {
		h := &netmodel.Host{
			ID:       id,
			Services: []netmodel.ServiceID{"s1", "s2"},
			Choices: map[netmodel.ServiceID][]netmodel.ProductID{
				"s1": {"A"}, "s2": {"X", "Y"},
			},
		}
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddLink("u", "v"); err != nil {
		t.Fatal(err)
	}
	a := netmodel.NewAssignment()
	a.Set("u", "s1", "A")
	a.Set("u", "s2", "X")
	a.Set("v", "s1", "A")
	a.Set("v", "s2", "Y")
	sim := vulnsim.NewSimilarityTable([]string{"A", "X", "Y"})

	best, err := Build(net, a, sim, Config{Entry: "u", Target: "v", PAvg: 0.1, Choice: ChooseBest})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Build(net, a, sim, Config{Entry: "u", Target: "v", PAvg: 0.1, Choice: ChooseUniform})
	if err != nil {
		t.Fatal(err)
	}
	pBest, _ := best.TargetProbability(InferenceOptions{Method: Exact})
	pUniform, _ := uniform.TargetProbability(InferenceOptions{Method: Exact})
	if pBest <= pUniform {
		t.Errorf("reconnaissance attacker should do at least as well: best %v vs uniform %v", pBest, pUniform)
	}
	if math.Abs(pBest-1.0) > 1e-9 {
		t.Errorf("best-choice attacker faces an identical product, P should be 1, got %v", pBest)
	}
}

func TestExploitServiceRestriction(t *testing.T) {
	// When the attacker has no exploit for any service present on the path,
	// no attack edge is feasible and the compromise probability is zero.
	net, a, sim := chainSetup(t, 0.9)
	cfg := Config{Entry: "entry", Target: "target", PAvg: 0.2, ExploitServices: []netmodel.ServiceID{"db"}}
	g, err := Build(net, a, sim, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("no attack edge should be feasible, got %d", g.NumEdges())
	}
	p, err := g.TargetProbability(InferenceOptions{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("P(target) = %v, want 0", p)
	}
}

func TestDiversityMetric(t *testing.T) {
	net, a, sim := chainSetup(t, 0.5)
	cfg := Config{Entry: "entry", Target: "target", PAvg: 0.2}
	res, err := Diversity(net, a, sim, cfg, InferenceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diversity <= 0 || res.Diversity > 1 {
		t.Errorf("d_bn = %v outside (0,1]", res.Diversity)
	}
	if res.PTarget < res.PTargetNoSim {
		t.Error("P with similarity must be at least P' (the boosted model)")
	}

	// A homogeneous assignment must score strictly lower diversity.
	mono := netmodel.NewAssignment()
	mono.Set("entry", "os", "A")
	mono.Set("m", "os", "A")
	mono.Set("target", "os", "A")
	monoRes, err := Diversity(net, mono, sim, cfg, InferenceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if monoRes.Diversity >= res.Diversity {
		t.Errorf("mono diversity %v should be below diversified %v", monoRes.Diversity, res.Diversity)
	}

	incomplete := netmodel.NewAssignment()
	if _, err := Diversity(net, incomplete, sim, cfg, InferenceOptions{}); err == nil {
		t.Error("incomplete assignment should be rejected")
	}
}

func TestProbabilityBoundsProperty(t *testing.T) {
	f := func(simValue float64, pavg float64) bool {
		s := math.Abs(math.Mod(simValue, 1))
		p := 0.05 + math.Abs(math.Mod(pavg, 0.9))
		if p >= 1 {
			p = 0.5
		}
		net, a, table := chainSetup(t, s)
		g, err := Build(net, a, table, Config{Entry: "entry", Target: "target", PAvg: p})
		if err != nil {
			return false
		}
		prob, err := g.TargetProbability(InferenceOptions{Method: Exact})
		if err != nil {
			return false
		}
		probNo, err := g.TargetProbabilityNoSim(InferenceOptions{Method: Exact})
		if err != nil {
			return false
		}
		return prob >= 0 && prob <= 1 && probNo >= 0 && probNo <= 1 && prob+1e-12 >= probNo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAncestorsOfTarget(t *testing.T) {
	net, a, sim := chainSetup(t, 0.5)
	// Add a dead-end leaf that is not on any path to the target.
	leaf := &netmodel.Host{
		ID:       "leaf",
		Services: []netmodel.ServiceID{"os"},
		Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"A", "B"}},
	}
	if err := net.AddHost(leaf); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("m", "leaf"); err != nil {
		t.Fatal(err)
	}
	a.Set("leaf", "os", "B")
	g, err := Build(net, a, sim, Config{Entry: "entry", Target: "target"})
	if err != nil {
		t.Fatal(err)
	}
	anc := g.AncestorsOfTarget()
	for _, idx := range anc {
		if g.Nodes[idx].Host == "leaf" {
			t.Error("leaf must not be an ancestor of the target")
		}
	}
	if len(anc) != 3 {
		t.Errorf("ancestors = %d, want 3 (entry, m, target)", len(anc))
	}
	if g.NumEdges() < 3 {
		t.Errorf("graph should include the leaf edge, got %d edges", g.NumEdges())
	}
}

func TestLog10(t *testing.T) {
	if !math.IsInf(Log10(0), -1) {
		t.Error("Log10(0) should be -inf")
	}
	if math.Abs(Log10(0.01)+2) > 1e-12 {
		t.Error("Log10(0.01) should be -2")
	}
}

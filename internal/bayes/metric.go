package bayes

import (
	"fmt"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// MetricResult reports the BN-based diversity metric of Definition 6 for one
// assignment.
type MetricResult struct {
	// PTarget is P(target = T) accounting for product similarity.
	PTarget float64
	// PTargetNoSim is P'(target = T) ignoring similarity (P_avg only).
	PTargetNoSim float64
	// Diversity is d_bn = PTargetNoSim / PTarget.
	Diversity float64
	// LogPTarget and LogPTargetNoSim are the base-10 logarithms, matching
	// the presentation of Table V.
	LogPTarget      float64
	LogPTargetNoSim float64
	// Nodes and Edges describe the attack BN that was evaluated.
	Nodes, Edges int
}

// String renders the result in the style of a Table V row.
func (m MetricResult) String() string {
	return fmt.Sprintf("logP'=%.3f logP=%.3f d_bn=%.5f",
		m.LogPTargetNoSim, m.LogPTarget, m.Diversity)
}

// Diversity computes the BN-based diversity metric d_bn for an assignment.
// The assignment must be complete for the network.
func Diversity(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable, cfg Config, opts InferenceOptions) (MetricResult, error) {
	if err := a.ValidateFor(net); err != nil {
		return MetricResult{}, fmt.Errorf("bayes: %w", err)
	}
	g, err := Build(net, a, sim, cfg)
	if err != nil {
		return MetricResult{}, err
	}
	pSim, err := g.TargetProbability(opts)
	if err != nil {
		return MetricResult{}, err
	}
	pNoSim, err := g.TargetProbabilityNoSim(opts)
	if err != nil {
		return MetricResult{}, err
	}
	res := MetricResult{
		PTarget:         pSim,
		PTargetNoSim:    pNoSim,
		LogPTarget:      Log10(pSim),
		LogPTargetNoSim: Log10(pNoSim),
		Nodes:           len(g.Nodes),
		Edges:           g.NumEdges(),
	}
	if pSim > 0 {
		res.Diversity = pNoSim / pSim
	}
	return res, nil
}

package bayes

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// InferenceMethod selects how the compromise probability is computed.
type InferenceMethod int

const (
	// Auto uses exact enumeration when the number of relevant ancestor
	// nodes is small enough and Monte Carlo sampling otherwise.
	Auto InferenceMethod = iota
	// Exact forces exact enumeration (exponential in the number of ancestor
	// nodes; only usable on small graphs).
	Exact
	// MonteCarlo forces forward sampling.
	MonteCarlo
)

// InferenceOptions configures probability computation.
type InferenceOptions struct {
	// Method selects the inference algorithm.  Default Auto.
	Method InferenceMethod
	// Samples is the number of Monte Carlo samples.  Default 200000.
	Samples int
	// Seed makes sampling deterministic.
	Seed int64
	// ExactLimit is the largest number of ancestor nodes for which Auto
	// still uses exact enumeration.  Default 20.
	ExactLimit int
}

func (o InferenceOptions) withDefaults() InferenceOptions {
	if o.Samples <= 0 {
		o.Samples = 200000
	}
	if o.ExactLimit <= 0 {
		o.ExactLimit = 20
	}
	return o
}

// errTooLarge is returned by exact inference when the graph is too big.
var errTooLarge = errors.New("bayes: graph too large for exact enumeration")

// edgeProb selects which probability annotation of a parent edge to use.
type edgeProb func(ParentEdge) float64

func withSimProb(e ParentEdge) float64    { return e.WithSim }
func withoutSimProb(e ParentEdge) float64 { return e.WithoutSim }

// TargetProbability computes P(target = T) accounting for product similarity.
func (g *Graph) TargetProbability(opts InferenceOptions) (float64, error) {
	return g.probability(withSimProb, opts)
}

// TargetProbabilityNoSim computes P'(target = T), the probability when
// product similarity is ignored and every step succeeds with P_avg.
func (g *Graph) TargetProbabilityNoSim(opts InferenceOptions) (float64, error) {
	return g.probability(withoutSimProb, opts)
}

func (g *Graph) probability(pf edgeProb, opts InferenceOptions) (float64, error) {
	opts = opts.withDefaults()
	ancestors := g.AncestorsOfTarget()
	switch opts.Method {
	case Exact:
		return g.exact(pf, ancestors)
	case MonteCarlo:
		return g.sample(pf, ancestors, opts), nil
	default:
		if len(ancestors) <= opts.ExactLimit {
			p, err := g.exact(pf, ancestors)
			if err == nil {
				return p, nil
			}
			if !errors.Is(err, errTooLarge) {
				return 0, err
			}
		}
		return g.sample(pf, ancestors, opts), nil
	}
}

// exact enumerates every joint state of the ancestor nodes (excluding the
// entry, which is always compromised) and sums the probability of states in
// which the target is compromised.  Nodes are processed in topological
// (index) order, so a node's parents always precede it.
func (g *Graph) exact(pf edgeProb, ancestors []int) (float64, error) {
	// Map graph node index -> position among ancestors.
	pos := make(map[int]int, len(ancestors))
	ordered := append([]int(nil), ancestors...)
	sort.Ints(ordered)
	for i, n := range ordered {
		pos[n] = i
	}
	free := 0
	for _, n := range ordered {
		if n != g.Entry {
			free++
		}
	}
	if free > 30 {
		return 0, fmt.Errorf("%w: %d free nodes", errTooLarge, free)
	}
	targetPos, ok := pos[g.Target]
	if !ok {
		return 0, errors.New("bayes: target not among its own ancestors")
	}

	total := 0.0
	states := make([]bool, len(ordered))
	var enumerate func(idx int, prob float64)
	enumerate = func(idx int, prob float64) {
		if prob == 0 {
			return
		}
		if idx == len(ordered) {
			if states[targetPos] {
				total += prob
			}
			return
		}
		node := ordered[idx]
		if node == g.Entry {
			states[idx] = true
			enumerate(idx+1, prob)
			return
		}
		// Noisy-OR over compromised parents.
		pInfect := 0.0
		escape := 1.0
		for _, pe := range g.Nodes[node].Parents {
			ppos, ok := pos[pe.Parent]
			if !ok || !states[ppos] {
				continue
			}
			escape *= 1 - pf(pe)
		}
		pInfect = 1 - escape
		states[idx] = true
		enumerate(idx+1, prob*pInfect)
		states[idx] = false
		enumerate(idx+1, prob*(1-pInfect))
	}
	enumerate(0, 1.0)
	return total, nil
}

// sample estimates the target probability by forward sampling: in each run
// the entry is compromised and every other ancestor node is compromised with
// its noisy-OR probability given its parents' sampled states.
func (g *Graph) sample(pf edgeProb, ancestors []int, opts InferenceOptions) float64 {
	ordered := append([]int(nil), ancestors...)
	sort.Ints(ordered)
	rng := rand.New(rand.NewSource(opts.Seed))
	states := make([]bool, len(g.Nodes))
	hits := 0
	for s := 0; s < opts.Samples; s++ {
		for _, n := range ordered {
			states[n] = false
		}
		states[g.Entry] = true
		for _, n := range ordered {
			if n == g.Entry {
				continue
			}
			escape := 1.0
			for _, pe := range g.Nodes[n].Parents {
				if states[pe.Parent] {
					escape *= 1 - pf(pe)
				}
			}
			p := 1 - escape
			if p > 0 && rng.Float64() < p {
				states[n] = true
			}
		}
		if states[g.Target] {
			hits++
		}
	}
	return float64(hits) / float64(opts.Samples)
}

// Log10 is a small helper for reporting probabilities in the paper's
// log-scale form; it returns -inf for zero probabilities.
func Log10(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log10(p)
}

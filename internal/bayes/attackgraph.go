// Package bayes implements the Bayesian-network based evaluation of network
// diversity (Section VI of the paper): given a network, a product assignment
// and a similarity table it constructs an attack Bayesian network rooted at
// the entry host, computes the probability of the target host becoming
// compromised, and derives the diversity metric
//
//	d_bn = P'(target = T) / P(target = T)
//
// where P' ignores product similarity (every exploit step succeeds with the
// average zero-day propagation rate P_avg) and P accounts for it.
//
// Modelling note (documented in EXPERIMENTS.md): the per-service success
// probability with similarity is P_avg + (1-P_avg)·sim(p_u, p_v), i.e. the
// average zero-day rate boosted by the vulnerability similarity of the two
// products.  This keeps P ≥ P' for every assignment, hence d_bn ∈ (0, 1]
// with larger values indicating higher diversity, exactly as Definition 6
// requires.
package bayes

import (
	"errors"
	"fmt"
	"sort"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// AttackerChoice selects how the attacker picks among multiple exploitable
// services on an edge.
type AttackerChoice int

const (
	// ChooseUniform models the Definition 6 attacker: when multiple exploits
	// are feasible the attacker picks one uniformly at random, so the edge
	// infection probability is the mean of the per-service probabilities.
	ChooseUniform AttackerChoice = iota + 1
	// ChooseBest models the reconnaissance attacker of the NetLogo
	// simulation: the edge infection probability is the maximum per-service
	// probability.
	ChooseBest
)

// Config parameterises the attack Bayesian network.
type Config struct {
	// Entry is the initially compromised host (prior probability 1).
	Entry netmodel.HostID
	// Target is the host whose compromise probability defines the metric.
	Target netmodel.HostID
	// PAvg is the average zero-day propagation rate used when product
	// similarity is ignored.  Default 0.2.
	PAvg float64
	// ExploitServices restricts which services the attacker holds zero-day
	// exploits for; nil means every service (the case study gives the
	// attacker one exploit per service: OS, browser, database).
	ExploitServices []netmodel.ServiceID
	// Choice selects the attacker's per-edge service choice rule.
	// Default ChooseUniform.
	Choice AttackerChoice
}

func (c Config) withDefaults() Config {
	if c.PAvg <= 0 || c.PAvg >= 1 {
		c.PAvg = 0.2
	}
	if c.Choice == 0 {
		c.Choice = ChooseUniform
	}
	return c
}

func (c Config) allowsService(s netmodel.ServiceID) bool {
	if len(c.ExploitServices) == 0 {
		return true
	}
	for _, e := range c.ExploitServices {
		if e == s {
			return true
		}
	}
	return false
}

// Node is one host node of the attack Bayesian network.
type Node struct {
	Host netmodel.HostID
	// Depth is the BFS distance from the entry host.
	Depth int
	// Parents lists incoming attack edges.
	Parents []ParentEdge
}

// ParentEdge is a directed attack step from a parent host into the node,
// annotated with the per-service success probabilities.
type ParentEdge struct {
	// Parent is the index of the parent node in Graph.Nodes.
	Parent int
	// WithSim is the success probability accounting for product similarity.
	WithSim float64
	// WithoutSim is the success probability using only P_avg.
	WithoutSim float64
	// PerService records the with-similarity probability of each feasible
	// service, keyed by service, for reporting.
	PerService map[netmodel.ServiceID]float64
}

// Graph is the attack Bayesian network: a DAG over the hosts reachable from
// the entry, layered by BFS distance (attack steps only go from a host to a
// host at equal or greater distance; equal-distance ties are oriented by host
// ID, which keeps the graph acyclic while preserving every shortest and
// near-shortest attack path).
type Graph struct {
	Nodes  []Node
	Index  map[netmodel.HostID]int
	Entry  int
	Target int
	cfg    Config
}

// Errors returned by Build.
var (
	ErrNoEntry     = errors.New("bayes: entry host not in network")
	ErrNoTarget    = errors.New("bayes: target host not in network")
	ErrUnreachable = errors.New("bayes: target not reachable from entry")
)

// Build constructs the attack Bayesian network for a network, assignment and
// similarity table under the given configuration.
func Build(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable, cfg Config) (*Graph, error) {
	if net == nil || a == nil || sim == nil {
		return nil, errors.New("bayes: network, assignment and similarity table must not be nil")
	}
	cfg = cfg.withDefaults()
	if _, ok := net.Host(cfg.Entry); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoEntry, cfg.Entry)
	}
	if _, ok := net.Host(cfg.Target); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTarget, cfg.Target)
	}
	dist := net.ShortestPathLengths(cfg.Entry)
	if _, ok := dist[cfg.Target]; !ok {
		return nil, fmt.Errorf("%w: %q from %q", ErrUnreachable, cfg.Target, cfg.Entry)
	}

	// Deterministic node order: by depth, then host ID.
	type hostDepth struct {
		host  netmodel.HostID
		depth int
	}
	reachable := make([]hostDepth, 0, len(dist))
	for h, d := range dist {
		reachable = append(reachable, hostDepth{host: h, depth: d})
	}
	sort.Slice(reachable, func(i, j int) bool {
		if reachable[i].depth != reachable[j].depth {
			return reachable[i].depth < reachable[j].depth
		}
		return reachable[i].host < reachable[j].host
	})

	g := &Graph{Index: make(map[netmodel.HostID]int, len(reachable)), cfg: cfg}
	for _, hd := range reachable {
		g.Index[hd.host] = len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{Host: hd.host, Depth: hd.depth})
	}
	g.Entry = g.Index[cfg.Entry]
	g.Target = g.Index[cfg.Target]

	// Directed attack edges: u -> v when (depth_u, id_u) < (depth_v, id_v).
	for vi := range g.Nodes {
		v := &g.Nodes[vi]
		for _, nb := range net.Neighbors(v.Host) {
			ui, ok := g.Index[nb]
			if !ok {
				continue
			}
			u := g.Nodes[ui]
			if u.Depth > v.Depth || (u.Depth == v.Depth && u.Host >= v.Host) {
				continue
			}
			edge, feasible := edgeProbabilities(net, a, sim, cfg, u.Host, v.Host)
			if !feasible {
				continue
			}
			edge.Parent = ui
			v.Parents = append(v.Parents, edge)
		}
	}
	return g, nil
}

// edgeProbabilities computes the with/without-similarity success probability
// of an attack step from host u to host v.
func edgeProbabilities(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable, cfg Config, u, v netmodel.HostID) (ParentEdge, bool) {
	perService := make(map[netmodel.ServiceID]float64)
	var withSim []float64
	for _, s := range net.SharedServices(u, v) {
		if !cfg.allowsService(s) {
			continue
		}
		pu, oku := a.Get(u, s)
		pv, okv := a.Get(v, s)
		if !oku || !okv {
			continue
		}
		similarity := sim.Sim(string(pu), string(pv))
		p := cfg.PAvg + (1-cfg.PAvg)*similarity
		perService[s] = p
		withSim = append(withSim, p)
	}
	if len(withSim) == 0 {
		return ParentEdge{}, false
	}
	edge := ParentEdge{PerService: perService, WithoutSim: cfg.PAvg}
	switch cfg.Choice {
	case ChooseBest:
		best := withSim[0]
		for _, p := range withSim[1:] {
			if p > best {
				best = p
			}
		}
		edge.WithSim = best
	default:
		sum := 0.0
		for _, p := range withSim {
			sum += p
		}
		edge.WithSim = sum / float64(len(withSim))
	}
	return edge, true
}

// NumEdges returns the number of directed attack edges in the graph.
func (g *Graph) NumEdges() int {
	n := 0
	for _, node := range g.Nodes {
		n += len(node.Parents)
	}
	return n
}

// AncestorsOfTarget returns the indices of nodes from which the target is
// reachable (including the target itself); only these influence the target's
// compromise probability.
func (g *Graph) AncestorsOfTarget() []int {
	children := make([][]int, len(g.Nodes))
	for vi, node := range g.Nodes {
		for _, pe := range node.Parents {
			children[pe.Parent] = append(children[pe.Parent], vi)
		}
	}
	// Reverse reachability from target over parent edges.
	marked := make([]bool, len(g.Nodes))
	stack := []int{g.Target}
	marked[g.Target] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pe := range g.Nodes[cur].Parents {
			if !marked[pe.Parent] {
				marked[pe.Parent] = true
				stack = append(stack, pe.Parent)
			}
		}
	}
	var out []int
	for i, m := range marked {
		if m {
			out = append(out, i)
		}
	}
	return out
}

package netmodel

import (
	"errors"
	"strings"
	"testing"
)

func TestAssignmentBasics(t *testing.T) {
	a := NewAssignment()
	a.Set("h1", "os", "win7")
	a.Set("h1", "db", "mysql")
	a.Set("h2", "os", "deb80")

	if p, ok := a.Get("h1", "os"); !ok || p != "win7" {
		t.Errorf("Get(h1,os) = %v %v", p, ok)
	}
	if _, ok := a.Get("h1", "wb"); ok {
		t.Error("unset pair should not be found")
	}
	if got := a.Product("h2", "os"); got != "deb80" {
		t.Errorf("Product = %v", got)
	}
	if got := a.Product("missing", "os"); got != "" {
		t.Errorf("Product of missing host = %q, want empty", got)
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d, want 3", a.Len())
	}
	hosts := a.Hosts()
	if len(hosts) != 2 || hosts[0] != "h1" || hosts[1] != "h2" {
		t.Errorf("Hosts = %v", hosts)
	}
	m := a.HostAssignment("h1")
	if len(m) != 2 {
		t.Errorf("HostAssignment = %v", m)
	}
	m["os"] = "mutated"
	if a.Product("h1", "os") == "mutated" {
		t.Error("HostAssignment must return a copy")
	}
}

func TestAssignmentCloneEqual(t *testing.T) {
	a := NewAssignment()
	a.Set("h1", "os", "win7")
	b := a.Clone()
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("clone should be equal")
	}
	b.Set("h1", "os", "deb80")
	if a.Equal(b) {
		t.Error("different product should not be equal")
	}
	c := a.Clone()
	c.Set("h2", "os", "win7")
	if a.Equal(c) {
		t.Error("different size should not be equal")
	}
}

func TestAssignmentValidateFor(t *testing.T) {
	net := New()
	if err := net.AddHost(testHost("a", "os", "db")); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHost(testHost("b", "os")); err != nil {
		t.Fatal(err)
	}

	a := NewAssignment()
	a.Set("a", "os", "p1")
	if err := a.ValidateFor(net); !errors.Is(err, ErrIncomplete) {
		t.Errorf("incomplete assignment should return ErrIncomplete, got %v", err)
	}
	a.Set("a", "db", "p2")
	a.Set("b", "os", "p3")
	if err := a.ValidateFor(net); err != nil {
		t.Fatalf("complete assignment should validate: %v", err)
	}

	bad := a.Clone()
	bad.Set("a", "os", "not_a_candidate")
	if err := bad.ValidateFor(net); err == nil {
		t.Error("non-candidate product should be rejected")
	}
	extraHost := a.Clone()
	extraHost.Set("zz", "os", "p1")
	if err := extraHost.ValidateFor(net); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("unknown host should be rejected, got %v", err)
	}
	extraSvc := a.Clone()
	extraSvc.Set("b", "db", "p1")
	if err := extraSvc.ValidateFor(net); err == nil {
		t.Error("service not provided by the host should be rejected")
	}
}

func TestAssignmentStats(t *testing.T) {
	net := New()
	for _, id := range []HostID{"a", "b", "c"} {
		if err := net.AddHost(testHost(id, "os")); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddLink("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("b", "c"); err != nil {
		t.Fatal(err)
	}
	a := NewAssignment()
	a.Set("a", "os", "p1")
	a.Set("b", "os", "p1")
	a.Set("c", "os", "p2")
	st := a.Stats(net)
	if st.DistinctProducts["os"] != 2 {
		t.Errorf("DistinctProducts = %d, want 2", st.DistinctProducts["os"])
	}
	if st.SameProductEdges["os"] != 1 {
		t.Errorf("SameProductEdges = %d, want 1", st.SameProductEdges["os"])
	}
	if st.TotalSharedEdges["os"] != 2 {
		t.Errorf("TotalSharedEdges = %d, want 2", st.TotalSharedEdges["os"])
	}
}

func TestAssignmentStringAndDiff(t *testing.T) {
	a := NewAssignment()
	a.Set("h1", "os", "win7")
	a.Set("h1", "db", "mysql")
	s := a.String()
	if !strings.Contains(s, "h1:") || !strings.Contains(s, "os=win7") {
		t.Errorf("String() = %q", s)
	}

	b := a.Clone()
	b.Set("h1", "os", "deb80")
	b.Set("h2", "os", "win7")
	diff := a.Diff(b)
	if len(diff) != 2 {
		t.Fatalf("Diff = %v, want 2 entries", diff)
	}
	if !strings.Contains(diff[0], "h1/os: win7 -> deb80") {
		t.Errorf("Diff[0] = %q", diff[0])
	}
	if !strings.Contains(diff[1], "<none>") {
		t.Errorf("Diff[1] should mention the missing assignment: %q", diff[1])
	}
	if got := a.Diff(a.Clone()); len(got) != 0 {
		t.Errorf("Diff with itself = %v, want empty", got)
	}
}

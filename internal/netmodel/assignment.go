package netmodel

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Assignment is a product assignment α of Definition 3: for every host and
// every service it provides, the product chosen to deliver that service.
type Assignment struct {
	products map[HostID]map[ServiceID]ProductID
}

// NewAssignment creates an empty assignment.
func NewAssignment() *Assignment {
	return &Assignment{products: make(map[HostID]map[ServiceID]ProductID)}
}

// Set records α'(h, s) = p.
func (a *Assignment) Set(h HostID, s ServiceID, p ProductID) {
	m, ok := a.products[h]
	if !ok {
		m = make(map[ServiceID]ProductID)
		a.products[h] = m
	}
	m[s] = p
}

// Get returns α'(h, s) and whether it is assigned.
func (a *Assignment) Get(h HostID, s ServiceID) (ProductID, bool) {
	p, ok := a.products[h][s]
	return p, ok
}

// Product returns α'(h, s) or "" when unassigned.
func (a *Assignment) Product(h HostID, s ServiceID) ProductID {
	return a.products[h][s]
}

// HostAssignment returns a copy of α(h, S_h): all products assigned to the
// host, keyed by service.
func (a *Assignment) HostAssignment(h HostID) map[ServiceID]ProductID {
	src := a.products[h]
	out := make(map[ServiceID]ProductID, len(src))
	for s, p := range src {
		out[s] = p
	}
	return out
}

// Hosts returns the hosts that have at least one assigned service, sorted.
func (a *Assignment) Hosts() []HostID {
	out := make([]HostID, 0, len(a.products))
	for h := range a.products {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the total number of (host, service) pairs assigned.
func (a *Assignment) Len() int {
	n := 0
	for _, m := range a.products {
		n += len(m)
	}
	return n
}

// SetHost replaces the host's whole service→product map with a copy of m.
// An empty or nil m removes the host from the assignment.  It is the patch
// primitive of the persistence plane: a WAL record stores the full post-state
// map of every changed host, so replay replaces host maps wholesale instead
// of merging individual services.
func (a *Assignment) SetHost(h HostID, m map[ServiceID]ProductID) {
	if len(m) == 0 {
		delete(a.products, h)
		return
	}
	mm := make(map[ServiceID]ProductID, len(m))
	for s, p := range m {
		mm[s] = p
	}
	a.products[h] = mm
}

// RemoveHost drops every assignment of the host.
func (a *Assignment) RemoveHost(h HostID) { delete(a.products, h) }

// Hash returns a stable FNV-1a fingerprint of the assignment covering every
// (host, service, product) triple in sorted order.  It is the determinism
// fingerprint the serving API exposes as assignment_hash and the integrity
// check the WAL journals with every record: recovery recomputes it over the
// replayed state and compares against the value journaled at write time.
func (a *Assignment) Hash() string {
	if a == nil {
		return ""
	}
	h := fnv.New64a()
	for _, host := range a.Hosts() {
		m := a.products[host]
		services := make([]ServiceID, 0, len(m))
		for s := range m {
			services = append(services, s)
		}
		sort.Slice(services, func(i, j int) bool { return services[i] < services[j] })
		for _, svc := range services {
			fmt.Fprintf(h, "%s\x00%s\x00%s\n", host, svc, m[svc])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// DiffHosts compares the assignment against a previous one, returning the
// per-host changes that turn prev into a: changed maps every host whose
// service→product map is new or different to a copy of its full current map,
// and removed lists (sorted) the hosts present in prev but absent now.  A WAL
// record carries exactly this pair, so replay is a sequence of SetHost and
// RemoveHost calls (see ApplyPatch) — compact for incremental re-solves that
// move a few hosts, complete when a cold fallback reshuffles everything.
func (a *Assignment) DiffHosts(prev *Assignment) (changed map[HostID]map[ServiceID]ProductID, removed []HostID) {
	changed = make(map[HostID]map[ServiceID]ProductID)
	for h, m := range a.products {
		var pm map[ServiceID]ProductID
		if prev != nil {
			pm = prev.products[h]
		}
		same := len(pm) == len(m)
		if same {
			for s, p := range m {
				if pp, ok := pm[s]; !ok || pp != p {
					same = false
					break
				}
			}
		}
		if !same {
			mm := make(map[ServiceID]ProductID, len(m))
			for s, p := range m {
				mm[s] = p
			}
			changed[h] = mm
		}
	}
	if prev != nil {
		for h := range prev.products {
			if _, ok := a.products[h]; !ok {
				removed = append(removed, h)
			}
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return changed, removed
}

// ApplyPatch applies a DiffHosts result in place: removed hosts are dropped,
// changed hosts have their whole map replaced.  Applying the patch produced
// by cur.DiffHosts(prev) to a clone of prev yields an assignment equal to
// cur — the replay invariant the WAL's recovery tests pin.
func (a *Assignment) ApplyPatch(changed map[HostID]map[ServiceID]ProductID, removed []HostID) {
	for _, h := range removed {
		delete(a.products, h)
	}
	for h, m := range changed {
		a.SetHost(h, m)
	}
}

// Clone returns a deep copy of the assignment.
func (a *Assignment) Clone() *Assignment {
	c := NewAssignment()
	for h, m := range a.products {
		for s, p := range m {
			c.Set(h, s, p)
		}
	}
	return c
}

// Equal reports whether two assignments assign exactly the same products.
func (a *Assignment) Equal(b *Assignment) bool {
	if a.Len() != b.Len() {
		return false
	}
	for h, m := range a.products {
		for s, p := range m {
			if bp, ok := b.Get(h, s); !ok || bp != p {
				return false
			}
		}
	}
	return true
}

// ErrIncomplete is returned by ValidateFor when the assignment misses a
// (host, service) pair required by the network.
var ErrIncomplete = errors.New("netmodel: incomplete assignment")

// ValidateFor checks that the assignment is complete and consistent for the
// network: every (host, service) pair is assigned one of the host's candidate
// products and no extraneous hosts or services appear.
func (a *Assignment) ValidateFor(n *Network) error {
	for _, hid := range n.Hosts() {
		h, _ := n.Host(hid)
		for _, s := range h.Services {
			p, ok := a.Get(hid, s)
			if !ok {
				return fmt.Errorf("%w: host %q service %q", ErrIncomplete, hid, s)
			}
			if h.CandidateIndex(s, p) < 0 {
				return fmt.Errorf("netmodel: host %q service %q assigned %q which is not a candidate",
					hid, s, p)
			}
		}
	}
	for h, m := range a.products {
		host, ok := n.Host(h)
		if !ok {
			return fmt.Errorf("%w: assigned host %q", ErrUnknownHost, h)
		}
		for s := range m {
			if !host.HasService(s) {
				return fmt.Errorf("netmodel: host %q does not provide assigned service %q", h, s)
			}
		}
	}
	return nil
}

// DiversityStats summarises how diverse an assignment is, independent of any
// similarity table: for every service, how many distinct products are used
// and how many links connect hosts using the identical product.
type DiversityStats struct {
	// DistinctProducts counts distinct products per service.
	DistinctProducts map[ServiceID]int
	// SameProductEdges counts, per service, links whose two endpoints run
	// the identical product for that service.
	SameProductEdges map[ServiceID]int
	// TotalSharedEdges counts, per service, links whose endpoints both
	// provide the service (the denominator for SameProductEdges).
	TotalSharedEdges map[ServiceID]int
}

// Stats computes DiversityStats of the assignment over the network.
func (a *Assignment) Stats(n *Network) DiversityStats {
	st := DiversityStats{
		DistinctProducts: make(map[ServiceID]int),
		SameProductEdges: make(map[ServiceID]int),
		TotalSharedEdges: make(map[ServiceID]int),
	}
	distinct := make(map[ServiceID]map[ProductID]struct{})
	for _, hid := range n.Hosts() {
		h, _ := n.Host(hid)
		for _, s := range h.Services {
			p, ok := a.Get(hid, s)
			if !ok {
				continue
			}
			if distinct[s] == nil {
				distinct[s] = make(map[ProductID]struct{})
			}
			distinct[s][p] = struct{}{}
		}
	}
	for s, set := range distinct {
		st.DistinctProducts[s] = len(set)
	}
	for _, l := range n.Links() {
		for _, s := range n.SharedServices(l.A, l.B) {
			pa, oka := a.Get(l.A, s)
			pb, okb := a.Get(l.B, s)
			if !oka || !okb {
				continue
			}
			st.TotalSharedEdges[s]++
			if pa == pb {
				st.SameProductEdges[s]++
			}
		}
	}
	return st
}

// String renders the assignment sorted by host then service, one host per
// line, e.g. "c1: os=win7 web_browser=ie10".
func (a *Assignment) String() string {
	hosts := a.Hosts()
	var b strings.Builder
	for _, h := range hosts {
		m := a.products[h]
		services := make([]ServiceID, 0, len(m))
		for s := range m {
			services = append(services, s)
		}
		sort.Slice(services, func(i, j int) bool { return services[i] < services[j] })
		b.WriteString(string(h))
		b.WriteString(":")
		for _, s := range services {
			fmt.Fprintf(&b, " %s=%s", s, m[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Diff returns the hosts/services on which two assignments differ, rendered
// as "host/service: a -> b" lines sorted lexicographically.  Used to report
// how constrained solutions deviate from the unconstrained optimum (the red
// squares of Fig. 4(b)).
func (a *Assignment) Diff(b *Assignment) []string {
	var out []string
	seen := make(map[string]struct{})
	add := func(h HostID, s ServiceID, pa, pb ProductID) {
		key := string(h) + "/" + string(s)
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = struct{}{}
		if pa != pb {
			out = append(out, fmt.Sprintf("%s/%s: %s -> %s", h, s, orNone(pa), orNone(pb)))
		}
	}
	for h, m := range a.products {
		for s, pa := range m {
			pb, _ := b.Get(h, s)
			add(h, s, pa, pb)
		}
	}
	for h, m := range b.products {
		for s, pb := range m {
			pa, _ := a.Get(h, s)
			add(h, s, pa, pb)
		}
	}
	sort.Strings(out)
	return out
}

func orNone(p ProductID) string {
	if p == "" {
		return "<none>"
	}
	return string(p)
}

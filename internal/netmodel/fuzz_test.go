package netmodel

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// FuzzDeltaRoundTrip guards the delta serialisation surface that divopt
// -watch depends on: any delta that decodes and validates must survive an
// encode/decode round trip unchanged.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte(`{"ops":[{"op":"add_edge","a":"h1","b":"h2"}]}`))
	f.Add([]byte(`{"ops":[{"op":"remove_host","id":"h1"}]}`))
	f.Add([]byte(`{"ops":[{"op":"add_host","host":{"id":"x","services":["os"],"choices":{"os":["p1"]}}}]}`))
	f.Add([]byte(`{"ops":[{"op":"update_services","id":"h1","services":["os"],"choices":{"os":["p1","p2"]},"preference":{"os":{"p1":0.5}}}]}`))
	f.Add([]byte(`{"ops":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Delta
		if err := json.Unmarshal(data, &d); err != nil {
			return // malformed input: rejection is the correct behaviour
		}
		if err := d.Validate(); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeDeltas(&buf, []Delta{d}); err != nil {
			t.Fatalf("valid delta failed to encode: %v", err)
		}
		got, err := NewDeltaDecoder(bytes.NewReader(buf.Bytes())).Next()
		if err != nil {
			t.Fatalf("re-decode of encoded delta failed: %v", err)
		}
		a, _ := json.Marshal(d)
		b, _ := json.Marshal(got)
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip changed the delta:\n in: %s\nout: %s", a, b)
		}
		if _, err := NewDeltaDecoder(bytes.NewReader(buf.Bytes())).Next(); err == io.EOF {
			t.Fatal("decoder returned EOF for a non-empty stream")
		}
	})
}

// FuzzDeltaStream guards the streaming decode loop against damaged tails:
// whatever bytes arrive, the decoder must never panic, and it must never
// report a clean io.EOF when the stream ends inside a delta object — a
// truncated tail (the on-disk signature of a crash mid-write) has to be
// distinguishable from a complete stream, or a replayer would silently
// treat half a delta as "done".
func FuzzDeltaStream(f *testing.F) {
	valid := []byte(`{"ops":[{"op":"add_edge","a":"h1","b":"h2"}]}` + "\n" +
		`{"ops":[{"op":"remove_host","id":"h1"}]}` + "\n")
	f.Add(valid)
	// Truncated tails: the second object cut mid-value, mid-string, mid-key.
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:len(valid)-12])
	f.Add(valid[:bytes.LastIndex(valid, []byte(`"op"`))+2])
	// Bit-flipped copies of a valid stream (structure or content damage).
	for _, i := range []int{1, 9, 20, len(valid) - 5} {
		bad := append([]byte(nil), valid...)
		bad[i] ^= 0x20
		f.Add(bad)
	}
	f.Add([]byte(`{"ops":[]}` + "\n" + `garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDeltaDecoder(bytes.NewReader(data))
		var decoded []Delta
		var streamErr error
		for {
			d, err := dec.Next()
			if err != nil {
				streamErr = err
				break
			}
			decoded = append(decoded, d)
			if len(decoded) > 1<<16 {
				t.Fatal("decoder produced an implausible number of deltas")
			}
		}
		if streamErr == io.EOF {
			// A clean EOF promises the stream was whole: every decoded delta
			// must re-encode, and the re-encoded stream must decode to the
			// same count — the round trip a WAL-style replayer relies on.
			var buf bytes.Buffer
			if err := EncodeDeltas(&buf, decoded); err != nil {
				t.Fatalf("cleanly-decoded deltas failed to re-encode: %v", err)
			}
			re := NewDeltaDecoder(bytes.NewReader(buf.Bytes()))
			for i := range decoded {
				if _, err := re.Next(); err != nil {
					t.Fatalf("re-decode stopped at %d/%d: %v", i, len(decoded), err)
				}
			}
			if _, err := re.Next(); err != io.EOF {
				t.Fatalf("re-decoded stream did not end cleanly: %v", err)
			}
		}
	})
}

// TestDeltaDecoderTruncatedTail pins the clean-EOF vs corruption contract
// directly: a stream cut anywhere inside its final object must surface a
// non-EOF error, and every complete prefix boundary must end with io.EOF.
func TestDeltaDecoderTruncatedTail(t *testing.T) {
	stream := []byte(`{"ops":[{"op":"add_edge","a":"h1","b":"h2"}]}` + "\n" +
		`{"ops":[{"op":"update_services","id":"h2","services":["os"],"choices":{"os":["p1"]}}]}` + "\n")
	drain := func(data []byte) (int, error) {
		dec := NewDeltaDecoder(bytes.NewReader(data))
		n := 0
		for {
			if _, err := dec.Next(); err != nil {
				return n, err
			}
			n++
		}
	}
	if n, err := drain(stream); n != 2 || err != io.EOF {
		t.Fatalf("whole stream: %d deltas, %v", n, err)
	}
	firstEnd := bytes.IndexByte(stream, '\n') + 1
	if n, err := drain(stream[:firstEnd]); n != 1 || err != io.EOF {
		t.Fatalf("one-object prefix: %d deltas, %v", n, err)
	}
	// Every cut inside the second object is a truncation, never clean EOF.
	for cut := firstEnd + 1; cut < len(stream)-1; cut++ {
		n, err := drain(stream[:cut])
		if err == io.EOF {
			t.Fatalf("cut at %d: truncated tail reported clean EOF after %d deltas", cut, n)
		}
	}
	// A flipped bit inside a structural byte is corruption, not EOF.
	bad := append([]byte(nil), stream...)
	bad[0] ^= 0x40
	if _, err := drain(bad); err == nil || err == io.EOF {
		t.Fatalf("bit-flipped stream: %v", err)
	}
}

// FuzzSpecRoundTrip covers the network spec surface the watch mode loads its
// initial network from.
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add([]byte(`{"hosts":[{"id":"a","services":["os"],"choices":{"os":["p1"]}}],"links":[]}`))
	f.Add([]byte(`{"hosts":[{"id":"a","services":["os"],"choices":{"os":["p1"]}},{"id":"b","services":["os"],"choices":{"os":["p1","p2"]}}],"links":[{"a":"a","b":"b"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		net, cs, err := ReadSpec(bytes.NewReader(data))
		if err != nil {
			return // malformed specs must error, not panic
		}
		var buf bytes.Buffer
		if err := WriteSpec(&buf, net, cs); err != nil {
			t.Fatalf("valid network failed to encode: %v", err)
		}
		net2, _, err := ReadSpec(&buf)
		if err != nil {
			t.Fatalf("re-decode of encoded spec failed: %v", err)
		}
		if net.NumHosts() != net2.NumHosts() || net.NumLinks() != net2.NumLinks() {
			t.Fatalf("round trip changed the network: %d/%d hosts, %d/%d links",
				net.NumHosts(), net2.NumHosts(), net.NumLinks(), net2.NumLinks())
		}
	})
}

package netmodel

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// FuzzDeltaRoundTrip guards the delta serialisation surface that divopt
// -watch depends on: any delta that decodes and validates must survive an
// encode/decode round trip unchanged.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte(`{"ops":[{"op":"add_edge","a":"h1","b":"h2"}]}`))
	f.Add([]byte(`{"ops":[{"op":"remove_host","id":"h1"}]}`))
	f.Add([]byte(`{"ops":[{"op":"add_host","host":{"id":"x","services":["os"],"choices":{"os":["p1"]}}}]}`))
	f.Add([]byte(`{"ops":[{"op":"update_services","id":"h1","services":["os"],"choices":{"os":["p1","p2"]},"preference":{"os":{"p1":0.5}}}]}`))
	f.Add([]byte(`{"ops":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Delta
		if err := json.Unmarshal(data, &d); err != nil {
			return // malformed input: rejection is the correct behaviour
		}
		if err := d.Validate(); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeDeltas(&buf, []Delta{d}); err != nil {
			t.Fatalf("valid delta failed to encode: %v", err)
		}
		got, err := NewDeltaDecoder(bytes.NewReader(buf.Bytes())).Next()
		if err != nil {
			t.Fatalf("re-decode of encoded delta failed: %v", err)
		}
		a, _ := json.Marshal(d)
		b, _ := json.Marshal(got)
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip changed the delta:\n in: %s\nout: %s", a, b)
		}
		if _, err := NewDeltaDecoder(bytes.NewReader(buf.Bytes())).Next(); err == io.EOF {
			t.Fatal("decoder returned EOF for a non-empty stream")
		}
	})
}

// FuzzSpecRoundTrip covers the network spec surface the watch mode loads its
// initial network from.
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add([]byte(`{"hosts":[{"id":"a","services":["os"],"choices":{"os":["p1"]}}],"links":[]}`))
	f.Add([]byte(`{"hosts":[{"id":"a","services":["os"],"choices":{"os":["p1"]}},{"id":"b","services":["os"],"choices":{"os":["p1","p2"]}}],"links":[{"a":"a","b":"b"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		net, cs, err := ReadSpec(bytes.NewReader(data))
		if err != nil {
			return // malformed specs must error, not panic
		}
		var buf bytes.Buffer
		if err := WriteSpec(&buf, net, cs); err != nil {
			t.Fatalf("valid network failed to encode: %v", err)
		}
		net2, _, err := ReadSpec(&buf)
		if err != nil {
			t.Fatalf("re-decode of encoded spec failed: %v", err)
		}
		if net.NumHosts() != net2.NumHosts() || net.NumLinks() != net2.NumLinks() {
			t.Fatalf("round trip changed the network: %d/%d hosts, %d/%d links",
				net.NumHosts(), net2.NumHosts(), net.NumLinks(), net2.NumLinks())
		}
	})
}

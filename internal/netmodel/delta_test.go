package netmodel

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func deltaTestNetwork(t *testing.T) *Network {
	t.Helper()
	n := New()
	for _, id := range []HostID{"a", "b", "c"} {
		h := &Host{
			ID:       id,
			Services: []ServiceID{"os", "db"},
			Choices: map[ServiceID][]ProductID{
				"os": {"linux", "windows"},
				"db": {"pg", "mysql"},
			},
		}
		if err := n.AddHost(h); err != nil {
			t.Fatalf("AddHost(%s): %v", id, err)
		}
	}
	for _, l := range [][2]HostID{{"a", "b"}, {"b", "c"}} {
		if err := n.AddLink(l[0], l[1]); err != nil {
			t.Fatalf("AddLink(%s,%s): %v", l[0], l[1], err)
		}
	}
	return n
}

func TestRemoveHost(t *testing.T) {
	n := deltaTestNetwork(t)
	if err := n.RemoveHost("b"); err != nil {
		t.Fatalf("RemoveHost: %v", err)
	}
	if n.NumHosts() != 2 || n.NumLinks() != 0 {
		t.Fatalf("after RemoveHost: hosts=%d links=%d, want 2/0", n.NumHosts(), n.NumLinks())
	}
	if _, ok := n.Host("b"); ok {
		t.Fatal("removed host still present")
	}
	if got := n.Neighbors("a"); len(got) != 0 {
		t.Fatalf("neighbour list of a not cleaned: %v", got)
	}
	if err := n.RemoveHost("b"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("double remove: got %v, want ErrUnknownHost", err)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate after removal: %v", err)
	}
}

func TestRemoveEdge(t *testing.T) {
	n := deltaTestNetwork(t)
	if err := n.RemoveEdge("b", "a"); err != nil { // reversed endpoints
		t.Fatalf("RemoveEdge: %v", err)
	}
	if n.Connected("a", "b") {
		t.Fatal("edge still present after RemoveEdge")
	}
	if err := n.RemoveEdge("a", "b"); err != nil {
		t.Fatalf("idempotent RemoveEdge: %v", err)
	}
	if err := n.RemoveEdge("a", "zz"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("RemoveEdge with unknown host: got %v", err)
	}
}

func TestUpdateHostServices(t *testing.T) {
	n := deltaTestNetwork(t)
	choices := map[ServiceID][]ProductID{"os": {"bsd", "linux"}}
	pref := map[ServiceID]map[ProductID]float64{"os": {"bsd": 0.9}}
	if err := n.UpdateHostServices("a", []ServiceID{"os"}, choices, pref); err != nil {
		t.Fatalf("UpdateHostServices: %v", err)
	}
	h, _ := n.Host("a")
	if len(h.Services) != 1 || h.Services[0] != "os" {
		t.Fatalf("services not replaced: %v", h.Services)
	}
	if got := h.Choices["os"]; len(got) != 2 || got[0] != "bsd" {
		t.Fatalf("choices not replaced: %v", got)
	}
	// The caller's maps must have been deep-copied.
	choices["os"][0] = "corrupted"
	if h.Choices["os"][0] != "bsd" {
		t.Fatal("UpdateHostServices did not deep-copy choices")
	}
	if err := n.UpdateHostServices("a", nil, nil, nil); !errors.Is(err, ErrNoServices) {
		t.Fatalf("empty services: got %v", err)
	}
	if err := n.UpdateHostServices("a", []ServiceID{"os"}, nil, nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("missing candidates: got %v", err)
	}
}

func TestJournalRecordsMutations(t *testing.T) {
	n := deltaTestNetwork(t)
	n.BeginJournal()
	newHost := &Host{
		ID:       "d",
		Services: []ServiceID{"os"},
		Choices:  map[ServiceID][]ProductID{"os": {"linux"}},
	}
	if err := n.AddHost(newHost); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEdge("d", "a"); err != nil {
		t.Fatal(err)
	}
	if err := n.RemoveEdge("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := n.RemoveHost("c"); err != nil {
		t.Fatal(err)
	}
	if err := n.UpdateHostServices("a", []ServiceID{"os"}, map[ServiceID][]ProductID{"os": {"linux"}}, nil); err != nil {
		t.Fatal(err)
	}
	d := n.TakeJournal()
	kinds := []DeltaOpKind{OpAddHost, OpAddEdge, OpRemoveEdge, OpRemoveHost, OpUpdateHostServices}
	if len(d.Ops) != len(kinds) {
		t.Fatalf("journal has %d ops, want %d: %+v", len(d.Ops), len(kinds), d.Ops)
	}
	for i, k := range kinds {
		if d.Ops[i].Op != k {
			t.Fatalf("op %d is %s, want %s", i, d.Ops[i].Op, k)
		}
	}
	// Replaying the journal on a snapshot must reproduce the mutated network.
	replay := deltaTestNetwork(t)
	if err := d.Apply(replay); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !sameTopology(n, replay) {
		t.Fatal("journal replay does not reproduce the mutated network")
	}
	// TakeJournal stopped recording.
	if err := n.RemoveEdge("a", "d"); err != nil {
		t.Fatal(err)
	}
	if d2 := n.TakeJournal(); !d2.Empty() {
		t.Fatalf("recording continued after TakeJournal: %+v", d2)
	}
}

func sameTopology(a, b *Network) bool {
	if a.NumHosts() != b.NumHosts() || a.NumLinks() != b.NumLinks() {
		return false
	}
	for _, id := range a.Hosts() {
		ha, _ := a.Host(id)
		hb, ok := b.Host(id)
		if !ok || len(ha.Services) != len(hb.Services) {
			return false
		}
		for _, s := range ha.Services {
			if !hb.HasService(s) || len(ha.Choices[s]) != len(hb.Choices[s]) {
				return false
			}
		}
	}
	for _, l := range a.Links() {
		if !b.Connected(l.A, l.B) {
			return false
		}
	}
	return true
}

func TestDeltaJSONRoundTrip(t *testing.T) {
	spec := SpecOfHost(&Host{
		ID:       "x",
		Services: []ServiceID{"os"},
		Choices:  map[ServiceID][]ProductID{"os": {"linux", "bsd"}},
		Preference: map[ServiceID]map[ProductID]float64{
			"os": {"linux": 0.7},
		},
	})
	deltas := []Delta{
		{Ops: []DeltaOp{{Op: OpAddHost, Host: &spec}, {Op: OpAddEdge, A: "x", B: "a"}}},
		{Ops: []DeltaOp{{Op: OpRemoveEdge, A: "x", B: "a"}, {Op: OpRemoveHost, ID: "x"}}},
		{Ops: []DeltaOp{{Op: OpUpdateHostServices, ID: "a",
			Services: []ServiceID{"os"},
			Choices:  map[ServiceID][]ProductID{"os": {"linux"}}}}},
	}
	var buf bytes.Buffer
	if err := EncodeDeltas(&buf, deltas); err != nil {
		t.Fatalf("EncodeDeltas: %v", err)
	}
	dec := NewDeltaDecoder(&buf)
	var got []Delta
	for {
		d, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, d)
	}
	if len(got) != len(deltas) {
		t.Fatalf("decoded %d deltas, want %d", len(got), len(deltas))
	}
	if got[0].Ops[0].Host == nil || got[0].Ops[0].Host.ID != "x" {
		t.Fatalf("add_host payload lost: %+v", got[0].Ops[0])
	}
	if got[2].Ops[0].Choices["os"][0] != "linux" {
		t.Fatalf("update_services payload lost: %+v", got[2].Ops[0])
	}
}

func TestDeltaValidate(t *testing.T) {
	bad := []DeltaOp{
		{Op: "nonsense"},
		{Op: OpAddHost},
		{Op: OpRemoveHost},
		{Op: OpAddEdge, A: "a"},
		{Op: OpRemoveEdge, B: "b"},
		{Op: OpUpdateHostServices, ID: "a"},
	}
	for _, op := range bad {
		if err := op.Validate(); err == nil {
			t.Errorf("op %+v validated, want error", op)
		}
	}
	if err := (Delta{Ops: []DeltaOp{{Op: OpRemoveHost, ID: "a"}}}).Validate(); err != nil {
		t.Errorf("valid delta rejected: %v", err)
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	n := deltaTestNetwork(t)
	d := Delta{Ops: []DeltaOp{
		{Op: OpRemoveEdge, A: "a", B: "b"},
		{Op: OpRemoveHost, ID: "does-not-exist"},
	}}
	if err := d.Apply(n); err == nil {
		t.Fatal("Apply with unknown host succeeded")
	}
	// The first (valid) op stays applied.
	if n.Connected("a", "b") {
		t.Fatal("earlier op rolled back; journal replay should be prefix-applied")
	}
}

// TestBatchCheckerCrossDeltaOverlay pins the batch contract: each delta of a
// batch validates against the network plus the accumulated effect of the
// previously accepted deltas, and serial Check+Apply of the accepted deltas
// agrees with the batch checker's verdicts.
func TestBatchCheckerCrossDeltaOverlay(t *testing.T) {
	newHost := func(id HostID) *HostSpec {
		return &HostSpec{ID: id, Services: []ServiceID{"os"}, Choices: map[ServiceID][]ProductID{"os": {"linux"}}}
	}
	n := deltaTestNetwork(t)
	b := NewBatchChecker(n)

	// Delta 1 adds host d: accepted.
	d1 := Delta{Ops: []DeltaOp{{Op: OpAddHost, Host: newHost("d")}}}
	if err := b.Check(d1); err != nil {
		t.Fatalf("delta 1: %v", err)
	}
	// Delta 2 wires d into the graph: only valid because delta 1's add is
	// visible through the overlay.
	d2 := Delta{Ops: []DeltaOp{{Op: OpAddEdge, A: "a", B: "d"}}}
	if err := b.Check(d2); err != nil {
		t.Fatalf("delta 2: %v", err)
	}
	// Delta 3 re-adds d: must be rejected as a duplicate (overlay says it
	// exists even though the network does not).
	d3 := Delta{Ops: []DeltaOp{{Op: OpAddHost, Host: newHost("d")}}}
	if err := b.Check(d3); err == nil {
		t.Fatal("duplicate add through the overlay accepted")
	}
	// Delta 4 removes d: still valid — the rejected delta 3 must not have
	// disturbed the overlay.
	d4 := Delta{Ops: []DeltaOp{{Op: OpRemoveHost, ID: "d"}}}
	if err := b.Check(d4); err != nil {
		t.Fatalf("delta 4 after rejected delta 3: %v", err)
	}
	// Delta 5 references the now-removed d: rejected.
	d5 := Delta{Ops: []DeltaOp{{Op: OpAddEdge, A: "b", B: "d"}}}
	if err := b.Check(d5); err == nil {
		t.Fatal("edge to batch-removed host accepted")
	}

	// The batch checker never touched the network.
	if n.NumHosts() != 3 || n.NumLinks() != 2 {
		t.Fatalf("checker mutated the network: %d hosts %d links", n.NumHosts(), n.NumLinks())
	}
	// Replaying the accepted deltas serially agrees with the verdicts.
	for i, d := range []Delta{d1, d2, d4} {
		if err := d.Apply(n); err != nil {
			t.Fatalf("accepted delta %d failed to apply: %v", i, err)
		}
	}
	if err := d5.Check(n); err == nil {
		t.Fatal("rejected delta validates after serial replay")
	}
}

// TestBatchCheckerFailedDeltaDiscardsStage pins that a delta failing halfway
// through (a valid prefix before the failing op) leaves no trace in the
// checker — the per-delta all-or-nothing contract.
func TestBatchCheckerFailedDeltaDiscardsStage(t *testing.T) {
	newHost := func(id HostID) *HostSpec {
		return &HostSpec{ID: id, Services: []ServiceID{"os"}, Choices: map[ServiceID][]ProductID{"os": {"linux"}}}
	}
	n := deltaTestNetwork(t)
	b := NewBatchChecker(n)
	// Adds x (valid prefix) then fails on a ghost host.
	bad := Delta{Ops: []DeltaOp{
		{Op: OpAddHost, Host: newHost("x")},
		{Op: OpRemoveHost, ID: "ghost"},
	}}
	if err := b.Check(bad); err == nil {
		t.Fatal("delta with failing op accepted")
	}
	// x must not exist in the overlay: re-adding it is valid.
	if err := b.Check(Delta{Ops: []DeltaOp{{Op: OpAddHost, Host: newHost("x")}}}); err != nil {
		t.Fatalf("staged add leaked out of a rejected delta: %v", err)
	}
}

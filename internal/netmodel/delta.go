package netmodel

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Real networks churn: hosts join and leave, services get upgraded,
// vulnerability data refreshes.  Instead of forcing callers to rebuild a
// Network (and every structure derived from it) on each change, the network
// exposes a mutation API — AddHost, RemoveHost, AddEdge, RemoveEdge,
// UpdateHostServices — and can record those mutations into a change journal.
// The journal entries form a Delta: a serialisable, replayable description of
// an evolution step that downstream consumers (the incremental optimiser in
// internal/core, the watch mode of cmd/divopt) apply without re-deriving the
// whole model from scratch.

// DeltaOpKind names one mutation in a Delta.
type DeltaOpKind string

// The delta operation kinds, matching the Network mutation API.
const (
	OpAddHost            DeltaOpKind = "add_host"
	OpRemoveHost         DeltaOpKind = "remove_host"
	OpAddEdge            DeltaOpKind = "add_edge"
	OpRemoveEdge         DeltaOpKind = "remove_edge"
	OpUpdateHostServices DeltaOpKind = "update_services"
)

// DeltaOp is one recorded mutation.  Exactly the fields required by its kind
// are populated:
//
//	add_host:        Host
//	remove_host:     ID
//	add_edge:        A, B
//	remove_edge:     A, B
//	update_services: ID, Services, Choices, Preference
type DeltaOp struct {
	Op DeltaOpKind `json:"op"`
	// Host carries the full host description for add_host.
	Host *HostSpec `json:"host,omitempty"`
	// ID identifies the target host of remove_host / update_services.
	ID HostID `json:"id,omitempty"`
	// A and B are the edge endpoints of add_edge / remove_edge.
	A HostID `json:"a,omitempty"`
	B HostID `json:"b,omitempty"`
	// Services/Choices/Preference are the replacement service set of
	// update_services.
	Services   []ServiceID                         `json:"services,omitempty"`
	Choices    map[ServiceID][]ProductID           `json:"choices,omitempty"`
	Preference map[ServiceID]map[ProductID]float64 `json:"preference,omitempty"`
}

// Validate checks that the op carries the fields its kind requires.
func (op DeltaOp) Validate() error {
	switch op.Op {
	case OpAddHost:
		if op.Host == nil || op.Host.ID == "" {
			return errors.New("netmodel: add_host op needs a host with an ID")
		}
	case OpRemoveHost:
		if op.ID == "" {
			return errors.New("netmodel: remove_host op needs an id")
		}
	case OpAddEdge, OpRemoveEdge:
		if op.A == "" || op.B == "" {
			return fmt.Errorf("netmodel: %s op needs both endpoints", op.Op)
		}
	case OpUpdateHostServices:
		if op.ID == "" {
			return errors.New("netmodel: update_services op needs an id")
		}
		if len(op.Services) == 0 {
			return errors.New("netmodel: update_services op needs a non-empty service list")
		}
	default:
		return fmt.Errorf("netmodel: unknown delta op %q", op.Op)
	}
	return nil
}

// Delta is an ordered journal of network mutations.
type Delta struct {
	Ops []DeltaOp `json:"ops"`
}

// Empty reports whether the delta records no mutations.
func (d Delta) Empty() bool { return len(d.Ops) == 0 }

// Validate checks every op.
func (d Delta) Validate() error {
	for i, op := range d.Ops {
		if err := op.Validate(); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	return nil
}

// Check validates that the delta would replay cleanly against the network
// without mutating anything — the all-or-nothing precondition a serving
// layer needs before handing the delta to a live optimiser (Apply stops at
// the first failing op with the prefix applied).  It mirrors Apply's error
// conditions exactly: duplicate or unknown hosts, invalid service sets and
// self-links fail; re-adding an existing link or removing a missing one is
// a no-op.  Host existence is tracked through an overlay so intra-delta
// dependencies (an op referencing a host added or removed earlier in the
// same delta) validate correctly, in O(ops) regardless of network size.
func (d Delta) Check(n *Network) error {
	return NewBatchChecker(n).Check(d)
}

// BatchChecker validates a sequence of deltas against a network plus the
// accumulated effect of the deltas already accepted through it, without
// mutating the network.  It is the batch form of Delta.Check: a serving
// layer coalescing queued deltas into one apply/re-solve cycle validates
// each delta against the state it would see if the earlier deltas of the
// batch had landed, preserving the per-delta all-or-nothing contract — a
// delta that fails Check leaves the checker's overlay exactly as it was, so
// later deltas validate as if the rejected one never existed.
//
// The overlay tracks host existence only, which is the complete mutable
// state Apply's error conditions depend on: edge re-adds and missing-edge
// removes are no-ops, and service-set validation is self-contained.
type BatchChecker struct {
	n *Network
	// overlay records host-existence changes made by accepted deltas;
	// hosts not present fall through to the network.
	overlay map[HostID]bool
	// staged holds the current delta's tentative changes, merged into
	// overlay only when the whole delta validates.  Kept across calls so a
	// long batch reuses one allocation.
	staged map[HostID]bool
}

// NewBatchChecker starts a validation batch against the network's current
// state.  The checker holds no reference-independent snapshot: callers must
// not mutate the network between Check calls of one batch other than by
// applying the accepted deltas in order.
func NewBatchChecker(n *Network) *BatchChecker {
	return &BatchChecker{
		n:       n,
		overlay: make(map[HostID]bool),
		staged:  make(map[HostID]bool),
	}
}

// exists resolves a host ID through staged, then overlay, then the network.
func (b *BatchChecker) exists(id HostID) bool {
	if v, ok := b.staged[id]; ok {
		return v
	}
	if v, ok := b.overlay[id]; ok {
		return v
	}
	_, ok := b.n.hosts[id]
	return ok
}

// Check validates the next delta of the batch.  On success the delta's
// host-existence effects are committed to the checker, so subsequent deltas
// see them; on failure the checker is left untouched.
func (b *BatchChecker) Check(d Delta) error {
	clear(b.staged)
	for i, op := range d.Ops {
		fail := func(err error) error {
			return fmt.Errorf("netmodel: delta op %d (%s): %w", i, op.Op, err)
		}
		if err := op.Validate(); err != nil {
			return fail(err)
		}
		switch op.Op {
		case OpAddHost:
			if b.exists(op.Host.ID) {
				return fail(fmt.Errorf("%w: %q", ErrDuplicateHost, op.Host.ID))
			}
			if err := validateServiceSet(op.Host.ID, op.Host.Services, op.Host.Choices); err != nil {
				return fail(err)
			}
			b.staged[op.Host.ID] = true
		case OpRemoveHost:
			if !b.exists(op.ID) {
				return fail(fmt.Errorf("%w: %q", ErrUnknownHost, op.ID))
			}
			b.staged[op.ID] = false
		case OpAddEdge, OpRemoveEdge:
			if op.Op == OpAddEdge && op.A == op.B {
				return fail(fmt.Errorf("%w: %q", ErrSelfLink, op.A))
			}
			for _, id := range [2]HostID{op.A, op.B} {
				if !b.exists(id) {
					return fail(fmt.Errorf("%w: %q", ErrUnknownHost, id))
				}
			}
		case OpUpdateHostServices:
			if !b.exists(op.ID) {
				return fail(fmt.Errorf("%w: %q", ErrUnknownHost, op.ID))
			}
			if err := validateServiceSet(op.ID, op.Services, op.Choices); err != nil {
				return fail(err)
			}
		}
	}
	for id, v := range b.staged {
		b.overlay[id] = v
	}
	return nil
}

// Apply replays the delta against a network through the mutation API.  Ops
// are applied in order; the first failing op aborts the replay (earlier ops
// stay applied, mirroring the journal semantics of a partially consumed
// stream).
func (d Delta) Apply(n *Network) error {
	for i, op := range d.Ops {
		if err := applyOp(n, op); err != nil {
			return fmt.Errorf("netmodel: delta op %d (%s): %w", i, op.Op, err)
		}
	}
	return nil
}

func applyOp(n *Network, op DeltaOp) error {
	if err := op.Validate(); err != nil {
		return err
	}
	switch op.Op {
	case OpAddHost:
		return n.AddHost(op.Host.Host())
	case OpRemoveHost:
		return n.RemoveHost(op.ID)
	case OpAddEdge:
		return n.AddEdge(op.A, op.B)
	case OpRemoveEdge:
		return n.RemoveEdge(op.A, op.B)
	case OpUpdateHostServices:
		return n.UpdateHostServices(op.ID, op.Services, op.Choices, op.Preference)
	}
	return fmt.Errorf("netmodel: unknown delta op %q", op.Op)
}

// EncodeDeltas writes deltas as JSON lines (one compact Delta object per
// line), the stream format consumed by divopt -watch.
func EncodeDeltas(w io.Writer, deltas []Delta) error {
	enc := json.NewEncoder(w)
	for i, d := range deltas {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("netmodel: delta %d: %w", i, err)
		}
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("netmodel: encode delta %d: %w", i, err)
		}
	}
	return nil
}

// DeltaLimits bounds the size of a delta decoded from an untrusted source
// (the divd delta endpoint).  A zero field means "unlimited", mirroring
// SpecLimits.
type DeltaLimits struct {
	// MaxOps bounds the operation count of one delta.
	MaxOps int
	// Host bounds the shape of hosts carried by add_host / update_services
	// ops (only the per-host fields of SpecLimits apply).
	Host SpecLimits
}

// CheckLimits verifies the delta against the limits, returning the first
// violation.  Like Spec.CheckLimits it is a pure size check; Validate covers
// the structural requirements of each op kind.
func (d Delta) CheckLimits(l DeltaLimits) error {
	if l.MaxOps > 0 && len(d.Ops) > l.MaxOps {
		return fmt.Errorf("netmodel: delta has %d ops, limit %d", len(d.Ops), l.MaxOps)
	}
	for i, op := range d.Ops {
		switch op.Op {
		case OpAddHost:
			if op.Host != nil {
				if err := l.Host.hostShapeWithinLimits(op.Host); err != nil {
					return fmt.Errorf("op %d: %w", i, err)
				}
			}
		case OpUpdateHostServices:
			shape := HostSpec{ID: op.ID, Services: op.Services, Choices: op.Choices}
			if err := l.Host.hostShapeWithinLimits(&shape); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		}
	}
	return nil
}

// DeltaDecoder streams deltas from a JSON-lines (or concatenated-JSON)
// reader.
type DeltaDecoder struct {
	dec *json.Decoder
}

// NewDeltaDecoder wraps a reader producing a stream of Delta JSON objects.
func NewDeltaDecoder(r io.Reader) *DeltaDecoder {
	return &DeltaDecoder{dec: json.NewDecoder(r)}
}

// Strict makes the decoder reject deltas carrying unknown JSON fields, the
// posture for untrusted input (unknown fields are a caller bug or a probe,
// never valid data).  It returns the decoder for chaining.
func (d *DeltaDecoder) Strict() *DeltaDecoder {
	d.dec.DisallowUnknownFields()
	return d
}

// Next decodes and validates the next delta.  It returns io.EOF at the end
// of the stream.
func (d *DeltaDecoder) Next() (Delta, error) {
	var out Delta
	if err := d.dec.Decode(&out); err != nil {
		if errors.Is(err, io.EOF) {
			return Delta{}, io.EOF
		}
		return Delta{}, fmt.Errorf("netmodel: decode delta: %w", err)
	}
	if err := out.Validate(); err != nil {
		return Delta{}, fmt.Errorf("netmodel: %w", err)
	}
	return out, nil
}

package netmodel

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Real networks churn: hosts join and leave, services get upgraded,
// vulnerability data refreshes.  Instead of forcing callers to rebuild a
// Network (and every structure derived from it) on each change, the network
// exposes a mutation API — AddHost, RemoveHost, AddEdge, RemoveEdge,
// UpdateHostServices — and can record those mutations into a change journal.
// The journal entries form a Delta: a serialisable, replayable description of
// an evolution step that downstream consumers (the incremental optimiser in
// internal/core, the watch mode of cmd/divopt) apply without re-deriving the
// whole model from scratch.

// DeltaOpKind names one mutation in a Delta.
type DeltaOpKind string

// The delta operation kinds, matching the Network mutation API.
const (
	OpAddHost            DeltaOpKind = "add_host"
	OpRemoveHost         DeltaOpKind = "remove_host"
	OpAddEdge            DeltaOpKind = "add_edge"
	OpRemoveEdge         DeltaOpKind = "remove_edge"
	OpUpdateHostServices DeltaOpKind = "update_services"
)

// DeltaOp is one recorded mutation.  Exactly the fields required by its kind
// are populated:
//
//	add_host:        Host
//	remove_host:     ID
//	add_edge:        A, B
//	remove_edge:     A, B
//	update_services: ID, Services, Choices, Preference
type DeltaOp struct {
	Op DeltaOpKind `json:"op"`
	// Host carries the full host description for add_host.
	Host *HostSpec `json:"host,omitempty"`
	// ID identifies the target host of remove_host / update_services.
	ID HostID `json:"id,omitempty"`
	// A and B are the edge endpoints of add_edge / remove_edge.
	A HostID `json:"a,omitempty"`
	B HostID `json:"b,omitempty"`
	// Services/Choices/Preference are the replacement service set of
	// update_services.
	Services   []ServiceID                         `json:"services,omitempty"`
	Choices    map[ServiceID][]ProductID           `json:"choices,omitempty"`
	Preference map[ServiceID]map[ProductID]float64 `json:"preference,omitempty"`
}

// Validate checks that the op carries the fields its kind requires.
func (op DeltaOp) Validate() error {
	switch op.Op {
	case OpAddHost:
		if op.Host == nil || op.Host.ID == "" {
			return errors.New("netmodel: add_host op needs a host with an ID")
		}
	case OpRemoveHost:
		if op.ID == "" {
			return errors.New("netmodel: remove_host op needs an id")
		}
	case OpAddEdge, OpRemoveEdge:
		if op.A == "" || op.B == "" {
			return fmt.Errorf("netmodel: %s op needs both endpoints", op.Op)
		}
	case OpUpdateHostServices:
		if op.ID == "" {
			return errors.New("netmodel: update_services op needs an id")
		}
		if len(op.Services) == 0 {
			return errors.New("netmodel: update_services op needs a non-empty service list")
		}
	default:
		return fmt.Errorf("netmodel: unknown delta op %q", op.Op)
	}
	return nil
}

// Delta is an ordered journal of network mutations.
type Delta struct {
	Ops []DeltaOp `json:"ops"`
}

// Empty reports whether the delta records no mutations.
func (d Delta) Empty() bool { return len(d.Ops) == 0 }

// Validate checks every op.
func (d Delta) Validate() error {
	for i, op := range d.Ops {
		if err := op.Validate(); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	return nil
}

// Apply replays the delta against a network through the mutation API.  Ops
// are applied in order; the first failing op aborts the replay (earlier ops
// stay applied, mirroring the journal semantics of a partially consumed
// stream).
func (d Delta) Apply(n *Network) error {
	for i, op := range d.Ops {
		if err := applyOp(n, op); err != nil {
			return fmt.Errorf("netmodel: delta op %d (%s): %w", i, op.Op, err)
		}
	}
	return nil
}

func applyOp(n *Network, op DeltaOp) error {
	if err := op.Validate(); err != nil {
		return err
	}
	switch op.Op {
	case OpAddHost:
		return n.AddHost(op.Host.Host())
	case OpRemoveHost:
		return n.RemoveHost(op.ID)
	case OpAddEdge:
		return n.AddEdge(op.A, op.B)
	case OpRemoveEdge:
		return n.RemoveEdge(op.A, op.B)
	case OpUpdateHostServices:
		return n.UpdateHostServices(op.ID, op.Services, op.Choices, op.Preference)
	}
	return fmt.Errorf("netmodel: unknown delta op %q", op.Op)
}

// EncodeDeltas writes deltas as JSON lines (one compact Delta object per
// line), the stream format consumed by divopt -watch.
func EncodeDeltas(w io.Writer, deltas []Delta) error {
	enc := json.NewEncoder(w)
	for i, d := range deltas {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("netmodel: delta %d: %w", i, err)
		}
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("netmodel: encode delta %d: %w", i, err)
		}
	}
	return nil
}

// DeltaDecoder streams deltas from a JSON-lines (or concatenated-JSON)
// reader.
type DeltaDecoder struct {
	dec *json.Decoder
}

// NewDeltaDecoder wraps a reader producing a stream of Delta JSON objects.
func NewDeltaDecoder(r io.Reader) *DeltaDecoder {
	return &DeltaDecoder{dec: json.NewDecoder(r)}
}

// Next decodes and validates the next delta.  It returns io.EOF at the end
// of the stream.
func (d *DeltaDecoder) Next() (Delta, error) {
	var out Delta
	if err := d.dec.Decode(&out); err != nil {
		if errors.Is(err, io.EOF) {
			return Delta{}, io.EOF
		}
		return Delta{}, fmt.Errorf("netmodel: decode delta: %w", err)
	}
	if err := out.Validate(); err != nil {
		return Delta{}, fmt.Errorf("netmodel: %w", err)
	}
	return out, nil
}

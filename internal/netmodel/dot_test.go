package netmodel

import (
	"strings"
	"testing"
)

func dotNetwork(t *testing.T) *Network {
	t.Helper()
	net := New()
	hosts := []*Host{
		{ID: "c1", Zone: "corporate", Role: "Web Client",
			Services: []ServiceID{"os"}, Choices: map[ServiceID][]ProductID{"os": {"win7", "deb80"}}},
		{ID: "t1", Zone: "control", Legacy: true,
			Services: []ServiceID{"os"}, Choices: map[ServiceID][]ProductID{"os": {"winxp"}}},
		{ID: "x1", Zone: "",
			Services: []ServiceID{"os"}, Choices: map[ServiceID][]ProductID{"os": {"win7"}}},
	}
	for _, h := range hosts {
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddLink("c1", "t1"); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("t1", "x1"); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestWriteDot(t *testing.T) {
	net := dotNetwork(t)
	a := NewAssignment()
	a.Set("c1", "os", "deb80")
	a.Set("t1", "os", "winxp")
	a.Set("x1", "os", "win7")

	out, err := Dot(net, DotOptions{
		Assignment:     a,
		HighlightHosts: []HostID{"c1"},
		Name:           "case",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`graph "case" {`,
		`label="corporate"`,
		`"c1" -- "t1";`,
		`os=deb80`,
		`penwidth=3`,
		"color=gray40",       // legacy host styling
		`subgraph "cluster_`, // zone clustering
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
	// Zone-less hosts are emitted outside any cluster.
	if !strings.Contains(out, `"x1"`) {
		t.Error("zone-less host missing from output")
	}
}

func TestWriteDotWithoutAssignment(t *testing.T) {
	net := dotNetwork(t)
	out, err := Dot(net, DotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "os=") {
		t.Error("assignment labels should be absent when no assignment is given")
	}
	if !strings.Contains(out, `graph "network" {`) {
		t.Error("default graph name should be used")
	}
}

func TestWriteDotNil(t *testing.T) {
	if _, err := Dot(nil, DotOptions{}); err == nil {
		t.Error("nil network should be rejected")
	}
}

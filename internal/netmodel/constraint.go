package netmodel

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ConstraintMode distinguishes desirable (+p_j, +p_l) from undesirable
// (+p_j, -p_k) product combinations of Definition 4.
type ConstraintMode int

const (
	// Require states: if service m runs ProductJ then service n must run
	// ProductK (the c_y form, "+p_j, +p_l").
	Require ConstraintMode = iota + 1
	// Forbid states: if service m runs ProductJ then service n must NOT run
	// ProductK (the c_x form, "+p_j, -p_k").
	Forbid
)

// String implements fmt.Stringer.
func (m ConstraintMode) String() string {
	switch m {
	case Require:
		return "require"
	case Forbid:
		return "forbid"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// AllHosts is the sentinel host used by global constraints (the "ALL" of
// Definition 4).
const AllHosts HostID = "*"

// Constraint is a single local or global configuration constraint
// c = <h, s_m, s_n, +p_j, ±p_k>.
type Constraint struct {
	// Host is the constrained host, or AllHosts for a global constraint.
	Host HostID `json:"host"`
	// ServiceM is the conditioning service s_m.
	ServiceM ServiceID `json:"service_m"`
	// ServiceN is the constrained service s_n.
	ServiceN ServiceID `json:"service_n"`
	// ProductJ is the conditioning product +p_j on ServiceM.
	ProductJ ProductID `json:"product_j"`
	// ProductK is the target product p_k on ServiceN.
	ProductK ProductID `json:"product_k"`
	// Mode selects the desirable (Require) or undesirable (Forbid) form.
	Mode ConstraintMode `json:"mode"`
}

// Global reports whether the constraint applies to all hosts.
func (c Constraint) Global() bool { return c.Host == AllHosts }

// String renders the constraint in the paper's tuple notation.
func (c Constraint) String() string {
	sign := "+"
	if c.Mode == Forbid {
		sign = "-"
	}
	host := string(c.Host)
	if c.Global() {
		host = "ALL"
	}
	return fmt.Sprintf("<%s, %s, %s, +%s, %s%s>", host, c.ServiceM, c.ServiceN, c.ProductJ, sign, c.ProductK)
}

// Validate checks the constraint against a network: the host must exist (or
// be AllHosts), and the services must be provided by the constrained hosts.
func (c Constraint) Validate(n *Network) error {
	if c.Mode != Require && c.Mode != Forbid {
		return fmt.Errorf("netmodel: constraint %s has invalid mode", c)
	}
	if c.ServiceM == "" || c.ServiceN == "" || c.ProductJ == "" || c.ProductK == "" {
		return fmt.Errorf("netmodel: constraint %s has empty fields", c)
	}
	if c.Global() {
		return nil
	}
	h, ok := n.Host(c.Host)
	if !ok {
		return fmt.Errorf("%w: constraint %s", ErrUnknownHost, c)
	}
	if !h.HasService(c.ServiceM) {
		return fmt.Errorf("netmodel: constraint %s: host does not provide %q", c, c.ServiceM)
	}
	if !h.HasService(c.ServiceN) {
		return fmt.Errorf("netmodel: constraint %s: host does not provide %q", c, c.ServiceN)
	}
	return nil
}

// appliesTo reports whether the constraint constrains the given host.
func (c Constraint) appliesTo(h HostID) bool {
	return c.Global() || c.Host == h
}

// SatisfiedBy reports whether an assignment satisfies the constraint on a
// single host: if α'(h, s_m) = p_j then α'(h, s_n) must (not) equal p_k.
// Hosts that do not provide both services are vacuously satisfied.
func (c Constraint) SatisfiedBy(a *Assignment, n *Network, hid HostID) bool {
	if !c.appliesTo(hid) {
		return true
	}
	h, ok := n.Host(hid)
	if !ok || !h.HasService(c.ServiceM) || !h.HasService(c.ServiceN) {
		return true
	}
	pm, okm := a.Get(hid, c.ServiceM)
	pn, okn := a.Get(hid, c.ServiceN)
	if !okm || !okn {
		return true
	}
	if pm != c.ProductJ {
		return true
	}
	if c.Mode == Require {
		return pn == c.ProductK
	}
	return pn != c.ProductK
}

// ConstraintSet is the set C of Definition 4 plus host-level fixing
// constraints ("host z4 must run product X for service s"), which the case
// study uses to express company policies and legacy hosts.
type ConstraintSet struct {
	constraints []Constraint
	fixed       map[HostID]map[ServiceID]ProductID
}

// NewConstraintSet creates an empty constraint set.
func NewConstraintSet() *ConstraintSet {
	return &ConstraintSet{fixed: make(map[HostID]map[ServiceID]ProductID)}
}

// Add appends a pairwise (require/forbid) constraint.
func (cs *ConstraintSet) Add(c Constraint) {
	cs.constraints = append(cs.constraints, c)
}

// Fix pins a host's service to a specific product (the grey cells of
// Table IV and the host constraints of α̂_C1).
func (cs *ConstraintSet) Fix(h HostID, s ServiceID, p ProductID) {
	m, ok := cs.fixed[h]
	if !ok {
		m = make(map[ServiceID]ProductID)
		cs.fixed[h] = m
	}
	m[s] = p
}

// Fixed returns the pinned product for (h, s) if any.
func (cs *ConstraintSet) Fixed(h HostID, s ServiceID) (ProductID, bool) {
	p, ok := cs.fixed[h][s]
	return p, ok
}

// FixedHosts returns the hosts with at least one pinned service, sorted.
func (cs *ConstraintSet) FixedHosts() []HostID {
	out := make([]HostID, 0, len(cs.fixed))
	for h := range cs.fixed {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// References reports whether the set pins or constrains the given host
// (globally applicable constraints do not count: they never dangle when the
// host disappears).  The incremental optimiser uses it to reject deltas that
// would strand host-specific constraints.
func (cs *ConstraintSet) References(h HostID) bool {
	if cs == nil {
		return false
	}
	if len(cs.fixed[h]) > 0 {
		return true
	}
	for _, c := range cs.constraints {
		if !c.Global() && c.Host == h {
			return true
		}
	}
	return false
}

// Constraints returns a copy of the pairwise constraints.
func (cs *ConstraintSet) Constraints() []Constraint {
	out := make([]Constraint, len(cs.constraints))
	copy(out, cs.constraints)
	return out
}

// Len returns the number of pairwise constraints plus pinned services.
func (cs *ConstraintSet) Len() int {
	n := len(cs.constraints)
	for _, m := range cs.fixed {
		n += len(m)
	}
	return n
}

// Empty reports whether the set contains no constraints at all.
func (cs *ConstraintSet) Empty() bool { return cs == nil || cs.Len() == 0 }

// Clone returns a deep copy.
func (cs *ConstraintSet) Clone() *ConstraintSet {
	c := NewConstraintSet()
	c.constraints = append(c.constraints, cs.constraints...)
	for h, m := range cs.fixed {
		for s, p := range m {
			c.Fix(h, s, p)
		}
	}
	return c
}

// Validate checks every constraint against the network, including that pinned
// products are valid candidates of the pinned host.
func (cs *ConstraintSet) Validate(n *Network) error {
	for _, c := range cs.constraints {
		if err := c.Validate(n); err != nil {
			return err
		}
	}
	for hid, m := range cs.fixed {
		h, ok := n.Host(hid)
		if !ok {
			return fmt.Errorf("%w: fixed host %q", ErrUnknownHost, hid)
		}
		for s, p := range m {
			if !h.HasService(s) {
				return fmt.Errorf("netmodel: fixed host %q does not provide service %q", hid, s)
			}
			if h.CandidateIndex(s, p) < 0 {
				return fmt.Errorf("netmodel: fixed product %q is not a candidate for host %q service %q",
					p, hid, s)
			}
		}
	}
	return nil
}

// ErrViolated is wrapped by Check when an assignment violates the set.
var ErrViolated = errors.New("netmodel: constraint violated")

// Violations returns a description of every constraint the assignment
// violates over the network (empty when fully satisfied).
func (cs *ConstraintSet) Violations(a *Assignment, n *Network) []string {
	var out []string
	if cs == nil {
		return out
	}
	for hid, m := range cs.fixed {
		for s, want := range m {
			got, ok := a.Get(hid, s)
			if !ok || got != want {
				out = append(out, fmt.Sprintf("host %s service %s pinned to %s but assigned %s",
					hid, s, want, orNone(got)))
			}
		}
	}
	for _, c := range cs.constraints {
		hosts := n.Hosts()
		if !c.Global() {
			hosts = []HostID{c.Host}
		}
		for _, hid := range hosts {
			if !c.SatisfiedBy(a, n, hid) {
				out = append(out, fmt.Sprintf("constraint %s violated at host %s", c, hid))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Check returns ErrViolated (wrapped with details) if the assignment violates
// any constraint, and nil otherwise.
func (cs *ConstraintSet) Check(a *Assignment, n *Network) error {
	v := cs.Violations(a, n)
	if len(v) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrViolated, strings.Join(v, "; "))
}

package netmodel

import (
	"math"
	"strings"
	"testing"
)

func TestStatsLine(t *testing.T) {
	net := lineNetwork(t, 5) // a-b-c-d-e chain
	st := net.Stats()
	if st.Hosts != 5 || st.Links != 4 {
		t.Fatalf("hosts/links = %d/%d, want 5/4", st.Hosts, st.Links)
	}
	if math.Abs(st.AverageDegree-1.6) > 1e-9 {
		t.Errorf("average degree = %v, want 1.6", st.AverageDegree)
	}
	if st.MaxDegree != 2 {
		t.Errorf("max degree = %d, want 2", st.MaxDegree)
	}
	if st.Diameter != 4 {
		t.Errorf("diameter = %d, want 4", st.Diameter)
	}
	if st.Components != 1 {
		t.Errorf("components = %d, want 1", st.Components)
	}
	if st.ClusteringCoefficient != 0 {
		t.Errorf("chain clustering = %v, want 0", st.ClusteringCoefficient)
	}
	if math.Abs(st.Density-4.0/10.0) > 1e-9 {
		t.Errorf("density = %v, want 0.4", st.Density)
	}
	if st.ServicesPerHost != 1 {
		t.Errorf("services per host = %v, want 1", st.ServicesPerHost)
	}
	if !strings.Contains(st.String(), "hosts=5") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestStatsTriangleClustering(t *testing.T) {
	net := New()
	for _, id := range []HostID{"a", "b", "c"} {
		if err := net.AddHost(testHost(id)); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]HostID{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		if err := net.AddLink(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	st := net.Stats()
	if math.Abs(st.ClusteringCoefficient-1) > 1e-9 {
		t.Errorf("triangle clustering = %v, want 1", st.ClusteringCoefficient)
	}
	if st.Diameter != 1 {
		t.Errorf("triangle diameter = %d, want 1", st.Diameter)
	}
	if math.Abs(st.AveragePathLength-1) > 1e-9 {
		t.Errorf("triangle average path = %v, want 1", st.AveragePathLength)
	}
}

func TestStatsDisconnectedAndZones(t *testing.T) {
	net := lineNetwork(t, 3)
	island := testHost("island")
	island.Zone = "dmz"
	island.Legacy = true
	if err := net.AddHost(island); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.Components != 2 {
		t.Errorf("components = %d, want 2", st.Components)
	}
	if st.LegacyHosts != 1 {
		t.Errorf("legacy hosts = %d, want 1", st.LegacyHosts)
	}
	if st.ZoneSizes["dmz"] != 1 || st.ZoneSizes[""] != 3 {
		t.Errorf("zone sizes = %v", st.ZoneSizes)
	}
}

func TestStatsEmptyNetwork(t *testing.T) {
	st := New().Stats()
	if st.Hosts != 0 || st.Links != 0 {
		t.Error("empty network stats should be zero")
	}
}

package netmodel

import (
	"fmt"
	"sort"
)

// NetworkStats summarises the topology of a network; used by reports, the
// experiment notes and the topology generators' tests.
type NetworkStats struct {
	// Hosts and Links are |H| and |L|.
	Hosts int
	Links int
	// Density is 2|L| / (|H|·(|H|-1)).
	Density float64
	// AverageDegree is 2|L| / |H|.
	AverageDegree float64
	// MaxDegree is the largest host degree.
	MaxDegree int
	// Diameter is the longest shortest path within the largest connected
	// component.
	Diameter int
	// AveragePathLength is the mean shortest-path length over all reachable
	// host pairs of the largest component.
	AveragePathLength float64
	// ClusteringCoefficient is the mean local clustering coefficient.
	ClusteringCoefficient float64
	// Components is the number of connected components.
	Components int
	// ZoneSizes counts hosts per zone.
	ZoneSizes map[string]int
	// LegacyHosts counts hosts marked as legacy.
	LegacyHosts int
	// ServicesPerHost is the mean number of services per host.
	ServicesPerHost float64
}

// Stats computes NetworkStats.  For networks larger than sampleLimit hosts
// the diameter and average path length are estimated from BFS runs over a
// deterministic sample of hosts to keep the computation linear-ish.
func (n *Network) Stats() NetworkStats {
	const sampleLimit = 400
	st := NetworkStats{
		Hosts:     n.NumHosts(),
		Links:     n.NumLinks(),
		ZoneSizes: make(map[string]int),
	}
	if st.Hosts == 0 {
		return st
	}
	totalServices := 0
	for _, hid := range n.Hosts() {
		h, _ := n.Host(hid)
		st.ZoneSizes[h.Zone]++
		if h.Legacy {
			st.LegacyHosts++
		}
		totalServices += len(h.Services)
		if d := n.Degree(hid); d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	st.ServicesPerHost = float64(totalServices) / float64(st.Hosts)
	st.AverageDegree = 2 * float64(st.Links) / float64(st.Hosts)
	if st.Hosts > 1 {
		st.Density = 2 * float64(st.Links) / (float64(st.Hosts) * float64(st.Hosts-1))
	}

	comps := n.ConnectedComponents()
	st.Components = len(comps)

	// Clustering coefficient.
	clusterSum := 0.0
	for _, hid := range n.Hosts() {
		neighbors := n.Neighbors(hid)
		k := len(neighbors)
		if k < 2 {
			continue
		}
		linked := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if n.Connected(neighbors[i], neighbors[j]) {
					linked++
				}
			}
		}
		clusterSum += 2 * float64(linked) / float64(k*(k-1))
	}
	st.ClusteringCoefficient = clusterSum / float64(st.Hosts)

	// Path statistics on the largest component (sampled for big networks).
	largest := comps[0]
	sources := largest
	if len(sources) > sampleLimit {
		step := len(sources) / sampleLimit
		var sampled []HostID
		for i := 0; i < len(sources); i += step {
			sampled = append(sampled, sources[i])
		}
		sources = sampled
	}
	pairCount := 0
	pathSum := 0
	for _, src := range sources {
		dist := n.ShortestPathLengths(src)
		for _, d := range dist {
			if d == 0 {
				continue
			}
			pathSum += d
			pairCount++
			if d > st.Diameter {
				st.Diameter = d
			}
		}
	}
	if pairCount > 0 {
		st.AveragePathLength = float64(pathSum) / float64(pairCount)
	}
	return st
}

// String renders the statistics compactly.
func (s NetworkStats) String() string {
	zones := make([]string, 0, len(s.ZoneSizes))
	for z := range s.ZoneSizes {
		zones = append(zones, z)
	}
	sort.Strings(zones)
	zoneStr := ""
	for i, z := range zones {
		if i > 0 {
			zoneStr += ", "
		}
		name := z
		if name == "" {
			name = "<none>"
		}
		zoneStr += fmt.Sprintf("%s:%d", name, s.ZoneSizes[z])
	}
	return fmt.Sprintf(
		"hosts=%d links=%d avg_degree=%.2f max_degree=%d density=%.4f diameter=%d avg_path=%.2f clustering=%.3f components=%d legacy=%d zones=[%s]",
		s.Hosts, s.Links, s.AverageDegree, s.MaxDegree, s.Density, s.Diameter,
		s.AveragePathLength, s.ClusteringCoefficient, s.Components, s.LegacyHosts, zoneStr)
}

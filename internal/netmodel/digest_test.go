package netmodel

import "testing"

func TestSetDigestOrderIndependent(t *testing.T) {
	a := DigestOf([]uint64{1, 2, 3, 100, 7})
	b := DigestOf([]uint64{100, 7, 3, 2, 1})
	if a != b {
		t.Fatalf("digest depends on order: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatal("non-empty set digested to zero")
	}
}

func TestSetDigestAddRemove(t *testing.T) {
	var d SetDigest
	d.Add(5)
	d.Add(9)
	d.Remove(5)
	want := DigestOf([]uint64{9})
	if d != want {
		t.Fatalf("incremental digest %x != direct %x", d, want)
	}
	d.Remove(9)
	if d != 0 {
		t.Fatalf("emptied digest is %x, want 0", d)
	}
}

func TestSetDigestDistinguishesNearbySets(t *testing.T) {
	a := DigestOfRange(1, 1000)
	b := DigestOfRange(1, 999)
	c := DigestOfRange(2, 1000)
	if a == b || a == c || b == c {
		t.Fatalf("nearby ranges collide: %x %x %x", a, b, c)
	}
	var inc SetDigest
	for v := uint64(1); v <= 1000; v++ {
		inc.Add(v)
	}
	if inc != a {
		t.Fatalf("DigestOfRange %x != incremental %x", a, inc)
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Neighbouring inputs must produce wildly different outputs; a weak mix
	// would make contiguous version ranges cancel structurally under XOR.
	seen := map[uint64]bool{}
	for v := uint64(0); v < 10000; v++ {
		h := Mix64(v)
		if seen[h] {
			t.Fatalf("collision at %d", v)
		}
		seen[h] = true
	}
	if Mix64(0) == 0 {
		t.Fatal("Mix64(0) is zero")
	}
}

package netmodel

import (
	"errors"
	"testing"
)

func testHost(id HostID, services ...ServiceID) *Host {
	if len(services) == 0 {
		services = []ServiceID{ServiceOS}
	}
	choices := make(map[ServiceID][]ProductID, len(services))
	for _, s := range services {
		choices[s] = []ProductID{"p1", "p2", "p3"}
	}
	return &Host{ID: id, Services: services, Choices: choices}
}

func lineNetwork(t *testing.T, n int) *Network {
	t.Helper()
	net := New()
	var prev HostID
	for i := 0; i < n; i++ {
		id := HostID(rune('a' + i))
		if err := net.AddHost(testHost(id)); err != nil {
			t.Fatalf("AddHost: %v", err)
		}
		if i > 0 {
			if err := net.AddLink(prev, id); err != nil {
				t.Fatalf("AddLink: %v", err)
			}
		}
		prev = id
	}
	return net
}

func TestAddHostValidation(t *testing.T) {
	net := New()
	if err := net.AddHost(nil); err == nil {
		t.Error("nil host should be rejected")
	}
	if err := net.AddHost(&Host{ID: ""}); err == nil {
		t.Error("empty ID should be rejected")
	}
	if err := net.AddHost(&Host{ID: "x"}); !errors.Is(err, ErrNoServices) {
		t.Errorf("host without services should return ErrNoServices, got %v", err)
	}
	if err := net.AddHost(&Host{ID: "x", Services: []ServiceID{"os"}}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("service without candidates should return ErrNoCandidates, got %v", err)
	}
	h := testHost("x")
	if err := net.AddHost(h); err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	if err := net.AddHost(h); !errors.Is(err, ErrDuplicateHost) {
		t.Errorf("duplicate host should return ErrDuplicateHost, got %v", err)
	}
	dup := &Host{ID: "y", Services: []ServiceID{"os", "os"}, Choices: map[ServiceID][]ProductID{"os": {"p"}}}
	if err := net.AddHost(dup); err == nil {
		t.Error("duplicate service listing should be rejected")
	}
}

func TestAddHostCopies(t *testing.T) {
	net := New()
	h := testHost("x")
	if err := net.AddHost(h); err != nil {
		t.Fatal(err)
	}
	h.Choices[ServiceOS][0] = "mutated"
	h.Zone = "mutated"
	stored, _ := net.Host("x")
	if stored.Choices[ServiceOS][0] == "mutated" || stored.Zone == "mutated" {
		t.Error("AddHost must deep-copy the host")
	}
}

func TestAddLink(t *testing.T) {
	net := lineNetwork(t, 3)
	if err := net.AddLink("a", "a"); !errors.Is(err, ErrSelfLink) {
		t.Errorf("self link should return ErrSelfLink, got %v", err)
	}
	if err := net.AddLink("a", "zz"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("unknown endpoint should return ErrUnknownHost, got %v", err)
	}
	before := net.NumLinks()
	if err := net.AddLink("b", "a"); err != nil {
		t.Fatalf("re-adding reversed link: %v", err)
	}
	if net.NumLinks() != before {
		t.Error("re-adding an existing link (reversed) should be a no-op")
	}
	if !net.Connected("a", "b") || !net.Connected("b", "a") {
		t.Error("Connected should be symmetric")
	}
	if net.Connected("a", "c") {
		t.Error("a and c are not directly connected")
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	net := lineNetwork(t, 4)
	if got := net.Neighbors("b"); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("Neighbors(b) = %v, want [a c]", got)
	}
	if net.Degree("a") != 1 || net.Degree("b") != 2 {
		t.Error("unexpected degrees")
	}
	if net.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", net.MaxDegree())
	}
}

func TestServicesProductsShared(t *testing.T) {
	net := New()
	if err := net.AddHost(testHost("a", "os", "db")); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHost(testHost("b", "os")); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := net.Services(); len(got) != 2 {
		t.Errorf("Services = %v, want [db os]", got)
	}
	if got := net.Products(); len(got) != 3 {
		t.Errorf("Products = %v, want 3 products", got)
	}
	if got := net.SharedServices("a", "b"); len(got) != 1 || got[0] != "os" {
		t.Errorf("SharedServices = %v, want [os]", got)
	}
	if got := net.SharedServices("a", "missing"); got != nil {
		t.Errorf("SharedServices with missing host = %v, want nil", got)
	}
}

func TestValidateAndClone(t *testing.T) {
	empty := New()
	if err := empty.Validate(); err == nil {
		t.Error("empty network should fail validation")
	}
	net := lineNetwork(t, 5)
	if err := net.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	clone := net.Clone()
	if clone.NumHosts() != net.NumHosts() || clone.NumLinks() != net.NumLinks() {
		t.Error("clone should preserve size")
	}
	if err := clone.AddHost(testHost("zzz")); err != nil {
		t.Fatal(err)
	}
	if net.NumHosts() == clone.NumHosts() {
		t.Error("mutating the clone must not affect the original")
	}
}

func TestConnectedComponents(t *testing.T) {
	net := lineNetwork(t, 3)
	if err := net.AddHost(testHost("isolated")); err != nil {
		t.Fatal(err)
	}
	comps := net.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 1 {
		t.Errorf("component sizes = %d, %d; want 3, 1", len(comps[0]), len(comps[1]))
	}
}

func TestShortestPathLengths(t *testing.T) {
	net := lineNetwork(t, 4)
	dist := net.ShortestPathLengths("a")
	want := map[HostID]int{"a": 0, "b": 1, "c": 2, "d": 3}
	for h, d := range want {
		if dist[h] != d {
			t.Errorf("dist[%s] = %d, want %d", h, dist[h], d)
		}
	}
	if got := net.ShortestPathLengths("missing"); len(got) != 0 {
		t.Errorf("distances from missing host should be empty, got %v", got)
	}
}

func TestLinksSortedAndCopied(t *testing.T) {
	net := lineNetwork(t, 4)
	links := net.Links()
	for i := 1; i < len(links); i++ {
		if links[i-1].A > links[i].A {
			t.Error("Links should be sorted")
		}
	}
	links[0] = Link{A: "zz", B: "zz"}
	if net.Links()[0].A == "zz" {
		t.Error("Links must return a copy")
	}
}

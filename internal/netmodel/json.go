package netmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Spec is the JSON representation of a network plus optional constraints,
// consumed and produced by the cmd/ tools and by examples.
type Spec struct {
	Hosts       []HostSpec        `json:"hosts"`
	Links       []Link            `json:"links"`
	Constraints []Constraint      `json:"constraints,omitempty"`
	Fixed       []FixedSpec       `json:"fixed,omitempty"`
	Meta        map[string]string `json:"meta,omitempty"`
}

// HostSpec is the JSON representation of a host.
type HostSpec struct {
	ID         HostID                              `json:"id"`
	Zone       string                              `json:"zone,omitempty"`
	Role       string                              `json:"role,omitempty"`
	Legacy     bool                                `json:"legacy,omitempty"`
	Services   []ServiceID                         `json:"services"`
	Choices    map[ServiceID][]ProductID           `json:"choices"`
	Preference map[ServiceID]map[ProductID]float64 `json:"preference,omitempty"`
}

// FixedSpec pins a host's service to a product in the JSON form.
type FixedSpec struct {
	Host    HostID    `json:"host"`
	Service ServiceID `json:"service"`
	Product ProductID `json:"product"`
}

// SpecOfHost converts a host into its JSON form (deep copies throughout).
func SpecOfHost(h *Host) HostSpec {
	hs := HostSpec{
		ID:       h.ID,
		Zone:     h.Zone,
		Role:     h.Role,
		Legacy:   h.Legacy,
		Services: append([]ServiceID(nil), h.Services...),
		Choices:  make(map[ServiceID][]ProductID, len(h.Choices)),
	}
	for s, ps := range h.Choices {
		hs.Choices[s] = append([]ProductID(nil), ps...)
	}
	if len(h.Preference) > 0 {
		hs.Preference = make(map[ServiceID]map[ProductID]float64, len(h.Preference))
		for s, m := range h.Preference {
			mm := make(map[ProductID]float64, len(m))
			for p, v := range m {
				mm[p] = v
			}
			hs.Preference[s] = mm
		}
	}
	return hs
}

// Host converts the JSON form back into a host.  The result shares the
// spec's slices and maps; Network.AddHost deep-copies on insertion.
func (hs HostSpec) Host() *Host {
	return &Host{
		ID:         hs.ID,
		Zone:       hs.Zone,
		Role:       hs.Role,
		Legacy:     hs.Legacy,
		Services:   hs.Services,
		Choices:    hs.Choices,
		Preference: hs.Preference,
	}
}

// ToSpec converts a network and optional constraint set into a Spec.
func ToSpec(n *Network, cs *ConstraintSet) Spec {
	spec := Spec{}
	for _, id := range n.Hosts() {
		h, _ := n.Host(id)
		spec.Hosts = append(spec.Hosts, SpecOfHost(h))
	}
	spec.Links = n.Links()
	if cs != nil {
		spec.Constraints = cs.Constraints()
		for _, h := range cs.FixedHosts() {
			m := cs.fixed[h]
			services := make([]ServiceID, 0, len(m))
			for s := range m {
				services = append(services, s)
			}
			sort.Slice(services, func(i, j int) bool { return services[i] < services[j] })
			for _, s := range services {
				spec.Fixed = append(spec.Fixed, FixedSpec{Host: h, Service: s, Product: m[s]})
			}
		}
	}
	return spec
}

// FromSpec reconstructs a network and constraint set from a Spec.
func FromSpec(spec Spec) (*Network, *ConstraintSet, error) {
	n := New()
	for i := range spec.Hosts {
		hs := spec.Hosts[i]
		if err := n.AddHost(hs.Host()); err != nil {
			return nil, nil, fmt.Errorf("netmodel: spec host %q: %w", hs.ID, err)
		}
	}
	for _, l := range spec.Links {
		if err := n.AddLink(l.A, l.B); err != nil {
			return nil, nil, fmt.Errorf("netmodel: spec link %s-%s: %w", l.A, l.B, err)
		}
	}
	cs := NewConstraintSet()
	for _, c := range spec.Constraints {
		cs.Add(c)
	}
	for _, f := range spec.Fixed {
		cs.Fix(f.Host, f.Service, f.Product)
	}
	if err := cs.Validate(n); err != nil {
		return nil, nil, err
	}
	return n, cs, nil
}

// WriteSpec encodes the network (and constraints, may be nil) as indented
// JSON to w.
func WriteSpec(w io.Writer, n *Network, cs *ConstraintSet) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ToSpec(n, cs)); err != nil {
		return fmt.Errorf("netmodel: encode spec: %w", err)
	}
	return nil
}

// ReadSpec decodes a network spec from r.
func ReadSpec(r io.Reader) (*Network, *ConstraintSet, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	if err := dec.Decode(&spec); err != nil {
		return nil, nil, fmt.Errorf("netmodel: decode spec: %w", err)
	}
	return FromSpec(spec)
}

// SpecLimits bounds the size of a spec decoded from an untrusted source
// (the divd network-create endpoint).  A zero field means "unlimited", so
// the zero value disables all checks and trusted callers keep the old
// behaviour.
type SpecLimits struct {
	// MaxHosts bounds the host count.
	MaxHosts int
	// MaxLinks bounds the link count.
	MaxLinks int
	// MaxConstraints bounds constraints plus fixed-product pins.
	MaxConstraints int
	// MaxServicesPerHost bounds the service list of any one host.
	MaxServicesPerHost int
	// MaxChoicesPerService bounds the candidate list of any one service.
	MaxChoicesPerService int
}

// hostShapeWithinLimits checks one host description against the per-host
// limits (shared by spec and delta validation).
func (l SpecLimits) hostShapeWithinLimits(hs *HostSpec) error {
	if l.MaxServicesPerHost > 0 && len(hs.Services) > l.MaxServicesPerHost {
		return fmt.Errorf("netmodel: host %q has %d services, limit %d", hs.ID, len(hs.Services), l.MaxServicesPerHost)
	}
	if l.MaxChoicesPerService > 0 {
		for s, ps := range hs.Choices {
			if len(ps) > l.MaxChoicesPerService {
				return fmt.Errorf("netmodel: host %q service %q has %d candidate products, limit %d",
					hs.ID, s, len(ps), l.MaxChoicesPerService)
			}
		}
	}
	return nil
}

// CheckLimits verifies the spec against the limits, returning the first
// violation.  It is a pure size check — structural validation (duplicate
// hosts, dangling links, malformed constraints) still happens in FromSpec.
func (s Spec) CheckLimits(l SpecLimits) error {
	if l.MaxHosts > 0 && len(s.Hosts) > l.MaxHosts {
		return fmt.Errorf("netmodel: spec has %d hosts, limit %d", len(s.Hosts), l.MaxHosts)
	}
	if l.MaxLinks > 0 && len(s.Links) > l.MaxLinks {
		return fmt.Errorf("netmodel: spec has %d links, limit %d", len(s.Links), l.MaxLinks)
	}
	if l.MaxConstraints > 0 && len(s.Constraints)+len(s.Fixed) > l.MaxConstraints {
		return fmt.Errorf("netmodel: spec has %d constraints, limit %d", len(s.Constraints)+len(s.Fixed), l.MaxConstraints)
	}
	for i := range s.Hosts {
		if err := l.hostShapeWithinLimits(&s.Hosts[i]); err != nil {
			return err
		}
	}
	return nil
}

// DecodeSpecStrict decodes a spec from untrusted input: unknown JSON fields
// are rejected (they are always a caller bug or a probe, never valid data),
// trailing garbage after the spec object fails the decode, and the limits are
// enforced before the network is built, so an oversized spec is rejected in
// O(spec) without allocating the model.  Callers bound the raw byte size
// separately (http.MaxBytesReader / io.LimitReader).
func DecodeSpecStrict(r io.Reader, limits SpecLimits) (*Network, *ConstraintSet, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, nil, fmt.Errorf("netmodel: decode spec: %w", err)
	}
	// A spec is a single document: anything after the object is garbage.
	if dec.More() {
		return nil, nil, fmt.Errorf("netmodel: decode spec: trailing data after spec object")
	}
	if err := spec.CheckLimits(limits); err != nil {
		return nil, nil, err
	}
	return FromSpec(spec)
}

// assignmentJSON is the serialised form of an Assignment.
type assignmentJSON struct {
	Hosts map[HostID]map[ServiceID]ProductID `json:"hosts"`
}

// MarshalJSON serialises the assignment.
func (a *Assignment) MarshalJSON() ([]byte, error) {
	out := assignmentJSON{Hosts: make(map[HostID]map[ServiceID]ProductID, len(a.products))}
	for h, m := range a.products {
		mm := make(map[ServiceID]ProductID, len(m))
		for s, p := range m {
			mm[s] = p
		}
		out.Hosts[h] = mm
	}
	return json.Marshal(out)
}

// UnmarshalJSON deserialises the assignment.
func (a *Assignment) UnmarshalJSON(data []byte) error {
	var in assignmentJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("netmodel: decode assignment: %w", err)
	}
	na := NewAssignment()
	for h, m := range in.Hosts {
		for s, p := range m {
			na.Set(h, s, p)
		}
	}
	*a = *na
	return nil
}

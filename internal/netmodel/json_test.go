package netmodel

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func specNetwork(t *testing.T) (*Network, *ConstraintSet) {
	t.Helper()
	net := New()
	hosts := []*Host{
		{
			ID:       "web1",
			Zone:     "dmz",
			Role:     "web server",
			Services: []ServiceID{"os", "db"},
			Choices: map[ServiceID][]ProductID{
				"os": {"win7", "deb80"},
				"db": {"mysql55", "mssql14"},
			},
			Preference: map[ServiceID]map[ProductID]float64{
				"os": {"deb80": 0.9},
			},
		},
		{
			ID:       "ws1",
			Zone:     "office",
			Legacy:   true,
			Services: []ServiceID{"os"},
			Choices:  map[ServiceID][]ProductID{"os": {"winxp", "win7"}},
		},
	}
	for _, h := range hosts {
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddLink("web1", "ws1"); err != nil {
		t.Fatal(err)
	}
	cs := NewConstraintSet()
	cs.Fix("ws1", "os", "winxp")
	cs.Add(Constraint{Host: "web1", ServiceM: "os", ServiceN: "db", ProductJ: "deb80", ProductK: "mssql14", Mode: Forbid})
	return net, cs
}

func TestSpecRoundTrip(t *testing.T) {
	net, cs := specNetwork(t)
	var buf bytes.Buffer
	if err := WriteSpec(&buf, net, cs); err != nil {
		t.Fatalf("WriteSpec: %v", err)
	}
	net2, cs2, err := ReadSpec(&buf)
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	if net2.NumHosts() != net.NumHosts() || net2.NumLinks() != net.NumLinks() {
		t.Errorf("round trip changed size: %d/%d vs %d/%d",
			net2.NumHosts(), net2.NumLinks(), net.NumHosts(), net.NumLinks())
	}
	h, ok := net2.Host("web1")
	if !ok {
		t.Fatal("web1 missing after round trip")
	}
	if h.Zone != "dmz" || h.Role != "web server" || len(h.Choices["os"]) != 2 {
		t.Errorf("host fields lost: %+v", h)
	}
	if h.Preference["os"]["deb80"] != 0.9 {
		t.Error("preference lost in round trip")
	}
	ws, _ := net2.Host("ws1")
	if !ws.Legacy {
		t.Error("legacy flag lost in round trip")
	}
	if p, ok := cs2.Fixed("ws1", "os"); !ok || p != "winxp" {
		t.Error("fixed constraint lost in round trip")
	}
	if len(cs2.Constraints()) != 1 {
		t.Error("pairwise constraint lost in round trip")
	}
}

func TestReadSpecErrors(t *testing.T) {
	if _, _, err := ReadSpec(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON should fail")
	}
	badHost := `{"hosts":[{"id":"a","services":["os"],"choices":{}}],"links":[]}`
	if _, _, err := ReadSpec(strings.NewReader(badHost)); err == nil {
		t.Error("host without candidates should fail")
	}
	badLink := `{"hosts":[{"id":"a","services":["os"],"choices":{"os":["p"]}}],"links":[{"a":"a","b":"zz"}]}`
	if _, _, err := ReadSpec(strings.NewReader(badLink)); err == nil {
		t.Error("link to unknown host should fail")
	}
	badConstraint := `{"hosts":[{"id":"a","services":["os"],"choices":{"os":["p"]}}],
		"fixed":[{"host":"a","service":"os","product":"nope"}]}`
	if _, _, err := ReadSpec(strings.NewReader(badConstraint)); err == nil {
		t.Error("fixed product outside the candidate list should fail")
	}
}

func TestAssignmentJSONRoundTrip(t *testing.T) {
	a := NewAssignment()
	a.Set("h1", "os", "win7")
	a.Set("h2", "db", "mysql55")
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b := NewAssignment()
	if err := json.Unmarshal(data, b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !a.Equal(b) {
		t.Errorf("round trip changed assignment: %v vs %v", a, b)
	}
	if err := json.Unmarshal([]byte("12"), b); err == nil {
		t.Error("unmarshalling a number should fail")
	}
}

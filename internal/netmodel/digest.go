package netmodel

// Record-set digests: an order-independent fingerprint over a set of WAL
// record versions, used by the replication plane (internal/replic) to decide
// cheaply whether two nodes hold the same per-session record set and to
// verify that a rateless reconciliation round decoded the remote set
// completely.  The digest is the XOR-fold of a strong 64-bit mix of each
// member, so Add and Remove are the same involution and maintaining the
// digest incrementally costs O(1) per record.
//
// XOR-folding a mixed value is not collision-resistant against an adversary
// who controls set members, but record versions are small monotone integers
// chosen by the serving plane, and every record carries an assignment-hash
// chain that authenticates the actual state — the digest only has to make
// accidental divergence visible, which a 64-bit avalanche mix does.

// Mix64 is the splitmix64 finalizer over one word, offset by the golden-ratio
// increment so Mix64(0) is non-zero: a bijective avalanche mixing all 64 bits
// of v into all 64 bits of the result.  It is the shared hash primitive of
// the record-set digest and the replication plane's coded symbols.
func Mix64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// SetDigest is the order-independent digest of a set of record versions.
// The zero value is the digest of the empty set.
type SetDigest uint64

// Add folds version v into the digest.  Adding the same version twice
// cancels out — callers maintain true sets, not multisets.
func (d *SetDigest) Add(v uint64) { *d ^= SetDigest(Mix64(v)) }

// Remove removes version v from the digest (XOR is its own inverse).
func (d *SetDigest) Remove(v uint64) { *d ^= SetDigest(Mix64(v)) }

// DigestOf returns the digest of the given versions.
func DigestOf(versions []uint64) SetDigest {
	var d SetDigest
	for _, v := range versions {
		d.Add(v)
	}
	return d
}

// DigestOfRange returns the digest of the contiguous version range
// [from, to] — the shape of a primary's retained record set.  An empty
// range (from > to) digests to zero.
func DigestOfRange(from, to uint64) SetDigest {
	var d SetDigest
	for v := from; v <= to && v >= from; v++ {
		d.Add(v)
	}
	return d
}

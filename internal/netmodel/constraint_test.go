package netmodel

import (
	"errors"
	"strings"
	"testing"
)

func constraintNetwork(t *testing.T) *Network {
	t.Helper()
	net := New()
	for _, id := range []HostID{"a", "b"} {
		h := &Host{
			ID:       id,
			Services: []ServiceID{"os", "wb"},
			Choices: map[ServiceID][]ProductID{
				"os": {"win7", "ubuntu"},
				"wb": {"ie", "chrome"},
			},
		}
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddLink("a", "b"); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConstraintString(t *testing.T) {
	c := Constraint{Host: "a", ServiceM: "os", ServiceN: "wb", ProductJ: "ubuntu", ProductK: "ie", Mode: Forbid}
	if got := c.String(); !strings.Contains(got, "-ie") || !strings.Contains(got, "+ubuntu") {
		t.Errorf("String() = %q", got)
	}
	g := Constraint{Host: AllHosts, ServiceM: "os", ServiceN: "wb", ProductJ: "win7", ProductK: "ie", Mode: Require}
	if got := g.String(); !strings.Contains(got, "ALL") || !strings.Contains(got, "+ie") {
		t.Errorf("global String() = %q", got)
	}
	if !g.Global() || c.Global() {
		t.Error("Global() misreported")
	}
}

func TestConstraintValidate(t *testing.T) {
	net := constraintNetwork(t)
	valid := Constraint{Host: "a", ServiceM: "os", ServiceN: "wb", ProductJ: "ubuntu", ProductK: "ie", Mode: Forbid}
	if err := valid.Validate(net); err != nil {
		t.Errorf("valid constraint rejected: %v", err)
	}
	global := Constraint{Host: AllHosts, ServiceM: "os", ServiceN: "wb", ProductJ: "win7", ProductK: "ie", Mode: Require}
	if err := global.Validate(net); err != nil {
		t.Errorf("valid global constraint rejected: %v", err)
	}
	tests := []Constraint{
		{Host: "zz", ServiceM: "os", ServiceN: "wb", ProductJ: "x", ProductK: "y", Mode: Forbid},
		{Host: "a", ServiceM: "db", ServiceN: "wb", ProductJ: "x", ProductK: "y", Mode: Forbid},
		{Host: "a", ServiceM: "os", ServiceN: "db", ProductJ: "x", ProductK: "y", Mode: Forbid},
		{Host: "a", ServiceM: "os", ServiceN: "wb", ProductJ: "", ProductK: "y", Mode: Forbid},
		{Host: "a", ServiceM: "os", ServiceN: "wb", ProductJ: "x", ProductK: "y"},
	}
	for i, c := range tests {
		if err := c.Validate(net); err == nil {
			t.Errorf("case %d: invalid constraint %s accepted", i, c)
		}
	}
}

func TestConstraintSatisfiedBy(t *testing.T) {
	net := constraintNetwork(t)
	forbid := Constraint{Host: "a", ServiceM: "os", ServiceN: "wb", ProductJ: "ubuntu", ProductK: "ie", Mode: Forbid}
	require := Constraint{Host: AllHosts, ServiceM: "os", ServiceN: "wb", ProductJ: "win7", ProductK: "ie", Mode: Require}

	a := NewAssignment()
	a.Set("a", "os", "ubuntu")
	a.Set("a", "wb", "ie")
	a.Set("b", "os", "win7")
	a.Set("b", "wb", "chrome")

	if forbid.SatisfiedBy(a, net, "a") {
		t.Error("forbid constraint should be violated: ubuntu+ie on host a")
	}
	if forbid.SatisfiedBy(a, net, "b") != true {
		t.Error("forbid constraint on host a should not constrain host b")
	}
	if require.SatisfiedBy(a, net, "b") {
		t.Error("require constraint violated on b: win7 without ie")
	}
	// Condition product not selected -> vacuously satisfied.
	if !require.SatisfiedBy(a, net, "a") {
		t.Error("require constraint should be vacuous when the conditioning product is absent")
	}

	fixed := a.Clone()
	fixed.Set("a", "wb", "chrome")
	fixed.Set("b", "wb", "ie")
	if !forbid.SatisfiedBy(fixed, net, "a") || !require.SatisfiedBy(fixed, net, "b") {
		t.Error("corrected assignment should satisfy both constraints")
	}
}

func TestConstraintSetFixAndViolations(t *testing.T) {
	net := constraintNetwork(t)
	cs := NewConstraintSet()
	if !cs.Empty() {
		t.Error("new constraint set should be empty")
	}
	cs.Fix("a", "os", "win7")
	cs.Add(Constraint{Host: AllHosts, ServiceM: "os", ServiceN: "wb", ProductJ: "ubuntu", ProductK: "ie", Mode: Forbid})
	if cs.Empty() || cs.Len() != 2 {
		t.Errorf("Len = %d, want 2", cs.Len())
	}
	if p, ok := cs.Fixed("a", "os"); !ok || p != "win7" {
		t.Errorf("Fixed = %v %v", p, ok)
	}
	if _, ok := cs.Fixed("b", "os"); ok {
		t.Error("unpinned host should not report a fixed product")
	}
	if err := cs.Validate(net); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	bad := NewConstraintSet()
	bad.Fix("a", "os", "not_a_candidate")
	if err := bad.Validate(net); err == nil {
		t.Error("pinning to a non-candidate should fail validation")
	}
	badHost := NewConstraintSet()
	badHost.Fix("zz", "os", "win7")
	if err := badHost.Validate(net); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("pinning an unknown host should fail, got %v", err)
	}

	a := NewAssignment()
	a.Set("a", "os", "ubuntu")
	a.Set("a", "wb", "ie")
	a.Set("b", "os", "win7")
	a.Set("b", "wb", "ie")
	violations := cs.Violations(a, net)
	if len(violations) != 2 {
		t.Fatalf("Violations = %v, want 2 entries", violations)
	}
	if err := cs.Check(a, net); !errors.Is(err, ErrViolated) {
		t.Errorf("Check should wrap ErrViolated, got %v", err)
	}

	ok := NewAssignment()
	ok.Set("a", "os", "win7")
	ok.Set("a", "wb", "ie")
	ok.Set("b", "os", "win7")
	ok.Set("b", "wb", "ie")
	if err := cs.Check(ok, net); err != nil {
		t.Errorf("satisfying assignment rejected: %v", err)
	}
}

func TestConstraintSetClone(t *testing.T) {
	cs := NewConstraintSet()
	cs.Fix("a", "os", "win7")
	cs.Add(Constraint{Host: "a", ServiceM: "os", ServiceN: "wb", ProductJ: "win7", ProductK: "ie", Mode: Require})
	clone := cs.Clone()
	clone.Fix("b", "os", "ubuntu")
	if cs.Len() == clone.Len() {
		t.Error("mutating the clone must not affect the original")
	}
	if got := len(cs.FixedHosts()); got != 1 {
		t.Errorf("FixedHosts = %d, want 1", got)
	}
	if got := len(cs.Constraints()); got != 1 {
		t.Errorf("Constraints = %d, want 1", got)
	}
}

package netmodel

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DotOptions controls Graphviz export.
type DotOptions struct {
	// Assignment, when non-nil, is rendered inside each host's label (the
	// Fig. 4 style of the paper).
	Assignment *Assignment
	// HighlightHosts are drawn with a bold border (e.g. attack entry points
	// and the target).
	HighlightHosts []HostID
	// Name is the graph name (default "network").
	Name string
}

// zonePalette maps zone names to fill colours; unknown zones get a neutral
// grey.  Colours are ordinary Graphviz X11 names.
var zonePalette = map[string]string{
	"corporate":  "lightblue",
	"dmz":        "khaki",
	"operations": "lightsalmon",
	"control":    "lightcoral",
	"clients":    "palegreen",
	"remote":     "paleturquoise",
	"vendors":    "plum",
	"field":      "lightgrey",
}

// WriteDot renders the network (and optionally an assignment) as a Graphviz
// dot graph, grouping hosts of the same zone into clusters so that the output
// resembles the zoned ICS figures of the paper.
func WriteDot(w io.Writer, n *Network, opts DotOptions) error {
	if n == nil {
		return fmt.Errorf("netmodel: nil network")
	}
	name := opts.Name
	if name == "" {
		name = "network"
	}
	highlight := make(map[HostID]bool, len(opts.HighlightHosts))
	for _, h := range opts.HighlightHosts {
		highlight[h] = true
	}

	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	b.WriteString("  graph [fontname=\"Helvetica\", overlap=false];\n")
	b.WriteString("  node [shape=box, style=\"rounded,filled\", fontname=\"Helvetica\", fontsize=10];\n")

	// Group hosts by zone for clustered layout.
	byZone := make(map[string][]HostID)
	for _, hid := range n.Hosts() {
		h, _ := n.Host(hid)
		byZone[h.Zone] = append(byZone[h.Zone], hid)
	}
	zones := make([]string, 0, len(byZone))
	for z := range byZone {
		zones = append(zones, z)
	}
	sort.Strings(zones)

	for zi, zone := range zones {
		indent := "  "
		clustered := zone != ""
		if clustered {
			fmt.Fprintf(&b, "  subgraph \"cluster_%d\" {\n", zi)
			fmt.Fprintf(&b, "    label=%q;\n    style=dashed;\n", zone)
			indent = "    "
		}
		for _, hid := range byZone[zone] {
			h, _ := n.Host(hid)
			label := string(hid)
			if h.Role != "" {
				label += "\\n" + h.Role
			}
			if opts.Assignment != nil {
				for _, s := range h.Services {
					if p, ok := opts.Assignment.Get(hid, s); ok {
						label += fmt.Sprintf("\\n%s=%s", s, p)
					}
				}
			}
			fill := zonePalette[zone]
			if fill == "" {
				fill = "white"
			}
			attrs := fmt.Sprintf("label=%q, fillcolor=%q", label, fill)
			if h.Legacy {
				attrs += ", color=gray40, fontcolor=gray25"
			}
			if highlight[hid] {
				attrs += ", penwidth=3"
			}
			fmt.Fprintf(&b, "%s%q [%s];\n", indent, string(hid), attrs)
		}
		if clustered {
			b.WriteString("  }\n")
		}
	}
	for _, l := range n.Links() {
		fmt.Fprintf(&b, "  %q -- %q;\n", string(l.A), string(l.B))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Dot is WriteDot into a string.
func Dot(n *Network, opts DotOptions) (string, error) {
	var b strings.Builder
	if err := WriteDot(&b, n, opts); err != nil {
		return "", err
	}
	return b.String(), nil
}

package netmodel

import (
	"strings"
	"testing"
)

func limitsSpecJSON() string {
	return `{
  "hosts": [
    {"id": "a", "services": ["os"], "choices": {"os": ["p1", "p2"]}},
    {"id": "b", "services": ["os"], "choices": {"os": ["p1", "p2"]}}
  ],
  "links": [{"a": "a", "b": "b"}]
}`
}

func TestDecodeSpecStrict(t *testing.T) {
	net, _, err := DecodeSpecStrict(strings.NewReader(limitsSpecJSON()), SpecLimits{})
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if net.NumHosts() != 2 || net.NumLinks() != 1 {
		t.Fatalf("decoded network: %d hosts %d links", net.NumHosts(), net.NumLinks())
	}

	// Unknown fields are a probe or a bug, never valid data.
	if _, _, err := DecodeSpecStrict(strings.NewReader(`{"hosts": [], "evil": 1}`), SpecLimits{}); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Trailing garbage after the document fails.
	if _, _, err := DecodeSpecStrict(strings.NewReader(limitsSpecJSON()+`{"hosts": []}`), SpecLimits{}); err == nil {
		t.Fatal("trailing data accepted")
	}
	// Limits are enforced.
	if _, _, err := DecodeSpecStrict(strings.NewReader(limitsSpecJSON()), SpecLimits{MaxHosts: 1}); err == nil {
		t.Fatal("over-limit host count accepted")
	}
	if _, _, err := DecodeSpecStrict(strings.NewReader(limitsSpecJSON()), SpecLimits{MaxLinks: 1}); err != nil {
		t.Fatalf("at-limit link count rejected: %v", err)
	}
}

func TestSpecCheckLimits(t *testing.T) {
	spec := Spec{
		Hosts: []HostSpec{{
			ID:       "a",
			Services: []ServiceID{"s1", "s2", "s3"},
			Choices: map[ServiceID][]ProductID{
				"s1": {"p1", "p2", "p3"}, "s2": {"p1"}, "s3": {"p1"},
			},
		}},
		Constraints: []Constraint{{}},
		Fixed:       []FixedSpec{{Host: "a", Service: "s1", Product: "p1"}},
	}
	cases := []struct {
		name   string
		limits SpecLimits
		wantOK bool
	}{
		{"zero value disables checks", SpecLimits{}, true},
		{"at host limit", SpecLimits{MaxHosts: 1}, true},
		{"services per host", SpecLimits{MaxServicesPerHost: 2}, false},
		{"choices per service", SpecLimits{MaxChoicesPerService: 2}, false},
		{"constraints include fixed pins", SpecLimits{MaxConstraints: 1}, false},
		{"constraints at limit", SpecLimits{MaxConstraints: 2}, true},
	}
	for _, tc := range cases {
		err := spec.CheckLimits(tc.limits)
		if (err == nil) != tc.wantOK {
			t.Errorf("%s: err=%v wantOK=%v", tc.name, err, tc.wantOK)
		}
	}
}

func TestDeltaCheckLimits(t *testing.T) {
	big := &HostSpec{
		ID:       "x",
		Services: []ServiceID{"s1", "s2"},
		Choices:  map[ServiceID][]ProductID{"s1": {"p1", "p2", "p3"}, "s2": {"p1"}},
	}
	d := Delta{Ops: []DeltaOp{
		{Op: OpAddHost, Host: big},
		{Op: OpUpdateHostServices, ID: "x", Services: big.Services, Choices: big.Choices},
	}}
	if err := d.CheckLimits(DeltaLimits{}); err != nil {
		t.Fatalf("zero limits rejected delta: %v", err)
	}
	if err := d.CheckLimits(DeltaLimits{MaxOps: 1}); err == nil {
		t.Fatal("over-limit op count accepted")
	}
	if err := d.CheckLimits(DeltaLimits{Host: SpecLimits{MaxChoicesPerService: 2}}); err == nil {
		t.Fatal("oversized add_host shape accepted")
	}
	if err := d.CheckLimits(DeltaLimits{Host: SpecLimits{MaxServicesPerHost: 1}}); err == nil {
		t.Fatal("oversized update_services shape accepted")
	}
}

// TestDeltaCheckMirrorsApply pins the parity contract: Check must accept a
// delta iff Apply replays it cleanly, including intra-delta dependencies.
func TestDeltaCheckMirrorsApply(t *testing.T) {
	baseNet := func() *Network {
		n, _, err := DecodeSpecStrict(strings.NewReader(limitsSpecJSON()), SpecLimits{})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	newHost := func(id HostID) *HostSpec {
		return &HostSpec{ID: id, Services: []ServiceID{"os"}, Choices: map[ServiceID][]ProductID{"os": {"p1"}}}
	}
	cases := []struct {
		name  string
		delta Delta
	}{
		{"empty", Delta{}},
		{"valid mixed", Delta{Ops: []DeltaOp{
			{Op: OpAddHost, Host: newHost("c")},
			{Op: OpAddEdge, A: "a", B: "c"},
			{Op: OpRemoveEdge, A: "a", B: "b"},
			{Op: OpUpdateHostServices, ID: "b", Services: []ServiceID{"os"}, Choices: map[ServiceID][]ProductID{"os": {"p9"}}},
		}}},
		{"remove then re-add same host", Delta{Ops: []DeltaOp{
			{Op: OpRemoveHost, ID: "a"},
			{Op: OpAddHost, Host: newHost("a")},
			{Op: OpAddEdge, A: "a", B: "b"},
		}}},
		{"edge to host removed earlier in batch", Delta{Ops: []DeltaOp{
			{Op: OpRemoveHost, ID: "a"},
			{Op: OpAddEdge, A: "a", B: "b"},
		}}},
		{"duplicate add", Delta{Ops: []DeltaOp{{Op: OpAddHost, Host: newHost("a")}}}},
		{"unknown remove", Delta{Ops: []DeltaOp{{Op: OpRemoveHost, ID: "ghost"}}}},
		{"self link", Delta{Ops: []DeltaOp{{Op: OpAddEdge, A: "a", B: "a"}}}},
		{"re-add existing edge is a no-op", Delta{Ops: []DeltaOp{{Op: OpAddEdge, A: "a", B: "b"}}}},
		{"remove missing edge is a no-op", Delta{Ops: []DeltaOp{{Op: OpRemoveEdge, A: "b", B: "a"}}}},
		{"update with empty choices", Delta{Ops: []DeltaOp{
			{Op: OpUpdateHostServices, ID: "a", Services: []ServiceID{"os"}, Choices: map[ServiceID][]ProductID{}},
		}}},
		{"add host without candidates", Delta{Ops: []DeltaOp{
			{Op: OpAddHost, Host: &HostSpec{ID: "z", Services: []ServiceID{"os"}, Choices: map[ServiceID][]ProductID{}}},
		}}},
	}
	for _, tc := range cases {
		n := baseNet()
		checkErr := tc.delta.Check(n)
		applyErr := tc.delta.Apply(baseNet())
		if (checkErr == nil) != (applyErr == nil) {
			t.Errorf("%s: Check err=%v, Apply err=%v — must agree", tc.name, checkErr, applyErr)
		}
		// Check must never mutate the network.
		if n.NumHosts() != 2 || n.NumLinks() != 1 {
			t.Errorf("%s: Check mutated the network (%d hosts, %d links)", tc.name, n.NumHosts(), n.NumLinks())
		}
	}
}

func TestDeltaDecoderStrict(t *testing.T) {
	dec := NewDeltaDecoder(strings.NewReader(`{"ops":[{"op":"add_edge","a":"a","b":"b","evil":1}]}`)).Strict()
	if _, err := dec.Next(); err == nil {
		t.Fatal("strict decoder accepted unknown field")
	}
	// The non-strict decoder keeps the old tolerant behaviour.
	dec = NewDeltaDecoder(strings.NewReader(`{"ops":[{"op":"add_edge","a":"a","b":"b","evil":1}]}`))
	if _, err := dec.Next(); err != nil {
		t.Fatalf("tolerant decoder rejected delta: %v", err)
	}
}

// Package netmodel implements the formal network model of Section IV of the
// paper: a network N = <H, L, S, P> of hosts and links in which every host
// provides a set of services and every service can be delivered by one of
// several candidate products (Definition 2), together with product
// assignments (Definition 3) and local/global configuration constraints
// (Definition 4).
package netmodel

import (
	"errors"
	"fmt"
	"sort"
)

type (
	// HostID identifies a host (h_i in the paper).
	HostID string
	// ServiceID identifies a service (s_j in the paper), e.g. "os".
	ServiceID string
	// ProductID identifies a product (p^x_{s_j} in the paper), e.g. "win7".
	ProductID string
)

// Common service identifiers used by the case study.
const (
	ServiceOS       ServiceID = "os"
	ServiceBrowser  ServiceID = "web_browser"
	ServiceDatabase ServiceID = "database"
)

// Host is a single host of the network together with the services it must
// provide and the candidate products for each service.
type Host struct {
	// ID is the unique host identifier (e.g. "c1", "t5").
	ID HostID
	// Zone is the network zone the host belongs to (e.g. "corporate",
	// "dmz", "control"); informational, used by topology generators and
	// reporting.
	Zone string
	// Role is a human-readable description (e.g. "WinCC Web Client").
	Role string
	// Services lists the services the host must provide, in a stable order.
	Services []ServiceID
	// Choices maps every service to its candidate products.  A service with
	// exactly one candidate is effectively fixed (a legacy host).
	Choices map[ServiceID][]ProductID
	// Preference optionally biases the unary cost: Preference[s][p] is the
	// preference weight Pr(p | host) of Definition/Eq. 2.  Missing entries
	// fall back to the optimiser's uniform constant.
	Preference map[ServiceID]map[ProductID]float64
	// Legacy marks hosts that run outdated software and must not be
	// diversified (the grey hosts of Fig. 3 / Table IV).
	Legacy bool
}

// Clone returns a deep copy of the host.
func (h *Host) Clone() *Host {
	c := &Host{
		ID:       h.ID,
		Zone:     h.Zone,
		Role:     h.Role,
		Services: append([]ServiceID(nil), h.Services...),
		Legacy:   h.Legacy,
	}
	if h.Choices != nil {
		c.Choices = make(map[ServiceID][]ProductID, len(h.Choices))
		for s, ps := range h.Choices {
			c.Choices[s] = append([]ProductID(nil), ps...)
		}
	}
	if h.Preference != nil {
		c.Preference = make(map[ServiceID]map[ProductID]float64, len(h.Preference))
		for s, m := range h.Preference {
			mm := make(map[ProductID]float64, len(m))
			for p, v := range m {
				mm[p] = v
			}
			c.Preference[s] = mm
		}
	}
	return c
}

// HasService reports whether the host provides the service.
func (h *Host) HasService(s ServiceID) bool {
	for _, sv := range h.Services {
		if sv == s {
			return true
		}
	}
	return false
}

// CandidateIndex returns the position of a product in the host's candidate
// list for the service, or -1.
func (h *Host) CandidateIndex(s ServiceID, p ProductID) int {
	for i, cand := range h.Choices[s] {
		if cand == p {
			return i
		}
	}
	return -1
}

// Link is an undirected connection between two hosts (an element of L).
type Link struct {
	A HostID `json:"a"`
	B HostID `json:"b"`
}

// canonical returns the link with endpoints in lexicographic order so that
// (a,b) and (b,a) are the same edge.
func (l Link) canonical() Link {
	if l.B < l.A {
		return Link{A: l.B, B: l.A}
	}
	return l
}

// Network is the network N = <H, L, S, P> of Definition 2.
type Network struct {
	hosts map[HostID]*Host
	order []HostID
	links map[Link]struct{}
	adj   map[HostID]map[HostID]struct{}
	// journal, when non-nil, records every mutation as a DeltaOp (see
	// BeginJournal).
	journal *Delta
}

// New creates an empty network.
func New() *Network {
	return &Network{
		hosts: make(map[HostID]*Host),
		links: make(map[Link]struct{}),
		adj:   make(map[HostID]map[HostID]struct{}),
	}
}

// Errors returned by network construction and validation.
var (
	ErrDuplicateHost = errors.New("netmodel: duplicate host")
	ErrUnknownHost   = errors.New("netmodel: unknown host")
	ErrSelfLink      = errors.New("netmodel: self link")
	ErrNoServices    = errors.New("netmodel: host provides no services")
	ErrNoCandidates  = errors.New("netmodel: service has no candidate products")
)

// validateServiceSet checks a host's service list and candidate products:
// at least one service, no duplicate services, and at least one candidate
// per service.  Shared by AddHost and UpdateHostServices so host validation
// cannot drift between the construction and mutation paths.
func validateServiceSet(id HostID, services []ServiceID, choices map[ServiceID][]ProductID) error {
	if len(services) == 0 {
		return fmt.Errorf("%w: %q", ErrNoServices, id)
	}
	seen := make(map[ServiceID]struct{}, len(services))
	for _, s := range services {
		if _, dup := seen[s]; dup {
			return fmt.Errorf("netmodel: host %q lists service %q twice", id, s)
		}
		seen[s] = struct{}{}
		if len(choices[s]) == 0 {
			return fmt.Errorf("%w: host %q service %q", ErrNoCandidates, id, s)
		}
	}
	return nil
}

// AddHost inserts a host into the network.  The host is deep-copied, so the
// caller may reuse or modify the argument afterwards.
func (n *Network) AddHost(h *Host) error {
	if h == nil || h.ID == "" {
		return errors.New("netmodel: host must have an ID")
	}
	if _, ok := n.hosts[h.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateHost, h.ID)
	}
	if err := validateServiceSet(h.ID, h.Services, h.Choices); err != nil {
		return err
	}
	n.hosts[h.ID] = h.Clone()
	n.order = append(n.order, h.ID)
	n.adj[h.ID] = make(map[HostID]struct{})
	n.record(func() DeltaOp {
		spec := SpecOfHost(n.hosts[h.ID])
		return DeltaOp{Op: OpAddHost, Host: &spec}
	})
	return nil
}

// RemoveHost deletes a host and every link incident to it.
func (n *Network) RemoveHost(id HostID) error {
	if _, ok := n.hosts[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, id)
	}
	for nb := range n.adj[id] {
		delete(n.adj[nb], id)
		delete(n.links, Link{A: id, B: nb}.canonical())
	}
	delete(n.adj, id)
	delete(n.hosts, id)
	for i, hid := range n.order {
		if hid == id {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
	n.record(func() DeltaOp { return DeltaOp{Op: OpRemoveHost, ID: id} })
	return nil
}

// AddLink inserts an undirected link between two existing hosts.  Adding the
// same link twice is a no-op.
func (n *Network) AddLink(a, b HostID) error {
	if a == b {
		return fmt.Errorf("%w: %q", ErrSelfLink, a)
	}
	if _, ok := n.hosts[a]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, a)
	}
	if _, ok := n.hosts[b]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, b)
	}
	l := Link{A: a, B: b}.canonical()
	if _, ok := n.links[l]; ok {
		return nil
	}
	n.links[l] = struct{}{}
	n.adj[a][b] = struct{}{}
	n.adj[b][a] = struct{}{}
	n.record(func() DeltaOp { return DeltaOp{Op: OpAddEdge, A: l.A, B: l.B} })
	return nil
}

// AddEdge is AddLink under the mutation-API name used by deltas.
func (n *Network) AddEdge(a, b HostID) error { return n.AddLink(a, b) }

// RemoveEdge deletes the undirected link between two hosts.  Removing a link
// that does not exist is a no-op (the hosts must still exist).
func (n *Network) RemoveEdge(a, b HostID) error {
	if _, ok := n.hosts[a]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, a)
	}
	if _, ok := n.hosts[b]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, b)
	}
	l := Link{A: a, B: b}.canonical()
	if _, ok := n.links[l]; !ok {
		return nil
	}
	delete(n.links, l)
	delete(n.adj[a], b)
	delete(n.adj[b], a)
	n.record(func() DeltaOp { return DeltaOp{Op: OpRemoveEdge, A: l.A, B: l.B} })
	return nil
}

// RemoveLink is RemoveEdge under the legacy link terminology.
func (n *Network) RemoveLink(a, b HostID) error { return n.RemoveEdge(a, b) }

// UpdateHostServices replaces a host's service set, candidate products and
// preferences in one step (a "service upgrade" event).  The replacement is
// validated like AddHost and deep-copied; passing a nil preference clears the
// host's preferences.
func (n *Network) UpdateHostServices(id HostID, services []ServiceID, choices map[ServiceID][]ProductID, pref map[ServiceID]map[ProductID]float64) error {
	h, ok := n.hosts[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, id)
	}
	if err := validateServiceSet(id, services, choices); err != nil {
		return err
	}
	repl := &Host{ID: id, Services: services, Choices: choices, Preference: pref}
	repl = repl.Clone() // deep-copy the caller's slices/maps
	h.Services = repl.Services
	h.Choices = repl.Choices
	h.Preference = repl.Preference
	n.record(func() DeltaOp {
		spec := SpecOfHost(h)
		return DeltaOp{Op: OpUpdateHostServices, ID: id,
			Services: spec.Services, Choices: spec.Choices, Preference: spec.Preference}
	})
	return nil
}

// BeginJournal starts (or resets) mutation recording: every subsequent
// AddHost/RemoveHost/AddEdge/RemoveEdge/UpdateHostServices is appended to an
// internal Delta until TakeJournal is called.
func (n *Network) BeginJournal() {
	n.journal = &Delta{}
}

// TakeJournal returns the mutations recorded since BeginJournal and stops
// recording.  It returns an empty delta when no journal was started.
func (n *Network) TakeJournal() Delta {
	if n.journal == nil {
		return Delta{}
	}
	d := *n.journal
	n.journal = nil
	return d
}

// record appends a journal entry when recording is active.  The op is built
// lazily so non-journaling mutations pay nothing.
func (n *Network) record(op func() DeltaOp) {
	if n.journal != nil {
		n.journal.Ops = append(n.journal.Ops, op())
	}
}

// Host returns the host with the given ID.  The returned pointer refers to
// the network's internal copy; callers must not mutate it.
func (n *Network) Host(id HostID) (*Host, bool) {
	h, ok := n.hosts[id]
	return h, ok
}

// Hosts returns all host IDs in insertion order.
func (n *Network) Hosts() []HostID {
	out := make([]HostID, len(n.order))
	copy(out, n.order)
	return out
}

// NumHosts returns |H|.
func (n *Network) NumHosts() int { return len(n.order) }

// NumLinks returns |L|.
func (n *Network) NumLinks() int { return len(n.links) }

// Links returns every link exactly once, sorted for determinism.
func (n *Network) Links() []Link {
	out := make([]Link, 0, len(n.links))
	for l := range n.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Neighbors returns the hosts adjacent to the given host, sorted.
func (n *Network) Neighbors(id HostID) []HostID {
	adj := n.adj[id]
	out := make([]HostID, 0, len(adj))
	for h := range adj {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connected reports whether the two hosts share a link.
func (n *Network) Connected(a, b HostID) bool {
	_, ok := n.adj[a][b]
	return ok
}

// Services returns the union of all services provided by any host, sorted.
func (n *Network) Services() []ServiceID {
	set := make(map[ServiceID]struct{})
	for _, h := range n.hosts {
		for _, s := range h.Services {
			set[s] = struct{}{}
		}
	}
	out := make([]ServiceID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Products returns the union of all candidate products across hosts, sorted.
func (n *Network) Products() []ProductID {
	set := make(map[ProductID]struct{})
	for _, h := range n.hosts {
		for _, ps := range h.Choices {
			for _, p := range ps {
				set[p] = struct{}{}
			}
		}
	}
	out := make([]ProductID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SharedServices returns the services provided by both hosts — the set
// S_hi ∩ S_hj over which the pairwise cost of Eq. 3 is accumulated.
func (n *Network) SharedServices(a, b HostID) []ServiceID {
	ha, oka := n.hosts[a]
	hb, okb := n.hosts[b]
	if !oka || !okb {
		return nil
	}
	var out []ServiceID
	for _, s := range ha.Services {
		if hb.HasService(s) {
			out = append(out, s)
		}
	}
	return out
}

// Degree returns the number of neighbours of a host.
func (n *Network) Degree(id HostID) int { return len(n.adj[id]) }

// MaxDegree returns the largest degree in the network.
func (n *Network) MaxDegree() int {
	max := 0
	for _, adj := range n.adj {
		if len(adj) > max {
			max = len(adj)
		}
	}
	return max
}

// Validate performs a structural sanity check of the whole network.
func (n *Network) Validate() error {
	if len(n.order) == 0 {
		return errors.New("netmodel: network has no hosts")
	}
	for _, id := range n.order {
		h := n.hosts[id]
		if len(h.Services) == 0 {
			return fmt.Errorf("%w: %q", ErrNoServices, id)
		}
		for _, s := range h.Services {
			if len(h.Choices[s]) == 0 {
				return fmt.Errorf("%w: host %q service %q", ErrNoCandidates, id, s)
			}
		}
	}
	for l := range n.links {
		if _, ok := n.hosts[l.A]; !ok {
			return fmt.Errorf("%w: link endpoint %q", ErrUnknownHost, l.A)
		}
		if _, ok := n.hosts[l.B]; !ok {
			return fmt.Errorf("%w: link endpoint %q", ErrUnknownHost, l.B)
		}
	}
	return nil
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := New()
	for _, id := range n.order {
		// Errors cannot occur: the source network is already valid.
		_ = c.AddHost(n.hosts[id])
	}
	for l := range n.links {
		_ = c.AddLink(l.A, l.B)
	}
	return c
}

// ConnectedComponents returns the host sets of each connected component,
// largest first.  Useful for validating generated topologies.
func (n *Network) ConnectedComponents() [][]HostID {
	visited := make(map[HostID]bool, len(n.order))
	var comps [][]HostID
	for _, start := range n.order {
		if visited[start] {
			continue
		}
		var comp []HostID
		queue := []HostID{start}
		visited[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			for nb := range n.adj[cur] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// ShortestPathLengths returns BFS hop counts from the source host to every
// reachable host.  Used by the Bayesian-network layering and by reporting.
func (n *Network) ShortestPathLengths(src HostID) map[HostID]int {
	dist := make(map[HostID]int, len(n.order))
	if _, ok := n.hosts[src]; !ok {
		return dist
	}
	dist[src] = 0
	queue := []HostID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for nb := range n.adj[cur] {
			if _, seen := dist[nb]; !seen {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

package slam

import (
	"math"
	"time"

	"netdiversity/internal/fastrand"
)

// PoissonSchedule returns the open-loop arrival plan: offsets from the run
// start at which requests fire, drawn from an exponential inter-arrival
// distribution at the given mean rate (requests per second) until the
// duration is exhausted.  The schedule is a pure function of the seed, so an
// open-loop run offers the identical arrival process on every machine — the
// load is fixed and only the system's response varies.
func PoissonSchedule(seed int64, rate float64, dur time.Duration) []time.Duration {
	if rate <= 0 || dur <= 0 {
		return nil
	}
	rng := fastrand.New(uint64(seed))
	var out []time.Duration
	var at float64 // seconds
	limit := dur.Seconds()
	for {
		// 53-bit uniform in [0,1): Log1p(-u) is finite for every draw.
		u := float64(rng.Uint64()>>11) / (1 << 53)
		at += -math.Log1p(-u) / rate
		if at >= limit {
			return out
		}
		out = append(out, time.Duration(at*float64(time.Second)))
	}
}

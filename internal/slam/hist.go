package slam

import (
	"math/bits"
	"time"
)

// The histogram is HDR-style log-linear over integer microseconds: each
// power-of-two octave above 2^subBits is split into 2^subBits linear
// sub-buckets, bounding the relative quantile error at 2^-subBits (~3%)
// while keeping the bucket count small enough that one histogram per
// (worker, operation) pair is cheap.  Values are recorded as counts, so
// merging histograms is exact integer addition — quantiles computed from a
// merged histogram are identical no matter how the samples were sharded
// across workers.  That worker-count invariance is what makes p99 numbers
// comparable between a 4-worker CI smoke run and a 64-worker soak.
const (
	// histSubBits is the linear resolution of each octave: 2^histSubBits
	// sub-buckets, i.e. ~3% worst-case relative error on quantiles.
	histSubBits = 5
	// histBuckets spans values up to ~2^31 µs (>35 minutes), far beyond any
	// request latency this report can see before a timeout fires.
	histBuckets = (32 - histSubBits + 1) * (1 << histSubBits)
)

// Histogram is a fixed-size log-linear latency histogram over microsecond
// values.  The zero value is empty and ready to use; it is not safe for
// concurrent use — each worker records into its own and the runner merges.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
	sumUS  int64
	maxUS  int64
}

// histIndex maps a microsecond value onto its bucket.  Values below
// 2^histSubBits are exact (one bucket per integer); above, the top
// histSubBits mantissa bits select the linear sub-bucket within the octave.
func histIndex(us int64) int {
	v := uint64(us)
	if v < 1<<histSubBits {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	mant := (v >> uint(exp-histSubBits)) & (1<<histSubBits - 1)
	idx := (exp-histSubBits+1)<<histSubBits + int(mant)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// histBound returns the inclusive upper bound (µs) of a bucket — the value
// quantiles report, so the error is always pessimistic, never flattering.
func histBound(idx int) int64 {
	if idx < 1<<histSubBits {
		return int64(idx)
	}
	exp := idx>>histSubBits + histSubBits - 1
	mant := int64(idx & (1<<histSubBits - 1))
	low := int64(1)<<uint(exp) + mant<<uint(exp-histSubBits)
	return low + int64(1)<<uint(exp-histSubBits) - 1
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	us := int64(d / time.Microsecond)
	if us < 1 {
		us = 1
	}
	h.counts[histIndex(us)]++
	h.total++
	h.sumUS += us
	if us > h.maxUS {
		h.maxUS = us
	}
}

// Merge adds another histogram's counts into h.  Merging is exact, so
// quantiles of the merged histogram do not depend on how observations were
// sharded across the inputs.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sumUS += o.sumUS
	if o.maxUS > h.maxUS {
		h.maxUS = o.maxUS
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// MeanMS returns the exact mean latency in milliseconds (the sum is kept
// outside the buckets, so the mean carries no bucketing error).
func (h *Histogram) MeanMS() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sumUS) / float64(h.total) / 1e3
}

// MaxMS returns the exact maximum latency in milliseconds.
func (h *Histogram) MaxMS() float64 { return float64(h.maxUS) / 1e3 }

// QuantileMS returns the latency (milliseconds) at quantile q in [0,1]: the
// upper bound of the bucket holding the ceil(q·count)-th observation.
func (h *Histogram) QuantileMS(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := int64(q*float64(h.total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return float64(histBound(i)) / 1e3
		}
	}
	return float64(h.maxUS) / 1e3
}

// Buckets returns the non-empty buckets as (upper bound ms, count) pairs —
// the serialisable form of the histogram, from which any quantile can be
// recomputed offline.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, Bucket{LeMS: float64(histBound(i)) / 1e3, Count: c})
		}
	}
	return out
}

// Bucket is one non-empty histogram bucket in a report: Count observations
// at or below LeMS milliseconds (and above the previous bucket's bound).
type Bucket struct {
	LeMS  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

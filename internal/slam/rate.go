package slam

import (
	"context"
	"sync"
	"time"
)

// Limiter paces callers to a fixed rate by spacing token grants one
// inter-token interval apart — a pacing limiter, not a bursty token bucket,
// so an idle period does not bank a burst that would distort latency
// measurements when load resumes.  It is safe for concurrent use: closed-loop
// workers share one total-rate Limiter and additionally hold a per-worker
// one.
type Limiter struct {
	interval time.Duration
	mu       sync.Mutex
	next     time.Time
}

// NewLimiter returns a pacing limiter granting perSecond tokens per second,
// or nil when perSecond <= 0 (unlimited; Wait on a nil Limiter returns
// immediately).
func NewLimiter(perSecond float64) *Limiter {
	if perSecond <= 0 {
		return nil
	}
	return &Limiter{interval: time.Duration(float64(time.Second) / perSecond)}
}

// Wait blocks until the caller's token is due or the context is done.  A nil
// receiver never blocks.
func (l *Limiter) Wait(ctx context.Context) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	now := time.Now()
	at := l.next
	if at.Before(now) {
		at = now
	}
	l.next = at.Add(l.interval)
	l.mu.Unlock()
	d := time.Until(at)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

package slam

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// SchemaVersion identifies the divslam report layout.  Bump it on any
// incompatible change to Report, RunResult or OpStats; ReadFile rejects
// reports written by a different version.
//
// Version history: 1 initial layout; 2 added the per-run "mem" block
// (allocation/GC pressure of in-process runs); 3 added retry accounting
// (per-op "retries" counters and the retries/backoff config echo).
const SchemaVersion = 3

// Report is the machine-readable result of one divslam invocation: one
// RunResult per Vary value (a single run when Vary is empty).
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"`
	// Mode and Vary echo the load model and sweep axis of the invocation.
	Mode string      `json:"mode"`
	Vary string      `json:"vary,omitempty"`
	Runs []RunResult `json:"runs"`
}

// ConfigInfo is the normalised (defaults applied) configuration echo
// embedded in every RunResult, so a report is self-describing.
type ConfigInfo struct {
	URL            string  `json:"url,omitempty"`
	Mode           string  `json:"mode"`
	Tenants        int     `json:"tenants"`
	Hosts          int     `json:"hosts"`
	Degree         int     `json:"degree"`
	Services       int     `json:"services"`
	Solver         string  `json:"solver"`
	Seed           int64   `json:"seed"`
	Workers        int     `json:"workers"`
	Rate           float64 `json:"rate,omitempty"`
	WorkerRate     float64 `json:"worker_rate,omitempty"`
	DurS           float64 `json:"dur_s,omitempty"`
	Ops            int     `json:"ops,omitempty"`
	Mix            string  `json:"mix"`
	MaxIterations  int     `json:"max_iterations"`
	AssessRuns     int     `json:"assess_runs"`
	RequestTimeout float64 `json:"request_timeout_s"`
	Retries        int     `json:"retries,omitempty"`
	BackoffS       float64 `json:"backoff_s,omitempty"`
	ReplicaReads   bool    `json:"replica_reads,omitempty"`
}

// RunResult is the measurement of one sub-run.
type RunResult struct {
	Config ConfigInfo `json:"config"`
	// VaryValue is this sub-run's value of the swept field.
	VaryValue string `json:"vary_value,omitempty"`
	// SetupMS is the untimed setup phase: creating the tenant population.
	SetupMS float64 `json:"setup_ms"`
	// DurationS is the measured phase's wall-clock in seconds.
	DurationS float64 `json:"duration_s"`
	// OfferedRPS is the scheduled arrival rate (open loop only).
	OfferedRPS float64 `json:"offered_rps,omitempty"`
	// AchievedRPS is successful requests per second of measured wall-clock;
	// an achieved rate persistently below the offered rate is the open-loop
	// signature of saturation.
	AchievedRPS float64 `json:"achieved_rps"`
	// Total aggregates every operation; Ops breaks the same numbers down per
	// operation name (only operations with traffic appear).
	Total OpStats            `json:"total"`
	Ops   map[string]OpStats `json:"ops"`
	// Mem is the allocation/GC pressure of the measured phase, sampled from
	// runtime.MemStats.  Present only for in-process targets (URL empty),
	// where the server under load shares the driver's heap — a serve-path
	// allocation regression moves these numbers even when latency hides it.
	Mem *MemReport `json:"mem,omitempty"`
}

// MemReport is the heap accounting of one measured phase: the total bytes
// allocated while the clock ran, the same number amortised per completed
// request, and the garbage collector's activity in the window.  The sample
// covers the whole process — server and load workers — so absolute values
// include constant client-side bookkeeping; regressions in the serve path
// show up as growth against a baseline taken with the same config.
type MemReport struct {
	// AllocBytes is the TotalAlloc delta across the measured phase.
	AllocBytes uint64 `json:"alloc_bytes"`
	// AllocBytesPerOp is AllocBytes divided by completed requests.
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
	// GCCount is the number of GC cycles the phase triggered.
	GCCount uint32 `json:"gc_count"`
	// MaxPauseMS is the longest stop-the-world pause of those cycles in
	// milliseconds (the GC-induced tail-latency floor).
	MaxPauseMS float64 `json:"max_pause_ms"`
}

// OpStats is the accounting of one operation (or the run total): request
// and error counts, the error breakdown by backpressure class, and the
// latency distribution of the successful requests — exact mean and max plus
// log-bucketed quantiles that are invariant under the worker count.
type OpStats struct {
	// Count is the number of completed requests (successes plus errors);
	// OK is the successful subset the latency statistics cover.
	Count int64 `json:"count"`
	OK    int64 `json:"ok"`
	// Errors counts non-2xx and transport outcomes, broken down below:
	// Status429 session-limit rejections, Status503 drain rejections,
	// Status504 deadline hits, StatusOther any other unexpected status,
	// TransportErrors connection-level failures.
	Errors          int64 `json:"errors"`
	Status429       int64 `json:"status_429,omitempty"`
	Status503       int64 `json:"status_503,omitempty"`
	Status504       int64 `json:"status_504,omitempty"`
	StatusOther     int64 `json:"status_other,omitempty"`
	TransportErrors int64 `json:"transport_errors,omitempty"`
	// Retries counts the extra attempts the retry budget consumed on
	// 429/503 responses.  A retried-then-successful op counts once in OK
	// and its attempts here — retries are load, not failures, so they are
	// deliberately kept out of Count and Errors.
	Retries int64 `json:"retries,omitempty"`
	// Latency statistics in milliseconds over successful requests.
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
	// Buckets is the merged histogram (non-empty buckets only): any
	// quantile can be recomputed offline from it.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// statsOf renders one merged (histogram, outcome tally, retry count) tuple.
func statsOf(h *Histogram, outcomes *[numOutcomes]int64, retries int64) OpStats {
	s := OpStats{
		OK:              h.Count(),
		Status429:       outcomes[outcome429],
		Status503:       outcomes[outcome503],
		Status504:       outcomes[outcome504],
		StatusOther:     outcomes[outcomeOther],
		TransportErrors: outcomes[outcomeTransport],
		Retries:         retries,
		MeanMS:          h.MeanMS(),
		P50MS:           h.QuantileMS(0.50),
		P99MS:           h.QuantileMS(0.99),
		P999MS:          h.QuantileMS(0.999),
		MaxMS:           h.MaxMS(),
		Buckets:         h.Buckets(),
	}
	s.Errors = s.Status429 + s.Status503 + s.Status504 + s.StatusOther + s.TransportErrors
	s.Count = s.OK + s.Errors
	return s
}

// assemble merges the per-worker recorders into the sub-run's RunResult.
func assemble(cfg Config, recs []*recorder, setupMS float64, elapsed time.Duration, offered float64) RunResult {
	merged := &recorder{}
	for _, r := range recs {
		merged.merge(r)
	}
	res := RunResult{
		Config:     configInfo(cfg),
		SetupMS:    setupMS,
		DurationS:  elapsed.Seconds(),
		OfferedRPS: offered,
		Ops:        make(map[string]OpStats, numOps),
	}
	var totalHist Histogram
	var totalOutcomes [numOutcomes]int64
	var totalRetries int64
	names := Ops()
	for op := 0; op < numOps; op++ {
		st := statsOf(&merged.hists[op], &merged.outcomes[op], merged.retries[op])
		if st.Count > 0 {
			res.Ops[names[op]] = st
		}
		totalHist.Merge(&merged.hists[op])
		totalRetries += merged.retries[op]
		for c := 0; c < int(numOutcomes); c++ {
			totalOutcomes[c] += merged.outcomes[op][c]
		}
	}
	res.Total = statsOf(&totalHist, &totalOutcomes, totalRetries)
	if res.DurationS > 0 {
		res.AchievedRPS = float64(res.Total.OK) / res.DurationS
	}
	return res
}

// configInfo renders the normalised config echo of a sub-run.
func configInfo(cfg Config) ConfigInfo {
	return ConfigInfo{
		URL:            cfg.URL,
		Mode:           cfg.Mode,
		Tenants:        cfg.Tenants,
		Hosts:          cfg.Hosts,
		Degree:         cfg.Degree,
		Services:       cfg.Services,
		Solver:         cfg.Solver,
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
		Rate:           cfg.Rate,
		WorkerRate:     cfg.WorkerRate,
		DurS:           cfg.Dur.Seconds(),
		Ops:            cfg.Ops,
		Mix:            cfg.Mix,
		MaxIterations:  cfg.MaxIterations,
		AssessRuns:     cfg.AssessRuns,
		RequestTimeout: cfg.RequestTimeout.Seconds(),
		Retries:        cfg.Retries,
		BackoffS:       cfg.Backoff.Seconds(),
		ReplicaReads:   cfg.ReplicaReads,
	}
}

// Validate checks the structural invariants of a report.
func (r *Report) Validate() error {
	if r == nil {
		return fmt.Errorf("slam: nil report")
	}
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("slam: report schema version %d, this build expects %d", r.SchemaVersion, SchemaVersion)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("slam: report has no runs")
	}
	return nil
}

// WriteFile writes the report as indented JSON with a trailing newline.
func (r *Report) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("slam: parsing %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("slam: %s: %w", path, err)
	}
	return &r, nil
}

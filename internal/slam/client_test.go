package slam

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"netdiversity/internal/serve"
)

// TestBackpressureAccounting runs a create-heavy mix against a remote-mode
// server sized so the transient create sessions trip the session limit: the
// run must complete with the 429 rejections recorded in the accounting (and
// the Retry-After contract honoured server-side), not abort.
func TestBackpressureAccounting(t *testing.T) {
	cfg := Config{
		Tenants:  2,
		Hosts:    10,
		Degree:   4,
		Services: 2,
		Workers:  4,
		Ops:      60,
		Mix:      "read=10,create=90",
		Seed:     11,
	}
	cfg = cfg.withDefaults()
	// Exactly the tenant population fits: every transient create is a 429.
	srv := serve.New(serve.Config{
		MaxSessions:    cfg.Tenants,
		RequestTimeout: cfg.RequestTimeout,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // closed below
	defer httpSrv.Close()
	cfg.URL = "http://" + ln.Addr().String()

	rep, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Runs[0]
	createStats, ok := res.Ops[OpCreate]
	if !ok {
		t.Fatalf("create op missing from stats: %v", res.Ops)
	}
	if createStats.Status429 == 0 {
		t.Fatalf("create ops against a full server recorded no 429s: %+v", createStats)
	}
	if createStats.OK != 0 {
		t.Errorf("create ops succeeded against a full server: %+v", createStats)
	}
	if res.Total.Errors != createStats.Status429 {
		t.Errorf("total errors %d, want exactly the %d create rejections", res.Total.Errors, createStats.Status429)
	}
	// The server's own counters must agree with the client-side accounting.
	if got := srv.Stats().Rejected429; got != createStats.Status429 {
		t.Errorf("server counted %d rejections, client observed %d", got, createStats.Status429)
	}
}

// TestRetryAfterHeader pins the backpressure header contract divslam's
// documentation promises: 429 and 503 responses carry Retry-After.
func TestRetryAfterHeader(t *testing.T) {
	srv := serve.New(serve.Config{MaxSessions: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // closed below
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	cfg := Config{Tenants: 2, Hosts: 8, Degree: 3, Services: 2}.withDefaults()
	tenants, err := buildTenants(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt := &target{base: base, client: http.DefaultClient, shutdown: func() {}}
	ctx := context.Background()
	if err := tgt.post(ctx, "/v1/networks", tenants[0].createBody, http.StatusCreated); err != nil {
		t.Fatal(err)
	}
	resp2, err := tgt.client.Post(base+"/v1/networks", "application/json",
		bytes.NewReader(tenants[1].createBody))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second create: status %d, want 429", resp2.StatusCode)
	}
	if got := resp2.Header.Get("Retry-After"); got == "" {
		t.Error("429 response missing Retry-After")
	}

	srv.Drain()
	resp3, err := tgt.client.Post(base+"/v1/networks", "application/json",
		bytes.NewReader(tenants[1].createBody))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining create: status %d, want 503", resp3.StatusCode)
	}
	if got := resp3.Header.Get("Retry-After"); got == "" {
		t.Error("503 response missing Retry-After")
	}
}

// TestIssueRetryBudget pins the retry contract: 429/503 responses are
// retried up to the budget honouring Retry-After, consumed retries are
// reported separately from errors, and a retried-then-successful operation
// is one success.
func TestIssueRetryBudget(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/networks/tn/assignment", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	tgt := &target{base: ts.URL, client: ts.Client()}
	tn := &tenant{id: "tn"}
	cfg := Config{Retries: 3, Backoff: time.Millisecond}

	out, retries := tgt.issueRetry(context.Background(), cfg, opIdxRead, tn, 1)
	if out != outcomeOK || retries != 2 {
		t.Fatalf("retry run: outcome %v retries %d, want OK/2", out, retries)
	}

	// A budget smaller than the outage reports the final backpressure
	// outcome with the budget fully consumed.
	calls.Store(0)
	cfg.Retries = 1
	out, retries = tgt.issueRetry(context.Background(), cfg, opIdxRead, tn, 1)
	if out != outcome503 || retries != 1 {
		t.Fatalf("exhausted budget: outcome %v retries %d, want 503/1", out, retries)
	}

	// Zero budget never retries — the classic fire-once behaviour.
	calls.Store(0)
	cfg.Retries = 0
	out, retries = tgt.issueRetry(context.Background(), cfg, opIdxRead, tn, 1)
	if out != outcome503 || retries != 0 || calls.Load() != 1 {
		t.Fatalf("zero budget: outcome %v retries %d calls %d", out, retries, calls.Load())
	}

	// Retry accounting flows into the report separately from errors.
	rec := &recorder{}
	rec.record(opIdxRead, outcomeOK, time.Millisecond, 2)
	st := statsOf(&rec.hists[opIdxRead], &rec.outcomes[opIdxRead], rec.retries[opIdxRead])
	if st.OK != 1 || st.Errors != 0 || st.Retries != 2 || st.Count != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

package slam

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoissonScheduleDeterministic checks the arrival schedule is a pure
// function of the seed: identical per seed, different across seeds.
func TestPoissonScheduleDeterministic(t *testing.T) {
	a := PoissonSchedule(42, 500, 2*time.Second)
	b := PoissonSchedule(42, 500, 2*time.Second)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ across identical seeds: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	c := PoissonSchedule(43, 500, 2*time.Second)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("schedules identical across different seeds")
	}
}

// TestPoissonScheduleRate checks the arrival count is near rate·duration and
// every offset lies inside the window in increasing order.
func TestPoissonScheduleRate(t *testing.T) {
	const rate, durS = 1000.0, 5.0
	sched := PoissonSchedule(1, rate, time.Duration(durS*float64(time.Second)))
	want := rate * durS
	if n := float64(len(sched)); n < want*0.9 || n > want*1.1 {
		t.Fatalf("schedule has %d arrivals, want ~%.0f", len(sched), want)
	}
	prev := time.Duration(-1)
	for i, off := range sched {
		if off <= prev {
			t.Fatalf("offset %d not increasing: %v after %v", i, off, prev)
		}
		if off < 0 || off >= time.Duration(durS*float64(time.Second)) {
			t.Fatalf("offset %d outside the window: %v", i, off)
		}
		prev = off
	}
}

// TestPoissonScheduleEmpty checks degenerate parameters yield no arrivals.
func TestPoissonScheduleEmpty(t *testing.T) {
	if s := PoissonSchedule(1, 0, time.Second); s != nil {
		t.Errorf("rate 0 must yield no schedule, got %d arrivals", len(s))
	}
	if s := PoissonSchedule(1, 100, 0); s != nil {
		t.Errorf("duration 0 must yield no schedule, got %d arrivals", len(s))
	}
}

// TestLimiterTotalCap checks concurrent workers sharing one limiter cannot
// exceed the total rate (run under -race in CI, which also exercises the
// limiter's internal locking).
func TestLimiterTotalCap(t *testing.T) {
	const rate = 200.0
	const window = 300 * time.Millisecond
	lim := NewLimiter(rate)
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lim.Wait(ctx) == nil {
				ops.Add(1)
			}
		}()
	}
	wg.Wait()
	// The pacer grants at most rate·window tokens plus the initial burst of
	// one-per-worker that found next unset; allow 50% headroom for timer
	// slop before calling it a violation.
	max := int64(rate*window.Seconds()*1.5) + 8
	if got := ops.Load(); got > max {
		t.Fatalf("total limiter let %d ops through in %v, cap ~%.0f", got, window, rate*window.Seconds())
	}
	if got := ops.Load(); got < int64(rate*window.Seconds())/2 {
		t.Fatalf("total limiter starved: %d ops in %v at rate %.0f", got, window, rate)
	}
}

// TestLimiterPerWorkerCap checks each worker's own limiter caps that worker
// independently of its siblings.
func TestLimiterPerWorkerCap(t *testing.T) {
	const workerRate = 100.0
	const window = 300 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	var wg sync.WaitGroup
	counts := make([]int64, 4)
	for w := range counts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lim := NewLimiter(workerRate)
			for lim.Wait(ctx) == nil {
				counts[w]++
			}
		}(w)
	}
	wg.Wait()
	max := int64(workerRate*window.Seconds()*1.5) + 1
	for w, got := range counts {
		if got > max {
			t.Errorf("worker %d: %d ops in %v, per-worker cap ~%.0f", w, got, window, workerRate*window.Seconds())
		}
	}
}

// TestLimiterNil checks the unlimited (nil) limiter never blocks.
func TestLimiterNil(t *testing.T) {
	var lim *Limiter
	if err := lim.Wait(context.Background()); err != nil {
		t.Fatalf("nil limiter returned %v", err)
	}
	if NewLimiter(0) != nil {
		t.Fatal("NewLimiter(0) must be nil (unlimited)")
	}
}

// TestLimiterContextCancel checks a waiting caller honours cancellation.
func TestLimiterContextCancel(t *testing.T) {
	lim := NewLimiter(1) // one token per second: the second Wait must block
	ctx, cancel := context.WithCancel(context.Background())
	if err := lim.Wait(ctx); err != nil {
		t.Fatalf("first Wait: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- lim.Wait(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled Wait returned nil")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Wait did not return")
	}
}

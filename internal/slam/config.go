// Package slam is the load-generation plane of the system: a configurable
// multi-tenant load generator (driven by cmd/divslam and the scenario "slam"
// suite) that slams a divd instance — in-process over loopback, or any
// remote base URL — with a weighted mix of create / delta / assess /
// assignment-read / metrics requests across hundreds of tenant sessions.
//
// Two load models are supported.  Closed-loop runs N workers, each issuing
// its next request as soon as the previous one returns, optionally paced by
// a per-worker and a shared total rate limit — the model of a fixed client
// population, which can never overload the server beyond N in-flight
// requests.  Open-loop fires requests on a seeded Poisson arrival schedule
// at a target offered rate regardless of completions — the model of an
// uncoordinated client population, whose latency measurement (taken from the
// scheduled arrival time, not the dispatch time) exposes queueing collapse
// the moment the server falls behind the offered rate.
//
// Latencies are recorded into per-(worker, operation) log-bucketed
// histograms (see Histogram) and merged after the run, so the reported
// p50/p99/p999 are invariant under the worker count; non-2xx responses are
// accounted per status class (429 admission rejections, 503 drain
// rejections, 504 deadline hits) rather than aborting the run, because
// backpressure behaviour under overload is precisely what the tool exists
// to measure.  A Vary axis sweeps one parameter (tenants, workers, rate,
// hosts, mix) across sub-runs of a single invocation, and the whole result
// is emitted as a schema-versioned JSON Report that docs/LOADTEST.md
// explains how to read.
package slam

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Operation names accepted by the Mix axis, in canonical report order.
const (
	// OpRead is GET /v1/networks/{id}/assignment — the lock-free snapshot
	// read path.
	OpRead = "read"
	// OpDelta is POST /v1/networks/{id}/deltas — a single-host preference
	// nudge driving an incremental re-optimisation.
	OpDelta = "delta"
	// OpMetrics is GET /v1/networks/{id}/metrics — writer-slot work with a
	// version-keyed memoised fast path.
	OpMetrics = "metrics"
	// OpAssess is POST /v1/networks/{id}/assess — campaign compile plus a
	// small Monte-Carlo batch on the shared solve scheduler.
	OpAssess = "assess"
	// OpCreate is POST /v1/networks (a transient session: cold solve) paired
	// with an untimed DELETE, exercising the admission/limit path.
	OpCreate = "create"
)

// Ops lists the operation names in canonical order.
func Ops() []string { return []string{OpRead, OpDelta, OpMetrics, OpAssess, OpCreate} }

// DefaultMix is the read-heavy steady-state mix used when Config.Mix is
// empty: mostly snapshot reads, a steady trickle of deltas and metric polls,
// occasional assessments and session creations.
const DefaultMix = "read=70,delta=15,metrics=8,assess=5,create=2"

// Config describes one divslam invocation.  Zero fields take the documented
// defaults (withDefaults); Vary expands one field across Values into
// sub-runs.
type Config struct {
	// URL targets a remote divd instance; empty boots an in-process server
	// on loopback (the hermetic mode CI and the scenario suite use).
	URL string
	// Mode is "closed" (default) or "open".
	Mode string
	// Tenants is the number of long-lived tenant sessions created before the
	// measured phase.  Default 4.
	Tenants int
	// Hosts, Degree, Services shape each tenant's generated network.
	// Defaults 50 / 8 / 3.
	Hosts    int
	Degree   int
	Services int
	// Solver is the per-session solver name.  Default "trws".
	Solver string
	// MaxIterations bounds each session's solver iterations.  Default 40.
	MaxIterations int
	// AssessRuns is the Monte-Carlo run count of one assess request.
	// Default 20.
	AssessRuns int
	// Seed drives every random choice of the run: tenant network generation,
	// worker op/tenant draws, the Poisson arrival schedule, per-request
	// assessment seeds.  Default 42.
	Seed int64
	// Workers is the closed-loop worker count, and the open-loop dispatch
	// pool size.  Default 8.  Can Vary.
	Workers int
	// Rate caps the total request rate (both modes; it is the offered rate
	// in open loop, where it is required).  0 = unlimited in closed loop.
	// Can Vary.
	Rate float64
	// WorkerRate caps each closed-loop worker's own rate.  0 = unlimited.
	WorkerRate float64
	// Dur bounds the measured phase by time.  Default 10s when Ops is 0.
	Dur time.Duration
	// Ops bounds the measured phase by request count (closed loop only);
	// with Ops set and Dur zero the run is deterministic in length, which is
	// what the scenario suite wants.
	Ops int
	// Mix is the weighted operation mix, "op=weight,op=weight,..." over
	// read/delta/metrics/assess/create.  Default DefaultMix.  Can Vary.
	Mix string
	// RequestTimeout is the per-request client deadline (and the in-process
	// server's request timeout).  Default 30s.
	RequestTimeout time.Duration
	// ReplicaReads boots an in-process primary/follower replication pair
	// (internal/replic) instead of a single server and serves the read and
	// metrics operations from the follower while writes keep targeting the
	// primary — the replica-read deployment shape, measured under the same
	// load machinery.  Setup waits for the follower to converge on the tenant
	// population before the clock starts.  In-process mode only.
	ReplicaReads bool
	// Retries is the retry budget per logical operation: a 429 or 503
	// response is reissued up to this many times before the final outcome
	// is recorded.  0 (the default) keeps the classic fire-once behaviour.
	Retries int
	// Backoff is the base sleep before a retry when the response carries no
	// Retry-After hint; it doubles per attempt.  A present Retry-After
	// always wins.  Default 100ms.
	Backoff time.Duration
	// Vary names the field swept across Values: "tenants", "workers",
	// "rate", "hosts" or "mix".  Empty runs the config once.
	Vary string
	// Values are the Vary axis values, parsed per field.
	Values []string
}

// withDefaults returns the config with the documented defaults applied.
func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = "closed"
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Hosts <= 0 {
		c.Hosts = 50
	}
	if c.Degree <= 0 {
		c.Degree = 8
	}
	if c.Services <= 0 {
		c.Services = 3
	}
	if c.Solver == "" {
		c.Solver = "trws"
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 40
	}
	if c.AssessRuns <= 0 {
		c.AssessRuns = 20
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Dur <= 0 && c.Ops <= 0 {
		c.Dur = 10 * time.Second
	}
	if c.Mix == "" {
		c.Mix = DefaultMix
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	return c
}

// validate checks a fully-defaulted config.
func (c Config) validate() error {
	switch c.Mode {
	case "closed":
	case "open":
		if c.Rate <= 0 {
			return fmt.Errorf("slam: open-loop mode requires a target rate")
		}
		if c.Dur <= 0 {
			return fmt.Errorf("slam: open-loop mode requires a duration")
		}
	default:
		return fmt.Errorf("slam: unknown mode %q (known: closed, open)", c.Mode)
	}
	if c.ReplicaReads && c.URL != "" {
		return fmt.Errorf("slam: replica-read mode boots its own primary/follower pair and cannot target a remote URL")
	}
	if _, err := ParseMix(c.Mix); err != nil {
		return err
	}
	return nil
}

// opWeight is one entry of a parsed mix.
type opWeight struct {
	op     string
	weight int
}

// ParseMix parses a "op=weight,op=weight" mix string over the Ops names.
// Weights are positive integers; unlisted operations get weight 0.  The
// result is returned in canonical Ops order and its weights sum to the
// returned total.
func ParseMix(mix string) ([]int, error) {
	known := Ops()
	idx := make(map[string]int, len(known))
	for i, op := range known {
		idx[op] = i
	}
	weights := make([]int, len(known))
	seen := make(map[string]bool, len(known))
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("slam: mix entry %q is not op=weight", part)
		}
		op = strings.TrimSpace(op)
		i, okOp := idx[op]
		if !okOp {
			return nil, fmt.Errorf("slam: unknown mix operation %q (known: %s)", op, strings.Join(known, ", "))
		}
		if seen[op] {
			return nil, fmt.Errorf("slam: duplicate mix operation %q", op)
		}
		seen[op] = true
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("slam: mix weight %q of %s must be a non-negative integer", val, op)
		}
		weights[i] = w
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("slam: mix %q has no positive weight", mix)
	}
	return weights, nil
}

// VaryFields lists the config fields a Vary axis can sweep, sorted.
func VaryFields() []string {
	out := []string{"tenants", "workers", "rate", "hosts", "mix"}
	sort.Strings(out)
	return out
}

// Expand applies defaults, validates, and expands the Vary axis into the
// concrete sub-run configs (one per value; a single config when Vary is
// empty).  Each sub-run keeps the base seed: a sweep varies exactly one
// parameter against an otherwise identical workload.
func (c Config) Expand() ([]Config, error) {
	c = c.withDefaults()
	if c.Vary == "" {
		if len(c.Values) > 0 {
			return nil, fmt.Errorf("slam: values given without a vary field")
		}
		if err := c.validate(); err != nil {
			return nil, err
		}
		return []Config{c}, nil
	}
	if len(c.Values) == 0 {
		return nil, fmt.Errorf("slam: vary %q needs at least one value", c.Vary)
	}
	out := make([]Config, 0, len(c.Values))
	for _, v := range c.Values {
		sub := c
		sub.Values = nil
		switch c.Vary {
		case "tenants":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("slam: vary tenants value %q must be a positive integer", v)
			}
			sub.Tenants = n
		case "workers":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("slam: vary workers value %q must be a positive integer", v)
			}
			sub.Workers = n
		case "hosts":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 1 {
				return nil, fmt.Errorf("slam: vary hosts value %q must be an integer > 1", v)
			}
			sub.Hosts = n
		case "rate":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || r <= 0 {
				return nil, fmt.Errorf("slam: vary rate value %q must be a positive number", v)
			}
			sub.Rate = r
		case "mix":
			sub.Mix = v
		default:
			return nil, fmt.Errorf("slam: unknown vary field %q (known: %s)", c.Vary, strings.Join(VaryFields(), ", "))
		}
		if err := sub.validate(); err != nil {
			return nil, fmt.Errorf("slam: vary %s=%s: %w", c.Vary, v, err)
		}
		out = append(out, sub)
	}
	return out, nil
}

package slam

import (
	"testing"
	"time"

	"netdiversity/internal/fastrand"
)

// syntheticDurations draws a deterministic latency sample spanning several
// orders of magnitude (tens of µs to seconds), the shape a mixed-op run
// produces.
func syntheticDurations(seed uint64, n int) []time.Duration {
	rng := fastrand.New(seed)
	out := make([]time.Duration, n)
	for i := range out {
		us := 10 + rng.Intn(1000)
		switch rng.Intn(10) {
		case 0:
			us *= 1000 // the slow tail: 10ms–1s
		case 1, 2:
			us *= 50 // the mid band: 0.5ms–50ms
		}
		out[i] = time.Duration(us) * time.Microsecond
	}
	return out
}

// TestHistogramMergeWorkerCountInvariant shards one fixed sample across 1, 4
// and 16 per-worker histograms and checks the merged quantiles are
// identical — the property that makes p99 comparable across worker counts.
func TestHistogramMergeWorkerCountInvariant(t *testing.T) {
	samples := syntheticDurations(7, 10000)
	quantiles := []float64{0.5, 0.9, 0.99, 0.999, 1.0}
	var want []float64
	for _, workers := range []int{1, 4, 16} {
		shards := make([]Histogram, workers)
		for i, d := range samples {
			shards[i%workers].Record(d)
		}
		var merged Histogram
		for i := range shards {
			merged.Merge(&shards[i])
		}
		if merged.Count() != int64(len(samples)) {
			t.Fatalf("workers=%d: merged count %d, want %d", workers, merged.Count(), len(samples))
		}
		got := make([]float64, len(quantiles))
		for i, q := range quantiles {
			got[i] = merged.QuantileMS(q)
		}
		if want == nil {
			want = got
			continue
		}
		for i, q := range quantiles {
			if got[i] != want[i] {
				t.Errorf("workers=%d: q%.3f = %v, want %v (1 worker)", workers, q, got[i], want[i])
			}
		}
	}
}

// TestHistogramQuantileError checks the log-linear bucketing keeps the
// relative quantile error within the designed ~2^-histSubBits bound and
// never reports below the true value.
func TestHistogramQuantileError(t *testing.T) {
	var h Histogram
	const val = 123456 * time.Microsecond
	for i := 0; i < 100; i++ {
		h.Record(val)
	}
	got := h.QuantileMS(0.99)
	true_ := float64(val) / float64(time.Millisecond)
	if got < true_ {
		t.Fatalf("quantile %.3fms below the recorded value %.3fms", got, true_)
	}
	if got > true_*(1+1.0/(1<<histSubBits)) {
		t.Fatalf("quantile %.3fms exceeds the %.1f%% error bound of %.3fms",
			got, 100.0/(1<<histSubBits), true_)
	}
}

// TestHistogramExactStats checks the mean and max bypass the buckets.
func TestHistogramExactStats(t *testing.T) {
	var h Histogram
	h.Record(1 * time.Millisecond)
	h.Record(3 * time.Millisecond)
	if got := h.MeanMS(); got != 2 {
		t.Errorf("mean %v, want 2", got)
	}
	if got := h.MaxMS(); got != 3 {
		t.Errorf("max %v, want 3", got)
	}
	if got := h.Count(); got != 2 {
		t.Errorf("count %v, want 2", got)
	}
}

// TestHistogramBucketsRoundTrip checks a quantile recomputed from the
// serialised buckets matches the histogram's own answer.
func TestHistogramBucketsRoundTrip(t *testing.T) {
	var h Histogram
	for _, d := range syntheticDurations(11, 5000) {
		h.Record(d)
	}
	buckets := h.Buckets()
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, histogram holds %d", total, h.Count())
	}
	// p99 from the serialised form: first bucket whose cumulative count
	// reaches ceil(0.99 * total).
	rank := int64(0.99*float64(total) + 0.9999999)
	var cum int64
	var fromBuckets float64
	for _, b := range buckets {
		cum += b.Count
		if cum >= rank {
			fromBuckets = b.LeMS
			break
		}
	}
	if got := h.QuantileMS(0.99); got != fromBuckets {
		t.Errorf("p99 from buckets %v, from histogram %v", fromBuckets, got)
	}
}

// TestHistogramEmpty checks the zero-observation edge cases.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.QuantileMS(0.99) != 0 || h.MeanMS() != 0 || h.MaxMS() != 0 {
		t.Errorf("empty histogram must report zero statistics")
	}
	if h.Buckets() != nil {
		t.Errorf("empty histogram must have no buckets")
	}
}

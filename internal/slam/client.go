package slam

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/replic"
	"netdiversity/internal/serve"
)

// target is the divd instance under load: a base URL plus the client used to
// reach it, and (in-process mode) the shutdown hook tearing the server down.
// In replica-read mode readBase points the read-path operations at the
// follower and converged blocks until the follower has caught up with the
// tenant population (runOne calls it between setup and the measured phase).
type target struct {
	base      string
	readBase  string
	client    *http.Client
	converged func(ctx context.Context) error
	shutdown  func()
}

// readTarget is the base URL the read-path operations hit: the follower in
// replica-read mode, the primary otherwise.
func (t *target) readTarget() string {
	if t.readBase != "" {
		return t.readBase
	}
	return t.base
}

// dial resolves the config's target: a remote base URL verbatim, or a fresh
// in-process serve.Server listening on loopback.  The in-process server is
// sized so the load itself (tenants plus transient create-op sessions) never
// trips the session limit unless a sweep deliberately pushes past it.
func dial(cfg Config) (*target, error) {
	transport := &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
	}
	client := &http.Client{Transport: transport, Timeout: cfg.RequestTimeout}
	if cfg.URL != "" {
		return &target{base: cfg.URL, client: client, shutdown: func() {}}, nil
	}
	if cfg.ReplicaReads {
		return dialReplicaPair(cfg, client, transport)
	}
	srv := serve.New(serve.Config{
		MaxSessions:    cfg.Tenants + cfg.Workers + 64,
		RequestTimeout: cfg.RequestTimeout,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // closed by shutdown
	return &target{
		base:   "http://" + ln.Addr().String(),
		client: client,
		shutdown: func() {
			httpSrv.Close()
			transport.CloseIdleConnections()
		},
	}, nil
}

// dialReplicaPair boots the replica-read deployment shape in-process: a
// primary serve.Server with the replication hooks bound, a follower applying
// its stream through deterministic patch replay, and the anti-entropy loop
// running at a tight interval, wired over loopback exactly like two divd
// processes under -replicate-to / -follow.  Writes target the primary;
// target.readBase points reads at the follower.
func dialReplicaPair(cfg Config, client *http.Client, transport *http.Transport) (*target, error) {
	prim := replic.NewPrimary(replic.PrimaryOptions{})
	primSrv := serve.New(serve.Config{
		MaxSessions:    cfg.Tenants + cfg.Workers + 64,
		RequestTimeout: cfg.RequestTimeout,
		Replicator:     prim,
	})
	prim.Bind(primSrv)
	primMux := http.NewServeMux()
	primMux.Handle("/v1/replic/", prim.Handler())
	primMux.Handle("/", primSrv.Handler())
	primLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	primHTTP := &http.Server{Handler: primMux}
	go primHTTP.Serve(primLn) //nolint:errcheck // closed by shutdown
	primBase := "http://" + primLn.Addr().String()

	folSrv := serve.New(serve.Config{
		MaxSessions:    cfg.Tenants + cfg.Workers + 64,
		RequestTimeout: cfg.RequestTimeout,
	})
	folSrv.SetFollower(primBase)
	folLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		primHTTP.Close()
		return nil, err
	}
	folBase := "http://" + folLn.Addr().String()
	fol := replic.NewFollower(folSrv, primBase, replic.FollowerOptions{
		Interval:  100 * time.Millisecond,
		Advertise: folBase,
	})
	folMux := http.NewServeMux()
	folMux.Handle(replic.PathIngest, fol.IngestHandler())
	folMux.Handle("/", folSrv.Handler())
	folHTTP := &http.Server{Handler: folMux}
	go folHTTP.Serve(folLn) //nolint:errcheck // closed by shutdown
	fol.Run()
	prim.Attach(folBase)
	return &target{
		base:     primBase,
		readBase: folBase,
		client:   client,
		converged: func(ctx context.Context) error {
			for {
				behind := false
				for _, id := range primSrv.SessionIDs() {
					pv, ph, ok := primSrv.ReplicaVersion(id)
					if !ok {
						continue
					}
					fv, fh, ok := folSrv.ReplicaVersion(id)
					if !ok || fv != pv || fh != ph {
						behind = true
						break
					}
				}
				if !behind {
					return nil
				}
				select {
				case <-ctx.Done():
					return fmt.Errorf("slam: follower did not converge on the tenant population: %w", ctx.Err())
				case <-time.After(20 * time.Millisecond):
				}
			}
		},
		shutdown: func() {
			folHTTP.Close()
			primHTTP.Close()
			fol.Stop()
			prim.Close()
			transport.CloseIdleConnections()
		},
	}, nil
}

// tenant is one long-lived session under load: its ID plus the prebuilt
// request bodies the workers replay against it.  Bodies are marshalled once
// at setup so the measured phase times the server, not client-side JSON
// encoding of specs.
type tenant struct {
	id string
	// createBody recreates the session (used once at setup).
	createBody []byte
	// host/services/choices describe the host the delta op nudges.
	host     netmodel.HostID
	services []netmodel.ServiceID
	choices  map[netmodel.ServiceID][]netmodel.ProductID
}

// buildTenants generates the tenant population: each tenant gets its own
// network (seeded from the run seed plus the tenant index, so populations
// are deterministic yet distinct) over the shared synthetic similarity
// table, inlined into the create body as a custom table exactly as a real
// client would submit it.
func buildTenants(cfg Config) ([]*tenant, error) {
	genCfg := netgen.RandomConfig{
		Hosts:              cfg.Hosts,
		Degree:             cfg.Degree,
		Services:           cfg.Services,
		ProductsPerService: 4,
		Seed:               cfg.Seed,
	}
	sim := similarityEntries(genCfg)
	out := make([]*tenant, cfg.Tenants)
	for i := range out {
		tCfg := genCfg
		tCfg.Seed = cfg.Seed + int64(i)
		nw, err := netgen.Generate(tCfg, netgen.TopologyUniform)
		if err != nil {
			return nil, fmt.Errorf("slam: generating tenant %d: %w", i, err)
		}
		spec := netmodel.ToSpec(nw, nil)
		if len(spec.Hosts) == 0 {
			return nil, fmt.Errorf("slam: tenant %d generated an empty network", i)
		}
		t := &tenant{
			id:       fmt.Sprintf("slam-t%d", i),
			host:     spec.Hosts[0].ID,
			services: spec.Hosts[0].Services,
			choices:  spec.Hosts[0].Choices,
		}
		t.createBody, err = json.Marshal(map[string]any{
			"id":             t.id,
			"spec":           spec,
			"solver":         cfg.Solver,
			"seed":           tCfg.Seed,
			"max_iterations": cfg.MaxIterations,
			"similarity":     sim,
		})
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// similarityEntries renders the synthetic similarity table of the tenant
// catalogue in the create endpoint's custom-table form (off-diagonal
// nonzero pairs only).
func similarityEntries(genCfg netgen.RandomConfig) map[string]any {
	sim := netgen.SyntheticSimilarity(genCfg, 0.6)
	products := sim.Products()
	entries := []map[string]any{}
	for i, a := range products {
		for _, b := range products[i+1:] {
			if s := sim.Sim(a, b); s != 0 {
				entries = append(entries, map[string]any{"a": a, "b": b, "sim": s})
			}
		}
	}
	return map[string]any{"kind": "custom", "entries": entries}
}

// opOutcome classifies one completed request for the per-op accounting.
type opOutcome int

// Outcome classes: ok, the three backpressure statuses the server emits
// under load (429 session-limit, 503 draining, 504 deadline), any other
// non-expected status, and a transport-level failure.
const (
	outcomeOK opOutcome = iota
	outcome429
	outcome503
	outcome504
	outcomeOther
	outcomeTransport
	numOutcomes
)

// do issues one request and classifies the result, draining the body so the
// HTTP client reuses connections.  Only transport errors return err; HTTP
// error statuses are data, not failures — backpressure is the measurement.
// For 429/503 responses the parsed Retry-After header (0 when absent or
// unparsable) rides along so the retry loop can honour the server's hint.
func (t *target) do(ctx context.Context, method, path string, body []byte, wantStatus int) (opOutcome, time.Duration) {
	return t.doAt(ctx, t.base, method, path, body, wantStatus)
}

// doAt is do against an explicit base URL — the follower for replica reads.
func (t *target) doAt(ctx context.Context, base, method, path string, body []byte, wantStatus int) (opOutcome, time.Duration) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return outcomeTransport, 0
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return outcomeTransport, 0
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
	resp.Body.Close()
	switch {
	case resp.StatusCode == wantStatus:
		return outcomeOK, 0
	case resp.StatusCode == http.StatusTooManyRequests:
		return outcome429, retryAfter(resp)
	case resp.StatusCode == http.StatusServiceUnavailable:
		return outcome503, retryAfter(resp)
	case resp.StatusCode == http.StatusGatewayTimeout:
		return outcome504, 0
	default:
		return outcomeOther, 0
	}
}

// retryAfter parses a delay-seconds Retry-After header; 0 when absent or
// not a plain integer (the HTTP-date form is not worth honouring here).
func retryAfter(resp *http.Response) time.Duration {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// issueRetry performs one logical operation with the config's retry budget:
// a 429/503 outcome is retried up to cfg.Retries times, sleeping the
// server's Retry-After when present and an exponential cfg.Backoff
// (doubling per attempt) otherwise.  The returned outcome is the final
// attempt's; the count is the retries consumed, which the recorder accounts
// separately from errors — a retried-then-successful op is a success.
func (t *target) issueRetry(ctx context.Context, cfg Config, op int, tn *tenant, reqSeed int64) (opOutcome, int64) {
	var retries int64
	for {
		out, hint := t.issue(ctx, cfg, op, tn, reqSeed)
		if out != outcome429 && out != outcome503 || retries >= int64(cfg.Retries) {
			return out, retries
		}
		sleep := hint
		if sleep <= 0 {
			sleep = cfg.Backoff << retries
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return out, retries
		case <-timer.C:
		}
		retries++
	}
}

// issue performs one operation of the mix against a tenant.  reqSeed drives
// the randomised request parameters (delta nudge value, assessment seed,
// transient-session suffix) so a run's request stream is a pure function of
// the run seed.
func (t *target) issue(ctx context.Context, cfg Config, op int, tn *tenant, reqSeed int64) (opOutcome, time.Duration) {
	switch op {
	case opIdxRead:
		return t.doAt(ctx, t.readTarget(), http.MethodGet, "/v1/networks/"+tn.id+"/assignment", nil, http.StatusOK)
	case opIdxMetrics:
		return t.doAt(ctx, t.readTarget(), http.MethodGet, "/v1/networks/"+tn.id+"/metrics", nil, http.StatusOK)
	case opIdxDelta:
		body, err := json.Marshal(deltaBody(tn, reqSeed))
		if err != nil {
			return outcomeTransport, 0
		}
		return t.do(ctx, http.MethodPost, "/v1/networks/"+tn.id+"/deltas", body, http.StatusOK)
	case opIdxAssess:
		body, err := json.Marshal(map[string]any{
			"knowledge": "full",
			"mode":      "event",
			"runs":      cfg.AssessRuns,
			"max_ticks": 100,
			"seed":      reqSeed,
		})
		if err != nil {
			return outcomeTransport, 0
		}
		return t.do(ctx, http.MethodPost, "/v1/networks/"+tn.id+"/assess", body, http.StatusOK)
	case opIdxCreate:
		// A transient session: the create is the measured admission + cold
		// solve; the paired DELETE is bookkeeping outside the timed window
		// (the caller records the latency before cleanup runs).
		id := fmt.Sprintf("slam-x-%d", uint64(reqSeed))
		return t.do(ctx, http.MethodPost, "/v1/networks", createTransientBody(tn, id), http.StatusCreated)
	default:
		return outcomeTransport, 0
	}
}

// cleanupTransient deletes a transient create-op session outside the timed
// window; failures are ignored (the session may have been rejected at
// admission).
func (t *target) cleanupTransient(ctx context.Context, reqSeed int64) {
	id := fmt.Sprintf("slam-x-%d", uint64(reqSeed))
	t.do(ctx, http.MethodDelete, "/v1/networks/"+id, nil, http.StatusNoContent) //nolint:errcheck // best effort
}

// deltaBody builds the delta op of one request: an update_services on the
// tenant's nudge host that keeps services and choices identical and moves
// only a preference weight derived from the request seed.  The op is valid
// against any session state no matter how requests interleave — concurrent
// workers never race each other into 4xx conflicts — while still dirtying
// the host's unary factor enough to force a real incremental
// re-optimisation.
func deltaBody(tn *tenant, reqSeed int64) netmodel.Delta {
	pref := make(map[netmodel.ServiceID]map[netmodel.ProductID]float64, 1)
	if len(tn.services) > 0 {
		svc := tn.services[int(uint64(reqSeed)%uint64(len(tn.services)))]
		if ps := tn.choices[svc]; len(ps) > 0 {
			p := ps[int(uint64(reqSeed)/7%uint64(len(ps)))]
			pref[svc] = map[netmodel.ProductID]float64{
				p: float64(uint64(reqSeed)%1000) / 2000,
			}
		}
	}
	return netmodel.Delta{Ops: []netmodel.DeltaOp{{
		Op:         netmodel.OpUpdateHostServices,
		ID:         tn.host,
		Services:   tn.services,
		Choices:    tn.choices,
		Preference: pref,
	}}}
}

// createTransientBody reuses the tenant's prebuilt create body under a fresh
// session ID — a byte-level patch of the marshalled JSON, so the create op
// measures the server-side spec decode + cold solve, not client-side
// re-marshalling of the whole spec.
func createTransientBody(tn *tenant, id string) []byte {
	oldID := []byte(`"id":"` + tn.id + `"`)
	newID := []byte(`"id":"` + id + `"`)
	return bytes.Replace(tn.createBody, oldID, newID, 1)
}

// waitReady polls /healthz until the target responds or the context ends —
// remote targets may still be starting when a run begins.
func (t *target) waitReady(ctx context.Context) error {
	for {
		if out, _ := t.do(ctx, http.MethodGet, "/healthz", nil, http.StatusOK); out == outcomeOK {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("slam: target %s not ready: %w", t.base, ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

package slam

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netdiversity/internal/fastrand"
)

// Operation indices into per-worker recorder arrays, matching Ops() order.
const (
	opIdxRead = iota
	opIdxDelta
	opIdxMetrics
	opIdxAssess
	opIdxCreate
	numOps
)

// recorder accumulates one worker's measurements: a latency histogram per
// operation (successful requests only), an outcome tally per operation, and
// the retries consumed per operation (accounted separately from errors — a
// retried-then-successful op is one success that cost extra attempts).
// Workers own their recorder exclusively during the run; the runner merges
// them afterwards, so no measurement path takes a lock.
type recorder struct {
	hists    [numOps]Histogram
	outcomes [numOps][numOutcomes]int64
	retries  [numOps]int64
}

// record accounts one completed logical operation: its final outcome, its
// end-to-end latency (covering retry attempts and backoff sleeps) and the
// retries it consumed.
func (r *recorder) record(op int, out opOutcome, d time.Duration, retries int64) {
	r.outcomes[op][out]++
	r.retries[op] += retries
	if out == outcomeOK {
		r.hists[op].Record(d)
	}
}

// merge folds another recorder into r.
func (r *recorder) merge(o *recorder) {
	for op := 0; op < numOps; op++ {
		r.hists[op].Merge(&o.hists[op])
		r.retries[op] += o.retries[op]
		for c := 0; c < int(numOutcomes); c++ {
			r.outcomes[op][c] += o.outcomes[op][c]
		}
	}
}

// Run executes the config — every sub-run of its Vary axis in order — and
// returns the assembled report.  onRun, when non-nil, observes each
// completed sub-run (cmd/divslam uses it to print progress between long
// sweep legs).
func Run(ctx context.Context, cfg Config, onRun func(RunResult)) (*Report, error) {
	subs, err := cfg.Expand()
	if err != nil {
		return nil, err
	}
	base := cfg.withDefaults()
	rep := &Report{
		SchemaVersion: SchemaVersion,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		Mode:          base.Mode,
		Vary:          base.Vary,
	}
	for i, sub := range subs {
		res, err := runOne(ctx, sub)
		if err != nil {
			return nil, err
		}
		if base.Vary != "" {
			res.VaryValue = base.Values[i]
		}
		rep.Runs = append(rep.Runs, res)
		if onRun != nil {
			onRun(res)
		}
	}
	return rep, nil
}

// runOne executes one fully-expanded sub-run: dial the target, create the
// tenant population (setup, untimed), drive the measured phase in the
// configured load mode, and assemble the per-operation statistics.
func runOne(ctx context.Context, cfg Config) (RunResult, error) {
	tgt, err := dial(cfg)
	if err != nil {
		return RunResult{}, err
	}
	defer tgt.shutdown()
	if err := tgt.waitReady(ctx); err != nil {
		return RunResult{}, err
	}
	tenants, err := buildTenants(cfg)
	if err != nil {
		return RunResult{}, err
	}
	setupStart := time.Now()
	if err := createTenants(ctx, cfg, tgt, tenants); err != nil {
		return RunResult{}, err
	}
	if tgt.converged != nil {
		// Replica-read mode: the measured phase reads from the follower, so
		// setup is not done until it holds the whole tenant population at the
		// primary's versions.  The wait is part of the untimed setup phase.
		cctx, cancel := context.WithTimeout(ctx, cfg.RequestTimeout)
		err := tgt.converged(cctx)
		cancel()
		if err != nil {
			return RunResult{}, err
		}
	}
	setupMS := float64(time.Since(setupStart)) / float64(time.Millisecond)

	weights, err := ParseMix(cfg.Mix)
	if err != nil {
		return RunResult{}, err
	}
	recs := make([]*recorder, cfg.Workers)
	for i := range recs {
		recs[i] = &recorder{}
	}
	// For in-process targets the server shares this heap, so a MemStats
	// sample around the measured phase captures serve-path allocation and GC
	// pressure (plus the load workers' constant overhead).  A forced GC
	// before the first sample settles setup garbage so the delta covers the
	// measured phase only; against a remote URL the sample would only see
	// the client and is omitted.
	inProcess := cfg.URL == ""
	var memBefore runtime.MemStats
	if inProcess {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}
	var elapsed time.Duration
	var offered float64
	switch cfg.Mode {
	case "open":
		elapsed, offered, err = runOpen(ctx, cfg, tgt, tenants, weights, recs)
	default:
		elapsed, err = runClosed(ctx, cfg, tgt, tenants, weights, recs)
	}
	if err != nil {
		return RunResult{}, err
	}
	res := assemble(cfg, recs, setupMS, elapsed, offered)
	if inProcess {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		res.Mem = memDelta(&memBefore, &memAfter, res.Total.Count)
	}
	return res, nil
}

// memDelta renders the MemStats window between two samples as a MemReport.
func memDelta(before, after *runtime.MemStats, ops int64) *MemReport {
	m := &MemReport{
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		GCCount:    after.NumGC - before.NumGC,
	}
	if ops > 0 {
		m.AllocBytesPerOp = float64(m.AllocBytes) / float64(ops)
	}
	// PauseNs is a ring of the last 256 pauses indexed by (NumGC+255)%256;
	// walk the cycles of the window (clamped to the ring size) for the max.
	first := before.NumGC + 1
	if after.NumGC > 256 && first < after.NumGC-255 {
		first = after.NumGC - 255
	}
	var maxPause uint64
	for i := first; i <= after.NumGC; i++ {
		if p := after.PauseNs[(i+255)%256]; p > maxPause {
			maxPause = p
		}
	}
	m.MaxPauseMS = float64(maxPause) / 1e6
	return m
}

// createTenants creates the tenant sessions through the HTTP surface with
// bounded concurrency.  Setup failures are fatal: the measured phase needs
// the whole population live.
func createTenants(ctx context.Context, cfg Config, tgt *target, tenants []*tenant) error {
	par := cfg.Workers
	if par > 8 {
		par = 8
	}
	if par < 1 {
		par = 1
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		mu   sync.Mutex
		errs []error
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tenants) || ctx.Err() != nil {
					return
				}
				if err := tgt.post(ctx, "/v1/networks", tenants[i].createBody, http.StatusCreated); err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("slam: creating tenant %s: %w", tenants[i].id, err))
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	return ctx.Err()
}

// post issues one request and returns a descriptive error on any non-want
// status — the setup path wants diagnostics, unlike the measured path's
// outcome classes.
func (t *target) post(ctx context.Context, path string, body []byte, want int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != want {
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(data))
	}
	return nil
}

// pickOp draws one operation index from the mix weights.
func pickOp(weights []int, total int, rng *fastrand.RNG) int {
	n := rng.Intn(total)
	for op, w := range weights {
		if n < w {
			return op
		}
		n -= w
	}
	return opIdxRead
}

// runClosed drives the closed-loop model: cfg.Workers workers, each issuing
// its next request as soon as the previous returns, paced by the shared
// total limiter and a per-worker limiter.  The run ends when the op budget
// is spent, the duration elapses, or the context is cancelled — in-flight
// requests complete and are recorded either way.
func runClosed(ctx context.Context, cfg Config, tgt *target, tenants []*tenant, weights []int, recs []*recorder) (time.Duration, error) {
	totalWeight := 0
	for _, w := range weights {
		totalWeight += w
	}
	totalLim := NewLimiter(cfg.Rate)
	var budget atomic.Int64
	budget.Store(int64(cfg.Ops))
	var stopAt time.Time
	if cfg.Dur > 0 {
		stopAt = time.Now().Add(cfg.Dur)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := fastrand.New(fastrand.SplitmixAt(uint64(cfg.Seed), uint64(w)+1))
			perLim := NewLimiter(cfg.WorkerRate)
			rec := recs[w]
			for {
				if ctx.Err() != nil {
					return
				}
				if !stopAt.IsZero() && !time.Now().Before(stopAt) {
					return
				}
				if cfg.Ops > 0 && budget.Add(-1) < 0 {
					return
				}
				if totalLim.Wait(ctx) != nil || perLim.Wait(ctx) != nil {
					return
				}
				op := pickOp(weights, totalWeight, &rng)
				tn := tenants[rng.Intn(len(tenants))]
				reqSeed := int64(rng.Uint64() >> 1)
				reqStart := time.Now()
				out, nretries := tgt.issueRetry(ctx, cfg, op, tn, reqSeed)
				rec.record(op, out, time.Since(reqStart), nretries)
				if op == opIdxCreate && out == outcomeOK {
					tgt.cleanupTransient(ctx, reqSeed)
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start), ctx.Err()
}

// openJob is one scheduled open-loop arrival.
type openJob struct {
	at      time.Time
	op      int
	tenant  *tenant
	reqSeed int64
}

// runOpen drives the open-loop model: requests fire on the precomputed
// Poisson schedule regardless of completions.  Latency is measured from the
// scheduled arrival time, so when the server falls behind the offered rate
// the wait in the dispatch queue is part of the number — the coordinated-
// omission-free measurement that makes queueing collapse visible.
func runOpen(ctx context.Context, cfg Config, tgt *target, tenants []*tenant, weights []int, recs []*recorder) (time.Duration, float64, error) {
	totalWeight := 0
	for _, w := range weights {
		totalWeight += w
	}
	schedule := PoissonSchedule(cfg.Seed, cfg.Rate, cfg.Dur)
	rng := fastrand.New(fastrand.SplitmixAt(uint64(cfg.Seed), 0))
	jobs := make(chan openJob, len(schedule))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := recs[w]
			for job := range jobs {
				if ctx.Err() != nil {
					continue // drain the queue without issuing
				}
				out, nretries := tgt.issueRetry(ctx, cfg, job.op, job.tenant, job.reqSeed)
				rec.record(job.op, out, time.Since(job.at), nretries)
				if job.op == opIdxCreate && out == outcomeOK {
					tgt.cleanupTransient(ctx, job.reqSeed)
				}
			}
		}(w)
	}
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
dispatch:
	for _, off := range schedule {
		at := start.Add(off)
		if d := time.Until(at); d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break dispatch
			}
		}
		jobs <- openJob{ // never blocks: the channel holds the whole schedule
			at:      at,
			op:      pickOp(weights, totalWeight, &rng),
			tenant:  tenants[rng.Intn(len(tenants))],
			reqSeed: int64(rng.Uint64() >> 1),
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	offered := float64(len(schedule)) / cfg.Dur.Seconds()
	return elapsed, offered, ctx.Err()
}

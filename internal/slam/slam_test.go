package slam

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

// TestParseMix covers the mix grammar.
func TestParseMix(t *testing.T) {
	weights, err := ParseMix(DefaultMix)
	if err != nil {
		t.Fatalf("default mix: %v", err)
	}
	if weights[opIdxRead] != 70 || weights[opIdxCreate] != 2 {
		t.Fatalf("default mix parsed as %v", weights)
	}
	if _, err := ParseMix("read=100"); err != nil {
		t.Errorf("single-op mix rejected: %v", err)
	}
	for _, bad := range []string{"", "read", "read=x", "read=-1", "bogus=1", "read=1,read=2", "read=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("mix %q accepted, want error", bad)
		}
	}
}

// TestConfigExpand covers defaults, validation and the Vary axis.
func TestConfigExpand(t *testing.T) {
	subs, err := Config{}.Expand()
	if err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if len(subs) != 1 || subs[0].Mode != "closed" || subs[0].Tenants != 4 || subs[0].Mix != DefaultMix {
		t.Fatalf("zero config expanded to %+v", subs)
	}

	subs, err = Config{Vary: "tenants", Values: []string{"2", "8", "32"}}.Expand()
	if err != nil {
		t.Fatalf("vary tenants: %v", err)
	}
	if len(subs) != 3 || subs[0].Tenants != 2 || subs[2].Tenants != 32 {
		t.Fatalf("vary tenants expanded to %+v", subs)
	}
	for _, sub := range subs {
		if sub.Seed != subs[0].Seed {
			t.Fatal("sub-runs must share the base seed")
		}
	}

	subs, err = Config{Vary: "mix", Values: []string{"read=100", "delta=50,read=50"}}.Expand()
	if err != nil {
		t.Fatalf("vary mix: %v", err)
	}
	if subs[1].Mix != "delta=50,read=50" {
		t.Fatalf("vary mix expanded to %+v", subs)
	}

	bad := []Config{
		{Mode: "sideways"},
		{Mode: "open"},                                 // open loop needs a rate
		{Vary: "tenants"},                              // no values
		{Vary: "bogus", Values: []string{"1"}},         // unknown field
		{Vary: "tenants", Values: []string{"zero"}},    // unparsable value
		{Values: []string{"1"}},                        // values without vary
		{Vary: "mix", Values: []string{"nothing=bad"}}, // invalid swept mix
		{Vary: "rate", Values: []string{"-3"}},         // negative rate
	}
	for _, cfg := range bad {
		if _, err := cfg.Expand(); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

// tinyConfig is the smallest config that still exercises every operation:
// 3 tenants on 12-host networks, a fixed op budget so the run length is
// deterministic, every op weighted in.
func tinyConfig() Config {
	return Config{
		Tenants:  3,
		Hosts:    12,
		Degree:   4,
		Services: 2,
		Workers:  4,
		Ops:      120,
		Mix:      "read=50,delta=20,metrics=15,assess=10,create=5",
		Seed:     7,
	}
}

// TestClosedLoopRun drives a tiny closed-loop run end-to-end against an
// in-process server and checks the report invariants: op budget honoured,
// per-op stats present, latency fields populated, zero errors.
func TestClosedLoopRun(t *testing.T) {
	rep, err := Run(context.Background(), tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("%d runs, want 1", len(rep.Runs))
	}
	res := rep.Runs[0]
	if res.Total.Count != 120 {
		t.Errorf("total count %d, want the op budget 120", res.Total.Count)
	}
	if res.Total.Errors != 0 {
		t.Errorf("unloaded tiny run recorded %d errors: %+v", res.Total.Errors, res.Total)
	}
	if res.Total.P50MS <= 0 || res.Total.P99MS < res.Total.P50MS || res.Total.P999MS < res.Total.P99MS {
		t.Errorf("quantiles inconsistent: p50=%v p99=%v p999=%v", res.Total.P50MS, res.Total.P99MS, res.Total.P999MS)
	}
	if res.AchievedRPS <= 0 || res.SetupMS <= 0 || res.DurationS <= 0 {
		t.Errorf("throughput/setup/duration not populated: %+v", res)
	}
	if _, ok := res.Ops[OpRead]; !ok {
		t.Errorf("read op missing from per-op stats: %v", res.Ops)
	}
	var opSum int64
	for _, st := range res.Ops {
		opSum += st.Count
	}
	if opSum != res.Total.Count {
		t.Errorf("per-op counts sum to %d, total %d", opSum, res.Total.Count)
	}
}

// TestOpenLoopRun drives a short open-loop run at a modest offered rate and
// checks the offered/achieved accounting.
func TestOpenLoopRun(t *testing.T) {
	cfg := tinyConfig()
	cfg.Mode = "open"
	cfg.Ops = 0
	cfg.Rate = 150
	cfg.Dur = time.Second
	rep, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Runs[0]
	if res.OfferedRPS < 100 || res.OfferedRPS > 200 {
		t.Errorf("offered rate %v, want ~150", res.OfferedRPS)
	}
	if res.Total.Count == 0 {
		t.Error("open-loop run issued no requests")
	}
	if res.Total.Errors != 0 {
		t.Errorf("unloaded open-loop run recorded %d errors", res.Total.Errors)
	}
}

// TestReplicaReadsRun drives a tiny run in replica-read mode: the in-process
// primary/follower pair must converge during setup, serve the whole budget
// with zero errors (the follower answering reads and metrics), and echo the
// mode in the report.
func TestReplicaReadsRun(t *testing.T) {
	cfg := tinyConfig()
	cfg.ReplicaReads = true
	rep, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Runs[0]
	if !res.Config.ReplicaReads {
		t.Error("replica-read mode not echoed in the config")
	}
	if res.Total.Count != int64(cfg.Ops) {
		t.Errorf("total count %d, want the op budget %d", res.Total.Count, cfg.Ops)
	}
	if res.Total.Errors != 0 {
		t.Errorf("replica-read run recorded %d errors: %+v", res.Total.Errors, res.Total)
	}
	if st, ok := res.Ops[OpRead]; !ok || st.OK == 0 {
		t.Errorf("no successful follower reads recorded: %+v", res.Ops)
	}
	if st, ok := res.Ops[OpDelta]; !ok || st.OK == 0 {
		t.Errorf("no successful primary deltas recorded: %+v", res.Ops)
	}
}

// TestReplicaReadsRejectsRemote pins the mode restriction: replica reads
// boot their own pair and cannot wrap a remote URL.
func TestReplicaReadsRejectsRemote(t *testing.T) {
	if _, err := (Config{URL: "http://example.invalid", ReplicaReads: true}).Expand(); err == nil {
		t.Fatal("replica reads against a remote URL accepted")
	}
}

// TestRunReportRoundTrip writes a report and reads it back.
func TestRunReportRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	cfg.Ops = 40
	rep, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "slam.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Error("report changed across a write/read round trip")
	}
}

// TestRunVarySweep checks a Vary sweep produces one RunResult per value with
// the value recorded, and the onRun callback observes each sub-run.
func TestRunVarySweep(t *testing.T) {
	cfg := tinyConfig()
	cfg.Ops = 30
	cfg.Vary = "tenants"
	cfg.Values = []string{"2", "3"}
	var seen []string
	rep, err := Run(context.Background(), cfg, func(r RunResult) { seen = append(seen, r.VaryValue) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("%d runs, want 2", len(rep.Runs))
	}
	if rep.Runs[0].VaryValue != "2" || rep.Runs[1].VaryValue != "3" {
		t.Errorf("vary values %q, %q", rep.Runs[0].VaryValue, rep.Runs[1].VaryValue)
	}
	if rep.Runs[0].Config.Tenants != 2 || rep.Runs[1].Config.Tenants != 3 {
		t.Errorf("config echo tenants %d, %d", rep.Runs[0].Config.Tenants, rep.Runs[1].Config.Tenants)
	}
	if len(seen) != 2 {
		t.Errorf("onRun observed %d sub-runs, want 2", len(seen))
	}
}

// TestSessionLimit429 drives creates against a server sized below the
// tenant population's needs indirectly: a remote-mode run against a
// one-session in-process server must surface 429s in the accounting rather
// than abort.  Covered through the outcome classifier on a canned server in
// client_test.go; here we just pin the outcome mapping.
func TestOutcomeMapping(t *testing.T) {
	if numOutcomes != 6 {
		t.Fatalf("outcome classes changed (%d); update OpStats accounting", numOutcomes)
	}
}

// Package baseline implements the non-optimal product-assignment strategies
// the paper compares its optimal diversification against (Table V):
//
//   - Mono: the homogeneous assignment α_m that installs the same product for
//     every service everywhere — the software-monoculture worst case.
//   - Random: the randomly diversified assignment α_r.
//   - GreedyColoring: a distributed-colouring style heuristic in the spirit of
//     O'Donnell & Sethu, which greedily picks for each host the product least
//     similar to its already-assigned neighbours.
//
// All strategies honour pinned (fixed) services from a constraint set so that
// comparisons against constrained optimal solutions stay fair.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// ErrNilNetwork is returned when a strategy is called with a nil network.
var ErrNilNetwork = errors.New("baseline: nil network")

// assignFixed fills the assignment with the pinned products of the constraint
// set (no-op for a nil set).
func assignFixed(a *netmodel.Assignment, n *netmodel.Network, cs *netmodel.ConstraintSet) {
	if cs == nil {
		return
	}
	for _, hid := range cs.FixedHosts() {
		h, ok := n.Host(hid)
		if !ok {
			continue
		}
		for _, s := range h.Services {
			if p, ok := cs.Fixed(hid, s); ok {
				a.Set(hid, s, p)
			}
		}
	}
}

// Mono returns the homogeneous assignment α_m: for every service, the product
// that is a candidate on the largest number of hosts is installed everywhere
// it is available; hosts that cannot run it fall back to their first
// candidate.  Pinned services keep their pinned product.
func Mono(n *netmodel.Network, cs *netmodel.ConstraintSet) (*netmodel.Assignment, error) {
	if n == nil {
		return nil, ErrNilNetwork
	}
	// Pick the most widely available product per service.
	popularity := make(map[netmodel.ServiceID]map[netmodel.ProductID]int)
	for _, hid := range n.Hosts() {
		h, _ := n.Host(hid)
		for _, s := range h.Services {
			if popularity[s] == nil {
				popularity[s] = make(map[netmodel.ProductID]int)
			}
			for _, p := range h.Choices[s] {
				popularity[s][p]++
			}
		}
	}
	chosen := make(map[netmodel.ServiceID]netmodel.ProductID, len(popularity))
	for s, counts := range popularity {
		var best netmodel.ProductID
		bestCount := -1
		products := make([]netmodel.ProductID, 0, len(counts))
		for p := range counts {
			products = append(products, p)
		}
		sort.Slice(products, func(i, j int) bool { return products[i] < products[j] })
		for _, p := range products {
			if counts[p] > bestCount {
				best, bestCount = p, counts[p]
			}
		}
		chosen[s] = best
	}

	a := netmodel.NewAssignment()
	assignFixed(a, n, cs)
	for _, hid := range n.Hosts() {
		h, _ := n.Host(hid)
		for _, s := range h.Services {
			if _, done := a.Get(hid, s); done {
				continue
			}
			p := chosen[s]
			if h.CandidateIndex(s, p) < 0 {
				p = h.Choices[s][0]
			}
			a.Set(hid, s, p)
		}
	}
	if err := a.ValidateFor(n); err != nil {
		return nil, fmt.Errorf("baseline: mono assignment: %w", err)
	}
	return a, nil
}

// Random returns the random assignment α_r: every unpinned (host, service)
// pair gets a uniformly random candidate product.
func Random(n *netmodel.Network, cs *netmodel.ConstraintSet, seed int64) (*netmodel.Assignment, error) {
	if n == nil {
		return nil, ErrNilNetwork
	}
	rng := rand.New(rand.NewSource(seed))
	a := netmodel.NewAssignment()
	assignFixed(a, n, cs)
	for _, hid := range n.Hosts() {
		h, _ := n.Host(hid)
		for _, s := range h.Services {
			if _, done := a.Get(hid, s); done {
				continue
			}
			cands := h.Choices[s]
			a.Set(hid, s, cands[rng.Intn(len(cands))])
		}
	}
	if err := a.ValidateFor(n); err != nil {
		return nil, fmt.Errorf("baseline: random assignment: %w", err)
	}
	return a, nil
}

// GreedyColoring returns a colouring-style heuristic assignment: hosts are
// visited in decreasing-degree order and each (host, service) pair picks the
// candidate product with the smallest summed similarity to the products
// already assigned to neighbouring hosts for the same service.  Ties are
// broken by candidate order.  Pinned services keep their pinned product.
func GreedyColoring(n *netmodel.Network, sim *vulnsim.SimilarityTable, cs *netmodel.ConstraintSet) (*netmodel.Assignment, error) {
	if n == nil {
		return nil, ErrNilNetwork
	}
	if sim == nil {
		return nil, errors.New("baseline: nil similarity table")
	}
	hosts := n.Hosts()
	sort.SliceStable(hosts, func(i, j int) bool {
		di, dj := n.Degree(hosts[i]), n.Degree(hosts[j])
		if di != dj {
			return di > dj
		}
		return hosts[i] < hosts[j]
	})

	a := netmodel.NewAssignment()
	assignFixed(a, n, cs)
	for _, hid := range hosts {
		h, _ := n.Host(hid)
		for _, s := range h.Services {
			if _, done := a.Get(hid, s); done {
				continue
			}
			cands := h.Choices[s]
			bestIdx, bestCost := 0, -1.0
			for i, cand := range cands {
				cost := 0.0
				for _, nb := range n.Neighbors(hid) {
					nbHost, _ := n.Host(nb)
					if !nbHost.HasService(s) {
						continue
					}
					if assigned, ok := a.Get(nb, s); ok {
						cost += sim.Sim(string(cand), string(assigned))
					}
				}
				if bestCost < 0 || cost < bestCost {
					bestIdx, bestCost = i, cost
				}
			}
			a.Set(hid, s, cands[bestIdx])
		}
	}
	if err := a.ValidateFor(n); err != nil {
		return nil, fmt.Errorf("baseline: greedy colouring: %w", err)
	}
	return a, nil
}

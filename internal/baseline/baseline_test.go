package baseline

import (
	"testing"

	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

func testNetwork(t *testing.T) *netmodel.Network {
	t.Helper()
	net, err := netgen.Random(netgen.RandomConfig{
		Hosts: 30, Degree: 4, Services: 2, ProductsPerService: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testSimilarity() *vulnsim.SimilarityTable {
	return netgen.SyntheticSimilarity(netgen.RandomConfig{
		Hosts: 2, Services: 2, ProductsPerService: 3, Seed: 1,
	}, 0.6)
}

func TestMono(t *testing.T) {
	net := testNetwork(t)
	a, err := Mono(net, nil)
	if err != nil {
		t.Fatalf("Mono: %v", err)
	}
	if err := a.ValidateFor(net); err != nil {
		t.Fatalf("mono assignment invalid: %v", err)
	}
	stats := a.Stats(net)
	for svc, distinct := range stats.DistinctProducts {
		if distinct != 1 {
			t.Errorf("mono assignment uses %d products for %s, want 1", distinct, svc)
		}
	}
	if _, err := Mono(nil, nil); err == nil {
		t.Error("nil network should be rejected")
	}
}

func TestMonoRespectsFixed(t *testing.T) {
	net := testNetwork(t)
	cs := netmodel.NewConstraintSet()
	hosts := net.Hosts()
	h0, _ := net.Host(hosts[0])
	svc := h0.Services[0]
	pinned := h0.Choices[svc][2]
	cs.Fix(hosts[0], svc, pinned)
	a, err := Mono(net, cs)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Product(hosts[0], svc); got != pinned {
		t.Errorf("pinned product ignored: got %v, want %v", got, pinned)
	}
}

func TestRandomAssignment(t *testing.T) {
	net := testNetwork(t)
	a, err := Random(net, nil, 7)
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	if err := a.ValidateFor(net); err != nil {
		t.Fatalf("random assignment invalid: %v", err)
	}
	b, err := Random(net, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed should give the same random assignment")
	}
	c, err := Random(net, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("different seeds should (almost surely) give different assignments")
	}
	if _, err := Random(nil, nil, 1); err == nil {
		t.Error("nil network should be rejected")
	}
}

func TestGreedyColoring(t *testing.T) {
	net := testNetwork(t)
	sim := testSimilarity()
	greedy, err := GreedyColoring(net, sim, nil)
	if err != nil {
		t.Fatalf("GreedyColoring: %v", err)
	}
	if err := greedy.ValidateFor(net); err != nil {
		t.Fatalf("greedy assignment invalid: %v", err)
	}
	mono, err := Mono(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The greedy colouring should place strictly fewer identical products on
	// links than the homogeneous assignment.
	gStats := greedy.Stats(net)
	mStats := mono.Stats(net)
	for svc := range gStats.TotalSharedEdges {
		if gStats.SameProductEdges[svc] >= mStats.SameProductEdges[svc] {
			t.Errorf("service %s: greedy has %d same-product links, mono %d",
				svc, gStats.SameProductEdges[svc], mStats.SameProductEdges[svc])
		}
	}
	if _, err := GreedyColoring(nil, sim, nil); err == nil {
		t.Error("nil network should be rejected")
	}
	if _, err := GreedyColoring(net, nil, nil); err == nil {
		t.Error("nil similarity table should be rejected")
	}
}

func TestGreedyColoringRespectsFixed(t *testing.T) {
	net := testNetwork(t)
	sim := testSimilarity()
	cs := netmodel.NewConstraintSet()
	hosts := net.Hosts()
	h0, _ := net.Host(hosts[3])
	svc := h0.Services[1]
	pinned := h0.Choices[svc][0]
	cs.Fix(hosts[3], svc, pinned)
	a, err := GreedyColoring(net, sim, cs)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Product(hosts[3], svc); got != pinned {
		t.Errorf("pinned product ignored: got %v, want %v", got, pinned)
	}
}

package icm

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netdiversity/internal/mrf"
)

func randomGraph(t *testing.T, rng *rand.Rand, nodes, labels int) *mrf.Graph {
	t.Helper()
	counts := make([]int, nodes)
	for i := range counts {
		counts[i] = labels
	}
	g, err := mrf.NewGraph(counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		for l := 0; l < labels; l++ {
			_ = g.SetUnary(i, l, rng.Float64())
		}
	}
	for i := 0; i < nodes; i++ {
		cost := make([][]float64, labels)
		for a := range cost {
			cost[a] = make([]float64, labels)
			for b := range cost[a] {
				cost[a][b] = rng.Float64()
			}
		}
		if _, err := g.AddEdge(i, (i+1)%nodes, cost); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSolveNil(t *testing.T) {
	if _, err := Solve(nil, Options{}); !errors.Is(err, ErrNilGraph) {
		t.Errorf("nil graph should return ErrNilGraph, got %v", err)
	}
	bad, _ := mrf.NewGraph([]int{2})
	_ = bad.SetUnary(0, 0, math.NaN())
	if _, err := Solve(bad, Options{}); err == nil {
		t.Error("invalid graph should be rejected")
	}
}

func TestSolveImprovesOverGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(t, rng, 10, 3)
		sol, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		greedy := g.MustEnergy(g.GreedyLabeling())
		if sol.Energy > greedy+1e-9 {
			t.Errorf("ICM energy %v worse than its greedy start %v", sol.Energy, greedy)
		}
		if !sol.Converged {
			t.Error("plain ICM should converge (reach a local optimum)")
		}
	}
}

func TestSolveRestartsAndAnnealing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(t, rng, 12, 4)
	single, err := Solve(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Solve(g, Options{Seed: 1, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Energy > single.Energy+1e-9 {
		t.Errorf("restarts should never hurt: %v vs %v", multi.Energy, single.Energy)
	}
	annealed, err := Solve(g, Options{Seed: 1, Annealing: true, Restarts: 4, MaxIterations: 80})
	if err != nil {
		t.Fatal(err)
	}
	if annealed.Energy > single.Energy+1e-9 {
		t.Errorf("annealing tracks the best-seen labeling and should not be worse: %v vs %v",
			annealed.Energy, single.Energy)
	}
}

func TestSolveDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(t, rng, 10, 3)
	a, err := Solve(g, Options{Seed: 42, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, Options{Seed: 42, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy {
		t.Errorf("same seed should give the same energy: %v vs %v", a.Energy, b.Energy)
	}
}

func TestSolveContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(t, rng, 10, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, g, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context should surface context.Canceled, got %v", err)
	}
}

func TestPolishNeverIncreasesEnergy(t *testing.T) {
	f := func(seed int64, picks [10]uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(t, rng, 10, 3)
		labels := make([]int, g.NumNodes())
		for i := range labels {
			labels[i] = int(picks[i]) % g.NumLabels(i)
		}
		before := g.MustEnergy(labels)
		sol, err := Polish(g, labels, 5)
		if err != nil {
			return false
		}
		return sol.Energy <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPolishValidation(t *testing.T) {
	g, _ := mrf.NewGraph([]int{2, 2})
	if _, err := Polish(nil, []int{0, 0}, 3); !errors.Is(err, ErrNilGraph) {
		t.Error("nil graph should be rejected")
	}
	if _, err := Polish(g, []int{0}, 3); err == nil {
		t.Error("wrong labeling length should be rejected")
	}
	if _, err := Polish(g, []int{0, 9}, 3); err == nil {
		t.Error("out-of-range label should be rejected")
	}
	sol, err := Polish(g, []int{1, 1}, 0)
	if err != nil {
		t.Fatalf("Polish with default sweeps: %v", err)
	}
	if len(sol.Labels) != 2 {
		t.Error("Polish should return a full labeling")
	}
}

// Package icm implements Iterated Conditional Modes and a simulated-annealing
// variant — simple local-search baselines for the MRF minimisation problem.
// ICM converges to a local optimum extremely quickly but has no optimality
// guarantee; it is used in the solver ablation (A1 in DESIGN.md).  Only the
// sweep kernel lives here; restarts are phases of the kernel and the
// best-labeling tracking, history and cancellation live in the shared solve
// driver.
package icm

import (
	"context"
	"fmt"
	"math"

	"netdiversity/internal/fastrand"
	"netdiversity/internal/mrf"
	"netdiversity/internal/solve"
)

func init() {
	solve.Register("icm", func() solve.Kernel { return &Kernel{} })
	solve.Register("anneal", func() solve.Kernel { return &Kernel{ForceAnnealing: true} })
}

// Options configures the solvers (thin compatibility wrapper over the
// unified solve.Options).
type Options struct {
	// MaxIterations bounds the number of full sweeps over the nodes per
	// restart.  Default 50.
	MaxIterations int
	// Restarts runs the search from multiple random initialisations and
	// keeps the best result.  Default 1 (single run from the greedy-unary
	// initial labeling).
	Restarts int
	// Seed makes the random restarts and annealing deterministic.
	Seed int64
	// Annealing enables the simulated-annealing acceptance rule instead of
	// strict descent.
	Annealing bool
	// InitialTemperature and Cooling control the annealing schedule.
	InitialTemperature float64
	Cooling            float64
	// InitialLabels optionally seeds the first restart with a specific
	// labeling instead of the greedy-unary initialisation.
	InitialLabels []int
}

// ErrNilGraph is returned when Solve is called with a nil graph.
var ErrNilGraph = solve.ErrNilGraph

// Polish runs strict ICM descent starting from the given labeling and returns
// the (weakly) improved labeling.  It is used to locally refine the output of
// the message-passing solvers ("TRW-S + local polish"), and never increases
// the energy.
func Polish(g *mrf.Graph, labels []int, maxSweeps int) (mrf.Solution, error) {
	if g == nil {
		return mrf.Solution{}, ErrNilGraph
	}
	if len(labels) != g.NumNodes() {
		return mrf.Solution{}, fmt.Errorf("icm: labeling has %d entries, want %d", len(labels), g.NumNodes())
	}
	if maxSweeps <= 0 {
		maxSweeps = 10
	}
	startEnergy, err := g.Energy(labels)
	if err != nil {
		return mrf.Solution{}, fmt.Errorf("icm: polish start labeling: %w", err)
	}
	start := append([]int(nil), labels...)
	sol, err := SolveContext(context.Background(), g, Options{
		MaxIterations: maxSweeps,
		InitialLabels: start,
	})
	if err != nil {
		return mrf.Solution{}, err
	}
	// Descent from the provided labeling can only improve (or keep) the
	// energy relative to that labeling.
	if sol.Energy > startEnergy {
		sol.Labels = append([]int(nil), labels...)
		sol.Energy = startEnergy
	}
	return sol, nil
}

// Solve runs ICM (or simulated annealing when Options.Annealing is set).
func Solve(g *mrf.Graph, opts Options) (mrf.Solution, error) {
	return SolveContext(context.Background(), g, opts)
}

// SolveContext is Solve with cancellation between sweeps.
func SolveContext(ctx context.Context, g *mrf.Graph, opts Options) (mrf.Solution, error) {
	return solve.Run(ctx, g, solve.Options{
		MaxIterations:      opts.MaxIterations,
		Restarts:           opts.Restarts,
		Seed:               opts.Seed,
		Annealing:          opts.Annealing,
		InitialTemperature: opts.InitialTemperature,
		Cooling:            opts.Cooling,
		InitialLabels:      opts.InitialLabels,
	}, &Kernel{})
}

// Kernel is the ICM / simulated-annealing sweep kernel.  Restarts are
// internal phases: when a restart reaches a local optimum (or its sweep
// budget), the kernel re-initialises randomly and reports a phase boundary
// to the driver.
type Kernel struct {
	// ForceAnnealing turns the kernel into the "anneal" registry entry:
	// annealing enabled with a multi-restart default.
	ForceAnnealing bool

	g    *mrf.Graph
	opts solve.Options
	rng  fastrand.RNG

	n       int
	counts  []int
	inc     solve.Incidence
	labels  []int
	costBuf []float64

	// Warm-start state (see WarmStart): when warm is set, sweeps visit only
	// active nodes, nodes deactivate once locally optimal and reactivate when
	// a neighbour changes label — classic worklist Gauss-Seidel, O(active)
	// per sweep instead of O(n).
	warm   bool
	active []bool

	restart        int
	sweepInRestart int
	temp           float64
	// anyConverged remembers whether any restart reached a local optimum,
	// matching the seed's Converged semantics for multi-restart runs.
	anyConverged bool
}

// Defaults applies the local-search defaults: 50 sweeps per restart, driver
// patience disabled (a restart's plateau must not cut the next restart
// short; termination is the kernel's own local-optimum / budget rule).
func (k *Kernel) Defaults(opts solve.Options) solve.Options {
	if k.ForceAnnealing {
		opts.Annealing = true
		if opts.Restarts <= 0 {
			opts.Restarts = 4
		}
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 50
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 1
	}
	opts.Patience = opts.MaxIterations * opts.Restarts
	return opts
}

// Init builds the incidence workspace and the first restart's labeling.
func (k *Kernel) Init(g *mrf.Graph, opts solve.Options) error {
	k.g = g
	k.opts = opts
	k.rng = fastrand.New(uint64(opts.Seed))
	k.n = g.NumNodes()
	k.counts = make([]int, k.n)
	for i := 0; i < k.n; i++ {
		k.counts[i] = g.NumLabels(i)
	}
	k.inc = solve.BuildIncidence(g)
	k.costBuf = make([]float64, g.MaxLabels())

	k.labels = g.GreedyLabeling()
	if len(opts.InitialLabels) == k.n {
		copy(k.labels, opts.InitialLabels)
	}
	k.warm = false
	k.active = nil
	k.restart = 0
	k.sweepInRestart = 0
	k.temp = opts.InitialTemperature
	return nil
}

// WarmStart switches the kernel to incremental mode (solve.WarmKernel): the
// descent starts from the prior labeling, only the dirty nodes are visited
// initially and the active set grows along the change frontier.  Random
// restarts and the annealing acceptance rule are disabled — both would
// re-randomise (or keep hot) the frozen regions and defeat the purpose of an
// incremental re-solve.
func (k *Kernel) WarmStart(labels []int, dirty []bool) error {
	if len(labels) != k.n || len(dirty) != k.n {
		return fmt.Errorf("icm: warm start needs %d labels and dirty flags", k.n)
	}
	copy(k.labels, labels)
	k.active = append([]bool(nil), dirty...)
	k.warm = true
	k.opts.Restarts = 1
	k.opts.Annealing = false
	return nil
}

func (k *Kernel) incident(node int) []solve.HalfEdge {
	return k.inc.Of(node)
}

// localCosts fills dst[x] with the energy contribution of assigning label x
// to the node given the current labels of its neighbours.
func (k *Kernel) localCosts(node int, dst []float64) {
	copy(dst, k.g.UnaryView(node))
	kn := k.counts[node]
	for _, he := range k.incident(node) {
		fixed := k.labels[he.Other]
		var row []float64
		if he.IsU {
			// cost[x][fixed] over x = column of the matrix = row of the
			// transpose: contiguous.
			row = k.g.EdgeMatT(int(he.Edge)).Row(fixed)
		} else {
			row = k.g.EdgeMat(int(he.Edge)).Row(fixed)
		}
		for x := 0; x < kn; x++ {
			dst[x] += row[x]
		}
	}
}

// sweep performs one Gauss-Seidel pass over the nodes and reports whether
// any label changed.  In warm mode only active nodes are visited: a node
// deactivates once locally optimal and neighbours of a changed node are
// (re)activated.
func (k *Kernel) sweep() bool {
	changed := false
	for node := 0; node < k.n; node++ {
		if k.warm && !k.active[node] {
			continue
		}
		kn := k.counts[node]
		cost := k.costBuf[:kn]
		k.localCosts(node, cost)
		cur := k.labels[node]
		bestLabel, bestCost := cur, cost[cur]
		for x := 0; x < kn; x++ {
			if cost[x] < bestCost {
				bestLabel, bestCost = x, cost[x]
			}
		}
		switch {
		case bestLabel != cur:
			k.labels[node] = bestLabel
			changed = true
			if k.warm {
				for _, he := range k.incident(node) {
					k.active[he.Other] = true
				}
			}
		case k.warm:
			k.active[node] = false
		case k.opts.Annealing && k.temp > 1e-9:
			// Propose a random uphill move with Metropolis acceptance.
			cand := k.rng.Intn(kn)
			if cand != cur {
				delta := cost[cand] - cost[cur]
				if delta < 0 || k.rng.Float64() < math.Exp(-delta/k.temp) {
					k.labels[node] = cand
					changed = true
				}
			}
		}
	}
	return changed
}

// nextRestart re-initialises the labeling randomly for the following phase.
func (k *Kernel) nextRestart() {
	k.restart++
	k.sweepInRestart = 0
	k.temp = k.opts.InitialTemperature
	for i := range k.labels {
		k.labels[i] = k.rng.Intn(k.counts[i])
	}
}

// Step performs one sweep and handles restart transitions.  It returns the
// kernel's labeling buffer directly: the driver scores and copies it before
// the next Step mutates it.
func (k *Kernel) Step() solve.Step {
	changed := k.sweep()
	k.sweepInRestart++
	k.temp *= k.opts.Cooling
	lastRestart := k.restart+1 >= k.opts.Restarts
	switch {
	case !changed && !k.opts.Annealing:
		// Local optimum reached for this restart.
		k.anyConverged = true
		if lastRestart {
			return solve.Step{Labels: k.labels, FixedPoint: true}
		}
		// Snapshot before nextRestart randomises the buffer.
		labels := append([]int(nil), k.labels...)
		k.nextRestart()
		return solve.Step{Labels: labels, NewPhase: true}
	case k.sweepInRestart >= k.opts.MaxIterations:
		if lastRestart {
			// Report convergence if any earlier restart reached a local
			// optimum, as the seed implementation did.
			return solve.Step{Labels: k.labels, FixedPoint: k.anyConverged, Exhausted: true}
		}
		labels := append([]int(nil), k.labels...)
		k.nextRestart()
		return solve.Step{Labels: labels, NewPhase: true}
	default:
		return solve.Step{Labels: k.labels}
	}
}

// Package icm implements Iterated Conditional Modes and a simulated-annealing
// variant — simple local-search baselines for the MRF minimisation problem.
// ICM converges to a local optimum extremely quickly but has no optimality
// guarantee; it is used in the solver ablation (A1 in DESIGN.md).
package icm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"netdiversity/internal/mrf"
)

// Options configures the solvers.
type Options struct {
	// MaxIterations bounds the number of full sweeps over the nodes.
	// Default 50.
	MaxIterations int
	// Restarts runs the search from multiple random initialisations and
	// keeps the best result.  Default 1 (single run from the greedy-unary
	// initial labeling).
	Restarts int
	// Seed makes the random restarts and annealing deterministic.
	Seed int64
	// Annealing enables the simulated-annealing acceptance rule instead of
	// strict descent.
	Annealing bool
	// InitialTemperature and Cooling control the annealing schedule.
	InitialTemperature float64
	Cooling            float64
	// InitialLabels optionally seeds the first restart with a specific
	// labeling instead of the greedy-unary initialisation.
	InitialLabels []int
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 50
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	if o.InitialTemperature <= 0 {
		o.InitialTemperature = 1.0
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.92
	}
	return o
}

// ErrNilGraph is returned when Solve is called with a nil graph.
var ErrNilGraph = errors.New("icm: nil graph")

// Polish runs strict ICM descent starting from the given labeling and returns
// the (weakly) improved labeling.  It is used to locally refine the output of
// the message-passing solvers ("TRW-S + local polish"), and never increases
// the energy.
func Polish(g *mrf.Graph, labels []int, maxSweeps int) (mrf.Solution, error) {
	if g == nil {
		return mrf.Solution{}, ErrNilGraph
	}
	if len(labels) != g.NumNodes() {
		return mrf.Solution{}, fmt.Errorf("icm: labeling has %d entries, want %d", len(labels), g.NumNodes())
	}
	if maxSweeps <= 0 {
		maxSweeps = 10
	}
	startEnergy, err := g.Energy(labels)
	if err != nil {
		return mrf.Solution{}, fmt.Errorf("icm: polish start labeling: %w", err)
	}
	start := append([]int(nil), labels...)
	sol, err := SolveContext(context.Background(), g, Options{
		MaxIterations: maxSweeps,
		InitialLabels: start,
	})
	if err != nil {
		return mrf.Solution{}, err
	}
	// Descent from the provided labeling can only improve (or keep) the
	// energy relative to that labeling.
	if sol.Energy > startEnergy {
		sol.Labels = append([]int(nil), labels...)
		sol.Energy = startEnergy
	}
	return sol, nil
}

// Solve runs ICM (or simulated annealing when Options.Annealing is set).
func Solve(g *mrf.Graph, opts Options) (mrf.Solution, error) {
	return SolveContext(context.Background(), g, opts)
}

// SolveContext is Solve with cancellation between sweeps.
func SolveContext(ctx context.Context, g *mrf.Graph, opts Options) (mrf.Solution, error) {
	if g == nil {
		return mrf.Solution{}, ErrNilGraph
	}
	if err := g.Validate(); err != nil {
		return mrf.Solution{}, fmt.Errorf("icm: %w", err)
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	n := g.NumNodes()
	type halfEdge struct {
		edge  int
		isU   bool
		other int
	}
	incident := make([][]halfEdge, n)
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(e)
		incident[edge.U] = append(incident[edge.U], halfEdge{edge: e, isU: true, other: edge.V})
		incident[edge.V] = append(incident[edge.V], halfEdge{edge: e, isU: false, other: edge.U})
	}

	// localCost returns the energy contribution of assigning label x to node
	// given the current labels of its neighbours.
	localCost := func(labels []int, node, x int) float64 {
		c := g.Unary(node, x)
		for _, he := range incident[node] {
			edge := g.Edge(he.edge)
			if he.isU {
				c += edge.Cost[x][labels[he.other]]
			} else {
				c += edge.Cost[labels[he.other]][x]
			}
		}
		return c
	}

	var best []int
	bestEnergy := math.Inf(1)
	var history []float64
	totalIters := 0
	converged := false

	for restart := 0; restart < opts.Restarts; restart++ {
		labels := g.GreedyLabeling()
		if restart == 0 && len(opts.InitialLabels) == n {
			copy(labels, opts.InitialLabels)
		}
		if restart > 0 {
			for i := range labels {
				labels[i] = rng.Intn(g.NumLabels(i))
			}
		}
		temp := opts.InitialTemperature
		for iter := 0; iter < opts.MaxIterations; iter++ {
			if err := ctx.Err(); err != nil {
				return pack(g, best, bestEnergy, history, totalIters, false), err
			}
			changed := false
			for node := 0; node < n; node++ {
				cur := labels[node]
				curCost := localCost(labels, node, cur)
				bestLabel, bestCost := cur, curCost
				for x := 0; x < g.NumLabels(node); x++ {
					if x == cur {
						continue
					}
					c := localCost(labels, node, x)
					if c < bestCost {
						bestLabel, bestCost = x, c
					}
				}
				switch {
				case bestLabel != cur:
					labels[node] = bestLabel
					changed = true
				case opts.Annealing && temp > 1e-9:
					// Propose a random uphill move with Metropolis acceptance.
					cand := rng.Intn(g.NumLabels(node))
					if cand != cur {
						delta := localCost(labels, node, cand) - curCost
						if delta < 0 || rng.Float64() < math.Exp(-delta/temp) {
							labels[node] = cand
							changed = true
						}
					}
				}
			}
			totalIters++
			energy := g.MustEnergy(labels)
			if energy < bestEnergy {
				bestEnergy = energy
				best = append(best[:0], labels...)
			}
			history = append(history, bestEnergy)
			temp *= opts.Cooling
			if !changed && !opts.Annealing {
				converged = true
				break
			}
		}
	}
	if best == nil {
		best = g.GreedyLabeling()
		bestEnergy = g.MustEnergy(best)
	}
	return pack(g, best, bestEnergy, history, totalIters, converged), nil
}

func pack(g *mrf.Graph, labels []int, energy float64, history []float64, iters int, converged bool) mrf.Solution {
	return mrf.Solution{
		Labels:        append([]int(nil), labels...),
		Energy:        energy,
		LowerBound:    g.TrivialLowerBound(),
		Iterations:    iters,
		Converged:     converged,
		EnergyHistory: append([]float64(nil), history...),
	}
}

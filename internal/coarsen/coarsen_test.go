package coarsen_test

import (
	"context"
	"math/rand"
	"testing"

	"netdiversity/internal/coarsen"
	"netdiversity/internal/mrf"
	"netdiversity/internal/netgen"
	"netdiversity/internal/solve"

	_ "netdiversity/internal/icm"
)

func testGraph(t *testing.T, hosts int, seed int64) *mrf.Graph {
	t.Helper()
	g, err := netgen.UniformGraph(netgen.RandomConfig{
		Hosts: hosts, Degree: 6, Services: 2, ProductsPerService: 4, Seed: seed,
	})
	if err != nil {
		t.Fatalf("UniformGraph: %v", err)
	}
	return g
}

func randomLabels(g *mrf.Graph, rng *rand.Rand) []int {
	labels := make([]int, g.NumNodes())
	for i := range labels {
		labels[i] = rng.Intn(g.NumLabels(i))
	}
	return labels
}

// Contract's merged-potential construction must preserve energy exactly:
// E_coarse(x) == E_fine(Project(x)) for every coarse labeling.
func TestContractEnergyConsistent(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := testGraph(t, 60, seed)
		coarse, f2c, err := coarsen.Contract(g)
		if err != nil {
			t.Fatalf("Contract: %v", err)
		}
		if coarse.NumNodes() >= g.NumNodes() {
			t.Fatalf("contraction did not shrink: %d -> %d nodes", g.NumNodes(), coarse.NumNodes())
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 50; trial++ {
			cl := randomLabels(coarse, rng)
			fl := make([]int, g.NumNodes())
			for i, c := range f2c {
				fl[i] = cl[c]
			}
			ec := coarse.MustEnergy(cl)
			ef := g.MustEnergy(fl)
			if diff := ec - ef; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("seed %d trial %d: coarse energy %.12f != projected fine energy %.12f", seed, trial, ec, ef)
			}
		}
	}
}

// The same invariant must survive the full hierarchy: projecting a coarsest
// labeling all the way down without refinement keeps the energy identical.
func TestHierarchyEnergyConsistent(t *testing.T) {
	g := testGraph(t, 400, 3)
	h, err := coarsen.Build(g, coarsen.Options{CoarsestSize: 32})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if h.NumLevels() < 3 {
		t.Fatalf("expected a multi-level hierarchy, got %d levels", h.NumLevels())
	}
	rng := rand.New(rand.NewSource(9))
	top := h.NumLevels() - 1
	for trial := 0; trial < 20; trial++ {
		cl := randomLabels(h.Coarsest(), rng)
		fl, err := h.Project(cl, top, 0)
		if err != nil {
			t.Fatalf("Project: %v", err)
		}
		ec := h.Coarsest().MustEnergy(cl)
		ef := g.MustEnergy(fl)
		if diff := ec - ef; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: coarsest energy %.12f != projected fine energy %.12f", trial, ec, ef)
		}
	}
}

// One warm refinement pass over a projected labeling must never increase its
// energy, for any coarse labeling.
func TestProjectionRefinementNeverIncreasesEnergy(t *testing.T) {
	g := testGraph(t, 150, 5)
	h, err := coarsen.Build(g, coarsen.Options{CoarsestSize: 64})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	top := h.NumLevels() - 1
	for trial := 0; trial < 10; trial++ {
		cl := randomLabels(h.Coarsest(), rng)
		fl, err := h.Project(cl, top, 0)
		if err != nil {
			t.Fatalf("Project: %v", err)
		}
		before := g.MustEnergy(fl)
		dirty := make([]bool, g.NumNodes())
		for i := range dirty {
			dirty[i] = true
		}
		kern, err := solve.New("icm")
		if err != nil {
			t.Fatalf("New(icm): %v", err)
		}
		sol, err := solve.Run(context.Background(), g, solve.Options{
			MaxIterations: 1,
			InitialLabels: fl,
			DirtyMask:     dirty,
		}, kern)
		if err != nil {
			t.Fatalf("refine: %v", err)
		}
		if sol.Energy > before+1e-9 {
			t.Fatalf("trial %d: refinement increased energy %.9f -> %.9f", trial, before, sol.Energy)
		}
	}
}

// Hierarchy construction is deterministic: two builds from identically
// generated graphs agree level by level.
func TestHierarchyDeterministic(t *testing.T) {
	build := func() (*coarsen.Hierarchy, *mrf.Graph) {
		g := testGraph(t, 300, 17)
		h, err := coarsen.Build(g, coarsen.Options{CoarsestSize: 32})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return h, g
	}
	h1, _ := build()
	h2, g2 := build()
	if h1.NumLevels() != h2.NumLevels() {
		t.Fatalf("level counts differ: %d vs %d", h1.NumLevels(), h2.NumLevels())
	}
	for l := range h1.Maps {
		m1, m2 := h1.Maps[l], h2.Maps[l]
		if len(m1) != len(m2) {
			t.Fatalf("level %d map sizes differ: %d vs %d", l, len(m1), len(m2))
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("level %d: node %d maps to %d vs %d", l, i, m1[i], m2[i])
			}
		}
	}
	for l, lvl := range h1.Levels {
		if lvl.NumNodes() != h2.Levels[l].NumNodes() || lvl.NumEdges() != h2.Levels[l].NumEdges() {
			t.Fatalf("level %d shapes differ: %d/%d vs %d/%d nodes/edges",
				l, lvl.NumNodes(), lvl.NumEdges(), h2.Levels[l].NumNodes(), h2.Levels[l].NumEdges())
		}
	}
	// Same labeling, same energy on both runs' coarsest graphs.
	rng := rand.New(rand.NewSource(23))
	cl := randomLabels(h1.Coarsest(), rng)
	if e1, e2 := h1.Coarsest().MustEnergy(cl), h2.Coarsest().MustEnergy(cl); e1 != e2 {
		t.Fatalf("coarsest energies differ: %v vs %v", e1, e2)
	}
	_ = g2
}

// Aggregate shares Contract's merged-potential construction, so the same
// exact energy invariant must hold for the single-jump path, and two
// aggregations of identically generated graphs must agree.
func TestAggregateEnergyConsistentAndDeterministic(t *testing.T) {
	g := testGraph(t, 500, 13)
	const stride = 2 // services in testGraph
	coarse, f2c, err := coarsen.Aggregate(g, stride, 64)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if coarse.NumNodes() >= g.NumNodes()/4 {
		t.Fatalf("aggregation barely shrank: %d -> %d nodes", g.NumNodes(), coarse.NumNodes())
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		cl := randomLabels(coarse, rng)
		fl := make([]int, g.NumNodes())
		for i, c := range f2c {
			fl[i] = cl[c]
		}
		ec := coarse.MustEnergy(cl)
		ef := g.MustEnergy(fl)
		if diff := ec - ef; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: coarse energy %.12f != projected fine energy %.12f", trial, ec, ef)
		}
	}
	g2 := testGraph(t, 500, 13)
	coarse2, f2c2, err := coarsen.Aggregate(g2, stride, 64)
	if err != nil {
		t.Fatalf("Aggregate (rebuild): %v", err)
	}
	if coarse2.NumNodes() != coarse.NumNodes() || coarse2.NumEdges() != coarse.NumEdges() {
		t.Fatalf("rebuild shapes differ: %d/%d vs %d/%d nodes/edges",
			coarse.NumNodes(), coarse.NumEdges(), coarse2.NumNodes(), coarse2.NumEdges())
	}
	for i := range f2c {
		if f2c[i] != f2c2[i] {
			t.Fatalf("rebuild maps node %d to %d vs %d", i, f2c[i], f2c2[i])
		}
	}
}

// Contract must keep the interned-matrix structure compact: a graph whose
// edges share one matrix per service may not explode into per-edge matrices.
func TestContractInternsAccumulatedMatrices(t *testing.T) {
	g := testGraph(t, 200, 29)
	fineMats := g.NumMatrices()
	coarse, _, err := coarsen.Contract(g)
	if err != nil {
		t.Fatalf("Contract: %v", err)
	}
	// Accumulated parallel edges create new content, but content interning
	// must keep the matrix pool far below one-per-edge.
	if coarse.NumMatrices() >= coarse.NumEdges() && coarse.NumEdges() > 8 {
		t.Fatalf("coarse graph interned %d matrices for %d edges (fine had %d)",
			coarse.NumMatrices(), coarse.NumEdges(), fineMats)
	}
}

package coarsen

import (
	"errors"
	"fmt"

	"netdiversity/internal/mrf"
)

// Aggregate contracts a graph to roughly targetNodes coarse nodes in ONE
// step by deterministic hash bucketing, sharing the merged-potential
// construction (and its exact energy-consistency invariant) with Contract.
//
// Matching-based hierarchies halve the node count per level but barely
// shrink the edge count on expander-like topologies (random uniform
// networks): parallel fine edges only collide once the coarse graph is
// nearly complete, so every level of a deep hierarchy costs O(edges) again.
// Aggregate is the million-host answer: one O(edges) pass straight to a
// coarse size where the pair table saturates and a flat solver is cheap.
//
// stride is the caller's node-interleave period: node i belongs to entity
// i/stride with phase i%stride (the diversification MRF lays out nodes as
// host*services+service, so stride=services groups whole hosts while
// keeping each service's variables separate).  Entities are scattered into
// buckets by a multiplicative hash, so grouped entities are overwhelmingly
// non-adjacent — merging them constrains little, which keeps the projected
// labeling close to locally optimal.  Nodes sharing a bucket and phase but
// differing in label count get distinct coarse nodes (merges must preserve
// the label space).
func Aggregate(g *mrf.Graph, stride, targetNodes int) (*mrf.Graph, []int32, error) {
	if g == nil {
		return nil, nil, errors.New("coarsen: nil graph")
	}
	n := g.NumNodes()
	if stride <= 0 {
		stride = 1
	}
	if targetNodes <= 0 {
		targetNodes = 1024
	}
	if targetNodes >= n {
		return nil, nil, fmt.Errorf("coarsen: aggregate target %d is not below %d nodes", targetNodes, n)
	}
	groups := targetNodes / stride
	if groups < 1 {
		groups = 1
	}

	uniformK := g.NumLabels(0)
	uniform := true
	for i := 1; i < n; i++ {
		if g.NumLabels(i) != uniformK {
			uniform = false
			break
		}
	}

	f2c := make([]int32, n)
	var coarseCounts []int
	if uniform {
		// Direct id layout: bucket-major, phase-minor — no assignment map.
		for i := 0; i < n; i++ {
			f2c[i] = int32(bucketOf(i/stride, groups)*stride + i%stride)
		}
		coarseCounts = make([]int, groups*stride)
		for i := range coarseCounts {
			coarseCounts[i] = uniformK
		}
	} else {
		type key struct {
			bucket, phase, count int
		}
		ids := make(map[key]int32)
		for i := 0; i < n; i++ {
			k := key{bucketOf(i/stride, groups), i % stride, g.NumLabels(i)}
			id, ok := ids[k]
			if !ok {
				id = int32(len(coarseCounts))
				ids[k] = id
				coarseCounts = append(coarseCounts, g.NumLabels(i))
			}
			f2c[i] = id
		}
	}

	coarse, err := buildCoarse(g, f2c, coarseCounts)
	if err != nil {
		return nil, nil, err
	}
	return coarse, f2c, nil
}

// bucketOf scatters entity h into one of `groups` buckets with a Fibonacci
// multiplicative hash — deterministic, stateless and well-mixed, so buckets
// are near-uniform and grouped entities are spread across the topology.
func bucketOf(h, groups int) int {
	return int((uint64(h)*0x9E3779B97F4A7C15)>>33) % groups
}

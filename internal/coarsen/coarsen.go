// Package coarsen contracts a diversification MRF into a hierarchy of
// progressively smaller, energy-consistent problems — the "coarsen" half of
// the multilevel coarsen→solve→project→refine scheme (internal/multilevel).
//
// One contraction step merges node pairs selected by a deterministic
// matching over the graph's CSR adjacency.  Merged nodes must share a label
// count; a coarse node then carries one label decision for all of its fine
// members.  The merge preserves the energy exactly under that restriction:
//
//   - merged unary rows are summed,
//   - an edge internal to a merged pair contributes its diagonal ψ(x,x) to
//     the coarse unary (both endpoints take the same coarse label),
//   - parallel fine edges between the same two coarse nodes are accumulated
//     into one summed matrix, content-interned so the coarse graph keeps the
//     fine graph's shared-matrix structure.
//
// Hence E_coarse(x_c) == E_fine(Project(x_c)) for every coarse labeling —
// the invariant the property tests pin and the refinement loop relies on.
//
// Matching policy.  Diversification objectives penalise equal labels on
// adjacent nodes, so contracting an edge forces its endpoints onto the same
// label — exactly what the objective resists.  The matcher therefore prefers
// distance-2 partners (two nodes sharing a neighbour but not an edge): they
// may share a label freely, so the projected coarse solution is locally
// near-optimal and the refinement frontier stays small.  Nodes with no
// eligible distance-2 partner fall back to an adjacent partner (choosing the
// incident edge with the smallest summed diagonal, i.e. the cheapest
// equal-label penalty) and otherwise stay unmatched.  Low-degree nodes are
// matched first: they have the fewest partner options and are the cheapest
// to force equal.
package coarsen

import (
	"errors"
	"fmt"

	"netdiversity/internal/mrf"
)

// Options tunes hierarchy construction.  The zero value applies defaults.
type Options struct {
	// CoarsestSize stops coarsening once a level has at most this many
	// nodes.  Default 1024.
	CoarsestSize int
	// MaxLevels bounds the number of coarse levels built on top of the fine
	// graph.  Default 24.
	MaxLevels int
	// MinReduction is the minimum fractional node-count reduction a
	// contraction must achieve to be kept; a stalled contraction ends the
	// hierarchy.  Default 0.05.
	MinReduction float64
}

func (o Options) withDefaults() Options {
	if o.CoarsestSize <= 0 {
		o.CoarsestSize = 1024
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 24
	}
	if o.MinReduction <= 0 {
		o.MinReduction = 0.05
	}
	return o
}

// Hierarchy is a multilevel coarsening of one MRF: Levels[0] is the original
// (fine) graph and Levels[l+1] the contraction of Levels[l].  Maps[l] maps
// every node of level l to its coarse node in level l+1 (len(Maps) ==
// len(Levels)-1).
type Hierarchy struct {
	Levels []*mrf.Graph
	Maps   [][]int32
}

// NumLevels returns the number of levels including the fine graph.
func (h *Hierarchy) NumLevels() int { return len(h.Levels) }

// Coarsest returns the smallest graph of the hierarchy.
func (h *Hierarchy) Coarsest() *mrf.Graph { return h.Levels[len(h.Levels)-1] }

// Project lifts a labeling of level `from` down to level `to` (from > to):
// every fine node takes its coarse ancestor's label.
func (h *Hierarchy) Project(labels []int, from, to int) ([]int, error) {
	if from <= to || from >= len(h.Levels) || to < 0 {
		return nil, fmt.Errorf("coarsen: cannot project level %d to %d of %d levels", from, to, len(h.Levels))
	}
	if len(labels) != h.Levels[from].NumNodes() {
		return nil, fmt.Errorf("coarsen: labeling has %d entries, level %d has %d nodes",
			len(labels), from, h.Levels[from].NumNodes())
	}
	cur := labels
	for l := from; l > to; l-- {
		m := h.Maps[l-1]
		fine := make([]int, len(m))
		for i, c := range m {
			fine[i] = cur[c]
		}
		cur = fine
	}
	return cur, nil
}

// Build constructs the hierarchy for a graph.  Construction is fully
// deterministic: the same graph always yields the same hierarchy.
func Build(g *mrf.Graph, opts Options) (*Hierarchy, error) {
	if g == nil {
		return nil, errors.New("coarsen: nil graph")
	}
	opts = opts.withDefaults()
	h := &Hierarchy{Levels: []*mrf.Graph{g}}
	for len(h.Levels)-1 < opts.MaxLevels {
		cur := h.Coarsest()
		if cur.NumNodes() <= opts.CoarsestSize {
			break
		}
		coarse, m, err := Contract(cur)
		if err != nil {
			return nil, err
		}
		reduced := cur.NumNodes() - coarse.NumNodes()
		if float64(reduced) < opts.MinReduction*float64(cur.NumNodes()) {
			break // contraction stalled; solving this level again buys nothing
		}
		h.Levels = append(h.Levels, coarse)
		h.Maps = append(h.Maps, m)
	}
	return h, nil
}

// Contract performs one coarsening step: a deterministic matching followed
// by the merged-potential construction.  It returns the coarse graph and the
// fine→coarse node map.
func Contract(g *mrf.Graph) (*mrf.Graph, []int32, error) {
	if g == nil {
		return nil, nil, errors.New("coarsen: nil graph")
	}
	n := g.NumNodes()
	partner := match(g)

	// Assign coarse ids in fine-node order so the construction is stable.
	f2c := make([]int32, n)
	for i := range f2c {
		f2c[i] = -1
	}
	var coarseCounts []int
	for i := 0; i < n; i++ {
		if f2c[i] >= 0 {
			continue
		}
		id := int32(len(coarseCounts))
		f2c[i] = id
		if p := partner[i]; p >= 0 {
			f2c[p] = id
		}
		coarseCounts = append(coarseCounts, g.NumLabels(i))
	}

	coarse, err := buildCoarse(g, f2c, coarseCounts)
	if err != nil {
		return nil, nil, err
	}
	return coarse, f2c, nil
}

// buildCoarse performs the merged-potential construction for an arbitrary
// fine→coarse map: member unaries sum, edges internal to one coarse node
// fold their diagonal into its unary (members share the coarse label, and
// every merge policy guarantees equal label counts within a coarse node),
// and parallel fine edges between the same coarse pair accumulate into one
// content-interned matrix.  The construction preserves energy exactly:
// E_coarse(x) == E_fine(x∘f2c) for every coarse labeling x.
func buildCoarse(g *mrf.Graph, f2c []int32, coarseCounts []int) (*mrf.Graph, error) {
	coarse, err := mrf.NewGraph(coarseCounts)
	if err != nil {
		return nil, fmt.Errorf("coarsen: %w", err)
	}

	// Merged unaries: sum the member rows.
	for i := 0; i < g.NumNodes(); i++ {
		c := int(f2c[i])
		row := g.UnaryView(i)
		for l, v := range row {
			if v != 0 {
				if err := coarse.AddUnary(c, l, v); err != nil {
					return nil, fmt.Errorf("coarsen: %w", err)
				}
			}
		}
	}

	// Dense accumulation (no hash map on the hot path) when every coarse
	// node has the same label count and the pair table fits in memory;
	// generic map-keyed accumulation otherwise.
	uniform := true
	for _, c := range coarseCounts {
		if c != coarseCounts[0] {
			uniform = false
			break
		}
	}
	nc := len(coarseCounts)
	if uniform && nc*nc <= maxDensePairs {
		err = accumulateDense(g, coarse, f2c, nc, coarseCounts[0])
	} else {
		err = accumulateSparse(g, coarse, f2c)
	}
	if err != nil {
		return nil, err
	}
	return coarse, nil
}

// maxDensePairs bounds the dense pair table of accumulateDense: numCoarse²
// int32 slots (16 MB at the 2048-node default aggregation target).
const maxDensePairs = 4 << 20

// accumulateDense accumulates coarse edges through a flat pair table indexed
// by cu*numCoarse+cv — the O(1)-per-edge path the single-jump aggregation of
// million-host graphs relies on.  All coarse nodes share one label count k.
func accumulateDense(g *mrf.Graph, coarse *mrf.Graph, f2c []int32, nc, k int) error {
	slot := make([]int32, nc*nc) // canonical pair -> 1+index into bufs
	type pair struct{ u, v int32 }
	var pairs []pair
	var data []float64 // bufs[i] is data[i*k*k : (i+1)*k*k]
	kk := k * k
	var outerErr error
	g.ForEachEdge(func(idx, u, v, mat int) {
		if outerErr != nil {
			return
		}
		cu, cv := f2c[u], f2c[v]
		m := g.Mat(mat)
		if cu == cv {
			for x := 0; x < k; x++ {
				if err := coarse.AddUnary(int(cu), x, m.At(x, x)); err != nil {
					outerErr = fmt.Errorf("coarsen: %w", err)
					return
				}
			}
			return
		}
		a, b := cu, cv
		transposed := false
		if a > b {
			a, b = b, a
			transposed = true
		}
		s := int(a)*nc + int(b)
		bi := slot[s]
		if bi == 0 {
			pairs = append(pairs, pair{a, b})
			data = append(data, make([]float64, kk)...)
			bi = int32(len(pairs))
			slot[s] = bi
		}
		dst := data[int(bi-1)*kk : int(bi)*kk]
		if m.Rows != k || m.Cols != k {
			outerErr = fmt.Errorf("coarsen: edge %d matrix %dx%d on uniform coarse graph with %d labels",
				idx, m.Rows, m.Cols, k)
			return
		}
		if transposed {
			for x := 0; x < k; x++ {
				row := m.Row(x)
				for y, w := range row {
					dst[y*k+x] += w
				}
			}
		} else {
			for x := 0; x < k; x++ {
				row := m.Row(x)
				dst := dst[x*k : (x+1)*k]
				for y, w := range row {
					dst[y] += w
				}
			}
		}
	})
	if outerErr != nil {
		return outerErr
	}
	for i, p := range pairs {
		if _, err := coarse.AddEdgeFlat(int(p.u), int(p.v), k, k, data[i*kk:(i+1)*kk]); err != nil {
			return fmt.Errorf("coarsen: %w", err)
		}
	}
	return nil
}

// accumulateSparse is the generic accumulation path: coarse pairs keyed
// through a map, per-pair matrix dimensions taken from the coarse label
// counts, fine matrices transposed as orientation requires.
func accumulateSparse(g *mrf.Graph, coarse *mrf.Graph, f2c []int32) error {
	type accKey struct{ u, v int32 }
	acc := make(map[accKey]int, g.NumEdges()/2+1) // coarse pair -> index into bufs
	type accBuf struct {
		u, v       int32
		rows, cols int
		data       []float64
	}
	var bufs []accBuf
	var outerErr error
	g.ForEachEdge(func(idx, u, v, mat int) {
		if outerErr != nil {
			return
		}
		cu, cv := f2c[u], f2c[v]
		m := g.Mat(mat)
		if cu == cv {
			// Internal edge: both members take the coarse label, so the edge
			// contributes its diagonal to the coarse unary.  Merged nodes
			// share a label count, so the matrix is square.
			k := coarse.NumLabels(int(cu))
			for x := 0; x < k; x++ {
				if err := coarse.AddUnary(int(cu), x, m.At(x, x)); err != nil {
					outerErr = fmt.Errorf("coarsen: %w", err)
					return
				}
			}
			return
		}
		// Orient the accumulated matrix so rows index the lower coarse id.
		a, b := cu, cv
		if a > b {
			a, b = b, a
		}
		// The fine matrix rows are indexed by fine U's labels; they align
		// with the coarse rows exactly when U's coarse node is the row
		// endpoint a.
		rowIsU := f2c[u] == a
		key := accKey{a, b}
		bi, ok := acc[key]
		if !ok {
			bi = len(bufs)
			acc[key] = bi
			bufs = append(bufs, accBuf{
				u: a, v: b,
				rows: coarse.NumLabels(int(a)),
				cols: coarse.NumLabels(int(b)),
				data: make([]float64, coarse.NumLabels(int(a))*coarse.NumLabels(int(b))),
			})
		}
		buf := &bufs[bi]
		if m.Rows == buf.rows && m.Cols == buf.cols && rowIsU {
			for x := 0; x < m.Rows; x++ {
				row := m.Row(x)
				dst := buf.data[x*buf.cols : (x+1)*buf.cols]
				for y, w := range row {
					dst[y] += w
				}
			}
		} else if m.Cols == buf.rows && m.Rows == buf.cols && !rowIsU {
			for x := 0; x < m.Rows; x++ {
				row := m.Row(x)
				for y, w := range row {
					buf.data[y*buf.cols+x] += w
				}
			}
		} else {
			outerErr = fmt.Errorf("coarsen: edge %d matrix %dx%d does not fit coarse pair (%d,%d) %dx%d",
				idx, m.Rows, m.Cols, a, b, buf.rows, buf.cols)
		}
	})
	if outerErr != nil {
		return outerErr
	}
	for i := range bufs {
		b := &bufs[i]
		if _, err := coarse.AddEdgeFlat(int(b.u), int(b.v), b.rows, b.cols, b.data); err != nil {
			return fmt.Errorf("coarsen: %w", err)
		}
	}
	return nil
}

// maxScanEdges bounds the incident edges examined per node during matching.
// Coarse levels densify (the degree roughly doubles per contraction), and an
// uncapped distance-2 scan costs degree² per node — quadratic blowup on deep
// hierarchies.  The cap keeps matching linear; it only censors candidates on
// already-dense levels where partner choice matters least.
const maxScanEdges = 32

// match computes the deterministic contraction matching: partner[i] is the
// node merged with i, or -1.  Nodes are visited in increasing-degree order
// (ties by index); each unmatched node first looks for an unmatched
// distance-2 partner with the same label count (lowest index wins), then
// falls back to the unmatched direct neighbour whose connecting matrices
// have the smallest summed diagonal.
func match(g *mrf.Graph) []int32 {
	n := g.NumNodes()
	partner := make([]int32, n)
	for i := range partner {
		partner[i] = -1
	}
	order := byDegree(g)
	// seen marks candidate distance-2 partners per visit; generation
	// counters avoid clearing it between nodes.
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	for vi, node := range order {
		if partner[node] >= 0 {
			continue
		}
		k := g.NumLabels(node)
		gen := int32(vi)
		// Mark direct neighbours so they are not chosen as distance-2
		// partners (and collect them for the fallback).
		best2 := -1
		inc := g.IncidentEdges(node)
		for _, e := range inc {
			u, v := g.EdgeEndpoints(e)
			nb := u
			if nb == node {
				nb = v
			}
			seen[nb] = gen
		}
		seen[node] = gen
		scan := inc
		if len(scan) > maxScanEdges {
			scan = scan[:maxScanEdges]
		}
		for _, e := range scan {
			u, v := g.EdgeEndpoints(e)
			nb := u
			if nb == node {
				nb = v
			}
			inc2 := g.IncidentEdges(nb)
			if len(inc2) > maxScanEdges {
				inc2 = inc2[:maxScanEdges]
			}
			for _, e2 := range inc2 {
				u2, v2 := g.EdgeEndpoints(e2)
				cand := u2
				if cand == nb {
					cand = v2
				}
				if seen[cand] == gen || partner[cand] >= 0 || g.NumLabels(cand) != k {
					continue
				}
				seen[cand] = gen // dedupe further sightings
				if best2 < 0 || cand < best2 {
					best2 = cand
				}
			}
		}
		if best2 >= 0 {
			partner[node] = int32(best2)
			partner[best2] = int32(node)
			continue
		}
		// Fallback: cheapest adjacent partner (smallest equal-label penalty).
		bestAdj, bestDiag := -1, 0.0
		for _, e := range g.IncidentEdges(node) {
			u, v := g.EdgeEndpoints(e)
			nb := u
			if nb == node {
				nb = v
			}
			if partner[nb] >= 0 || g.NumLabels(nb) != k {
				continue
			}
			d := diagSum(g.EdgeMat(e))
			if bestAdj < 0 || d < bestDiag || (d == bestDiag && nb < bestAdj) {
				bestAdj, bestDiag = nb, d
			}
		}
		if bestAdj >= 0 {
			partner[node] = int32(bestAdj)
			partner[bestAdj] = int32(node)
		}
	}
	return partner
}

// byDegree returns the node indices sorted by (degree, index) using a linear
// counting sort — the matcher's visit order must not cost O(n log n) on
// million-node levels.
func byDegree(g *mrf.Graph) []int {
	n := g.NumNodes()
	maxDeg := 0
	for i := 0; i < n; i++ {
		if d := g.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+2)
	for i := 0; i < n; i++ {
		counts[g.Degree(i)+1]++
	}
	for d := 1; d < len(counts); d++ {
		counts[d] += counts[d-1]
	}
	out := make([]int, n)
	for i := 0; i < n; i++ { // increasing index within one degree bucket
		d := g.Degree(i)
		out[counts[d]] = i
		counts[d]++
	}
	return out
}

// diagSum returns the summed diagonal of a matrix — the total equal-label
// penalty its edge would fold into a merged node.  The matcher only compares
// square matrices (endpoints with matching label counts).
func diagSum(m *mrf.Matrix) float64 {
	k := m.Rows
	if m.Cols < k {
		k = m.Cols
	}
	s := 0.0
	for x := 0; x < k; x++ {
		s += m.At(x, x)
	}
	return s
}

// Package attacksim is the agent-based malware-propagation simulator the
// library uses instead of the paper's NetLogo model (Section VII-C-2).
//
// Starting from an entry host, an attacker repeatedly scans the neighbours of
// every compromised host and attempts to exploit one product per neighbour
// per tick.  The per-attempt success probability uses the same infection
// model as the Bayesian-network metric: P_avg + (1-P_avg)·sim(p_u, p_v) for
// the chosen service.  The number of ticks until the target host is
// compromised, averaged over many runs, is the Mean-Time-To-Compromise
// (MTTC) reported in Table VI: more diverse assignments force the attacker to
// spend more ticks.
package attacksim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// Strategy selects how the attacker picks which product to exploit on a
// neighbouring host.
type Strategy int

const (
	// Reconnaissance attackers probe first and always use the exploit with
	// the highest success rate (the sophisticated attacker of the paper's
	// simulation study).
	Reconnaissance Strategy = iota + 1
	// UniformChoice attackers pick one feasible exploit uniformly at random.
	UniformChoice
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Reconnaissance:
		return "reconnaissance"
	case UniformChoice:
		return "uniform"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config parameterises a simulation campaign.
type Config struct {
	// Entry is the initially compromised host.
	Entry netmodel.HostID
	// Target is the host whose compromise stops a run.
	Target netmodel.HostID
	// Runs is the number of independent simulation runs (the paper uses
	// 1000).  Default 1000.
	Runs int
	// MaxTicks aborts a run that has not reached the target.  Default 1000.
	MaxTicks int
	// PAvg is the base zero-day propagation rate.  Default 0.2.
	PAvg float64
	// Strategy selects the attacker's exploit choice.  Default
	// Reconnaissance.
	Strategy Strategy
	// ExploitServices restricts which services the attacker has zero-day
	// exploits for; nil means all services.
	ExploitServices []netmodel.ServiceID
	// Seed makes the campaign deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 1000
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 1000
	}
	if c.PAvg <= 0 || c.PAvg >= 1 {
		c.PAvg = 0.2
	}
	if c.Strategy == 0 {
		c.Strategy = Reconnaissance
	}
	return c
}

func (c Config) allowsService(s netmodel.ServiceID) bool {
	if len(c.ExploitServices) == 0 {
		return true
	}
	for _, e := range c.ExploitServices {
		if e == s {
			return true
		}
	}
	return false
}

// Result summarises a simulation campaign.
type Result struct {
	// MTTC is the mean number of ticks to compromise the target across all
	// runs (runs that never reach the target count as MaxTicks).
	MTTC float64
	// MedianTTC and P90TTC are the median and 90th-percentile ticks.
	MedianTTC float64
	P90TTC    float64
	// SuccessRate is the fraction of runs in which the target was
	// compromised within MaxTicks.
	SuccessRate float64
	// MeanInfected is the mean number of hosts compromised at the end of a
	// run (including the entry host).
	MeanInfected float64
	// Runs echoes the number of runs performed.
	Runs int
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("mttc=%.3f median=%.1f p90=%.1f success=%.2f infected=%.1f",
		r.MTTC, r.MedianTTC, r.P90TTC, r.SuccessRate, r.MeanInfected)
}

// Simulator runs malware-propagation campaigns over one network and
// assignment.
type Simulator struct {
	net *netmodel.Network
	sim *vulnsim.SimilarityTable
	a   *netmodel.Assignment
	// edge success probabilities precomputed per (src, dst) ordered pair.
	probs map[[2]netmodel.HostID]float64
}

// New prepares a simulator.  The assignment must be complete for the network.
func New(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable) (*Simulator, error) {
	if net == nil || a == nil || sim == nil {
		return nil, errors.New("attacksim: network, assignment and similarity table must not be nil")
	}
	if err := a.ValidateFor(net); err != nil {
		return nil, fmt.Errorf("attacksim: %w", err)
	}
	return &Simulator{net: net, sim: sim, a: a}, nil
}

// prepare precomputes the per-edge success probability under the config.
func (s *Simulator) prepare(cfg Config) {
	s.probs = make(map[[2]netmodel.HostID]float64, 2*s.net.NumLinks())
	for _, link := range s.net.Links() {
		s.probs[[2]netmodel.HostID{link.A, link.B}] = s.edgeProb(cfg, link.A, link.B)
		s.probs[[2]netmodel.HostID{link.B, link.A}] = s.edgeProb(cfg, link.B, link.A)
	}
}

// edgeProb is the success probability of one exploitation attempt from src to
// dst under the attacker strategy.
func (s *Simulator) edgeProb(cfg Config, src, dst netmodel.HostID) float64 {
	var perService []float64
	for _, svc := range s.net.SharedServices(src, dst) {
		if !cfg.allowsService(svc) {
			continue
		}
		pu, oku := s.a.Get(src, svc)
		pv, okv := s.a.Get(dst, svc)
		if !oku || !okv {
			continue
		}
		similarity := s.sim.Sim(string(pu), string(pv))
		perService = append(perService, cfg.PAvg+(1-cfg.PAvg)*similarity)
	}
	if len(perService) == 0 {
		return 0
	}
	if cfg.Strategy == Reconnaissance {
		best := perService[0]
		for _, p := range perService[1:] {
			if p > best {
				best = p
			}
		}
		return best
	}
	sum := 0.0
	for _, p := range perService {
		sum += p
	}
	return sum / float64(len(perService))
}

// Run executes the campaign.
func (s *Simulator) Run(cfg Config) (Result, error) {
	return s.RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation between runs.
func (s *Simulator) RunContext(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if _, ok := s.net.Host(cfg.Entry); !ok {
		return Result{}, fmt.Errorf("attacksim: unknown entry host %q", cfg.Entry)
	}
	if _, ok := s.net.Host(cfg.Target); !ok {
		return Result{}, fmt.Errorf("attacksim: unknown target host %q", cfg.Target)
	}
	s.prepare(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))

	ticks := make([]float64, 0, cfg.Runs)
	successes := 0
	totalInfected := 0
	for run := 0; run < cfg.Runs; run++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		t, infected, ok := s.singleRun(cfg, rng)
		if ok {
			successes++
		}
		ticks = append(ticks, float64(t))
		totalInfected += infected
	}
	sort.Float64s(ticks)
	res := Result{
		Runs:         cfg.Runs,
		SuccessRate:  float64(successes) / float64(cfg.Runs),
		MeanInfected: float64(totalInfected) / float64(cfg.Runs),
		MedianTTC:    percentile(ticks, 0.5),
		P90TTC:       percentile(ticks, 0.9),
	}
	sum := 0.0
	for _, t := range ticks {
		sum += t
	}
	res.MTTC = sum / float64(len(ticks))
	return res, nil
}

// singleRun simulates one campaign and returns the tick at which the target
// was compromised (or MaxTicks), the number of infected hosts, and whether
// the target was reached.
func (s *Simulator) singleRun(cfg Config, rng *rand.Rand) (tick, infectedCount int, reached bool) {
	infected := map[netmodel.HostID]bool{cfg.Entry: true}
	if cfg.Entry == cfg.Target {
		return 0, 1, true
	}
	frontierStable := 0
	for tick = 1; tick <= cfg.MaxTicks; tick++ {
		newly := make([]netmodel.HostID, 0, 4)
		for host := range infected {
			for _, nb := range s.net.Neighbors(host) {
				if infected[nb] {
					continue
				}
				p := s.probs[[2]netmodel.HostID{host, nb}]
				if p > 0 && rng.Float64() < p {
					newly = append(newly, nb)
				}
			}
		}
		if len(newly) == 0 {
			frontierStable++
		} else {
			frontierStable = 0
		}
		for _, h := range newly {
			infected[h] = true
		}
		if infected[cfg.Target] {
			return tick, len(infected), true
		}
		// If every reachable neighbour has zero success probability the run
		// can never progress; keep ticking (time still passes for MTTC) but
		// bail out early when nothing can change for a long stretch to keep
		// campaigns fast.
		if frontierStable > 50 && !anyProgressPossible(s, infected) {
			break
		}
	}
	return cfg.MaxTicks, len(infected), false
}

func anyProgressPossible(s *Simulator, infected map[netmodel.HostID]bool) bool {
	for host := range infected {
		for _, nb := range s.net.Neighbors(host) {
			if infected[nb] {
				continue
			}
			if s.probs[[2]netmodel.HostID{host, nb}] > 0 {
				return true
			}
		}
	}
	return false
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

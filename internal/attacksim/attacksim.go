// Package attacksim is the agent-based malware-propagation simulator the
// library uses instead of the paper's NetLogo model (Section VII-C-2).
//
// Starting from an entry host, an attacker repeatedly scans the neighbours of
// every compromised host and attempts to exploit one product per neighbour
// per tick.  The per-attempt success probability uses the same infection
// model as the Bayesian-network metric: P_avg + (1-P_avg)·sim(p_u, p_v) for
// the chosen service.  The number of ticks until the target host is
// compromised, averaged over many runs, is the Mean-Time-To-Compromise
// (MTTC) reported in Table VI: more diverse assignments force the attacker to
// spend more ticks.
//
// Campaigns execute through a compiled engine: CompileCampaign lowers the
// network, assignment and attacker model into a flat CSR adjacency with one
// precomputed success probability per directed arc (see Campaign), and the
// paper's 1000 runs are batched over a deterministic worker pool with
// per-run seeds, so results never depend on scheduling.  Two engines are
// available: the tick loop (bit-exact with the historical simulator) and the
// event-driven geometric/Dijkstra engine whose cost is independent of
// MaxTicks (see Mode).
package attacksim

import (
	"context"
	"errors"
	"fmt"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// Strategy selects how the attacker picks which product to exploit on a
// neighbouring host.
type Strategy int

const (
	// Reconnaissance attackers probe first and always use the exploit with
	// the highest success rate (the sophisticated attacker of the paper's
	// simulation study).
	Reconnaissance Strategy = iota + 1
	// UniformChoice attackers pick one feasible exploit uniformly at random.
	UniformChoice
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Reconnaissance:
		return "reconnaissance"
	case UniformChoice:
		return "uniform"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// collapse returns the compile-time reduction of per-service probabilities
// implementing the strategy.  Reconnaissance collapses each arc to its single
// max-probability exploit (what the legacy simulator recomputed per edge);
// UniformChoice to the mean, which is exact because a uniform mixture of
// Bernoulli attempts is a Bernoulli attempt with the mean probability.
func (s Strategy) collapse() CollapseFunc {
	if s == UniformChoice {
		return CollapseMean
	}
	return CollapseMax
}

// Config parameterises a simulation campaign.
type Config struct {
	// Entry is the initially compromised host.
	Entry netmodel.HostID
	// Target is the host whose compromise stops a run.
	Target netmodel.HostID
	// Runs is the number of independent simulation runs (the paper uses
	// 1000).  Default 1000.
	Runs int
	// MaxTicks aborts a run that has not reached the target.  Default 1000.
	MaxTicks int
	// PAvg is the base zero-day propagation rate.  Default 0.2.
	PAvg float64
	// Strategy selects the attacker's exploit choice.  Default
	// Reconnaissance.
	Strategy Strategy
	// ExploitServices restricts which services the attacker has zero-day
	// exploits for; nil means all services.
	ExploitServices []netmodel.ServiceID
	// Seed makes the campaign deterministic.
	Seed int64
	// Mode selects the execution engine.  Default ModeTick (bit-exact with
	// the historical simulator); ModeEvent is statistically equivalent and
	// faster on high-MTTC campaigns.
	Mode Mode
	// Workers sizes the batched worker pool.  Default 1.  Results are
	// identical for every worker count (per-run seeds), so this is purely a
	// throughput knob.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 1000
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 1000
	}
	if c.PAvg <= 0 || c.PAvg >= 1 {
		c.PAvg = 0.2
	}
	if c.Strategy == 0 {
		c.Strategy = Reconnaissance
	}
	return c
}

// Result summarises a simulation campaign.
type Result struct {
	// MTTC is the mean number of ticks to compromise the target across all
	// runs (runs that never reach the target count as MaxTicks).
	MTTC float64
	// MedianTTC and P90TTC are the median and 90th-percentile ticks.
	MedianTTC float64
	P90TTC    float64
	// StdTTC is the sample standard deviation of the ticks-to-compromise
	// (Welford-merged across the worker pool).
	StdTTC float64
	// SuccessRate is the fraction of runs in which the target was
	// compromised within MaxTicks.
	SuccessRate float64
	// MeanInfected is the mean number of hosts compromised at the end of a
	// run (including the entry host).
	MeanInfected float64
	// Runs echoes the number of runs performed.
	Runs int
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("mttc=%.3f median=%.1f p90=%.1f success=%.2f infected=%.1f",
		r.MTTC, r.MedianTTC, r.P90TTC, r.SuccessRate, r.MeanInfected)
}

// Simulator runs malware-propagation campaigns over one network and
// assignment.
type Simulator struct {
	net *netmodel.Network
	sim *vulnsim.SimilarityTable
	a   *netmodel.Assignment
}

// New prepares a simulator.  The assignment must be complete for the network.
func New(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable) (*Simulator, error) {
	if net == nil || a == nil || sim == nil {
		return nil, errors.New("attacksim: network, assignment and similarity table must not be nil")
	}
	if err := a.ValidateFor(net); err != nil {
		return nil, fmt.Errorf("attacksim: %w", err)
	}
	return &Simulator{net: net, sim: sim, a: a}, nil
}

// Compile lowers a campaign configuration into its executable form.  Callers
// that sweep several campaigns over one assignment (different entry points,
// run counts or seeds with the same strategy and exploit set) can reuse the
// simulator and compile per campaign; the compile cost is O(arcs·services).
func (s *Simulator) Compile(cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	return CompileCampaign(s.net, s.a, s.sim, CompileConfig{
		Entry:           cfg.Entry,
		Target:          cfg.Target,
		PAvg:            cfg.PAvg,
		ExploitServices: cfg.ExploitServices,
		Runs:            cfg.Runs,
		MaxTicks:        cfg.MaxTicks,
		Seed:            cfg.Seed,
		Collapse:        cfg.Strategy.collapse(),
	})
}

// Run executes the campaign.
func (s *Simulator) Run(cfg Config) (Result, error) {
	return s.RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation between runs.
func (s *Simulator) RunContext(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	c, err := s.Compile(cfg)
	if err != nil {
		return Result{}, err
	}
	return c.RunBatch(ctx, BatchOptions{Mode: cfg.Mode, Workers: cfg.Workers})
}

package attacksim

import (
	"context"

	"netdiversity/internal/fastrand"
	"netdiversity/internal/metrics"
	"netdiversity/internal/netmodel"
)

// This file retains the pre-compilation simulator as the executable
// specification of the tick engine's determinism contract:
//
//   - run i of a campaign with seed s draws from an RNG seeded with
//     fastrand.SplitmixAt(s, i);
//   - within a tick, compromised hosts attempt in infection order (entry
//     first, then hosts in the order they were compromised) and neighbours in
//     netmodel.Network.Neighbors order;
//   - an attempt is made (and consumes one uniform draw) against every host
//     that was uncompromised at the start of the tick and whose arc has
//     positive probability — including hosts already compromised earlier in
//     the same tick;
//   - newly compromised hosts join the infected set only at the end of the
//     tick, and a run whose frontier has been empty for more than stallWindow
//     ticks with no live arc left ends early at MaxTicks.
//
// The golden tests pin Campaign.RunTick to this reference run-for-run, and
// the package benchmarks measure the compiled engine's speedup against it.
// It re-derives per-edge probabilities through hash maps and allocates per
// run — exactly the costs the compiled engine removes — so it lives in a
// _test file and is never compiled into consumer binaries.

// legacySimulator carries the map-based per-edge probabilities of the
// historical implementation.
type legacySimulator struct {
	s     *Simulator
	probs map[[2]netmodel.HostID]float64
}

// newLegacy precomputes the per-edge success probabilities under the config.
func newLegacy(s *Simulator, cfg Config) *legacySimulator {
	l := &legacySimulator{s: s, probs: make(map[[2]netmodel.HostID]float64, 2*s.net.NumLinks())}
	for _, link := range s.net.Links() {
		l.probs[[2]netmodel.HostID{link.A, link.B}] = l.edgeProb(cfg, link.A, link.B)
		l.probs[[2]netmodel.HostID{link.B, link.A}] = l.edgeProb(cfg, link.B, link.A)
	}
	return l
}

func legacyAllowsService(cfg Config, s netmodel.ServiceID) bool {
	if len(cfg.ExploitServices) == 0 {
		return true
	}
	for _, e := range cfg.ExploitServices {
		if e == s {
			return true
		}
	}
	return false
}

// edgeProb is the success probability of one exploitation attempt from src to
// dst under the attacker strategy, derived on the fly from the similarity
// table.
func (l *legacySimulator) edgeProb(cfg Config, src, dst netmodel.HostID) float64 {
	var perService []float64
	for _, svc := range l.s.net.SharedServices(src, dst) {
		if !legacyAllowsService(cfg, svc) {
			continue
		}
		pu, oku := l.s.a.Get(src, svc)
		pv, okv := l.s.a.Get(dst, svc)
		if !oku || !okv {
			continue
		}
		similarity := l.s.sim.Sim(string(pu), string(pv))
		perService = append(perService, cfg.PAvg+(1-cfg.PAvg)*similarity)
	}
	if len(perService) == 0 {
		return 0
	}
	if cfg.Strategy == Reconnaissance {
		best := perService[0]
		for _, p := range perService[1:] {
			if p > best {
				best = p
			}
		}
		return best
	}
	sum := 0.0
	for _, p := range perService {
		sum += p
	}
	return sum / float64(len(perService))
}

// runLegacy executes the campaign with the reference engine.
func (s *Simulator) runLegacy(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	// Reuse compilation only for input validation, so the two paths reject
	// identical configurations.
	if _, err := s.Compile(cfg); err != nil {
		return Result{}, err
	}
	l := newLegacy(s, cfg)

	hist := make([]uint32, cfg.MaxTicks+1)
	var ttc metrics.Welford
	var totalTicks, totalInfected uint64
	successes := 0
	for run := 0; run < cfg.Runs; run++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		rng := newRunRNG(cfg.Seed, run)
		t, infected, ok := l.singleRun(cfg, &rng)
		if ok {
			successes++
		}
		hist[t]++
		ttc.Add(float64(t))
		totalTicks += uint64(t)
		totalInfected += uint64(infected)
	}
	n := float64(cfg.Runs)
	return Result{
		Runs:         cfg.Runs,
		MTTC:         float64(totalTicks) / n,
		MedianTTC:    histPercentile(hist, cfg.Runs, 0.5),
		P90TTC:       histPercentile(hist, cfg.Runs, 0.9),
		StdTTC:       ttc.StdDev(),
		SuccessRate:  float64(successes) / n,
		MeanInfected: float64(totalInfected) / n,
	}, nil
}

// singleRun simulates one campaign and returns the tick at which the target
// was compromised (or MaxTicks), the number of infected hosts, and whether
// the target was reached.
func (l *legacySimulator) singleRun(cfg Config, rng *fastrand.RNG) (tick, infectedCount int, reached bool) {
	infected := map[netmodel.HostID]bool{cfg.Entry: true}
	order := []netmodel.HostID{cfg.Entry}
	if cfg.Entry == cfg.Target {
		return 0, 1, true
	}
	frontierStable := 0
	for tick = 1; tick <= cfg.MaxTicks; tick++ {
		newly := make([]netmodel.HostID, 0, 4)
		for _, host := range order {
			for _, nb := range l.s.net.Neighbors(host) {
				if infected[nb] {
					continue
				}
				p := l.probs[[2]netmodel.HostID{host, nb}]
				if p > 0 && rng.Float64() < p {
					newly = append(newly, nb)
				}
			}
		}
		if len(newly) == 0 {
			frontierStable++
		} else {
			frontierStable = 0
		}
		for _, h := range newly {
			if !infected[h] {
				infected[h] = true
				order = append(order, h)
			}
		}
		if infected[cfg.Target] {
			return tick, len(infected), true
		}
		if frontierStable > stallWindow && !l.anyProgressPossible(infected, order) {
			break
		}
	}
	return cfg.MaxTicks, len(infected), false
}

func (l *legacySimulator) anyProgressPossible(infected map[netmodel.HostID]bool, order []netmodel.HostID) bool {
	for _, host := range order {
		for _, nb := range l.s.net.Neighbors(host) {
			if infected[nb] {
				continue
			}
			if l.probs[[2]netmodel.HostID{host, nb}] > 0 {
				return true
			}
		}
	}
	return false
}

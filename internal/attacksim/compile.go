package attacksim

import (
	"errors"
	"fmt"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// CollapseFunc reduces the per-service success probabilities of one directed
// edge to the single per-attempt probability the attacker achieves on it.
// services and probs are parallel slices describing every feasible service of
// the arc (shared by both endpoints, allowed by the exploit mask, assigned on
// both sides); they are scratch buffers reused across arcs and must not be
// retained.  Returning 0 marks the arc dead.
//
// The built-in attacker strategies collapse to max (Reconnaissance: the
// attacker probes and always uses the best exploit) and mean (UniformChoice:
// a uniformly random feasible exploit per attempt — a per-tick mixture of
// Bernoullis is itself a Bernoulli with the mean probability, so the collapse
// is exact in distribution, not an approximation).  The adversary package
// supplies knowledge-dependent collapses.
type CollapseFunc func(src, dst netmodel.HostID, services []netmodel.ServiceID, probs []float64) float64

// CompileConfig parameterises campaign compilation.  It mirrors Config but is
// strategy-agnostic: the attacker model enters only through Collapse.
type CompileConfig struct {
	// Entry and Target bound the campaign.
	Entry  netmodel.HostID
	Target netmodel.HostID
	// PAvg is the base zero-day propagation rate.  Default 0.2.
	PAvg float64
	// ExploitServices restricts which services the attacker has zero-day
	// exploits for; nil means all services.
	ExploitServices []netmodel.ServiceID
	// Runs and MaxTicks bound the campaign.  Defaults 1000 / 1000.
	Runs     int
	MaxTicks int
	// Seed makes the campaign deterministic: run i draws from an RNG seeded
	// with SplitmixAt(Seed, i), so results are independent of worker count.
	Seed int64
	// Collapse reduces per-service probabilities to one per-arc scalar.
	// Nil defaults to max (the reconnaissance attacker).
	Collapse CollapseFunc
}

func (c CompileConfig) withDefaults() CompileConfig {
	if c.Runs <= 0 {
		c.Runs = 1000
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 1000
	}
	if c.PAvg <= 0 || c.PAvg >= 1 {
		c.PAvg = 0.2
	}
	if c.Collapse == nil {
		c.Collapse = CollapseMax
	}
	return c
}

// CollapseMax picks the best exploit of the arc (Reconnaissance).
func CollapseMax(_, _ netmodel.HostID, _ []netmodel.ServiceID, probs []float64) float64 {
	best := 0.0
	for _, p := range probs {
		if p > best {
			best = p
		}
	}
	return best
}

// CollapseMean averages the feasible exploits of the arc (UniformChoice).
func CollapseMean(_, _ netmodel.HostID, _ []netmodel.ServiceID, probs []float64) float64 {
	if len(probs) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	return sum / float64(len(probs))
}

// Campaign is a compiled attack campaign: the network lowered to a flat CSR
// adjacency over dense host indices with one precomputed success probability
// per directed arc.  Per-(edge, service) probabilities are derived from a
// dense product-pair table interned once per compile (mirroring the mrf
// matrix interning: the probability depends only on the product pair, not on
// which of the many edges carries it), and the attacker's exploit choice is
// collapsed into the arc scalar, so the run loops perform no similarity
// lookups, no sorting and no allocation.
//
// A Campaign is immutable after Compile and safe for concurrent runs, each
// with its own Scratch.
type Campaign struct {
	hosts []netmodel.HostID
	// CSR adjacency: arcs of host u are arcDst[rowStart[u]:rowStart[u+1]],
	// with arcProb holding the collapsed per-attempt success probability.
	rowStart []int32
	arcDst   []int32
	arcProb  []float64

	entry, target int32
	runs          int
	maxTicks      int
	seed          int64
}

// errNilCompile is returned when compilation receives nil inputs.
var errNilCompile = errors.New("attacksim: network, assignment and similarity table must not be nil")

// CompileCampaign lowers one campaign over a network and assignment into its
// executable form.  The assignment must be complete for the network.
func CompileCampaign(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable, cfg CompileConfig) (*Campaign, error) {
	if net == nil || a == nil || sim == nil {
		return nil, errNilCompile
	}
	cfg = cfg.withDefaults()
	hosts := net.Hosts()
	index := make(map[netmodel.HostID]int32, len(hosts))
	for i, h := range hosts {
		index[h] = int32(i)
	}
	entry, ok := index[cfg.Entry]
	if !ok {
		return nil, fmt.Errorf("attacksim: unknown entry host %q", cfg.Entry)
	}
	target, ok := index[cfg.Target]
	if !ok {
		return nil, fmt.Errorf("attacksim: unknown target host %q", cfg.Target)
	}

	// Intern the success probabilities by product pair: one dense P×P table
	// of P_avg + (1-P_avg)·sim(p_i, p_j) over the products the assignment
	// actually deploys, computed once.  Every arc below reads this table
	// instead of re-deriving similarity per (edge, service).
	var products []string
	prodSeen := make(map[netmodel.ProductID]bool)
	for _, hid := range hosts {
		h, _ := net.Host(hid)
		for _, svc := range h.Services {
			if p, ok := a.Get(hid, svc); ok && !prodSeen[p] {
				prodSeen[p] = true
				products = append(products, string(p))
			}
		}
	}
	dense := vulnsim.NewDense(sim, products)
	np := dense.NumProducts()
	pairProb := make([]float64, np*np)
	for i := 0; i < np; i++ {
		row := dense.Row(i)
		for j := 0; j < np; j++ {
			pairProb[i*np+j] = cfg.PAvg + (1-cfg.PAvg)*row[j]
		}
	}

	allowed := func(s netmodel.ServiceID) bool {
		if len(cfg.ExploitServices) == 0 {
			return true
		}
		for _, e := range cfg.ExploitServices {
			if e == s {
				return true
			}
		}
		return false
	}

	// prodIdx[host][k] is the dense product index of the host's k-th service
	// (-1 when unassigned or unknown).
	prodIdx := make([][]int32, len(hosts))
	for i, hid := range hosts {
		h, _ := net.Host(hid)
		row := make([]int32, len(h.Services))
		for k, svc := range h.Services {
			row[k] = -1
			if p, ok := a.Get(hid, svc); ok {
				row[k] = int32(dense.Index(string(p)))
			}
		}
		prodIdx[i] = row
	}

	c := &Campaign{
		hosts:    hosts,
		rowStart: make([]int32, len(hosts)+1),
		entry:    entry,
		target:   target,
		runs:     cfg.Runs,
		maxTicks: cfg.MaxTicks,
		seed:     cfg.Seed,
	}
	var (
		svcBuf  []netmodel.ServiceID
		probBuf []float64
	)
	for ui, uid := range hosts {
		c.rowStart[ui] = int32(len(c.arcDst))
		u, _ := net.Host(uid)
		for _, vid := range net.Neighbors(uid) {
			vi := index[vid]
			v, _ := net.Host(vid)
			svcBuf, probBuf = svcBuf[:0], probBuf[:0]
			for k, svc := range u.Services {
				if !allowed(svc) || prodIdx[ui][k] < 0 {
					continue
				}
				kv := -1
				for j, vs := range v.Services {
					if vs == svc {
						kv = j
						break
					}
				}
				if kv < 0 || prodIdx[vi][kv] < 0 {
					continue
				}
				svcBuf = append(svcBuf, svc)
				probBuf = append(probBuf, pairProb[int(prodIdx[ui][k])*np+int(prodIdx[vi][kv])])
			}
			p := 0.0
			if len(svcBuf) > 0 {
				p = cfg.Collapse(uid, vid, svcBuf, probBuf)
			}
			c.arcDst = append(c.arcDst, vi)
			c.arcProb = append(c.arcProb, p)
		}
	}
	c.rowStart[len(hosts)] = int32(len(c.arcDst))
	return c, nil
}

// NumHosts returns the number of hosts in the compiled campaign.
func (c *Campaign) NumHosts() int { return len(c.hosts) }

// NumArcs returns the number of directed arcs (twice the link count).
func (c *Campaign) NumArcs() int { return len(c.arcDst) }

// Runs returns the configured run count.
func (c *Campaign) Runs() int { return c.runs }

package attacksim

import (
	"context"
	"math"
	"testing"

	"netdiversity/internal/baseline"
	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// benchNetwork builds the 1000-host quick-suite cell (uniform topology,
// degree 8, 3 services, 4 products per service) with a greedy-diversified
// assignment — the slowest attack cell of the scenario matrix before the
// compiled engine.
func benchNetwork(tb testing.TB, hosts int) (*netmodel.Network, *netmodel.Assignment, *vulnsim.SimilarityTable) {
	tb.Helper()
	gen := netgen.RandomConfig{Hosts: hosts, Degree: 8, Services: 3, ProductsPerService: 4, Seed: 42}
	net, err := netgen.Generate(gen, netgen.TopologyUniform)
	if err != nil {
		tb.Fatal(err)
	}
	sim := netgen.SyntheticSimilarity(gen, 0.6)
	a, err := baseline.GreedyColoring(net, sim, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return net, a, sim
}

func benchConfig(net *netmodel.Network, runs int) Config {
	hosts := net.Hosts()
	return Config{
		Entry:    hosts[0],
		Target:   hosts[len(hosts)-1],
		Runs:     runs,
		MaxTicks: 200,
		Seed:     7,
	}
}

// TestCompiledTickMatchesLegacyGolden pins the determinism contract: the
// compiled tick engine reproduces the reference simulator exactly,
// run-for-run at the same seed, across strategies, exploit masks and
// topologies.
func TestCompiledTickMatchesLegacyGolden(t *testing.T) {
	cases := []struct {
		name  string
		hosts int
		mut   func(*Config)
	}{
		{"recon", 120, func(c *Config) {}},
		{"uniform", 120, func(c *Config) { c.Strategy = UniformChoice }},
		{"masked", 120, func(c *Config) { c.ExploitServices = []netmodel.ServiceID{netgen.ServiceName(0)} }},
		{"otherSeed", 80, func(c *Config) { c.Seed = 12345 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, a, sim := benchNetwork(t, tc.hosts)
			s, err := New(net, a, sim)
			if err != nil {
				t.Fatal(err)
			}
			cfg := benchConfig(net, 200)
			tc.mut(&cfg)
			legacy, err := s.runLegacy(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := s.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if legacy != compiled {
				t.Errorf("compiled tick engine diverged from reference:\nlegacy   %+v\ncompiled %+v", legacy, compiled)
			}

			// Run-for-run, not just in aggregate: compare individual runs.
			cfg = cfg.withDefaults()
			camp, err := s.Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sc := camp.NewScratch()
			l := newLegacy(s, cfg)
			for run := 0; run < 50; run++ {
				rng := newRunRNG(cfg.Seed, run)
				wantTicks, wantInfected, wantReached := l.singleRun(cfg, &rng)
				got := camp.RunTick(run, sc)
				if got.Ticks != wantTicks || got.Infected != wantInfected || got.Reached != wantReached {
					t.Fatalf("run %d diverged: compiled %+v, reference (%d, %d, %v)",
						run, got, wantTicks, wantInfected, wantReached)
				}
			}
		})
	}
}

// TestBatchIndependentOfWorkers pins the scheduling-independence contract:
// per-run seeds and integer statistic sums make every worker count produce
// the same result (StdTTC may differ in the last float bits; the exact
// fields must match bitwise).
func TestBatchIndependentOfWorkers(t *testing.T) {
	net, a, sim := benchNetwork(t, 150)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	cfg := benchConfig(net, 301)
	camp, err := s.Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeTick, ModeEvent} {
		base, err := camp.RunBatch(context.Background(), BatchOptions{Mode: mode, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 1000} {
			got, err := camp.RunBatch(context.Background(), BatchOptions{Mode: mode, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got.MTTC != base.MTTC || got.MedianTTC != base.MedianTTC || got.P90TTC != base.P90TTC ||
				got.SuccessRate != base.SuccessRate || got.MeanInfected != base.MeanInfected {
				t.Errorf("mode %v workers %d diverged: %+v vs %+v", mode, workers, got, base)
			}
			if math.Abs(got.StdTTC-base.StdTTC) > 1e-6 {
				t.Errorf("mode %v workers %d StdTTC %v vs %v", mode, workers, got.StdTTC, base.StdTTC)
			}
		}
	}
}

// TestEventModeStatisticallyEquivalent checks the event-driven engine against
// tick mode on aggregate statistics.  The two engines consume randomness
// differently, so equality is distributional: with 2000 runs the MTTC of a
// geometric-sum process concentrates well within a few percent.
func TestEventModeStatisticallyEquivalent(t *testing.T) {
	net, a, sim := benchNetwork(t, 200)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	cfg := benchConfig(net, 2000)
	camp, err := s.Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tick, err := camp.RunBatch(context.Background(), BatchOptions{Mode: ModeTick})
	if err != nil {
		t.Fatal(err)
	}
	event, err := camp.RunBatch(context.Background(), BatchOptions{Mode: ModeEvent})
	if err != nil {
		t.Fatal(err)
	}
	// Standard-error-scaled tolerance on the mean: 4 standard errors plus a
	// small absolute floor for near-deterministic campaigns.
	se := tick.StdTTC / math.Sqrt(float64(tick.Runs))
	tol := 4*se + 0.25
	if math.Abs(tick.MTTC-event.MTTC) > tol {
		t.Errorf("event MTTC %v deviates from tick MTTC %v by more than %v", event.MTTC, tick.MTTC, tol)
	}
	if math.Abs(tick.SuccessRate-event.SuccessRate) > 0.05 {
		t.Errorf("success rates diverged: tick %v, event %v", tick.SuccessRate, event.SuccessRate)
	}
	if math.Abs(tick.MeanInfected-event.MeanInfected) > 0.1*float64(net.NumHosts()) {
		t.Errorf("mean infected diverged: tick %v, event %v", tick.MeanInfected, event.MeanInfected)
	}
	// Variances should agree within a generous factor (they estimate the
	// same distribution's spread).
	if tick.StdTTC > 0 && (event.StdTTC < tick.StdTTC*0.6 || event.StdTTC > tick.StdTTC*1.6) {
		t.Errorf("spread diverged: tick std %v, event std %v", tick.StdTTC, event.StdTTC)
	}
}

// TestBatchedPoolUnderRace exercises the worker pool with enough workers and
// runs for the race detector to see every interleaving class; correctness is
// covered by the workers-independence test above.
func TestBatchedPoolUnderRace(t *testing.T) {
	net, a, sim := benchNetwork(t, 100)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	cfg := benchConfig(net, 400)
	cfg.Workers = 8
	if _, err := s.Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Mode = ModeEvent
	if _, err := s.Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBatchCancellation(t *testing.T) {
	net, a, sim := benchNetwork(t, 100)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := benchConfig(net, 1000)
	if _, err := s.RunContext(ctx, cfg); err != context.Canceled {
		t.Errorf("cancelled batch should surface context.Canceled, got %v", err)
	}
	cfg.Workers = 4
	if _, err := s.RunContext(ctx, cfg); err != context.Canceled {
		t.Errorf("cancelled concurrent batch should surface context.Canceled, got %v", err)
	}
}

// TestTickRunsAllocationFree verifies the zero-alloc contract of the steady
// state: once a scratch exists, neither engine allocates per run.
func TestTickRunsAllocationFree(t *testing.T) {
	net, a, sim := benchNetwork(t, 300)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := s.Compile(benchConfig(net, 100))
	if err != nil {
		t.Fatal(err)
	}
	sc := camp.NewScratch()
	run := 0
	camp.RunTick(run, sc)
	camp.RunEvent(run, sc)
	if allocs := testing.AllocsPerRun(50, func() {
		camp.RunTick(run, sc)
		run++
	}); allocs != 0 {
		t.Errorf("tick run allocates %.1f objects per run, want 0", allocs)
	}
	run = 0
	if allocs := testing.AllocsPerRun(50, func() {
		camp.RunEvent(run, sc)
		run++
	}); allocs != 0 {
		t.Errorf("event run allocates %.1f objects per run, want 0", allocs)
	}
}

// TestCompiledArcProbsMatchReference cross-checks the interned product-pair
// probabilities against the reference per-edge derivation.
func TestCompiledArcProbsMatchReference(t *testing.T) {
	net, a, sim := benchNetwork(t, 80)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []Strategy{Reconnaissance, UniformChoice} {
		cfg := benchConfig(net, 10)
		cfg.Strategy = strategy
		cfg = cfg.withDefaults()
		camp, err := s.Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l := newLegacy(s, cfg)
		for ui, uid := range camp.hosts {
			for ai := camp.rowStart[ui]; ai < camp.rowStart[ui+1]; ai++ {
				vid := camp.hosts[camp.arcDst[ai]]
				want := l.probs[[2]netmodel.HostID{uid, vid}]
				if got := camp.arcProb[ai]; got != want {
					t.Fatalf("%v arc %s->%s: compiled prob %v, reference %v", strategy, uid, vid, got, want)
				}
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeTick.String() != "tick" || ModeEvent.String() != "event" || Mode(9).String() == "" {
		t.Error("Mode names wrong")
	}
}

func benchmarkCampaign(b *testing.B, runs int) (*Simulator, Config) {
	net, a, sim := benchNetwork(b, 1000)
	s, err := New(net, a, sim)
	if err != nil {
		b.Fatal(err)
	}
	return s, benchConfig(net, runs)
}

// BenchmarkLegacyMC1000 is the pre-compilation engine on the 1000-host
// quick-suite cell (the acceptance baseline for the ≥5x speedup).
func BenchmarkLegacyMC1000(b *testing.B) {
	s, cfg := benchmarkCampaign(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.runLegacy(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledTick1000(b *testing.B) {
	s, cfg := benchmarkCampaign(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledEvent1000(b *testing.B) {
	s, cfg := benchmarkCampaign(b, 100)
	cfg.Mode = ModeEvent
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The HighMTTC pair compares the engines on the cell class event mode exists
// for: a hardened campaign (low base rate, one exploitable service) where
// most runs exhaust hundreds of ticks.  Tick cost scales with MTTC×arcs;
// event cost stays O(arcs·log hosts) per run.
func benchmarkHighMTTC(b *testing.B, mode Mode) {
	// A sparse, well-diversified network (nearly-disjoint vulnerability sets,
	// 2% base rate): MTTC ≈ 250 ticks, so the tick engine re-attempts the
	// same arcs for hundreds of ticks while the event engine's cost stays
	// O(arcs·log hosts) regardless of the horizon.
	gen := netgen.RandomConfig{Hosts: 1000, Degree: 3, Services: 3, ProductsPerService: 4, Seed: 42}
	net, err := netgen.Generate(gen, netgen.TopologyUniform)
	if err != nil {
		b.Fatal(err)
	}
	sim := netgen.SyntheticSimilarity(gen, 0.05)
	a, err := baseline.GreedyColoring(net, sim, nil)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(net, a, sim)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig(net, 50)
	cfg.PAvg = 0.02
	cfg.MaxTicks = 1000
	cfg.Mode = mode
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledTickHighMTTC(b *testing.B)  { benchmarkHighMTTC(b, ModeTick) }
func BenchmarkCompiledEventHighMTTC(b *testing.B) { benchmarkHighMTTC(b, ModeEvent) }

// BenchmarkCompiledTickRun measures a single steady-state tick run (the
// per-run alloc figure should be 0).
func BenchmarkCompiledTickRun(b *testing.B) {
	s, cfg := benchmarkCampaign(b, 100)
	camp, err := s.Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sc := camp.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp.RunTick(i, sc)
	}
}

func BenchmarkCompiledEventRun(b *testing.B) {
	s, cfg := benchmarkCampaign(b, 100)
	camp, err := s.Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sc := camp.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp.RunEvent(i, sc)
	}
}

package attacksim

import (
	"math"
	"testing"

	"netdiversity/internal/baseline"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/netmodel"
)

func TestEstimateMTTCExactOnDeterministicChain(t *testing.T) {
	net, diverse, sim := lineSetup(t, 0.2)
	mono := netmodel.NewAssignment()
	for _, id := range net.Hosts() {
		mono.Set(id, "os", "A")
	}
	s, err := New(net, mono, sim)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateMTTC(Config{Entry: "entry", Target: "target", PAvg: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Identical products: every step succeeds with probability 1 so the
	// 3-hop chain is compromised in exactly 3 ticks.
	if math.Abs(est.MTTC-3) > 1e-9 {
		t.Errorf("deterministic chain estimate = %v, want 3", est.MTTC)
	}
	if est.PCompromise < 1-1e-9 {
		t.Errorf("PCompromise = %v, want 1", est.PCompromise)
	}

	// Entry == target.
	sd, err := New(net, diverse, sim)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := sd.EstimateMTTC(Config{Entry: "entry", Target: "entry"})
	if err != nil {
		t.Fatal(err)
	}
	if zero.MTTC != 0 || zero.PCompromise != 1 {
		t.Errorf("entry == target estimate = %+v", zero)
	}
}

func TestEstimateMatchesSimulationOrdering(t *testing.T) {
	net, err := casestudy.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := casestudy.Similarity()
	mono, err := baseline.Mono(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := baseline.GreedyColoring(net, sim, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Entry:           casestudy.EntryCorporate4,
		Target:          casestudy.TargetWinCC,
		Runs:            400,
		Seed:            5,
		ExploitServices: casestudy.AttackServices(),
	}
	evaluate := func(a *netmodel.Assignment) (simulated, estimated float64) {
		t.Helper()
		s, err := New(net, a, sim)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := s.EstimateMTTC(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MTTC, est.MTTC
	}
	monoSim, monoEst := evaluate(mono)
	greedySim, greedyEst := evaluate(greedy)

	// The estimator preserves the ordering between assignments.
	if (monoSim < greedySim) != (monoEst < greedyEst) {
		t.Errorf("estimator ordering differs from simulation: sim %v/%v, est %v/%v",
			monoSim, greedySim, monoEst, greedyEst)
	}
	// And it stays within a factor of 2 of the simulated value.
	for _, pair := range [][2]float64{{monoSim, monoEst}, {greedySim, greedyEst}} {
		ratio := pair[1] / pair[0]
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("estimate %v deviates more than 2x from simulation %v", pair[1], pair[0])
		}
	}
}

func TestEstimateMTTCValidation(t *testing.T) {
	net, a, sim := lineSetup(t, 0.5)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EstimateMTTC(Config{Entry: "missing", Target: "target"}); err == nil {
		t.Error("unknown entry should be rejected")
	}
	if _, err := s.EstimateMTTC(Config{Entry: "entry", Target: "missing"}); err == nil {
		t.Error("unknown target should be rejected")
	}
}

func TestEstimateMTTCUnreachable(t *testing.T) {
	net, a, sim := lineSetup(t, 0)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateMTTC(Config{Entry: "entry", Target: "target", PAvg: 1e-9, MaxTicks: 50})
	if err != nil {
		t.Fatal(err)
	}
	if est.PCompromise > 0.01 {
		t.Errorf("practically unreachable target should have ~0 compromise probability, got %v", est.PCompromise)
	}
	if est.MTTC < 45 {
		t.Errorf("MTTC estimate should be close to the horizon, got %v", est.MTTC)
	}
}

package attacksim

import (
	"context"
	"errors"
	"testing"

	"netdiversity/internal/baseline"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// lineSetup builds entry - m1 - m2 - target with one service and two products
// (similarity crossSim), alternating products along the chain.
func lineSetup(t *testing.T, crossSim float64) (*netmodel.Network, *netmodel.Assignment, *vulnsim.SimilarityTable) {
	t.Helper()
	net := netmodel.New()
	ids := []netmodel.HostID{"entry", "m1", "m2", "target"}
	for _, id := range ids {
		h := &netmodel.Host{
			ID:       id,
			Services: []netmodel.ServiceID{"os"},
			Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"A", "B"}},
		}
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := net.AddLink(ids[i], ids[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	a := netmodel.NewAssignment()
	products := []netmodel.ProductID{"A", "B", "A", "B"}
	for i, id := range ids {
		a.Set(id, "os", products[i])
	}
	sim := vulnsim.NewSimilarityTable([]string{"A", "B"})
	_ = sim.SetTotal("A", 10)
	_ = sim.SetTotal("B", 10)
	_ = sim.Set("A", "B", crossSim, int(crossSim*10))
	return net, a, sim
}

func TestNewValidation(t *testing.T) {
	net, a, sim := lineSetup(t, 0.5)
	if _, err := New(nil, a, sim); err == nil {
		t.Error("nil network should be rejected")
	}
	if _, err := New(net, nil, sim); err == nil {
		t.Error("nil assignment should be rejected")
	}
	if _, err := New(net, a, nil); err == nil {
		t.Error("nil similarity should be rejected")
	}
	incomplete := netmodel.NewAssignment()
	if _, err := New(net, incomplete, sim); err == nil {
		t.Error("incomplete assignment should be rejected")
	}
}

func TestRunValidation(t *testing.T) {
	net, a, sim := lineSetup(t, 0.5)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Config{Entry: "missing", Target: "target"}); err == nil {
		t.Error("unknown entry should be rejected")
	}
	if _, err := s.Run(Config{Entry: "entry", Target: "missing"}); err == nil {
		t.Error("unknown target should be rejected")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, Config{Entry: "entry", Target: "target"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context should surface, got %v", err)
	}
}

func TestHomogeneousIsFasterThanDiverse(t *testing.T) {
	net, diverse, sim := lineSetup(t, 0.2)
	mono := netmodel.NewAssignment()
	for _, id := range net.Hosts() {
		mono.Set(id, "os", "A")
	}
	cfg := Config{Entry: "entry", Target: "target", Runs: 400, MaxTicks: 300, PAvg: 0.2, Seed: 1}

	sDiverse, err := New(net, diverse, sim)
	if err != nil {
		t.Fatal(err)
	}
	resDiverse, err := sDiverse.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sMono, err := New(net, mono, sim)
	if err != nil {
		t.Fatal(err)
	}
	resMono, err := sMono.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resMono.MTTC >= resDiverse.MTTC {
		t.Errorf("mono MTTC %v should be below diverse MTTC %v", resMono.MTTC, resDiverse.MTTC)
	}
	if resMono.SuccessRate < 0.99 {
		t.Errorf("homogeneous chain should always be compromised, success rate %v", resMono.SuccessRate)
	}
	// With identical products every step succeeds with probability 1, so the
	// 3-hop chain takes exactly 3 ticks.
	if resMono.MTTC != 3 {
		t.Errorf("mono MTTC = %v, want exactly 3", resMono.MTTC)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	net, a, sim := lineSetup(t, 0.5)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Entry: "entry", Target: "target", Runs: 100, Seed: 42}
	r1, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MTTC != r2.MTTC || r1.SuccessRate != r2.SuccessRate {
		t.Errorf("same seed should reproduce results: %+v vs %+v", r1, r2)
	}
}

func TestEntryEqualsTarget(t *testing.T) {
	net, a, sim := lineSetup(t, 0.5)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(Config{Entry: "entry", Target: "entry", Runs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.MTTC != 0 || res.SuccessRate != 1 {
		t.Errorf("entry == target should be compromised at tick 0: %+v", res)
	}
}

func TestUnreachableTarget(t *testing.T) {
	// Zero similarity and zero base rate make progress impossible.
	net, a, sim := lineSetup(t, 0)
	s, err := New(net, a, sim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(Config{Entry: "entry", Target: "target", Runs: 20, MaxTicks: 100, PAvg: 1e-9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate > 0.2 {
		t.Errorf("practically unreachable target compromised too often: %v", res.SuccessRate)
	}
	if res.MTTC < 50 {
		t.Errorf("MTTC should be close to MaxTicks for unreachable targets, got %v", res.MTTC)
	}
}

func TestStrategies(t *testing.T) {
	if Reconnaissance.String() != "reconnaissance" || UniformChoice.String() != "uniform" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should still render")
	}
	// Reconnaissance should compromise at least as fast as uniform choice on
	// the case study (it always picks the best exploit).
	net, err := casestudy.Build()
	if err != nil {
		t.Fatal(err)
	}
	mono, err := baseline.Mono(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(net, mono, casestudy.Similarity())
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Entry: "c4", Target: "t5", Runs: 150, MaxTicks: 300, Seed: 3}
	recon := base
	recon.Strategy = Reconnaissance
	uniform := base
	uniform.Strategy = UniformChoice
	rRecon, err := s.Run(recon)
	if err != nil {
		t.Fatal(err)
	}
	rUniform, err := s.Run(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if rRecon.MTTC > rUniform.MTTC+1 {
		t.Errorf("reconnaissance MTTC %v should not exceed uniform %v", rRecon.MTTC, rUniform.MTTC)
	}
}

func TestResultString(t *testing.T) {
	r := Result{MTTC: 4.2, MedianTTC: 4, P90TTC: 6, SuccessRate: 1, MeanInfected: 8, Runs: 10}
	if r.String() == "" {
		t.Error("Result.String should render")
	}
}

package attacksim

import (
	"fmt"

	"netdiversity/internal/netmodel"
)

// Estimate computes an analytic approximation of the MTTC without running
// Monte-Carlo simulations, using a discrete-time mean-field model: for every
// host h, q_h(t) is the probability that h is compromised by tick t, updated
// as
//
//	q_v(t+1) = 1 - (1 - q_v(t)) · Π_{u ~ v} (1 - q_u(t) · p(u→v))
//
// where p(u→v) is the same per-edge success probability the simulator uses.
// The expected time to compromise the target is then Σ_t (1 - q_target(t)),
// truncated at MaxTicks.  The independence assumption makes the estimate
// slightly optimistic for the attacker (it ignores correlations between
// infection events), but it is orders of magnitude faster than simulation and
// preserves the ordering between assignments; the tests compare it against
// the simulator.
type Estimate struct {
	// MTTC is the estimated mean time to compromise (ticks).
	MTTC float64
	// PCompromise is the probability that the target is compromised within
	// MaxTicks.
	PCompromise float64
	// Ticks is the horizon used.
	Ticks int
}

// EstimateMTTC computes the mean-field MTTC estimate for the configuration.
// Runs and Seed are ignored; only the propagation model matters.
func (s *Simulator) EstimateMTTC(cfg Config) (Estimate, error) {
	cfg = cfg.withDefaults()
	if _, ok := s.net.Host(cfg.Entry); !ok {
		return Estimate{}, fmt.Errorf("attacksim: unknown entry host %q", cfg.Entry)
	}
	if _, ok := s.net.Host(cfg.Target); !ok {
		return Estimate{}, fmt.Errorf("attacksim: unknown target host %q", cfg.Target)
	}
	s.prepare(cfg)

	hosts := s.net.Hosts()
	index := make(map[netmodel.HostID]int, len(hosts))
	for i, h := range hosts {
		index[h] = i
	}
	q := make([]float64, len(hosts))
	next := make([]float64, len(hosts))
	q[index[cfg.Entry]] = 1

	if cfg.Entry == cfg.Target {
		return Estimate{MTTC: 0, PCompromise: 1, Ticks: 0}, nil
	}
	targetIdx := index[cfg.Target]
	// E[T] = Σ_{t≥0} P(T > t); the t = 0 term is 1 because the target is not
	// the entry host.
	expected := 1.0
	for tick := 1; tick <= cfg.MaxTicks; tick++ {
		for vi, v := range hosts {
			survive := 1 - q[vi]
			if survive <= 0 {
				next[vi] = 1
				continue
			}
			escape := 1.0
			for _, u := range s.net.Neighbors(v) {
				p := s.probs[[2]netmodel.HostID{u, v}]
				if p <= 0 {
					continue
				}
				escape *= 1 - q[index[u]]*p
			}
			next[vi] = 1 - survive*escape
		}
		q, next = next, q
		expected += 1 - q[targetIdx]
		if q[targetIdx] > 1-1e-9 {
			return Estimate{MTTC: expected, PCompromise: q[targetIdx], Ticks: tick}, nil
		}
	}
	return Estimate{MTTC: expected, PCompromise: q[targetIdx], Ticks: cfg.MaxTicks}, nil
}

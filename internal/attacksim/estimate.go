package attacksim

// Estimate computes an analytic approximation of the MTTC without running
// Monte-Carlo simulations, using a discrete-time mean-field model: for every
// host h, q_h(t) is the probability that h is compromised by tick t, updated
// as
//
//	q_v(t+1) = 1 - (1 - q_v(t)) · Π_{u ~ v} (1 - q_u(t) · p(u→v))
//
// where p(u→v) is the same per-arc success probability the compiled
// simulator uses.  The expected time to compromise the target is then
// Σ_t (1 - q_target(t)), truncated at MaxTicks.  The independence assumption
// makes the estimate slightly optimistic for the attacker (it ignores
// correlations between infection events), but it is orders of magnitude
// faster than simulation and preserves the ordering between assignments; the
// tests compare it against the simulator.
type Estimate struct {
	// MTTC is the estimated mean time to compromise (ticks).
	MTTC float64
	// PCompromise is the probability that the target is compromised within
	// MaxTicks.
	PCompromise float64
	// Ticks is the horizon used.
	Ticks int
}

// EstimateMTTC computes the mean-field MTTC estimate for the configuration.
// Runs and Seed are ignored; only the propagation model matters.  The
// fixed-point iteration runs over the campaign's CSR arcs, so it shares the
// compiled probability model with the Monte-Carlo engines.
func (s *Simulator) EstimateMTTC(cfg Config) (Estimate, error) {
	cfg = cfg.withDefaults()
	c, err := s.Compile(cfg)
	if err != nil {
		return Estimate{}, err
	}
	return c.EstimateMTTC()
}

// EstimateMTTC is the mean-field estimate over an already-compiled campaign.
func (c *Campaign) EstimateMTTC() (Estimate, error) {
	if c.entry == c.target {
		return Estimate{MTTC: 0, PCompromise: 1, Ticks: 0}, nil
	}
	n := len(c.hosts)
	q := make([]float64, n)
	next := make([]float64, n)
	escape := make([]float64, n)
	q[c.entry] = 1

	// E[T] = Σ_{t≥0} P(T > t); the t = 0 term is 1 because the target is not
	// the entry host.
	expected := 1.0
	for tick := 1; tick <= c.maxTicks; tick++ {
		for i := range escape {
			escape[i] = 1
		}
		for u := 0; u < n; u++ {
			qu := q[u]
			if qu <= 0 {
				continue
			}
			for ai := c.rowStart[u]; ai < c.rowStart[u+1]; ai++ {
				p := c.arcProb[ai]
				if p <= 0 {
					continue
				}
				v := c.arcDst[ai]
				escape[v] *= 1 - qu*p
			}
		}
		for v := 0; v < n; v++ {
			survive := 1 - q[v]
			if survive <= 0 {
				next[v] = 1
				continue
			}
			next[v] = 1 - survive*escape[v]
		}
		q, next = next, q
		expected += 1 - q[c.target]
		if q[c.target] > 1-1e-9 {
			return Estimate{MTTC: expected, PCompromise: q[c.target], Ticks: tick}, nil
		}
	}
	return Estimate{MTTC: expected, PCompromise: q[c.target], Ticks: c.maxTicks}, nil
}

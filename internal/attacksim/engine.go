package attacksim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"netdiversity/internal/fastrand"
	"netdiversity/internal/metrics"
)

// Mode selects the execution engine of a compiled campaign.
type Mode int

const (
	// ModeTick is the synchronous tick loop: every compromised host attempts
	// every uncompromised neighbour once per tick.  It reproduces the legacy
	// simulator run-for-run at the same seed (the golden tests pin this) and
	// costs O(compromised-arcs) per tick.
	ModeTick Mode = iota
	// ModeEvent samples Geometric(p) ticks-to-success per arc and propagates
	// with a Dijkstra-style priority queue.  The SI tick process with
	// independent per-arc Bernoulli attempts is distributionally identical to
	// shortest paths under independent geometric arc weights (the attempts
	// are memoryless), so event mode matches tick mode statistically while
	// its cost is O(arcs·log hosts) per run — independent of MaxTicks, which
	// makes it the fast path for high-MTTC (well-diversified) cells.
	ModeEvent
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeTick:
		return "tick"
	case ModeEvent:
		return "event"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// stallWindow is the number of consecutive empty-frontier ticks tolerated
// before the tick loop scans whether any progress is still possible (the
// legacy simulator's early-out; results are unchanged because dead arcs
// consume no randomness).
const stallWindow = 50

// Scratch is the per-worker workspace of a campaign: bitsets, frontier
// slices, the event queue and the run RNG.  A Scratch is reused across runs
// without allocating; it must not be shared between concurrent runs.
type Scratch struct {
	comp     []uint64 // compromised-at-tick-start bitset
	pend     []uint64 // marked-newly-compromised-this-tick bitset
	infected []int32  // compromised hosts in infection order
	newly    []int32  // hosts compromised in the current tick

	dist []int32  // event mode: best known compromise tick per host
	heap []uint64 // event mode: min-heap of time<<32|host

	rng fastrand.RNG
}

// NewScratch allocates a workspace sized for the campaign.
func (c *Campaign) NewScratch() *Scratch {
	n := len(c.hosts)
	words := (n + 63) / 64
	return &Scratch{
		comp:     make([]uint64, words),
		pend:     make([]uint64, words),
		infected: make([]int32, 0, n),
		newly:    make([]int32, 0, n),
		dist:     make([]int32, n),
		// Every relaxation pushes at most once, plus the entry push.
		heap: make([]uint64, 0, len(c.arcDst)+1),
	}
}

// RunOutcome is the result of one simulation run.
type RunOutcome struct {
	// Ticks is the tick at which the target was compromised (MaxTicks when
	// it never was).
	Ticks int
	// Infected is the number of compromised hosts at the end of the run,
	// including the entry host.
	Infected int
	// Reached reports whether the target was compromised within MaxTicks.
	Reached bool
}

// newRunRNG builds the RNG of one run.  Seeds are derived splitmix-style
// from the campaign seed and the run index, so any worker can execute any
// run and the campaign result is independent of scheduling.
func newRunRNG(seed int64, run int) fastrand.RNG {
	return fastrand.New(fastrand.SplitmixAt(uint64(seed), uint64(run)))
}

// seedRun positions the scratch RNG for one run.
func (c *Campaign) seedRun(sc *Scratch, run int) {
	sc.rng = newRunRNG(c.seed, run)
}

// RunTick executes run `run` with the synchronous tick engine.  The steady
// state allocates nothing: all state lives in the scratch.
func (c *Campaign) RunTick(run int, sc *Scratch) RunOutcome {
	c.seedRun(sc, run)
	for i := range sc.comp {
		sc.comp[i] = 0
		sc.pend[i] = 0
	}
	sc.infected = append(sc.infected[:0], c.entry)
	sc.comp[c.entry>>6] |= 1 << (uint(c.entry) & 63)
	if c.entry == c.target {
		return RunOutcome{Ticks: 0, Infected: 1, Reached: true}
	}
	frontierStable := 0
	for tick := 1; tick <= c.maxTicks; tick++ {
		sc.newly = sc.newly[:0]
		for _, u := range sc.infected {
			for ai := c.rowStart[u]; ai < c.rowStart[u+1]; ai++ {
				v := c.arcDst[ai]
				if sc.comp[v>>6]&(1<<(uint(v)&63)) != 0 {
					continue
				}
				p := c.arcProb[ai]
				if p <= 0 {
					continue
				}
				if sc.rng.Float64() < p {
					if sc.pend[v>>6]&(1<<(uint(v)&63)) == 0 {
						sc.pend[v>>6] |= 1 << (uint(v) & 63)
						sc.newly = append(sc.newly, v)
					}
				}
			}
		}
		if len(sc.newly) == 0 {
			frontierStable++
		} else {
			frontierStable = 0
		}
		for _, v := range sc.newly {
			sc.comp[v>>6] |= 1 << (uint(v) & 63)
			sc.pend[v>>6] &^= 1 << (uint(v) & 63)
			sc.infected = append(sc.infected, v)
		}
		if sc.comp[c.target>>6]&(1<<(uint(c.target)&63)) != 0 {
			return RunOutcome{Ticks: tick, Infected: len(sc.infected), Reached: true}
		}
		// A long-stable frontier with no live arc can never progress; time
		// still "passes" for MTTC, but no randomness would be consumed, so
		// skipping straight to MaxTicks changes nothing.
		if frontierStable > stallWindow && !c.progressPossible(sc) {
			break
		}
	}
	return RunOutcome{Ticks: c.maxTicks, Infected: len(sc.infected), Reached: false}
}

// progressPossible reports whether any compromised host has a live arc to an
// uncompromised one.
func (c *Campaign) progressPossible(sc *Scratch) bool {
	for _, u := range sc.infected {
		for ai := c.rowStart[u]; ai < c.rowStart[u+1]; ai++ {
			v := c.arcDst[ai]
			if sc.comp[v>>6]&(1<<(uint(v)&63)) == 0 && c.arcProb[ai] > 0 {
				return true
			}
		}
	}
	return false
}

// unreachedTick marks a host the event engine has not reached.
const unreachedTick = math.MaxInt32

// RunEvent executes run `run` with the event-driven engine: per-arc
// Geometric(p) ticks-to-success samples propagated by Dijkstra.
func (c *Campaign) RunEvent(run int, sc *Scratch) RunOutcome {
	c.seedRun(sc, run)
	if c.entry == c.target {
		return RunOutcome{Ticks: 0, Infected: 1, Reached: true}
	}
	for i := range sc.dist {
		sc.dist[i] = unreachedTick
	}
	sc.heap = sc.heap[:0]
	sc.dist[c.entry] = 0
	sc.heap = heapPush(sc.heap, uint64(c.entry))

	limit := int32(c.maxTicks)
	targetTime := int32(-1)
	infected := 0
	for len(sc.heap) > 0 {
		var top uint64
		top, sc.heap = heapPop(sc.heap)
		t := int32(top >> 32)
		u := int32(top & 0xffffffff)
		if t > sc.dist[u] {
			continue // stale queue entry
		}
		if t > limit {
			break
		}
		infected++
		if u == c.target {
			// Keep draining equal-time entries: in tick semantics every host
			// compromised in the target's final tick counts as infected.
			targetTime = t
			limit = t
			continue
		}
		for ai := c.rowStart[u]; ai < c.rowStart[u+1]; ai++ {
			v := c.arcDst[ai]
			p := c.arcProb[ai]
			if p <= 0 || sc.dist[v] <= t+1 {
				continue // dead arc, or no sample could improve on dist[v]
			}
			g := geometricTicks(&sc.rng, p, c.maxTicks)
			nt := t + g
			if nt > int32(c.maxTicks) {
				continue // beyond the horizon: can never count nor relay in time
			}
			if nt < sc.dist[v] {
				sc.dist[v] = nt
				sc.heap = heapPush(sc.heap, uint64(nt)<<32|uint64(v))
			}
		}
	}
	if targetTime >= 0 {
		return RunOutcome{Ticks: int(targetTime), Infected: infected, Reached: true}
	}
	return RunOutcome{Ticks: c.maxTicks, Infected: infected, Reached: false}
}

// geometricTicks samples the number of per-tick Bernoulli(p) attempts until
// the first success (support {1, 2, ...}) by inversion, clamped to horizon+1
// ticks (any larger value is equivalent for a horizon-bounded run).
func geometricTicks(rng *fastrand.RNG, p float64, horizon int) int32 {
	u := rng.Float64()
	if p >= 1 {
		return 1
	}
	// G = floor(ln(1-u) / ln(1-p)) + 1, with u uniform in [0,1).
	g := math.Log1p(-u) / math.Log1p(-p)
	if g > float64(horizon) {
		return int32(horizon) + 1
	}
	return int32(g) + 1
}

// heapPush inserts into the min-heap of time<<32|host keys.
func heapPush(h []uint64, x uint64) []uint64 {
	h = append(h, x)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// heapPop removes the minimum key.
func heapPop(h []uint64) (uint64, []uint64) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l] < h[smallest] {
			smallest = l
		}
		if r < len(h) && h[r] < h[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top, h
}

// BatchOptions tunes campaign execution.
type BatchOptions struct {
	// Mode selects the engine.  Default ModeTick.
	Mode Mode
	// Workers bounds the worker pool; values <= 1 run the batch inline.
	// Runs are distributed by a static stride (worker w executes runs w,
	// w+W, ...), so every aggregate statistic except the floating-point
	// rounding of StdTTC is identical for every worker count.
	Workers int
}

// batchStats accumulates one worker's share of a campaign.  Tick counts and
// infected totals are integers (exact, order-independent); the TTC spread is
// tracked with a Welford accumulator and merged pairwise.
type batchStats struct {
	hist          []uint32
	ttc           metrics.Welford
	totalTicks    uint64
	totalInfected uint64
	successes     int
	err           error
}

func (c *Campaign) runBatchWorker(ctx context.Context, mode Mode, first, stride int, st *batchStats) {
	sc := c.NewScratch()
	for run := first; run < c.runs; run += stride {
		if run%64 == first%64 {
			if err := ctx.Err(); err != nil {
				st.err = err
				return
			}
		}
		var out RunOutcome
		if mode == ModeEvent {
			out = c.RunEvent(run, sc)
		} else {
			out = c.RunTick(run, sc)
		}
		st.hist[out.Ticks]++
		st.ttc.Add(float64(out.Ticks))
		st.totalTicks += uint64(out.Ticks)
		st.totalInfected += uint64(out.Infected)
		if out.Reached {
			st.successes++
		}
	}
}

// RunBatch executes the campaign's runs across a bounded worker pool and
// merges the per-worker statistics.  Cancellation is checked between runs;
// on cancellation the batch returns the context error.
func (c *Campaign) RunBatch(ctx context.Context, opts BatchOptions) (Result, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > c.runs {
		workers = c.runs
	}
	stats := make([]batchStats, workers)
	for w := range stats {
		stats[w].hist = make([]uint32, c.maxTicks+1)
	}
	if workers == 1 {
		c.runBatchWorker(ctx, opts.Mode, 0, 1, &stats[0])
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c.runBatchWorker(ctx, opts.Mode, w, workers, &stats[w])
			}(w)
		}
		wg.Wait()
	}
	merged := stats[0]
	for w := 1; w < workers; w++ {
		o := &stats[w]
		if o.err != nil && merged.err == nil {
			merged.err = o.err
		}
		for t, n := range o.hist {
			merged.hist[t] += n
		}
		merged.ttc.Merge(o.ttc)
		merged.totalTicks += o.totalTicks
		merged.totalInfected += o.totalInfected
		merged.successes += o.successes
	}
	if merged.err != nil {
		return Result{}, merged.err
	}
	n := float64(c.runs)
	return Result{
		Runs:         c.runs,
		MTTC:         float64(merged.totalTicks) / n,
		MedianTTC:    histPercentile(merged.hist, c.runs, 0.5),
		P90TTC:       histPercentile(merged.hist, c.runs, 0.9),
		StdTTC:       merged.ttc.StdDev(),
		SuccessRate:  float64(merged.successes) / n,
		MeanInfected: float64(merged.totalInfected) / n,
	}, nil
}

// histPercentile reproduces the legacy percentile rule — the element at
// index int(q·(n-1)) of the sorted tick list — from a tick histogram.
func histPercentile(hist []uint32, n int, q float64) float64 {
	if n == 0 {
		return 0
	}
	idx := uint64(q * float64(n-1))
	var cum uint64
	for t, count := range hist {
		cum += uint64(count)
		if cum > idx {
			return float64(t)
		}
	}
	return float64(len(hist) - 1)
}

// Package fastrand provides the small, allocation-free pseudo-random
// generators shared by the simulation hot paths: splitmix64 for seed
// derivation (one 64-bit state word, arbitrary stream position in O(1)) and
// xoshiro256++ for bulk variate generation.  Both are well-studied public
// domain generators (Blackman & Vigna); neither is cryptographic.
//
// The package exists because math/rand's Source is too expensive to create
// per simulation run (a 607-word lagged-Fibonacci table) and too slow to
// drive millions of Bernoulli draws per campaign.  An RNG here is a plain
// value: embed it in a per-worker scratch struct and (re)seed it per run
// without allocating.
package fastrand

import "math/bits"

// golden is the splitmix64 increment (2^64 / φ, the golden-ratio constant).
const golden = 0x9e3779b97f4a7c15

// Splitmix64 advances the state by one step and returns the next output of
// the splitmix64 stream.
func Splitmix64(state *uint64) uint64 {
	*state += golden
	return mix(*state)
}

// SplitmixAt returns element i of the splitmix64 stream seeded with seed,
// without materialising the stream.  It is the seed-derivation helper for
// batched simulation: run i of a campaign with seed s uses SplitmixAt(s, i),
// so any worker can compute any run's seed independently and the campaign
// result does not depend on how runs are distributed over workers.
func SplitmixAt(seed uint64, i uint64) uint64 {
	return mix(seed + (i+1)*golden)
}

// mix is the splitmix64 output function: a bijective avalanche over one word.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256++ generator.  The zero value is invalid (an all-zero
// state is a fixed point); call Seed before use.  RNG is a value type so it
// can live inside per-worker scratch without a heap allocation; it is not
// safe for concurrent use.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns an RNG seeded with Seed(seed).
func New(seed uint64) RNG {
	var r RNG
	r.Seed(seed)
	return r
}

// Seed (re)initialises the state from one word by expanding it through
// splitmix64, the seeding procedure recommended by the xoshiro authors (it
// guarantees a non-zero state for every seed).
func (r *RNG) Seed(seed uint64) {
	r.s0 = Splitmix64(&seed)
	r.s1 = Splitmix64(&seed)
	r.s2 = Splitmix64(&seed)
	r.s3 = Splitmix64(&seed)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits, the same
// construction math/rand uses for its fast path.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n).  It panics if n <= 0.  The bound is
// applied with Lemire's multiply-shift rejection method: one multiplication
// in the common case, no division.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("fastrand: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		// Reject the biased fringe: threshold = 2^64 mod n.
		threshold := -un % un
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

package fastrand

import (
	"math"
	"math/rand"
	"testing"
)

func TestSplitmixAtMatchesStream(t *testing.T) {
	const seed = 12345
	state := uint64(seed)
	for i := uint64(0); i < 100; i++ {
		want := Splitmix64(&state)
		if got := SplitmixAt(seed, i); got != want {
			t.Fatalf("SplitmixAt(%d, %d) = %x, stream yields %x", seed, i, got, want)
		}
	}
}

func TestSeedDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should produce the same stream")
		}
	}
	c := New(8)
	same := 0
	a = New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds should diverge, %d/1000 outputs collided", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	if r.s0 == 0 && r.s1 == 0 && r.s2 == 0 && r.s3 == 0 {
		t.Fatal("seeding with 0 must not produce the all-zero fixed point")
	}
	if x, y := r.Uint64(), r.Uint64(); x == 0 && y == 0 {
		t.Error("zero-seeded generator looks stuck")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(42)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 7, 140000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d has %d draws, want ~%.0f", b, c, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func BenchmarkXoshiroFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkMathRandFloat64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkXoshiroIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(4)
	}
	_ = sink
}

func BenchmarkMathRandIntn(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(4)
	}
	_ = sink
}

func BenchmarkSeed(b *testing.B) {
	var r RNG
	for i := 0; i < b.N; i++ {
		r.Seed(uint64(i))
	}
	_ = r
}

func BenchmarkMathRandNewSource(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += rand.New(rand.NewSource(int64(i))).Int63()
	}
	_ = sink
}

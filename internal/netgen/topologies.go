package netgen

import (
	"fmt"
	"math/rand"

	"netdiversity/internal/netmodel"
)

// Topology selects the random-graph family used by Generate.  The paper's
// scalability study uses degree-targeted random graphs (TopologyUniform); the
// malware-propagation literature additionally studies scale-free and
// small-world topologies, which concentrate or localise connectivity and
// therefore stress the optimiser differently.
type Topology int

const (
	// TopologyUniform is the degree-targeted uniform random graph used by
	// Tables VII-IX (the behaviour of Random).
	TopologyUniform Topology = iota + 1
	// TopologyScaleFree is a Barabási–Albert preferential-attachment graph:
	// a few hub hosts with very high degree, as in flat enterprise networks.
	TopologyScaleFree
	// TopologySmallWorld is a Watts–Strogatz ring with rewired chords:
	// high clustering with short path lengths, as in segmented plants with a
	// few cross-zone conduits.
	TopologySmallWorld
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case TopologyUniform:
		return "uniform"
	case TopologyScaleFree:
		return "scale-free"
	case TopologySmallWorld:
		return "small-world"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// Generate builds a random network with the requested topology; the host,
// service and product layout follows cfg exactly as in Random.
func Generate(cfg RandomConfig, topology Topology) (*netmodel.Network, error) {
	switch topology {
	case TopologyUniform, 0:
		return Random(cfg)
	case TopologyScaleFree:
		return scaleFree(cfg)
	case TopologySmallWorld:
		return smallWorld(cfg)
	default:
		return nil, fmt.Errorf("netgen: unknown topology %v", topology)
	}
}

// emptyHosts creates the hosts (no links) for a random config and returns the
// network plus the host ID list.
func emptyHosts(cfg RandomConfig) (*netmodel.Network, []netmodel.HostID, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	n := netmodel.New()
	services := make([]netmodel.ServiceID, cfg.Services)
	choices := make(map[netmodel.ServiceID][]netmodel.ProductID, cfg.Services)
	for s := 0; s < cfg.Services; s++ {
		services[s] = ServiceName(s)
		ps := make([]netmodel.ProductID, cfg.ProductsPerService)
		for p := 0; p < cfg.ProductsPerService; p++ {
			ps[p] = ProductName(s, p)
		}
		choices[services[s]] = ps
	}
	hosts := make([]netmodel.HostID, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		hosts[i] = netmodel.HostID(fmt.Sprintf("h%d", i))
		h := &netmodel.Host{ID: hosts[i], Zone: "synthetic", Services: services, Choices: choices}
		if err := n.AddHost(h); err != nil {
			return nil, nil, err
		}
	}
	return n, hosts, nil
}

// scaleFree implements Barabási–Albert preferential attachment with
// m = Degree/2 edges per new node (minimum 1).
func scaleFree(cfg RandomConfig) (*netmodel.Network, error) {
	n, hosts, err := emptyHosts(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := cfg.Degree / 2
	if m < 1 {
		m = 1
	}
	if m >= len(hosts) {
		m = len(hosts) - 1
	}
	// Seed clique of m+1 hosts.
	var targets []netmodel.HostID // repeated by degree (attachment weights)
	for i := 0; i <= m; i++ {
		for j := 0; j < i; j++ {
			if err := n.AddLink(hosts[i], hosts[j]); err != nil {
				return nil, err
			}
			targets = append(targets, hosts[i], hosts[j])
		}
	}
	for i := m + 1; i < len(hosts); i++ {
		chosen := make(map[netmodel.HostID]bool, m)
		for len(chosen) < m {
			var pick netmodel.HostID
			if len(targets) == 0 {
				pick = hosts[rng.Intn(i)]
			} else {
				pick = targets[rng.Intn(len(targets))]
			}
			if pick == hosts[i] || chosen[pick] {
				continue
			}
			chosen[pick] = true
		}
		for target := range chosen {
			if err := n.AddLink(hosts[i], target); err != nil {
				return nil, err
			}
			targets = append(targets, hosts[i], target)
		}
	}
	return n, nil
}

// smallWorld implements Watts–Strogatz: a ring lattice where every host is
// connected to its Degree/2 nearest neighbours on each side, with 10% of the
// edges rewired to random endpoints.
func smallWorld(cfg RandomConfig) (*netmodel.Network, error) {
	n, hosts, err := emptyHosts(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.Degree / 2
	if k < 1 {
		k = 1
	}
	const rewireProbability = 0.1
	total := len(hosts)
	for i := 0; i < total; i++ {
		for j := 1; j <= k; j++ {
			target := hosts[(i+j)%total]
			if rng.Float64() < rewireProbability {
				// Rewire to a random non-self endpoint.
				for tries := 0; tries < 10; tries++ {
					cand := hosts[rng.Intn(total)]
					if cand != hosts[i] {
						target = cand
						break
					}
				}
			}
			if target == hosts[i] {
				continue
			}
			if err := n.AddLink(hosts[i], target); err != nil {
				return nil, err
			}
		}
	}
	// Guarantee connectivity with a spanning chain (rewiring can in rare
	// cases disconnect small graphs).
	for i := 1; i < total; i++ {
		if err := n.AddLink(hosts[i-1], hosts[i]); err != nil {
			return nil, err
		}
	}
	return n, nil
}

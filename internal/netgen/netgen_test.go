package netgen

import (
	"testing"
)

func TestRandomNetworkBasics(t *testing.T) {
	cfg := RandomConfig{Hosts: 100, Degree: 6, Services: 3, ProductsPerService: 4, Seed: 1}
	net, err := Random(cfg)
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	if net.NumHosts() != 100 {
		t.Fatalf("hosts = %d, want 100", net.NumHosts())
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Connectivity: the spanning chain guarantees a single component.
	if comps := net.ConnectedComponents(); len(comps) != 1 {
		t.Errorf("network has %d components, want 1", len(comps))
	}
	// Edge count close to hosts*degree/2 (never below the spanning chain).
	target := cfg.Hosts * cfg.Degree / 2
	if net.NumLinks() < cfg.Hosts-1 || net.NumLinks() > target {
		t.Errorf("links = %d, want between %d and %d", net.NumLinks(), cfg.Hosts-1, target)
	}
	// Every host provides every service with the right number of candidates.
	for _, hid := range net.Hosts() {
		h, _ := net.Host(hid)
		if len(h.Services) != cfg.Services {
			t.Fatalf("host %s has %d services, want %d", hid, len(h.Services), cfg.Services)
		}
		for _, s := range h.Services {
			if len(h.Choices[s]) != cfg.ProductsPerService {
				t.Fatalf("host %s service %s has %d candidates", hid, s, len(h.Choices[s]))
			}
		}
	}
}

func TestRandomNetworkDeterminism(t *testing.T) {
	cfg := RandomConfig{Hosts: 50, Degree: 4, Services: 2, Seed: 7}
	a, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Errorf("same seed produced different link counts: %d vs %d", a.NumLinks(), b.NumLinks())
	}
	la, lb := a.Links(), b.Links()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs: %v vs %v", i, la[i], lb[i])
		}
	}
}

func TestRandomNetworkErrors(t *testing.T) {
	if _, err := Random(RandomConfig{Hosts: 1}); err == nil {
		t.Error("single-host network should be rejected")
	}
	if _, err := Random(RandomConfig{Hosts: 0}); err == nil {
		t.Error("empty network should be rejected")
	}
}

func TestSyntheticSimilarity(t *testing.T) {
	cfg := RandomConfig{Hosts: 10, Degree: 4, Services: 3, ProductsPerService: 4, Seed: 5}
	table := SyntheticSimilarity(cfg, 0.6)
	if err := table.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(table.Products()); got != 12 {
		t.Fatalf("products = %d, want 12", got)
	}
	sameService := table.Sim(string(ProductName(0, 0)), string(ProductName(0, 1)))
	if sameService <= 0 || sameService > 0.6 {
		t.Errorf("same-service similarity %v outside (0, 0.6]", sameService)
	}
	crossService := table.Sim(string(ProductName(0, 0)), string(ProductName(1, 0)))
	if crossService != 0 {
		t.Errorf("cross-service similarity should be 0, got %v", crossService)
	}
	// Determinism.
	again := SyntheticSimilarity(cfg, 0.6)
	if again.Sim(string(ProductName(0, 0)), string(ProductName(0, 1))) != sameService {
		t.Error("synthetic similarity should be deterministic for a fixed seed")
	}
}

func TestZoned(t *testing.T) {
	cfg := ZonedConfig{
		Zones: []ZoneSpec{
			{Name: "corporate", Hosts: 5},
			{Name: "dmz", Hosts: 3},
			{Name: "control", Hosts: 4, Legacy: true},
		},
		BridgeLinks: 2,
		Seed:        3,
	}
	net, err := Zoned(cfg)
	if err != nil {
		t.Fatalf("Zoned: %v", err)
	}
	if net.NumHosts() != 12 {
		t.Fatalf("hosts = %d, want 12", net.NumHosts())
	}
	if comps := net.ConnectedComponents(); len(comps) != 1 {
		t.Errorf("zoned network should be connected, got %d components", len(comps))
	}
	legacy := 0
	for _, hid := range net.Hosts() {
		h, _ := net.Host(hid)
		if h.Zone == "control" && !h.Legacy {
			t.Errorf("control host %s should be legacy", hid)
		}
		if h.Legacy {
			legacy++
		}
	}
	if legacy != 4 {
		t.Errorf("legacy hosts = %d, want 4", legacy)
	}
}

func TestZonedErrors(t *testing.T) {
	if _, err := Zoned(ZonedConfig{}); err == nil {
		t.Error("zoned config without zones should fail")
	}
	if _, err := Zoned(ZonedConfig{Zones: []ZoneSpec{{Name: "x", Hosts: 0}}}); err == nil {
		t.Error("zone without hosts should fail")
	}
}

func TestDegreeHistogram(t *testing.T) {
	net, err := Random(RandomConfig{Hosts: 30, Degree: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hist := DegreeHistogram(net)
	total := 0
	for _, entry := range hist {
		total += entry[1]
	}
	if total != 30 {
		t.Errorf("histogram covers %d hosts, want 30", total)
	}
}

// Package netgen generates synthetic networks for the scalability
// experiments (Tables VII-IX of the paper) and zoned ICS-style topologies
// for integration tests.
//
// The paper's scalability study uses randomly generated networks
// parameterised by the number of hosts, the average degree and the number of
// services per host; every service has a fixed number of candidate products.
package netgen

import (
	"fmt"
	"math/rand"
	"sort"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// RandomConfig parameterises a random network in the same terms as the
// paper's Tables VII-IX.
type RandomConfig struct {
	// Hosts is the number of hosts |H|.
	Hosts int
	// Degree is the target average degree; the generator creates
	// Hosts*Degree/2 distinct random edges (plus a spanning chain so that
	// the network is connected).
	Degree int
	// Services is the number of services per host.
	Services int
	// ProductsPerService is the number of candidate products per service.
	// Default 4 (the case study's largest per-service catalogue).
	ProductsPerService int
	// Seed makes generation deterministic.
	Seed int64
}

func (c RandomConfig) withDefaults() (RandomConfig, error) {
	if c.Hosts <= 1 {
		return c, fmt.Errorf("netgen: need at least 2 hosts, got %d", c.Hosts)
	}
	if c.Degree <= 0 {
		c.Degree = 4
	}
	if c.Services <= 0 {
		c.Services = 3
	}
	if c.ProductsPerService <= 0 {
		c.ProductsPerService = 4
	}
	return c, nil
}

// ServiceName returns the synthetic service identifier for index i.
func ServiceName(i int) netmodel.ServiceID {
	return netmodel.ServiceID(fmt.Sprintf("s%d", i+1))
}

// ProductName returns the synthetic product identifier for service i,
// product j.
func ProductName(service, product int) netmodel.ProductID {
	return netmodel.ProductID(fmt.Sprintf("s%d_p%d", service+1, product+1))
}

// Random generates a connected random network according to the config.
// Every host provides all Services services and may choose among
// ProductsPerService synthetic products per service.
func Random(cfg RandomConfig) (*netmodel.Network, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := netmodel.New()

	services := make([]netmodel.ServiceID, cfg.Services)
	choices := make(map[netmodel.ServiceID][]netmodel.ProductID, cfg.Services)
	for s := 0; s < cfg.Services; s++ {
		services[s] = ServiceName(s)
		ps := make([]netmodel.ProductID, cfg.ProductsPerService)
		for p := 0; p < cfg.ProductsPerService; p++ {
			ps[p] = ProductName(s, p)
		}
		choices[services[s]] = ps
	}

	for i := 0; i < cfg.Hosts; i++ {
		h := &netmodel.Host{
			ID:       netmodel.HostID(fmt.Sprintf("h%d", i)),
			Zone:     "synthetic",
			Services: services,
			Choices:  choices,
		}
		if err := n.AddHost(h); err != nil {
			return nil, err
		}
	}
	hosts := n.Hosts()

	// Spanning chain guarantees connectivity.
	for i := 1; i < len(hosts); i++ {
		if err := n.AddLink(hosts[i-1], hosts[i]); err != nil {
			return nil, err
		}
	}
	target := cfg.Hosts * cfg.Degree / 2
	attempts := 0
	maxAttempts := target * 20
	for n.NumLinks() < target && attempts < maxAttempts {
		attempts++
		a := hosts[rng.Intn(len(hosts))]
		b := hosts[rng.Intn(len(hosts))]
		if a == b {
			continue
		}
		if err := n.AddLink(a, b); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// SyntheticSimilarity builds a similarity table over the synthetic products
// of a random network: products of the same service have pairwise
// similarities drawn deterministically (by seed) from [0, maxSim], products
// of different services have similarity 0 (they never compete on an edge
// anyway).
func SyntheticSimilarity(cfg RandomConfig, maxSim float64) *vulnsim.SimilarityTable {
	cfg, err := cfg.withDefaults()
	if err != nil {
		// Only Hosts can make withDefaults fail and Hosts is irrelevant
		// here; normalise it and retry.
		cfg.Hosts = 2
		cfg, _ = cfg.withDefaults()
	}
	if maxSim <= 0 || maxSim > 1 {
		maxSim = 0.6
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var products []string
	for s := 0; s < cfg.Services; s++ {
		for p := 0; p < cfg.ProductsPerService; p++ {
			products = append(products, string(ProductName(s, p)))
		}
	}
	t := vulnsim.NewSimilarityTable(products)
	for s := 0; s < cfg.Services; s++ {
		for a := 0; a < cfg.ProductsPerService; a++ {
			pa := string(ProductName(s, a))
			_ = t.SetTotal(pa, 100+rng.Intn(900))
			for b := a + 1; b < cfg.ProductsPerService; b++ {
				pb := string(ProductName(s, b))
				sim := rng.Float64() * maxSim
				shared := int(sim * 100)
				_ = t.Set(pa, pb, sim, shared)
			}
		}
	}
	return t
}

// ZonedConfig describes a small IT/OT style topology: a list of zones with a
// host count each; hosts within a zone form a ring plus random chords, and
// consecutive zones are bridged by a configurable number of links (modelling
// firewalled conduits).
type ZonedConfig struct {
	// Zones lists the zone names in order from the IT perimeter to the OT
	// core (e.g. corporate, dmz, operations, control).
	Zones []ZoneSpec
	// BridgeLinks is the number of links between consecutive zones.
	// Default 2.
	BridgeLinks int
	// Services and Choices describe what every host provides; when nil a
	// default OS+browser catalogue from the paper tables is used.
	Services []netmodel.ServiceID
	Choices  map[netmodel.ServiceID][]netmodel.ProductID
	// Seed makes generation deterministic.
	Seed int64
}

// ZoneSpec is one zone of a ZonedConfig.
type ZoneSpec struct {
	Name  string
	Hosts int
	// Legacy marks the zone's hosts as non-diversifiable.
	Legacy bool
}

// Zoned generates a zoned ICS-style network.
func Zoned(cfg ZonedConfig) (*netmodel.Network, error) {
	if len(cfg.Zones) == 0 {
		return nil, fmt.Errorf("netgen: zoned config needs at least one zone")
	}
	if cfg.BridgeLinks <= 0 {
		cfg.BridgeLinks = 2
	}
	services := cfg.Services
	choices := cfg.Choices
	if services == nil {
		services = []netmodel.ServiceID{netmodel.ServiceOS, netmodel.ServiceBrowser}
		choices = map[netmodel.ServiceID][]netmodel.ProductID{
			netmodel.ServiceOS: {
				netmodel.ProductID(vulnsim.ProdWin7),
				netmodel.ProductID(vulnsim.ProdUbuntu),
				netmodel.ProductID(vulnsim.ProdDebian),
			},
			netmodel.ServiceBrowser: {
				netmodel.ProductID(vulnsim.ProdIE10),
				netmodel.ProductID(vulnsim.ProdChrome),
				netmodel.ProductID(vulnsim.ProdFirefox),
			},
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := netmodel.New()
	zoneHosts := make([][]netmodel.HostID, len(cfg.Zones))

	for zi, zone := range cfg.Zones {
		if zone.Hosts <= 0 {
			return nil, fmt.Errorf("netgen: zone %q has no hosts", zone.Name)
		}
		for i := 0; i < zone.Hosts; i++ {
			id := netmodel.HostID(fmt.Sprintf("%s-%d", zoneName(zi, zone.Name), i+1))
			h := &netmodel.Host{
				ID:       id,
				Zone:     zone.Name,
				Services: services,
				Choices:  choices,
				Legacy:   zone.Legacy,
			}
			if err := n.AddHost(h); err != nil {
				return nil, err
			}
			zoneHosts[zi] = append(zoneHosts[zi], id)
		}
		// Ring within the zone plus a few random chords.
		hosts := zoneHosts[zi]
		for i := 0; i < len(hosts); i++ {
			if len(hosts) > 1 {
				if err := n.AddLink(hosts[i], hosts[(i+1)%len(hosts)]); err != nil {
					return nil, err
				}
			}
		}
		for i := 0; i < len(hosts)/2; i++ {
			a := hosts[rng.Intn(len(hosts))]
			b := hosts[rng.Intn(len(hosts))]
			if a != b {
				if err := n.AddLink(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	// Bridge consecutive zones.
	for zi := 1; zi < len(cfg.Zones); zi++ {
		prev, cur := zoneHosts[zi-1], zoneHosts[zi]
		for k := 0; k < cfg.BridgeLinks; k++ {
			a := prev[rng.Intn(len(prev))]
			b := cur[rng.Intn(len(cur))]
			if err := n.AddLink(a, b); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

// zoneName returns a unique host-ID prefix for a zone: the zone name, or a
// positional fallback for unnamed zones.
func zoneName(index int, name string) string {
	if name == "" {
		return fmt.Sprintf("zone%d", index)
	}
	return name
}

// DegreeHistogram returns a sorted list of (degree, count) pairs for
// reporting generated topologies.
func DegreeHistogram(n *netmodel.Network) [][2]int {
	counts := make(map[int]int)
	for _, h := range n.Hosts() {
		counts[n.Degree(h)]++
	}
	degrees := make([]int, 0, len(counts))
	for d := range counts {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	out := make([][2]int, 0, len(degrees))
	for _, d := range degrees {
		out = append(out, [2]int{d, counts[d]})
	}
	return out
}

// Streaming (CSR-direct) generation for the scale benchmarks.  The map-based
// netmodel.Network path deep-copies per-host service/choice maps and tops out
// around 10^5 hosts; UniformGraph skips netmodel entirely and emits the
// diversification MRF directly — flat label counts, one spanning-chain +
// random-pair link list packed into sorted uint64s, and one identity-interned
// cost matrix per service — so a million-host problem materialises in a few
// hundred MB instead of tens of GB.
package netgen

import (
	"math/rand"
	"slices"

	"netdiversity/internal/mrf"
)

// streamUnaryConstant mirrors core.Options.UnaryConstant's default: the
// uniform φ the paper uses when no host preferences exist.  Constant unaries
// do not change the argmin, but keeping them makes graph-direct energies
// comparable with the netmodel→core path at the same size.
const streamUnaryConstant = 0.01

// streamPairwiseWeight mirrors core.Options.PairwiseWeight's default.
const streamPairwiseWeight = 1.0

// UniformGraph generates the diversification MRF of a connected uniform
// random network directly, without materialising a netmodel.Network.  Node
// host*Services+s is host `host`'s service-s variable with ProductsPerService
// labels; the topology is the same family Random builds (spanning chain plus
// Hosts*Degree/2 random links, deduplicated), and every link contributes one
// edge per service whose cost matrix is the synthetic similarity of that
// service's products (identity-interned: one matrix per service regardless of
// edge count).
//
// Generation is deterministic for a fixed config, including across calls.
func UniformGraph(cfg RandomConfig) (*mrf.Graph, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	links := uniformLinks(cfg)

	counts := make([]int, cfg.Hosts*cfg.Services)
	for i := range counts {
		counts[i] = cfg.ProductsPerService
	}
	g, err := mrf.NewGraph(counts)
	if err != nil {
		return nil, err
	}
	for i := range counts {
		for l := 0; l < cfg.ProductsPerService; l++ {
			if err := g.SetUnary(i, l, streamUnaryConstant); err != nil {
				return nil, err
			}
		}
	}

	mats := serviceMatrices(cfg)
	for _, packed := range links {
		a := int(packed >> 32)
		b := int(packed & 0xffffffff)
		for s := 0; s < cfg.Services; s++ {
			if _, err := g.AddEdgeShared(a*cfg.Services+s, b*cfg.Services+s, mats[s]); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// uniformLinks builds the deduplicated, sorted host-pair list of a uniform
// random topology: the spanning chain plus Hosts*Degree/2 random pairs, each
// packed as lowHost<<32|highHost.  Duplicates are removed by sorting, so the
// realised link count can fall marginally short of the target — the same
// tolerance Random has via its bounded-attempts loop, without a hash set
// growing with the network.
func uniformLinks(cfg RandomConfig) []uint64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	target := cfg.Hosts * cfg.Degree / 2
	extra := target - (cfg.Hosts - 1)
	links := make([]uint64, 0, cfg.Hosts-1+max(extra, 0))
	for i := 1; i < cfg.Hosts; i++ {
		links = append(links, uint64(i-1)<<32|uint64(i))
	}
	for k := 0; k < extra; k++ {
		a := rng.Intn(cfg.Hosts)
		b := rng.Intn(cfg.Hosts)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		links = append(links, uint64(a)<<32|uint64(b))
	}
	slices.Sort(links)
	return slices.Compact(links)
}

// serviceMatrices builds one pairwise cost matrix per service from the
// synthetic similarity model (self-similarity 1 on the diagonal, off-diagonal
// values in [0, 0.6] drawn from the same seeded stream SyntheticSimilarity
// uses), scaled by the default pairwise weight.  Every returned matrix is a
// distinct slice identity so AddEdgeShared interns each service's matrix
// exactly once.
func serviceMatrices(cfg RandomConfig) [][][]float64 {
	sim := SyntheticSimilarity(cfg, 0.6)
	mats := make([][][]float64, cfg.Services)
	for s := 0; s < cfg.Services; s++ {
		m := make([][]float64, cfg.ProductsPerService)
		for a := 0; a < cfg.ProductsPerService; a++ {
			m[a] = make([]float64, cfg.ProductsPerService)
			pa := string(ProductName(s, a))
			for b := 0; b < cfg.ProductsPerService; b++ {
				m[a][b] = streamPairwiseWeight * sim.Sim(pa, string(ProductName(s, b)))
			}
		}
		mats[s] = m
	}
	return mats
}

package netgen

import (
	"testing"
)

func TestGenerateTopologies(t *testing.T) {
	cfg := RandomConfig{Hosts: 200, Degree: 6, Services: 2, ProductsPerService: 3, Seed: 4}
	for _, topo := range []Topology{TopologyUniform, TopologyScaleFree, TopologySmallWorld} {
		t.Run(topo.String(), func(t *testing.T) {
			net, err := Generate(cfg, topo)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if net.NumHosts() != cfg.Hosts {
				t.Fatalf("hosts = %d, want %d", net.NumHosts(), cfg.Hosts)
			}
			if err := net.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if comps := net.ConnectedComponents(); len(comps) != 1 {
				t.Errorf("%s network has %d components, want 1", topo, len(comps))
			}
			if net.NumLinks() < cfg.Hosts-1 {
				t.Errorf("%s network has too few links: %d", topo, net.NumLinks())
			}
		})
	}
	if _, err := Generate(cfg, Topology(99)); err == nil {
		t.Error("unknown topology should be rejected")
	}
	if Topology(99).String() == "" || TopologyScaleFree.String() != "scale-free" {
		t.Error("topology names wrong")
	}
}

func TestGenerateZeroTopologyDefaultsToUniform(t *testing.T) {
	cfg := RandomConfig{Hosts: 30, Degree: 4, Seed: 1}
	a, err := Generate(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Error("zero topology should behave like Random")
	}
}

func TestScaleFreeHasHubs(t *testing.T) {
	cfg := RandomConfig{Hosts: 300, Degree: 6, Services: 1, Seed: 8}
	sf, err := Generate(cfg, TopologyScaleFree)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Generate(cfg, TopologyUniform)
	if err != nil {
		t.Fatal(err)
	}
	// Preferential attachment concentrates degree: the largest hub of the
	// scale-free graph should clearly exceed the uniform graph's maximum.
	if sf.MaxDegree() <= uniform.MaxDegree() {
		t.Errorf("scale-free max degree %d should exceed uniform %d", sf.MaxDegree(), uniform.MaxDegree())
	}
}

func TestSmallWorldDeterminism(t *testing.T) {
	cfg := RandomConfig{Hosts: 100, Degree: 6, Seed: 11}
	a, err := Generate(cfg, TopologySmallWorld)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, TopologySmallWorld)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("same seed produced different link counts: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestScaleFreeTinyNetworks(t *testing.T) {
	net, err := Generate(RandomConfig{Hosts: 3, Degree: 10, Seed: 2}, TopologyScaleFree)
	if err != nil {
		t.Fatalf("tiny scale-free network: %v", err)
	}
	if comps := net.ConnectedComponents(); len(comps) != 1 {
		t.Error("tiny scale-free network should be connected")
	}
}

// Package multilevel implements the coarsen→solve→project→refine scheme
// that pushes the diversification MRF past the flat solvers' ~1000-host
// range: contract the graph into a hierarchy of progressively smaller
// problems (internal/coarsen), solve the coarsest level exactly once with a
// flat kernel (default TRW-S), then walk back up the hierarchy projecting
// each coarse labeling onto the next finer level and repairing it with the
// WarmKernel dirty-mask machinery — only nodes whose projected label is not
// a local best response are re-solved, so each refinement costs O(dirty)
// instead of O(nodes).
//
// The kernel registers as "multilevel" and runs under the standard solve
// driver: the hierarchy build, the coarsest solve and each per-level
// refinement are individual driver steps, so context cancellation and the
// scheduler's Checkpoint hook interleave between phases.  Refinement solves
// inherit the Checkpoint too, which is what lets the serving plane slice a
// million-host solve into schedulable units.
package multilevel

import (
	"context"
	"fmt"
	"time"

	"netdiversity/internal/coarsen"
	"netdiversity/internal/mrf"
	"netdiversity/internal/solve"

	// The coarsest-level and refinement solves are looked up from the solve
	// registry by name; link the kernels this package defaults to.
	_ "netdiversity/internal/icm"
	_ "netdiversity/internal/trws"
)

func init() {
	solve.Register("multilevel", func() solve.Kernel { return &Kernel{} })
}

const (
	// DefaultBaseSolver solves the coarsest level.
	DefaultBaseSolver = "trws"
	// DefaultRefineIterations bounds each per-level warm repair solve.
	DefaultRefineIterations = 8
	// DefaultTRWSEdgeLimit is the largest level (in edges) refined with the
	// message-passing kernel; larger levels switch to the O(n)-memory ICM
	// worklist.  Message buffers cost 2·edges·K floats and every trws sweep
	// is O(edges·K²) regardless of the dirty fraction, so on big levels the
	// worklist repair wins by orders of magnitude.
	DefaultTRWSEdgeLimit = 1 << 18
	// DefaultMatchingLimit is the largest fine graph (in nodes) coarsened
	// with the matching hierarchy.  Random uniform topologies are
	// expander-like: halving the node count barely shrinks the edge count,
	// so a deep hierarchy costs O(edges) per level and re-refines nearly
	// the whole graph each projection.  Above this limit the kernel jumps
	// straight to AggregateTarget nodes in one deterministic hash pass.
	DefaultMatchingLimit = 16384
	// DefaultAggregateTarget is the coarse size of the single-jump path.
	// Around a thousand coarse nodes the accumulated pair table saturates
	// (the coarse graph is nearly complete), so the flat base solver sees a
	// fixed-size problem no matter how large the fine graph is.
	DefaultAggregateTarget = 512
)

// Stats describes one multilevel solve for benchmark reporting.
type Stats struct {
	// CoarsenMS is the wall-clock time spent building the hierarchy.
	CoarsenMS float64
	// Levels is the hierarchy depth including the fine graph.
	Levels int
	// CoarsestNodes is the node count of the level the base solver ran on.
	CoarsestNodes int
	// RefinedNodes is the total number of dirty nodes repaired across all
	// projection steps.
	RefinedNodes int
}

// Kernel is the multilevel solver.  The zero value uses the defaults above;
// fields may be set when constructing the kernel directly (SolveWithStats).
type Kernel struct {
	// BaseSolver names the registry kernel used on the coarsest level.
	BaseSolver string
	// Coarsen tunes hierarchy construction.
	Coarsen coarsen.Options
	// RefineIterations bounds each per-level warm repair solve.
	RefineIterations int
	// TRWSEdgeLimit switches refinement from trws to icm above this edge
	// count.
	TRWSEdgeLimit int
	// MatchingLimit switches coarsening from the matching hierarchy to the
	// single-jump aggregation above this fine node count.
	MatchingLimit int
	// AggregateTarget is the coarse node count of the single-jump path.
	AggregateTarget int
	// Stride is the node-interleave period handed to coarsen.Aggregate
	// (services per host for the diversification MRF layout); 1 groups raw
	// node indices.
	Stride int

	g      *mrf.Graph
	opts   solve.Options
	h      *coarsen.Hierarchy
	labels []int // labeling of the most recently solved/refined level
	level  int   // index of that level in h.Levels
	phase  int
	stats  Stats
	failed error
}

const (
	phaseBuild = iota
	phaseCoarse
	phaseRefine
	phaseDone
)

// Defaults floors the iteration budget so the driver's step cap can never
// truncate the hierarchy walk: the kernel needs one step for the build, one
// for the coarsest solve and one per projection level.
func (k *Kernel) Defaults(o solve.Options) solve.Options {
	maxLevels := k.Coarsen.MaxLevels
	if maxLevels <= 0 {
		maxLevels = 24 // coarsen.Options default
	}
	if floor := maxLevels + 4; o.MaxIterations > 0 && o.MaxIterations < floor {
		o.MaxIterations = floor
	}
	return o
}

// Init implements solve.Kernel.
func (k *Kernel) Init(g *mrf.Graph, opts solve.Options) error {
	if g == nil {
		return solve.ErrNilGraph
	}
	if k.BaseSolver == "" {
		k.BaseSolver = DefaultBaseSolver
	}
	if !solve.Registered(k.BaseSolver) {
		return fmt.Errorf("multilevel: unknown base solver %q", k.BaseSolver)
	}
	if k.RefineIterations <= 0 {
		k.RefineIterations = DefaultRefineIterations
	}
	if k.TRWSEdgeLimit <= 0 {
		k.TRWSEdgeLimit = DefaultTRWSEdgeLimit
	}
	if k.MatchingLimit <= 0 {
		k.MatchingLimit = DefaultMatchingLimit
	}
	if k.AggregateTarget <= 0 {
		k.AggregateTarget = DefaultAggregateTarget
	}
	if k.Stride <= 0 {
		k.Stride = 1
	}
	k.g = g
	k.opts = opts
	k.phase = phaseBuild
	k.stats = Stats{}
	k.failed = nil
	return nil
}

// Step implements solve.Kernel: one hierarchy phase per driver step.
// Intermediate steps return nil Labels — scoring a partial labeling of a
// coarse level against the fine graph is meaningless — and the final step
// returns the fully refined fine labeling with FixedPoint set.
func (k *Kernel) Step() solve.Step {
	switch k.phase {
	case phaseBuild:
		start := time.Now()
		h, err := k.buildHierarchy()
		if err != nil {
			return k.fail(err)
		}
		k.h = h
		k.stats.CoarsenMS = float64(time.Since(start).Microseconds()) / 1e3
		k.stats.Levels = h.NumLevels()
		k.stats.CoarsestNodes = h.Coarsest().NumNodes()
		k.phase = phaseCoarse
		return solve.Step{}
	case phaseCoarse:
		kern, err := solve.New(k.BaseSolver)
		if err != nil {
			return k.fail(err)
		}
		sol, err := solve.Run(context.Background(), k.h.Coarsest(), solve.Options{
			MaxIterations: k.opts.MaxIterations,
			Tolerance:     k.opts.Tolerance,
			Workers:       k.opts.Workers,
			Seed:          k.opts.Seed,
			Checkpoint:    k.opts.Checkpoint,
		}, kern)
		if err != nil {
			return k.fail(err)
		}
		k.labels = sol.Labels
		k.level = k.h.NumLevels() - 1
		if k.level == 0 {
			k.phase = phaseDone
			return solve.Step{Labels: k.labels, FixedPoint: true}
		}
		k.phase = phaseRefine
		return solve.Step{}
	case phaseRefine:
		if err := k.refineDown(); err != nil {
			return k.fail(err)
		}
		if k.level == 0 {
			k.phase = phaseDone
			return solve.Step{Labels: k.labels, FixedPoint: true}
		}
		return solve.Step{}
	default:
		return solve.Step{Exhausted: true}
	}
}

// buildHierarchy picks the coarsening strategy by fine-graph size: a
// matching hierarchy while deep refinement is affordable, one hash-bucketed
// jump to AggregateTarget nodes beyond MatchingLimit (see the constants for
// the expander-graph rationale).  The aggregate path yields a two-level
// hierarchy, so the rest of the kernel — coarse solve, projection, warm
// repair — is strategy-agnostic.
func (k *Kernel) buildHierarchy() (*coarsen.Hierarchy, error) {
	if k.g.NumNodes() <= k.MatchingLimit {
		return coarsen.Build(k.g, k.Coarsen)
	}
	coarse, f2c, err := coarsen.Aggregate(k.g, k.Stride, k.AggregateTarget)
	if err != nil {
		return nil, err
	}
	return &coarsen.Hierarchy{
		Levels: []*mrf.Graph{k.g, coarse},
		Maps:   [][]int32{f2c},
	}, nil
}

func (k *Kernel) fail(err error) solve.Step {
	k.failed = err
	k.phase = phaseDone
	return solve.Step{Exhausted: true}
}

// refineDown projects k.labels one level down and repairs the projection
// with a WarmKernel dirty-mask solve seeded from the nodes whose projected
// label is not a local best response (the "boundary-inconsistent" set: the
// interior of a merged region is consistent by construction, inconsistency
// concentrates where merged regions meet).
func (k *Kernel) refineDown() error {
	fineLevel := k.level - 1
	fine := k.h.Levels[fineLevel]
	projected, err := k.h.Project(k.labels, k.level, fineLevel)
	if err != nil {
		return err
	}
	dirty, count := localDirty(fine, projected, k.opts.Tolerance)
	k.level = fineLevel
	if count == 0 {
		k.labels = projected
		return nil
	}
	k.stats.RefinedNodes += count
	name := k.refineSolver(fine)
	kern, err := solve.New(name)
	if err != nil {
		return err
	}
	sol, err := solve.Run(context.Background(), fine, solve.Options{
		MaxIterations: k.RefineIterations,
		Tolerance:     k.opts.Tolerance,
		Workers:       k.opts.Workers,
		Seed:          k.opts.Seed,
		InitialLabels: projected,
		DirtyMask:     dirty,
		Checkpoint:    k.opts.Checkpoint,
	}, kern)
	if err != nil {
		return err
	}
	// The warm driver seeds its best labeling with the projection, so the
	// refined energy can only be <= the projected energy.
	k.labels = sol.Labels
	return nil
}

// refineSolver picks the repair kernel for a level: message passing while
// the message buffers stay affordable, the ICM worklist above that.
func (k *Kernel) refineSolver(g *mrf.Graph) string {
	if g.NumEdges() > k.TRWSEdgeLimit {
		return "icm"
	}
	return "trws"
}

// Stats returns the metrics of the last solve.
func (k *Kernel) Stats() Stats { return k.stats }

// Err returns the internal failure that aborted the last solve, if any.
// The solve driver treats an aborted kernel as exhausted and returns its
// baseline labeling without an error; callers that need to distinguish the
// two ask the kernel.
func (k *Kernel) Err() error { return k.failed }

// localDirty marks every node whose label is not a local best response given
// its neighbours' labels (within tol), and returns the mask plus the count.
func localDirty(g *mrf.Graph, labels []int, tol float64) ([]bool, int) {
	n := g.NumNodes()
	dirty := make([]bool, n)
	count := 0
	costs := make([]float64, g.MaxLabels())
	for i := 0; i < n; i++ {
		k := g.NumLabels(i)
		row := costs[:k]
		copy(row, g.UnaryView(i))
		for _, e := range g.IncidentEdges(i) {
			u, v := g.EdgeEndpoints(e)
			var other []float64
			if i == u {
				// rows of the transposed matrix are indexed by v's label
				other = g.EdgeMatT(e).Row(labels[v])
			} else {
				other = g.EdgeMat(e).Row(labels[u])
			}
			for x := 0; x < k; x++ {
				row[x] += other[x]
			}
		}
		min := row[0]
		for x := 1; x < k; x++ {
			if row[x] < min {
				min = row[x]
			}
		}
		if row[labels[i]] > min+tol {
			dirty[i] = true
			count++
		}
	}
	return dirty, count
}

// SolveWithStats runs the configured kernel and reports the hierarchy
// metrics alongside the solution.  Zero-value fields take the package
// defaults; the receiver is reusable across calls.
func (k *Kernel) SolveWithStats(ctx context.Context, g *mrf.Graph, opts solve.Options) (mrf.Solution, Stats, error) {
	sol, err := solve.Run(ctx, g, opts, k)
	if err == nil && k.failed != nil {
		err = k.failed
	}
	return sol, k.Stats(), err
}

// SolveWithStats runs a default-configured multilevel solve.  It is the
// benchmark harness's entry point; the registry path ("multilevel" via
// solve.Solve) serves everything else.
func SolveWithStats(ctx context.Context, g *mrf.Graph, opts solve.Options) (mrf.Solution, Stats, error) {
	return (&Kernel{}).SolveWithStats(ctx, g, opts)
}

package multilevel_test

import (
	"context"
	"testing"

	"netdiversity/internal/multilevel"
	"netdiversity/internal/netgen"
	"netdiversity/internal/solve"
)

func TestRegistered(t *testing.T) {
	if !solve.Registered("multilevel") {
		t.Fatal("multilevel is not in the solve registry")
	}
}

// The multilevel solution must land within 5% of flat TRW-S on reference
// sizes — the acceptance bar of the scale work.
func TestMultilevelWithinFivePercentOfFlat(t *testing.T) {
	for _, hosts := range []int{1000, 2000} {
		cfg := netgen.RandomConfig{Hosts: hosts, Degree: 6, Services: 2, ProductsPerService: 4, Seed: int64(hosts)}
		g, err := netgen.UniformGraph(cfg)
		if err != nil {
			t.Fatalf("UniformGraph: %v", err)
		}
		opts := solve.Options{MaxIterations: 60, Seed: 1}
		flat, err := solve.Solve(context.Background(), "trws", g, opts)
		if err != nil {
			t.Fatalf("trws: %v", err)
		}
		ml, stats, err := multilevel.SolveWithStats(context.Background(), g, opts)
		if err != nil {
			t.Fatalf("multilevel: %v", err)
		}
		if stats.Levels < 1 || stats.CoarsestNodes <= 0 {
			t.Fatalf("stats not populated: %+v", stats)
		}
		if flat.Energy <= 0 {
			t.Fatalf("flat energy %v not positive, gap undefined", flat.Energy)
		}
		gap := (ml.Energy - flat.Energy) / flat.Energy
		if gap > 0.05 {
			t.Fatalf("hosts=%d: multilevel energy %.6f is %.2f%% above flat %.6f",
				hosts, ml.Energy, gap*100, flat.Energy)
		}
		t.Logf("hosts=%d flat=%.4f multilevel=%.4f gap=%.2f%% levels=%d coarsest=%d refined=%d coarsen=%.1fms",
			hosts, flat.Energy, ml.Energy, gap*100, stats.Levels, stats.CoarsestNodes, stats.RefinedNodes, stats.CoarsenMS)
	}
}

// Small graphs (at or below the coarsest size) must degrade to a plain base
// solve and still return a valid solution.
func TestMultilevelTinyGraph(t *testing.T) {
	g, err := netgen.UniformGraph(netgen.RandomConfig{Hosts: 20, Degree: 4, Services: 2, ProductsPerService: 3, Seed: 2})
	if err != nil {
		t.Fatalf("UniformGraph: %v", err)
	}
	sol, stats, err := multilevel.SolveWithStats(context.Background(), g, solve.Options{MaxIterations: 40})
	if err != nil {
		t.Fatalf("multilevel: %v", err)
	}
	if stats.Levels != 1 {
		t.Fatalf("expected single-level hierarchy for %d nodes, got %d levels", g.NumNodes(), stats.Levels)
	}
	if len(sol.Labels) != g.NumNodes() || !sol.Converged {
		t.Fatalf("bad solution: %d labels, converged=%v", len(sol.Labels), sol.Converged)
	}
}

// The registry path must behave like the direct path.
func TestMultilevelViaRegistry(t *testing.T) {
	g, err := netgen.UniformGraph(netgen.RandomConfig{Hosts: 300, Degree: 6, Services: 2, ProductsPerService: 4, Seed: 4})
	if err != nil {
		t.Fatalf("UniformGraph: %v", err)
	}
	opts := solve.Options{MaxIterations: 60, Seed: 1}
	viaRegistry, err := solve.Solve(context.Background(), "multilevel", g, opts)
	if err != nil {
		t.Fatalf("registry solve: %v", err)
	}
	direct, _, err := multilevel.SolveWithStats(context.Background(), g, opts)
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	if viaRegistry.Energy != direct.Energy {
		t.Fatalf("registry and direct solves disagree: %v vs %v", viaRegistry.Energy, direct.Energy)
	}
}

// Checkpoint errors must abort the solve and surface to the caller.
func TestMultilevelCheckpointAbort(t *testing.T) {
	g, err := netgen.UniformGraph(netgen.RandomConfig{Hosts: 300, Degree: 6, Services: 2, ProductsPerService: 4, Seed: 6})
	if err != nil {
		t.Fatalf("UniformGraph: %v", err)
	}
	calls := 0
	boom := context.DeadlineExceeded
	_, _, err = multilevel.SolveWithStats(context.Background(), g, solve.Options{
		MaxIterations: 60,
		Checkpoint: func(context.Context) error {
			calls++
			if calls > 2 {
				return boom
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("expected checkpoint error to surface")
	}
}

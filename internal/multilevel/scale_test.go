package multilevel_test

import (
	"context"
	"os"
	"testing"
	"time"

	"netdiversity/internal/multilevel"
	"netdiversity/internal/netgen"
	"netdiversity/internal/solve"
)

// TestScaleSmoke is the opt-in large-size comparison behind the BENCH_scale
// numbers: flat trws vs multilevel at 10k and 100k hosts.  It is skipped
// unless SCALE_SMOKE is set because the flat solve alone takes seconds; the
// scenario scale suite is the canonical gate, this test is the fast local
// repro for it.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run the large-size comparison")
	}
	for _, hosts := range []int{10000, 100000} {
		cfg := netgen.RandomConfig{Hosts: hosts, Degree: 8, Services: 3, ProductsPerService: 4, Seed: int64(hosts)}
		gen := time.Now()
		g, err := netgen.UniformGraph(cfg)
		if err != nil {
			t.Fatalf("UniformGraph: %v", err)
		}
		genDur := time.Since(gen)
		opts := solve.Options{MaxIterations: 40, Seed: 1}

		flatStart := time.Now()
		flat, err := solve.Solve(context.Background(), "trws", g, opts)
		if err != nil {
			t.Fatalf("trws: %v", err)
		}
		flatDur := time.Since(flatStart)

		mlStart := time.Now()
		k := &multilevel.Kernel{Stride: cfg.Services}
		ml, stats, err := k.SolveWithStats(context.Background(), g, opts)
		if err != nil {
			t.Fatalf("multilevel: %v", err)
		}
		mlDur := time.Since(mlStart)

		gap := (ml.Energy - flat.Energy) / flat.Energy * 100
		t.Logf("hosts=%d nodes=%d edges=%d gen=%v flat=%v multilevel=%v speedup=%.1fx gap=%.2f%% levels=%d coarsest=%d refined=%d coarsen=%.0fms",
			hosts, g.NumNodes(), g.NumEdges(), genDur, flatDur, mlDur,
			float64(flatDur)/float64(mlDur), gap, stats.Levels, stats.CoarsestNodes, stats.RefinedNodes, stats.CoarsenMS)
		if gap > 5 {
			t.Errorf("hosts=%d: gap %.2f%% above 5%%", hosts, gap)
		}
		if hosts >= 100000 && mlDur*3 > flatDur {
			t.Errorf("hosts=%d: multilevel %v not 3x faster than flat %v", hosts, mlDur, flatDur)
		}
	}
}

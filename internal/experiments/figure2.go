package experiments

import (
	"context"
	"fmt"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/scenario"
	"netdiversity/internal/vulnsim"
)

// fig2Services and products of the running example of Section IV (Fig. 2):
// six hosts, a web-browser service and a database service, three candidate
// products each.
const (
	fig2SvcWB = netmodel.ServiceID("web_browser")
	fig2SvcDB = netmodel.ServiceID("database")
)

// Figure2Network builds the 6-host example network of Fig. 2.  Every host
// has its own subset of candidate products, as in the figure.
func Figure2Network() (*netmodel.Network, error) {
	wb := func(ids ...int) []netmodel.ProductID {
		out := make([]netmodel.ProductID, len(ids))
		for i, id := range ids {
			out[i] = netmodel.ProductID(fmt.Sprintf("wb%d", id))
		}
		return out
	}
	db := func(ids ...int) []netmodel.ProductID {
		out := make([]netmodel.ProductID, len(ids))
		for i, id := range ids {
			out[i] = netmodel.ProductID(fmt.Sprintf("db%d", id))
		}
		return out
	}
	type def struct {
		id  netmodel.HostID
		wbs []netmodel.ProductID
		dbs []netmodel.ProductID
	}
	defs := []def{
		{"h0", wb(1, 2, 3), db(1, 2, 3)},
		{"h1", nil, db(1, 2, 3)},
		{"h2", wb(1, 2, 3), nil},
		{"h3", wb(1, 2), db(2, 3)},
		{"h4", wb(2, 3), db(1, 2)},
		{"h5", wb(1, 2), db(1, 2, 3)},
	}
	n := netmodel.New()
	for _, d := range defs {
		h := &netmodel.Host{ID: d.id, Zone: "example", Choices: map[netmodel.ServiceID][]netmodel.ProductID{}}
		if d.wbs != nil {
			h.Services = append(h.Services, fig2SvcWB)
			h.Choices[fig2SvcWB] = d.wbs
		}
		if d.dbs != nil {
			h.Services = append(h.Services, fig2SvcDB)
			h.Choices[fig2SvcDB] = d.dbs
		}
		if err := n.AddHost(h); err != nil {
			return nil, err
		}
	}
	links := [][2]netmodel.HostID{
		{"h0", "h1"}, {"h0", "h2"}, {"h1", "h2"}, {"h1", "h3"},
		{"h2", "h4"}, {"h3", "h4"}, {"h3", "h5"}, {"h4", "h5"},
	}
	for _, l := range links {
		if err := n.AddLink(l[0], l[1]); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Figure2Similarity returns the similarity table of the example products:
// moderate similarity between neighbouring product versions, low otherwise.
func Figure2Similarity() *vulnsim.SimilarityTable {
	t := vulnsim.NewSimilarityTable([]string{"wb1", "wb2", "wb3", "db1", "db2", "db3"})
	for _, p := range t.Products() {
		_ = t.SetTotal(p, 100)
	}
	_ = t.Set("wb1", "wb2", 0.40, 40)
	_ = t.Set("wb1", "wb3", 0.10, 10)
	_ = t.Set("wb2", "wb3", 0.20, 20)
	_ = t.Set("db1", "db2", 0.35, 35)
	_ = t.Set("db1", "db3", 0.05, 5)
	_ = t.Set("db2", "db3", 0.25, 25)
	return t
}

// Figure2 computes the optimal assignment of the example network and renders
// it per host (the red circles of Fig. 2).  The optimisation runs through
// scenario.Exec, the same execution path the benchmark suites measure.
func Figure2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	net, err := Figure2Network()
	if err != nil {
		return nil, err
	}
	sim := Figure2Similarity()
	res, err := scenario.Exec(context.Background(), net, sim, scenario.Cell{
		ID:            "fig2",
		Solver:        "trws",
		MaxIterations: 50,
		Seed:          cfg.Seed,
		SolverWorkers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "fig2",
		Title:   "Example network of Section IV with an optimal product assignment",
		Columns: []string{"host", "web_browser", "database"},
	}
	for _, hid := range net.Hosts() {
		wbP := string(res.Assignment.Product(hid, fig2SvcWB))
		dbP := string(res.Assignment.Product(hid, fig2SvcDB))
		if wbP == "" {
			wbP = "-"
		}
		if dbP == "" {
			dbP = "-"
		}
		t.AddRow(string(hid), wbP, dbP)
	}
	stats := res.Assignment.Stats(net)
	t.AddNote("optimisation energy %.4f, pairwise similarity cost %.4f", res.Energy, res.PairwiseCost)
	for _, svc := range []netmodel.ServiceID{fig2SvcWB, fig2SvcDB} {
		t.AddNote("service %s: %d distinct products, %d/%d links share the identical product",
			svc, stats.DistinctProducts[svc], stats.SameProductEdges[svc], stats.TotalSharedEdges[svc])
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"math"

	"netdiversity/internal/nvdgen"
	"netdiversity/internal/vulnsim"
)

// similarityTable regenerates one of the paper's similarity tables by
// synthesising an NVD-style corpus that reproduces the published totals and
// shared-vulnerability counts and re-running the Jaccard pipeline on it, then
// comparing the recomputed similarities against the published values.
func similarityTable(id, title string, published *vulnsim.SimilarityTable) (*Table, error) {
	db, err := nvdgen.FromSimilarityTable(published, 1999)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	recomputed := vulnsim.BuildSimilarityTable(db, published.Products(), vulnsim.VulnFilter{})

	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"product A", "product B", "published sim (shared)", "recomputed sim (shared)"},
	}
	products := published.Products()
	maxDiff := 0.0
	for i := 0; i < len(products); i++ {
		for j := 0; j < i; j++ {
			a, b := products[i], products[j]
			pub, ok := published.Entry(a, b)
			if !ok {
				pub = vulnsim.Entry{}
			}
			rec, _ := recomputed.Entry(a, b)
			if d := math.Abs(pub.Similarity - rec.Similarity); d > maxDiff {
				maxDiff = d
			}
			t.AddRow(a, b,
				fmt.Sprintf("%.3f (%d)", pub.Similarity, pub.Shared),
				fmt.Sprintf("%.3f (%d)", rec.Similarity, rec.Shared))
		}
	}
	t.AddNote("corpus of %d synthetic CVE records regenerated from the published totals; max |published - recomputed| similarity = %.4f",
		db.Len(), maxDiff)
	t.AddNote("published similarities differ from exact Jaccard of the printed counts only by the paper's rounding")
	return t, nil
}

// TableII regenerates the operating-system similarity table (Table II).
func TableII(cfg Config) (*Table, error) {
	_ = cfg
	return similarityTable("table2", "Similarity table for common OS products (CVE/NVD)", vulnsim.PaperOSTable())
}

// TableIII regenerates the web-browser similarity table (Table III).
func TableIII(cfg Config) (*Table, error) {
	_ = cfg
	return similarityTable("table3", "Similarity table for common web browsers (CVE/NVD)", vulnsim.PaperBrowserTable())
}

package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func quickConfig() Config {
	return Config{Seed: 42, Workers: 1}
}

// cell parses a table cell as a float, stripping any bracketed suffix.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

// rowByLabel returns the first row whose first column matches the label.
func rowByLabel(t *testing.T, table *Table, label string) []string {
	t.Helper()
	for _, row := range table.Rows {
		if row[0] == label {
			return row
		}
	}
	t.Fatalf("table %s has no row labelled %q", table.ID, label)
	return nil
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{
		"ablation", "adversary", "convergence", "cost", "fig1", "fig2", "fig4", "metrics",
		"table2", "table3", "table5", "table6", "table7", "table8", "table9", "topology",
	}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	if _, err := Run("bogus", quickConfig()); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestFigure1ReproducesPaperNumbers(t *testing.T) {
	pA, err := Figure1Probability(Fig1SingleLabel)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := Figure1Probability(Fig1SingleLabelSim)
	if err != nil {
		t.Fatal(err)
	}
	pC, err := Figure1Probability(Fig1MultiLabel)
	if err != nil {
		t.Fatal(err)
	}
	if pA > 1e-6 {
		t.Errorf("panel (a): P = %v, want ~0", pA)
	}
	if math.Abs(pB-0.125) > 1e-3 {
		t.Errorf("panel (b): P = %v, want ~0.125", pB)
	}
	if math.Abs(pC-0.5) > 1e-3 {
		t.Errorf("panel (c): P = %v, want ~0.5", pC)
	}
	if _, err := Figure1Probability(Figure1Variant(99)); err == nil {
		t.Error("unknown variant should fail")
	}
	table, err := Figure1(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Errorf("figure 1 table has %d rows, want 3", len(table.Rows))
	}
	if table.Render() == "" {
		t.Error("render should produce output")
	}
}

func TestSimilarityTablesRegenerate(t *testing.T) {
	for _, id := range []string{"table2", "table3"} {
		table, err := Run(id, quickConfig())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		for _, row := range table.Rows {
			pub := cell(t, row[2])
			rec := cell(t, row[3])
			if math.Abs(pub-rec) > 0.01 {
				t.Errorf("%s %s/%s: recomputed %.3f deviates from published %.3f", id, row[0], row[1], rec, pub)
			}
		}
	}
}

func TestFigure2Diversifies(t *testing.T) {
	table, err := Figure2(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("figure 2 table has %d rows, want 6", len(table.Rows))
	}
	// The optimal assignment of the example should avoid identical products
	// on every link (reported in the notes as "0/5 links").
	joined := strings.Join(table.Notes, "\n")
	if !strings.Contains(joined, "0/5 links share the identical product") {
		t.Errorf("expected perfectly diversified example, notes: %s", joined)
	}
}

func TestCaseStudyAssignments(t *testing.T) {
	cs, err := BuildCaseStudy(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every assignment must be complete and valid.
	for name, a := range cs.byName() {
		if err := a.ValidateFor(cs.Network); err != nil {
			t.Errorf("%s assignment invalid: %v", name, err)
		}
	}
	// The unconstrained optimum must have the lowest Eq. 1 energy, the
	// homogeneous assignment the highest.
	if cs.Energies["optimal"] > cs.Energies["host_constr"]+1e-9 {
		t.Errorf("optimal energy %v should not exceed the host-constrained energy %v",
			cs.Energies["optimal"], cs.Energies["host_constr"])
	}
	if cs.Energies["optimal"] > cs.Energies["random"] {
		t.Errorf("optimal energy %v should beat random %v", cs.Energies["optimal"], cs.Energies["random"])
	}
	if cs.Energies["mono"] < cs.Energies["random"] {
		t.Errorf("mono energy %v should be the worst (random %v)", cs.Energies["mono"], cs.Energies["random"])
	}
}

func TestTableVOrdering(t *testing.T) {
	table, err := TableV(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("table V has %d rows, want 5", len(table.Rows))
	}
	dbn := make(map[string]float64)
	for _, row := range table.Rows {
		dbn[row[1]] = cell(t, row[4])
	}
	if !(dbn["optimal assignment"] > dbn["host constraints"]) {
		t.Errorf("d_bn(optimal)=%v should exceed d_bn(C1)=%v", dbn["optimal assignment"], dbn["host constraints"])
	}
	if !(dbn["host constraints"] >= dbn["product constraints"]-1e-6) {
		t.Errorf("d_bn(C1)=%v should be at least d_bn(C2)=%v", dbn["host constraints"], dbn["product constraints"])
	}
	if !(dbn["product constraints"] > dbn["mono assignment"]) {
		t.Errorf("d_bn(C2)=%v should exceed d_bn(mono)=%v", dbn["product constraints"], dbn["mono assignment"])
	}
	if !(dbn["random assignment"] > dbn["mono assignment"]) {
		t.Errorf("d_bn(random)=%v should exceed d_bn(mono)=%v", dbn["random assignment"], dbn["mono assignment"])
	}
	for name, v := range dbn {
		if v <= 0 || v > 1 {
			t.Errorf("d_bn(%s) = %v outside (0,1]", name, v)
		}
	}
}

func TestTableVIOrdering(t *testing.T) {
	table, err := TableVI(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("table VI has %d rows, want 4", len(table.Rows))
	}
	optimal := rowByLabel(t, table, "α̂")
	mono := rowByLabel(t, table, "α_m")
	for col := 1; col < len(table.Columns); col++ {
		o := cell(t, optimal[col])
		m := cell(t, mono[col])
		if o < m-1e-9 {
			t.Errorf("%s: optimal MTTC %v should not be below mono %v", table.Columns[col], o, m)
		}
	}
	// From the corporate entry points the optimal assignment should be
	// strictly more resilient than the homogeneous one.
	for _, col := range []int{1, 2} {
		if cell(t, optimal[col]) <= cell(t, mono[col]) {
			t.Errorf("%s: optimal MTTC should strictly exceed mono", table.Columns[col])
		}
	}
}

func TestScalabilityTables(t *testing.T) {
	for _, id := range []string{"table7", "table8", "table9"} {
		table, err := Run(id, quickConfig())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) != 2 {
			t.Fatalf("%s has %d rows, want 2 profiles", id, len(table.Rows))
		}
		for _, row := range table.Rows {
			for col := 3; col < len(row); col++ {
				v := cell(t, row[col])
				if v < 0 {
					t.Errorf("%s: negative runtime %v", id, v)
				}
				if v > 60 {
					t.Errorf("%s: quick-profile runtime %v unexpectedly large", id, v)
				}
			}
		}
	}
}

func TestAblationShape(t *testing.T) {
	table, err := Ablation(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	energies := make(map[string]float64)
	for _, row := range table.Rows {
		energies[row[0]] = cell(t, row[1])
	}
	if energies["trws + local polish"] >= energies["random"] {
		t.Errorf("polished TRW-S energy %v should beat random %v",
			energies["trws + local polish"], energies["random"])
	}
	if energies["trws + local polish"] >= energies["mono"] {
		t.Errorf("polished TRW-S energy %v should beat mono %v",
			energies["trws + local polish"], energies["mono"])
	}
	if energies["mono"] < energies["greedy-coloring"] {
		t.Errorf("mono energy %v should be the worst (greedy %v)", energies["mono"], energies["greedy-coloring"])
	}
}

func TestFigure4ConstraintsRespected(t *testing.T) {
	table, err := Figure4(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 29 {
		t.Fatalf("figure 4 table has %d rows, want 29 hosts", len(table.Rows))
	}
	// The host-constrained solution must contain the pinned products of C1.
	byHost := make(map[string][]string)
	for _, row := range table.Rows {
		byHost[row[0]] = row
	}
	if !strings.Contains(byHost["z4"][3], "win7") || !strings.Contains(byHost["z4"][3], "mssql14") {
		t.Errorf("z4 host-constrained assignment %q should pin win7 + mssql14", byHost["z4"][3])
	}
	if !strings.Contains(byHost["v1"][3], "ie8") {
		t.Errorf("v1 host-constrained assignment %q should pin ie8", byHost["v1"][3])
	}
	// The product-constrained solution must not pair a Linux OS with IE.
	for host, row := range byHost {
		assignment := row[4]
		if (strings.Contains(assignment, "ubt1404") || strings.Contains(assignment, "deb80")) &&
			strings.Contains(assignment, "ie") {
			t.Errorf("host %s pairs Linux with Internet Explorer under C2: %q", host, assignment)
		}
	}
}

func TestMetricsTableOrdering(t *testing.T) {
	table, err := MetricsTable(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("metrics table has %d rows, want 5", len(table.Rows))
	}
	richness := make(map[string]float64)
	avgEffort := make(map[string]float64)
	for _, row := range table.Rows {
		richness[row[1]] = cell(t, row[2])
		avgEffort[row[1]] = cell(t, row[4])
	}
	if richness["optimal assignment"] <= richness["mono assignment"] {
		t.Errorf("optimal d1 %v should exceed mono %v",
			richness["optimal assignment"], richness["mono assignment"])
	}
	if avgEffort["optimal assignment"] < avgEffort["mono assignment"] {
		t.Errorf("optimal d3 %v should be at least mono %v",
			avgEffort["optimal assignment"], avgEffort["mono assignment"])
	}
}

func TestAdversaryTableShape(t *testing.T) {
	table, err := AdversaryTable(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("adversary table has %d rows, want 3", len(table.Rows))
	}
	optimal := rowByLabel(t, table, "α̂")
	mono := rowByLabel(t, table, "α_m")
	// The full-knowledge attacker (last column) is at least as fast as the
	// blind attacker (first data column) on every assignment.
	for _, row := range [][]string{optimal, mono} {
		if cell(t, row[3]) > cell(t, row[1])+1e-9 {
			t.Errorf("full-knowledge MTTC %v should not exceed blind MTTC %v", cell(t, row[3]), cell(t, row[1]))
		}
	}
	// Diversification should help against the reconnaissance attacker.
	if cell(t, optimal[3]) <= cell(t, mono[3]) {
		t.Errorf("optimal MTTC %v should exceed mono %v against the full-knowledge attacker",
			cell(t, optimal[3]), cell(t, mono[3]))
	}
}

func TestTopologyTableShape(t *testing.T) {
	table, err := TopologyTable(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("topology table has %d rows, want 3", len(table.Rows))
	}
	for _, row := range table.Rows {
		optCost := cell(t, row[5])
		greedyCost := cell(t, row[6])
		monoCost := cell(t, row[7])
		if optCost > greedyCost {
			t.Errorf("%s: optimal cost %v should not exceed greedy %v", row[0], optCost, greedyCost)
		}
		if optCost >= monoCost {
			t.Errorf("%s: optimal cost %v should beat mono %v", row[0], optCost, monoCost)
		}
	}
}

func TestConvergenceTableShape(t *testing.T) {
	table, err := ConvergenceTable(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) == 0 {
		t.Fatal("convergence table has no rows")
	}
	// The TRW-S trace is monotonically non-increasing (best energy so far).
	prev := cell(t, table.Rows[0][1])
	for _, row := range table.Rows[1:] {
		if row[1] == "" {
			break
		}
		cur := cell(t, row[1])
		if cur > prev+1e-9 {
			t.Errorf("TRW-S best-energy trace increased: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestCostTableParetoShape(t *testing.T) {
	table, err := CostTable(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 4 {
		t.Fatalf("cost table has %d rows, want at least 4 sweep points", len(table.Rows))
	}
	firstCost := cell(t, table.Rows[0][1])
	lastCost := cell(t, table.Rows[len(table.Rows)-1][1])
	firstDiv := cell(t, table.Rows[0][3])
	lastDiv := cell(t, table.Rows[len(table.Rows)-1][3])
	if lastCost >= firstCost {
		t.Errorf("heaviest cost weight should reduce deployment cost: %v vs %v", lastCost, firstCost)
	}
	if lastDiv > firstDiv {
		t.Errorf("heaviest cost weight should not increase diversity: %v vs %v", lastDiv, firstDiv)
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bbbb"}}
	table.AddRow("1", "2")
	table.AddNote("note %d", 7)
	out := table.Render()
	for _, want := range []string{"== x — demo ==", "bbbb", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

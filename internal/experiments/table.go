// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI-VIII).  Each experiment returns a Table value that
// renders as text in the same layout as the corresponding paper artefact;
// cmd/divtables prints them and bench_test.go wraps each one in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "table5", "fig1").
	ID string
	// Title is the paper artefact the table reproduces.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows (already formatted as strings).
	Rows [][]string
	// Notes carry free-form commentary (modelling substitutions, reduced
	// sweep sizes, expected shape versus the paper's numbers).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			pad := 2
			if i < len(widths) {
				pad = widths[i] - len(cell) + 2
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config controls experiment sizes.  The zero value is the "quick" profile
// suitable for unit tests and laptop benchmarks; Full switches to the paper's
// parameters.
type Config struct {
	// Full enables the paper-sized scalability sweeps and the 1000-run MTTC
	// simulation.  The quick profile reduces hosts, runs and iterations so
	// that the whole suite finishes in minutes on a laptop.
	Full bool
	// Seed drives every randomised component.
	Seed int64
	// Workers is passed to the parallelisable solver stages.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

func formatFloat(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

func formatSeconds(seconds float64) string {
	return fmt.Sprintf("%.3f", seconds)
}

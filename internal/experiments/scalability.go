package experiments

import (
	"context"
	"fmt"

	"netdiversity/internal/scenario"
)

// scalabilityMatrix describes one scalability sweep as a scenario matrix:
// uniform topology, TRW-S, no attack model — exactly the measurement the
// paper's Tables VII-IX report, but executed through the shared scenario
// pipeline rather than a private loop.
func scalabilityMatrix(cfg Config, name string, hosts, degrees, services []int) scenario.Matrix {
	iters := 20
	if cfg.Full {
		iters = 50
	}
	return scenario.Matrix{
		Name:          name,
		Topologies:    []string{scenario.TopoUniform},
		Hosts:         hosts,
		Degrees:       degrees,
		Services:      services,
		Solvers:       []string{"trws"},
		Attacks:       []string{"none"},
		MaxIterations: iters,
		Seed:          cfg.Seed,
		// Cells run serially (pool of 1) so the per-cell wall-clock stays
		// contention-free; cfg.Workers parallelises inside the solver, as it
		// did before the scenario refactor.
		SolverWorkers: cfg.Workers,
	}
}

// runSweep executes a scalability matrix and indexes the measurements by
// (hosts, degree, services).  Any failed cell aborts the experiment.
func runSweep(cfg Config, name string, hosts, degrees, services []int) (map[[3]int]scenario.Measurement, error) {
	rep, err := scenario.Run(context.Background(), scalabilityMatrix(cfg, name, hosts, degrees, services))
	if err != nil {
		return nil, err
	}
	out := make(map[[3]int]scenario.Measurement, len(rep.Cells))
	for _, c := range rep.Cells {
		if c.Error != "" {
			return nil, fmt.Errorf("experiments: cell %s: %s", c.ID, c.Error)
		}
		out[[3]int{c.Hosts, c.Degree, c.Services}] = c
	}
	return out, nil
}

// TableVII regenerates the "computational time over number of hosts" sweep
// (Table VII): a mid-density and a high-density profile over increasing host
// counts.
func TableVII(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	hostCounts := []int{100, 200, 400}
	profiles := []struct {
		name     string
		degree   int
		services int
	}{
		{"mid-density", 8, 4},
		{"high-density", 16, 6},
	}
	if cfg.Full {
		hostCounts = []int{100, 200, 400, 600, 800, 1000, 2000, 4000, 6000}
		profiles[0].degree, profiles[0].services = 20, 15
		profiles[1].degree, profiles[1].services = 40, 25
	}

	t := &Table{
		ID:      "table7",
		Title:   "Computational time (seconds) for networks of various densities over #hosts",
		Columns: append([]string{"profile", "#deg", "#serv"}, intColumns(hostCounts)...),
	}
	for _, p := range profiles {
		sweep, err := runSweep(cfg, "table7", hostCounts, []int{p.degree}, []int{p.services})
		if err != nil {
			return nil, err
		}
		cells := []string{p.name, fmt.Sprint(p.degree), fmt.Sprint(p.services)}
		for _, hosts := range hostCounts {
			m, ok := sweep[[3]int{hosts, p.degree, p.services}]
			if !ok {
				return nil, fmt.Errorf("experiments: table7 sweep missing cell %d/%d/%d", hosts, p.degree, p.services)
			}
			cells = append(cells, formatSeconds(m.WallMS/1000))
		}
		t.AddRow(cells...)
	}
	addScalabilityNotes(t, cfg)
	return t, nil
}

// TableVIII regenerates the "computational time over degree" sweep
// (Table VIII) for a mid-scale and a large-scale network.
func TableVIII(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	degrees := []int{4, 8, 12, 16}
	profiles := []struct {
		name     string
		hosts    int
		services int
	}{
		{"mid-scale", 200, 4},
		{"large-scale", 600, 5},
	}
	if cfg.Full {
		degrees = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
		profiles[0].hosts, profiles[0].services = 1000, 15
		profiles[1].hosts, profiles[1].services = 6000, 25
	}

	t := &Table{
		ID:      "table8",
		Title:   "Computational time (seconds) for various network sizes over #degree",
		Columns: append([]string{"profile", "#hosts", "#serv"}, intColumns(degrees)...),
	}
	for _, p := range profiles {
		sweep, err := runSweep(cfg, "table8", []int{p.hosts}, degrees, []int{p.services})
		if err != nil {
			return nil, err
		}
		cells := []string{p.name, fmt.Sprint(p.hosts), fmt.Sprint(p.services)}
		for _, deg := range degrees {
			m, ok := sweep[[3]int{p.hosts, deg, p.services}]
			if !ok {
				return nil, fmt.Errorf("experiments: table8 sweep missing cell %d/%d/%d", p.hosts, deg, p.services)
			}
			cells = append(cells, formatSeconds(m.WallMS/1000))
		}
		t.AddRow(cells...)
	}
	addScalabilityNotes(t, cfg)
	return t, nil
}

// TableIX regenerates the "computational time over number of services" sweep
// (Table IX).
func TableIX(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	services := []int{2, 4, 6, 8}
	profiles := []struct {
		name   string
		hosts  int
		degree int
	}{
		{"mid-scale", 200, 8},
		{"large-scale", 600, 12},
	}
	if cfg.Full {
		services = []int{5, 10, 15, 20, 25, 30}
		profiles[0].hosts, profiles[0].degree = 1000, 20
		profiles[1].hosts, profiles[1].degree = 6000, 40
	}

	t := &Table{
		ID:      "table9",
		Title:   "Computational time (seconds) for various network sizes over #services",
		Columns: append([]string{"profile", "#hosts", "#deg"}, intColumns(services)...),
	}
	for _, p := range profiles {
		sweep, err := runSweep(cfg, "table9", []int{p.hosts}, []int{p.degree}, services)
		if err != nil {
			return nil, err
		}
		cells := []string{p.name, fmt.Sprint(p.hosts), fmt.Sprint(p.degree)}
		for _, svc := range services {
			m, ok := sweep[[3]int{p.hosts, p.degree, svc}]
			if !ok {
				return nil, fmt.Errorf("experiments: table9 sweep missing cell %d/%d/%d", p.hosts, p.degree, svc)
			}
			cells = append(cells, formatSeconds(m.WallMS/1000))
		}
		t.AddRow(cells...)
	}
	addScalabilityNotes(t, cfg)
	return t, nil
}

func addScalabilityNotes(t *Table, cfg Config) {
	if cfg.Full {
		t.AddNote("full (paper-sized) sweep; expect seconds to minutes per cell depending on hardware")
	} else {
		t.AddNote("quick profile with reduced hosts/degrees/services; run with -full for the paper-sized sweep")
	}
	t.AddNote("executed through the internal/scenario matrix (uniform topology, trws); cmd/divbench tracks the same cells over time")
	t.AddNote("expected shape: time grows roughly linearly with hosts, edges and services, as in Tables VII-IX")
}

func intColumns(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprint(x)
	}
	return out
}

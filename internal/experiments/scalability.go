package experiments

import (
	"context"
	"fmt"
	"time"

	"netdiversity/internal/core"
	"netdiversity/internal/netgen"
)

// scalabilityRun optimises one randomly generated network and returns the
// wall-clock time spent building and solving the MRF.
func scalabilityRun(cfg Config, hosts, degree, services int) (time.Duration, error) {
	genCfg := netgen.RandomConfig{
		Hosts:              hosts,
		Degree:             degree,
		Services:           services,
		ProductsPerService: 4,
		Seed:               cfg.Seed,
	}
	net, err := netgen.Random(genCfg)
	if err != nil {
		return 0, err
	}
	sim := netgen.SyntheticSimilarity(genCfg, 0.6)
	iters := 20
	if cfg.Full {
		iters = 50
	}
	opt, err := core.NewOptimizer(net, sim, core.Options{
		Workers:       cfg.Workers,
		MaxIterations: iters,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return 0, err
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		return 0, err
	}
	return res.Runtime, nil
}

// TableVII regenerates the "computational time over number of hosts" sweep
// (Table VII): a mid-density and a high-density profile over increasing host
// counts.
func TableVII(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	hostCounts := []int{100, 200, 400}
	profiles := []struct {
		name     string
		degree   int
		services int
	}{
		{"mid-density", 8, 4},
		{"high-density", 16, 6},
	}
	if cfg.Full {
		hostCounts = []int{100, 200, 400, 600, 800, 1000, 2000, 4000, 6000}
		profiles[0].degree, profiles[0].services = 20, 15
		profiles[1].degree, profiles[1].services = 40, 25
	}

	t := &Table{
		ID:      "table7",
		Title:   "Computational time (seconds) for networks of various densities over #hosts",
		Columns: append([]string{"profile", "#deg", "#serv"}, intColumns(hostCounts)...),
	}
	for _, p := range profiles {
		cells := []string{p.name, fmt.Sprint(p.degree), fmt.Sprint(p.services)}
		for _, hosts := range hostCounts {
			d, err := scalabilityRun(cfg, hosts, p.degree, p.services)
			if err != nil {
				return nil, err
			}
			cells = append(cells, formatSeconds(d.Seconds()))
		}
		t.AddRow(cells...)
	}
	addScalabilityNotes(t, cfg)
	return t, nil
}

// TableVIII regenerates the "computational time over degree" sweep
// (Table VIII) for a mid-scale and a large-scale network.
func TableVIII(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	degrees := []int{4, 8, 12, 16}
	profiles := []struct {
		name     string
		hosts    int
		services int
	}{
		{"mid-scale", 200, 4},
		{"large-scale", 600, 5},
	}
	if cfg.Full {
		degrees = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
		profiles[0].hosts, profiles[0].services = 1000, 15
		profiles[1].hosts, profiles[1].services = 6000, 25
	}

	t := &Table{
		ID:      "table8",
		Title:   "Computational time (seconds) for various network sizes over #degree",
		Columns: append([]string{"profile", "#hosts", "#serv"}, intColumns(degrees)...),
	}
	for _, p := range profiles {
		cells := []string{p.name, fmt.Sprint(p.hosts), fmt.Sprint(p.services)}
		for _, deg := range degrees {
			d, err := scalabilityRun(cfg, p.hosts, deg, p.services)
			if err != nil {
				return nil, err
			}
			cells = append(cells, formatSeconds(d.Seconds()))
		}
		t.AddRow(cells...)
	}
	addScalabilityNotes(t, cfg)
	return t, nil
}

// TableIX regenerates the "computational time over number of services" sweep
// (Table IX).
func TableIX(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	services := []int{2, 4, 6, 8}
	profiles := []struct {
		name   string
		hosts  int
		degree int
	}{
		{"mid-scale", 200, 8},
		{"large-scale", 600, 12},
	}
	if cfg.Full {
		services = []int{5, 10, 15, 20, 25, 30}
		profiles[0].hosts, profiles[0].degree = 1000, 20
		profiles[1].hosts, profiles[1].degree = 6000, 40
	}

	t := &Table{
		ID:      "table9",
		Title:   "Computational time (seconds) for various network sizes over #services",
		Columns: append([]string{"profile", "#hosts", "#deg"}, intColumns(services)...),
	}
	for _, p := range profiles {
		cells := []string{p.name, fmt.Sprint(p.hosts), fmt.Sprint(p.degree)}
		for _, svc := range services {
			d, err := scalabilityRun(cfg, p.hosts, p.degree, svc)
			if err != nil {
				return nil, err
			}
			cells = append(cells, formatSeconds(d.Seconds()))
		}
		t.AddRow(cells...)
	}
	addScalabilityNotes(t, cfg)
	return t, nil
}

func addScalabilityNotes(t *Table, cfg Config) {
	if cfg.Full {
		t.AddNote("full (paper-sized) sweep; expect seconds to minutes per cell depending on hardware")
	} else {
		t.AddNote("quick profile with reduced hosts/degrees/services; run with -full for the paper-sized sweep")
	}
	t.AddNote("expected shape: time grows roughly linearly with hosts, edges and services, as in Tables VII-IX")
}

func intColumns(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprint(x)
	}
	return out
}

package experiments

import (
	"context"
	"fmt"

	"netdiversity/internal/attacksim"
	"netdiversity/internal/baseline"
	"netdiversity/internal/bayes"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/core"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// CaseStudyAssignments bundles the five assignments evaluated in Tables V
// and VI: the unconstrained optimum α̂, the host-constrained optimum α̂_C1,
// the product-constrained optimum α̂_C2, a random assignment α_r and the
// homogeneous assignment α_m.
type CaseStudyAssignments struct {
	Network    *netmodel.Network
	Similarity *vulnsim.SimilarityTable
	Optimal    *netmodel.Assignment
	HostConstr *netmodel.Assignment
	ProdConstr *netmodel.Assignment
	Random     *netmodel.Assignment
	Mono       *netmodel.Assignment
	// Energies holds the Eq. 1 objective of every assignment under the
	// unconstrained problem, for reporting.
	Energies map[string]float64
}

// BuildCaseStudy computes all five case-study assignments.
func BuildCaseStudy(cfg Config) (*CaseStudyAssignments, error) {
	cfg = cfg.withDefaults()
	net, err := casestudy.Build()
	if err != nil {
		return nil, err
	}
	sim := casestudy.Similarity()

	optimize := func(cs *netmodel.ConstraintSet) (*netmodel.Assignment, error) {
		opt, err := core.NewOptimizer(net, sim, core.Options{Workers: cfg.Workers, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		if cs != nil {
			if err := opt.SetConstraints(cs); err != nil {
				return nil, err
			}
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			return nil, err
		}
		if len(res.ConstraintViolations) > 0 {
			return nil, fmt.Errorf("experiments: constrained optimum violates constraints: %v",
				res.ConstraintViolations)
		}
		return res.Assignment, nil
	}

	out := &CaseStudyAssignments{Network: net, Similarity: sim, Energies: make(map[string]float64)}
	if out.Optimal, err = optimize(nil); err != nil {
		return nil, err
	}
	if out.HostConstr, err = optimize(casestudy.HostConstraints()); err != nil {
		return nil, err
	}
	if out.ProdConstr, err = optimize(casestudy.ProductConstraints()); err != nil {
		return nil, err
	}
	if out.Random, err = baseline.Random(net, nil, cfg.Seed); err != nil {
		return nil, err
	}
	if out.Mono, err = baseline.Mono(net, nil); err != nil {
		return nil, err
	}

	evalOpt, err := core.NewOptimizer(net, sim, core.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	for name, a := range out.byName() {
		e, err := evalOpt.Energy(a)
		if err != nil {
			return nil, err
		}
		out.Energies[name] = e
	}
	return out, nil
}

func (c *CaseStudyAssignments) byName() map[string]*netmodel.Assignment {
	return map[string]*netmodel.Assignment{
		"optimal":     c.Optimal,
		"host_constr": c.HostConstr,
		"prod_constr": c.ProdConstr,
		"random":      c.Random,
		"mono":        c.Mono,
	}
}

// orderedNames is the presentation order of Table V / VI rows.
var orderedNames = []struct {
	key   string
	label string
	desc  string
}{
	{"optimal", "α̂", "optimal assignment"},
	{"host_constr", "α̂_C1", "host constraints"},
	{"prod_constr", "α̂_C2", "product constraints"},
	{"random", "α_r", "random assignment"},
	{"mono", "α_m", "mono assignment"},
}

// Figure4 renders the three optimal assignments of the case study
// (Fig. 4(a)-(c)) host by host, plus the changes the constraints force
// relative to the unconstrained optimum.
func Figure4(cfg Config) (*Table, error) {
	cs, err := BuildCaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4",
		Title:   "Optimal assignments of products for the case study",
		Columns: []string{"host", "zone", "optimal α̂", "host-constrained α̂_C1", "product-constrained α̂_C2"},
	}
	describe := func(a *netmodel.Assignment, hid netmodel.HostID) string {
		h, _ := cs.Network.Host(hid)
		out := ""
		for i, svc := range h.Services {
			if i > 0 {
				out += " "
			}
			out += string(a.Product(hid, svc))
		}
		return out
	}
	for _, hid := range cs.Network.Hosts() {
		h, _ := cs.Network.Host(hid)
		t.AddRow(string(hid), h.Zone, describe(cs.Optimal, hid), describe(cs.HostConstr, hid), describe(cs.ProdConstr, hid))
	}
	t.AddNote("α̂ vs α̂_C1: %d host/service changes; α̂_C1 vs α̂_C2: %d host/service changes",
		len(cs.Optimal.Diff(cs.HostConstr)), len(cs.HostConstr.Diff(cs.ProdConstr)))
	t.AddNote("objective energies: optimal=%.3f host-constrained=%.3f product-constrained=%.3f",
		cs.Energies["optimal"], cs.Energies["host_constr"], cs.Energies["prod_constr"])
	return t, nil
}

// caseStudyBayesConfig is the Table V attack model: entry c4, target t5,
// three zero-day exploits (OS, browser, database), uniform exploit choice.
func caseStudyBayesConfig() bayes.Config {
	return bayes.Config{
		Entry:           casestudy.EntryCorporate4,
		Target:          casestudy.TargetWinCC,
		ExploitServices: casestudy.AttackServices(),
		Choice:          bayes.ChooseUniform,
		PAvg:            0.2,
	}
}

// TableV regenerates the diversity-metric comparison of the five assignments
// (Table V of the paper).
func TableV(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cs, err := BuildCaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	inference := bayes.InferenceOptions{Samples: 150000, Seed: cfg.Seed}
	if cfg.Full {
		inference.Samples = 500000
	}

	t := &Table{
		ID:      "table5",
		Title:   "Diversity metric d_bn of different assignments (entry c4, target t5)",
		Columns: []string{"label", "description", "logP'(t5)", "logP(t5)", "d_bn"},
	}
	byName := cs.byName()
	for _, row := range orderedNames {
		a := byName[row.key]
		m, err := bayes.Diversity(cs.Network, a, cs.Similarity, caseStudyBayesConfig(), inference)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.label, row.desc,
			formatFloat(m.LogPTargetNoSim, 3), formatFloat(m.LogPTarget, 3), formatFloat(m.Diversity, 5))
	}
	t.AddNote("d_bn = P'(t5)/P(t5); larger is more diverse; paper reports 0.815 / 0.486 / 0.481 / 0.266 / 0.067")
	t.AddNote("absolute probabilities depend on the average zero-day rate P_avg=%.2f; the ordering is the reproduced result", 0.2)
	return t, nil
}

// TableVI regenerates the Mean-Time-To-Compromise simulation of Table VI:
// five entry hosts × four assignments (α̂, α̂_C1, α̂_C2, α_m).
func TableVI(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cs, err := BuildCaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	runs := 200
	if cfg.Full {
		runs = 1000
	}
	entries := casestudy.Entries()

	t := &Table{
		ID:      "table6",
		Title:   "MTTC (in ticks) against different assignments",
		Columns: append([]string{"assignment"}, entryColumns(entries)...),
	}
	rows := []struct {
		key   string
		label string
	}{
		{"optimal", "α̂"},
		{"host_constr", "α̂_C1"},
		{"prod_constr", "α̂_C2"},
		{"mono", "α_m"},
	}
	byName := cs.byName()
	for _, row := range rows {
		a := byName[row.key]
		sim, err := attacksim.New(cs.Network, a, cs.Similarity)
		if err != nil {
			return nil, err
		}
		cells := []string{row.label}
		for _, entry := range entries {
			// Workers only batches the runs over the pool; per-run seeding
			// makes the table identical to a serial campaign.
			res, err := sim.Run(attacksim.Config{
				Entry:           entry,
				Target:          casestudy.TargetWinCC,
				Runs:            runs,
				MaxTicks:        500,
				Strategy:        attacksim.Reconnaissance,
				ExploitServices: casestudy.AttackServices(),
				Seed:            cfg.Seed + int64(len(cells)),
				PAvg:            0.2,
				Workers:         4,
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, formatFloat(res.MTTC, 3))
		}
		t.AddRow(cells...)
	}
	t.AddNote("%d simulation runs per cell (paper: 1000); reconnaissance attacker with one zero-day per service", runs)
	t.AddNote("expected shape: α̂ needs the most ticks from every entry point, α_m the fewest")
	return t, nil
}

func entryColumns(entries []netmodel.HostID) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = "MTTC from " + string(e)
	}
	return out
}

package experiments

import (
	"context"
	"fmt"
	"time"

	"netdiversity/internal/baseline"
	"netdiversity/internal/core"
	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/scenario"
)

// Ablation compares the solvers (TRW-S, loopy BP, ICM, simulated annealing)
// and the non-optimising baselines (greedy colouring, random, mono) on the
// same diversification instance: achieved objective energy, pairwise
// similarity cost and wall-clock time.  This is experiment A1 of DESIGN.md
// and backs the paper's design choice of TRW-S in Section V-C.
func Ablation(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	hosts, degree, services := 120, 8, 3
	if cfg.Full {
		hosts, degree, services = 500, 16, 5
	}
	genCfg := netgen.RandomConfig{
		Hosts:              hosts,
		Degree:             degree,
		Services:           services,
		ProductsPerService: 4,
		Seed:               cfg.Seed,
	}
	net, err := netgen.Random(genCfg)
	if err != nil {
		return nil, err
	}
	sim := netgen.SyntheticSimilarity(genCfg, 0.6)

	t := &Table{
		ID:    "ablation",
		Title: "Solver ablation on one random diversification instance",
		Columns: []string{
			"method", "energy (Eq.1)", "pairwise sim cost", "seconds", "iterations", "converged",
		},
	}

	evalOpt, err := core.NewOptimizer(net, sim, core.Options{})
	if err != nil {
		return nil, err
	}
	addAssignment := func(name string, a *netmodel.Assignment, seconds float64, iters int, converged string) error {
		energy, err := evalOpt.Energy(a)
		if err != nil {
			return err
		}
		pc, err := core.PairwiseSimilarityCost(net, sim, a)
		if err != nil {
			return err
		}
		t.AddRow(name, formatFloat(energy, 3), formatFloat(pc, 3),
			formatSeconds(seconds), fmt.Sprint(iters), converged)
		return nil
	}

	// The solver runs execute through scenario.Exec — the same path the
	// benchmark suites measure — on one shared network instance.
	type solverRun struct {
		name   string
		solver string
		polish bool
	}
	runs := []solverRun{
		{"trws (raw)", "trws", false},
		{"trws + local polish", "trws", true},
		{"bp (raw)", "bp", false},
		{"bp + local polish", "bp", true},
		{"icm", "icm", false},
		{"anneal", "anneal", false},
	}
	for _, r := range runs {
		out, err := scenario.Exec(context.Background(), net, sim, scenario.Cell{
			ID:            "ablation/" + r.name,
			Solver:        r.solver,
			MaxIterations: 40,
			Seed:          cfg.Seed,
			SolverWorkers: cfg.Workers,
			DisablePolish: !r.polish,
		})
		if err != nil {
			return nil, err
		}
		if err := addAssignment(r.name, out.Assignment, out.WallMS/1000,
			out.Iterations, fmt.Sprint(out.Converged)); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	greedy, err := baseline.GreedyColoring(net, sim, nil)
	if err != nil {
		return nil, err
	}
	if err := addAssignment("greedy-coloring", greedy, time.Since(start).Seconds(), 1, "n/a"); err != nil {
		return nil, err
	}
	random, err := baseline.Random(net, nil, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := addAssignment("random", random, 0, 0, "n/a"); err != nil {
		return nil, err
	}
	mono, err := baseline.Mono(net, nil)
	if err != nil {
		return nil, err
	}
	if err := addAssignment("mono", mono, 0, 0, "n/a"); err != nil {
		return nil, err
	}

	t.AddNote("instance: %d hosts, degree %d, %d services, 4 products per service, seed %d",
		hosts, degree, services, cfg.Seed)
	t.AddNote("expected shape: TRW-S with local polish reaches near-minimal energy within a handful of sweeps; simulated annealing can match or edge it out by spending many more iterations; plain loopy BP collapses to a near-homogeneous labeling on tie-heavy instances; mono is the worst")
	return t, nil
}

package experiments

import (
	"fmt"

	"netdiversity/internal/bayes"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// Figure1Variant identifies one of the three panels of the motivational
// example (Fig. 1 of the paper).
type Figure1Variant int

const (
	// Fig1SingleLabel is panel (a): single-label hosts, products assumed to
	// share no vulnerabilities.
	Fig1SingleLabel Figure1Variant = iota + 1
	// Fig1SingleLabelSim is panel (b): single-label hosts with a 0.5
	// vulnerability similarity between the two products.
	Fig1SingleLabelSim
	// Fig1MultiLabel is panel (c): multi-label hosts and an attacker holding
	// two zero-day exploits.
	Fig1MultiLabel
)

// figure1Products used by the motivational example.
const (
	fig1Circle   = "circle"
	fig1Triangle = "triangle"
	fig1Square   = "square"
	fig1SvcMain  = netmodel.ServiceID("svc_main")
	fig1SvcExtra = netmodel.ServiceID("svc_extra")
)

// fig1Similarity builds the two-product similarity table of the example:
// sim(circle, triangle) = crossSim, squares only similar to themselves.
func fig1Similarity(crossSim float64) *vulnsim.SimilarityTable {
	t := vulnsim.NewSimilarityTable([]string{fig1Circle, fig1Triangle, fig1Square})
	_ = t.SetTotal(fig1Circle, 100)
	_ = t.SetTotal(fig1Triangle, 100)
	_ = t.SetTotal(fig1Square, 100)
	_ = t.Set(fig1Circle, fig1Triangle, crossSim, int(crossSim*100))
	return t
}

// fig1Network builds the 8-host network of the motivational example: a
// 4-host attack chain entry -> m1 -> m2 -> target plus four leaf hosts that
// hang off the chain (they do not change the target's compromise probability
// but reproduce the figure's 8-host layout).  The multiLabel flag adds the
// square service to the chain hosts except the target, as in panel (c).
func fig1Network(multiLabel bool) (*netmodel.Network, *netmodel.Assignment, error) {
	n := netmodel.New()
	a := netmodel.NewAssignment()

	addHost := func(id netmodel.HostID, main netmodel.ProductID, square bool) error {
		h := &netmodel.Host{
			ID:       id,
			Zone:     "example",
			Services: []netmodel.ServiceID{fig1SvcMain},
			Choices: map[netmodel.ServiceID][]netmodel.ProductID{
				fig1SvcMain: {fig1Circle, fig1Triangle},
			},
		}
		if square && multiLabel {
			h.Services = append(h.Services, fig1SvcExtra)
			h.Choices[fig1SvcExtra] = []netmodel.ProductID{fig1Square}
		}
		if err := n.AddHost(h); err != nil {
			return err
		}
		a.Set(id, fig1SvcMain, main)
		if square && multiLabel {
			a.Set(id, fig1SvcExtra, fig1Square)
		}
		return nil
	}

	// Attack chain: the diversified single-label assignment alternates the
	// two products so that the exploit (developed for circles) faces a
	// triangle at every step.
	chain := []struct {
		id     netmodel.HostID
		prod   netmodel.ProductID
		square bool
	}{
		{"entry", fig1Circle, true},
		{"m1", fig1Triangle, true},
		{"m2", fig1Circle, true},
		{"target", fig1Triangle, false},
	}
	for _, c := range chain {
		if err := addHost(c.id, c.prod, c.square); err != nil {
			return nil, nil, err
		}
	}
	// Leaf hosts completing the 8-host figure.
	leaves := []struct {
		id     netmodel.HostID
		attach netmodel.HostID
		prod   netmodel.ProductID
	}{
		{"l1", "entry", fig1Triangle},
		{"l2", "m1", fig1Circle},
		{"l3", "m2", fig1Triangle},
		{"l4", "m1", fig1Triangle},
	}
	for _, l := range leaves {
		if err := addHost(l.id, l.prod, false); err != nil {
			return nil, nil, err
		}
	}
	linkPairs := [][2]netmodel.HostID{
		{"entry", "m1"}, {"m1", "m2"}, {"m2", "target"},
		{"l1", "entry"}, {"l2", "m1"}, {"l3", "m2"}, {"l4", "m1"},
	}
	for _, l := range linkPairs {
		if err := n.AddLink(l[0], l[1]); err != nil {
			return nil, nil, err
		}
	}
	return n, a, nil
}

// Figure1Probability computes the probability of the target host being
// compromised for one panel of the motivational example.
func Figure1Probability(variant Figure1Variant) (float64, error) {
	crossSim := 0.0
	multiLabel := false
	switch variant {
	case Fig1SingleLabel:
	case Fig1SingleLabelSim:
		crossSim = 0.5
	case Fig1MultiLabel:
		crossSim = 0.5
		multiLabel = true
	default:
		return 0, fmt.Errorf("experiments: unknown figure 1 variant %d", variant)
	}
	net, assignment, err := fig1Network(multiLabel)
	if err != nil {
		return 0, err
	}
	sim := fig1Similarity(crossSim)
	g, err := bayes.Build(net, assignment, sim, bayes.Config{
		Entry:  "entry",
		Target: "target",
		// A vanishing base rate isolates the pure effect of product
		// similarity, as in the figure.
		PAvg:   1e-9,
		Choice: bayes.ChooseBest,
	})
	if err != nil {
		return 0, err
	}
	return g.TargetProbability(bayes.InferenceOptions{Method: bayes.Exact})
}

// Figure1 regenerates the motivational example: the probability of the
// target being breached under the three modelling refinements
// (0, ≈0.125, ≈0.5 in the paper).
func Figure1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig1",
		Title:   "Motivational example: probability of the target host being breached",
		Columns: []string{"variant", "P(target compromised)", "paper"},
	}
	rows := []struct {
		variant Figure1Variant
		name    string
		paper   string
	}{
		{Fig1SingleLabel, "(a) single-label, no shared vulnerabilities", "0"},
		{Fig1SingleLabelSim, "(b) single-label, similarity 0.5", "~0.125"},
		{Fig1MultiLabel, "(c) multi-label, two zero-day exploits", "~0.5"},
	}
	for _, r := range rows {
		p, err := Figure1Probability(r.variant)
		if err != nil {
			return nil, err
		}
		t.AddRow(r.name, formatFloat(p, 4), r.paper)
	}
	t.AddNote("exact Bayesian inference over the 8-host example; similarity isolated by a vanishing base rate")
	return t, nil
}

package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper artefact.
type Runner func(Config) (*Table, error)

// registry maps experiment IDs to runners.  IDs follow the paper's artefact
// numbering (fig1, fig2, fig4, table2, table3, table5-table9) plus the
// library's own ablation experiment.
func registry() map[string]Runner {
	return map[string]Runner{
		"fig1":     Figure1,
		"fig2":     Figure2,
		"fig4":     Figure4,
		"table2":   TableII,
		"table3":   TableIII,
		"table5":   TableV,
		"table6":   TableVI,
		"table7":   TableVII,
		"table8":   TableVIII,
		"table9":   TableIX,
		"ablation": Ablation,
		// Extensions beyond the paper's own tables (documented in DESIGN.md).
		"metrics":     MetricsTable,
		"adversary":   AdversaryTable,
		"topology":    TopologyTable,
		"convergence": ConvergenceTable,
		"cost":        CostTable,
	}
}

// IDs returns every experiment identifier, sorted.
func IDs() []string {
	reg := registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(cfg)
}

// RunAll executes every experiment in a deterministic order and returns the
// tables.  It stops at the first failure.
func RunAll(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := Run(id, cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

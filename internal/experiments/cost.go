package experiments

import (
	"context"

	"netdiversity/internal/bayes"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/core"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// caseStudyCostModel assigns plausible relative deployment costs to the
// case-study products: staying on the already-licensed legacy products is
// cheap, modern Microsoft products carry licence costs, and migrating to a
// different OS family is the most expensive option (retraining, integration
// testing).  Absolute units are arbitrary; only the relative order matters
// for the Pareto sweep.
func caseStudyCostModel() core.CostModel {
	return core.CostModel{
		DefaultCost: 1,
		Costs: map[netmodel.ProductID]float64{
			// Operating systems.
			vulnsim.ProdWinXP:  0.5, // already deployed, no licence
			vulnsim.ProdWin7:   1.0,
			vulnsim.ProdUbuntu: 3.0, // OS-family migration
			vulnsim.ProdDebian: 3.0,
			// Browsers.
			vulnsim.ProdIE8:     0.5,
			vulnsim.ProdIE10:    1.0,
			vulnsim.ProdChrome:  1.5,
			vulnsim.ProdFirefox: 1.5,
			// Databases.
			vulnsim.ProdMSSQL08:   0.5,
			vulnsim.ProdMSSQL14:   2.0,
			vulnsim.ProdMySQL55:   2.5,
			vulnsim.ProdMariaDB10: 2.5,
		},
	}
}

// CostTable is a library extension in the spirit of Borbor et al. (related
// work [17] of the paper): it sweeps the cost weight λ and reports, for each
// point of the diversity-versus-cost trade-off, the total deployment cost,
// the pairwise similarity cost and the d_bn diversity metric of the resulting
// optimal assignment on the ICS case study.
func CostTable(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	net, err := casestudy.Build()
	if err != nil {
		return nil, err
	}
	sim := casestudy.Similarity()
	model := caseStudyCostModel()
	inference := bayes.InferenceOptions{Samples: 80000, Seed: cfg.Seed}

	t := &Table{
		ID:      "cost",
		Title:   "Diversity vs deployment cost trade-off on the case study (extension)",
		Columns: []string{"cost weight λ", "deployment cost", "pairwise sim cost", "d_bn"},
	}
	weights := []float64{0, 0.02, 0.05, 0.1, 0.25, 1}
	var prevCost float64
	for i, w := range weights {
		opt, err := core.NewOptimizer(net, sim, core.Options{Workers: cfg.Workers, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		if w > 0 {
			if err := opt.SetCostModel(model, w); err != nil {
				return nil, err
			}
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			return nil, err
		}
		deployCost, err := model.TotalCost(net, res.Assignment)
		if err != nil {
			return nil, err
		}
		pairCost, err := core.PairwiseSimilarityCost(net, sim, res.Assignment)
		if err != nil {
			return nil, err
		}
		div, err := bayes.Diversity(net, res.Assignment, sim, caseStudyBayesConfig(), inference)
		if err != nil {
			return nil, err
		}
		t.AddRow(formatFloat(w, 2), formatFloat(deployCost, 1), formatFloat(pairCost, 3), formatFloat(div.Diversity, 5))
		if i > 0 && deployCost > prevCost+1e-6 {
			t.AddNote("warning: deployment cost increased when raising λ from %.2f", weights[i-1])
		}
		prevCost = deployCost
	}
	t.AddNote("cost model: legacy products cheapest, OS-family migrations most expensive (see internal/experiments/cost.go)")
	t.AddNote("expected shape: increasing λ lowers deployment cost and erodes diversity — the cost-constrained diversification trade-off of Borbor et al.")
	return t, nil
}

package experiments

import (
	"netdiversity/internal/adversary"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/metrics"
)

// MetricsTable is a library extension beyond the paper: it evaluates the five
// case-study assignments with the three diversity metrics of Zhang et al.
// (d1 effective richness, d2 least attacking effort, d3 average attacking
// effort), the metrics family the paper's d_bn is derived from.  The expected
// shape matches Table V: the optimal assignment scores highest on every
// metric and the homogeneous assignment lowest.
func MetricsTable(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cs, err := BuildCaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	effortCfg := metrics.EffortConfig{
		Entry:           casestudy.EntryCorporate4,
		Target:          casestudy.TargetWinCC,
		ExploitServices: casestudy.AttackServices(),
		MaxExtraHops:    2,
		MaxPaths:        128,
	}
	t := &Table{
		ID:      "metrics",
		Title:   "Zhang-style diversity metrics of the case-study assignments (extension)",
		Columns: []string{"label", "description", "d1 richness", "d2 least effort", "d3 avg effort"},
	}
	byName := cs.byName()
	for _, row := range orderedNames {
		a := byName[row.key]
		summary, err := metrics.Evaluate(cs.Network, a, cs.Similarity, effortCfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.label, row.desc,
			formatFloat(summary.Richness.Overall, 4),
			formatFloat(summary.LeastEffort, 4),
			formatFloat(summary.AverageEffort, 4))
	}
	t.AddNote("d1: Shannon-effective number of products per host; d2: distinct products on the weakest attack path per hop; d3: likelihood-weighted distinct products to reach t5")
	t.AddNote("expected shape: the optimal assignment dominates on every metric, the mono assignment is dominated")
	return t, nil
}

// AdversaryTable is a library extension implementing the paper's stated
// future work (Section IX): evaluating the diversified network from an
// adversarial perspective, subject to different levels of attacker knowledge
// about the configuration.  It reports the MTTC of the optimal and the
// homogeneous assignment against blind, partial-knowledge and full-knowledge
// attackers entering at c4.
func AdversaryTable(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cs, err := BuildCaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	runs := 200
	if cfg.Full {
		runs = 1000
	}
	t := &Table{
		ID:      "adversary",
		Title:   "MTTC (ticks) from c4 under different attacker knowledge levels (extension)",
		Columns: []string{"assignment", "blind attacker", "partial knowledge", "full knowledge (recon)"},
	}
	rows := []struct {
		key   string
		label string
	}{
		{"optimal", "α̂"},
		{"host_constr", "α̂_C1"},
		{"mono", "α_m"},
	}
	byName := cs.byName()
	for _, row := range rows {
		ev, err := adversary.New(cs.Network, byName[row.key], cs.Similarity)
		if err != nil {
			return nil, err
		}
		results, err := ev.Compare(adversary.Config{
			Entry:           casestudy.EntryCorporate4,
			Target:          casestudy.TargetWinCC,
			Runs:            runs,
			Seed:            cfg.Seed,
			ExploitServices: casestudy.AttackServices(),
			Workers:         4,
		})
		if err != nil {
			return nil, err
		}
		cells := []string{row.label}
		for _, r := range results {
			cells = append(cells, formatFloat(r.MTTC, 3))
		}
		t.AddRow(cells...)
	}
	t.AddNote("%d runs per cell; expected shape: more attacker knowledge lowers MTTC, and diversification helps most against the strongest attacker", runs)
	return t, nil
}

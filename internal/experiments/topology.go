package experiments

import (
	"context"
	"fmt"

	"netdiversity/internal/baseline"
	"netdiversity/internal/core"
	"netdiversity/internal/netgen"
)

// TopologyTable is a library extension: it repeats the optimisation on
// random networks with the same size but different topology families
// (uniform, Barabási–Albert scale-free, Watts–Strogatz small-world) and
// reports the optimisation time plus the pairwise-similarity cost of the
// optimal, greedy-colouring and homogeneous assignments.  It answers a
// question the paper leaves implicit: does the optimisation stay effective
// when connectivity is concentrated in a few hubs or localised in clusters?
func TopologyTable(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	hosts, degree, services := 200, 8, 3
	if cfg.Full {
		hosts, degree, services = 1000, 16, 5
	}
	genCfg := netgen.RandomConfig{
		Hosts:              hosts,
		Degree:             degree,
		Services:           services,
		ProductsPerService: 4,
		Seed:               cfg.Seed,
	}
	sim := netgen.SyntheticSimilarity(genCfg, 0.6)

	t := &Table{
		ID:    "topology",
		Title: "Optimisation across network topologies (extension)",
		Columns: []string{
			"topology", "links", "max degree", "clustering", "seconds",
			"optimal cost", "greedy cost", "mono cost",
		},
	}
	for _, topo := range []netgen.Topology{netgen.TopologyUniform, netgen.TopologyScaleFree, netgen.TopologySmallWorld} {
		net, err := netgen.Generate(genCfg, topo)
		if err != nil {
			return nil, err
		}
		stats := net.Stats()
		opt, err := core.NewOptimizer(net, sim, core.Options{
			Workers:       cfg.Workers,
			MaxIterations: 25,
			Seed:          cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			return nil, err
		}
		optCost, err := core.PairwiseSimilarityCost(net, sim, res.Assignment)
		if err != nil {
			return nil, err
		}
		greedy, err := baseline.GreedyColoring(net, sim, nil)
		if err != nil {
			return nil, err
		}
		greedyCost, err := core.PairwiseSimilarityCost(net, sim, greedy)
		if err != nil {
			return nil, err
		}
		mono, err := baseline.Mono(net, nil)
		if err != nil {
			return nil, err
		}
		monoCost, err := core.PairwiseSimilarityCost(net, sim, mono)
		if err != nil {
			return nil, err
		}
		t.AddRow(topo.String(),
			fmt.Sprint(net.NumLinks()),
			fmt.Sprint(stats.MaxDegree),
			formatFloat(stats.ClusteringCoefficient, 3),
			formatSeconds(res.Runtime.Seconds()),
			formatFloat(optCost, 1),
			formatFloat(greedyCost, 1),
			formatFloat(monoCost, 1))
	}
	t.AddNote("%d hosts, target degree %d, %d services, 4 products per service", hosts, degree, services)
	t.AddNote("expected shape: the optimal assignment beats greedy colouring and mono on every topology; hubs (scale-free) and clustering (small-world) do not break the optimisation")
	return t, nil
}

// ConvergenceTable is a library extension reporting the best-energy trace of
// TRW-S and loopy BP over iterations on the case-study MRF — the convergence
// behaviour Section V-C argues qualitatively when choosing TRW-S.
func ConvergenceTable(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cs, err := BuildCaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "convergence",
		Title:   "Best-energy trace per iteration on the case-study MRF (extension)",
		Columns: []string{"iteration", "trws best energy", "bp best energy"},
	}
	trace := func(solver core.Solver) ([]float64, error) {
		opt, err := core.NewOptimizer(cs.Network, cs.Similarity, core.Options{
			Solver:        solver,
			MaxIterations: 12,
			DisablePolish: true,
			Seed:          cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			return nil, err
		}
		return res.EnergyHistory, nil
	}
	trwsHist, err := trace(core.SolverTRWS)
	if err != nil {
		return nil, err
	}
	bpHist, err := trace(core.SolverBP)
	if err != nil {
		return nil, err
	}
	n := len(trwsHist)
	if len(bpHist) > n {
		n = len(bpHist)
	}
	for i := 0; i < n; i++ {
		tr, bp := "", ""
		if i < len(trwsHist) {
			tr = formatFloat(trwsHist[i], 4)
		}
		if i < len(bpHist) {
			bp = formatFloat(bpHist[i], 4)
		}
		t.AddRow(fmt.Sprint(i+1), tr, bp)
	}
	t.AddNote("raw (unpolished) decoding; TRW-S reaches its best labeling within a few sweeps while loopy BP plateaus higher")
	return t, nil
}

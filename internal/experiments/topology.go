package experiments

import (
	"context"
	"fmt"

	"netdiversity/internal/baseline"
	"netdiversity/internal/core"
	"netdiversity/internal/scenario"
)

// TopologyTable is a library extension: it repeats the optimisation on
// random networks with the same size but different topology families
// (uniform, Barabási–Albert scale-free, Watts–Strogatz small-world) and
// reports the optimisation time plus the pairwise-similarity cost of the
// optimal, greedy-colouring and homogeneous assignments.  It answers a
// question the paper leaves implicit: does the optimisation stay effective
// when connectivity is concentrated in a few hubs or localised in clusters?
// The sweep itself runs through the internal/scenario matrix; only the
// non-optimising baselines are computed here, on the exact network instance
// each cell measured (rebuilt via scenario.BuildNetwork).
func TopologyTable(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	hosts, degree, services := 200, 8, 3
	if cfg.Full {
		hosts, degree, services = 1000, 16, 5
	}
	m := scenario.Matrix{
		Name:          "topology",
		Topologies:    []string{scenario.TopoUniform, scenario.TopoScaleFree, scenario.TopoSmallWorld},
		Hosts:         []int{hosts},
		Degrees:       []int{degree},
		Services:      []int{services},
		Solvers:       []string{"trws"},
		Attacks:       []string{"none"},
		MaxIterations: 25,
		Seed:          cfg.Seed,
		SolverWorkers: cfg.Workers,
	}
	cells, err := scenario.Expand(m)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "topology",
		Title: "Optimisation across network topologies (extension)",
		Columns: []string{
			"topology", "links", "max degree", "clustering", "seconds",
			"optimal cost", "greedy cost", "mono cost",
		},
	}
	for _, cell := range cells {
		// One shared seed across the topology rows: every row must see the
		// same similarity table and host layout, or the cross-topology cost
		// comparison would mix in seed noise (the per-cell derived seeds are
		// for benchmark suites, where cells are never compared to each other).
		cell.Seed = cfg.Seed
		net, sim, err := scenario.BuildNetwork(cell)
		if err != nil {
			return nil, err
		}
		meas, err := scenario.Exec(context.Background(), net, sim, cell)
		if err != nil {
			return nil, fmt.Errorf("experiments: cell %s: %w", cell.ID, err)
		}
		stats := net.Stats()
		greedy, err := baseline.GreedyColoring(net, sim, nil)
		if err != nil {
			return nil, err
		}
		greedyCost, err := core.PairwiseSimilarityCost(net, sim, greedy)
		if err != nil {
			return nil, err
		}
		mono, err := baseline.Mono(net, nil)
		if err != nil {
			return nil, err
		}
		monoCost, err := core.PairwiseSimilarityCost(net, sim, mono)
		if err != nil {
			return nil, err
		}
		t.AddRow(cell.Topology,
			fmt.Sprint(net.NumLinks()),
			fmt.Sprint(stats.MaxDegree),
			formatFloat(stats.ClusteringCoefficient, 3),
			formatSeconds(meas.WallMS/1000),
			formatFloat(meas.PairwiseCost, 1),
			formatFloat(greedyCost, 1),
			formatFloat(monoCost, 1))
	}
	t.AddNote("%d hosts, target degree %d, %d services, 4 products per service", hosts, degree, services)
	t.AddNote("expected shape: the optimal assignment beats greedy colouring and mono on every topology; hubs (scale-free) and clustering (small-world) do not break the optimisation")
	return t, nil
}

// ConvergenceTable is a library extension reporting the best-energy trace of
// TRW-S and loopy BP over iterations on the case-study MRF — the convergence
// behaviour Section V-C argues qualitatively when choosing TRW-S.
func ConvergenceTable(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cs, err := BuildCaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "convergence",
		Title:   "Best-energy trace per iteration on the case-study MRF (extension)",
		Columns: []string{"iteration", "trws best energy", "bp best energy"},
	}
	trace := func(solver string) ([]float64, error) {
		out, err := scenario.Exec(context.Background(), cs.Network, cs.Similarity, scenario.Cell{
			ID:            "convergence/" + solver,
			Solver:        solver,
			MaxIterations: 12,
			Seed:          cfg.Seed,
			DisablePolish: true,
		})
		if err != nil {
			return nil, err
		}
		return out.EnergyHistory, nil
	}
	trwsHist, err := trace("trws")
	if err != nil {
		return nil, err
	}
	bpHist, err := trace("bp")
	if err != nil {
		return nil, err
	}
	n := len(trwsHist)
	if len(bpHist) > n {
		n = len(bpHist)
	}
	for i := 0; i < n; i++ {
		tr, bp := "", ""
		if i < len(trwsHist) {
			tr = formatFloat(trwsHist[i], 4)
		}
		if i < len(bpHist) {
			bp = formatFloat(bpHist[i], 4)
		}
		t.AddRow(fmt.Sprint(i+1), tr, bp)
	}
	t.AddNote("raw (unpolished) decoding; TRW-S reaches its best labeling within a few sweeps while loopy BP plateaus higher")
	return t, nil
}

package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// SchemaVersion identifies the BENCH_<suite>.json layout.  Bump it on any
// incompatible change to Report or Measurement; ReadFile rejects reports
// written by a different version so the CI gate never diffs apples against
// oranges.
const SchemaVersion = 1

// MatrixInfo is the serialisable summary of the matrix a report was produced
// from, normalised (defaults applied) so two runs of the same suite always
// record identical metadata.
type MatrixInfo struct {
	Topologies       []string `json:"topologies"`
	Hosts            []int    `json:"hosts"`
	Degrees          []int    `json:"degrees"`
	Services         []int    `json:"services"`
	Products         int      `json:"products_per_service"`
	Solvers          []string `json:"solvers"`
	Attacks          []string `json:"attacks"`
	Churns           []string `json:"churns,omitempty"`
	MaxIterations    int      `json:"max_iterations"`
	Seed             int64    `json:"seed"`
	TimeoutMS        int64    `json:"timeout_ms,omitempty"`
	Workers          int      `json:"workers"`
	SolverWorkers    int      `json:"solver_workers,omitempty"`
	Parts            int      `json:"parts,omitempty"`
	DisableWarmStart bool     `json:"disable_warm_start,omitempty"`
	Serve            bool     `json:"serve,omitempty"`
	GraphDirect      bool     `json:"graph_direct,omitempty"`
	Slam             bool     `json:"slam,omitempty"`
	SlamTenants      int      `json:"slam_tenants,omitempty"`
	SlamWorkers      int      `json:"slam_workers,omitempty"`
	SlamOps          int      `json:"slam_ops,omitempty"`
	AttackRuns       int      `json:"attack_runs"`
	Repeats          int      `json:"repeats"`
}

// Environment records where a report was produced, for interpreting
// wall-clock numbers across machines.
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Comparable reports whether wall-clock numbers from the two environments
// can be gated against each other: relative tolerance absorbs run-to-run
// noise on one machine, not the systematic speed gap between different
// machines.
func (e Environment) Comparable(o Environment) bool {
	return e.GOOS == o.GOOS && e.GOARCH == o.GOARCH &&
		e.NumCPU == o.NumCPU && e.GOMAXPROCS == o.GOMAXPROCS
}

// Report is the machine-readable result of one suite run.
type Report struct {
	SchemaVersion int           `json:"schema_version"`
	Suite         string        `json:"suite"`
	GeneratedAt   string        `json:"generated_at"`
	Matrix        MatrixInfo    `json:"matrix"`
	Env           Environment   `json:"environment"`
	Cells         []Measurement `json:"cells"`
}

// NewReport initialises a report for a matrix: schema version, suite name,
// timestamp, normalised matrix metadata and the environment.
func NewReport(m Matrix) *Report {
	m = m.withDefaults()
	name := m.Name
	if name == "" {
		name = "adhoc"
	}
	return &Report{
		SchemaVersion: SchemaVersion,
		Suite:         name,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		Matrix: MatrixInfo{
			Topologies:       m.Topologies,
			Hosts:            m.Hosts,
			Degrees:          m.Degrees,
			Services:         m.Services,
			Products:         m.ProductsPerService,
			Solvers:          m.Solvers,
			Attacks:          m.Attacks,
			Churns:           churnInfo(m.Churns),
			MaxIterations:    m.MaxIterations,
			Seed:             m.Seed,
			TimeoutMS:        int64(m.Timeout / time.Millisecond),
			Workers:          m.Workers,
			SolverWorkers:    m.SolverWorkers,
			Parts:            m.Parts,
			DisableWarmStart: m.DisableWarmStart,
			Serve:            m.ServeLatency,
			GraphDirect:      m.GraphDirect,
			Slam:             m.SlamLoad,
			SlamTenants:      slamInfo(m.SlamLoad, m.SlamTenants),
			SlamWorkers:      slamInfo(m.SlamLoad, m.SlamWorkers),
			SlamOps:          slamInfo(m.SlamLoad, m.SlamOps),
			AttackRuns:       m.AttackRuns,
			Repeats:          m.Repeats,
		},
		Env: Environment{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
}

// slamInfo records a slam-phase dimension only when the phase is enabled, so
// matrices without it keep metadata identical to pre-slam reports.
func slamInfo(enabled bool, v int) int {
	if !enabled {
		return 0
	}
	return v
}

// churnInfo normalises the churn axis for report metadata: the default
// {none} axis is recorded as absent so pre-churn reports and new churn-free
// reports carry identical matrix metadata.
func churnInfo(churns []string) []string {
	if len(churns) == 1 && churns[0] == "none" {
		return nil
	}
	return churns
}

// Validate checks the structural invariants of a report: matching schema
// version, a suite name, and non-empty cells with unique IDs.
func (r *Report) Validate() error {
	if r == nil {
		return fmt.Errorf("scenario: nil report")
	}
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("scenario: report schema version %d, this build expects %d", r.SchemaVersion, SchemaVersion)
	}
	if r.Suite == "" {
		return fmt.Errorf("scenario: report has no suite name")
	}
	if len(r.Cells) == 0 {
		return fmt.Errorf("scenario: report has no cells")
	}
	seen := make(map[string]bool, len(r.Cells))
	for i, c := range r.Cells {
		if c.ID == "" {
			return fmt.Errorf("scenario: cell %d has no ID", i)
		}
		if seen[c.ID] {
			return fmt.Errorf("scenario: duplicate cell ID %q", c.ID)
		}
		seen[c.ID] = true
	}
	return nil
}

// Failed returns the cells that did not complete (timeout or error).
func (r *Report) Failed() []Measurement {
	var out []Measurement
	for _, c := range r.Cells {
		if c.Error != "" {
			out = append(out, c)
		}
	}
	return out
}

// Cell returns the measurement with the given ID.
func (r *Report) Cell(id string) (Measurement, bool) {
	for _, c := range r.Cells {
		if c.ID == id {
			return c, true
		}
	}
	return Measurement{}, false
}

// WriteFile writes the report as indented JSON (trailing newline included so
// the file is diff- and editor-friendly when checked into the repo).
func (r *Report) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("scenario: parsing %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return &r, nil
}

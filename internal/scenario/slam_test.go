package scenario

import (
	"context"
	"testing"
	"time"
)

// TestSlamCell runs one slam-load cell end to end: the closed-loop
// multi-tenant run against an in-process divd must populate every slam_*
// field of the measurement with a clean error count.
func TestSlamCell(t *testing.T) {
	cells, err := Expand(Matrix{
		Name:          "slam-test",
		Hosts:         []int{12},
		Degrees:       []int{4},
		Services:      []int{2},
		Solvers:       []string{"icm"},
		Attacks:       []string{"none"},
		SlamLoad:      true,
		SlamTenants:   2,
		SlamWorkers:   2,
		SlamOps:       40,
		MaxIterations: 10,
		Seed:          3,
		Timeout:       time.Minute,
		AttackRuns:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || !cells[0].Slam {
		t.Fatalf("expansion: %+v", cells)
	}
	net, sim, err := BuildNetwork(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	out, err := Exec(context.Background(), net, sim, cells[0])
	if err != nil {
		t.Fatal(err)
	}
	m := out.Measurement
	if m.SlamTenants != 2 || m.SlamWorkers != 2 || m.SlamOps != 40 {
		t.Fatalf("slam shape not recorded: %+v", m)
	}
	if m.SlamErrors != 0 {
		t.Fatalf("slam run had %d errors", m.SlamErrors)
	}
	if m.SlamRPS <= 0 || m.SlamSetupMS <= 0 {
		t.Fatalf("slam throughput fields not populated: %+v", m)
	}
	if m.SlamReadP99MS <= 0 || m.SlamDeltaP99MS <= 0 || m.SlamP999MS <= 0 {
		t.Fatalf("slam latency fields not populated: %+v", m)
	}
	if m.SlamReadP50MS > m.SlamReadP99MS || m.SlamDeltaP50MS > m.SlamDeltaP99MS {
		t.Fatalf("slam quantiles out of order: %+v", m)
	}
}

// TestSlamMatrixDefaults pins the slam defaults and metadata so slam
// baselines are never diffed against non-slam runs of the same axes.
func TestSlamMatrixDefaults(t *testing.T) {
	m := Matrix{Name: "slam", SlamLoad: true}.withDefaults()
	if m.SlamTenants != 6 || m.SlamWorkers != 4 || m.SlamOps != 400 {
		t.Fatalf("slam defaults: %+v", m)
	}
	rep := NewReport(Matrix{Name: "slam", SlamLoad: true})
	if !rep.Matrix.Slam || rep.Matrix.SlamTenants != 6 || rep.Matrix.SlamWorkers != 4 || rep.Matrix.SlamOps != 400 {
		t.Fatalf("slam metadata: %+v", rep.Matrix)
	}
	rep = NewReport(Matrix{Name: "quick"})
	if rep.Matrix.Slam || rep.Matrix.SlamTenants != 0 {
		t.Fatalf("slam metadata set on a non-slam matrix: %+v", rep.Matrix)
	}
}

// TestSlamProfileExpansion pins the profile axis: the base profile keeps
// the historical cell ID and the matrix's shape, the contended profile gets
// its own suffixed ID (hence its own derived seed), the fixed oversubscribed
// shape and the delta-heavy mix.
func TestSlamProfileExpansion(t *testing.T) {
	cells, err := Expand(Matrix{
		Name:         "slam",
		Hosts:        []int{50},
		Solvers:      []string{"trws"},
		Attacks:      []string{"none"},
		SlamLoad:     true,
		SlamProfiles: []string{SlamProfileBase, SlamProfileContended},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(cells))
	}
	base, cont := cells[0], cells[1]
	if base.ID != "uniform/h50/d8/s3/trws/none" {
		t.Fatalf("base profile changed the historical cell ID: %q", base.ID)
	}
	if base.SlamTenants != 6 || base.SlamWorkers != 4 || base.SlamOps != 400 || base.SlamMix != "" {
		t.Fatalf("base shape: %+v", base)
	}
	if cont.ID != "uniform/h50/d8/s3/trws/none/slam-contended" {
		t.Fatalf("contended cell ID: %q", cont.ID)
	}
	if cont.SlamWorkers <= cont.SlamTenants {
		t.Fatalf("contended shape must oversubscribe the writer slots: %d workers, %d tenants",
			cont.SlamWorkers, cont.SlamTenants)
	}
	if cont.SlamMix == "" {
		t.Fatal("contended profile must set a delta-heavy mix")
	}
	if cont.Seed == base.Seed {
		t.Fatal("profiles must derive distinct cell seeds")
	}
	if _, err := Expand(Matrix{
		Name: "slam", SlamLoad: true, SlamProfiles: []string{"bogus"},
	}); err == nil {
		t.Fatal("unknown slam profile accepted")
	}
}

// TestSlamReplicaProfile pins the replica profile's expansion and runs its
// cell end to end: a primary/follower pair serves the load with the follower
// answering reads, and the measurement comes back with a clean error count —
// the replica-read path is gated by the same SLO machinery as the single-node
// cells.
func TestSlamReplicaProfile(t *testing.T) {
	cells, err := Expand(Matrix{
		Name:          "slam",
		Hosts:         []int{12},
		Degrees:       []int{4},
		Services:      []int{2},
		Solvers:       []string{"icm"},
		Attacks:       []string{"none"},
		SlamLoad:      true,
		SlamProfiles:  []string{SlamProfileReplica},
		MaxIterations: 10,
		Seed:          5,
		Timeout:       time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("expected 1 cell, got %d", len(cells))
	}
	c := cells[0]
	if c.ID != "uniform/h12/d4/s2/icm/none/slam-replica" {
		t.Fatalf("replica cell ID: %q", c.ID)
	}
	if !c.SlamReplica || c.SlamMix == "" {
		t.Fatalf("replica shape not resolved: %+v", c)
	}
	// Shrink the fixed shape for the test run; the profile's production
	// shape is pinned above, the execution path is what this covers.
	c.SlamTenants, c.SlamWorkers, c.SlamOps = 2, 2, 40
	net, sim, err := BuildNetwork(c)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Exec(context.Background(), net, sim, c)
	if err != nil {
		t.Fatal(err)
	}
	m := out.Measurement
	if m.SlamProfile != SlamProfileReplica {
		t.Fatalf("profile not recorded: %+v", m)
	}
	if m.SlamErrors != 0 {
		t.Fatalf("replica slam run had %d errors", m.SlamErrors)
	}
	if m.SlamReadP99MS <= 0 || m.SlamDeltaP99MS <= 0 {
		t.Fatalf("replica latency fields not populated: %+v", m)
	}
}

// TestSlamGraphDirectRejected verifies the slam phase cannot be combined with
// graph-direct matrices: those cells have no network model to serve.
func TestSlamGraphDirectRejected(t *testing.T) {
	_, err := Expand(Matrix{
		Name:        "bad",
		Hosts:       []int{100},
		Solvers:     []string{"trws"},
		Attacks:     []string{"none"},
		GraphDirect: true,
		SlamLoad:    true,
	})
	if err == nil {
		t.Fatal("graph-direct + slam accepted")
	}
}

// TestCompareGatesSlamMetrics verifies slam cells regress on their own
// load-phase metrics — p99 under contention or a dirty error count — even
// when the library-level solve wall-clock is unchanged.
func TestCompareGatesSlamMetrics(t *testing.T) {
	base := &Report{SchemaVersion: SchemaVersion, Suite: "slam", Cells: []Measurement{
		{ID: "s1", WallMS: 50, SlamOps: 400, SlamReadP99MS: 20, SlamDeltaP99MS: 60},
		{ID: "s2", WallMS: 50, SlamOps: 400, SlamReadP99MS: 20, SlamDeltaP99MS: 60},
		{ID: "s3", WallMS: 50, SlamOps: 400, SlamReadP99MS: 20, SlamDeltaP99MS: 60},
		{ID: "s4", WallMS: 50, SlamOps: 400, SlamReadP99MS: 20, SlamDeltaP99MS: 60},
	}}
	cur := &Report{SchemaVersion: SchemaVersion, Suite: "slam", Cells: []Measurement{
		// s1: read p99 tripled under load, cold solve unchanged.
		{ID: "s1", WallMS: 50, SlamOps: 400, SlamReadP99MS: 60, SlamDeltaP99MS: 60},
		// s2: delta p99 doubled.
		{ID: "s2", WallMS: 50, SlamOps: 400, SlamReadP99MS: 20, SlamDeltaP99MS: 120},
		// s3: errors appeared where the baseline was clean.
		{ID: "s3", WallMS: 50, SlamOps: 400, SlamErrors: 3, SlamReadP99MS: 20, SlamDeltaP99MS: 60},
		// s4: within tolerance on everything.
		{ID: "s4", WallMS: 50, SlamOps: 400, SlamReadP99MS: 21, SlamDeltaP99MS: 62},
	}}
	d := Compare(base, cur, DiffOptions{})
	verdicts := map[string]Verdict{}
	notes := map[string]string{}
	for _, c := range d.Cells {
		verdicts[c.ID] = c.Verdict
		notes[c.ID] = c.SlamNote
	}
	if verdicts["s1"] != VerdictRegression || notes["s1"] == "" {
		t.Fatalf("read-p99 collapse not gated: %v %q", verdicts["s1"], notes["s1"])
	}
	if verdicts["s2"] != VerdictRegression || notes["s2"] == "" {
		t.Fatalf("delta-p99 collapse not gated: %v %q", verdicts["s2"], notes["s2"])
	}
	if verdicts["s3"] != VerdictRegression || notes["s3"] == "" {
		t.Fatalf("error appearance not gated: %v %q", verdicts["s3"], notes["s3"])
	}
	if verdicts["s4"] != VerdictOK {
		t.Fatalf("in-tolerance slam cell flagged: %v (%q)", verdicts["s4"], notes["s4"])
	}
	if !d.HasRegressions() {
		t.Fatal("diff reports no regressions")
	}
}

package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the diff golden file")

// diffFixtures builds a baseline and a current report exercising every
// verdict: ok, regression, improvement, error, new and missing, plus a
// sub-floor change that must not trip the gate.
func diffFixtures() (*Report, *Report) {
	report := func(cells []Measurement) *Report {
		return &Report{
			SchemaVersion: SchemaVersion,
			Suite:         "quick",
			GeneratedAt:   "2026-07-28T00:00:00Z",
			Cells:         cells,
		}
	}
	baseline := report([]Measurement{
		{ID: "uniform/h50/d6/s2/trws/recon", WallMS: 100, Energy: 10},
		{ID: "uniform/h200/d6/s2/trws/recon", WallMS: 400, Energy: 40},
		{ID: "zoned/h200/d6/s2/bp/recon", WallMS: 300, Energy: 30},
		{ID: "zoned/h50/d6/s2/icm/recon", WallMS: 10, Energy: 5},
		{ID: "uniform/h200/d6/s2/anneal/recon", WallMS: 250, Energy: 25},
		{ID: "zoned/h200/d6/s2/anneal/recon", WallMS: 150, Energy: 15},
		{ID: "uniform/h10000/d8/s3/trws/none", WallMS: 2000, Energy: 200},
	})
	current := report([]Measurement{
		{ID: "uniform/h50/d6/s2/trws/recon", WallMS: 104, Energy: 10},          // ok: +4%
		{ID: "uniform/h200/d6/s2/trws/recon", WallMS: 800, Energy: 40},         // regression: 2x
		{ID: "zoned/h200/d6/s2/bp/recon", WallMS: 150, Energy: 29.5},           // improvement: 2x faster
		{ID: "zoned/h50/d6/s2/icm/recon", WallMS: 18, Energy: 5},               // ok: +80% but below the 10ms floor
		{ID: "uniform/h200/d6/s2/anneal/recon", Error: "solver panicked"},      // error
		{ID: "uniform/h10000/d8/s3/trws/none", WallMS: 180000, TimedOut: true}, // timed_out: never gates
		{ID: "uniform/h50/d6/s2/bp/recon", WallMS: 90, Energy: 9},              // new
	})
	return baseline, current
}

func TestCompareVerdicts(t *testing.T) {
	baseline, current := diffFixtures()
	d := Compare(baseline, current, DiffOptions{})
	want := map[string]Verdict{
		"uniform/h50/d6/s2/trws/recon":    VerdictOK,
		"uniform/h200/d6/s2/trws/recon":   VerdictRegression,
		"zoned/h200/d6/s2/bp/recon":       VerdictImprovement,
		"zoned/h50/d6/s2/icm/recon":       VerdictOK,
		"uniform/h200/d6/s2/anneal/recon": VerdictError,
		"uniform/h10000/d8/s3/trws/none":  VerdictTimeout,
		"uniform/h50/d6/s2/bp/recon":      VerdictNew,
		"zoned/h200/d6/s2/anneal/recon":   VerdictMissing,
	}
	if len(d.Cells) != len(want) {
		t.Fatalf("diff has %d cells, want %d", len(d.Cells), len(want))
	}
	for _, c := range d.Cells {
		if c.Verdict != want[c.ID] {
			t.Errorf("cell %s: verdict %s, want %s", c.ID, c.Verdict, want[c.ID])
		}
	}
	if !d.HasRegressions() {
		t.Error("diff with a regression and an errored cell should report regressions")
	}
}

func TestCompareDoctoredFasterBaseline(t *testing.T) {
	// The acceptance scenario of the CI gate: a baseline doctored to claim a
	// cell ran 2x faster must register as a regression.
	baseline, _ := diffFixtures()
	current := &Report{
		SchemaVersion: SchemaVersion,
		Suite:         "quick",
		Cells: []Measurement{
			{ID: "uniform/h200/d6/s2/trws/recon", WallMS: 800, Energy: 40},
		},
	}
	d := Compare(baseline, current, DiffOptions{Tolerance: 0.15})
	if !d.HasRegressions() {
		t.Fatal("a cell twice as slow as the baseline must regress at 15% tolerance")
	}
}

func TestCompareErroredBaselineCellNeverGates(t *testing.T) {
	// A baseline cell that itself failed has no usable timing: a healthy
	// current run must not be classified by the garbage numbers (neither as
	// an improvement against a timed-out 60s wall nor as a regression
	// against an early-abort 0.1ms wall).
	baseline := &Report{
		SchemaVersion: SchemaVersion,
		Suite:         "quick",
		Cells: []Measurement{
			{ID: "a", WallMS: 60000, Error: "context deadline exceeded", TimedOut: true},
			{ID: "b", WallMS: 0.1, Error: "boom"},
			{ID: "c", WallMS: 60000, TimedOut: true}, // timeout marker, no error
		},
	}
	current := &Report{
		SchemaVersion: SchemaVersion,
		Suite:         "quick",
		Cells: []Measurement{
			{ID: "a", WallMS: 50},
			{ID: "b", WallMS: 50},
			{ID: "c", WallMS: 50},
		},
	}
	d := Compare(baseline, current, DiffOptions{})
	if d.HasRegressions() {
		t.Error("errored baseline cells must not gate the current run")
	}
	for _, c := range d.Cells {
		if c.Verdict != VerdictOK {
			t.Errorf("cell %s: verdict %s, want ok", c.ID, c.Verdict)
		}
	}
}

func TestCompareWithinToleranceClean(t *testing.T) {
	baseline, _ := diffFixtures()
	d := Compare(baseline, baseline, DiffOptions{})
	if d.HasRegressions() {
		t.Error("comparing a report against itself should never regress")
	}
	for _, c := range d.Cells {
		if c.Verdict != VerdictOK {
			t.Errorf("cell %s: verdict %s, want ok", c.ID, c.Verdict)
		}
	}
}

// TestDiffRenderGolden pins the diff's text layout so the CI log format only
// changes deliberately (refresh with go test ./internal/scenario -run Golden
// -update-golden).
func TestDiffRenderGolden(t *testing.T) {
	baseline, current := diffFixtures()
	got := Compare(baseline, current, DiffOptions{}).Render()
	golden := filepath.Join("testdata", "diff_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("diff rendering drifted from the golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCompareGatesMCMetrics verifies that Monte-Carlo attack cells regress on
// the engine's own throughput/allocation metrics even when the solve
// wall-clock is unchanged.
func TestCompareGatesMCMetrics(t *testing.T) {
	base := &Report{SchemaVersion: SchemaVersion, Suite: "quick", Cells: []Measurement{
		{ID: "m1", WallMS: 50, MCRunsPerSec: 100000, MCAllocPerRun: 2000},
		{ID: "m2", WallMS: 50, MCRunsPerSec: 100000, MCAllocPerRun: 2000},
		{ID: "m3", WallMS: 50, MCRunsPerSec: 100000, MCAllocPerRun: 2000},
		{ID: "m4", WallMS: 50, MCRunsPerSec: 100000, MCAllocPerRun: 2000},
	}}
	cur := &Report{SchemaVersion: SchemaVersion, Suite: "quick", Cells: []Measurement{
		// m1: throughput collapsed to a third.
		{ID: "m1", WallMS: 50, MCRunsPerSec: 33000, MCAllocPerRun: 2000},
		// m2: per-run allocation grew 5x past both the slack and tolerance.
		{ID: "m2", WallMS: 50, MCRunsPerSec: 100000, MCAllocPerRun: 10000},
		// m3: throughput jitter well inside the slack.
		{ID: "m3", WallMS: 50, MCRunsPerSec: 70000, MCAllocPerRun: 2100},
		// m4: allocation delta above tolerance but under the absolute slack.
		{ID: "m4", WallMS: 50, MCRunsPerSec: 100000, MCAllocPerRun: 3000},
	}}
	d := Compare(base, cur, DiffOptions{})
	verdicts := map[string]Verdict{}
	notes := map[string]string{}
	for _, c := range d.Cells {
		verdicts[c.ID] = c.Verdict
		notes[c.ID] = c.MCNote
	}
	if verdicts["m1"] != VerdictRegression || notes["m1"] == "" {
		t.Fatalf("throughput collapse not gated: %v %q", verdicts["m1"], notes["m1"])
	}
	if verdicts["m2"] != VerdictRegression || notes["m2"] == "" {
		t.Fatalf("allocation creep not gated: %v %q", verdicts["m2"], notes["m2"])
	}
	if verdicts["m3"] != VerdictOK {
		t.Fatalf("in-slack throughput jitter flagged: %v (%q)", verdicts["m3"], notes["m3"])
	}
	if verdicts["m4"] != VerdictOK {
		t.Fatalf("sub-slack allocation delta flagged: %v (%q)", verdicts["m4"], notes["m4"])
	}
	if !d.HasRegressions() {
		t.Fatal("diff reports no regressions")
	}
}

// TestCompareGatesChurnMetrics verifies that churn cells regress on their own
// incremental metrics even when the initial-solve wall-clock is unchanged.
func TestCompareGatesChurnMetrics(t *testing.T) {
	base := &Report{SchemaVersion: SchemaVersion, Suite: "churn", Cells: []Measurement{
		{ID: "c1", WallMS: 50, ChurnSteps: 5, ChurnIncrementalMS: 40, ChurnEnergyGapPct: -0.5},
		{ID: "c2", WallMS: 50, ChurnSteps: 5, ChurnIncrementalMS: 40, ChurnEnergyGapPct: -0.5},
		{ID: "c3", WallMS: 50, ChurnSteps: 5, ChurnIncrementalMS: 40, ChurnEnergyGapPct: -0.5},
	}}
	cur := &Report{SchemaVersion: SchemaVersion, Suite: "churn", Cells: []Measurement{
		// c1: incremental path 3x slower, cold solve unchanged.
		{ID: "c1", WallMS: 50, ChurnSteps: 5, ChurnIncrementalMS: 120, ChurnEnergyGapPct: -0.5},
		// c2: quality slide beyond the slack.
		{ID: "c2", WallMS: 50, ChurnSteps: 5, ChurnIncrementalMS: 40, ChurnEnergyGapPct: 1.2},
		// c3: within tolerance on both.
		{ID: "c3", WallMS: 50, ChurnSteps: 5, ChurnIncrementalMS: 43, ChurnEnergyGapPct: -0.4},
	}}
	d := Compare(base, cur, DiffOptions{})
	verdicts := map[string]Verdict{}
	notes := map[string]string{}
	for _, c := range d.Cells {
		verdicts[c.ID] = c.Verdict
		notes[c.ID] = c.ChurnNote
	}
	if verdicts["c1"] != VerdictRegression || notes["c1"] == "" {
		t.Fatalf("incremental slowdown not gated: %v %q", verdicts["c1"], notes["c1"])
	}
	if verdicts["c2"] != VerdictRegression || notes["c2"] == "" {
		t.Fatalf("energy-gap slide not gated: %v %q", verdicts["c2"], notes["c2"])
	}
	if verdicts["c3"] != VerdictOK {
		t.Fatalf("in-tolerance churn cell flagged: %v", verdicts["c3"])
	}
	if !d.HasRegressions() {
		t.Fatal("diff reports no regressions")
	}
}

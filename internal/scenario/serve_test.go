package scenario

import (
	"context"
	"testing"
	"time"
)

// TestServeCell runs one serve-latency cell end to end: the in-process divd
// round trip must populate every serve_* field of the measurement.
func TestServeCell(t *testing.T) {
	cells, err := Expand(Matrix{
		Name:          "serve-test",
		Hosts:         []int{30},
		Degrees:       []int{4},
		Services:      []int{2},
		Solvers:       []string{"icm"},
		Attacks:       []string{"none"},
		ServeLatency:  true,
		MaxIterations: 10,
		Seed:          3,
		Timeout:       time.Minute,
		AttackRuns:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || !cells[0].Serve {
		t.Fatalf("expansion: %+v", cells)
	}
	net, sim, err := BuildNetwork(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	out, err := Exec(context.Background(), net, sim, cells[0])
	if err != nil {
		t.Fatal(err)
	}
	m := out.Measurement
	if m.ServeCreateMS <= 0 || m.ServeDeltaMS <= 0 || m.ServeAssessMS <= 0 || m.ServeReadsPerSec <= 0 {
		t.Fatalf("serve fields not populated: %+v", m)
	}
	// The server solved the same instance the cell solved locally: same
	// spec, similarity, solver, seed and iteration budget.
	if m.Energy == 0 {
		t.Fatalf("cell energy missing: %+v", m)
	}
}

// TestServeMatrixMetadata pins the serve flag into report metadata so serve
// baselines are never diffed against non-serve runs of the same axes.
func TestServeMatrixMetadata(t *testing.T) {
	rep := NewReport(Matrix{Name: "serve", ServeLatency: true})
	if !rep.Matrix.Serve {
		t.Fatal("serve flag missing from matrix metadata")
	}
	rep = NewReport(Matrix{Name: "quick"})
	if rep.Matrix.Serve {
		t.Fatal("serve flag set on a non-serve matrix")
	}
}

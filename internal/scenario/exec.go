package scenario

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"time"

	"netdiversity/internal/core"
	"netdiversity/internal/metrics"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// Measurement is the machine-readable result of one cell: everything a
// baseline diff or a paper table needs, and nothing that fails to serialise.
type Measurement struct {
	ID       string `json:"id"`
	Topology string `json:"topology,omitempty"`
	Hosts    int    `json:"hosts"`
	Degree   int    `json:"degree,omitempty"`
	Services int    `json:"services,omitempty"`
	Solver   string `json:"solver"`
	Attack   string `json:"attack"`
	Seed     int64  `json:"seed"`

	// Energy is the achieved objective (Eq. 1); PairwiseCost the pairwise
	// similarity part of it (Eq. 3); Richness the d1 diversity metric of the
	// decoded assignment.
	Energy       float64 `json:"energy"`
	PairwiseCost float64 `json:"pairwise_cost"`
	Richness     float64 `json:"richness"`
	// MTTC and PCompromise report the attack-model evaluation (zero when the
	// attack model is "none").
	MTTC        float64 `json:"mttc,omitempty"`
	PCompromise float64 `json:"p_compromise,omitempty"`
	// MCRunsPerSec and MCAllocPerRun report the Monte-Carlo attack engine's
	// throughput and per-run heap allocation (present only on the adv-*
	// attack models, which run the compiled batched simulator; the analytic
	// models have no Monte-Carlo phase).  Allocation is approximate when
	// cells run concurrently.
	MCRunsPerSec  float64 `json:"mc_runs_per_sec,omitempty"`
	MCAllocPerRun uint64  `json:"mc_alloc_per_run,omitempty"`

	// Iterations/Converged/Nodes/Edges describe the solve.
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
	Nodes      int  `json:"nodes"`
	Edges      int  `json:"edges"`

	// WallMS is the wall-clock of one solve in milliseconds (minimum over
	// Repeats); AllocObjects/AllocBytes the heap allocations of one solve
	// (mean over Repeats, approximate when cells run concurrently).
	WallMS       float64 `json:"wall_ms"`
	AllocObjects uint64  `json:"alloc_objects"`
	AllocBytes   uint64  `json:"alloc_bytes"`

	// Churn fields (present only on churn cells): the incremental engine's
	// delta stream replay versus a from-scratch re-solve after every step.
	// ChurnSteps counts the replayed deltas; ChurnIncrementalMS and
	// ChurnFullMS are the summed wall-clocks of the two paths;
	// ChurnSpeedup = ChurnFullMS / ChurnIncrementalMS; ChurnEnergyGapPct is
	// the worst per-step energy gap of incremental over full in percent
	// (negative when the incremental path won); ChurnChangedFrac is the mean
	// fraction of surviving hosts whose assignment changed per step
	// (assignment stability).
	Churn              string  `json:"churn,omitempty"`
	ChurnSteps         int     `json:"churn_steps,omitempty"`
	ChurnIncrementalMS float64 `json:"churn_incremental_ms,omitempty"`
	ChurnFullMS        float64 `json:"churn_full_ms,omitempty"`
	ChurnSpeedup       float64 `json:"churn_speedup,omitempty"`
	ChurnEnergyGapPct  float64 `json:"churn_energy_gap_pct,omitempty"`
	ChurnChangedFrac   float64 `json:"churn_changed_frac,omitempty"`

	// Serve fields (present only on serve-latency cells): the cell's network
	// driven end-to-end through an in-process divd instance over loopback
	// HTTP.  ServeCreateMS is the POST /v1/networks latency (spec decode +
	// cold solve); ServeDeltaMS the mean POST .../deltas latency (delta
	// validation + incremental re-optimisation) over the cell's delta
	// stream; ServeAssessMS the POST .../assess latency (campaign compile +
	// Monte-Carlo batch); ServeReadsPerSec the sequential GET .../assignment
	// throughput (lock-free snapshot reads).
	ServeCreateMS    float64 `json:"serve_create_ms,omitempty"`
	ServeDeltaMS     float64 `json:"serve_delta_ms,omitempty"`
	ServeAssessMS    float64 `json:"serve_assess_ms,omitempty"`
	ServeReadsPerSec float64 `json:"serve_reads_per_sec,omitempty"`

	// Slam fields (present only on slam-load cells): a closed-loop
	// multi-tenant load run (internal/slam) against an in-process divd —
	// SlamTenants sessions of the cell's network shape under SlamWorkers
	// concurrent workers for SlamOps completed requests of the default
	// operation mix.  SlamErrors counts non-2xx/transport outcomes (zero on
	// a healthy run); SlamRPS is the achieved successful-request throughput;
	// SlamSetupMS the untimed tenant-creation phase; the quantiles are
	// per-operation latencies under contention, from merged worker-count-
	// invariant histograms: SlamReadP50/P99MS the lock-free snapshot read,
	// SlamDeltaP50/P99MS the incremental re-optimisation path, SlamP999MS
	// the tail over all operations.
	// SlamProfile names the load shape ("base" cells omit it for baseline
	// continuity); SlamAllocPerOp/SlamGCCount/SlamMaxPauseMS report the
	// in-process heap pressure of the measured phase (bytes allocated per
	// completed request, GC cycles, longest pause), so serve-path
	// allocation regressions gate alongside latency.
	SlamTenants    int     `json:"slam_tenants,omitempty"`
	SlamWorkers    int     `json:"slam_workers,omitempty"`
	SlamOps        int64   `json:"slam_ops,omitempty"`
	SlamProfile    string  `json:"slam_profile,omitempty"`
	SlamErrors     int64   `json:"slam_errors,omitempty"`
	SlamRPS        float64 `json:"slam_rps,omitempty"`
	SlamSetupMS    float64 `json:"slam_setup_ms,omitempty"`
	SlamReadP50MS  float64 `json:"slam_read_p50_ms,omitempty"`
	SlamReadP99MS  float64 `json:"slam_read_p99_ms,omitempty"`
	SlamDeltaP50MS float64 `json:"slam_delta_p50_ms,omitempty"`
	SlamDeltaP99MS float64 `json:"slam_delta_p99_ms,omitempty"`
	SlamP999MS     float64 `json:"slam_p999_ms,omitempty"`
	SlamAllocPerOp float64 `json:"slam_alloc_per_op,omitempty"`
	SlamGCCount    uint32  `json:"slam_gc_count,omitempty"`
	SlamMaxPauseMS float64 `json:"slam_max_pause_ms,omitempty"`

	// Scale fields (present only on graph-direct multilevel cells):
	// CoarsenMS is the wall-clock of the hierarchy build inside the solve,
	// Levels the hierarchy depth including the fine graph, and
	// EnergyGapVsFlatPct the cell's energy relative to the flat trws cell of
	// the same topology/size axes in the same run, in percent (negative when
	// multilevel found the lower energy; absent when no trws twin completed).
	CoarsenMS          float64 `json:"coarsen_ms,omitempty"`
	Levels             int     `json:"levels,omitempty"`
	EnergyGapVsFlatPct float64 `json:"energy_gap_vs_flat_pct,omitempty"`

	// TimedOut records a cell that hit its per-cell deadline.  A timed-out
	// cell keeps Error empty: the timeout is an expected degradation on slow
	// runners (the 1M-host cell in particular), so it marks the report
	// instead of failing the suite.  Error records every other failure; its
	// metric fields are zero.
	TimedOut bool   `json:"timed_out,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Outcome extends a Measurement with the in-memory artefacts the experiment
// tables need (and reports do not serialise).
type Outcome struct {
	Measurement
	// Assignment is the decoded optimal assignment of the cell.
	Assignment *netmodel.Assignment
	// EnergyHistory is the solver's best-energy trace.
	EnergyHistory []float64
}

// Exec runs one cell on the given network and similarity table: it solves the
// diversification instance with the cell's solver (through the partitioned
// parallel pipeline when Parts > 1), honours the cell's timeout and
// warm-start setting, and evaluates the result.  The network/similarity pair
// normally comes from BuildNetwork, but callers with their own instance (the
// fixed paper examples) pass it directly.
func Exec(ctx context.Context, net *netmodel.Network, sim *vulnsim.SimilarityTable, c Cell) (Outcome, error) {
	if net == nil || sim == nil {
		return Outcome{}, errors.New("scenario: network and similarity table must not be nil")
	}
	if c.Attack == 0 {
		c.Attack = AttackNone
	}
	meta := Measurement{
		ID:       c.ID,
		Topology: c.Topology,
		Hosts:    net.NumHosts(),
		Degree:   c.Degree,
		Services: c.Services,
		Solver:   c.Solver,
		Attack:   c.Attack.String(),
		Seed:     c.Seed,
	}
	solver, err := core.ParseSolver(c.Solver)
	if err != nil {
		return Outcome{Measurement: meta}, err
	}
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	iters := c.MaxIterations
	if iters <= 0 {
		iters = 20
	}
	repeats := c.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	opts := core.Options{
		Solver:           solver,
		MaxIterations:    iters,
		Seed:             c.Seed,
		Workers:          c.SolverWorkers,
		DisableWarmStart: c.DisableWarmStart,
		DisablePolish:    c.DisablePolish,
	}
	if c.Parts > 1 {
		// The block pool is the cell's parallelism; each block solves with a
		// single worker.
		opts.Workers = c.Parts
	}

	var (
		opt     *core.Optimizer
		res     core.Result
		memPre  runtime.MemStats
		memPost runtime.MemStats
		bestMS  float64
	)
	runtime.ReadMemStats(&memPre)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		// A fresh optimiser per repeat keeps the measurement a true cold
		// build + solve: the engine caches the built MRF across solves, so
		// reusing one optimiser would time only the solve after repeat 0.
		opt, err = core.NewOptimizer(net, sim, opts)
		if err != nil {
			return Outcome{Measurement: meta}, err
		}
		if c.Parts > 1 {
			pres, perr := opt.OptimizeParallel(ctx, c.Parts)
			err = perr
			res = pres.Result
		} else {
			res, err = opt.Optimize(ctx)
		}
		wall := float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil {
			meta.WallMS = wall
			meta.TimedOut = errors.Is(err, context.DeadlineExceeded)
			return Outcome{Measurement: meta}, err
		}
		if r == 0 || wall < bestMS {
			bestMS = wall
		}
	}
	runtime.ReadMemStats(&memPost)

	meta.Energy = res.Energy
	meta.Iterations = res.Iterations
	meta.Converged = res.Converged
	meta.Nodes = res.Nodes
	meta.Edges = res.Edges
	meta.WallMS = bestMS
	meta.AllocObjects = (memPost.Mallocs - memPre.Mallocs) / uint64(repeats)
	meta.AllocBytes = (memPost.TotalAlloc - memPre.TotalAlloc) / uint64(repeats)

	pc, err := core.PairwiseSimilarityCost(net, sim, res.Assignment)
	if err != nil {
		return Outcome{Measurement: meta}, err
	}
	meta.PairwiseCost = pc
	rich, err := metrics.Richness(net, res.Assignment)
	if err != nil {
		return Outcome{Measurement: meta}, err
	}
	meta.Richness = rich.Overall

	atk, err := evaluateAttack(ctx, net, sim, res.Assignment, c.Attack, c.AttackRuns, c.Seed)
	if err != nil {
		meta.TimedOut = errors.Is(err, context.DeadlineExceeded)
		return Outcome{Measurement: meta}, err
	}
	meta.MTTC = atk.MTTC
	meta.PCompromise = atk.PCompromise
	meta.MCRunsPerSec = atk.MCRunsPerSec
	meta.MCAllocPerRun = atk.MCAllocPerRun

	if c.Serve {
		sb, err := runServeBench(ctx, net, sim, c)
		if err != nil {
			meta.TimedOut = errors.Is(err, context.DeadlineExceeded)
			return Outcome{Measurement: meta}, err
		}
		meta.ServeCreateMS = sb.createMS
		meta.ServeDeltaMS = sb.deltaMS
		meta.ServeAssessMS = sb.assessMS
		meta.ServeReadsPerSec = sb.readsPerSec
	}

	if c.Slam {
		sb, err := runSlamBench(ctx, c)
		if err != nil {
			meta.TimedOut = errors.Is(err, context.DeadlineExceeded)
			return Outcome{Measurement: meta}, err
		}
		meta.SlamTenants = sb.tenants
		meta.SlamWorkers = sb.workers
		meta.SlamOps = sb.ops
		if c.SlamProfile != "" && c.SlamProfile != SlamProfileBase {
			meta.SlamProfile = c.SlamProfile
		}
		meta.SlamErrors = sb.errors
		meta.SlamRPS = sb.rps
		meta.SlamSetupMS = sb.setupMS
		meta.SlamReadP50MS = sb.readP50MS
		meta.SlamReadP99MS = sb.readP99MS
		meta.SlamDeltaP50MS = sb.deltaP50MS
		meta.SlamDeltaP99MS = sb.deltaP99MS
		meta.SlamP999MS = sb.p999MS
		meta.SlamAllocPerOp = sb.allocPerOp
		meta.SlamGCCount = sb.gcCount
		meta.SlamMaxPauseMS = sb.maxPauseMS
	}

	if !c.Churn.None() {
		// The churn phase mutates the cell's network in place through the
		// incremental optimiser (callers passing their own network should
		// hand Exec a clone when they need it unchanged afterwards).
		deltas, err := GenerateChurn(net, c)
		if err != nil {
			return Outcome{Measurement: meta}, err
		}
		cm, err := runChurn(ctx, opt, net, sim, deltas, opts)
		if err != nil {
			meta.TimedOut = errors.Is(err, context.DeadlineExceeded)
			return Outcome{Measurement: meta}, err
		}
		meta.Churn = c.Churn.String()
		meta.ChurnSteps = cm.steps
		meta.ChurnIncrementalMS = cm.incrementalMS
		meta.ChurnFullMS = cm.fullMS
		if cm.incrementalMS > 0 {
			meta.ChurnSpeedup = cm.fullMS / cm.incrementalMS
		}
		meta.ChurnEnergyGapPct = cm.maxGapPct
		meta.ChurnChangedFrac = cm.changedFrac
	}

	return Outcome{
		Measurement:   meta,
		Assignment:    res.Assignment,
		EnergyHistory: res.EnergyHistory,
	}, nil
}

// Run expands the matrix and executes every cell through a bounded worker
// pool.  Per-cell failures (including timeouts) are recorded in the cell's
// measurement instead of aborting the sweep; Run itself fails only on an
// invalid matrix or a cancelled context.
func Run(ctx context.Context, m Matrix) (*Report, error) {
	m = m.withDefaults()
	cells, err := Expand(m)
	if err != nil {
		return nil, err
	}
	results := make([]Measurement, len(cells))
	workers := m.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = runCell(ctx, cells[i])
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	annotateEnergyGaps(results)
	rep := NewReport(m)
	rep.Cells = results
	return rep, nil
}

// runCell builds a cell's network and executes it, converting any failure
// into the measurement's error fields.  A per-cell timeout is recorded as
// the timed_out marker, not as an error: a cell that outgrows a runner
// degrades the report instead of failing the suite.
func runCell(ctx context.Context, c Cell) Measurement {
	if c.GraphDirect {
		return finishCell(execGraphCell(ctx, c))
	}
	net, sim, err := BuildNetwork(c)
	if err != nil {
		return Measurement{
			ID: c.ID, Topology: c.Topology, Hosts: c.Hosts, Degree: c.Degree,
			Services: c.Services, Solver: c.Solver, Attack: c.Attack.String(),
			Seed: c.Seed, Error: err.Error(),
		}
	}
	out, err := Exec(ctx, net, sim, c)
	return finishCell(out.Measurement, err)
}

// finishCell folds an execution error into the measurement: deadline hits
// become the timed_out marker, everything else the error field.
func finishCell(m Measurement, err error) Measurement {
	if err == nil {
		return m
	}
	if m.TimedOut || errors.Is(err, context.DeadlineExceeded) {
		m.TimedOut = true
		return m
	}
	m.Error = err.Error()
	return m
}

// annotateEnergyGaps back-fills EnergyGapVsFlatPct on every completed
// multilevel cell whose flat-trws twin (same axes, solver segment swapped)
// completed in the same run — the scale suite's headline quality metric.
func annotateEnergyGaps(results []Measurement) {
	energies := make(map[string]float64, len(results))
	for _, m := range results {
		if m.Solver == "trws" && m.Error == "" && !m.TimedOut {
			energies[m.ID] = m.Energy
		}
	}
	for i := range results {
		m := &results[i]
		if m.Solver != "multilevel" || m.Error != "" || m.TimedOut {
			continue
		}
		twin := strings.Replace(m.ID, "/multilevel/", "/trws/", 1)
		if flat, ok := energies[twin]; ok && flat != 0 {
			m.EnergyGapVsFlatPct = (m.Energy - flat) / flat * 100
		}
	}
}

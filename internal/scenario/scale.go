package scenario

import (
	"context"
	"errors"
	"runtime"
	"time"

	"netdiversity/internal/multilevel"
	"netdiversity/internal/netgen"
	"netdiversity/internal/solve"
)

// execGraphCell runs one graph-direct cell: the streamed CSR generator emits
// the diversification MRF without a netmodel.Network and the cell's solver
// runs on it straight through the solve registry.  There is no assignment
// decode and no attack/churn/serve phase — this path exists to measure raw
// solver scaling at sizes (10^5–10^6 hosts) the map-based network model
// cannot represent.  Generation happens outside the timed window: the cell
// measures the solve, and generation cost is identical across the solver
// axis anyway.
func execGraphCell(ctx context.Context, c Cell) (Measurement, error) {
	meta := Measurement{
		ID:       c.ID,
		Topology: c.Topology,
		Hosts:    c.Hosts,
		Degree:   c.Degree,
		Services: c.Services,
		Solver:   c.Solver,
		Attack:   c.Attack.String(),
		Seed:     c.Seed,
	}
	// GraphSeed, not Seed: the instance seed ignores the solver axis, so the
	// trws and multilevel twins of a cell solve the identical graph and the
	// energy-gap annotation compares like with like.  Hand-built cells that
	// never went through Expand fall back to the cell seed.
	genSeed := c.GraphSeed
	if genSeed == 0 {
		genSeed = c.Seed
	}
	g, err := netgen.UniformGraph(netgen.RandomConfig{
		Hosts:              c.Hosts,
		Degree:             c.Degree,
		Services:           c.Services,
		ProductsPerService: c.ProductsPerService,
		Seed:               genSeed,
	})
	if err != nil {
		return meta, err
	}
	meta.Nodes = g.NumNodes()
	meta.Edges = g.NumEdges()

	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	iters := c.MaxIterations
	if iters <= 0 {
		iters = 20
	}
	opts := solve.Options{
		MaxIterations: iters,
		Seed:          c.Seed,
		Workers:       c.SolverWorkers,
		// The multilevel kernel hands Checkpoint down to its inner per-level
		// solves, so the cell deadline cuts into a long solve at iteration
		// granularity instead of only between hierarchy phases.
		Checkpoint: func(context.Context) error { return ctx.Err() },
	}
	repeats := c.Repeats
	if repeats <= 0 {
		repeats = 1
	}

	var (
		memPre, memPost runtime.MemStats
		bestMS          float64
	)
	runtime.ReadMemStats(&memPre)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		var err error
		if c.Solver == "multilevel" {
			// Stride=services tells the aggregation path to group whole hosts
			// while keeping each service's variables separate.
			k := &multilevel.Kernel{Stride: c.Services}
			res, stats, serr := k.SolveWithStats(ctx, g, opts)
			err = serr
			if serr == nil {
				meta.Energy = res.Energy
				meta.Iterations = res.Iterations
				meta.Converged = res.Converged
				meta.CoarsenMS = stats.CoarsenMS
				meta.Levels = stats.Levels
			}
		} else {
			res, serr := solve.Solve(ctx, c.Solver, g, opts)
			err = serr
			if serr == nil {
				meta.Energy = res.Energy
				meta.Iterations = res.Iterations
				meta.Converged = res.Converged
			}
		}
		wall := float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil {
			meta.WallMS = wall
			meta.TimedOut = errors.Is(err, context.DeadlineExceeded)
			return meta, err
		}
		if r == 0 || wall < bestMS {
			bestMS = wall
		}
	}
	runtime.ReadMemStats(&memPost)
	meta.WallMS = bestMS
	meta.AllocObjects = (memPost.Mallocs - memPre.Mallocs) / uint64(repeats)
	meta.AllocBytes = (memPost.TotalAlloc - memPre.TotalAlloc) / uint64(repeats)
	return meta, nil
}

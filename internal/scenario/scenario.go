// Package scenario is the experiment-sweep subsystem of the library: it
// declaratively describes a run matrix — topology family × network size ×
// solver × attack model × churn stream — expands it into deterministic
// cells, executes every cell through the shared optimisation pipeline (with
// per-cell seeds, timeouts and warm-start control) and collects comparable
// measurements: objective energy, pairwise similarity cost, wall-clock time,
// allocations, an MTTC estimate and diversity metrics.  Churn cells
// additionally replay a delta stream through the incremental
// re-optimisation engine, and serve cells drive their network through an
// in-process divd daemon over loopback HTTP so request latency is measured
// like every other metric.  docs/BENCH_SCHEMA.md documents every recorded
// field.
//
// The package serves two callers with one execution path: the paper
// experiments in internal/experiments build their figure/table sweeps on
// Exec/Run, and cmd/divbench turns named suites into machine-readable
// BENCH_<suite>.json reports that a CI gate can diff against a baseline.
package scenario

import (
	"fmt"
	"hash/fnv"
	"time"

	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/solve"
	"netdiversity/internal/vulnsim"
)

// Topology names accepted by a Matrix.  The first three map onto
// netgen.Generate; "zoned" builds a four-zone ICS-style layout with the same
// synthetic service/product catalogue so that every topology shares one
// similarity table.
const (
	TopoUniform    = "uniform"
	TopoZoned      = "zoned"
	TopoScaleFree  = "scale-free"
	TopoSmallWorld = "small-world"
)

// Topologies lists the supported topology names in canonical order.
func Topologies() []string {
	return []string{TopoUniform, TopoZoned, TopoScaleFree, TopoSmallWorld}
}

// Matrix declaratively describes a sweep: the cross product of every axis
// slice.  The zero value of an axis falls back to a single default so that a
// Matrix can sweep one dimension without spelling out the others.
type Matrix struct {
	// Name identifies the suite in reports ("quick", "full", "table7", ...).
	Name string
	// Topologies is the topology-family axis.  Default {uniform}.
	Topologies []string
	// Hosts is the network-size axis.  Default {200}.
	Hosts []int
	// Degrees is the target-average-degree axis.  Default {8}.
	Degrees []int
	// Services is the services-per-host axis.  Default {3}.
	Services []int
	// ProductsPerService is the per-service catalogue size.  Default 4.
	ProductsPerService int
	// Solvers is the solver axis; every name must be registered with the
	// solve registry.  Default {trws}.
	Solvers []string
	// Attacks is the attack-model axis (see ParseAttack).  Default {none}.
	Attacks []string
	// Churns is the churn axis (see ParseChurn): each non-"none" value
	// replays a deterministic delta stream through the incremental
	// re-optimisation engine after the initial solve and measures
	// incremental-vs-full re-solve cost, energy gap and assignment
	// stability.  Default {none}.
	Churns []string
	// MaxIterations bounds the solver iterations per cell.  Default 20.
	MaxIterations int
	// Seed is the base seed; every cell derives its own seed from it and the
	// cell ID, so expansion is deterministic and order-independent.
	Seed int64
	// Timeout bounds one cell execution (solve + attack evaluation).
	// Zero means no per-cell timeout.
	Timeout time.Duration
	// Workers sizes the worker pool that executes cells concurrently.
	// Default 1 (cells run serially, which keeps the allocation and
	// wall-clock measurements precise).
	Workers int
	// SolverWorkers is the intra-cell parallelism handed to the solver
	// kernels (core.Options.Workers).  Default 1; ignored when Parts > 1,
	// where the block pool provides the cell's parallelism.
	SolverWorkers int
	// Parts > 1 routes every cell through the partitioned parallel pipeline
	// (core.OptimizeParallel) with that many blocks.
	Parts int
	// DisableWarmStart measures the solvers cold, without the
	// greedy-colouring initial labeling.
	DisableWarmStart bool
	// ServeLatency routes every cell through an in-process divd serving
	// round-trip (create → deltas → assignment reads → assess over loopback
	// HTTP) after the regular phases, recording the serve_* latency fields.
	ServeLatency bool
	// SlamLoad routes every cell through a closed-loop multi-tenant load run
	// (internal/slam) after the regular phases: SlamTenants sessions of the
	// cell's network shape under SlamWorkers concurrent workers for SlamOps
	// requests of the default mix, recording the slam_* concurrency-latency
	// fields.  Where ServeLatency measures the solo request path, SlamLoad
	// measures p99 under contention — the scheduler, writer-slot and
	// admission behaviour no sequential benchmark can see.
	SlamLoad bool
	// SlamTenants, SlamWorkers and SlamOps size the load run.  Defaults
	// 6 / 4 / 400.
	SlamTenants int
	SlamWorkers int
	SlamOps     int
	// SlamProfiles is the load-shape axis of the slam phase: every slam
	// cell expands into one run per named profile.  "base" uses
	// SlamTenants/SlamWorkers/SlamOps with the default mix and keeps the
	// historical cell ID; "contended" oversubscribes the per-session writer
	// slots (more workers than tenants, delta-heavy mix) and suffixes the
	// cell ID with /slam-contended, so the gate exercises write-side
	// queueing that the balanced base shape never produces.  Default
	// {"base"}.
	SlamProfiles []string
	// AttackRuns is the Monte-Carlo run count for the adversary-knowledge
	// attack models.  Default 50 (the analytic models ignore it).
	AttackRuns int
	// Repeats re-runs the solve of each cell and keeps the minimum
	// wall-clock (the solvers are deterministic, so every other measurement
	// is identical across repeats).  Default 1.
	Repeats int
	// GraphDirect routes every cell through the streaming CSR-direct path:
	// netgen.UniformGraph emits the diversification MRF without building a
	// netmodel.Network and the solver runs on it directly, skipping the
	// assignment decode and the attack/churn/serve phases.  This is the only
	// path that reaches 10^5–10^6 hosts; it is restricted to the uniform
	// topology with no attack, churn or serve axes.
	GraphDirect bool
}

func (m Matrix) withDefaults() Matrix {
	if len(m.Topologies) == 0 {
		m.Topologies = []string{TopoUniform}
	}
	if len(m.Hosts) == 0 {
		m.Hosts = []int{200}
	}
	if len(m.Degrees) == 0 {
		m.Degrees = []int{8}
	}
	if len(m.Services) == 0 {
		m.Services = []int{3}
	}
	if m.ProductsPerService <= 0 {
		m.ProductsPerService = 4
	}
	if len(m.Solvers) == 0 {
		m.Solvers = []string{"trws"}
	}
	if len(m.Attacks) == 0 {
		m.Attacks = []string{AttackNone.String()}
	}
	if len(m.Churns) == 0 {
		m.Churns = []string{"none"}
	}
	if m.MaxIterations <= 0 {
		m.MaxIterations = 20
	}
	if m.Seed == 0 {
		m.Seed = 42
	}
	if m.Workers <= 0 {
		m.Workers = 1
	}
	if m.AttackRuns <= 0 {
		m.AttackRuns = 50
	}
	if m.Repeats <= 0 {
		m.Repeats = 1
	}
	if m.SlamLoad {
		if m.SlamTenants <= 0 {
			m.SlamTenants = 6
		}
		if m.SlamWorkers <= 0 {
			m.SlamWorkers = 4
		}
		if m.SlamOps <= 0 {
			m.SlamOps = 400
		}
		if len(m.SlamProfiles) == 0 {
			m.SlamProfiles = []string{SlamProfileBase}
		}
	}
	return m
}

// The named slam load shapes (Matrix.SlamProfiles).
const (
	SlamProfileBase      = "base"
	SlamProfileContended = "contended"
	SlamProfileReplica   = "replica"
)

// slamShape is one resolved slam load shape.
type slamShape struct {
	tenants, workers, ops int
	mix                   string // empty = slam.DefaultMix
	replica               bool   // reads served by an in-process follower
}

// slamShapeOf resolves a profile name against a defaulted matrix.  The
// contended shape is fixed (not derived from the matrix sizes): four tenant
// sessions under sixteen workers of a delta-heavy mix keep several requests
// queued behind every session's writer slot for the whole run, and a fixed
// shape keeps the cell comparable across suite edits.  The replica shape
// boots a primary/follower replication pair and serves the read-heavy mix's
// reads and metrics from the follower (internal/replic), so follower read
// latency is gated alongside the single-node paths.
func slamShapeOf(m Matrix, profile string) (slamShape, error) {
	switch profile {
	case "", SlamProfileBase:
		return slamShape{tenants: m.SlamTenants, workers: m.SlamWorkers, ops: m.SlamOps}, nil
	case SlamProfileContended:
		return slamShape{tenants: 4, workers: 16, ops: 600, mix: "read=50,delta=45,metrics=5"}, nil
	case SlamProfileReplica:
		return slamShape{tenants: 4, workers: 8, ops: 400, mix: "read=70,delta=20,metrics=10", replica: true}, nil
	}
	return slamShape{}, fmt.Errorf("scenario: unknown slam profile %q (known: %s, %s, %s)",
		profile, SlamProfileBase, SlamProfileContended, SlamProfileReplica)
}

// Cell is one fully-specified run of the matrix.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index int
	// ID is the stable cell identifier used to match cells across reports:
	// topology/h<hosts>/d<degree>/s<services>/<solver>/<attack>.
	ID string
	// Topology, Hosts, Degree, Services, ProductsPerService describe the
	// generated network.
	Topology           string
	Hosts              int
	Degree             int
	Services           int
	ProductsPerService int
	// Solver and Attack select the algorithm and the attack model.
	Solver string
	Attack Attack
	// Churn selects the delta stream replayed after the initial solve (the
	// zero value / "none" disables churn).
	Churn ChurnSpec
	// Seed is the cell's derived seed.
	Seed int64
	// GraphSeed is the instance-generation seed, derived from the structural
	// axes only (topology/hosts/degree/services).  Cells that differ only in
	// solver or attack share it, so graph-direct twins solve the identical
	// instance and cross-solver energy gaps compare like with like.
	GraphSeed int64
	// MaxIterations, Parts, DisableWarmStart, AttackRuns, Repeats and
	// Timeout are inherited from the matrix.
	MaxIterations    int
	Parts            int
	DisableWarmStart bool
	AttackRuns       int
	Repeats          int
	Timeout          time.Duration
	// Serve runs the in-process divd serving round-trip after the regular
	// phases (inherited from Matrix.ServeLatency).
	Serve bool
	// Slam runs the closed-loop multi-tenant load run after the regular
	// phases; SlamTenants/SlamWorkers/SlamOps size it and SlamMix selects
	// the operation mix (empty = default), all resolved from the matrix's
	// slam profile.  SlamProfile records which named shape produced the
	// cell ("base" shapes keep the historical cell ID; every other profile
	// suffixes it).
	Slam        bool
	SlamTenants int
	SlamWorkers int
	SlamOps     int
	SlamProfile string
	SlamMix     string
	// SlamReplica routes the slam phase's reads through an in-process
	// follower of a replication pair (the "replica" profile).
	SlamReplica bool
	// DisablePolish skips the local ICM refinement after solving; not a
	// matrix axis, but callers building cells directly (the solver ablation,
	// the convergence trace) use it to measure the raw decoding.
	DisablePolish bool
	// SolverWorkers is the intra-cell solver parallelism (ignored when
	// Parts > 1).
	SolverWorkers int
	// GraphDirect runs the cell on a streamed MRF (netgen.UniformGraph)
	// without a netmodel.Network: no assignment decode, no attack, churn or
	// serve phase (inherited from Matrix.GraphDirect).
	GraphDirect bool
}

// cellID renders the stable identifier of a cell.  Churn-free cells keep the
// historical six-segment form so baselines recorded before the churn axis
// existed still match.
func cellID(topology string, hosts, degree, services int, solver, attack, churn string) string {
	id := fmt.Sprintf("%s/h%d/d%d/s%d/%s/%s", topology, hosts, degree, services, solver, attack)
	if churn != "" && churn != "none" {
		id += "/" + churn
	}
	return id
}

// cellSeed derives a per-cell seed from the base seed and the cell ID, so
// that adding or removing axis values never shifts the seeds of the
// remaining cells.
func cellSeed(base int64, id string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return base ^ int64(h.Sum64()&0x7fffffffffffffff)
}

// Expand validates the matrix and returns its cells in deterministic order
// (topology-major, attack-minor, following the axis slice order).
func Expand(m Matrix) ([]Cell, error) {
	m = m.withDefaults()
	known := make(map[string]bool, 4)
	for _, t := range Topologies() {
		known[t] = true
	}
	for _, t := range m.Topologies {
		if !known[t] {
			return nil, fmt.Errorf("scenario: unknown topology %q (known: %v)", t, Topologies())
		}
	}
	for _, h := range m.Hosts {
		if h < 2 {
			return nil, fmt.Errorf("scenario: need at least 2 hosts, got %d", h)
		}
	}
	for _, s := range m.Solvers {
		if !solve.Registered(s) {
			return nil, fmt.Errorf("scenario: unknown solver %q (registered: %v)", s, solve.Names())
		}
	}
	attacks := make([]Attack, len(m.Attacks))
	for i, a := range m.Attacks {
		parsed, err := ParseAttack(a)
		if err != nil {
			return nil, err
		}
		attacks[i] = parsed
	}
	churns := make([]ChurnSpec, len(m.Churns))
	for i, c := range m.Churns {
		parsed, err := ParseChurn(c)
		if err != nil {
			return nil, err
		}
		churns[i] = parsed
	}
	if m.GraphDirect {
		// The streamed path has no netmodel.Network, so every phase that
		// needs one is off the table.
		for _, t := range m.Topologies {
			if t != TopoUniform {
				return nil, fmt.Errorf("scenario: graph-direct matrices support only the %s topology, got %q", TopoUniform, t)
			}
		}
		for _, a := range attacks {
			if a != AttackNone {
				return nil, fmt.Errorf("scenario: graph-direct matrices cannot evaluate attacks (got %q)", a)
			}
		}
		for _, c := range churns {
			if !c.None() {
				return nil, fmt.Errorf("scenario: graph-direct matrices cannot replay churn (got %q)", c)
			}
		}
		if m.ServeLatency {
			return nil, fmt.Errorf("scenario: graph-direct matrices cannot run the serve phase")
		}
		if m.SlamLoad {
			return nil, fmt.Errorf("scenario: graph-direct matrices cannot run the slam phase")
		}
		if m.Parts > 1 {
			return nil, fmt.Errorf("scenario: graph-direct matrices cannot use the partitioned pipeline")
		}
	}

	profiles := m.SlamProfiles
	if len(profiles) == 0 {
		profiles = []string{SlamProfileBase}
	}
	shapes := make([]slamShape, len(profiles))
	for i, p := range profiles {
		sh, err := slamShapeOf(m, p)
		if err != nil {
			return nil, err
		}
		shapes[i] = sh
	}

	var cells []Cell
	for _, topo := range m.Topologies {
		for _, hosts := range m.Hosts {
			for _, degree := range m.Degrees {
				for _, services := range m.Services {
					for _, solver := range m.Solvers {
						for _, attack := range attacks {
							for _, churn := range churns {
								for pi, profile := range profiles {
									id := cellID(topo, hosts, degree, services, solver, attack.String(), churn.String())
									if profile != SlamProfileBase {
										id += "/slam-" + profile
									}
									instance := fmt.Sprintf("%s/h%d/d%d/s%d", topo, hosts, degree, services)
									cells = append(cells, Cell{
										Index:              len(cells),
										ID:                 id,
										Topology:           topo,
										Hosts:              hosts,
										Degree:             degree,
										Services:           services,
										ProductsPerService: m.ProductsPerService,
										Solver:             solver,
										Attack:             attack,
										Churn:              churn,
										Seed:               cellSeed(m.Seed, id),
										GraphSeed:          cellSeed(m.Seed, instance),
										MaxIterations:      m.MaxIterations,
										Parts:              m.Parts,
										DisableWarmStart:   m.DisableWarmStart,
										Serve:              m.ServeLatency,
										Slam:               m.SlamLoad,
										SlamTenants:        shapes[pi].tenants,
										SlamWorkers:        shapes[pi].workers,
										SlamOps:            shapes[pi].ops,
										SlamProfile:        profile,
										SlamMix:            shapes[pi].mix,
										SlamReplica:        shapes[pi].replica,
										AttackRuns:         m.AttackRuns,
										Repeats:            m.Repeats,
										Timeout:            m.Timeout,
										SolverWorkers:      m.SolverWorkers,
										GraphDirect:        m.GraphDirect,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// BuildNetwork generates the network and similarity table of one cell.  The
// construction depends only on the cell's fields, so callers (tests, the
// experiment tables) can rebuild the exact instance a measurement came from.
func BuildNetwork(c Cell) (*netmodel.Network, *vulnsim.SimilarityTable, error) {
	genCfg := netgen.RandomConfig{
		Hosts:              c.Hosts,
		Degree:             c.Degree,
		Services:           c.Services,
		ProductsPerService: c.ProductsPerService,
		Seed:               c.Seed,
	}
	sim := netgen.SyntheticSimilarity(genCfg, 0.6)
	var (
		net *netmodel.Network
		err error
	)
	switch c.Topology {
	case TopoUniform, "":
		net, err = netgen.Generate(genCfg, netgen.TopologyUniform)
	case TopoScaleFree:
		net, err = netgen.Generate(genCfg, netgen.TopologyScaleFree)
	case TopoSmallWorld:
		net, err = netgen.Generate(genCfg, netgen.TopologySmallWorld)
	case TopoZoned:
		net, err = zonedNetwork(genCfg)
	default:
		return nil, nil, fmt.Errorf("scenario: unknown topology %q", c.Topology)
	}
	if err != nil {
		return nil, nil, err
	}
	return net, sim, nil
}

// zonedNetwork builds a four-zone ICS-style layout (corporate → dmz →
// operations → control) over the synthetic service/product catalogue, so
// that zoned cells share the similarity table of the other topologies.
func zonedNetwork(cfg netgen.RandomConfig) (*netmodel.Network, error) {
	services := make([]netmodel.ServiceID, cfg.Services)
	choices := make(map[netmodel.ServiceID][]netmodel.ProductID, cfg.Services)
	for s := 0; s < cfg.Services; s++ {
		services[s] = netgen.ServiceName(s)
		ps := make([]netmodel.ProductID, cfg.ProductsPerService)
		for p := 0; p < cfg.ProductsPerService; p++ {
			ps[p] = netgen.ProductName(s, p)
		}
		choices[services[s]] = ps
	}
	names := []string{"corporate", "dmz", "operations", "control"}
	zones := len(names)
	if cfg.Hosts < 2*zones {
		zones = cfg.Hosts / 2
		if zones < 1 {
			zones = 1
		}
	}
	specs := make([]netgen.ZoneSpec, zones)
	base, extra := cfg.Hosts/zones, cfg.Hosts%zones
	for i := range specs {
		specs[i] = netgen.ZoneSpec{Name: names[i], Hosts: base}
		if i < extra {
			specs[i].Hosts++
		}
	}
	bridges := cfg.Degree / 2
	if bridges < 2 {
		bridges = 2
	}
	return netgen.Zoned(netgen.ZonedConfig{
		Zones:       specs,
		BridgeLinks: bridges,
		Services:    services,
		Choices:     choices,
		Seed:        cfg.Seed,
	})
}

package scenario

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"netdiversity/internal/core"
	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// The churn axis stress-tests the incremental re-optimisation engine: a cell
// with churn first solves its network cold, then replays a deterministic
// stream of network deltas (host joins/leaves, service upgrades) through
// core.ApplyDelta + Reoptimize, and after every step also re-solves the
// mutated network from scratch.  The measurement compares the two paths:
// summed wall-clock, the worst per-step energy gap, and how much of the
// assignment each step disturbed.

// defaultChurnSteps is the number of deltas in a generated churn stream.
const defaultChurnSteps = 5

// ChurnSpec describes one churn-axis value.
type ChurnSpec struct {
	// Name is the axis value as written in the matrix ("none", "hosts5",
	// "svc10", "mixed5").
	Name string
	// HostPct is the fraction of hosts churned across the whole stream
	// (half leave, half join).
	HostPct float64
	// ServicePct is the fraction of hosts receiving a service (preference)
	// upgrade across the stream.
	ServicePct float64
	// Steps is the number of deltas the events are spread over.
	Steps int
}

// None reports whether the spec disables churn.
func (c ChurnSpec) None() bool { return c.HostPct == 0 && c.ServicePct == 0 }

// String returns the axis value name.
func (c ChurnSpec) String() string {
	if c.Name == "" {
		return "none"
	}
	return c.Name
}

// ChurnNames lists example churn-axis values accepted by ParseChurn.
func ChurnNames() []string {
	return []string{"none", "hosts5", "svc10", "mixed5"}
}

// ParseChurn converts a churn-axis name into a spec.  The accepted forms are
// "none", "hosts<N>", "svc<N>" and "mixed<N>" where N is the churn
// percentage over the whole stream (1..50).
func ParseChurn(name string) (ChurnSpec, error) {
	trimmed := strings.ToLower(strings.TrimSpace(name))
	if trimmed == "" || trimmed == "none" {
		return ChurnSpec{Name: "none"}, nil
	}
	for _, prefix := range []string{"hosts", "svc", "mixed"} {
		if !strings.HasPrefix(trimmed, prefix) {
			continue
		}
		n, err := strconv.Atoi(trimmed[len(prefix):])
		if err != nil || n < 1 || n > 50 {
			return ChurnSpec{}, fmt.Errorf("scenario: churn %q needs a percentage 1..50 after %q", name, prefix)
		}
		spec := ChurnSpec{Name: trimmed, Steps: defaultChurnSteps}
		pct := float64(n) / 100
		switch prefix {
		case "hosts":
			spec.HostPct = pct
		case "svc":
			spec.ServicePct = pct
		case "mixed":
			spec.HostPct, spec.ServicePct = pct, pct
		}
		return spec, nil
	}
	return ChurnSpec{}, fmt.Errorf("scenario: unknown churn %q (examples: %v)", name, ChurnNames())
}

// churnSeed derives the event-stream seed from the cell seed so that the
// stream is independent of the solver axis ordering.
func churnSeed(cellSeed int64) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte("churn"))
	return cellSeed ^ int64(h.Sum64()&0x7fffffffffffffff)
}

// hostShape is the generator's snapshot of a live host's service catalogue.
type hostShape struct {
	services []netmodel.ServiceID
	choices  map[netmodel.ServiceID][]netmodel.ProductID
}

// GenerateChurn builds the deterministic delta stream of a cell against its
// generated network: host leaves, host joins (wired into the surviving
// topology with the cell's synthetic catalogue) and service upgrades
// (preference changes), spread over ChurnSpec.Steps deltas.  The stream
// depends only on the cell's fields and the network's host list, so a
// measurement can always be reproduced.
func GenerateChurn(net *netmodel.Network, c Cell) ([]netmodel.Delta, error) {
	spec := c.Churn
	if spec.None() {
		return nil, nil
	}
	steps := spec.Steps
	if steps <= 0 {
		steps = defaultChurnSteps
	}
	rng := rand.New(rand.NewSource(churnSeed(c.Seed)))

	live := net.Hosts()
	shapes := make(map[netmodel.HostID]hostShape, len(live))
	for _, id := range live {
		h, _ := net.Host(id)
		shapes[id] = hostShape{services: h.Services, choices: h.Choices}
	}

	hostEvents := int(spec.HostPct*float64(len(live)) + 0.5)
	leaves := hostEvents / 2
	joins := hostEvents - leaves
	upgrades := int(spec.ServicePct*float64(len(live)) + 0.5)
	total := leaves + joins + upgrades
	if total == 0 {
		return nil, nil
	}

	// The synthetic catalogue shared by every generated topology.
	catalogue := hostShape{choices: make(map[netmodel.ServiceID][]netmodel.ProductID, c.Services)}
	for s := 0; s < c.Services; s++ {
		sid := netgen.ServiceName(s)
		catalogue.services = append(catalogue.services, sid)
		for p := 0; p < c.ProductsPerService; p++ {
			catalogue.choices[sid] = append(catalogue.choices[sid], netgen.ProductName(s, p))
		}
	}

	pickLive := func() (netmodel.HostID, bool) {
		if len(live) == 0 {
			return "", false
		}
		return live[rng.Intn(len(live))], true
	}
	removeLive := func(id netmodel.HostID) {
		for i, h := range live {
			if h == id {
				live = append(live[:i], live[i+1:]...)
				break
			}
		}
		delete(shapes, id)
	}

	deltas := make([]netmodel.Delta, steps)
	joined := 0
	for e := 0; e < total; e++ {
		step := e * steps / total
		d := &deltas[step]
		// Draw the event kind from the remaining quotas so the interleaving
		// is deterministic but mixed.
		kind := rng.Intn(leaves + joins + upgrades)
		switch {
		case kind < leaves:
			leaves--
			id, ok := pickLive()
			if !ok {
				continue
			}
			d.Ops = append(d.Ops, netmodel.DeltaOp{Op: netmodel.OpRemoveHost, ID: id})
			removeLive(id)
		case kind < leaves+joins:
			joins--
			joined++
			id := netmodel.HostID(fmt.Sprintf("cjoin%d", joined))
			spec := netmodel.HostSpec{ID: id, Zone: "churn", Services: catalogue.services, Choices: catalogue.choices}
			d.Ops = append(d.Ops, netmodel.DeltaOp{Op: netmodel.OpAddHost, Host: &spec})
			// Wire the joiner to up to Degree distinct live hosts.
			wired := make(map[netmodel.HostID]bool)
			for len(wired) < c.Degree && len(wired) < len(live) {
				nb, ok := pickLive()
				if !ok || wired[nb] {
					continue
				}
				wired[nb] = true
				d.Ops = append(d.Ops, netmodel.DeltaOp{Op: netmodel.OpAddEdge, A: id, B: nb})
			}
			live = append(live, id)
			shapes[id] = catalogue
		default:
			upgrades--
			id, ok := pickLive()
			if !ok {
				continue
			}
			shape := shapes[id]
			s := shape.services[rng.Intn(len(shape.services))]
			cands := shape.choices[s]
			pref := map[netmodel.ServiceID]map[netmodel.ProductID]float64{
				s: {cands[rng.Intn(len(cands))]: 0.9},
			}
			d.Ops = append(d.Ops, netmodel.DeltaOp{Op: netmodel.OpUpdateHostServices, ID: id,
				Services: shape.services, Choices: shape.choices, Preference: pref})
		}
	}
	// Drop empty steps (possible when total < steps).
	out := deltas[:0]
	for _, d := range deltas {
		if !d.Empty() {
			out = append(out, d)
		}
	}
	return out, nil
}

// churnMetrics aggregates the incremental-vs-full comparison of one cell.
type churnMetrics struct {
	steps         int
	incrementalMS float64
	fullMS        float64
	maxGapPct     float64
	changedFrac   float64
	finalEnergy   float64
}

// runChurn replays the delta stream through the incremental engine and,
// after every step, re-solves the mutated network from scratch with the same
// options.  opt is the cell's already-solved optimizer (it owns the network,
// which is mutated in place); sim is the cell's similarity table.
func runChurn(ctx context.Context, opt *core.Optimizer, net *netmodel.Network, sim *vulnsim.SimilarityTable, deltas []netmodel.Delta, opts core.Options) (churnMetrics, error) {
	var m churnMetrics
	prev := opt.LastAssignment()
	for _, d := range deltas {
		// The incremental timer covers the whole step the engine pays for a
		// delta: the in-place patch (including a possible compacting
		// rebuild) plus the warm re-solve.
		start := time.Now()
		if err := opt.ApplyDelta(d); err != nil {
			return m, fmt.Errorf("churn step %d: apply: %w", m.steps, err)
		}
		inc, err := opt.Reoptimize(ctx)
		if err != nil {
			return m, fmt.Errorf("churn step %d: reoptimize: %w", m.steps, err)
		}
		m.incrementalMS += float64(time.Since(start)) / float64(time.Millisecond)

		// The honest non-incremental baseline: build + cold solve of the
		// mutated network, exactly what a batch system would redo per change.
		start = time.Now()
		fullOpt, err := core.NewOptimizer(net.Clone(), sim, opts)
		if err != nil {
			return m, err
		}
		full, err := fullOpt.Optimize(ctx)
		if err != nil {
			return m, fmt.Errorf("churn step %d: full re-solve: %w", m.steps, err)
		}
		m.fullMS += float64(time.Since(start)) / float64(time.Millisecond)

		gap := 0.0
		if full.Energy != 0 {
			gap = (inc.Energy - full.Energy) / abs(full.Energy) * 100
		}
		if m.steps == 0 || gap > m.maxGapPct {
			m.maxGapPct = gap
		}
		m.changedFrac += assignmentChangedFrac(prev, inc.Assignment)
		prev = inc.Assignment
		m.finalEnergy = inc.Energy
		m.steps++
	}
	if m.steps > 0 {
		m.changedFrac /= float64(m.steps)
	}
	return m, nil
}

// assignmentChangedFrac returns the fraction of hosts present in both
// assignments whose product set changed — the assignment-stability metric of
// the churn suite.
func assignmentChangedFrac(prev, cur *netmodel.Assignment) float64 {
	if prev == nil || cur == nil {
		return 0
	}
	common, changed := 0, 0
	for _, h := range prev.Hosts() {
		curHost := cur.HostAssignment(h)
		if len(curHost) == 0 {
			continue // host left
		}
		common++
		prevHost := prev.HostAssignment(h)
		if len(prevHost) != len(curHost) {
			changed++
			continue
		}
		for s, p := range prevHost {
			if curHost[s] != p {
				changed++
				break
			}
		}
	}
	if common == 0 {
		return 0
	}
	return float64(changed) / float64(common)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

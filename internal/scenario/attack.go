package scenario

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"netdiversity/internal/adversary"
	"netdiversity/internal/attacksim"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// Attack selects how a cell's optimised assignment is stress-tested after
// solving.  The recon/uniform models use the analytic mean-field MTTC
// estimate of internal/attacksim (fast and deterministic, so suitable for CI
// cells); the adv-* models run the Monte-Carlo attacker-knowledge campaigns
// of internal/adversary.
type Attack int

const (
	// AttackNone skips attack evaluation.
	AttackNone Attack = iota + 1
	// AttackRecon is the reconnaissance attacker of the paper's simulation
	// study, evaluated with the mean-field MTTC estimate.
	AttackRecon
	// AttackUniform is the uniform-exploit-choice attacker, evaluated with
	// the mean-field MTTC estimate.
	AttackUniform
	// AttackAdvBlind is the Monte-Carlo attacker with no configuration
	// knowledge.
	AttackAdvBlind
	// AttackAdvPartial is the Monte-Carlo attacker knowing product
	// popularity but not placement.
	AttackAdvPartial
	// AttackAdvFull is the Monte-Carlo attacker with full reconnaissance.
	AttackAdvFull
)

// String implements fmt.Stringer.
func (a Attack) String() string {
	switch a {
	case AttackNone:
		return "none"
	case AttackRecon:
		return "recon"
	case AttackUniform:
		return "uniform"
	case AttackAdvBlind:
		return "adv-blind"
	case AttackAdvPartial:
		return "adv-partial"
	case AttackAdvFull:
		return "adv-full"
	default:
		return fmt.Sprintf("attack(%d)", int(a))
	}
}

// AttackNames lists the attack-model names accepted by ParseAttack.
func AttackNames() []string {
	return []string{"none", "recon", "uniform", "adv-blind", "adv-partial", "adv-full"}
}

// ParseAttack converts an attack-model name to an Attack.
func ParseAttack(name string) (Attack, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "none":
		return AttackNone, nil
	case "recon":
		return AttackRecon, nil
	case "uniform":
		return AttackUniform, nil
	case "adv-blind":
		return AttackAdvBlind, nil
	case "adv-partial":
		return AttackAdvPartial, nil
	case "adv-full":
		return AttackAdvFull, nil
	default:
		return 0, fmt.Errorf("scenario: unknown attack model %q (known: %v)", name, AttackNames())
	}
}

// attackOutcome is what an attack evaluation contributes to a measurement.
type attackOutcome struct {
	MTTC        float64
	PCompromise float64
	// MCRunsPerSec and MCAllocPerRun describe the Monte-Carlo campaign of
	// the adv-* models (zero for the analytic models).
	MCRunsPerSec  float64
	MCAllocPerRun uint64
}

// evaluateAttack stresses an assignment with the cell's attack model: the
// attacker enters at the first host and aims for the last host of the
// network's insertion order (for zoned topologies that is the corporate
// perimeter and the control core respectively).  The context carries the
// cell's timeout: the Monte-Carlo campaigns check it between runs; the
// analytic estimate is bounded by MaxTicks and only checks it up front.
func evaluateAttack(ctx context.Context, net *netmodel.Network, sim *vulnsim.SimilarityTable, a *netmodel.Assignment, attack Attack, runs int, seed int64) (attackOutcome, error) {
	if attack == AttackNone {
		return attackOutcome{}, nil
	}
	if err := ctx.Err(); err != nil {
		return attackOutcome{}, err
	}
	hosts := net.Hosts()
	if len(hosts) < 2 {
		return attackOutcome{}, fmt.Errorf("scenario: attack evaluation needs at least 2 hosts")
	}
	entry, target := hosts[0], hosts[len(hosts)-1]

	switch attack {
	case AttackRecon, AttackUniform:
		strategy := attacksim.Reconnaissance
		if attack == AttackUniform {
			strategy = attacksim.UniformChoice
		}
		s, err := attacksim.New(net, a, sim)
		if err != nil {
			return attackOutcome{}, err
		}
		est, err := s.EstimateMTTC(attacksim.Config{
			Entry:    entry,
			Target:   target,
			Strategy: strategy,
			MaxTicks: 200,
		})
		if err != nil {
			return attackOutcome{}, err
		}
		return attackOutcome{MTTC: est.MTTC, PCompromise: est.PCompromise}, nil
	case AttackAdvBlind, AttackAdvPartial, AttackAdvFull:
		knowledge := adversary.KnowledgeFull
		switch attack {
		case AttackAdvBlind:
			knowledge = adversary.KnowledgeNone
		case AttackAdvPartial:
			knowledge = adversary.KnowledgePartial
		}
		ev, err := adversary.New(net, a, sim)
		if err != nil {
			return attackOutcome{}, err
		}
		// The Monte-Carlo campaign is timed (and its heap delta recorded) so
		// reports can gate the attack engine's throughput and per-run
		// allocation like any other perf metric.  Event mode keeps the cell
		// cost independent of MaxTicks on hardened assignments; it is
		// deterministic per seed, so baselines stay comparable.
		var memPre, memPost runtime.MemStats
		runtime.ReadMemStats(&memPre)
		start := time.Now()
		res, err := ev.RunContext(ctx, adversary.Config{
			Entry:     entry,
			Target:    target,
			Knowledge: knowledge,
			Runs:      runs,
			MaxTicks:  200,
			Seed:      seed,
			Mode:      attacksim.ModeEvent,
		})
		elapsed := time.Since(start)
		runtime.ReadMemStats(&memPost)
		if err != nil {
			return attackOutcome{}, err
		}
		out := attackOutcome{MTTC: res.MTTC, PCompromise: res.SuccessRate}
		if secs := elapsed.Seconds(); secs > 0 && res.Runs > 0 {
			out.MCRunsPerSec = float64(res.Runs) / secs
			out.MCAllocPerRun = (memPost.TotalAlloc - memPre.TotalAlloc) / uint64(res.Runs)
		}
		return out, nil
	default:
		return attackOutcome{}, fmt.Errorf("scenario: unknown attack model %v", attack)
	}
}

package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/serve"
	"netdiversity/internal/vulnsim"
)

// serveBenchReads is the number of sequential GET /assignment requests used
// to measure the lock-free read throughput of a serve cell.
const serveBenchReads = 200

// serveBench holds the latency measurements of one serve cell.
type serveBench struct {
	createMS    float64
	deltaMS     float64
	assessMS    float64
	readsPerSec float64
}

// runServeBench drives the cell's network end-to-end through an in-process
// divd server over loopback HTTP: one create (spec decode + cold solve), the
// cell's churn delta stream (incremental re-optimisations), a burst of
// assignment reads and one Monte-Carlo assessment.  The server runs with one
// solve worker so latencies measure the serving path, not scheduler luck.
func runServeBench(ctx context.Context, nw *netmodel.Network, sim *vulnsim.SimilarityTable, c Cell) (serveBench, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = time.Minute
	}
	srv := serve.New(serve.Config{
		SolveWorkers:   1,
		RequestTimeout: timeout,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveBench{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // closed below
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	// The delta stream: the cell's churn axis, or the default mixed stream
	// when the cell is churn-free (serve cells measure serving latency, not
	// the incremental engine itself, so any deterministic stream does).
	churnCell := c
	if churnCell.Churn.None() {
		spec, err := ParseChurn("mixed10")
		if err != nil {
			return serveBench{}, err
		}
		churnCell.Churn = spec
	}
	deltas, err := GenerateChurn(nw, churnCell)
	if err != nil {
		return serveBench{}, err
	}

	var out serveBench

	// Create: the spec round-trips through JSON exactly as a client would
	// send it, with the cell's synthetic similarity table inlined.
	createBody, err := json.Marshal(map[string]any{
		"id":             "bench",
		"spec":           netmodel.ToSpec(nw, nil),
		"solver":         c.Solver,
		"seed":           c.Seed,
		"max_iterations": c.MaxIterations,
		"similarity":     similaritySpec(sim),
	})
	if err != nil {
		return serveBench{}, err
	}
	start := time.Now()
	if err := doJSON(ctx, client, http.MethodPost, base+"/v1/networks", createBody, http.StatusCreated, nil); err != nil {
		return serveBench{}, fmt.Errorf("serve bench create: %w", err)
	}
	out.createMS = ms(time.Since(start))

	// Deltas: one POST per generated delta, mean latency.
	if len(deltas) > 0 {
		start = time.Now()
		for i, d := range deltas {
			body, err := json.Marshal(d)
			if err != nil {
				return serveBench{}, err
			}
			if err := doJSON(ctx, client, http.MethodPost, base+"/v1/networks/bench/deltas", body, http.StatusOK, nil); err != nil {
				return serveBench{}, fmt.Errorf("serve bench delta %d: %w", i, err)
			}
		}
		out.deltaMS = ms(time.Since(start)) / float64(len(deltas))
	}

	// Reads: sequential assignment GETs (lock-free snapshot path).
	start = time.Now()
	for i := 0; i < serveBenchReads; i++ {
		if err := doJSON(ctx, client, http.MethodGet, base+"/v1/networks/bench/assignment", nil, http.StatusOK, nil); err != nil {
			return serveBench{}, fmt.Errorf("serve bench read %d: %w", i, err)
		}
	}
	if d := time.Since(start); d > 0 {
		out.readsPerSec = float64(serveBenchReads) / d.Seconds()
	}

	// Assess: one Monte-Carlo campaign against the served assignment.
	runs := c.AttackRuns
	if runs <= 0 {
		runs = 50
	}
	assessBody, err := json.Marshal(map[string]any{
		"knowledge": "full",
		"mode":      "event",
		"runs":      runs,
		"max_ticks": 200,
		"seed":      c.Seed,
	})
	if err != nil {
		return serveBench{}, err
	}
	start = time.Now()
	if err := doJSON(ctx, client, http.MethodPost, base+"/v1/networks/bench/assess", assessBody, http.StatusOK, nil); err != nil {
		return serveBench{}, fmt.Errorf("serve bench assess: %w", err)
	}
	out.assessMS = ms(time.Since(start))
	return out, nil
}

// similaritySpec converts a similarity table into the create endpoint's
// custom-table form (off-diagonal nonzero pairs only).
func similaritySpec(sim *vulnsim.SimilarityTable) map[string]any {
	products := sim.Products()
	var entries []map[string]any
	for i, a := range products {
		for _, b := range products[i+1:] {
			if s := sim.Sim(a, b); s != 0 {
				entries = append(entries, map[string]any{"a": a, "b": b, "sim": s})
			}
		}
	}
	return map[string]any{"kind": "custom", "entries": entries}
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// doJSON performs one request and checks the status code, draining the body
// so connections are reused.
func doJSON(ctx context.Context, client *http.Client, method, url string, body []byte, wantStatus int, into any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(data))
	}
	if into != nil {
		return json.Unmarshal(data, into)
	}
	return nil
}

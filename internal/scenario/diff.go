package scenario

import (
	"fmt"
	"strings"
)

// DiffOptions tunes the baseline comparison.
type DiffOptions struct {
	// Tolerance is the relative wall-clock change tolerated before a cell
	// counts as a regression (or an improvement).  Default 0.15.
	Tolerance float64
	// FloorMS is the absolute wall-clock change (milliseconds) a cell must
	// additionally exceed: sub-floor cells are too fast for a relative
	// tolerance to be meaningful in CI.  Default 10ms.
	FloorMS float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Tolerance <= 0 {
		o.Tolerance = 0.15
	}
	if o.FloorMS <= 0 {
		o.FloorMS = 10
	}
	return o
}

// Verdict classifies one cell of a baseline diff.
type Verdict string

const (
	// VerdictOK means the wall-clock change is within tolerance.
	VerdictOK Verdict = "ok"
	// VerdictRegression means the cell got slower than tolerance allows.
	VerdictRegression Verdict = "regression"
	// VerdictImprovement means the cell got faster than tolerance requires.
	VerdictImprovement Verdict = "improvement"
	// VerdictError means the cell failed in the current run but completed in
	// the baseline (counts as a regression for the exit code).
	VerdictError Verdict = "error"
	// VerdictTimeout means the cell hit its per-cell deadline in the current
	// run.  Timeouts never fail the gate: scale suites deliberately carry
	// cells (flat solvers at the largest sizes) that age out as the matrix
	// grows, and a slow runner must degrade a report, not break CI.
	VerdictTimeout Verdict = "timed_out"
	// VerdictNew means the cell has no baseline counterpart.
	VerdictNew Verdict = "new"
	// VerdictMissing means the baseline cell is absent from the current run.
	VerdictMissing Verdict = "missing"
)

// churnGapSlackPts is the absolute worsening (in percentage points) of a
// churn cell's worst-step energy gap tolerated before the cell counts as a
// regression: the incremental path is allowed noise, not a quality slide.
const churnGapSlackPts = 1.0

// Monte-Carlo attack-engine gates.  The campaigns of a CI cell finish in
// well under a millisecond, so the throughput measurement is far noisier
// than a cell wall-clock; only a halving — the scale of an engine
// regression, not of scheduler jitter — fails the gate.  The per-run
// allocation is near-deterministic (compile cost amortised over the runs)
// and gated tightly: the engine's zero-alloc steady state must not erode.
const (
	mcThroughputSlack = 0.5
	mcAllocSlackBytes = 4096
)

// CellDelta compares one cell across two reports.
type CellDelta struct {
	ID          string
	OldMS       float64
	NewMS       float64
	Ratio       float64 // NewMS / OldMS; 0 when either side is absent
	DeltaEnergy float64 // NewEnergy - OldEnergy
	Verdict     Verdict
	// ChurnNote explains a churn-metric regression (incremental wall-clock
	// or energy-gap) that fired independently of the WallMS comparison.
	ChurnNote string
	// MCNote explains a Monte-Carlo attack-engine regression (simulation
	// throughput or per-run allocation) that fired independently of the
	// WallMS comparison.
	MCNote string
	// ServeNote explains a serving-plane regression (create or delta request
	// latency) that fired independently of the WallMS comparison.
	ServeNote string
	// SlamNote explains a load-phase regression (p99 under concurrent
	// multi-tenant load, or errors appearing where the baseline had none)
	// that fired independently of the WallMS comparison.
	SlamNote string
}

// Diff is the cell-by-cell comparison of a run against a baseline.
type Diff struct {
	Suite     string
	Tolerance float64
	FloorMS   float64
	Cells     []CellDelta
}

// Counts tallies the verdicts.
func (d Diff) Counts() map[Verdict]int {
	out := make(map[Verdict]int)
	for _, c := range d.Cells {
		out[c.Verdict]++
	}
	return out
}

// HasRegressions reports whether any cell regressed (including cells that
// errored in the current run but completed in the baseline).
func (d Diff) HasRegressions() bool {
	for _, c := range d.Cells {
		if c.Verdict == VerdictRegression || c.Verdict == VerdictError {
			return true
		}
	}
	return false
}

// Compare diffs the current report against a baseline, cell by cell (matched
// on the stable cell ID).  Cells appearing in only one report are reported as
// new/missing but never fail the gate: a suite edit legitimately changes the
// cell set, and the baseline is refreshed on merge.
func Compare(baseline, current *Report, opts DiffOptions) Diff {
	opts = opts.withDefaults()
	d := Diff{Suite: current.Suite, Tolerance: opts.Tolerance, FloorMS: opts.FloorMS}
	for _, cur := range current.Cells {
		old, ok := baseline.Cell(cur.ID)
		if !ok {
			d.Cells = append(d.Cells, CellDelta{ID: cur.ID, NewMS: cur.WallMS, Verdict: VerdictNew})
			continue
		}
		delta := CellDelta{
			ID:          cur.ID,
			OldMS:       old.WallMS,
			NewMS:       cur.WallMS,
			DeltaEnergy: cur.Energy - old.Energy,
		}
		switch {
		case cur.TimedOut:
			delta.Verdict = VerdictTimeout
		case cur.Error != "" && old.Error == "":
			delta.Verdict = VerdictError
		case old.Error != "" || old.TimedOut:
			// A baseline cell that itself failed or timed out carries no
			// usable timing (divbench refuses to gate-pass a report with
			// failed cells, but a stale or hand-edited baseline could still
			// contain one, and timed-out cells are kept by design).
			delta.Verdict = VerdictOK
		case old.WallMS > 0:
			delta.Ratio = cur.WallMS / old.WallMS
			switch {
			case cur.WallMS > old.WallMS*(1+opts.Tolerance) && cur.WallMS-old.WallMS > opts.FloorMS:
				delta.Verdict = VerdictRegression
			case cur.WallMS < old.WallMS*(1-opts.Tolerance) && old.WallMS-cur.WallMS > opts.FloorMS:
				delta.Verdict = VerdictImprovement
			default:
				delta.Verdict = VerdictOK
			}
		default:
			delta.Verdict = VerdictOK
		}
		// Churn cells additionally gate the incremental path itself: WallMS
		// only covers the initial cold solve, so a Reoptimize slowdown or a
		// quality slide must fail on its own metrics.
		if delta.Verdict != VerdictError && old.Error == "" && old.ChurnSteps > 0 && cur.ChurnSteps > 0 {
			switch {
			case cur.ChurnIncrementalMS > old.ChurnIncrementalMS*(1+opts.Tolerance) &&
				cur.ChurnIncrementalMS-old.ChurnIncrementalMS > opts.FloorMS:
				delta.Verdict = VerdictRegression
				delta.ChurnNote = fmt.Sprintf("churn incremental %.1fms -> %.1fms", old.ChurnIncrementalMS, cur.ChurnIncrementalMS)
			case cur.ChurnEnergyGapPct > old.ChurnEnergyGapPct+churnGapSlackPts:
				delta.Verdict = VerdictRegression
				delta.ChurnNote = fmt.Sprintf("churn energy gap %.2f%% -> %.2f%%", old.ChurnEnergyGapPct, cur.ChurnEnergyGapPct)
			}
		}
		// Serve cells gate the serving plane's request latencies: WallMS
		// covers only the library-level solve, so a slowdown in the HTTP
		// create path or the per-delta re-optimisation path must fail on its
		// own metrics.
		if delta.Verdict != VerdictError && old.Error == "" && old.ServeCreateMS > 0 && cur.ServeCreateMS > 0 {
			switch {
			case cur.ServeCreateMS > old.ServeCreateMS*(1+opts.Tolerance) &&
				cur.ServeCreateMS-old.ServeCreateMS > opts.FloorMS:
				delta.Verdict = VerdictRegression
				delta.ServeNote = fmt.Sprintf("serve create %.1fms -> %.1fms", old.ServeCreateMS, cur.ServeCreateMS)
			case cur.ServeDeltaMS > old.ServeDeltaMS*(1+opts.Tolerance) &&
				cur.ServeDeltaMS-old.ServeDeltaMS > opts.FloorMS:
				delta.Verdict = VerdictRegression
				delta.ServeNote = fmt.Sprintf("serve delta %.1fms -> %.1fms", old.ServeDeltaMS, cur.ServeDeltaMS)
			}
		}
		// Slam cells gate the serving plane under concurrent multi-tenant
		// load: WallMS covers only the library-level solve, so a p99 collapse
		// under contention — or errors where the baseline run was clean —
		// must fail on its own metrics.
		if delta.Verdict != VerdictError && old.Error == "" && old.SlamOps > 0 && cur.SlamOps > 0 {
			switch {
			case cur.SlamErrors > 0 && old.SlamErrors == 0:
				delta.Verdict = VerdictRegression
				delta.SlamNote = fmt.Sprintf("slam errors 0 -> %d", cur.SlamErrors)
			case cur.SlamReadP99MS > old.SlamReadP99MS*(1+opts.Tolerance) &&
				cur.SlamReadP99MS-old.SlamReadP99MS > opts.FloorMS:
				delta.Verdict = VerdictRegression
				delta.SlamNote = fmt.Sprintf("slam read p99 %.1fms -> %.1fms", old.SlamReadP99MS, cur.SlamReadP99MS)
			case cur.SlamDeltaP99MS > old.SlamDeltaP99MS*(1+opts.Tolerance) &&
				cur.SlamDeltaP99MS-old.SlamDeltaP99MS > opts.FloorMS:
				delta.Verdict = VerdictRegression
				delta.SlamNote = fmt.Sprintf("slam delta p99 %.1fms -> %.1fms", old.SlamDeltaP99MS, cur.SlamDeltaP99MS)
			}
		}
		// Monte-Carlo attack cells gate the simulation engine itself: WallMS
		// covers only the solve, so a throughput collapse or an allocation
		// creep in the batched simulator must fail on its own metrics.
		if delta.Verdict != VerdictError && old.Error == "" && old.MCRunsPerSec > 0 && cur.MCRunsPerSec > 0 {
			switch {
			case cur.MCRunsPerSec < old.MCRunsPerSec*(1-mcThroughputSlack):
				delta.Verdict = VerdictRegression
				delta.MCNote = fmt.Sprintf("mc throughput %.0f -> %.0f runs/s", old.MCRunsPerSec, cur.MCRunsPerSec)
			case cur.MCAllocPerRun > old.MCAllocPerRun+mcAllocSlackBytes &&
				float64(cur.MCAllocPerRun) > float64(old.MCAllocPerRun)*(1+opts.Tolerance):
				delta.Verdict = VerdictRegression
				delta.MCNote = fmt.Sprintf("mc allocs %dB -> %dB per run", old.MCAllocPerRun, cur.MCAllocPerRun)
			}
		}
		d.Cells = append(d.Cells, delta)
	}
	for _, old := range baseline.Cells {
		if _, ok := current.Cell(old.ID); !ok {
			d.Cells = append(d.Cells, CellDelta{ID: old.ID, OldMS: old.WallMS, Verdict: VerdictMissing})
		}
	}
	return d
}

// Render returns the diff as aligned text: one row per cell plus a summary
// line.  The layout is covered by a golden-file test, so CI logs stay
// greppable across versions.
func (d Diff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline diff — suite %s (tolerance %.0f%%, floor %.0fms)\n",
		d.Suite, d.Tolerance*100, d.FloorMS)
	idWidth := len("cell")
	for _, c := range d.Cells {
		if len(c.ID) > idWidth {
			idWidth = len(c.ID)
		}
	}
	fmt.Fprintf(&b, "%-*s  %10s  %10s  %7s  %10s  %s\n",
		idWidth, "cell", "old ms", "new ms", "ratio", "Δenergy", "verdict")
	for _, c := range d.Cells {
		old, cur, ratio, energy := "-", "-", "-", "-"
		if c.Verdict != VerdictNew {
			old = fmt.Sprintf("%.1f", c.OldMS)
		}
		if c.Verdict != VerdictMissing {
			cur = fmt.Sprintf("%.1f", c.NewMS)
		}
		if c.Ratio > 0 {
			ratio = fmt.Sprintf("%.2f", c.Ratio)
		}
		switch c.Verdict {
		case VerdictOK, VerdictRegression, VerdictImprovement:
			energy = fmt.Sprintf("%.3f", c.DeltaEnergy)
		}
		verdict := string(c.Verdict)
		if c.ChurnNote != "" {
			verdict += " (" + c.ChurnNote + ")"
		}
		if c.MCNote != "" {
			verdict += " (" + c.MCNote + ")"
		}
		if c.ServeNote != "" {
			verdict += " (" + c.ServeNote + ")"
		}
		if c.SlamNote != "" {
			verdict += " (" + c.SlamNote + ")"
		}
		fmt.Fprintf(&b, "%-*s  %10s  %10s  %7s  %10s  %s\n",
			idWidth, c.ID, old, cur, ratio, energy, verdict)
	}
	counts := d.Counts()
	fmt.Fprintf(&b, "summary: %d regressions, %d errors, %d timeouts, %d improvements, %d ok, %d new, %d missing\n",
		counts[VerdictRegression], counts[VerdictError], counts[VerdictTimeout], counts[VerdictImprovement],
		counts[VerdictOK], counts[VerdictNew], counts[VerdictMissing])
	return b.String()
}

package scenario

import (
	"context"
	"fmt"

	"netdiversity/internal/slam"
)

// slamBench holds the concurrency-latency measurements of one slam cell.
type slamBench struct {
	tenants    int
	workers    int
	ops        int64
	errors     int64
	rps        float64
	setupMS    float64
	readP50MS  float64
	readP99MS  float64
	deltaP50MS float64
	deltaP99MS float64
	p999MS     float64
	// Allocation/GC pressure of the measured phase (the in-process server
	// shares the heap with the load workers; see slam.MemReport).
	allocPerOp float64
	gcCount    uint32
	maxPauseMS float64
}

// runSlamBench drives a closed-loop multi-tenant load run against an
// in-process divd instance sized by the cell: SlamTenants sessions of the
// cell's network shape under SlamWorkers workers for a fixed SlamOps request
// budget of the default mix.  The fixed op budget (not a duration) keeps the
// run length deterministic, so CI cells take the same work everywhere and
// only the latencies vary with the machine.
func runSlamBench(ctx context.Context, c Cell) (slamBench, error) {
	cfg := slam.Config{
		Mode:           "closed",
		Tenants:        c.SlamTenants,
		Hosts:          c.Hosts,
		Degree:         c.Degree,
		Services:       c.Services,
		Solver:         c.Solver,
		Seed:           c.Seed,
		Workers:        c.SlamWorkers,
		Ops:            c.SlamOps,
		Mix:            c.SlamMix,
		MaxIterations:  c.MaxIterations,
		AssessRuns:     10,
		RequestTimeout: c.Timeout,
		ReplicaReads:   c.SlamReplica,
	}
	rep, err := slam.Run(ctx, cfg, nil)
	if err != nil {
		return slamBench{}, fmt.Errorf("slam bench: %w", err)
	}
	res := rep.Runs[0]
	out := slamBench{
		tenants: res.Config.Tenants,
		workers: res.Config.Workers,
		ops:     res.Total.Count,
		errors:  res.Total.Errors,
		rps:     res.AchievedRPS,
		setupMS: res.SetupMS,
		p999MS:  res.Total.P999MS,
	}
	if st, ok := res.Ops[slam.OpRead]; ok {
		out.readP50MS = st.P50MS
		out.readP99MS = st.P99MS
	}
	if st, ok := res.Ops[slam.OpDelta]; ok {
		out.deltaP50MS = st.P50MS
		out.deltaP99MS = st.P99MS
	}
	if res.Mem != nil {
		out.allocPerOp = res.Mem.AllocBytesPerOp
		out.gcCount = res.Mem.GCCount
		out.maxPauseMS = res.Mem.MaxPauseMS
	}
	return out, nil
}

package scenario

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestParseChurn(t *testing.T) {
	cases := []struct {
		in      string
		hostPct float64
		svcPct  float64
		ok      bool
	}{
		{"none", 0, 0, true},
		{"", 0, 0, true},
		{"hosts5", 0.05, 0, true},
		{"svc10", 0, 0.10, true},
		{"mixed25", 0.25, 0.25, true},
		{"HOSTS5", 0.05, 0, true},
		{"hosts0", 0, 0, false},
		{"hosts51", 0, 0, false},
		{"hostsx", 0, 0, false},
		{"bogus", 0, 0, false},
	}
	for _, c := range cases {
		spec, err := ParseChurn(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseChurn(%q): err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if err != nil {
			continue
		}
		if spec.HostPct != c.hostPct || spec.ServicePct != c.svcPct {
			t.Errorf("ParseChurn(%q) = %+v, want host=%v svc=%v", c.in, spec, c.hostPct, c.svcPct)
		}
	}
}

func churnCell(t *testing.T, hosts int, churn, solver string) Cell {
	t.Helper()
	m := Matrix{
		Name:          "churn-test",
		Hosts:         []int{hosts},
		Degrees:       []int{6},
		Solvers:       []string{solver},
		Churns:        []string{churn},
		MaxIterations: 10,
		Seed:          7,
	}
	cells, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("expanded %d cells, want 1", len(cells))
	}
	return cells[0]
}

func TestGenerateChurnDeterministic(t *testing.T) {
	cell := churnCell(t, 60, "mixed10", "icm")
	net1, _, err := BuildNetwork(cell)
	if err != nil {
		t.Fatal(err)
	}
	net2, _, _ := BuildNetwork(cell)
	d1, err := GenerateChurn(net1, cell)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := GenerateChurn(net2, cell)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(d1)
	j2, _ := json.Marshal(d2)
	if string(j1) != string(j2) {
		t.Fatal("churn streams differ across identical cells")
	}
	if len(d1) == 0 {
		t.Fatal("mixed10 produced an empty stream")
	}
	ops := 0
	kinds := map[string]int{}
	for _, d := range d1 {
		ops += len(d.Ops)
		for _, op := range d.Ops {
			kinds[string(op.Op)]++
		}
	}
	if kinds["remove_host"] == 0 || kinds["add_host"] == 0 || kinds["update_services"] == 0 {
		t.Fatalf("mixed churn misses event kinds: %v", kinds)
	}
	// Every join must be wired in: add_host ops are followed by add_edge ops.
	if kinds["add_edge"] < kinds["add_host"] {
		t.Fatalf("joins are not wired: %v", kinds)
	}
	_ = ops
}

func TestGenerateChurnAppliesCleanly(t *testing.T) {
	cell := churnCell(t, 50, "hosts10", "icm")
	net, _, err := BuildNetwork(cell)
	if err != nil {
		t.Fatal(err)
	}
	before := net.NumHosts()
	deltas, err := GenerateChurn(net, cell)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range deltas {
		if err := d.Apply(net); err != nil {
			t.Fatalf("delta %d does not apply: %v", i, err)
		}
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("network invalid after churn: %v", err)
	}
	// hosts10 churns ~10%: half leaves, half joins, so the count stays near
	// the start.
	if diff := net.NumHosts() - before; diff < -3 || diff > 3 {
		t.Fatalf("host count drifted by %d", diff)
	}
}

func TestExecChurnCell(t *testing.T) {
	cell := churnCell(t, 60, "hosts10", "trws")
	cell.Timeout = time.Minute
	net, sim, err := BuildNetwork(cell)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Exec(context.Background(), net, sim, cell)
	if err != nil {
		t.Fatal(err)
	}
	m := out.Measurement
	if m.Churn != "hosts10" || m.ChurnSteps == 0 {
		t.Fatalf("churn measurement missing: %+v", m)
	}
	if m.ChurnIncrementalMS <= 0 || m.ChurnFullMS <= 0 || m.ChurnSpeedup <= 0 {
		t.Fatalf("churn wall-clocks missing: %+v", m)
	}
	if m.ChurnChangedFrac < 0 || m.ChurnChangedFrac > 1 {
		t.Fatalf("changed fraction out of range: %v", m.ChurnChangedFrac)
	}
	// On a 60-host network the gap guard is loose; the churn suite's report
	// tracks the real 1000-host target.
	if m.ChurnEnergyGapPct > 5 {
		t.Fatalf("incremental energy gap %.2f%% too large", m.ChurnEnergyGapPct)
	}
}

func TestExpandChurnIDs(t *testing.T) {
	m := Matrix{
		Hosts:   []int{50},
		Solvers: []string{"icm"},
		Churns:  []string{"none", "hosts5"},
	}
	cells, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	// Churn-free IDs keep the historical six-segment form.
	if got := cells[0].ID; got != "uniform/h50/d8/s3/icm/none" {
		t.Fatalf("churn-free cell ID changed: %s", got)
	}
	if got := cells[1].ID; got != "uniform/h50/d8/s3/icm/none/hosts5" {
		t.Fatalf("churn cell ID: %s", got)
	}
	if cells[0].Seed == cells[1].Seed {
		t.Fatal("churn cells share the seed of their churn-free twin")
	}
}

func TestChurnSuiteExpands(t *testing.T) {
	m, err := Suite("churn")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cells {
		if c.ID == "uniform/h1000/d8/s3/trws/none/hosts5" {
			found = true
		}
	}
	if !found {
		t.Fatalf("churn suite misses the headline 1000-host 5%% trws cell; got %d cells", len(cells))
	}
}

package scenario

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// tinyMatrix is a fast two-cell matrix used by the execution tests.
func tinyMatrix() Matrix {
	return Matrix{
		Name:          "tiny",
		Topologies:    []string{TopoUniform, TopoZoned},
		Hosts:         []int{24},
		Degrees:       []int{4},
		Services:      []int{2},
		Solvers:       []string{"trws"},
		Attacks:       []string{"recon"},
		MaxIterations: 8,
		Seed:          7,
	}
}

func TestExpandDeterministic(t *testing.T) {
	m := Matrix{
		Topologies: []string{TopoUniform, TopoScaleFree},
		Hosts:      []int{50, 200},
		Degrees:    []int{4, 8},
		Services:   []int{2},
		Solvers:    []string{"trws", "icm"},
		Attacks:    []string{"none", "recon"},
		Seed:       99,
	}
	a, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("expansion of the same matrix differs between calls")
	}
	want := 2 * 2 * 2 * 1 * 2 * 2
	if len(a) != want {
		t.Fatalf("expanded %d cells, want %d", len(a), want)
	}
	seen := make(map[string]bool, len(a))
	for i, c := range a {
		if c.Index != i {
			t.Errorf("cell %q has index %d, want %d", c.ID, c.Index, i)
		}
		if seen[c.ID] {
			t.Errorf("duplicate cell ID %q", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestCellSeedsStableAcrossAxisEdits(t *testing.T) {
	wide := Matrix{Hosts: []int{50, 200}, Solvers: []string{"trws", "icm"}, Seed: 5}
	narrow := Matrix{Hosts: []int{50}, Solvers: []string{"icm"}, Seed: 5}
	wideCells, err := Expand(wide)
	if err != nil {
		t.Fatal(err)
	}
	narrowCells, err := Expand(narrow)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make(map[string]int64, len(wideCells))
	for _, c := range wideCells {
		seeds[c.ID] = c.Seed
	}
	for _, c := range narrowCells {
		wideSeed, ok := seeds[c.ID]
		if !ok {
			t.Fatalf("cell %q missing from the wider expansion", c.ID)
		}
		if wideSeed != c.Seed {
			t.Errorf("cell %q seed changed when other axis values were removed: %d vs %d", c.ID, wideSeed, c.Seed)
		}
	}
}

func TestExpandRejectsInvalidAxes(t *testing.T) {
	cases := []Matrix{
		{Topologies: []string{"torus"}},
		{Hosts: []int{1}},
		{Solvers: []string{"quantum"}},
		{Attacks: []string{"ddos"}},
	}
	for _, m := range cases {
		if _, err := Expand(m); err == nil {
			t.Errorf("matrix %+v should fail to expand", m)
		}
	}
}

func TestBuildNetworkTopologies(t *testing.T) {
	for _, topo := range Topologies() {
		cell := Cell{Topology: topo, Hosts: 20, Degree: 4, Services: 2, ProductsPerService: 3, Seed: 3}
		net, sim, err := BuildNetwork(cell)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if net.NumHosts() != 20 {
			t.Errorf("%s: built %d hosts, want 20", topo, net.NumHosts())
		}
		if sim == nil {
			t.Fatalf("%s: nil similarity table", topo)
		}
		// Every host product choice must be covered by the similarity table
		// products (the zoned builder shares the synthetic catalogue).
		products := make(map[string]bool)
		for _, p := range sim.Products() {
			products[p] = true
		}
		for _, p := range net.Products() {
			if !products[string(p)] {
				t.Errorf("%s: network product %s missing from similarity table", topo, p)
			}
		}
	}
}

func TestExecDeterministic(t *testing.T) {
	cells, err := Expand(tinyMatrix())
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	net, sim, err := BuildNetwork(c)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Exec(context.Background(), net, sim, c)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Exec(context.Background(), net, sim, c)
	if err != nil {
		t.Fatal(err)
	}
	if first.Energy != second.Energy || first.PairwiseCost != second.PairwiseCost ||
		first.Richness != second.Richness || first.MTTC != second.MTTC {
		t.Errorf("repeated execution of the same cell diverged: %+v vs %+v", first.Measurement, second.Measurement)
	}
	if first.Assignment == nil {
		t.Error("outcome is missing the decoded assignment")
	}
}

func TestRunCollectsAllCells(t *testing.T) {
	rep, err := Run(context.Background(), tinyMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("report has %d cells, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Error != "" {
			t.Errorf("cell %s failed: %s", c.ID, c.Error)
		}
		if c.WallMS <= 0 {
			t.Errorf("cell %s has no wall-clock measurement", c.ID)
		}
		if c.MTTC <= 0 {
			t.Errorf("cell %s has no MTTC estimate under the recon attack", c.ID)
		}
		if c.Richness <= 0 {
			t.Errorf("cell %s has no diversity metric", c.ID)
		}
	}
}

// TestExecRecordsMCMetrics verifies that Monte-Carlo attack cells carry the
// attack engine's throughput and allocation measurements (and that the
// analytic models do not).
func TestExecRecordsMCMetrics(t *testing.T) {
	m := tinyMatrix()
	m.Attacks = []string{"adv-full"}
	cells, err := Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	net, sim, err := BuildNetwork(c)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Exec(context.Background(), net, sim, c)
	if err != nil {
		t.Fatal(err)
	}
	if out.MCRunsPerSec <= 0 {
		t.Errorf("adv-full cell has no Monte-Carlo throughput: %+v", out.Measurement)
	}
	if out.MTTC <= 0 {
		t.Errorf("adv-full cell has no MTTC: %+v", out.Measurement)
	}

	m.Attacks = []string{"recon"}
	cells, err = Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	net, sim, err = BuildNetwork(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	out, err = Exec(context.Background(), net, sim, cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if out.MCRunsPerSec != 0 || out.MCAllocPerRun != 0 {
		t.Errorf("analytic recon cell should have no Monte-Carlo metrics: %+v", out.Measurement)
	}
}

func TestPerCellTimeoutHonored(t *testing.T) {
	m := tinyMatrix()
	m.Timeout = time.Nanosecond
	rep, err := Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	// A timeout is an expected degradation, not a failure: the cell records
	// the timed_out marker, keeps Error empty and the suite completes.
	if n := len(rep.Failed()); n != 0 {
		t.Fatalf("timeouts must not count as failures, got %d/%d", n, len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if !c.TimedOut {
			t.Errorf("cell %s error %q not marked as a timeout", c.ID, c.Error)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(context.Background(), tinyMatrix())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, loaded) {
		t.Errorf("report changed across the JSON round trip:\nwrote  %+v\nloaded %+v", rep, loaded)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	data := `{"schema_version": 99, "suite": "tiny", "cells": [{"id": "x"}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("report with a future schema version should be rejected")
	}
}

func TestSuitesExpand(t *testing.T) {
	for _, name := range SuiteNames() {
		m, err := Suite(name)
		if err != nil {
			t.Fatal(err)
		}
		cells, err := Expand(m)
		if err != nil {
			t.Fatalf("suite %s: %v", name, err)
		}
		if len(cells) == 0 {
			t.Errorf("suite %s expands to no cells", name)
		}
	}
	if _, err := Suite("bogus"); err == nil {
		t.Error("unknown suite should fail")
	}
}

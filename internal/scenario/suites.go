package scenario

import (
	"fmt"
	"sort"
	"time"
)

// Suite returns the named benchmark matrix.  Suites are functions of their
// name only, so a BENCH_<suite>.json baseline produced by one build is
// comparable with the same suite run by another build (the diff matches
// cells by ID and tolerates suite edits as new/missing cells).
func Suite(name string) (Matrix, error) {
	f, ok := suites()[name]
	if !ok {
		return Matrix{}, fmt.Errorf("scenario: unknown suite %q (known: %v)", name, SuiteNames())
	}
	return f(), nil
}

// SuiteNames lists the registered suite names, sorted.
func SuiteNames() []string {
	reg := suites()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func suites() map[string]func() Matrix {
	return map[string]func() Matrix{
		// quick is the CI gate: every solver on two topology families at two
		// sizes under the reconnaissance attack estimate, plus the
		// full-knowledge Monte-Carlo attacker so the compiled attack engine's
		// throughput and per-run allocation are gated per PR.  It must finish
		// in well under two minutes on a 1-core runner; Repeats=3 takes the
		// minimum wall-clock per cell to damp scheduler noise.
		"quick": func() Matrix {
			return Matrix{
				Name:          "quick",
				Topologies:    []string{TopoUniform, TopoZoned},
				Hosts:         []int{200, 1000},
				Degrees:       []int{8},
				Services:      []int{3},
				Solvers:       []string{"trws", "bp", "icm", "anneal"},
				Attacks:       []string{"recon", "adv-full"},
				MaxIterations: 40,
				Seed:          42,
				Timeout:       60 * time.Second,
				AttackRuns:    200,
				Repeats:       3,
			}
		},
		// full is the paper-scale matrix: every topology family, up to 1000
		// hosts, every solver, both an analytic and a Monte-Carlo attacker.
		"full": func() Matrix {
			return Matrix{
				Name:          "full",
				Topologies:    Topologies(),
				Hosts:         []int{50, 200, 1000},
				Degrees:       []int{8},
				Services:      []int{3},
				Solvers:       []string{"trws", "bp", "icm", "anneal"},
				Attacks:       []string{"recon", "adv-full"},
				MaxIterations: 20,
				Seed:          42,
				Timeout:       5 * time.Minute,
				AttackRuns:    100,
				Repeats:       1,
			}
		},
		// churn measures the incremental re-optimisation engine: every cell
		// replays a deterministic delta stream (host joins/leaves, service
		// upgrades) through ApplyDelta + Reoptimize and re-solves the mutated
		// network from scratch after each step for comparison.  The headline
		// cell is uniform/h1000 trws at 5% host churn: incremental must stay
		// within ~1% of the full re-solve energy at a multiple of its speed.
		"churn": func() Matrix {
			return Matrix{
				Name:          "churn",
				Topologies:    []string{TopoUniform},
				Hosts:         []int{200, 1000},
				Degrees:       []int{8},
				Services:      []int{3},
				Solvers:       []string{"trws", "icm"},
				Attacks:       []string{"none"},
				Churns:        []string{"hosts5", "mixed10"},
				MaxIterations: 40,
				Seed:          42,
				Timeout:       3 * time.Minute,
				Repeats:       1,
			}
		},
		// serve measures the serving plane (internal/serve + cmd/divd): each
		// cell drives its network through an in-process daemon over loopback
		// HTTP — create (spec decode + cold solve), the mixed10 delta stream
		// (incremental re-optimisations), 200 assignment reads (lock-free
		// snapshot path) and one Monte-Carlo assessment — so request latency
		// is gated like every other perf metric.
		"serve": func() Matrix {
			return Matrix{
				Name:          "serve",
				Topologies:    []string{TopoUniform},
				Hosts:         []int{200, 1000},
				Degrees:       []int{8},
				Services:      []int{3},
				Solvers:       []string{"trws"},
				Attacks:       []string{"none"},
				ServeLatency:  true,
				MaxIterations: 40,
				Seed:          42,
				Timeout:       2 * time.Minute,
				AttackRuns:    100,
				Repeats:       1,
			}
		},
		// slam measures the serving plane under concurrent multi-tenant load
		// (internal/slam, closed loop) in three shapes: the base cell — six
		// tenant sessions of a 50-host network served by four workers for a
		// fixed 400-request budget of the default mix — the contended cell —
		// four sessions under sixteen workers of a delta-heavy mix, keeping
		// several writers queued behind every session's writer slot — and the
		// replica cell — the same load against a primary/follower replication
		// pair (internal/replic) with reads and metrics served from the
		// follower, gating the replica-read path's latency and error rate.
		// Together they gate the p99 of the snapshot-read and delta paths
		// under contention — the serve suite's single-client latencies
		// cannot see lock, scheduler or write-queueing regressions that only
		// appear when sessions compete.
		"slam": func() Matrix {
			return Matrix{
				Name:          "slam",
				Topologies:    []string{TopoUniform},
				Hosts:         []int{50},
				Degrees:       []int{8},
				Services:      []int{3},
				Solvers:       []string{"trws"},
				Attacks:       []string{"none"},
				SlamLoad:      true,
				SlamProfiles:  []string{SlamProfileBase, SlamProfileContended, SlamProfileReplica},
				MaxIterations: 40,
				Seed:          42,
				Timeout:       2 * time.Minute,
				Repeats:       1,
			}
		},
		// scale measures raw solver scaling through the graph-direct path:
		// the streamed CSR generator emits the MRF without a network model,
		// so sizes far beyond the map-based model (10^5 hosts on PRs, 10^6
		// behind scale1m) run flat trws against the multilevel kernel.  A
		// cell that outgrows its timeout records a timed_out marker instead
		// of failing the suite, so the flat solver aging out at large sizes
		// is data, not an error.
		"scale": func() Matrix {
			return Matrix{
				Name:          "scale",
				Topologies:    []string{TopoUniform},
				Hosts:         []int{10000, 100000},
				Degrees:       []int{8},
				Services:      []int{3},
				Solvers:       []string{"trws", "multilevel"},
				Attacks:       []string{"none"},
				GraphDirect:   true,
				MaxIterations: 40,
				Seed:          42,
				Timeout:       3 * time.Minute,
				Repeats:       1,
			}
		},
		// scale1m is the million-host demonstration cell set: multilevel
		// only (flat trws would blow the timeout by an order of magnitude),
		// dispatched manually or from the workflow_dispatch CI job.
		"scale1m": func() Matrix {
			return Matrix{
				Name:          "scale1m",
				Topologies:    []string{TopoUniform},
				Hosts:         []int{1000000},
				Degrees:       []int{8},
				Services:      []int{3},
				Solvers:       []string{"multilevel"},
				Attacks:       []string{"none"},
				GraphDirect:   true,
				MaxIterations: 40,
				Seed:          42,
				Timeout:       10 * time.Minute,
				Repeats:       1,
			}
		},
		// pipeline measures the partitioned parallel pipeline against the
		// sequential path on the largest size.
		"pipeline": func() Matrix {
			return Matrix{
				Name:          "pipeline",
				Topologies:    []string{TopoUniform, TopoScaleFree},
				Hosts:         []int{1000},
				Degrees:       []int{10},
				Services:      []int{3},
				Solvers:       []string{"trws"},
				Attacks:       []string{"none"},
				MaxIterations: 20,
				Seed:          42,
				Timeout:       5 * time.Minute,
				Parts:         8,
				Repeats:       3,
			}
		},
	}
}

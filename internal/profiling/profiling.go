// Package profiling provides the pprof plumbing shared by the command-line
// tools (-cpuprofile / -memprofile flags in the style of the reference
// experiment harnesses).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that ends the CPU profile and, when memPath is non-empty, writes
// a heap profile.  The stop function must be called exactly once; both paths
// empty make Start (and stop) a no-op.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}

// Package mrftest provides shared test/benchmark fixtures for the solver
// kernel packages, so cross-solver comparisons (e.g. the small-K message
// benchmarks in trws and bp) measure the exact same instance.
package mrftest

import (
	"math/rand"
	"testing"

	"netdiversity/internal/mrf"
)

// BenchGraph builds a degree-6 random MRF with uniform label count K for the
// message-kernel benchmarks (K=4 exercises the unrolled small-K fast paths,
// K=6 the generic loops).  The construction is fully seeded, so every caller
// benchmarks the identical graph.
func BenchGraph(tb testing.TB, nodes, labels int) *mrf.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, nodes)
	for i := range counts {
		counts[i] = labels
	}
	g, err := mrf.NewGraph(counts)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		for l := 0; l < labels; l++ {
			if err := g.SetUnary(i, l, rng.Float64()); err != nil {
				tb.Fatal(err)
			}
		}
	}
	cost := make([][]float64, labels)
	for a := range cost {
		cost[a] = make([]float64, labels)
		for x := range cost[a] {
			cost[a][x] = rng.Float64() * 2
		}
	}
	for i := 0; i < nodes; i++ {
		for _, step := range []int{1, 7, 13} {
			if _, err := g.AddEdge(i, (i+step)%nodes, cost); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return g
}

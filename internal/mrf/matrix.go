package mrf

import (
	"hash/maphash"
	"math"
)

// Matrix is a dense pairwise cost matrix stored as one contiguous row-major
// buffer.  Graphs intern their matrices: edges that carry the same costs —
// the common case in diversification problems, where every link of a service
// pair uses the identical similarity matrix — share a single Matrix, so
// memory is O(distinct matrices · K²) instead of O(edges · K²) and message
// passing walks contiguous rows.
type Matrix struct {
	// Rows and Cols are the label-space sizes of the two endpoints.
	Rows, Cols int
	// Data holds the costs row-major: Data[i*Cols+j] = cost(i, j).
	Data []float64
}

// At returns the cost of the label pair (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Row returns the contiguous cost row for label i of the row endpoint.
// Callers must treat it as read-only.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols] }

// Min returns the smallest entry (+Inf for an empty matrix).
func (m *Matrix) Min() float64 {
	min := math.Inf(1)
	for _, v := range m.Data {
		if v < min {
			min = v
		}
	}
	return min
}

// transposed returns a new matrix with rows and columns swapped, so that
// column walks of the original become contiguous row walks.
func (m *Matrix) transposed() *Matrix {
	t := &Matrix{Rows: m.Cols, Cols: m.Rows, Data: make([]float64, len(m.Data))}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// rowViews returns a [][]float64 whose rows alias the flat buffer (zero-copy
// compatibility view for the legacy Edge.Cost field).
func (m *Matrix) rowViews() [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// flatten copies a nested cost matrix into a Matrix (shape already checked).
func flatten(cost [][]float64) *Matrix {
	rows := len(cost)
	cols := 0
	if rows > 0 {
		cols = len(cost[0])
	}
	m := &Matrix{Rows: rows, Cols: cols, Data: make([]float64, 0, rows*cols)}
	for _, row := range cost {
		m.Data = append(m.Data, row...)
	}
	return m
}

var matrixHashSeed = maphash.MakeSeed()

// contentHash hashes the matrix shape and contents for interning.
func (m *Matrix) contentHash() uint64 {
	var h maphash.Hash
	h.SetSeed(matrixHashSeed)
	var buf [8]byte
	put := func(u uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(m.Rows))
	put(uint64(m.Cols))
	for _, v := range m.Data {
		put(math.Float64bits(v))
	}
	return h.Sum64()
}

// equalContent reports whether two matrices have identical shape and entries
// (bitwise, so NaNs compare equal to themselves for interning purposes).
func (m *Matrix) equalContent(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || len(m.Data) != len(o.Data) {
		return false
	}
	for i, v := range m.Data {
		if math.Float64bits(v) != math.Float64bits(o.Data[i]) {
			return false
		}
	}
	return true
}

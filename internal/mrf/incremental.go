package mrf

import "fmt"

// Incremental mutation support.  The flat storage layout (contiguous unary
// buffer, CSR adjacency, interned pairwise matrices) is optimised for solver
// reads, but a long-lived serving engine must also absorb network deltas
// without a cold rebuild.  The operations here keep the flat invariants:
// nodes are appended (never shifted), edges are compacted in one pass, and
// the CSR adjacency is invalidated lazily exactly like AddEdge does.

// AddNode appends a node with the given label count and returns its index.
// The new node's unary costs start at zero and it has no incident edges.
func (g *Graph) AddNode(labelCount int) (int, error) {
	if labelCount <= 0 {
		return 0, fmt.Errorf("mrf: new node needs at least 1 label, got %d", labelCount)
	}
	idx := len(g.counts)
	g.counts = append(g.counts, labelCount)
	g.labels = append(g.labels, nil)
	g.off = append(g.off, g.off[idx]+labelCount)
	g.unary = append(g.unary, make([]float64, labelCount)...)
	g.adjDirty = true
	return idx, nil
}

// SetUnaryRow replaces the whole unary cost vector of a node in the flat
// buffer (the bulk form of SetUnary used by delta patching).
func (g *Graph) SetUnaryRow(node int, costs []float64) error {
	if node < 0 || node >= len(g.counts) {
		return fmt.Errorf("mrf: node %d out of range", node)
	}
	if len(costs) != g.counts[node] {
		return fmt.Errorf("mrf: node %d has %d labels but %d costs given", node, g.counts[node], len(costs))
	}
	copy(g.unary[g.off[node]:g.off[node+1]], costs)
	return nil
}

// FilterEdges removes every edge for which keep returns false and reports
// how many were removed.  Edge indices are compacted (they shift), so
// callers holding edge indices must re-derive them; the solver kernels
// rebuild their incidence structures per solve and are unaffected.  Interned
// cost matrices that lose their last edge stay allocated until the next full
// rebuild — a deliberate trade for O(E) removal without reference counting.
func (g *Graph) FilterEdges(keep func(idx, u, v int) bool) int {
	out := g.edges[:0]
	for idx, e := range g.edges {
		if keep(idx, e.U, e.V) {
			out = append(out, e)
		}
	}
	removed := len(g.edges) - len(out)
	if removed > 0 {
		g.edges = out
		g.adjDirty = true
	}
	return removed
}

package mrf

import "fmt"

// Solution is the common result type returned by the MRF solvers (trws, bp,
// icm, baseline).
type Solution struct {
	// Labels holds the chosen label index for every node.
	Labels []int
	// Energy is E(Labels).
	Energy float64
	// LowerBound is a lower bound on the optimal energy reported by the
	// solver (solvers that do not compute a bound report the graph's
	// trivial bound).
	LowerBound float64
	// Iterations is the number of full passes the solver performed.
	Iterations int
	// Converged reports whether the solver stopped because its convergence
	// criterion was met (as opposed to exhausting its iteration budget).
	Converged bool
	// EnergyHistory records the best energy after each iteration; useful
	// for plotting convergence and for ablation benchmarks.
	EnergyHistory []float64
}

// Gap returns Energy - LowerBound, a pessimistic bound on the distance from
// the optimum.
func (s Solution) Gap() float64 { return s.Energy - s.LowerBound }

// String summarises the solution.
func (s Solution) String() string {
	return fmt.Sprintf("energy=%.4f bound=%.4f iterations=%d converged=%v",
		s.Energy, s.LowerBound, s.Iterations, s.Converged)
}

package mrf

import "fmt"

// Solution is the common result type returned by the MRF solvers (trws, bp,
// icm, baseline).
type Solution struct {
	// Labels holds the chosen label index for every node.
	Labels []int
	// Energy is E(Labels).
	Energy float64
	// LowerBound is a lower bound on the optimal energy reported by the
	// solver (solvers that do not compute a bound report the graph's
	// trivial bound).
	LowerBound float64
	// Iterations is the number of full passes the solver performed.
	Iterations int
	// Converged reports whether the solver stopped because its convergence
	// criterion was met (as opposed to exhausting its iteration budget).
	Converged bool
	// EnergyHistory records the best energy after each iteration; useful
	// for plotting convergence and for ablation benchmarks.
	EnergyHistory []float64
}

// Gap returns Energy - LowerBound, a pessimistic bound on the distance from
// the optimum.
func (s Solution) Gap() float64 { return s.Energy - s.LowerBound }

// String summarises the solution.
func (s Solution) String() string {
	return fmt.Sprintf("energy=%.4f bound=%.4f iterations=%d converged=%v",
		s.Energy, s.LowerBound, s.Iterations, s.Converged)
}

// AddEdgeShared is like AddEdge but stores the provided cost matrix without
// copying it.  It exists so that large networks in which many edges share the
// identical cost matrix (e.g. the per-service similarity matrix used on every
// link of the scalability experiments) do not pay memory proportional to
// edges × labels².  The caller must not modify the matrix afterwards.
func (g *Graph) AddEdgeShared(u, v int, cost [][]float64) (int, error) {
	if u == v {
		return 0, fmt.Errorf("mrf: self edge on node %d", u)
	}
	if u < 0 || u >= len(g.counts) || v < 0 || v >= len(g.counts) {
		return 0, fmt.Errorf("mrf: edge (%d,%d) out of range", u, v)
	}
	if err := CheckMatrix(cost, g.counts[u], g.counts[v]); err != nil {
		return 0, fmt.Errorf("mrf: edge (%d,%d): %w", u, v, err)
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Cost: cost})
	g.adj[u] = append(g.adj[u], idx)
	g.adj[v] = append(g.adj[v], idx)
	return idx, nil
}

// Package mrf implements the discrete pairwise Markov Random Field used by
// the paper to encode the diversification problem (Section V, Eq. 1):
//
//	E(x) = Σ_i φ_i(x_i) + Σ_{(i,j)∈L} ψ_ij(x_i, x_j)
//
// Nodes carry a finite label space (the candidate product combinations of a
// host), φ are unary costs (product preferences and constraint penalties) and
// ψ are pairwise costs (vulnerability similarities).  Solvers live in the
// trws, bp and icm packages and operate on the Graph type defined here.
//
// Storage layout.  The graph keeps all unary costs in one flat contiguous
// []float64 indexed through per-node offsets, stores every distinct pairwise
// cost matrix exactly once (interned by content, see Matrix) and maintains a
// CSR-style flat adjacency list mapping nodes to incident edge indices.  This
// keeps the hot message-passing loops cache-friendly and drops pairwise
// memory from O(E·K²) to O(distinct·K²) on networks where many links share
// the same similarity matrix.
package mrf

import (
	"errors"
	"fmt"
	"math"
)

// HardPenalty is the finite cost used to encode hard constraints (the "∞" of
// the paper's unary cost Pc).  A finite value keeps message passing
// numerically stable while still dominating every achievable soft cost.
const HardPenalty = 1e9

// Edge is an undirected pairwise factor between nodes U and V with a dense
// cost matrix Cost[labelU][labelV].  The Cost rows alias the graph's interned
// flat storage; callers must treat them as read-only.
type Edge struct {
	U, V int
	Cost [][]float64
}

// edgeRec is the internal edge representation: endpoints plus the index of
// the interned cost matrix.
type edgeRec struct {
	U, V int
	Mat  int
}

// Graph is a discrete pairwise MRF with flat, interned storage.
type Graph struct {
	labels [][]string // optional label names per node (for decoding)
	counts []int      // number of labels per node
	off    []int      // off[i] is the start of node i's unary block; len(off) == NumNodes()+1
	unary  []float64  // flat unary costs

	edges []edgeRec
	mats  []*Matrix // interned distinct cost matrices
	matsT []*Matrix // lazily built transposes, same indexing as mats
	views [][][]float64
	// interning indexes: content hash -> candidate matrix ids, and identity
	// of a caller-shared nested matrix -> matrix id.
	byContent map[uint64][]int
	byPtr     map[matIdentity]int

	// CSR adjacency (node -> incident edge indices), rebuilt lazily.
	adjOff   []int
	adjList  []int
	adjDirty bool
}

// NewGraph creates a graph with the given number of labels per node.  Every
// node must have at least one label.
func NewGraph(labelCounts []int) (*Graph, error) {
	if len(labelCounts) == 0 {
		return nil, errors.New("mrf: graph needs at least one node")
	}
	g := &Graph{
		counts:    append([]int(nil), labelCounts...),
		off:       make([]int, len(labelCounts)+1),
		labels:    make([][]string, len(labelCounts)),
		byContent: make(map[uint64][]int),
		byPtr:     make(map[matIdentity]int),
	}
	total := 0
	for i, k := range labelCounts {
		if k <= 0 {
			return nil, fmt.Errorf("mrf: node %d has %d labels; need at least 1", i, k)
		}
		g.off[i] = total
		total += k
	}
	g.off[len(labelCounts)] = total
	g.unary = make([]float64, total)
	return g, nil
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.counts) }

// NumEdges returns the number of pairwise factors.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumLabels returns the label-space size of the node.
func (g *Graph) NumLabels(node int) int { return g.counts[node] }

// MaxLabels returns the largest label-space size over all nodes.
func (g *Graph) MaxLabels() int {
	max := 0
	for _, k := range g.counts {
		if k > max {
			max = k
		}
	}
	return max
}

// NumMatrices returns the number of distinct (interned) pairwise cost
// matrices; NumEdges()/NumMatrices() is the sharing factor.
func (g *Graph) NumMatrices() int { return len(g.mats) }

// SetLabelNames attaches human-readable names to a node's labels; purely
// informational (used when decoding assignments).
func (g *Graph) SetLabelNames(node int, names []string) error {
	if node < 0 || node >= len(g.counts) {
		return fmt.Errorf("mrf: node %d out of range", node)
	}
	if len(names) != g.counts[node] {
		return fmt.Errorf("mrf: node %d has %d labels but %d names given", node, g.counts[node], len(names))
	}
	g.labels[node] = append([]string(nil), names...)
	return nil
}

// LabelName returns the attached name of a node label ("" if unnamed).
func (g *Graph) LabelName(node, label int) string {
	if g.labels[node] == nil {
		return ""
	}
	return g.labels[node][label]
}

// SetUnary sets φ_node(label) = cost.
func (g *Graph) SetUnary(node, label int, cost float64) error {
	if err := g.checkNodeLabel(node, label); err != nil {
		return err
	}
	g.unary[g.off[node]+label] = cost
	return nil
}

// AddUnary adds cost to φ_node(label).
func (g *Graph) AddUnary(node, label int, cost float64) error {
	if err := g.checkNodeLabel(node, label); err != nil {
		return err
	}
	g.unary[g.off[node]+label] += cost
	return nil
}

// Unary returns φ_node(label).
func (g *Graph) Unary(node, label int) float64 { return g.unary[g.off[node]+label] }

// UnaryRow returns a copy of the unary cost vector of a node.
func (g *Graph) UnaryRow(node int) []float64 {
	out := make([]float64, g.counts[node])
	copy(out, g.UnaryView(node))
	return out
}

// UnaryView returns the node's unary cost vector as a view into the flat
// buffer.  Callers must treat it as read-only; solvers use it to avoid the
// per-visit copy of UnaryRow on the hot path.
func (g *Graph) UnaryView(node int) []float64 {
	return g.unary[g.off[node]:g.off[node+1]:g.off[node+1]]
}

func (g *Graph) checkNodeLabel(node, label int) error {
	if node < 0 || node >= len(g.counts) {
		return fmt.Errorf("mrf: node %d out of range", node)
	}
	if label < 0 || label >= g.counts[node] {
		return fmt.Errorf("mrf: label %d out of range for node %d (%d labels)", label, node, g.counts[node])
	}
	return nil
}

func (g *Graph) checkEdge(u, v int, cost [][]float64) error {
	if u == v {
		return fmt.Errorf("mrf: self edge on node %d", u)
	}
	if u < 0 || u >= len(g.counts) || v < 0 || v >= len(g.counts) {
		return fmt.Errorf("mrf: edge (%d,%d) out of range", u, v)
	}
	if err := CheckMatrix(cost, g.counts[u], g.counts[v]); err != nil {
		return fmt.Errorf("mrf: edge (%d,%d): %w", u, v, err)
	}
	return nil
}

// matIdentity identifies a caller-owned nested matrix for identity
// interning: shape plus the addresses of the first and last rows' storage.
// Two matrices can only collide if they share both boundary rows, which the
// AddEdgeShared contract (one matrix reused verbatim across edges) rules
// out.
type matIdentity struct {
	rows, cols  int
	first, last *float64
}

func identityOf(cost [][]float64) matIdentity {
	return matIdentity{
		rows:  len(cost),
		cols:  len(cost[0]),
		first: &cost[0][0],
		last:  &cost[len(cost)-1][0],
	}
}

// intern stores the matrix if no identical matrix exists yet and returns the
// matrix id.  The legacy row view is built eagerly so Edge() stays a pure
// (concurrency-safe) read.
func (g *Graph) intern(m *Matrix) int {
	h := m.contentHash()
	for _, id := range g.byContent[h] {
		if g.mats[id].equalContent(m) {
			return id
		}
	}
	id := len(g.mats)
	g.mats = append(g.mats, m)
	g.views = append(g.views, m.rowViews())
	g.byContent[h] = append(g.byContent[h], id)
	return id
}

func (g *Graph) appendEdge(u, v, mat int) int {
	idx := len(g.edges)
	g.edges = append(g.edges, edgeRec{U: u, V: v, Mat: mat})
	g.adjDirty = true
	return idx
}

// AddEdge adds a pairwise factor between u and v with the dense cost matrix
// cost[labelU][labelV].  The matrix is copied into flat storage and interned:
// edges with identical costs share one buffer.  It returns the edge index.
func (g *Graph) AddEdge(u, v int, cost [][]float64) (int, error) {
	if err := g.checkEdge(u, v, cost); err != nil {
		return 0, err
	}
	return g.appendEdge(u, v, g.intern(flatten(cost))), nil
}

// AddEdgeShared is like AddEdge but interns by matrix identity: repeated
// calls with the same nested matrix skip the content hash and reuse the
// already-flattened buffer directly.  It exists so that large networks in
// which many edges carry the identical cost matrix (e.g. the per-service
// similarity matrix used on every link of the scalability experiments) pay
// neither memory nor hashing proportional to edges × labels².  The matrix is
// copied on first sight; later mutations of the caller's nested slices are
// NOT reflected in the graph.
func (g *Graph) AddEdgeShared(u, v int, cost [][]float64) (int, error) {
	if err := g.checkEdge(u, v, cost); err != nil {
		return 0, err
	}
	key := identityOf(cost)
	id, ok := g.byPtr[key]
	if !ok {
		id = g.intern(flatten(cost))
		g.byPtr[key] = id
	}
	return g.appendEdge(u, v, id), nil
}

// ForEachEdge calls f for every edge with its index, endpoints and interned
// matrix id, walking the flat edge records directly.  It is the bulk-read
// primitive of the coarsening and restriction layers: one indexed pass
// instead of NumEdges() paired EdgeEndpoints/EdgeMatID calls.
func (g *Graph) ForEachEdge(f func(idx, u, v, mat int)) {
	for idx := range g.edges {
		e := &g.edges[idx]
		f(idx, e.U, e.V, e.Mat)
	}
}

// AddEdgeFlat adds a pairwise factor between u and v whose cost matrix is
// given as one row-major flat buffer (data[i*cols+j] = cost(labelU=i,
// labelV=j)).  The buffer is copied and content-interned exactly like
// AddEdge, but without requiring callers that already hold flat storage —
// the coarsener's accumulated parallel-edge matrices — to materialise a
// nested [][]float64 per edge.  It returns the edge index.
func (g *Graph) AddEdgeFlat(u, v int, rows, cols int, data []float64) (int, error) {
	if u == v {
		return 0, fmt.Errorf("mrf: self edge on node %d", u)
	}
	if u < 0 || u >= len(g.counts) || v < 0 || v >= len(g.counts) {
		return 0, fmt.Errorf("mrf: edge (%d,%d) out of range", u, v)
	}
	if rows != g.counts[u] || cols != g.counts[v] {
		return 0, fmt.Errorf("mrf: edge (%d,%d): matrix is %dx%d, want %dx%d",
			u, v, rows, cols, g.counts[u], g.counts[v])
	}
	if len(data) != rows*cols {
		return 0, fmt.Errorf("mrf: edge (%d,%d): flat matrix has %d entries, want %d",
			u, v, len(data), rows*cols)
	}
	m := &Matrix{Rows: rows, Cols: cols, Data: append([]float64(nil), data...)}
	return g.appendEdge(u, v, g.intern(m)), nil
}

// Edge returns the idx-th pairwise factor as a compatibility view whose Cost
// rows alias the interned flat buffer; callers must treat it as read-only.
func (g *Graph) Edge(idx int) Edge {
	e := g.edges[idx]
	return Edge{U: e.U, V: e.V, Cost: g.views[e.Mat]}
}

// EdgeEndpoints returns the two endpoints of the idx-th edge.
func (g *Graph) EdgeEndpoints(idx int) (u, v int) {
	e := g.edges[idx]
	return e.U, e.V
}

// EdgeMatID returns the interned matrix id of the idx-th edge.
func (g *Graph) EdgeMatID(idx int) int { return g.edges[idx].Mat }

// Mat returns the interned matrix with the given id.
func (g *Graph) Mat(id int) *Matrix { return g.mats[id] }

// EdgeMat returns the cost matrix of the idx-th edge (row index = U label).
func (g *Graph) EdgeMat(idx int) *Matrix { return g.mats[g.edges[idx].Mat] }

// EdgeMatT returns the transposed cost matrix of the idx-th edge (row index =
// V label).  Transposes are interned alongside the originals and built
// lazily; solvers touch them once during single-threaded setup so that the
// shared cache is safe to read concurrently afterwards.
func (g *Graph) EdgeMatT(idx int) *Matrix {
	id := g.edges[idx].Mat
	for len(g.matsT) < len(g.mats) {
		g.matsT = append(g.matsT, nil)
	}
	if g.matsT[id] == nil {
		g.matsT[id] = g.mats[id].transposed()
	}
	return g.matsT[id]
}

// ensureAdj (re)builds the CSR adjacency after edge insertions.
func (g *Graph) ensureAdj() {
	if !g.adjDirty && g.adjOff != nil {
		return
	}
	n := len(g.counts)
	deg := make([]int, n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	g.adjOff = make([]int, n+1)
	for i := 0; i < n; i++ {
		g.adjOff[i+1] = g.adjOff[i] + deg[i]
	}
	g.adjList = make([]int, g.adjOff[n])
	pos := make([]int, n)
	copy(pos, g.adjOff[:n])
	for idx, e := range g.edges {
		g.adjList[pos[e.U]] = idx
		pos[e.U]++
		g.adjList[pos[e.V]] = idx
		pos[e.V]++
	}
	g.adjDirty = false
}

// AdjacentEdges returns the indices of the edges incident to the node.
func (g *Graph) AdjacentEdges(node int) []int {
	g.ensureAdj()
	return append([]int(nil), g.IncidentEdges(node)...)
}

// IncidentEdges returns the incident edge indices of a node as a view into
// the flat CSR adjacency (sorted by edge index).  Callers must treat it as
// read-only and must not hold it across AddEdge calls.
func (g *Graph) IncidentEdges(node int) []int {
	g.ensureAdj()
	return g.adjList[g.adjOff[node]:g.adjOff[node+1]:g.adjOff[node+1]]
}

// Degree returns the number of edges incident to the node.
func (g *Graph) Degree(node int) int {
	g.ensureAdj()
	return g.adjOff[node+1] - g.adjOff[node]
}

// PairwiseCost returns ψ of the idx-th edge for the given endpoint labels,
// where lu indexes the edge's U node and lv its V node.
func (g *Graph) PairwiseCost(idx, lu, lv int) float64 {
	return g.mats[g.edges[idx].Mat].At(lu, lv)
}

// Energy evaluates E(x) for a full labeling (one label index per node).
func (g *Graph) Energy(labels []int) (float64, error) {
	if len(labels) != len(g.counts) {
		return 0, fmt.Errorf("mrf: labeling has %d entries, want %d", len(labels), len(g.counts))
	}
	total := 0.0
	for i, l := range labels {
		if l < 0 || l >= g.counts[i] {
			return 0, fmt.Errorf("mrf: label %d out of range for node %d", l, i)
		}
		total += g.unary[g.off[i]+l]
	}
	for _, e := range g.edges {
		total += g.mats[e.Mat].At(labels[e.U], labels[e.V])
	}
	return total, nil
}

// MustEnergy is Energy for labelings already known to be valid; it panics on
// an invalid labeling (which would indicate a solver bug).
func (g *Graph) MustEnergy(labels []int) float64 {
	e, err := g.Energy(labels)
	if err != nil {
		panic(err)
	}
	return e
}

// TrivialLowerBound returns Σ_i min_x φ_i(x) + Σ_e min ψ_e, a valid (if loose)
// lower bound on the minimum energy.  Per-matrix minima are computed once per
// distinct matrix.
func (g *Graph) TrivialLowerBound() float64 {
	lb := 0.0
	for i := range g.counts {
		lb += minOf(g.UnaryView(i))
	}
	if len(g.edges) == 0 {
		return lb
	}
	mins := make([]float64, len(g.mats))
	for id, m := range g.mats {
		mins[id] = m.Min()
	}
	for _, e := range g.edges {
		lb += mins[e.Mat]
	}
	return lb
}

// GreedyLabeling returns the labeling that minimises each node's unary cost
// independently (ignoring pairwise terms).  Useful as a solver starting point
// and as a baseline in tests.
func (g *Graph) GreedyLabeling() []int {
	labels := make([]int, len(g.counts))
	for i := range g.counts {
		row := g.UnaryView(i)
		best, bestV := 0, math.Inf(1)
		for l, v := range row {
			if v < bestV {
				best, bestV = l, v
			}
		}
		labels[i] = best
	}
	return labels
}

// Validate checks internal consistency (no NaN costs).
func (g *Graph) Validate() error {
	for i := range g.counts {
		for l, v := range g.UnaryView(i) {
			if math.IsNaN(v) {
				return fmt.Errorf("mrf: unary cost of node %d label %d is NaN", i, l)
			}
		}
	}
	for id, m := range g.mats {
		for _, v := range m.Data {
			if math.IsNaN(v) {
				for idx, e := range g.edges {
					if e.Mat == id {
						return fmt.Errorf("mrf: pairwise cost of edge %d is NaN", idx)
					}
				}
				return fmt.Errorf("mrf: pairwise cost matrix %d is NaN", id)
			}
		}
	}
	return nil
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

// Package mrf implements the discrete pairwise Markov Random Field used by
// the paper to encode the diversification problem (Section V, Eq. 1):
//
//	E(x) = Σ_i φ_i(x_i) + Σ_{(i,j)∈L} ψ_ij(x_i, x_j)
//
// Nodes carry a finite label space (the candidate product combinations of a
// host), φ are unary costs (product preferences and constraint penalties) and
// ψ are pairwise costs (vulnerability similarities).  Solvers live in the
// trws, bp and icm packages and operate on the Graph type defined here.
package mrf

import (
	"errors"
	"fmt"
	"math"
)

// HardPenalty is the finite cost used to encode hard constraints (the "∞" of
// the paper's unary cost Pc).  A finite value keeps message passing
// numerically stable while still dominating every achievable soft cost.
const HardPenalty = 1e9

// Edge is an undirected pairwise factor between nodes U and V with a dense
// cost matrix Cost[labelU][labelV].
type Edge struct {
	U, V int
	Cost [][]float64
}

// Graph is a discrete pairwise MRF.
type Graph struct {
	labels [][]string    // optional label names per node (for decoding)
	counts []int         // number of labels per node
	unary  [][]float64   // unary costs per node per label
	edges  []Edge
	adj    [][]int // adjacency: node -> indices into edges
}

// NewGraph creates a graph with the given number of labels per node.  Every
// node must have at least one label.
func NewGraph(labelCounts []int) (*Graph, error) {
	if len(labelCounts) == 0 {
		return nil, errors.New("mrf: graph needs at least one node")
	}
	g := &Graph{
		counts: append([]int(nil), labelCounts...),
		unary:  make([][]float64, len(labelCounts)),
		adj:    make([][]int, len(labelCounts)),
		labels: make([][]string, len(labelCounts)),
	}
	for i, k := range labelCounts {
		if k <= 0 {
			return nil, fmt.Errorf("mrf: node %d has %d labels; need at least 1", i, k)
		}
		g.unary[i] = make([]float64, k)
	}
	return g, nil
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.counts) }

// NumEdges returns the number of pairwise factors.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumLabels returns the label-space size of the node.
func (g *Graph) NumLabels(node int) int { return g.counts[node] }

// SetLabelNames attaches human-readable names to a node's labels; purely
// informational (used when decoding assignments).
func (g *Graph) SetLabelNames(node int, names []string) error {
	if node < 0 || node >= len(g.counts) {
		return fmt.Errorf("mrf: node %d out of range", node)
	}
	if len(names) != g.counts[node] {
		return fmt.Errorf("mrf: node %d has %d labels but %d names given", node, g.counts[node], len(names))
	}
	g.labels[node] = append([]string(nil), names...)
	return nil
}

// LabelName returns the attached name of a node label ("" if unnamed).
func (g *Graph) LabelName(node, label int) string {
	if g.labels[node] == nil {
		return ""
	}
	return g.labels[node][label]
}

// SetUnary sets φ_node(label) = cost.
func (g *Graph) SetUnary(node, label int, cost float64) error {
	if err := g.checkNodeLabel(node, label); err != nil {
		return err
	}
	g.unary[node][label] = cost
	return nil
}

// AddUnary adds cost to φ_node(label).
func (g *Graph) AddUnary(node, label int, cost float64) error {
	if err := g.checkNodeLabel(node, label); err != nil {
		return err
	}
	g.unary[node][label] += cost
	return nil
}

// Unary returns φ_node(label).
func (g *Graph) Unary(node, label int) float64 { return g.unary[node][label] }

// UnaryRow returns a copy of the unary cost vector of a node.
func (g *Graph) UnaryRow(node int) []float64 {
	out := make([]float64, len(g.unary[node]))
	copy(out, g.unary[node])
	return out
}

func (g *Graph) checkNodeLabel(node, label int) error {
	if node < 0 || node >= len(g.counts) {
		return fmt.Errorf("mrf: node %d out of range", node)
	}
	if label < 0 || label >= g.counts[node] {
		return fmt.Errorf("mrf: label %d out of range for node %d (%d labels)", label, node, g.counts[node])
	}
	return nil
}

// AddEdge adds a pairwise factor between u and v with the dense cost matrix
// cost[labelU][labelV].  The matrix is copied.  It returns the edge index.
func (g *Graph) AddEdge(u, v int, cost [][]float64) (int, error) {
	if u == v {
		return 0, fmt.Errorf("mrf: self edge on node %d", u)
	}
	if u < 0 || u >= len(g.counts) || v < 0 || v >= len(g.counts) {
		return 0, fmt.Errorf("mrf: edge (%d,%d) out of range", u, v)
	}
	if len(cost) != g.counts[u] {
		return 0, fmt.Errorf("mrf: edge (%d,%d) cost has %d rows, want %d", u, v, len(cost), g.counts[u])
	}
	cp := make([][]float64, len(cost))
	for i, row := range cost {
		if len(row) != g.counts[v] {
			return 0, fmt.Errorf("mrf: edge (%d,%d) cost row %d has %d cols, want %d",
				u, v, i, len(row), g.counts[v])
		}
		cp[i] = append([]float64(nil), row...)
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Cost: cp})
	g.adj[u] = append(g.adj[u], idx)
	g.adj[v] = append(g.adj[v], idx)
	return idx, nil
}

// Edge returns the idx-th pairwise factor.  The returned struct shares the
// internal cost matrix; callers must treat it as read-only.
func (g *Graph) Edge(idx int) Edge { return g.edges[idx] }

// AdjacentEdges returns the indices of the edges incident to the node.
func (g *Graph) AdjacentEdges(node int) []int {
	out := make([]int, len(g.adj[node]))
	copy(out, g.adj[node])
	return out
}

// PairwiseCost returns ψ of the idx-th edge for the given endpoint labels,
// where lu indexes the edge's U node and lv its V node.
func (g *Graph) PairwiseCost(idx, lu, lv int) float64 {
	return g.edges[idx].Cost[lu][lv]
}

// Energy evaluates E(x) for a full labeling (one label index per node).
func (g *Graph) Energy(labels []int) (float64, error) {
	if len(labels) != len(g.counts) {
		return 0, fmt.Errorf("mrf: labeling has %d entries, want %d", len(labels), len(g.counts))
	}
	total := 0.0
	for i, l := range labels {
		if l < 0 || l >= g.counts[i] {
			return 0, fmt.Errorf("mrf: label %d out of range for node %d", l, i)
		}
		total += g.unary[i][l]
	}
	for _, e := range g.edges {
		total += e.Cost[labels[e.U]][labels[e.V]]
	}
	return total, nil
}

// MustEnergy is Energy for labelings already known to be valid; it panics on
// an invalid labeling (which would indicate a solver bug).
func (g *Graph) MustEnergy(labels []int) float64 {
	e, err := g.Energy(labels)
	if err != nil {
		panic(err)
	}
	return e
}

// TrivialLowerBound returns Σ_i min_x φ_i(x) + Σ_e min ψ_e, a valid (if loose)
// lower bound on the minimum energy.
func (g *Graph) TrivialLowerBound() float64 {
	lb := 0.0
	for _, row := range g.unary {
		lb += minOf(row)
	}
	for _, e := range g.edges {
		m := math.Inf(1)
		for _, row := range e.Cost {
			if v := minOf(row); v < m {
				m = v
			}
		}
		lb += m
	}
	return lb
}

// GreedyLabeling returns the labeling that minimises each node's unary cost
// independently (ignoring pairwise terms).  Useful as a solver starting point
// and as a baseline in tests.
func (g *Graph) GreedyLabeling() []int {
	labels := make([]int, len(g.counts))
	for i, row := range g.unary {
		best, bestV := 0, math.Inf(1)
		for l, v := range row {
			if v < bestV {
				best, bestV = l, v
			}
		}
		labels[i] = best
	}
	return labels
}

// Validate checks internal consistency (no NaN costs, adjacency coherent).
func (g *Graph) Validate() error {
	for i, row := range g.unary {
		for l, v := range row {
			if math.IsNaN(v) {
				return fmt.Errorf("mrf: unary cost of node %d label %d is NaN", i, l)
			}
		}
	}
	for idx, e := range g.edges {
		for _, row := range e.Cost {
			for _, v := range row {
				if math.IsNaN(v) {
					return fmt.Errorf("mrf: pairwise cost of edge %d is NaN", idx)
				}
			}
		}
	}
	return nil
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

package mrf

import "fmt"

// PottsCost builds a ku×kv pairwise cost matrix that charges `penalty` when
// the two labels are equal and 0 otherwise — the classic Potts model used by
// single-label diversification approaches (the Fig. 1(a) world where any two
// distinct products are assumed to share nothing).
func PottsCost(ku, kv int, penalty float64) [][]float64 {
	out := make([][]float64, ku)
	for i := range out {
		out[i] = make([]float64, kv)
		if i < kv {
			out[i][i] = penalty
		}
	}
	return out
}

// UniformCost builds a ku×kv matrix filled with the same value.
func UniformCost(ku, kv int, value float64) [][]float64 {
	out := make([][]float64, ku)
	for i := range out {
		out[i] = make([]float64, kv)
		for j := range out[i] {
			out[i][j] = value
		}
	}
	return out
}

// SimilarityCost builds a pairwise cost matrix from a similarity function
// over label names: cost[i][j] = sim(namesU[i], namesV[j]).  This is the
// pairwise term ψ of Eq. 3, where the label names are product combinations
// and sim sums the per-service similarities.
func SimilarityCost(namesU, namesV []string, sim func(a, b string) float64) [][]float64 {
	out := make([][]float64, len(namesU))
	for i, a := range namesU {
		out[i] = make([]float64, len(namesV))
		for j, b := range namesV {
			out[i][j] = sim(a, b)
		}
	}
	return out
}

// ScaleCost returns a copy of the matrix with every entry multiplied by the
// factor.  Useful for weighting pairwise against unary terms in ablations.
func ScaleCost(cost [][]float64, factor float64) [][]float64 {
	out := make([][]float64, len(cost))
	for i, row := range cost {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			out[i][j] = v * factor
		}
	}
	return out
}

// Transpose returns the transposed cost matrix (for looking up an edge cost
// from the V side).
func Transpose(cost [][]float64) [][]float64 {
	if len(cost) == 0 {
		return nil
	}
	rows, cols := len(cost), len(cost[0])
	out := make([][]float64, cols)
	for j := 0; j < cols; j++ {
		out[j] = make([]float64, rows)
		for i := 0; i < rows; i++ {
			out[j][i] = cost[i][j]
		}
	}
	return out
}

// CheckMatrix validates that a cost matrix has the expected dimensions.
func CheckMatrix(cost [][]float64, rows, cols int) error {
	if len(cost) != rows {
		return fmt.Errorf("mrf: cost matrix has %d rows, want %d", len(cost), rows)
	}
	for i, row := range cost {
		if len(row) != cols {
			return fmt.Errorf("mrf: cost matrix row %d has %d cols, want %d", i, len(row), cols)
		}
	}
	return nil
}

package mrf

import "testing"

func incrGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph([]int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for l := 0; l < g.NumLabels(i); l++ {
			if err := g.SetUnary(i, l, float64(i)+0.1*float64(l)); err != nil {
				t.Fatal(err)
			}
		}
	}
	cost01 := [][]float64{{0, 1, 2}, {1, 0, 1}}
	cost12 := [][]float64{{0, 1}, {1, 0}, {2, 2}}
	if _, err := g.AddEdge(0, 1, cost01); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2, cost12); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddNode(t *testing.T) {
	g := incrGraph(t)
	g.ensureAdj() // force the CSR build so AddNode must invalidate it
	idx, err := g.AddNode(4)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 || g.NumNodes() != 4 || g.NumLabels(3) != 4 {
		t.Fatalf("AddNode: idx=%d nodes=%d labels=%d", idx, g.NumNodes(), g.NumLabels(3))
	}
	for l := 0; l < 4; l++ {
		if got := g.Unary(3, l); got != 0 {
			t.Fatalf("new node unary[%d]=%v, want 0", l, got)
		}
	}
	if deg := g.Degree(3); deg != 0 {
		t.Fatalf("new node degree=%d, want 0", deg)
	}
	// The new node is usable in edges and energies right away.
	if _, err := g.AddEdge(2, 3, [][]float64{{0, 0, 0, 1}, {1, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if e, err := g.Energy([]int{0, 0, 0, 3}); err != nil || e != 0.1*0+0+1+2+0+1 {
		t.Fatalf("energy with new node: %v err=%v", e, err)
	}
	if _, err := g.AddNode(0); err == nil {
		t.Fatal("AddNode(0) succeeded")
	}
}

func TestSetUnaryRow(t *testing.T) {
	g := incrGraph(t)
	if err := g.SetUnaryRow(1, []float64{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	for l, want := range []float64{9, 8, 7} {
		if got := g.Unary(1, l); got != want {
			t.Fatalf("unary(1,%d)=%v, want %v", l, got, want)
		}
	}
	if err := g.SetUnaryRow(1, []float64{1}); err == nil {
		t.Fatal("wrong-length row accepted")
	}
	if err := g.SetUnaryRow(9, []float64{1}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestFilterEdges(t *testing.T) {
	g := incrGraph(t)
	g.ensureAdj()
	removed := g.FilterEdges(func(_, u, v int) bool { return !(u == 0 && v == 1) })
	if removed != 1 || g.NumEdges() != 1 {
		t.Fatalf("removed=%d edges=%d, want 1/1", removed, g.NumEdges())
	}
	u, v := g.EdgeEndpoints(0)
	if u != 1 || v != 2 {
		t.Fatalf("surviving edge is (%d,%d), want (1,2)", u, v)
	}
	// CSR adjacency must reflect the removal.
	if deg := g.Degree(0); deg != 0 {
		t.Fatalf("degree(0)=%d after removing its only edge", deg)
	}
	if deg := g.Degree(1); deg != 1 {
		t.Fatalf("degree(1)=%d, want 1", deg)
	}
	// Energy no longer includes the removed factor.
	e, err := g.Energy([]int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0 + 1.1 + 2.0 + 1.0 // unaries + cost12[1][0]
	if e != want {
		t.Fatalf("energy=%v, want %v", e, want)
	}
	if got := g.FilterEdges(func(_, _, _ int) bool { return true }); got != 0 {
		t.Fatalf("no-op filter removed %d", got)
	}
}
